module ltc

go 1.23
