package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"ltc"
	"ltc/internal/httpapi"
)

// runLoadgen drives a running ltcd gateway end to end: it regenerates the
// gateway's worker stream from the same -scale/-seed flags, subscribes to
// the SSE event feed, pushes the stream over HTTP (per-call or in
// /checkin/batch chunks, from one or more connections), and then audits
// the run:
//
//   - the gateway must report done, with every task resolved;
//   - the SSE subscriber must have received exactly one task_completed per
//     task plus a platform_done (the exactly-once delivery contract);
//   - with a single connection (a sequential feed) the gateway's latency
//     must equal an in-process Platform fed the same stream — the wire
//     changes nothing about assignment decisions.
//
// It prints workers/s as the headline number and returns an error (non-zero
// exit) when any audit fails, which is what the CI smoke job keys on.
func runLoadgen(url string, scale float64, seed uint64, algoName string, batch, conns int) error {
	if url == "" {
		return errors.New("loadgen needs -url pointing at a running ltcd")
	}
	if conns < 1 {
		conns = 1
	}
	cfg := ltc.DefaultWorkload().Scale(scale)
	cfg.Seed = seed
	in, err := cfg.Generate()
	if err != nil {
		return err
	}
	client := &httpapi.Client{Base: url}

	pre, err := client.Stats()
	if err != nil {
		return fmt.Errorf("gateway unreachable: %w", err)
	}
	// Default the in-process replay to whatever the gateway actually runs;
	// -algos only overrides for deliberate mismatch experiments.
	algo := ltc.Algorithm(algoName)
	if algoName == "" {
		algo = ltc.Algorithm(pre.Algo)
	}
	if pre.Tasks != len(in.Tasks) {
		return fmt.Errorf("gateway serves %d tasks, local generation has %d — mismatched -scale/-seed?", pre.Tasks, len(in.Tasks))
	}
	if pre.WorkersSeen != 0 {
		return fmt.Errorf("gateway already saw %d workers — loadgen needs a fresh ltcd", pre.WorkersSeen)
	}
	fmt.Printf("loadgen: %d tasks / %d workers against %s (%s, %d shards, %d conns, batch=%d)\n",
		len(in.Tasks), len(in.Workers), url, pre.Algo, pre.Shards, conns, batch)

	// Subscribe before feeding: OpenEvents returning means the gateway-side
	// subscription is live.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stream, err := client.OpenEvents(ctx)
	if err != nil {
		return err
	}
	defer func() { _ = stream.Close() }()
	completions := make(map[int]int)
	var dupes, platformDone int
	streamErr := make(chan error, 1)
	go func() {
		for {
			e, err := stream.Next()
			if err == io.EOF {
				streamErr <- nil
				return
			}
			if err != nil {
				streamErr <- err
				return
			}
			switch e.Kind {
			case "task_completed":
				completions[e.Task]++
				if completions[e.Task] > 1 {
					dupes++
				}
			case "platform_done":
				platformDone++
			}
			// Concurrent feeders can publish a completion from another shard
			// after the platform_done transition, so wait for both signals
			// before ending the audit (the caller's timeout backstops a
			// dropped event).
			if platformDone > 0 && len(completions) >= len(in.Tasks) {
				streamErr <- nil
				return
			}
		}
	}()

	// Feed the stream. Connections claim workers (or batch chunks) from a
	// shared cursor; with conns=1 this is exactly the sequential feed.
	wire := make([]httpapi.Worker, len(in.Workers))
	for i, w := range in.Workers {
		wire[i] = httpapi.FromWorker(w)
	}
	var cursor, fed atomic.Int64
	var done atomic.Bool
	errs := make(chan error, conns)
	start := time.Now()
	var wg sync.WaitGroup
	step := 1
	if batch > 1 {
		step = batch
	}
	for g := 0; g < conns; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := &httpapi.Client{Base: url}
			for !done.Load() {
				i := int(cursor.Add(int64(step))) - step
				if i >= len(wire) {
					return
				}
				j := min(i+step, len(wire))
				if batch > 1 {
					recs, batchDone, err := c.CheckInBatch(wire[i:j])
					if err != nil {
						errs <- err
						return
					}
					fed.Add(int64(len(recs)))
					if batchDone {
						done.Store(true)
					}
				} else {
					rec, err := c.CheckIn(wire[i])
					if err != nil {
						errs <- err
						return
					}
					fed.Add(1)
					if rec.Done {
						done.Store(true)
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return err
	}

	// Wait for the subscriber to observe platform_done, then audit.
	select {
	case err := <-streamErr:
		if err != nil {
			return fmt.Errorf("event stream: %w", err)
		}
	case <-time.After(10 * time.Second):
		return errors.New("timed out waiting for platform_done on the event stream")
	}
	st, err := client.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("fed %d workers in %v (%.0f workers/s over the wire)\n",
		fed.Load(), elapsed.Round(time.Millisecond), float64(fed.Load())/elapsed.Seconds())
	fmt.Printf("gateway: latency=%d relative=%d workers_seen=%d resolved=%d/%d done=%v\n",
		st.Latency, st.RelativeLatency, st.WorkersSeen, st.Resolved, st.Total, st.Done)
	if !st.Done || st.Resolved != st.Total {
		return fmt.Errorf("gateway incomplete: %d/%d resolved", st.Resolved, st.Total)
	}
	if len(completions) != len(in.Tasks) || dupes > 0 || platformDone != 1 {
		return fmt.Errorf("event audit failed: %d/%d distinct completions, %d duplicates, %d platform_done",
			len(completions), len(in.Tasks), dupes, platformDone)
	}
	fmt.Printf("events: %d task_completed (all distinct), platform_done observed — exactly-once delivery holds\n",
		len(completions))

	if conns == 1 {
		// Sequential feed: the wire must not change assignment decisions.
		// Mirror the gateway's spatial grid by replaying its REQUESTED
		// shard count — the effective count can be lower (collapsed empty
		// tiles) and would build a different grid if requested directly.
		replayShards := st.RequestedShards
		if replayShards == 0 { // older gateway without the field
			replayShards = st.Shards
		}
		ref, err := ltc.NewPlatform(in, algo, ltc.WithShards(replayShards), ltc.WithSeed(seed))
		if err != nil {
			return err
		}
		defer ref.Close()
		for _, w := range in.Workers {
			if ref.Done() {
				break
			}
			if _, err := ref.CheckIn(w); err != nil {
				return err
			}
		}
		if ref.Latency() != st.Latency {
			return fmt.Errorf("HTTP-fed latency %d != in-process latency %d", st.Latency, ref.Latency())
		}
		fmt.Printf("in-process replay: latency=%d — matches the HTTP-fed run\n", ref.Latency())
	}
	fmt.Println("loadgen: PASS")
	return nil
}
