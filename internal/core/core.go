// Package core implements the algorithms of "Latency-oriented Task
// Completion via Spatial Crowdsourcing" (Zeng et al., ICDE 2018):
//
//   - Offline (all worker information known in advance, §III):
//     MCF-LTC (Algorithm 1, minimum-cost-flow batches, 7.5-approximation)
//     and the Base-off greedy baseline from the evaluation.
//   - Online (workers arrive one by one, assignments irrevocable, §IV):
//     LAF — Largest Acc* First (Algorithm 2, 7.967-competitive),
//     AAM — Average And Maximum (Algorithm 3, 7.738-competitive),
//     and the Random baseline from the evaluation.
//   - Exact: a branch-and-bound solver for tiny instances, used to measure
//     empirical approximation ratios (the problem is NP-hard, Theorem 1).
//
// All algorithms consume a model.Instance plus a shared
// model.CandidateIndex and produce a model.Arrangement whose Latency() is
// the paper's objective MinMax(M).
package core

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"ltc/internal/model"
)

// Offline is an algorithm that sees the whole instance at once.
type Offline interface {
	Name() string
	Solve(in *model.Instance, ci *model.CandidateIndex) (*model.Arrangement, error)
}

// Online is an algorithm fed one worker at a time. Implementations must
// decide each worker's assignment immediately and irrevocably (the online
// LTC temporal constraint) using only the workers seen so far.
type Online interface {
	Name() string
	// Arrive offers the next worker and returns the tasks assigned to it
	// (possibly none). Workers must be offered in arrival order.
	Arrive(w model.Worker) []model.TaskID
	// Done reports whether every task has reached the quality threshold.
	Done() bool
}

// BatchOnline extends Online with an arrival that draws candidates from an
// explicit source instead of the solver's own index reference. The engine's
// batch step passes a model.PinnedQuery so a whole run of workers shares
// one snapshot load and one scratch buffer. ArriveVia must behave exactly
// like Arrive whenever the source serves the snapshot the solver's own
// index would — the paper's solvers are pure functions of the candidate
// list, so LAF, AAM and Random all satisfy this by construction.
type BatchOnline interface {
	Online
	// ArriveVia is Arrive with an explicit candidate source.
	ArriveVia(w model.Worker, src model.CandidateSource) []model.TaskID
}

// OnlineFactory builds a fresh Online solver bound to an instance. The
// candidate index must have been built for the same instance.
type OnlineFactory func(in *model.Instance, ci *model.CandidateIndex) Online

// Result captures one algorithm run with the paper's three metrics:
// effectiveness (Latency, the max arrival index used), and efficiency
// (Elapsed wall time, AllocBytes heap allocation delta).
type Result struct {
	Algorithm   string
	Arrangement *model.Arrangement
	Latency     int
	Completed   bool
	WorkersSeen int
	Elapsed     time.Duration
	AllocBytes  int64
}

// ErrIncomplete is returned by the runners when the worker stream was
// exhausted before every task reached δ. The paper assumes away this case;
// the runners surface it instead so harnesses can decide.
var ErrIncomplete = errors.New("ltc: workers exhausted before all tasks completed")

// RunOffline executes an offline algorithm and measures its cost.
func RunOffline(in *model.Instance, ci *model.CandidateIndex, algo Offline) (*Result, error) {
	start := time.Now()
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	arr, err := algo.Solve(in, ci)
	runtime.ReadMemStats(&msAfter)
	elapsed := time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("ltc: %s: %w", algo.Name(), err)
	}
	res := &Result{
		Algorithm:   algo.Name(),
		Arrangement: arr,
		Latency:     arr.Latency(),
		WorkersSeen: len(in.Workers),
		Elapsed:     elapsed,
		AllocBytes:  int64(msAfter.TotalAlloc - msBefore.TotalAlloc),
	}
	res.Completed = completedAll(in, arr)
	if !res.Completed {
		return res, ErrIncomplete
	}
	return res, nil
}

// RunOnline streams the instance's workers through a fresh Online solver
// until it reports Done or the stream ends, and measures the cost.
func RunOnline(in *model.Instance, ci *model.CandidateIndex, factory OnlineFactory) (*Result, error) {
	start := time.Now()
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)

	eng := NewEngine(in, ci, factory)
	seen := 0
	for _, w := range in.Workers {
		if eng.Done() {
			break
		}
		seen++
		eng.Arrive(w)
	}
	runtime.ReadMemStats(&msAfter)
	res := &Result{
		Algorithm:   eng.Name(),
		Arrangement: eng.Arrangement(),
		Latency:     eng.Arrangement().Latency(),
		Completed:   eng.Done(),
		WorkersSeen: seen,
		Elapsed:     time.Since(start),
		AllocBytes:  int64(msAfter.TotalAlloc - msBefore.TotalAlloc),
	}
	if !res.Completed {
		return res, ErrIncomplete
	}
	return res, nil
}

func completedAll(in *model.Instance, arr *model.Arrangement) bool {
	delta := in.Delta()
	for _, s := range arr.Accumulated {
		if !model.Completed(s, delta) {
			return false
		}
	}
	return true
}
