// Cluster tier, client side: a ClusterClient routes the plain gateway API
// across a multi-node cluster using the static tile→node topology, and
// merges the per-node event streams into one global gapless sequence.
//
// Routing is client-side and self-healing: every check-in, post and retire
// goes straight to the node the client's table says owns it; a node that
// disagrees answers HTTP 421 naming the owner (RedirectError), the client
// patches its table and retries. With a correct table — the steady state —
// every operation is a single hop.
//
// Cluster-level Done/Progress/Stats fold per-node GET /stats snapshots.
// Like ltc.Platform.Imbalance, the fold is per-node-consistent, not an
// atomic cut: each node's snapshot is internally consistent, but the nodes
// are sampled at slightly different instants, so transient sums (resolved,
// workers seen) can mix instants. Terminal facts — Done, and every total
// once Done is true — are exact, which is what the loadgen audits.
package httpapi

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ltc/internal/cluster"
	"ltc/internal/events"
	"ltc/internal/geo"
)

// maxRedirects bounds redirect-heal retries per logical operation. A static
// topology needs at most one heal per stale tile; anything deeper means two
// nodes disagree about ownership and retrying cannot converge.
const maxRedirects = 4

// ClusterClient routes the gateway API across the nodes of one cluster.
// Construct with NewClusterClient; methods are safe for concurrent use.
type ClusterClient struct {
	topo  *cluster.Topology
	nodes []*Client
	// table is the live tile→node routing table: seeded from the topology,
	// healed in place from 421 redirects.
	table []atomic.Int32
	// ownerOf caches initial-task→node ownership once Sync has fetched it
	// (length 0 before). Retires fall back to redirect-following without it.
	ownerOf []atomic.Int32
	// done marks nodes whose platform reported completion through a receipt
	// this client saw. hasTasks marks nodes the topology assigns tiles (and
	// therefore tasks) — the nodes whose completion the cluster waits on.
	done     []atomic.Bool
	hasTasks []bool
}

// NewClusterClient builds a routing client over the given node base URLs,
// one per topology node, in node-ID order.
func NewClusterClient(urls []string, topo *cluster.Topology) (*ClusterClient, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if len(urls) != topo.Nodes {
		return nil, fmt.Errorf("httpapi: %d node URLs for a %d-node topology", len(urls), topo.Nodes)
	}
	c := &ClusterClient{
		topo:     topo,
		nodes:    make([]*Client, len(urls)),
		table:    make([]atomic.Int32, len(topo.TileNode)),
		done:     make([]atomic.Bool, len(urls)),
		hasTasks: make([]bool, len(urls)),
	}
	for i, u := range urls {
		c.nodes[i] = &Client{Base: strings.TrimRight(u, "/")}
	}
	for i, n := range topo.TileNode {
		c.table[i].Store(int32(n))
		c.hasTasks[n] = true // only task tiles (and their BFS fold) get owners
	}
	return c, nil
}

// Node returns the plain client for one node — per-node stats polls and
// tests reach single nodes through it.
func (c *ClusterClient) Node(i int) *Client { return c.nodes[i] }

// Nodes returns the cluster size.
func (c *ClusterClient) Nodes() int { return len(c.nodes) }

// Route returns the node the client's live table routes the worker to.
func (c *ClusterClient) Route(w Worker) int {
	return int(c.table[c.topo.TileIndex(geo.Point{X: w.X, Y: w.Y})].Load())
}

// heal patches the live table after a redirect named owner for tile.
func (c *ClusterClient) heal(tile, owner int) error {
	if owner < 0 || owner >= len(c.nodes) {
		return fmt.Errorf("httpapi: redirect to out-of-range node %d", owner)
	}
	c.table[tile].Store(int32(owner))
	return nil
}

// CheckIn routes one worker to its owning node. A completed node bounces
// exactly as a completed single-node gateway does (200, "bounced":true),
// so a cluster feed behaves per node as N independent gateway feeds.
func (c *ClusterClient) CheckIn(w Worker) (Receipt, error) {
	tile := c.topo.TileIndex(geo.Point{X: w.X, Y: w.Y})
	for attempt := 0; attempt <= maxRedirects; attempt++ {
		n := int(c.table[tile].Load())
		rec, err := c.nodes[n].CheckIn(w)
		var re *RedirectError
		if errors.As(err, &re) {
			if err := c.heal(tile, re.Owner); err != nil {
				return Receipt{}, err
			}
			continue
		}
		if err == nil && rec.Done {
			c.done[n].Store(true)
		}
		return rec, err
	}
	return Receipt{}, fmt.Errorf("httpapi: redirect loop checking in worker %d (tile %d)", w.Index, tile)
}

// CheckInBatch routes one batch across the cluster by splitting it into
// maximal same-node runs (consecutive workers routing to one node) and
// posting each run as a node-local batch, preserving arrival order within
// every node. Runs for nodes that already completed are skipped — the
// node-side contract ingests nothing after completion, so the skip is
// wire-equivalent and their workers are simply unobserved, like a truncated
// tail. Receipts cover exactly the ingested workers, in feed order; done
// reports whether every task-owning node has completed.
func (c *ClusterClient) CheckInBatch(ws []Worker) ([]Receipt, bool, error) {
	var recs []Receipt
	heals := 0
	for i := 0; i < len(ws); {
		n := c.Route(ws[i])
		j := i + 1
		for j < len(ws) && c.Route(ws[j]) == n {
			j++
		}
		if c.done[n].Load() {
			i = j
			continue
		}
		run, done, err := c.nodes[n].CheckInBatch(ws[i:j])
		var re *RedirectError
		if errors.As(err, &re) {
			// The node disowned the run's re.Index-th worker: heal that tile
			// and re-split from i (nothing was ingested — node-side ownership
			// checks run before the batch touches the platform).
			if heals++; heals > maxRedirects {
				return nil, false, fmt.Errorf("httpapi: redirect loop in batch at worker %d", i)
			}
			if re.Index < 0 || i+re.Index >= j {
				return nil, false, fmt.Errorf("httpapi: batch redirect with bad index %d", re.Index)
			}
			w := ws[i+re.Index]
			if err := c.heal(c.topo.TileIndex(geo.Point{X: w.X, Y: w.Y}), re.Owner); err != nil {
				return nil, false, err
			}
			continue
		}
		if err != nil {
			return nil, false, err
		}
		recs = append(recs, run...)
		if done {
			c.done[n].Store(true)
		}
		i = j
	}
	return recs, c.Complete(), nil
}

// Complete reports whether every task-owning node has reported completion
// through a receipt this client observed — the client-side view that lets a
// feeder stop without polling. Poll Done for the authoritative answer.
func (c *ClusterClient) Complete() bool {
	for n, has := range c.hasTasks {
		if has && !c.done[n].Load() {
			return false
		}
	}
	return true
}

// PostTask posts a task at (x, y) on its owning node and returns its
// cluster-global ID (owner-recoverable: see cluster.PostedOwner).
func (c *ClusterClient) PostTask(x, y float64) (int, error) {
	tile := c.topo.TileIndex(geo.Point{X: x, Y: y})
	for attempt := 0; attempt <= maxRedirects; attempt++ {
		n := int(c.table[tile].Load())
		id, err := c.nodes[n].PostTask(x, y)
		var re *RedirectError
		if errors.As(err, &re) {
			if err := c.heal(tile, re.Owner); err != nil {
				return 0, err
			}
			continue
		}
		return id, err
	}
	return 0, fmt.Errorf("httpapi: redirect loop posting task at (%g, %g)", x, y)
}

// RetireTask retires a cluster-global task ID on its owning node. Posted
// IDs carry their owner arithmetically; initial IDs use the ownership map
// Sync fetched, or redirect-following when the client never synced.
func (c *ClusterClient) RetireTask(id int) error {
	n := 0
	if node, _, err := c.topo.PostedOwner(id); err == nil {
		n = node
	} else if id >= 0 && id < len(c.ownerOf) {
		n = int(c.ownerOf[id].Load())
	}
	for attempt := 0; attempt <= maxRedirects; attempt++ {
		err := c.nodes[n].RetireTask(id)
		var re *RedirectError
		if !errors.As(err, &re) {
			return err
		}
		if re.Owner < 0 || re.Owner >= len(c.nodes) {
			return fmt.Errorf("httpapi: redirect to out-of-range node %d", re.Owner)
		}
		n = re.Owner
		if id >= 0 && id < len(c.ownerOf) {
			c.ownerOf[id].Store(int32(n))
		}
	}
	return fmt.Errorf("httpapi: redirect loop retiring task %d", id)
}

// Sync waits for every node to answer, verifies each serves the slot and
// topology this client routes by (node ID, cluster size, fingerprint — a
// fingerprint mismatch means the node generated from different workload
// flags), checks the nodes' initial tasks tile the global ID space exactly
// once, and caches initial-task ownership for RetireTask. Returns the
// per-node infos.
func (c *ClusterClient) Sync(ctx context.Context) ([]ClusterInfo, error) {
	owned := make([]atomic.Int32, c.topo.TotalTasks)
	covered := make([]bool, c.topo.TotalTasks)
	infos := make([]ClusterInfo, len(c.nodes))
	for n, cl := range c.nodes {
		if err := cl.WaitReady(ctx); err != nil {
			return nil, fmt.Errorf("node %d: %w", n, err)
		}
		var info ClusterInfo
		if err := cl.doJSON(http.MethodGet, "/cluster/info", nil, &info); err != nil {
			return nil, fmt.Errorf("node %d: %w", n, err)
		}
		switch {
		case info.Node != n:
			return nil, fmt.Errorf("url %s serves node %d, expected node %d — shuffled -cluster URLs?", cl.Base, info.Node, n)
		case info.Nodes != c.topo.Nodes:
			return nil, fmt.Errorf("node %d serves a %d-node cluster, topology has %d", n, info.Nodes, c.topo.Nodes)
		case info.Fingerprint != c.topo.Fingerprint():
			return nil, fmt.Errorf("node %d topology fingerprint %s != client %s — mismatched workload flags?",
				n, info.Fingerprint, c.topo.Fingerprint())
		}
		for _, g := range info.Tasks {
			if g < 0 || g >= c.topo.TotalTasks {
				return nil, fmt.Errorf("node %d claims out-of-range task %d", n, g)
			}
			if covered[g] {
				return nil, fmt.Errorf("task %d claimed by two nodes", g)
			}
			covered[g] = true
			owned[g].Store(int32(n))
		}
		infos[n] = info
	}
	for g, ok := range covered {
		if !ok {
			return nil, fmt.Errorf("task %d owned by no node", g)
		}
	}
	c.ownerOf = owned
	return infos, nil
}

// ClusterStats is the fold of per-node stats snapshots. Done ANDs node
// completion, Latency is the max (per-node latency is already in global
// worker-index units, so the cluster's completion time is the slowest
// node's), counts are sums. Per-node-consistent, not an atomic cut — see
// the package comment in cluster_client.go.
type ClusterStats struct {
	Nodes       []NodeStats
	Done        bool
	Tasks       int
	Resolved    int
	Total       int
	WorkersSeen int
	Latency     int
	Migrations  int
}

// Stats polls every node's /stats and folds them.
func (c *ClusterClient) Stats() (ClusterStats, error) {
	cs := ClusterStats{Nodes: make([]NodeStats, len(c.nodes)), Done: true}
	for n, cl := range c.nodes {
		var st NodeStats
		if err := cl.doJSON(http.MethodGet, "/stats", nil, &st); err != nil {
			return ClusterStats{}, fmt.Errorf("node %d: %w", n, err)
		}
		cs.Nodes[n] = st
		cs.Done = cs.Done && st.Done
		cs.Tasks += st.Tasks
		cs.Resolved += st.Resolved
		cs.Total += st.Total
		cs.WorkersSeen += st.WorkersSeen
		cs.Migrations += st.Migrations
		if st.Latency > cs.Latency {
			cs.Latency = st.Latency
		}
	}
	return cs, nil
}

// Progress folds per-node progress counters.
func (c *ClusterClient) Progress() (resolved, total int, err error) {
	st, err := c.Stats()
	return st.Resolved, st.Total, err
}

// Done polls the cluster for completion: every node done.
func (c *ClusterClient) Done() (bool, error) {
	st, err := c.Stats()
	return st.Done, err
}

// ClusterEvent is one event of the merged cluster stream: the node it came
// from, its dense cluster sequence number, and the wire event (whose Seq
// stays the node-local sequence the merge folded).
type ClusterEvent struct {
	Node       int
	ClusterSeq uint64
	Event
}

// sourcedEvent tags a node stream's event with its origin.
type sourcedEvent struct {
	node int
	e    Event
}

// ClusterStream is the merged cluster event stream: per-node SSE
// subscriptions supervised (reconnect with capped backoff, resume from the
// last folded per-node sequence) and folded into one global gapless
// sequence by events.StreamMerger. Single-reader, like EventStream.
type ClusterStream struct {
	ctx    context.Context
	cancel context.CancelFunc
	ch     chan sourcedEvent
	merger *events.StreamMerger
	since  []atomic.Uint64
	wg     sync.WaitGroup
}

// OpenClusterEvents starts the merged stream. Unlike OpenEvents it does not
// wait for the node subscriptions to be live — cluster nodes replay their
// recorded log from the beginning, so no event can be missed by
// subscribing late. Close the stream (or cancel ctx) to stop.
func (c *ClusterClient) OpenClusterEvents(ctx context.Context) *ClusterStream {
	ctx, cancel := context.WithCancel(ctx)
	s := &ClusterStream{
		ctx: ctx, cancel: cancel,
		ch:     make(chan sourcedEvent, 64),
		merger: events.NewStreamMerger(len(c.nodes)),
		since:  make([]atomic.Uint64, len(c.nodes)),
	}
	for n := range c.nodes {
		s.wg.Add(1)
		go s.supervise(c.nodes[n], n)
	}
	return s
}

// supervise keeps one node's subscription alive: open (resuming after the
// last folded sequence), pump events to the merge channel, and on any
// disconnect reconnect with capped exponential backoff + jitter. Events
// read but not yet folded are still in the channel when a reconnect
// replays them; the merger rejects those as duplicates and Next drops
// them, so supervision never loses or double-delivers an event.
func (s *ClusterStream) supervise(cl *Client, n int) {
	defer s.wg.Done()
	for attempt := 0; ; attempt++ {
		st, err := cl.OpenEventsSince(s.ctx, s.since[n].Load())
		if err == nil {
			for {
				e, nerr := st.Next()
				if nerr != nil {
					_ = st.Close()
					break
				}
				attempt = 0
				select {
				case s.ch <- sourcedEvent{node: n, e: e}:
				case <-s.ctx.Done():
					_ = st.Close()
					return
				}
			}
		}
		if s.ctx.Err() != nil {
			return
		}
		select {
		case <-s.ctx.Done():
			return
		case <-time.After(backoffDelay(attempt)):
		}
	}
}

// Next blocks for the next event of the merged stream and returns it with
// its cluster sequence number (dense from 1). Reconnect replays are folded
// away silently; a true per-node gap — an event irrecoverably lost — is a
// hard error, never a skip. Returns io.EOF once the stream is closed or
// its context cancelled.
func (s *ClusterStream) Next() (ClusterEvent, error) {
	for {
		select {
		case <-s.ctx.Done():
			return ClusterEvent{}, io.EOF
		case se := <-s.ch:
			cseq, err := s.merger.Fold(se.node, se.e.Seq)
			if errors.Is(err, events.ErrSeqDuplicate) {
				continue
			}
			if err != nil {
				return ClusterEvent{}, err
			}
			s.since[se.node].Store(s.merger.Delivered(se.node))
			return ClusterEvent{Node: se.node, ClusterSeq: cseq, Event: se.e}, nil
		}
	}
}

// Close stops the merged stream and waits for its supervisors to exit.
func (s *ClusterStream) Close() {
	s.cancel()
	s.wg.Wait()
}
