package ltc

import (
	"testing"
)

// TestFunctionalOptionsMatchLegacyStructs: the v1 structs and the v2
// functional options must configure identical runs — the shim contract
// that keeps old call sites both compiling and behaving.
func TestFunctionalOptionsMatchLegacyStructs(t *testing.T) {
	in := tinyInstance(t)
	ci := NewCandidateIndex(in)

	legacy, err := Solve(in, RandomAssign, SolveOptions{Seed: 99, Index: ci})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := Solve(in, RandomAssign, WithSeed(99), WithIndex(ci))
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Latency != v2.Latency || len(legacy.Arrangement.Pairs) != len(v2.Arrangement.Pairs) {
		t.Fatalf("legacy latency %d vs v2 %d", legacy.Latency, v2.Latency)
	}

	feed := func(p *Platform) {
		t.Helper()
		for _, w := range in.Workers {
			if p.Done() {
				break
			}
			if _, err := p.CheckIn(w); err != nil {
				t.Fatal(err)
			}
		}
	}
	pLegacy, err := NewPlatform(in, RandomAssign, PlatformOptions{Shards: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	pV2, err := NewPlatform(in, RandomAssign, WithShards(2), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	feed(pLegacy)
	feed(pV2)
	if pLegacy.Latency() != pV2.Latency() || pLegacy.Shards() != pV2.Shards() {
		t.Fatalf("legacy platform latency %d/%d shards vs v2 %d/%d",
			pLegacy.Latency(), pLegacy.Shards(), pV2.Latency(), pV2.Shards())
	}
}

// TestOptionsComposeAndOverride: options apply in order (last wins), and
// every constructor accepts the same Option type — including ReplayChurn,
// which took a positional struct in v1.
func TestOptionsComposeAndOverride(t *testing.T) {
	in := tinyInstance(t)
	p, err := NewPlatform(in, AAM, WithShards(8), WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards() != 1 {
		t.Fatalf("override: %d shards, want 1", p.Shards())
	}
	// A legacy struct composes with functional options: only its non-zero
	// fields apply (zero means "default" everywhere), so it neither
	// clobbers earlier options it doesn't mention nor survives a later
	// override.
	p2, err := NewPlatform(in, AAM, PlatformOptions{Shards: 4}, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if p2.Shards() != 2 {
		t.Fatalf("struct-then-option: %d shards, want 2", p2.Shards())
	}
	p3, err := NewPlatform(in, AAM, WithShards(2), PlatformOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if p3.Shards() != 2 {
		t.Fatalf("zero struct field clobbered an earlier option: %d shards, want 2", p3.Shards())
	}

	cc := DefaultChurn(DefaultWorkload().Scale(0.01))
	cw, err := cc.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayChurn(cw, LAF, WithShards(1)); err != nil {
		t.Fatal(err)
	}
	// The v1 positional-struct call shape still compiles and runs.
	if _, err := ReplayChurn(cw, LAF, PlatformOptions{Shards: 1}); err != nil {
		t.Fatal(err)
	}
}

// TestOptionsValidation: option values are validated where they land —
// negative shard counts and queue capacities fail construction.
func TestOptionsValidation(t *testing.T) {
	in := tinyInstance(t)
	if _, err := NewPlatform(in, AAM, WithShards(-1)); err == nil {
		t.Fatal("negative shards accepted")
	}
	if _, err := NewPlatform(in, AAM, WithQueueCap(-1)); err == nil {
		t.Fatal("negative queue cap accepted")
	}
	if _, err := NewPlatform(in, AAM, WithMaxDrain(-1)); err == nil {
		t.Fatal("negative max drain accepted")
	}
	// Session/Solve ignore platform-only options rather than erroring.
	if _, err := NewSession(in, AAM, WithShards(-1), WithQueueCap(-1)); err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(in, LAF, WithShards(64)); err != nil {
		t.Fatal(err)
	}
}

// TestSolveBatchMultiplierAndExactOptions keeps the solver-tuning options
// reachable through the v2 surface.
func TestSolveBatchMultiplierAndExactOptions(t *testing.T) {
	in := tinyInstance(t)
	res, err := Solve(in, MCFLTC, WithBatchMultiplier(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Arrangement.Validate(in, true); err != nil {
		t.Fatal(err)
	}
	// A hopeless node budget must surface the Exact solver's failure.
	if _, err := Solve(in, Exact, WithExactMaxNodes(1)); err == nil {
		t.Fatal("1-node Exact budget succeeded")
	}
}

// TestEventBufferOption: WithEventBuffer bounds Subscribe's buffer — a
// 1-slot subscriber that never reads drops everything past the first
// event.
func TestEventBufferOption(t *testing.T) {
	in := tinyInstance(t)
	p, err := NewPlatform(in, AAM, WithShards(1), WithEventBuffer(1))
	if err != nil {
		t.Fatal(err)
	}
	sub := p.Subscribe()
	defer sub.Close()
	for _, w := range in.Workers {
		if p.Done() {
			break
		}
		if _, err := p.CheckIn(w); err != nil {
			t.Fatal(err)
		}
	}
	if !p.Done() {
		t.Fatal("incomplete")
	}
	// len(in.Tasks) completions + 1 platform-done were published; the
	// unread 1-slot buffer kept the first and dropped the rest.
	if got, want := sub.Dropped(), uint64(len(in.Tasks)); got != want {
		t.Fatalf("dropped %d events, want %d", got, want)
	}
}
