//go:build !lockdebug

package dispatch

// Release-build stubs for the lockdebug runtime lock-order checker (see
// lockdebug_on.go). Empty bodies compile to nothing and inline away, so the
// instrumented lock sites cost zero when the tag is off. The same invariants
// are enforced statically by ltclint's lockorder analyzer; the tagged build
// re-checks them dynamically under -race in the nightly stress run.

func ldLock(class string, ord int)   {}
func ldUnlock(class string, ord int) {}
func ldAssertNoneHeld(op string)     {}
