//go:build !race

package dispatch

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation allocates, so allocation-count tests skip under -race.
const raceEnabled = false
