// Command tradeoff sweeps the tolerable error rate ε and plots (in text)
// the quality-latency trade-off that motivates the whole paper: a stricter
// ε raises the Hoeffding threshold δ = 2·ln(1/ε), which needs more workers
// per task (higher latency) but yields lower empirical answer error. It
// also compares the paper's model-weighted vote against a model-free EM
// truth inference on the same answers.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"ltc"
)

func main() {
	cfg := ltc.DefaultWorkload().Scale(0.02) // 60 tasks, 800 workers
	cfg.Seed = 404
	base, err := cfg.Generate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quality-latency trade-off on %d tasks / %d workers (K=%d), AAM online\n\n",
		len(base.Tasks), len(base.Workers), base.K)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "ε\tδ\tlatency\tassignments\tweighted-vote err\tEM err")
	for _, eps := range []float64{0.30, 0.22, 0.14, 0.10, 0.06, 0.03} {
		in := *base // tasks/workers shared; ε varies
		in.Epsilon = eps

		res, err := ltc.Solve(&in, ltc.AAM)
		if err != nil {
			log.Fatalf("ε=%.2f: %v", eps, err)
		}
		rep := ltc.VerifyQuality(&in, res.Arrangement, 300, 7)
		emErr := emErrorRate(&in, res.Arrangement, 300, 7)
		fmt.Fprintf(w, "%.2f\t%.2f\t%d\t%d\t%.4f\t%.4f\n",
			eps, in.Delta(), res.Latency, len(res.Arrangement.Pairs), rep.ErrorRate, emErr)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nreading the table: moving down, the platform demands lower error (ε),")
	fmt.Println("pays for it with more workers (latency), and the measured error of both")
	fmt.Println("aggregation schemes stays below the corresponding ε — the LTC guarantee.")
}

// emErrorRate replays the arrangement like ltc.VerifyQuality but aggregates
// with model-free EM truth inference instead of the model-weighted vote.
func emErrorRate(in *ltc.Instance, arr *ltc.Arrangement, trials int, seed uint64) float64 {
	wrong, total := 0, 0
	for trial := 0; trial < trials; trial++ {
		labels, truth, answered, err := ltc.InferTruthEM(in, arr, seed+uint64(trial))
		if err != nil {
			log.Fatal(err)
		}
		for t, l := range labels {
			if !answered[t] {
				continue
			}
			total++
			if l != truth[t] {
				wrong++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(wrong) / float64(total)
}
