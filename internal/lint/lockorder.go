package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"ltc/internal/lint/analysis"
)

// LockOrder enforces the lock hierarchy documented in CONCURRENCY.md. Mutex
// fields are annotated //ltc:lock <class> (classes: regMu < shard < async <
// index < queue < leaf). The analyzer tracks the set of annotated locks held
// at each statement and reports:
//
//   - acquiring a lock whose class level is not strictly above every held
//     lock's level (same-class acquisitions of an indexed class are allowed
//     only on lines marked //ltc:ascending);
//   - acquiring a leaf-class lock — the event bus, the flush dedup mutex —
//     while ANY annotated lock is held (publication must happen after the
//     emitting call's locks are released);
//   - calling a function that may transitively acquire a conflicting class
//     (per-function summaries flow across packages as facts);
//   - in packages that annotate at least one lock, declaring a mutex field
//     with no //ltc:lock annotation.
//
// The walk is intra-procedural and flow-structured: branches are analyzed
// separately and merged by union, deferred unlocks hold to function end, and
// `go` statements start with an empty held set.
var LockOrder = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "enforce the regMu → shard → index/queue lock order with the event bus as a leaf",
	Run:  runLockOrder,
}

const lockFactPrefix = "lockorder:"

type heldLock struct {
	class    string
	instance string // source rendering of the lock expression, e.g. "d.regMu"
	level    int
}

type heldSet []heldLock

func (h heldSet) clone() heldSet { return append(heldSet(nil), h...) }

func (h heldSet) describe() string {
	var names []string
	for _, l := range h {
		names = append(names, fmt.Sprintf("%s (%s)", l.instance, l.class))
	}
	return strings.Join(names, ", ")
}

type lockOrderRun struct {
	pass      *analysis.Pass
	anns      *Annotations
	summaries map[*types.Func]map[string]bool // transitive may-acquire, package-local
}

func runLockOrder(pass *analysis.Pass) error {
	lo := &lockOrderRun{
		pass:      pass,
		anns:      annotationsFor(pass),
		summaries: map[*types.Func]map[string]bool{},
	}

	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}

	lo.buildSummaries(decls)

	for _, fd := range decls {
		lo.walkBody(fd.Body, heldSet{})
	}

	lo.exportFacts(decls)
	lo.checkUnannotatedMutexes()
	return nil
}

// --- phase 1: per-function transitive may-acquire summaries ---

func (lo *lockOrderRun) buildSummaries(decls []*ast.FuncDecl) {
	direct := map[*types.Func]map[string]bool{}
	calls := map[*types.Func]map[*types.Func]bool{}

	for _, fd := range decls {
		fn, _ := lo.pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if fn == nil {
			continue
		}
		d, c := map[string]bool{}, map[*types.Func]bool{}
		lo.collectAcquires(fd.Body, d, c)
		for _, class := range lo.anns.Acquires[fn] {
			d[class] = true
		}
		direct[fn], calls[fn] = d, c
	}

	// Transitive closure over the package-local call graph. Imported
	// callees already contribute their (final) fact classes via
	// collectAcquires, so only local edges need iterating.
	lo.summaries = direct
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			for callee := range callees {
				for class := range lo.summaries[callee] {
					if !lo.summaries[fn][class] {
						lo.summaries[fn][class] = true
						changed = true
					}
				}
			}
		}
	}
}

// collectAcquires gathers the lock classes directly acquired in body and the
// package-local functions it calls synchronously. Function literals started
// by `go` statements run on their own goroutine and are excluded.
func (lo *lockOrderRun) collectAcquires(body ast.Node, classes map[string]bool, calls map[*types.Func]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// Evaluate only the call's arguments in this goroutine.
			for _, arg := range n.Call.Args {
				lo.collectAcquires(arg, classes, calls)
			}
			return false
		case *ast.CallExpr:
			if ann, _, ok := lo.lockTarget(n, "Lock", "RLock"); ok {
				classes[ann.Class] = true
				return true
			}
			if fn := lo.staticCallee(n); fn != nil {
				if fn.Pkg() == lo.pass.Pkg {
					calls[fn] = true
				} else {
					for _, class := range lo.importedClasses(fn) {
						classes[class] = true
					}
				}
			}
		}
		return true
	})
}

func (lo *lockOrderRun) exportFacts(decls []*ast.FuncDecl) {
	for _, fd := range decls {
		fn, _ := lo.pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if fn == nil {
			continue
		}
		var classes []string
		for class := range lo.summaries[fn] {
			classes = append(classes, class)
		}
		sort.Strings(classes)
		lo.pass.Facts.Set(lockFactPrefix+fn.FullName(), classes)
	}
}

// mayAcquire returns the lock classes fn may transitively acquire.
func (lo *lockOrderRun) mayAcquire(fn *types.Func) []string {
	if fn.Pkg() == lo.pass.Pkg {
		var classes []string
		for class := range lo.summaries[fn] {
			classes = append(classes, class)
		}
		sort.Strings(classes)
		return classes
	}
	return lo.importedClasses(fn)
}

func (lo *lockOrderRun) importedClasses(fn *types.Func) []string {
	v, ok := lo.pass.Facts.Get(lockFactPrefix + fn.FullName())
	if !ok {
		return nil
	}
	switch v := v.(type) {
	case []string:
		return v
	case []any: // facts that round-tripped through JSON
		var classes []string
		for _, c := range v {
			if s, ok := c.(string); ok {
				classes = append(classes, s)
			}
		}
		return classes
	}
	return nil
}

// --- phase 2: flow-structured held-set walk ---

// walkBody analyzes a statement list, mutating h in place.
func (lo *lockOrderRun) walkBody(block *ast.BlockStmt, h heldSet) {
	cur := &h
	for _, s := range block.List {
		lo.stmt(s, cur)
	}
}

func (lo *lockOrderRun) stmt(s ast.Stmt, h *heldSet) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, inner := range s.List {
			lo.stmt(inner, h)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			lo.stmt(s.Init, h)
		}
		lo.exprs(h, s.Cond)
		thenH := h.clone()
		lo.stmt(s.Body, &thenH)
		elseH := h.clone()
		if s.Else != nil {
			lo.stmt(s.Else, &elseH)
		}
		*h = merge(branchExit(s.Body, thenH), branchExit(s.Else, elseH))
	case *ast.ForStmt:
		if s.Init != nil {
			lo.stmt(s.Init, h)
		}
		lo.exprs(h, s.Cond)
		bodyH := h.clone()
		lo.stmt(s.Body, &bodyH)
		if s.Post != nil {
			lo.stmt(s.Post, &bodyH)
		}
		*h = merge(*h, bodyH)
	case *ast.RangeStmt:
		lo.exprs(h, s.X)
		bodyH := h.clone()
		lo.stmt(s.Body, &bodyH)
		*h = merge(*h, bodyH)
	case *ast.SwitchStmt:
		if s.Init != nil {
			lo.stmt(s.Init, h)
		}
		lo.exprs(h, s.Tag)
		lo.caseClauses(s.Body, h)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			lo.stmt(s.Init, h)
		}
		lo.caseClauses(s.Body, h)
	case *ast.SelectStmt:
		lo.caseClauses(s.Body, h)
	case *ast.LabeledStmt:
		lo.stmt(s.Stmt, h)
	case *ast.GoStmt:
		// Arguments are evaluated on this goroutine; the call itself
		// (and a function-literal body) runs concurrently with nothing
		// held.
		for _, arg := range s.Call.Args {
			lo.exprs(h, arg)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			empty := heldSet{}
			lo.walkBody(lit.Body, empty)
		}
	case *ast.DeferStmt:
		if ann, instance, ok := lo.lockTarget(s.Call, "Unlock", "RUnlock"); ok {
			// Deferred unlock: the lock stays held to function end;
			// nothing to update.
			_, _ = ann, instance
			break
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			deferH := h.clone()
			lo.walkBody(lit.Body, deferH)
			break
		}
		lo.exprs(h, s.Call)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			lo.exprs(h, r)
		}
	case *ast.ExprStmt:
		lo.exprs(h, s.X)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			lo.exprs(h, r)
		}
		for _, l := range s.Lhs {
			lo.exprs(h, l)
		}
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		lo.exprs(h, s)
	case *ast.BranchStmt, *ast.EmptyStmt:
		// no effect
	default:
		if s != nil {
			lo.exprs(h, s)
		}
	}
}

// caseClauses analyzes each clause of a switch/select body on a clone of the
// entry held set and merges the non-terminating exits.
func (lo *lockOrderRun) caseClauses(body *ast.BlockStmt, h *heldSet) {
	exit := h.clone()
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				lo.exprs(h, e)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				lo.stmt(c.Comm, h)
			}
			stmts = c.Body
		}
		branchH := h.clone()
		for _, s := range stmts {
			lo.stmt(s, &branchH)
		}
		if !stmtsTerminate(stmts) {
			exit = merge(exit, branchH)
		}
	}
	*h = exit
}

// branchExit returns the exit held set of a branch, or nil if the branch
// always terminates (return/panic), excluding it from the merge.
func branchExit(body ast.Stmt, h heldSet) heldSet {
	switch b := body.(type) {
	case nil:
		return h
	case *ast.BlockStmt:
		if stmtsTerminate(b.List) {
			return nil
		}
	case *ast.ReturnStmt:
		return nil
	}
	return h
}

func stmtsTerminate(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// merge unions two branch exits (nil means the branch terminated).
func merge(a, b heldSet) heldSet {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := a.clone()
	for _, l := range b {
		found := false
		for _, e := range out {
			if e.class == l.class && e.instance == l.instance {
				found = true
				break
			}
		}
		if !found {
			out = append(out, l)
		}
	}
	return out
}

// exprs processes every call (in source order) inside the given nodes,
// updating the held set and reporting violations.
func (lo *lockOrderRun) exprs(h *heldSet, nodes ...ast.Node) {
	for _, node := range nodes {
		if node == nil {
			continue
		}
		ast.Inspect(node, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				// Analyzed with the held set at its definition
				// site; its lock effects don't leak out (the
				// literal may run later or not at all).
				litH := h.clone()
				lo.walkBody(n.Body, litH)
				return false
			case *ast.CallExpr:
				lo.call(n, h)
				// Arguments were visited by lo.call via Inspect
				// order? No: returning true descends normally,
				// which re-visits Fun and Args; lo.call only
				// classifies n itself, so descending is correct.
			}
			return true
		})
	}
}

// call applies the effect of a single call expression on the held set.
func (lo *lockOrderRun) call(call *ast.CallExpr, h *heldSet) {
	if ann, instance, ok := lo.lockTarget(call, "Lock", "RLock"); ok {
		lo.checkAcquire(call, ann, instance, h)
		*h = append(*h, heldLock{class: ann.Class, instance: instance, level: lockLevels[ann.Class]})
		return
	}
	if _, instance, ok := lo.lockTarget(call, "Unlock", "RUnlock"); ok {
		for i, l := range *h {
			if l.instance == instance {
				*h = append((*h)[:i:i], (*h)[i+1:]...)
				break
			}
		}
		return
	}
	fn := lo.staticCallee(call)
	if fn == nil {
		return
	}
	for _, class := range lo.mayAcquire(fn) {
		lo.checkTransient(call, fn, class, *h)
	}
}

// checkAcquire validates a direct Lock/RLock against the held set.
func (lo *lockOrderRun) checkAcquire(call *ast.CallExpr, ann LockAnn, instance string, h *heldSet) {
	level := lockLevels[ann.Class]
	if ann.Class == "leaf" && len(*h) > 0 {
		lo.pass.Reportf(call.Pos(),
			"leaf lock %s acquired while holding %s; leaf locks (event bus, flush dedup) require an empty held set",
			instance, h.describe())
		return
	}
	for _, held := range *h {
		switch {
		case held.instance == instance:
			lo.pass.Reportf(call.Pos(), "lock %s is already held", instance)
		case level < held.level:
			lo.pass.Reportf(call.Pos(),
				"acquiring %s (class %s, level %d) while holding %s (class %s, level %d) violates the lock order",
				instance, ann.Class, level, held.instance, held.class, held.level)
		case level == held.level:
			if !(ann.Indexed && lo.anns.Ascending(lo.pass.Fset, call.Pos())) {
				lo.pass.Reportf(call.Pos(),
					"acquiring %s while holding same-class lock %s; indexed classes need an //ltc:ascending marker on the acquisition",
					instance, held.instance)
			}
		}
	}
}

// checkTransient validates a call that may transitively acquire class.
func (lo *lockOrderRun) checkTransient(call *ast.CallExpr, fn *types.Func, class string, h heldSet) {
	level := lockLevels[class]
	if class == "leaf" && len(h) > 0 {
		lo.pass.Reportf(call.Pos(),
			"call to %s may acquire a leaf lock (event bus) while holding %s; release all locks before publishing",
			fn.Name(), h.describe())
		return
	}
	for _, held := range h {
		switch {
		case level < held.level:
			lo.pass.Reportf(call.Pos(),
				"call to %s may acquire a %s-class lock (level %d) while holding %s (class %s, level %d), violating the lock order",
				fn.Name(), class, level, held.instance, held.class, held.level)
		case level == held.level:
			lo.pass.Reportf(call.Pos(),
				"call to %s may acquire a %s-class lock while one (%s) is already held",
				fn.Name(), class, held.instance)
		}
	}
}

// --- resolution helpers ---

// lockTarget reports whether call is `<expr>.<method>()` where method is one
// of names and expr resolves to an //ltc:lock-annotated mutex field.
func (lo *lockOrderRun) lockTarget(call *ast.CallExpr, names ...string) (LockAnn, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return LockAnn{}, "", false
	}
	match := false
	for _, n := range names {
		if sel.Sel.Name == n {
			match = true
		}
	}
	if !match {
		return LockAnn{}, "", false
	}
	field, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return LockAnn{}, "", false
	}
	obj := lo.pass.TypesInfo.Uses[field.Sel]
	if obj == nil {
		return LockAnn{}, "", false
	}
	ann, ok := lo.anns.LockClass[obj]
	if !ok {
		return LockAnn{}, "", false
	}
	return ann, types.ExprString(field), true
}

// staticCallee resolves the *types.Func a call statically invokes, or nil
// for builtins, conversions, function values and interface methods.
func (lo *lockOrderRun) staticCallee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		// Interface method calls have no static body; skip them so
		// summaries stay precise (dynamic dispatch is out of scope).
		if sel, ok := lo.pass.TypesInfo.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if types.IsInterface(sel.Recv()) {
				return nil
			}
		}
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := lo.pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// --- phase 4: annotation coverage ---

// checkUnannotatedMutexes reports mutex-typed struct fields that lack an
// //ltc:lock annotation, but only in packages that annotate at least one
// lock (packages outside the discipline are untouched).
func (lo *lockOrderRun) checkUnannotatedMutexes() {
	if !lo.anns.HasLockAnnotations() {
		return
	}
	for _, f := range lo.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					obj := lo.pass.TypesInfo.Defs[name]
					if obj == nil || !isMutexType(obj.Type()) {
						continue
					}
					if _, ok := lo.anns.LockClass[obj]; !ok {
						lo.pass.Reportf(name.Pos(),
							"mutex field %s has no //ltc:lock annotation in a lock-annotated package", name.Name)
					}
				}
			}
			return true
		})
	}
}

func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}
