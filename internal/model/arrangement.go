package model

import "fmt"

// Assignment records that the worker with the given arrival index performs
// the given task.
type Assignment struct {
	Worker int
	Task   TaskID
}

// Arrangement is a set of assignments M together with the statistics the
// LTC objective needs. Build one incrementally with Add, or from a slice
// with NewArrangement.
type Arrangement struct {
	Pairs []Assignment
	// Accumulated holds the per-task accumulated Acc* credit S[t].
	Accumulated []float64
	// latency caches max worker index over Pairs.
	latency int
}

// NewArrangement returns an empty arrangement for an instance with nTasks
// tasks.
func NewArrangement(nTasks int) *Arrangement {
	return &Arrangement{Accumulated: make([]float64, nTasks)}
}

// EnsureTasks grows the per-task credit table to cover n tasks, so
// arrangements can follow an instance whose task set grows online. Shrinking
// never happens (the dense TaskID space only extends).
func (a *Arrangement) EnsureTasks(n int) {
	for len(a.Accumulated) < n {
		a.Accumulated = append(a.Accumulated, 0)
	}
}

// Add appends the assignment (worker w performs task t with credit accStar).
func (a *Arrangement) Add(worker int, t TaskID, accStar float64) {
	a.Pairs = append(a.Pairs, Assignment{Worker: worker, Task: t})
	a.Accumulated[t] += accStar
	if worker > a.latency {
		a.latency = worker
	}
}

// Latency returns MinMax(M) = max over assignments of the worker arrival
// index — the paper's latency objective. Zero for an empty arrangement.
func (a *Arrangement) Latency() int { return a.latency }

// WorkersUsed returns the number of distinct workers with at least one
// assignment.
func (a *Arrangement) WorkersUsed() int {
	seen := make(map[int]struct{}, len(a.Pairs))
	for _, p := range a.Pairs {
		seen[p.Worker] = struct{}{}
	}
	return len(seen)
}

// TaskLatency returns L_t, the arrival index of the last worker assigned to
// task t (Definition 5), or 0 when the task has no assignments.
func (a *Arrangement) TaskLatency(t TaskID) int {
	max := 0
	for _, p := range a.Pairs {
		if p.Task == t && p.Worker > max {
			max = p.Worker
		}
	}
	return max
}

// Validate checks an arrangement against an instance: every referenced
// worker and task exists, no worker exceeds capacity K, every assignment is
// eligible (Acc ≥ MinAcc), no (worker, task) pair repeats, and — when
// requireComplete — every task accumulates at least δ credit.
//
// It recomputes accumulated credit from scratch, so it also guards against
// drift in incrementally built arrangements.
func (a *Arrangement) Validate(in *Instance, requireComplete bool) error {
	delta := in.Delta()
	load := make(map[int]int, len(a.Pairs))
	type pair struct {
		w int
		t TaskID
	}
	seen := make(map[pair]struct{}, len(a.Pairs))
	acc := make([]float64, len(in.Tasks))
	for _, p := range a.Pairs {
		if p.Worker < 1 || p.Worker > len(in.Workers) {
			return fmt.Errorf("%w: worker %d", ErrBadWorkerRef, p.Worker)
		}
		if p.Task < 0 || int(p.Task) >= len(in.Tasks) {
			return fmt.Errorf("%w: task %d", ErrBadTaskRef, p.Task)
		}
		key := pair{p.Worker, p.Task}
		if _, dup := seen[key]; dup {
			return fmt.Errorf("%w: worker %d task %d", ErrDuplicate, p.Worker, p.Task)
		}
		seen[key] = struct{}{}
		load[p.Worker]++
		if load[p.Worker] > in.K {
			return fmt.Errorf("%w: worker %d assigned %d > K=%d", ErrCapacityUsed, p.Worker, load[p.Worker], in.K)
		}
		w := in.Workers[p.Worker-1]
		t := in.Tasks[p.Task]
		pAcc, ok := in.Eligible(w, t)
		if !ok {
			return fmt.Errorf("%w: worker %d task %d Acc=%v < MinAcc=%v",
				ErrIneligible, p.Worker, p.Task, pAcc, in.MinAcc)
		}
		acc[p.Task] += AccStar(pAcc)
	}
	if requireComplete {
		for tid, s := range acc {
			if !Completed(s, delta) {
				return fmt.Errorf("%w: task %d has %.4f < δ=%.4f", ErrIncomplete, tid, s, delta)
			}
		}
	}
	return nil
}
