package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"ltc/internal/flow"
	"ltc/internal/geo"
	"ltc/internal/model"
	"ltc/internal/stats"
)

// randomInstance builds a random geometric LTC instance with tasks in a
// region and workers clustered near tasks (guaranteeing eligibility), then
// retries until the instance is feasible.
func randomInstance(rng *rand.Rand, nTasks, nWorkers, k int, eps float64) *model.Instance {
	for attempt := 0; ; attempt++ {
		if attempt > 0 && attempt%20 == 0 {
			// The requested parameters may be structurally infeasible
			// (e.g. K·|W| below the total assignment demand); grow supply.
			nWorkers += nWorkers / 2
		}
		in := &model.Instance{
			Epsilon: eps,
			K:       k,
			Model:   model.SigmoidDistance{DMax: 30},
			MinAcc:  0.66,
		}
		region := 120.0
		for t := 0; t < nTasks; t++ {
			in.Tasks = append(in.Tasks, model.Task{
				ID:  model.TaskID(t),
				Loc: geo.Point{X: rng.Float64() * region, Y: rng.Float64() * region},
			})
		}
		for w := 1; w <= nWorkers; w++ {
			// Place each worker near a random task so candidates exist.
			anchor := in.Tasks[rng.IntN(nTasks)].Loc
			in.Workers = append(in.Workers, model.Worker{
				Index: w,
				Loc: geo.Point{
					X: anchor.X + (rng.Float64()-0.5)*30,
					Y: anchor.Y + (rng.Float64()-0.5)*30,
				},
				Acc: 0.8 + rng.Float64()*0.2,
			})
		}
		ci := model.NewCandidateIndex(in)
		if ci.CheckFeasible() == nil && completableByAll(in, ci) {
			return in
		}
		if attempt > 200 {
			panic("randomInstance: could not build a feasible instance")
		}
	}
}

// completableByAll reports whether every deterministic algorithm — the ones
// the tests assert completion for — finishes the instance. CheckFeasible
// ignores capacity, and on scarce instances (small K) any one heuristic can
// strand credit that the others bank, so each must be certified
// individually; only Random is exempt (the tests tolerate ErrIncomplete
// for it).
func completableByAll(in *model.Instance, ci *model.CandidateIndex) bool {
	if _, err := RunOnline(in, ci, func(in *model.Instance, ci *model.CandidateIndex) Online {
		return NewLAF(in, ci)
	}); err != nil {
		return false
	}
	if _, err := RunOnline(in, ci, func(in *model.Instance, ci *model.CandidateIndex) Online {
		return NewAAM(in, ci)
	}); err != nil {
		return false
	}
	if _, err := RunOffline(in, ci, BaseOff{}); err != nil {
		return false
	}
	_, err := RunOffline(in, ci, &MCFLTC{})
	return err == nil
}

func allOnlineFactories(seed uint64) map[string]OnlineFactory {
	return map[string]OnlineFactory{
		"LAF": func(in *model.Instance, ci *model.CandidateIndex) Online { return NewLAF(in, ci) },
		"AAM": func(in *model.Instance, ci *model.CandidateIndex) Online { return NewAAM(in, ci) },
		"Random": func(in *model.Instance, ci *model.CandidateIndex) Online {
			return NewRandom(in, ci, seed)
		},
	}
}

// TestAllAlgorithmsProduceValidArrangements is the central invariant: every
// algorithm, on every feasible instance, yields an arrangement satisfying
// capacity, eligibility, non-duplication and completion.
func TestAllAlgorithmsProduceValidArrangements(t *testing.T) {
	rng := stats.NewRand(1001)
	for trial := 0; trial < 25; trial++ {
		in := randomInstance(rng, 2+rng.IntN(6), 40+rng.IntN(60), 1+rng.IntN(4), 0.1+rng.Float64()*0.2)
		ci := model.NewCandidateIndex(in)
		for name, factory := range allOnlineFactories(uint64(trial)) {
			res, err := RunOnline(in, ci, factory)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if err := res.Arrangement.Validate(in, true); err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if res.Latency <= 0 || res.Latency > len(in.Workers) {
				t.Fatalf("trial %d %s: latency %d out of range", trial, name, res.Latency)
			}
		}
		for _, algo := range []Offline{&MCFLTC{}, BaseOff{}} {
			res, err := RunOffline(in, ci, algo)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, algo.Name(), err)
			}
			if err := res.Arrangement.Validate(in, true); err != nil {
				t.Fatalf("trial %d %s: %v", trial, algo.Name(), err)
			}
		}
	}
}

// TestExactIsLowerBound: on tiny instances the exact solver's latency never
// exceeds any heuristic's.
func TestExactIsLowerBound(t *testing.T) {
	rng := stats.NewRand(2002)
	for trial := 0; trial < 12; trial++ {
		in := randomInstance(rng, 2+rng.IntN(2), 12+rng.IntN(5), 2, 0.25)
		ci := model.NewCandidateIndex(in)
		exact, err := RunOffline(in, ci, &Exact{})
		if err != nil {
			t.Fatalf("trial %d exact: %v", trial, err)
		}
		for name, factory := range allOnlineFactories(uint64(trial)) {
			res, err := RunOnline(in, ci, factory)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if res.Latency < exact.Latency {
				t.Fatalf("trial %d: %s latency %d beats exact %d", trial, name, res.Latency, exact.Latency)
			}
		}
		for _, algo := range []Offline{&MCFLTC{}, BaseOff{}} {
			res, err := RunOffline(in, ci, algo)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, algo.Name(), err)
			}
			if res.Latency < exact.Latency {
				t.Fatalf("trial %d: %s latency %d beats exact %d", trial, algo.Name(), res.Latency, exact.Latency)
			}
		}
	}
}

// TestDeterminism: LAF, AAM, MCF-LTC and Base-off are deterministic;
// Random is deterministic for a fixed seed.
func TestDeterminism(t *testing.T) {
	rng := stats.NewRand(3003)
	in := randomInstance(rng, 5, 80, 3, 0.15)
	ci := model.NewCandidateIndex(in)
	run := func(name string) []int {
		var out []int
		for rep := 0; rep < 3; rep++ {
			var latency int
			switch name {
			case "LAF":
				r, err := RunOnline(in, ci, func(in *model.Instance, ci *model.CandidateIndex) Online { return NewLAF(in, ci) })
				if err != nil {
					t.Fatal(err)
				}
				latency = r.Latency
			case "AAM":
				r, err := RunOnline(in, ci, func(in *model.Instance, ci *model.CandidateIndex) Online { return NewAAM(in, ci) })
				if err != nil {
					t.Fatal(err)
				}
				latency = r.Latency
			case "Random":
				r, err := RunOnline(in, ci, func(in *model.Instance, ci *model.CandidateIndex) Online { return NewRandom(in, ci, 7) })
				if err != nil {
					t.Fatal(err)
				}
				latency = r.Latency
			case "MCF-LTC":
				r, err := RunOffline(in, ci, &MCFLTC{})
				if err != nil {
					t.Fatal(err)
				}
				latency = r.Latency
			case "Base-off":
				r, err := RunOffline(in, ci, BaseOff{})
				if err != nil {
					t.Fatal(err)
				}
				latency = r.Latency
			}
			out = append(out, latency)
		}
		return out
	}
	for _, name := range []string{"LAF", "AAM", "Random", "MCF-LTC", "Base-off"} {
		ls := run(name)
		if ls[0] != ls[1] || ls[1] != ls[2] {
			t.Fatalf("%s nondeterministic: %v", name, ls)
		}
	}
}

// TestRandomSeedsVary: different seeds should produce different Random
// arrangements on a non-trivial instance (the final latency may coincide
// when a scarce bottleneck task gates completion, so compare assignments).
func TestRandomSeedsVary(t *testing.T) {
	rng := stats.NewRand(4004)
	in := randomInstance(rng, 6, 100, 2, 0.15)
	ci := model.NewCandidateIndex(in)
	signatures := map[string]bool{}
	for seed := uint64(0); seed < 8; seed++ {
		r, err := RunOnline(in, ci, func(in *model.Instance, ci *model.CandidateIndex) Online {
			return NewRandom(in, ci, seed)
		})
		if err != nil {
			t.Fatal(err)
		}
		sig := make([]byte, 0, len(r.Arrangement.Pairs)*3)
		for _, p := range r.Arrangement.Pairs {
			sig = append(sig, byte(p.Worker), byte(p.Worker>>8), byte(p.Task))
		}
		signatures[string(sig)] = true
	}
	if len(signatures) < 2 {
		t.Fatal("8 seeds produced identical arrangements — RNG not wired in")
	}
}

// TestTheorem2Bounds: with the constant-accuracy model of Theorem 2's
// McNaughton argument, the exact optimum respects the lower bound |T|δ/K.
func TestTheorem2Bounds(t *testing.T) {
	in := &model.Instance{
		Epsilon: 0.25, // δ ≈ 2.77
		K:       2,
		Model:   model.ConstantAccuracy{P: 1.0}, // Acc* = 1 per assignment
		MinAcc:  0.66,
	}
	for t0 := 0; t0 < 3; t0++ {
		in.Tasks = append(in.Tasks, model.Task{ID: model.TaskID(t0)})
	}
	for w := 1; w <= 10; w++ {
		in.Workers = append(in.Workers, model.Worker{Index: w, Acc: 1.0})
	}
	ci := model.NewCandidateIndex(in)
	res, err := RunOffline(in, ci, &Exact{})
	if err != nil {
		t.Fatal(err)
	}
	delta := in.Delta()
	lower := float64(len(in.Tasks)) * delta / float64(in.K)
	if float64(res.Latency) < lower {
		t.Fatalf("optimal latency %d below Theorem 2 lower bound %.2f", res.Latency, lower)
	}
	// With Acc* = 1 each task needs ⌈δ⌉ = 3 workers: 9 assignments, K=2 →
	// optimum is ⌈9/2⌉ = 5.
	if res.Latency != 5 {
		t.Fatalf("constant-accuracy optimum = %d, want 5", res.Latency)
	}
}

// TestAAMStrategySwitching: AAM starts in LGF when |T| ≥ K (avg = |T|δ/K ≥
// δ = maxRemain) and the hybrid uses both strategies on a typical run.
func TestAAMStrategySwitching(t *testing.T) {
	rng := stats.NewRand(5005)
	in := randomInstance(rng, 6, 120, 2, 0.15)
	ci := model.NewCandidateIndex(in)
	aam := NewAAM(in, ci)
	for _, w := range in.Workers {
		if aam.Done() {
			break
		}
		aam.Arrive(w)
	}
	lgf, lrf := aam.StrategyCounts()
	if lgf == 0 {
		t.Fatal("hybrid AAM never used LGF")
	}
	if lrf == 0 {
		t.Fatal("hybrid AAM never used LRF (tail tasks should trigger it)")
	}
	if !aam.Done() {
		t.Fatal("AAM did not finish")
	}
}

// TestAAMAblationsComplete: the LGF-only and LRF-only ablations still
// produce valid complete arrangements.
func TestAAMAblationsComplete(t *testing.T) {
	rng := stats.NewRand(6006)
	in := randomInstance(rng, 5, 100, 2, 0.15)
	ci := model.NewCandidateIndex(in)
	for _, s := range []AAMStrategy{StrategyLGFOnly, StrategyLRFOnly} {
		res, err := RunOnline(in, ci, func(in *model.Instance, ci *model.CandidateIndex) Online {
			return NewAAMWithStrategy(in, ci, s)
		})
		if err != nil {
			t.Fatalf("strategy %v: %v", s, err)
		}
		if err := res.Arrangement.Validate(in, true); err != nil {
			t.Fatalf("strategy %v: %v", s, err)
		}
	}
}

// TestAAMNames: the ablation variants report distinct names.
func TestAAMNames(t *testing.T) {
	rng := stats.NewRand(1)
	in := randomInstance(rng, 2, 20, 1, 0.3)
	ci := model.NewCandidateIndex(in)
	if NewAAM(in, ci).Name() != "AAM" {
		t.Fatal("hybrid name")
	}
	if NewAAMWithStrategy(in, ci, StrategyLGFOnly).Name() != "AAM-LGF" {
		t.Fatal("LGF name")
	}
	if NewAAMWithStrategy(in, ci, StrategyLRFOnly).Name() != "AAM-LRF" {
		t.Fatal("LRF name")
	}
}

// TestMCFEnginesAgree: Dijkstra-SSPA and SPFA-SSPA are interchangeable
// inside MCF-LTC — identical latency because the tie-broken costs admit a
// unique optimum.
func TestMCFEnginesAgree(t *testing.T) {
	rng := stats.NewRand(7007)
	for trial := 0; trial < 6; trial++ {
		in := randomInstance(rng, 3+rng.IntN(3), 40+rng.IntN(40), 2, 0.2)
		ci := model.NewCandidateIndex(in)
		rd, err := RunOffline(in, ci, &MCFLTC{Engine: flow.EngineDijkstra})
		if err != nil {
			t.Fatal(err)
		}
		rs, err := RunOffline(in, ci, &MCFLTC{Engine: flow.EngineSPFA})
		if err != nil {
			t.Fatal(err)
		}
		if rd.Latency != rs.Latency {
			t.Fatalf("trial %d: dijkstra %d vs spfa %d", trial, rd.Latency, rs.Latency)
		}
	}
}

// TestMCFUnitAugmentSameResult: unit augmentation changes only the work per
// augmentation, not the optimum.
func TestMCFUnitAugmentSameResult(t *testing.T) {
	rng := stats.NewRand(8008)
	in := randomInstance(rng, 4, 60, 2, 0.2)
	ci := model.NewCandidateIndex(in)
	a, err := RunOffline(in, ci, &MCFLTC{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOffline(in, ci, &MCFLTC{UnitAugment: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Latency != b.Latency {
		t.Fatalf("bottleneck %d vs unit %d", a.Latency, b.Latency)
	}
}

// TestMCFBatchMultiplier: the ablation knob must keep arrangements valid;
// smaller batches emulate a more online-like MCF.
func TestMCFBatchMultiplier(t *testing.T) {
	rng := stats.NewRand(9009)
	in := randomInstance(rng, 4, 80, 2, 0.2)
	ci := model.NewCandidateIndex(in)
	for _, mult := range []float64{0.25, 0.5, 1.0, 2.0} {
		res, err := RunOffline(in, ci, &MCFLTC{BatchMultiplier: mult})
		if err != nil {
			t.Fatalf("mult %v: %v", mult, err)
		}
		if err := res.Arrangement.Validate(in, true); err != nil {
			t.Fatalf("mult %v: %v", mult, err)
		}
	}
}

// TestMCFBatchSizes checks the m = |T|·⌈δ⌉/K arithmetic of Algorithm 1
// line 1 and the ⌊1.5m⌋ first batch of line 4.
func TestMCFBatchSizes(t *testing.T) {
	in := toyInstance() // |T|=3, K=2, δ≈3.22 → ⌈δ⌉=4, m = 6
	m := &MCFLTC{}
	first, later := m.batchSizes(in)
	if later != 6 {
		t.Fatalf("batch size = %d, want 6", later)
	}
	if first != 9 {
		t.Fatalf("first batch = %d, want ⌊1.5·6⌋ = 9", first)
	}
}

// TestResultMetricsPopulated: runners must fill the efficiency metrics.
func TestResultMetricsPopulated(t *testing.T) {
	rng := stats.NewRand(123)
	in := randomInstance(rng, 3, 40, 2, 0.2)
	ci := model.NewCandidateIndex(in)
	res, err := RunOnline(in, ci, func(in *model.Instance, ci *model.CandidateIndex) Online {
		return NewLAF(in, ci)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Fatal("Elapsed not measured")
	}
	if res.AllocBytes < 0 {
		t.Fatal("negative allocation delta")
	}
	if res.Algorithm != "LAF" {
		t.Fatalf("Algorithm = %q", res.Algorithm)
	}
	if res.WorkersSeen <= 0 || res.WorkersSeen > len(in.Workers) {
		t.Fatalf("WorkersSeen = %d", res.WorkersSeen)
	}
}

// TestOnlineNeverUsesFutureWorkers: an online algorithm's latency equals the
// number of workers it consumed — it cannot have touched workers beyond its
// completion point.
func TestOnlineNeverUsesFutureWorkers(t *testing.T) {
	rng := stats.NewRand(321)
	in := randomInstance(rng, 4, 80, 2, 0.2)
	ci := model.NewCandidateIndex(in)
	for name, factory := range allOnlineFactories(5) {
		res, err := RunOnline(in, ci, factory)
		if err != nil {
			t.Fatal(err)
		}
		if res.Latency > res.WorkersSeen {
			t.Fatalf("%s: latency %d > workers seen %d", name, res.Latency, res.WorkersSeen)
		}
	}
}

// TestEmpiricalApproximationRatio: across random tiny instances, the
// heuristics stay within the paper's ballpark of the optimum. The proved
// ratios are 7.5 (MCF-LTC), 7.967 (LAF), 7.738 (AAM) under the paper's
// assumptions; random geometric instances sit far below those bounds, and a
// wide safety margin keeps this robust while still catching gross bugs.
func TestEmpiricalApproximationRatio(t *testing.T) {
	rng := stats.NewRand(55)
	worst := 0.0
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(rng, 2, 10+rng.IntN(4), 2, 0.3)
		ci := model.NewCandidateIndex(in)
		exact, err := RunOffline(in, ci, &Exact{})
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range []Offline{&MCFLTC{}, BaseOff{}} {
			res, err := RunOffline(in, ci, algo)
			if err != nil {
				t.Fatal(err)
			}
			if r := float64(res.Latency) / float64(exact.Latency); r > worst {
				worst = r
			}
		}
	}
	if worst > 8.0 {
		t.Fatalf("worst offline ratio %.2f exceeds the paper's guarantee regime", worst)
	}
}

// TestExactBudgetExhausted: a deliberately hard instance with a tiny budget
// must return ErrSearchBudget rather than a wrong answer.
func TestExactBudgetExhausted(t *testing.T) {
	rng := stats.NewRand(66)
	in := randomInstance(rng, 6, 60, 3, 0.1)
	ci := model.NewCandidateIndex(in)
	_, err := RunOffline(in, ci, &Exact{MaxNodes: 10})
	if err == nil {
		t.Fatal("expected an error with MaxNodes=10")
	}
}

// TestTaskStateAccounting exercises the shared bookkeeping directly.
func TestTaskStateAccounting(t *testing.T) {
	ts := newTaskState(3, 2.0)
	if ts.allDone() {
		t.Fatal("fresh state cannot be done")
	}
	if got := ts.need(0); got != 2.0 {
		t.Fatalf("need = %v", got)
	}
	if completed := ts.add(0, 1.0); completed {
		t.Fatal("half credit cannot complete")
	}
	if completed := ts.add(0, 1.0); !completed {
		t.Fatal("full credit must complete")
	}
	if ts.add(0, 5.0) {
		t.Fatal("extra credit on a done task must not re-complete")
	}
	sum, maxNeed := ts.totalNeed()
	if math.Abs(sum-4.0) > 1e-12 || math.Abs(maxNeed-2.0) > 1e-12 {
		t.Fatalf("totalNeed = (%v, %v), want (4, 2)", sum, maxNeed)
	}
	ts.add(1, 2)
	ts.add(2, 2)
	if !ts.allDone() {
		t.Fatal("all tasks credited, state must be done")
	}
}
