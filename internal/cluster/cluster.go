// Package cluster is the multi-node routing tier over the ltcd gateway: a
// static tile→node table built with the same tiling math as the dispatch
// layer's model.Partition, one level up. The task bounding rect is tiled
// into near-square cells at node granularity, every non-empty tile becomes
// one node's territory, and task-free tiles are folded onto the nearest
// task tile (deterministic multi-source BFS), so routing any location —
// a worker check-in or a task posted online — is a single table lookup on
// every node and on every client.
//
// The topology is immutable once written: nodes load it at boot, validate
// it against the instance they generated from their own flags (the
// fingerprint ties the table to the exact tiling), and serve only the tiles
// it assigns them. Check-ins that reach the wrong node are rejected with a
// typed redirect carrying the owner, which clients use to self-heal a stale
// local copy of the table. See CONCURRENCY.md, "Cluster tier".
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"strconv"

	"ltc/internal/geo"
	"ltc/internal/model"
)

// Topology is the static cluster routing table: a cols×rows tile grid over
// the initial task bounding rect, with every tile owned by exactly one
// node. It is self-contained — routing needs no instance — and marshals to
// the JSON topology file shared by every node of a cluster.
type Topology struct {
	// Version guards the file format.
	Version int `json:"version"`
	// Nodes is the cluster size. Node IDs are 0-based and dense; nodes
	// beyond the non-empty tile count own no tiles (they boot, redirect
	// every check-in, and report an empty, trivially-done platform).
	Nodes int `json:"nodes"`
	// Cols and Rows shape the tile grid.
	Cols int `json:"cols"`
	Rows int `json:"rows"`
	// OriginX/OriginY anchor the grid at the task bounding rect's lower
	// left; TileW/TileH are the tile dimensions. Together with Cols/Rows
	// they reproduce model.Partition's tileIndex clamp exactly.
	OriginX float64 `json:"origin_x"`
	OriginY float64 `json:"origin_y"`
	TileW   float64 `json:"tile_w"`
	TileH   float64 `json:"tile_h"`
	// TileNode maps every tile (row-major) to its owning node; task-free
	// tiles carry the node of the task tile that serves their traffic, so
	// no entry is ever negative.
	TileNode []int `json:"tile_node"`
	// TotalTasks is the initial task count — the base of the cluster-global
	// ID space. Tasks posted online get IDs ≥ TotalTasks, interleaved by
	// node (see PostedGlobalID) so concurrent posts on different nodes
	// never collide without coordination.
	TotalTasks int `json:"total_tasks"`
}

// topologyVersion is the current topology file format.
const topologyVersion = 1

// Build derives the cluster topology for the given instance and node
// count. The tiling reuses model.Partition's striped math at node
// granularity: cols = ⌊√n⌋, rows = n/cols (so cols·rows ≤ n and every
// non-empty tile can own a distinct node), near-square tiles over the task
// bounding rect with degenerate extents widened to one unit. Non-empty
// tiles are assigned node IDs in ascending tile order; task-free tiles are
// folded onto task tiles by a deterministic multi-source BFS over the grid
// (the same attribution model.Partition's balanced layout uses), so the
// whole table is a pure function of (tasks, nodes).
func Build(in *model.Instance, nodes int) (*Topology, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("cluster: node count must be ≥ 1, got %d", nodes)
	}
	if len(in.Tasks) == 0 {
		return nil, model.ErrNoTasks
	}
	pts := make([]geo.Point, len(in.Tasks))
	for i, t := range in.Tasks {
		pts[i] = t.Loc
	}
	rect, _ := geo.BoundingRect(pts)

	t := &Topology{Version: topologyVersion, Nodes: nodes, TotalTasks: len(in.Tasks)}
	t.Cols = int(math.Sqrt(float64(nodes)))
	if t.Cols < 1 {
		t.Cols = 1
	}
	t.Rows = nodes / t.Cols
	t.OriginX, t.OriginY = rect.Min.X, rect.Min.Y
	t.TileW = rect.Width() / float64(t.Cols)
	t.TileH = rect.Height() / float64(t.Rows)
	if t.TileW <= 0 {
		t.TileW = 1 // degenerate extent: all tasks share one column
	}
	if t.TileH <= 0 {
		t.TileH = 1
	}

	// Non-empty tiles become nodes in ascending tile order.
	hasTask := make([]bool, t.Cols*t.Rows)
	for _, p := range pts {
		hasTask[t.TileIndex(p)] = true
	}
	tileNode := make([]int, t.Cols*t.Rows)
	queue := make([]int, 0, len(tileNode))
	next := 0
	for c := range tileNode {
		if hasTask[c] {
			tileNode[c] = next
			next++
			queue = append(queue, c)
		} else {
			tileNode[c] = -1
		}
	}
	// Fold task-free tiles onto the nearest task tile: multi-source BFS in
	// deterministic queue order, exactly as the balanced partition
	// attributes free-tile traffic.
	for head := 0; head < len(queue); head++ {
		c := queue[head]
		cx, cy := c%t.Cols, c/t.Cols
		for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
			nx, ny := cx+d[0], cy+d[1]
			if nx < 0 || nx >= t.Cols || ny < 0 || ny >= t.Rows {
				continue
			}
			nc := ny*t.Cols + nx
			if tileNode[nc] < 0 {
				tileNode[nc] = tileNode[c]
				queue = append(queue, nc)
			}
		}
	}
	t.TileNode = tileNode
	return t, nil
}

// TileIndex returns the tile containing loc, clamped into the grid — the
// same clamp as model.Partition, so out-of-rect check-ins route to border
// tiles on the cluster exactly as they do on a single node's shards.
func (t *Topology) TileIndex(loc geo.Point) int {
	tx := int(math.Floor((loc.X - t.OriginX) / t.TileW))
	ty := int(math.Floor((loc.Y - t.OriginY) / t.TileH))
	if tx < 0 {
		tx = 0
	} else if tx >= t.Cols {
		tx = t.Cols - 1
	}
	if ty < 0 {
		ty = 0
	} else if ty >= t.Rows {
		ty = t.Rows - 1
	}
	return ty*t.Cols + tx
}

// NodeFor routes a location to its owning node.
func (t *Topology) NodeFor(loc geo.Point) int { return t.TileNode[t.TileIndex(loc)] }

// Validate checks the structural invariants a loaded topology file must
// satisfy before any routing decision is taken from it.
func (t *Topology) Validate() error {
	switch {
	case t.Version != topologyVersion:
		return fmt.Errorf("cluster: topology version %d (want %d)", t.Version, topologyVersion)
	case t.Nodes < 1:
		return fmt.Errorf("cluster: topology has %d nodes", t.Nodes)
	case t.Cols < 1 || t.Rows < 1:
		return fmt.Errorf("cluster: bad tile grid %dx%d", t.Cols, t.Rows)
	case len(t.TileNode) != t.Cols*t.Rows:
		return fmt.Errorf("cluster: tile table has %d entries for a %dx%d grid", len(t.TileNode), t.Cols, t.Rows)
	case t.TileW <= 0 || t.TileH <= 0:
		return fmt.Errorf("cluster: non-positive tile dimensions %g×%g", t.TileW, t.TileH)
	case t.TotalTasks < 1:
		return fmt.Errorf("cluster: topology covers %d tasks", t.TotalTasks)
	}
	for c, n := range t.TileNode {
		if n < 0 || n >= t.Nodes {
			return fmt.Errorf("cluster: tile %d owned by out-of-range node %d", c, n)
		}
	}
	return nil
}

// Fingerprint hashes the routing-relevant fields (grid geometry in exact
// hex-float form, the full tile table, node and task counts). Two
// topologies route identically iff their fingerprints match; nodes and
// clients exchange it to detect mismatched -scale/-seed flags before any
// misrouted traffic flows.
func (t *Topology) Fingerprint() string {
	h := fnv.New64a()
	w := func(s string) { _, _ = h.Write([]byte(s)) }
	w(strconv.Itoa(t.Nodes))
	w("|" + strconv.Itoa(t.Cols) + "x" + strconv.Itoa(t.Rows))
	w("|" + strconv.FormatFloat(t.OriginX, 'x', -1, 64))
	w("|" + strconv.FormatFloat(t.OriginY, 'x', -1, 64))
	w("|" + strconv.FormatFloat(t.TileW, 'x', -1, 64))
	w("|" + strconv.FormatFloat(t.TileH, 'x', -1, 64))
	w("|" + strconv.Itoa(t.TotalTasks))
	for _, n := range t.TileNode {
		w("," + strconv.Itoa(n))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Save writes the topology file (indented JSON, one cluster-wide artifact).
func (t *Topology) Save(path string) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads and validates a topology file.
func Load(path string) (*Topology, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t Topology
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("cluster: bad topology file %s: %w", path, err)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return &t, nil
}

// Split is the per-node view of an instance under a topology.
type Split struct {
	// Subs[n] is node n's sub-instance (tasks renumbered to local IDs,
	// ascending by global ID; accuracy model wrapped so ID-sensitive models
	// see source tasks). nil for nodes owning no tasks.
	Subs []*model.SubInstance
	// OwnerOf maps every initial global TaskID to its owning node.
	OwnerOf []int32
}

// SplitInstance partitions the instance's tasks across the topology's
// nodes: every task belongs to the node owning its tile. The result is a
// pure function of (instance, topology); a single-node topology yields one
// sub-instance listing the source tasks in their original order, so any
// algorithm run on it behaves exactly as on the source — the property the
// golden replay through the cluster client pins byte for byte.
func SplitInstance(in *model.Instance, t *Topology) (*Split, error) {
	if len(in.Tasks) != t.TotalTasks {
		return nil, fmt.Errorf("cluster: instance has %d tasks, topology covers %d — mismatched workload flags?",
			len(in.Tasks), t.TotalTasks)
	}
	ids := make([][]model.TaskID, t.Nodes)
	owner := make([]int32, len(in.Tasks))
	for _, task := range in.Tasks {
		n := t.NodeFor(task.Loc)
		ids[n] = append(ids[n], task.ID) // in.Tasks is ascending by ID
		owner[task.ID] = int32(n)
	}
	s := &Split{Subs: make([]*model.SubInstance, t.Nodes), OwnerOf: owner}
	for n, nodeIDs := range ids {
		if len(nodeIDs) > 0 {
			s.Subs[n] = model.NewSubInstance(in, nodeIDs)
		}
	}
	return s, nil
}

// ErrNotPosted is returned by the posted-ID arithmetic for IDs below the
// initial task range.
var ErrNotPosted = errors.New("cluster: task ID is in the initial range, not a posted ID")

// PostedGlobalID returns the cluster-global ID of node's k-th online post
// (k is 0-based). Posted IDs start at TotalTasks and interleave by node —
// id = TotalTasks + node + k·Nodes — so every node allocates from a
// disjoint arithmetic progression with no cross-node coordination, and the
// owner of any posted ID is recoverable from the ID alone.
func (t *Topology) PostedGlobalID(node, k int) int {
	return t.TotalTasks + node + k*t.Nodes
}

// PostedOwner inverts PostedGlobalID: the node that allocated the given
// posted cluster-global ID, and its 0-based post ordinal on that node.
func (t *Topology) PostedOwner(global int) (node, k int, err error) {
	if global < t.TotalTasks {
		return 0, 0, ErrNotPosted
	}
	off := global - t.TotalTasks
	return off % t.Nodes, off / t.Nodes, nil
}
