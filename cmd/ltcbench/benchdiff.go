package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"text/tabwriter"
)

// cellKey identifies one artifact cell across PRs. The empty scenario and
// "uniform" share a key: -exp throughput measures the uniform Table IV
// instance, so its cells and -exp scenarios' uniform/striped cells are the
// same measurement under two labels, and the benchdiff gate compares them
// directly across artifact generations. defFeeders normalizes the feeders
// axis: cells recorded before the axis existed carry no per-cell feeders
// value, so they inherit the artifact's top-level Feeders — keeping
// pre-axis artifacts comparable with post-axis ones at the same feeder
// count.
func cellKey(r throughputResult, defFeeders int) string {
	f := r.Feeders
	if f == 0 {
		f = defFeeders
	}
	k := fmt.Sprintf("%s/shards=%d/batch=%d/feeders=%d", r.Mode, r.Shards, r.BatchSize, f)
	if r.Scenario != "" && r.Scenario != "uniform" {
		k = r.Scenario + "/" + k
	}
	if r.Balanced {
		k += "/balanced"
	}
	return k
}

// runBenchDiff compares two committed throughput artifacts (see
// throughputArtifact) cell by cell and fails — non-zero exit — when any
// cell present in both regressed by more than tolerance (fractional, e.g.
// 0.10): the CI benchmark-regression gate between BENCH_prN.json files.
// Cells only in one artifact are reported but never fail the diff, so new
// modes and scenarios can be added without breaking the gate.
//
// hotspotGain > 0 additionally asserts the skew-aware dispatch claim
// *within the candidate*: every hotspot-scenario cell pair at ≥ 8 shards
// must show the balanced layout beating fixed striping by at least that
// fraction (0.25 = +25% workers/sec), and at least one such pair must
// exist. This pins the point of WithBalancedShards — worst-case traffic —
// with the same committed artifact the regression gate already reads.
//
// asyncFloor > 0 asserts the async ingestion path held its ground: every
// shared async-mode cell must show candidate/baseline ≥ asyncFloor (1.0 =
// no regression at all, tighter than the general tolerance). maxAllocs ≥ 0
// bounds the candidate's per-op allocation count on every cell — the
// steady-state zero-allocation claim, gated on the committed artifact.
func runBenchDiff(basePath, candPath string, tolerance, hotspotGain, asyncFloor, maxAllocs float64) error {
	base, err := readArtifact(basePath)
	if err != nil {
		return err
	}
	cand, err := readArtifact(candPath)
	if err != nil {
		return err
	}
	if base.Preset != cand.Preset || base.Algo != cand.Algo {
		return fmt.Errorf("artifacts not comparable: %s/%s vs %s/%s",
			base.Preset, base.Algo, cand.Preset, cand.Algo)
	}
	baseCells := make(map[string]throughputResult, len(base.Results))
	for _, r := range base.Results {
		baseCells[cellKey(r, base.Feeders)] = r
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "cell\tbaseline w/s\tcandidate w/s\tratio\tverdict\n")
	var failures, floorFailures, allocFailures int
	for _, c := range cand.Results {
		k := cellKey(c, cand.Feeders)
		if maxAllocs >= 0 && c.AllocsPerOp > maxAllocs {
			fmt.Fprintf(w, "%s\t\t%.1f allocs/op\t\tOVER ALLOC BUDGET\n", k, c.AllocsPerOp)
			allocFailures++
		}
		b, ok := baseCells[k]
		if !ok {
			fmt.Fprintf(w, "%s\t-\t%.0f\t-\tnew\n", k, c.WorkersPerSec)
			continue
		}
		delete(baseCells, k)
		ratio := c.WorkersPerSec / b.WorkersPerSec
		verdict := "ok"
		if ratio < 1-tolerance {
			verdict = "REGRESSED"
			failures++
		}
		if asyncFloor > 0 && c.Mode == "async" && ratio < asyncFloor {
			verdict = "BELOW ASYNC FLOOR"
			floorFailures++
		}
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%.3f\t%s\n", k, b.WorkersPerSec, c.WorkersPerSec, ratio, verdict)
	}
	for k, b := range baseCells {
		fmt.Fprintf(w, "%s\t%.0f\t-\t-\tdropped\n", k, b.WorkersPerSec)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if failures > 0 {
		return fmt.Errorf("%d cell(s) regressed more than %s%% vs %s",
			failures, strconv.FormatFloat(tolerance*100, 'g', -1, 64), basePath)
	}
	if floorFailures > 0 {
		return fmt.Errorf("async floor gate: %d async cell(s) below %sx the baseline %s",
			floorFailures, strconv.FormatFloat(asyncFloor, 'g', -1, 64), basePath)
	}
	if allocFailures > 0 {
		return fmt.Errorf("alloc budget gate: %d cell(s) above %s allocs/op in %s",
			allocFailures, strconv.FormatFloat(maxAllocs, 'g', -1, 64), candPath)
	}
	fmt.Printf("benchdiff: every shared cell within %s%% of %s\n",
		strconv.FormatFloat(tolerance*100, 'g', -1, 64), basePath)
	if asyncFloor > 0 {
		fmt.Printf("async floor gate: every shared async cell at ≥ %sx the baseline\n",
			strconv.FormatFloat(asyncFloor, 'g', -1, 64))
	}
	if maxAllocs >= 0 {
		fmt.Printf("alloc budget gate: every candidate cell at ≤ %s allocs/op\n",
			strconv.FormatFloat(maxAllocs, 'g', -1, 64))
	}
	if hotspotGain > 0 {
		if err := checkHotspotGain(cand, hotspotGain); err != nil {
			return err
		}
	}
	return nil
}

// checkHotspotGain verifies the candidate's hotspot cells at ≥ 8 shards:
// balanced vs striped pairs (same mode, shard count, batch size and feeder
// count) must all clear the required fractional gain.
func checkHotspotGain(cand *throughputArtifact, minGain float64) error {
	type pairKey struct {
		mode    string
		shards  int
		batch   int
		feeders int
	}
	striped := make(map[pairKey]float64)
	balanced := make(map[pairKey]float64)
	for _, r := range cand.Results {
		if r.Scenario != "hotspot" || r.Shards < 8 {
			continue
		}
		f := r.Feeders
		if f == 0 {
			f = cand.Feeders
		}
		k := pairKey{r.Mode, r.Shards, r.BatchSize, f}
		if r.Balanced {
			balanced[k] = r.WorkersPerSec
		} else {
			striped[k] = r.WorkersPerSec
		}
	}
	keys := make([]pairKey, 0, len(balanced))
	for k := range balanced {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.mode != b.mode {
			return a.mode < b.mode
		}
		if a.shards != b.shards {
			return a.shards < b.shards
		}
		if a.batch != b.batch {
			return a.batch < b.batch
		}
		return a.feeders < b.feeders
	})
	pairs, failures := 0, 0
	for _, k := range keys {
		b := balanced[k]
		s, ok := striped[k]
		if !ok {
			continue
		}
		pairs++
		ratio := b / s
		verdict := "ok"
		if ratio < 1+minGain {
			verdict = "TOO SLOW"
			failures++
		}
		fmt.Printf("hotspot %s/shards=%d/batch=%d/feeders=%d: balanced %.0f vs striped %.0f w/s (%.2fx) %s\n",
			k.mode, k.shards, k.batch, k.feeders, b, s, ratio, verdict)
	}
	if pairs == 0 {
		return fmt.Errorf("hotspot gain gate: no hotspot balanced/striped pair at ≥ 8 shards in the candidate")
	}
	if failures > 0 {
		return fmt.Errorf("hotspot gain gate: %d pair(s) below the required +%s%% balanced speedup",
			failures, strconv.FormatFloat(minGain*100, 'g', -1, 64))
	}
	fmt.Printf("hotspot gain gate: balanced beats striping by ≥ %s%% on all %d pair(s)\n",
		strconv.FormatFloat(minGain*100, 'g', -1, 64), pairs)
	return nil
}

func readArtifact(path string) (*throughputArtifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var art throughputArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &art, nil
}
