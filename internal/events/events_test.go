package events

import (
	"sync"
	"testing"

	"ltc/internal/model"
)

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		TaskPosted:    "task_posted",
		TaskRetired:   "task_retired",
		TaskCompleted: "task_completed",
		PlatformDone:  "platform_done",
		Kind(99):      "unknown",
	} {
		if got := k.String(); got != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestPublishWithoutSubscribersIsNoop(t *testing.T) {
	b := NewBus()
	if b.Active() {
		t.Fatal("fresh bus active")
	}
	b.Publish(Event{Kind: TaskCompleted, Task: 1})
	s := b.Subscribe(4)
	defer s.Close()
	select {
	case e := <-s.Events():
		t.Fatalf("pre-subscription event delivered: %+v", e)
	default:
	}
}

func TestSequencingAndFanout(t *testing.T) {
	b := NewBus()
	a, c := b.Subscribe(8), b.Subscribe(8)
	b.Publish(Event{Kind: TaskCompleted, Task: 3, Worker: 12})
	b.Publish(Event{Kind: PlatformDone, Task: -1})
	a.Close()
	c.Close()
	for name, s := range map[string]*Subscription{"a": a, "c": c} {
		var got []Event
		for e := range s.Events() {
			got = append(got, e)
		}
		if len(got) != 2 {
			t.Fatalf("%s: %d events", name, len(got))
		}
		if got[0].Seq != 1 || got[1].Seq != 2 {
			t.Fatalf("%s: seqs %d,%d", name, got[0].Seq, got[1].Seq)
		}
		if got[0].Kind != TaskCompleted || got[0].Task != 3 || got[0].Worker != 12 {
			t.Fatalf("%s: event 0 = %+v", name, got[0])
		}
	}
}

func TestSlowSubscriberDropsNotBlocks(t *testing.T) {
	b := NewBus()
	slow := b.Subscribe(1)
	fast := b.Subscribe(16)
	for i := 0; i < 10; i++ {
		b.Publish(Event{Kind: TaskCompleted, Task: model.TaskID(i)})
	}
	if got := slow.Dropped(); got != 9 {
		t.Fatalf("slow dropped %d, want 9", got)
	}
	if got := fast.Dropped(); got != 0 {
		t.Fatalf("fast dropped %d, want 0", got)
	}
	fast.Close()
	n := 0
	for range fast.Events() {
		n++
	}
	if n != 10 {
		t.Fatalf("fast received %d, want 10", n)
	}
	// The slow subscriber still holds the first event; later ones were
	// dropped, so the received sequence has a gap.
	slow.Close()
	e, ok := <-slow.Events()
	if !ok || e.Seq != 1 {
		t.Fatalf("slow first event %+v ok=%v", e, ok)
	}
}

func TestSubscribeBufferFloor(t *testing.T) {
	b := NewBus()
	s := b.Subscribe(0)
	defer s.Close()
	b.Publish(Event{Kind: TaskPosted, Task: 7})
	if e := <-s.Events(); e.Task != 7 {
		t.Fatalf("event %+v", e)
	}
}

func TestCloseIsIdempotentAndDetaches(t *testing.T) {
	b := NewBus()
	s := b.Subscribe(2)
	s.Close()
	s.Close()
	if b.Active() {
		t.Fatal("bus active after last unsubscribe")
	}
	b.Publish(Event{Kind: TaskRetired, Task: 1}) // must not panic on closed channel
	if _, ok := <-s.Events(); ok {
		t.Fatal("event delivered after Close")
	}
}

func TestConcurrentPublishSubscribe(t *testing.T) {
	b := NewBus()
	const publishers, each = 4, 200
	sub := b.Subscribe(publishers * each)
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				b.Publish(Event{Kind: TaskCompleted, Task: model.TaskID(p*each + i)})
			}
		}(p)
	}
	churn := make(chan struct{})
	go func() { // subscriber churn concurrent with publishing
		defer close(churn)
		for i := 0; i < 50; i++ {
			s := b.Subscribe(1)
			s.Close()
		}
	}()
	wg.Wait()
	<-churn
	sub.Close()
	seen := make(map[model.TaskID]bool)
	var lastSeq uint64
	for e := range sub.Events() {
		if e.Seq <= lastSeq {
			t.Fatalf("seq not increasing: %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		if seen[e.Task] {
			t.Fatalf("task %d delivered twice", e.Task)
		}
		seen[e.Task] = true
	}
	if len(seen) != publishers*each {
		t.Fatalf("received %d events, want %d", len(seen), publishers*each)
	}
}
