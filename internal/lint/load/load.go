// Package load turns Go package patterns into type-checked syntax trees
// without any dependency beyond the standard library and the go tool itself.
// It shells out to `go list -export -deps -json`, which works fully offline
// (the module has no requirements) and leaves compiler export data for every
// dependency in the build cache; target packages are then parsed from source
// and type-checked against that export data via go/importer's gc importer.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one parsed, type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	Sizes   types.Sizes
	// DepOnly marks an in-module dependency pulled in only so its facts
	// (e.g. which lock classes a function may acquire) are available to the
	// packages actually matched by the patterns. Diagnostics from DepOnly
	// packages are suppressed by callers.
	DepOnly bool
}

type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// Packages loads and type-checks the packages matched by patterns, rooted at
// dir. The result is in dependency order: every package appears after all
// packages it imports (among the results). Only non-test GoFiles are loaded,
// matching what `go vet` analyzes for the primary package.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,Standard,DepOnly,GoFiles,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s", p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		// Non-standard dependencies are in-module (the module has no
		// requirements); load them too so fact-producing analyses see the
		// whole call graph even when patterns match only a sub-tree.
		if !p.DepOnly || !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	sizes := types.SizesFor("gc", runtime.GOARCH)

	var pkgs []*Package
	for _, p := range targets {
		pkg, err := check(fset, imp, sizes, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		pkg.DepOnly = p.DepOnly
		pkgs = append(pkgs, pkg)
	}
	// `go list -deps` emits dependencies before dependents and is itself
	// deterministic, so pkgs is already in a stable dependency order.
	return pkgs, nil
}

// Files type-checks the given source files as a single package named pkgPath.
// exports maps import paths to gc export-data files for anything the sources
// import; it may be nil for import-free fixtures.
func Files(fset *token.FileSet, pkgPath string, filenames []string, exports map[string]string) (*Package, error) {
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	var dir string
	if len(filenames) > 0 {
		dir = filepath.Dir(filenames[0])
	}
	var base []string
	for _, f := range filenames {
		base = append(base, filepath.Base(f))
	}
	return check(fset, imp, types.SizesFor("gc", runtime.GOARCH), pkgPath, dir, base)
}

// StdExports resolves export-data files for the named standard-library
// packages (and their dependencies) by asking the go tool once.
func StdExports(pkgs ...string) (map[string]string, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, pkgs...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", pkgs, err, stderr.String())
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

func check(fset *token.FileSet, imp types.Importer, sizes types.Sizes, pkgPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, gf := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, gf), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", gf, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp, Sizes: sizes}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", pkgPath, err)
	}
	return &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
		Sizes:   sizes,
	}, nil
}
