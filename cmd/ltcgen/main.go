// Command ltcgen generates LTC problem instances to JSON: the synthetic
// Table IV workload or the simulated Foursquare-style check-in traces
// (Table V presets). The output is self-contained — task and worker lists
// plus all model parameters — so instances can be archived, diffed, or fed
// to other tools.
//
// Examples:
//
//	ltcgen -kind synthetic -scale 0.05 -out instance.json
//	ltcgen -kind newyork -scale 0.01 -out nyc.json
//	ltcgen -kind tokyo -scale 0.01 -epsilon 0.14 -out tokyo.json -trace
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"ltc/internal/checkin"
	"ltc/internal/geo"
	"ltc/internal/model"
	"ltc/internal/workload"
)

// jsonInstance is the serialised form of a model.Instance.
type jsonInstance struct {
	Kind    string       `json:"kind"`
	Epsilon float64      `json:"epsilon"`
	Delta   float64      `json:"delta"`
	K       int          `json:"k"`
	DMax    float64      `json:"dmax"`
	MinAcc  float64      `json:"min_acc"`
	Tasks   []jsonTask   `json:"tasks"`
	Workers []jsonWorker `json:"workers"`
}

type jsonTask struct {
	ID int32   `json:"id"`
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
}

type jsonWorker struct {
	Index int     `json:"index"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Acc   float64 `json:"accuracy"`
	// User is a pointer so the zero user id survives -trace: with a plain
	// int and omitempty, every check-in by user 0 would serialize without
	// its user field, indistinguishable from untraced output.
	User *int `json:"user,omitempty"` // check-in traces only
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ltcgen: ")

	var (
		kind    = flag.String("kind", "synthetic", "instance kind: synthetic, scalability, newyork, tokyo")
		scale   = flag.Float64("scale", 0.05, "dataset scale factor (1.0 = full paper sizes)")
		seed    = flag.Uint64("seed", 1, "generation seed")
		epsilon = flag.Float64("epsilon", 0, "override tolerable error rate (0 = preset default)")
		tasks   = flag.Int("tasks", 0, "override task count before scaling (synthetic kinds)")
		out     = flag.String("out", "-", "output path ('-' for stdout)")
		trace   = flag.Bool("trace", false, "annotate workers with their user id (check-in kinds)")
	)
	flag.Parse()

	var (
		in      *model.Instance
		dmax    float64
		userOf  []int
		kindTag = *kind
	)
	switch *kind {
	case "synthetic", "scalability":
		cfg := workload.Default()
		if *kind == "scalability" {
			cfg = workload.Scalability(10000)
		}
		if *tasks > 0 {
			cfg.NumTasks = *tasks
		}
		cfg = cfg.Scale(*scale)
		cfg.Seed = *seed
		if *epsilon > 0 {
			cfg.Epsilon = *epsilon
		}
		var err error
		in, err = cfg.Generate()
		if err != nil {
			log.Fatal(err)
		}
		dmax = cfg.DMax
	case "newyork", "tokyo":
		cfg := checkin.NewYork()
		if *kind == "tokyo" {
			cfg = checkin.Tokyo()
		}
		cfg = cfg.Scale(*scale)
		cfg.Seed = *seed
		if *epsilon > 0 {
			cfg.Epsilon = *epsilon
		}
		tr, err := checkin.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		in = tr.Instance
		dmax = cfg.DMax
		if *trace {
			userOf = make([]int, len(tr.Checkins))
			for i, ck := range tr.Checkins {
				userOf[i] = ck.User
			}
		}
	default:
		log.Fatalf("unknown kind %q (want synthetic, scalability, newyork or tokyo)", *kind)
	}

	doc := jsonInstance{
		Kind:    kindTag,
		Epsilon: in.Epsilon,
		Delta:   in.Delta(),
		K:       in.K,
		DMax:    dmax,
		MinAcc:  in.MinAcc,
	}
	for _, t := range in.Tasks {
		doc.Tasks = append(doc.Tasks, jsonTask{ID: int32(t.ID), X: t.Loc.X, Y: t.Loc.Y})
	}
	for i, w := range in.Workers {
		jw := jsonWorker{Index: w.Index, X: w.Loc.X, Y: w.Loc.Y, Acc: w.Acc}
		if userOf != nil {
			jw.User = &userOf[i]
		}
		doc.Workers = append(doc.Workers, jw)
	}

	var f *os.File
	if *out == "-" {
		f = os.Stdout
	} else {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(doc); err != nil {
		log.Fatal(err)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "wrote %d tasks, %d workers to %s\n", len(doc.Tasks), len(doc.Workers), *out)
	}
}

// LoadInstance reads an instance previously written by ltcgen. Exported via
// the package for tests; the CLI itself only writes.
func LoadInstance(path string) (*model.Instance, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc jsonInstance
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, err
	}
	in := &model.Instance{
		Epsilon: doc.Epsilon,
		K:       doc.K,
		Model:   model.SigmoidDistance{DMax: doc.DMax},
		MinAcc:  doc.MinAcc,
	}
	for _, t := range doc.Tasks {
		in.Tasks = append(in.Tasks, model.Task{ID: model.TaskID(t.ID), Loc: geo.Point{X: t.X, Y: t.Y}})
	}
	for _, w := range doc.Workers {
		in.Workers = append(in.Workers, model.Worker{Index: w.Index, Loc: geo.Point{X: w.X, Y: w.Y}, Acc: w.Acc})
	}
	return in, in.Validate()
}
