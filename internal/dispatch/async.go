package dispatch

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ltc/internal/model"
)

// Producer and consumer spin budgets before falling back to the parked
// (mutex + condvar) slow path. The budgets are yields, not busy waits:
// on a loaded box each spin gives the scheduler a chance to run whichever
// side of the queue is behind, which resolves most transient full/empty
// states without ever touching the mutex.
const (
	pushSpins = 16
	popSpins  = 16
)

// shardQueue is one shard's bounded CheckInAsync buffer: a Vyukov-style
// MPSC ring. The backing array is fixed at construction (capacity rounded
// up to a power of two so slot mapping is a mask, not a division) and each
// slot carries a sequence number that encodes its state for lock-free
// hand-off:
//
//	seq == pos          the slot is free for the producer claiming index pos
//	seq == pos+1        the slot holds a published worker for the consumer
//	seq == pos+cap      the slot was consumed and is free for the next lap
//
// Producers claim a slot by CAS on tail, write the worker, and publish by
// storing seq = pos+1; the store is the release that makes the worker
// visible, so the single consumer (the shard's drainer) only ever reads
// slots whose sequence says "published" and never needs a lock. When the
// ring is full, producers spin briefly and then park on notFull; when it is
// empty the consumer parks on notEmpty. Both parks register themselves
// (waiters / sleeping) before re-checking the ring under the mutex, and the
// fast paths only touch the mutex when that registration is visible — the
// uncontended enqueue and dequeue are entirely lock-free.
type shardQueue struct {
	buf  []model.Worker
	seq  []atomic.Uint64
	mask uint64

	tail atomic.Uint64 // next slot index a producer claims
	head atomic.Uint64 // next slot index the consumer reads

	// active counts producers inside push — registered before push's closed
	// check, released after the worker is published (or the push refused).
	// The drainer only treats "closed and head == tail" as final when
	// active is zero: a producer that passed the closed check just before
	// Close may still publish, and this counter is what makes the drainer
	// wait for that publication instead of exiting under it.
	active atomic.Int64

	// Parked slow path. waiters counts producers parked (or parking) on
	// notFull; sleeping marks the consumer parked (or parking) on notEmpty.
	// Both are written under mu and read lock-free by the opposite side to
	// decide whether a wake-up is needed at all.
	//ltc:lock queue
	mu       sync.Mutex
	notFull  sync.Cond
	notEmpty sync.Cond
	waiters  atomic.Int32
	sleeping atomic.Bool
}

func newShardQueue(capacity int) *shardQueue {
	// Minimum capacity 2: with a single slot the "published at pos" state
	// (seq == pos+1) is indistinguishable from the "free for the next lap"
	// state (seq == pos+cap), and a producer could claim a slot the
	// consumer has not read yet.
	c := 2
	for c < capacity {
		c <<= 1
	}
	q := &shardQueue{
		buf:  make([]model.Worker, c),
		seq:  make([]atomic.Uint64, c),
		mask: uint64(c - 1),
	}
	for i := range q.seq {
		q.seq[i].Store(uint64(i))
	}
	q.notFull.L = &q.mu
	q.notEmpty.L = &q.mu
	return q
}

// depth reports how many workers are claimed-or-published but not yet
// consumed. head is only advanced by the consumer and tail only ever claims
// free slots, so the difference is always within [0, cap].
func (q *shardQueue) depth() int { return int(q.tail.Load() - q.head.Load()) }

// published reports whether the slot at ring index pos holds a published
// worker.
func (q *shardQueue) published(pos uint64) bool {
	return q.seq[pos&q.mask].Load() == pos+1
}

// full reports whether every slot is claimed. Used only by the parked
// producer path; the lock-free path detects fullness from the slot
// sequence itself.
func (q *shardQueue) full() bool {
	return q.tail.Load()-q.head.Load() >= uint64(len(q.buf))
}

// wakeAll wakes both sides of the queue — the close broadcast and the
// context-cancellation callback (both re-check their exit condition under
// the mutex, so taking it here means no wake-up can be lost).
func (q *shardQueue) wakeAll() {
	ldLock("queue", 0)
	q.mu.Lock()
	q.notFull.Broadcast()
	q.notEmpty.Broadcast()
	ldUnlock("queue", 0)
	q.mu.Unlock()
}

// wakeConsumer is the producer-side post-publish wake: it takes the mutex
// only when the consumer has registered itself as sleeping. The sleeping
// store (under mu, before the consumer's own re-check) and this load are
// both sequentially consistent, so a consumer that missed the publication
// is always visible here.
func (q *shardQueue) wakeConsumer() {
	if q.sleeping.Load() {
		ldLock("queue", 0)
		q.mu.Lock()
		q.notEmpty.Signal()
		ldUnlock("queue", 0)
		q.mu.Unlock()
	}
}

// wakeProducers is the consumer-side post-drain wake, the mirror image of
// wakeConsumer for parked producers.
func (q *shardQueue) wakeProducers() {
	if q.waiters.Load() != 0 {
		ldLock("queue", 0)
		q.mu.Lock()
		q.notFull.Broadcast()
		ldUnlock("queue", 0)
		q.mu.Unlock()
	}
}

// stopCtxWake releases a context.AfterFunc wake-up registration, if one was
// made.
func stopCtxWake(stop func() bool) {
	if stop != nil {
		stop()
	}
}

// push enqueues one worker, blocking (spin, then park) while the ring is
// full. It fails with ErrClosed once the dispatcher closes and with
// ctx.Err() once ctx is done — both checked before every claim attempt, so
// close always wins over a concurrent slot release. The caller has already
// registered itself in q.active.
//
//ltc:noalloc
func (q *shardQueue) push(ctx context.Context, d *Dispatcher, w model.Worker) error {
	var stopWake func() bool
	spins := 0
	for {
		if d.closed.Load() {
			stopCtxWake(stopWake)
			return ErrClosed
		}
		if err := ctx.Err(); err != nil {
			stopCtxWake(stopWake)
			return err
		}
		pos := q.tail.Load()
		slot := &q.seq[pos&q.mask]
		switch dif := int64(slot.Load()) - int64(pos); {
		case dif == 0:
			// The slot is free: claim it by advancing tail. A failed CAS
			// means another producer claimed pos first — reload and retry.
			if q.tail.CompareAndSwap(pos, pos+1) {
				q.buf[pos&q.mask] = w
				slot.Store(pos + 1) // publish: the worker is now visible
				q.wakeConsumer()
				stopCtxWake(stopWake)
				return nil
			}
		case dif < 0:
			// The slot has not been consumed since the previous lap: the
			// ring is full. Yield a few times, then park until the drainer
			// frees slots (or close/cancellation interrupts the wait).
			if spins < pushSpins {
				spins++
				runtime.Gosched()
				continue
			}
			spins = 0
			if stopWake == nil && ctx.Done() != nil {
				// About to park with a cancellable context: arrange for the
				// wait to wake when ctx fires. The callback takes the queue
				// mutex, so it cannot complete between the park's re-check
				// and its Wait — no lost wake-up. Lock-free enqueues never
				// pay for this.
				stopWake = context.AfterFunc(ctx, q.wakeAll) //ltclint:ignore noalloc park slow path only — the ring was full for a whole spin phase, so one method-value allocation is noise
			}
			q.parkProducer(ctx, d)
		}
		// dif > 0: tail moved under us (another producer already published
		// into pos); reload and retry.
	}
}

// parkProducer blocks on notFull until the ring has room again, the
// dispatcher closes, or ctx is done. The waiter registration happens under
// the mutex before the fullness re-check: a drain that empties the ring
// after the caller's lock-free check either sees the registration (and
// broadcasts) or finished before it (and the re-check sees the free slots).
func (q *shardQueue) parkProducer(ctx context.Context, d *Dispatcher) {
	ldLock("queue", 0)
	q.mu.Lock()
	q.waiters.Add(1)
	for q.full() && !d.closed.Load() && ctx.Err() == nil {
		q.notFull.Wait()
	}
	q.waiters.Add(-1)
	ldUnlock("queue", 0)
	q.mu.Unlock()
}

// parkConsumer blocks until the slot at the consumer's head is published or
// the dispatcher closes, yielding through a short spin phase first. The
// sleeping registration happens under the mutex before the published
// re-check, mirroring parkProducer's lost-wake-up discipline.
func (q *shardQueue) parkConsumer(d *Dispatcher) {
	head := q.head.Load()
	for i := 0; i < popSpins && !q.published(head) && !d.closed.Load(); i++ {
		runtime.Gosched()
	}
	ldLock("queue", 0)
	q.mu.Lock()
	q.sleeping.Store(true)
	for !q.published(head) && !d.closed.Load() {
		q.notEmpty.Wait()
	}
	q.sleeping.Store(false)
	ldUnlock("queue", 0)
	q.mu.Unlock()
}

// pop moves up to max published workers into run (appending; the caller
// passes a reused buffer) and returns the extended slice. It blocks while
// the ring is empty and returns run unchanged — the drainer's exit signal —
// only once the dispatcher is closed, no producer is mid-push, and every
// claimed slot has been consumed.
//
//ltc:noalloc
func (q *shardQueue) pop(d *Dispatcher, max int, run []model.Worker) []model.Worker {
	for {
		head := q.head.Load()
		n := uint64(0)
		// Take the contiguous published prefix. A claimed-but-unpublished
		// slot simply ends the run: its producer is about to store the
		// sequence, and the next pop picks it up.
		for n < uint64(max) && q.published(head+n) {
			run = append(run, q.buf[(head+n)&q.mask])
			n++
		}
		if n > 0 {
			// Advance head before freeing the slots: producers measure
			// fullness as tail−head, so depth never transiently exceeds the
			// capacity.
			q.head.Store(head + n)
			for i := uint64(0); i < n; i++ {
				q.seq[(head+i)&q.mask].Store(head + i + uint64(len(q.buf)))
			}
			q.wakeProducers()
			return run
		}
		if d.closed.Load() && q.active.Load() == 0 && q.tail.Load() == head {
			// Closed and fully drained: once active is zero every producer
			// that slipped past the closed check has published (and later
			// ones are refused before claiming), so head == tail is final.
			return run
		}
		q.parkConsumer(d)
	}
}

// CheckInAsync routes the worker into its spatial shard's bounded ring
// buffer and returns without waiting for ingestion — the fire-and-forget
// counterpart of CheckIn for callers that don't need the assignment list
// back (it stays observable through Arrangement, Credits and TaskStatuses).
// The first call starts one drainer goroutine per shard; each drainer pops
// runs of queued workers and ingests every run under a single shard-mutex
// acquisition and a single pinned candidate snapshot, which is where
// batching beats per-call CheckIn. Within a shard workers are ingested in
// enqueue order; across shards there is no order, exactly as with
// concurrent CheckIn calls.
//
// The call blocks while the shard's ring is full (backpressure, bounded by
// Options.QueueCap) and fails with ErrClosed once Close has been called —
// also when the block is interrupted by a concurrent Close. Workers
// enqueued after the platform completed are ingested as bounced arrivals,
// mirroring CheckIn's ErrDone accounting. Safe for concurrent use.
//
// CheckInAsync cannot be cancelled while blocked; use CheckInAsyncCtx when
// the enqueue must respect a deadline or cancellation.
func (d *Dispatcher) CheckInAsync(w model.Worker) error {
	return d.CheckInAsyncCtx(context.Background(), w)
}

// CheckInAsyncCtx is CheckInAsync with cancellable backpressure: while the
// shard's ring is full the call blocks until a slot frees, the dispatcher
// closes (ErrClosed), or ctx is done — in which case the worker is NOT
// enqueued and ctx.Err() is returned. A context that is already done fails
// the call before anything is queued. Cancellation never loses an accepted
// worker: a nil error means the worker is queued and a later Flush will
// observe it; a non-nil error means the platform never saw it. Safe for
// concurrent use.
func (d *Dispatcher) CheckInAsyncCtx(ctx context.Context, w model.Worker) error {
	if w.Index < 1 {
		return fmt.Errorf("%w: got %d", ErrBadWorkerIndex, w.Index)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if d.closed.Load() {
		return ErrClosed
	}
	d.ensureDrainers()
	// Routing (and the rebalancer's arrival forecast) happens at enqueue
	// time; a tile migration between enqueue and drain leaves the worker
	// draining at the old owner — a benign misroute, see MigrateTile.
	q := d.queues[d.locate(w.Loc)]
	d.pending.Add(1)
	q.active.Add(1)
	err := q.push(ctx, d, w)
	q.active.Add(-1)
	if err != nil {
		d.retirePending(1)
	}
	return err
}

// Flush blocks until every worker enqueued by CheckInAsync before the call
// has been fully ingested: its assignments are in the arrangement and all
// counters (latency, progress, arrivals) reflect it, matching what the same
// stream fed synchronously would have produced. It returns immediately when
// the async path was never used; with concurrent enqueuers it waits for an
// instant with no worker in flight.
func (d *Dispatcher) Flush() {
	ldLock("leaf", 0)
	d.flushMu.Lock()
	for d.pending.Load() != 0 {
		d.flushCond.Wait()
	}
	ldUnlock("leaf", 0)
	d.flushMu.Unlock()
}

// Close shuts the asynchronous ingestion path down: new CheckInAsync calls
// fail with ErrClosed, enqueuers blocked on backpressure are released with
// ErrClosed, the drainers ingest everything already queued and exit, and
// Close waits for all of that to finish — including the online rebalancer,
// which is stopped last. Synchronous CheckIn/CheckInBatch and the task
// lifecycle remain fully usable afterwards (with the tile layout frozen). Safe to call
// multiple times and from multiple goroutines; every call waits for the
// complete shutdown.
func (d *Dispatcher) Close() error {
	ldLock("async", 0)
	d.asyncMu.Lock()
	if !d.closed.Load() {
		d.closed.Store(true)
		// Wake everyone: blocked enqueuers bail out with ErrClosed, idle
		// drainers re-check the exit condition.
		for _, q := range d.queues {
			q.wakeAll()
		}
	}
	ldUnlock("async", 0)
	d.asyncMu.Unlock()
	d.drainWG.Wait()
	// Freeze the layout after the drainers are gone: halt waits out any
	// in-flight rebalance pass, so no migration ever runs on a dispatcher
	// the caller believes shut down. Synchronous check-ins stay usable
	// after Close, but tiles no longer move under them.
	if d.rb != nil {
		d.rb.halt()
	}
	return nil
}

// ensureDrainers starts the per-shard drainer goroutines exactly once.
// The start races with Close under asyncMu: once the dispatcher is closed
// no drainer is ever spawned (the refused enqueue never queues anything,
// so nothing is lost).
func (d *Dispatcher) ensureDrainers() {
	if d.started.Load() {
		return
	}
	ldLock("async", 0)
	d.asyncMu.Lock()
	if !d.started.Load() && !d.closed.Load() {
		d.drainWG.Add(len(d.shards))
		for si := range d.shards {
			go d.drainLoop(si)
		}
		d.started.Store(true)
	}
	ldUnlock("async", 0)
	d.asyncMu.Unlock()
}

// drainLoop is shard si's drainer — the ring's single consumer: it pops
// runs of queued workers (up to Options.MaxDrain per pop, everything queued
// when 0) and ingests each run under one shard-mutex acquisition and one
// pinned candidate snapshot. It exits once the dispatcher is closed and the
// ring fully drained.
func (d *Dispatcher) drainLoop(si int) {
	defer d.drainWG.Done()
	q := d.queues[si]
	maxDrain := d.opts.MaxDrain
	if maxDrain == 0 || maxDrain > len(q.buf) {
		maxDrain = len(q.buf)
	}
	run := make([]model.Worker, 0, maxDrain)
	for {
		run = q.pop(d, maxDrain, run[:0])
		if len(run) == 0 {
			return
		}
		d.ingestRun(si, run, false, nil)
		d.retirePending(len(run))
	}
}

// retirePending marks n enqueued workers fully ingested (or refused by a
// close), waking Flush when nothing is left in flight.
func (d *Dispatcher) retirePending(n int) {
	if d.pending.Add(int64(-n)) == 0 {
		ldLock("leaf", 0)
		d.flushMu.Lock()
		d.flushCond.Broadcast()
		ldUnlock("leaf", 0)
		d.flushMu.Unlock()
	}
}
