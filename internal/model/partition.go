package model

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"ltc/internal/geo"
)

// SubInstance is one shard of a partitioned Instance: a complete, standalone
// LTC instance over a subset of the source tasks, plus the mapping from its
// local, consecutive TaskIDs back to the source's global TaskIDs.
//
// The sub-instance shares the source's Epsilon, K and MinAcc; its Workers
// slice is empty — shards are fed workers at check-in time. Its Model wraps
// the source's so that Predict always sees the *source* task (global ID):
// ID-sensitive models like MatrixAccuracy stay correct even though the
// sub-instance renumbers tasks locally.
//
// A SubInstance can grow after construction via AppendTask (online task
// posting). Growth is not synchronized here — the dispatch layer serializes
// it under the owning shard's mutex, together with every read of the shard's
// task slices.
type SubInstance struct {
	In *Instance
	// Global maps a local TaskID (position in In.Tasks) to the task's
	// stable global ID in the source instance.
	Global []TaskID
	// source holds, per local task, the task as the source instance sees it
	// (global ID + location) — the view ID-sensitive accuracy models need.
	// For tasks posted after partitioning this is the posted task itself.
	source []Task
}

// AppendTask grows the sub-instance with a task posted online: global is the
// task as the platform sees it (stable global ID). The returned task carries
// the shard-local ID. Callers must serialize AppendTask with every other
// access to the sub-instance (the dispatch layer holds the shard mutex).
func (s *SubInstance) AppendTask(global Task) Task {
	local := Task{ID: TaskID(len(s.In.Tasks)), Loc: global.Loc}
	s.In.Tasks = append(s.In.Tasks, local)
	s.Global = append(s.Global, global.ID)
	s.source = append(s.source, global)
	return local
}

// SourceTask returns the source-instance view (global ID + location) of the
// given local task.
func (s *SubInstance) SourceTask(local TaskID) Task { return s.source[local] }

// TruncateLast rolls back the most recent AppendTask — the dispatch layer's
// recovery when its engine rejects a post (solver without lifecycle
// support). Same serialization requirements as AppendTask.
func (s *SubInstance) TruncateLast() {
	n := len(s.In.Tasks) - 1
	s.In.Tasks = s.In.Tasks[:n]
	s.Global = s.Global[:n]
	s.source = s.source[:n]
}

// Partition splits an Instance's task set into spatially coherent shards,
// reusing the uniform-grid idea of internal/geo: the task bounding rect is
// tiled into ~n cells (cols × rows), each non-empty tile becomes one shard,
// and Locate routes an arbitrary location (a worker check-in or a task
// posted online) to its shard.
//
// The routing table is built from the initial task set. For striped layouts
// it is immutable after construction; balanced layouts additionally support
// live tile migration (MigrateTile), which swaps tile→shard entries with
// atomic stores — Locate reads the table with atomic loads, so routing stays
// safe for concurrent use while a migration is in flight. Tasks posted after
// construction do not change routing: they are owned by the shard Locate
// picks for their location, which is by construction the same shard every
// worker at that location routes to (so late-posted tasks are always
// reachable).
type Partition struct {
	Source *Instance
	Shards []*SubInstance
	// Balanced records whether the load-aware tile→shard pack was used
	// (see PartitionOptions.Balanced); with it, every tile — task-free
	// ones included — has a precomputed shard, so Locate never falls back
	// to a nearest-task query.
	Balanced bool

	origin     geo.Point
	tileW      float64
	tileH      float64
	cols, rows int
	// tileShard maps a tile index to its shard, -1 for task-free tiles.
	// Elements are read with atomic loads and swapped with atomic stores
	// (MigrateTile); the slice itself never changes after construction.
	tileShard []int32
	// taskShard maps an initial global TaskID to the shard the layout
	// originally assigned it. Migration does not rewrite it — current
	// ownership of migrated tasks lives in the dispatch layer's records;
	// here it only backs the striped nearest-task fallback, which balanced
	// (and so migratable) layouts never take.
	taskShard []int32
	// taskGrid answers nearest-task queries for locations whose own tile
	// holds no tasks (routing fallback).
	taskGrid *geo.GridIndex
	// freeOwner (balanced layouts only) maps every tile to the task tile
	// whose tasks serve its traffic; task tiles own themselves. It is the
	// unit of migration: a task tile moves together with its free
	// satellites, so routing and task ownership never diverge.
	freeOwner []int32
	// ownedTiles inverts freeOwner: the tiles (owner first) each task tile
	// routes. Built once; MigrateTile walks it to swap a whole ownership
	// group atomically per entry.
	ownedTiles map[int32][]int32
}

// ErrBadShardCount is returned when a non-positive shard count is requested.
var ErrBadShardCount = errors.New("model: shard count must be positive")

// PartitionOptions tunes PartitionInstanceOpts. The zero value reproduces
// PartitionInstance's fixed spatial striping exactly.
type PartitionOptions struct {
	// Balanced switches the tile→shard assignment from fixed striping (one
	// near-square tile per shard) to a load-aware greedy pack: the task
	// bounding rect is tiled much finer than the shard count and tiles are
	// packed onto shards largest-load-first, so a spatial hotspot splits
	// across shards instead of degenerating into one hot shard. Ignored
	// (striping kept) for n = 1, where both modes coincide.
	Balanced bool
	// LoadSample approximates the expected check-in distribution for the
	// balanced pack — typically the known worker locations, or a sampled
	// subset of them. Nil falls back to the task locations (demand as a
	// proxy for traffic). Ignored unless Balanced is set.
	LoadSample []geo.Point
}

// balancedTileFactor is how many tiles per requested shard the balanced
// mode carves the bounding rect into. Finer tiles split hotspots across
// more shards at the cost of a larger (still O(1)-lookup) routing table;
// 64 keeps the largest atomic tile well under one shard's fair share for
// every scenario in the workload suite.
const balancedTileFactor = 64

// PartitionInstance partitions in's tasks into at most n spatial shards.
// Fewer shards are returned when some tiles hold no tasks (or n exceeds the
// task count — a shard is never empty). n = 1 yields a single shard whose
// sub-instance lists the source tasks in their original order, so any
// algorithm run on it behaves exactly as on the source.
func PartitionInstance(in *Instance, n int) (*Partition, error) {
	return PartitionInstanceOpts(in, n, PartitionOptions{})
}

// PartitionInstanceOpts is PartitionInstance with explicit options; see
// PartitionOptions for the balanced tile→shard mode. Whatever the mode,
// every location keeps routing to exactly one shard (the same shard for
// workers and posted tasks alike), local task order follows ascending
// global TaskID, and n = 1 reproduces the source task order — so the
// dispatch layer's latency and ordering semantics are mode-independent.
func PartitionInstanceOpts(in *Instance, n int, opt PartitionOptions) (*Partition, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: got %d", ErrBadShardCount, n)
	}
	if len(in.Tasks) == 0 {
		return nil, ErrNoTasks
	}
	if n > len(in.Tasks) {
		n = len(in.Tasks)
	}

	p := &Partition{Source: in, Balanced: opt.Balanced && n > 1}
	pts := make([]geo.Point, len(in.Tasks))
	for i, t := range in.Tasks {
		pts[i] = t.Loc
	}
	rect, _ := geo.BoundingRect(pts)
	p.origin = rect.Min

	if p.Balanced {
		p.buildBalanced(in, n, opt.LoadSample, rect, pts)
		// A degenerate pack can collapse to one shard (every task in one
		// fine tile); the layouts then coincide, as with a requested n=1.
		p.Balanced = len(p.Shards) > 1
	} else {
		p.buildStriped(in, n, rect, pts)
	}
	return p, nil
}

// buildStriped is the fixed spatial striping of PR 1: the rect is tiled
// into ~n near-square tiles and each non-empty tile becomes one shard.
func (p *Partition) buildStriped(in *Instance, n int, rect geo.Rect, pts []geo.Point) {
	// Near-square tiling with cols·rows ≤ n, so the shard count never
	// exceeds the request (empty tiles can only shrink it further).
	p.cols = int(math.Sqrt(float64(n)))
	if p.cols < 1 {
		p.cols = 1
	}
	p.rows = n / p.cols
	p.setTileDims(rect)

	// Bucket tasks by tile; iterate in global order so each shard's local
	// task order follows ascending global TaskID.
	tileTasks := p.bucketTasks(in)
	// Steady-state readers use atomic loads on tileShard (tiles migrate
	// live); build the table in a local and publish it once so every
	// element store after publication is atomic.
	tileShard := make([]int32, p.cols*p.rows)
	p.taskShard = make([]int32, len(in.Tasks))
	for c, ids := range tileTasks {
		if len(ids) == 0 {
			tileShard[c] = -1
			continue
		}
		tileShard[c] = p.addShard(in, ids)
	}
	p.tileShard = tileShard

	// Fallback router: a check-in landing on a task-free tile (or outside
	// the rect) goes to the shard of the nearest task. Cell size of one tile
	// edge keeps nearest-neighbour ring scans short.
	cell := math.Min(p.tileW, p.tileH)
	p.taskGrid = geo.NewGridIndex(pts, cell)
}

// buildBalanced tiles the rect balancedTileFactor× finer than the shard
// count, estimates each tile's load from the sample (attributing traffic
// of task-free tiles to the task tile that will serve it), packs the task
// tiles onto shards by greedy largest-load-first balance, and precomputes
// a shard for every task-free tile — Locate stays a single table lookup.
func (p *Partition) buildBalanced(in *Instance, n int, sample []geo.Point, rect geo.Rect, pts []geo.Point) {
	p.cols, p.rows = fineTiling(rect, balancedTileFactor*n)
	p.setTileDims(rect)

	tileTasks := p.bucketTasks(in)
	// The runtime Locate never needs the nearest-task fallback in balanced
	// mode (every tile gets a shard below), but the index stays cheap to
	// build and keeps the shared code path total.
	side := math.Sqrt(math.Max(rect.Width(), 1) * math.Max(rect.Height(), 1) / float64(len(pts)))
	p.taskGrid = geo.NewGridIndex(pts, side)

	// freeOwner maps every task-free tile to the task tile whose tasks
	// will serve its traffic: a multi-source BFS from the task tiles over
	// the tile grid (O(tiles), visited in deterministic queue order), so
	// both the load attribution below and the final routing table agree.
	// BFS hop distance stands in for Euclidean distance here — tiles are
	// near-square, and per-tile ring scans would dominate the whole
	// partitioning cost at this tiling resolution.
	freeOwner := make([]int32, p.cols*p.rows)
	queue := make([]int32, 0, p.cols*p.rows)
	for c, ids := range tileTasks {
		if len(ids) > 0 {
			freeOwner[c] = int32(c)
			queue = append(queue, int32(c))
		} else {
			freeOwner[c] = -1
		}
	}
	for head := 0; head < len(queue); head++ {
		c := queue[head]
		cx, cy := int(c)%p.cols, int(c)/p.cols
		for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
			nx, ny := cx+d[0], cy+d[1]
			if nx < 0 || nx >= p.cols || ny < 0 || ny >= p.rows {
				continue
			}
			nc := int32(ny*p.cols + nx)
			if freeOwner[nc] < 0 {
				freeOwner[nc] = freeOwner[c]
				queue = append(queue, nc)
			}
		}
	}

	// Sampled load profile: count sample points per tile, folding traffic
	// that lands on task-free tiles into the task tile serving it. With no
	// sample, task counts stand in for traffic.
	load := make([]float64, p.cols*p.rows)
	if len(sample) == 0 {
		for c, ids := range tileTasks {
			load[c] = float64(len(ids))
		}
	} else {
		for _, pt := range sample {
			// Task tiles own themselves in freeOwner, so this folds
			// task-free-tile traffic onto the tile serving it in one step.
			load[freeOwner[p.tileIndex(pt)]]++
		}
		// A task tile no sample point hit still carries its tasks: weight
		// it in so the pack never stacks all quiet tiles on one shard.
		for c, ids := range tileTasks {
			if len(ids) > 0 && load[c] == 0 {
				load[c] = float64(len(ids)) / float64(len(in.Tasks))
			}
		}
	}

	// Greedy balance (LPT): task tiles largest-load-first, each onto the
	// currently lightest shard. Ties break on tile index / bin index, so
	// the pack is deterministic.
	taskTiles := make([]int, 0, len(tileTasks))
	for c, ids := range tileTasks {
		if len(ids) > 0 {
			taskTiles = append(taskTiles, c)
		}
	}
	sort.SliceStable(taskTiles, func(i, j int) bool {
		if load[taskTiles[i]] != load[taskTiles[j]] {
			return load[taskTiles[i]] > load[taskTiles[j]]
		}
		return taskTiles[i] < taskTiles[j]
	})
	if n > len(taskTiles) {
		n = len(taskTiles) // a shard is never empty
	}
	binLoad := make([]float64, n)
	binOf := make(map[int]int, len(taskTiles)) // task tile → bin
	for _, c := range taskTiles {
		best := 0
		for b := 1; b < n; b++ {
			if binLoad[b] < binLoad[best] {
				best = b
			}
		}
		binOf[c] = best
		binLoad[best] += load[c]
	}

	// Renumber bins by their smallest global TaskID so shard order (and
	// with it ShardStats, stream replays, ...) is deterministic and
	// independent of the pack's visit order.
	binMin := make([]TaskID, n)
	for b := range binMin {
		binMin[b] = TaskID(len(in.Tasks))
	}
	for c, ids := range tileTasks {
		if len(ids) == 0 {
			continue
		}
		if b := binOf[c]; ids[0] < binMin[b] {
			binMin[b] = ids[0]
		}
	}
	order := make([]int, n)
	for b := range order {
		order[b] = b
	}
	sort.Slice(order, func(i, j int) bool { return binMin[order[i]] < binMin[order[j]] })
	shardOf := make([]int32, n)
	for rank, b := range order {
		shardOf[b] = int32(rank)
	}

	// Collect each shard's global IDs in ascending order (tileTasks holds
	// ascending IDs per tile; tiles visit in index order, then a sort makes
	// the cross-tile order ascending too).
	shardIDs := make([][]TaskID, n)
	for c, ids := range tileTasks {
		if len(ids) == 0 {
			continue
		}
		s := shardOf[binOf[c]]
		shardIDs[s] = append(shardIDs[s], ids...)
	}
	// As in buildStriped: fill a local table, publish once, so post-build
	// element stores are exclusively atomic.
	tileShard := make([]int32, p.cols*p.rows)
	p.taskShard = make([]int32, len(in.Tasks))
	for s, ids := range shardIDs {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		if got := p.addShard(in, ids); int(got) != s {
			panic("model: balanced shard numbering out of order")
		}
	}
	for c := range tileShard {
		tileShard[c] = shardOf[binOf[int(freeOwner[c])]]
	}
	p.tileShard = tileShard

	// Keep the ownership structure: migration moves a task tile together
	// with the free tiles it serves.
	p.freeOwner = freeOwner
	p.ownedTiles = make(map[int32][]int32, len(taskTiles))
	for c, o := range freeOwner {
		if int32(c) == o {
			// Owner first, so a migration's routing swap starts at the tile
			// whose tasks are moving.
			p.ownedTiles[o] = append([]int32{o}, p.ownedTiles[o]...)
		} else {
			p.ownedTiles[o] = append(p.ownedTiles[o], int32(c))
		}
	}
}

// fineTiling picks a cols×rows grid of ≈ tiles near-square cells over rect,
// degrading gracefully for zero-extent rects.
func fineTiling(rect geo.Rect, tiles int) (cols, rows int) {
	w, h := rect.Width(), rect.Height()
	switch {
	case w <= 0 && h <= 0:
		return 1, 1
	case w <= 0:
		return 1, tiles
	case h <= 0:
		return tiles, 1
	}
	side := math.Sqrt(w * h / float64(tiles))
	cols = int(math.Ceil(w / side))
	rows = int(math.Ceil(h / side))
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	// Extreme aspect ratios blow the ceil up (a near-line task rect can
	// yield millions of columns for a 1-row grid); halve the long axis
	// until the tile count is back within a small factor of the budget.
	// Sane rects never enter the loop, so the common layout is untouched.
	for cols*rows > 4*tiles {
		if cols >= rows {
			cols = (cols + 1) / 2
		} else {
			rows = (rows + 1) / 2
		}
	}
	return cols, rows
}

// setTileDims derives the tile dimensions from the rect and grid shape.
func (p *Partition) setTileDims(rect geo.Rect) {
	p.tileW = rect.Width() / float64(p.cols)
	p.tileH = rect.Height() / float64(p.rows)
	if p.tileW <= 0 {
		p.tileW = 1 // degenerate extent: all tasks share one column
	}
	if p.tileH <= 0 {
		p.tileH = 1
	}
}

// bucketTasks groups the instance's tasks by tile, ascending global ID
// within each tile.
func (p *Partition) bucketTasks(in *Instance) [][]TaskID {
	tileTasks := make([][]TaskID, p.cols*p.rows)
	for _, t := range in.Tasks {
		c := p.tileIndex(t.Loc)
		tileTasks[c] = append(tileTasks[c], t.ID)
	}
	return tileTasks
}

// NewSubInstance builds a standalone SubInstance over the given ascending
// global task IDs of in: tasks are renumbered to local consecutive IDs, the
// accuracy model is wrapped so ID-sensitive models keep seeing the source
// task, and the radius bound is forwarded when the source model has one.
// This is the extraction primitive shared by the dispatch layer's spatial
// shards and the cluster tier's per-node instances. The sub-instance's
// Workers slice is empty — callers feed workers at check-in time.
func NewSubInstance(in *Instance, ids []TaskID) *SubInstance {
	sub := &SubInstance{
		In: &Instance{
			Tasks:   make([]Task, len(ids)),
			Epsilon: in.Epsilon,
			K:       in.K,
			MinAcc:  in.MinAcc,
		},
		Global: make([]TaskID, len(ids)),
		source: make([]Task, len(ids)),
	}
	for local, gid := range ids {
		sub.In.Tasks[local] = Task{ID: TaskID(local), Loc: in.Tasks[gid].Loc}
		sub.Global[local] = gid
		sub.source[local] = in.Tasks[gid]
	}
	sub.In.Model = newShardModel(in, sub)
	return sub
}

// addShard builds the SubInstance over the given ascending global IDs,
// records the task→shard mapping, and returns the new shard's index.
func (p *Partition) addShard(in *Instance, ids []TaskID) int32 {
	shard := int32(len(p.Shards))
	sub := NewSubInstance(in, ids)
	for _, gid := range ids {
		p.taskShard[gid] = shard
	}
	p.Shards = append(p.Shards, sub)
	return shard
}

// shardModel adapts the source accuracy model to a shard's local task
// numbering: Predict is forwarded with the source task, so models that key
// off Task.ID (MatrixAccuracy) or any other task identity see global IDs.
// It reads the sub-instance's growable task table, so tasks appended online
// resolve too.
type shardModel struct {
	src *Instance
	sub *SubInstance
}

func newShardModel(src *Instance, sub *SubInstance) AccuracyModel {
	m := &shardModel{src: src, sub: sub}
	if _, ok := src.Model.(RadiusBounder); ok {
		return &boundedShardModel{shardModel: m}
	}
	return m
}

// Predict implements AccuracyModel.
func (m *shardModel) Predict(w Worker, t Task) float64 {
	return m.src.Model.Predict(w, m.sub.source[t.ID])
}

// boundedShardModel additionally forwards the eligibility radius, so the
// per-shard CandidateIndex keeps its spatial pruning.
type boundedShardModel struct {
	*shardModel
}

// EligibilityRadius implements RadiusBounder.
func (m *boundedShardModel) EligibilityRadius(minAcc float64) float64 {
	return m.src.Model.(RadiusBounder).EligibilityRadius(minAcc)
}

// NumShards reports the number of (non-empty) shards.
func (p *Partition) NumShards() int { return len(p.Shards) }

// TaskShard returns the shard holding the given initial global task. Tasks
// posted after partitioning are tracked by the dispatch layer, not here.
func (p *Partition) TaskShard(t TaskID) int { return int(p.taskShard[t]) }

// Locate routes a location to a shard: the shard of its enclosing tile, or
// — when that tile holds no tasks — the shard of the nearest initial task.
// Safe for concurrent use, including while MigrateTile swaps entries.
func (p *Partition) Locate(loc geo.Point) int {
	if s := atomic.LoadInt32(&p.tileShard[p.tileIndex(loc)]); s >= 0 {
		return int(s)
	}
	id, _, ok := p.taskGrid.Nearest(loc)
	if !ok {
		return 0 // unreachable: partitions always hold ≥ 1 task
	}
	return int(p.taskShard[id])
}

// ErrNotRebalanceable is returned by MigrateTile on layouts without the
// ownership structure live migration needs (striped layouts, or balanced
// packs that collapsed to one shard).
var ErrNotRebalanceable = errors.New("model: partition layout does not support tile migration")

// Rebalanceable reports whether the partition supports MigrateTile: only
// balanced layouts carry the tile ownership structure, and a single-shard
// layout has nowhere to migrate to.
func (p *Partition) Rebalanceable() bool {
	return p.Balanced && p.freeOwner != nil && len(p.Shards) > 1
}

// NumTiles returns the size of the tile grid (task-free tiles included).
func (p *Partition) NumTiles() int { return p.cols * p.rows }

// TileOf returns the tile index containing loc (clamped into the grid).
func (p *Partition) TileOf(loc geo.Point) int { return p.tileIndex(loc) }

// OwnerTile returns the task tile serving loc's traffic on a rebalanceable
// layout (the migration unit loc belongs to), or -1 when the layout has no
// ownership structure.
func (p *Partition) OwnerTile(loc geo.Point) int {
	if p.freeOwner == nil {
		return -1
	}
	return int(p.freeOwner[p.tileIndex(loc)])
}

// LocateOwner is Locate plus the owner tile of the location, sharing one
// tile computation — the hot-path variant the load forecaster rides on.
// The owner tile is -1 on layouts without the ownership structure.
func (p *Partition) LocateOwner(loc geo.Point) (shard, ownerTile int) {
	c := p.tileIndex(loc)
	if p.freeOwner != nil {
		return int(atomic.LoadInt32(&p.tileShard[c])), int(p.freeOwner[c])
	}
	if s := atomic.LoadInt32(&p.tileShard[c]); s >= 0 {
		return int(s), -1
	}
	id, _, ok := p.taskGrid.Nearest(loc)
	if !ok {
		return 0, -1
	}
	return int(p.taskShard[id]), -1
}

// OwnerTiles returns the task tiles of a rebalanceable layout — the units
// migration can move — in ascending tile order. The result is a fresh slice.
func (p *Partition) OwnerTiles() []int {
	tiles := make([]int, 0, len(p.ownedTiles))
	for c, o := range p.freeOwner {
		if int32(c) == o {
			tiles = append(tiles, c)
		}
	}
	return tiles
}

// TileShard returns the shard currently routing the given tile (-1 for
// task-free tiles of a striped layout). Safe for concurrent use.
func (p *Partition) TileShard(tile int) int {
	return int(atomic.LoadInt32(&p.tileShard[tile]))
}

// MigrateTile reroutes a task tile — and every free tile it serves — to the
// given shard. Each entry swaps with one atomic store, so concurrent Locate
// calls always read a valid shard; callers that need the task handoff to be
// atomic with the routing swap (the dispatch layer) serialize MigrateTile
// with both shards' ingestion locks. The tile must be a task tile (an owner
// in the ownership structure); task-free tiles move only with their owner.
func (p *Partition) MigrateTile(tile, shard int) error {
	if !p.Rebalanceable() {
		return ErrNotRebalanceable
	}
	if tile < 0 || tile >= len(p.tileShard) || p.freeOwner[tile] != int32(tile) {
		return fmt.Errorf("model: tile %d is not a migratable task tile", tile)
	}
	if shard < 0 || shard >= len(p.Shards) {
		return fmt.Errorf("model: migration target shard %d out of range [0,%d)", shard, len(p.Shards))
	}
	for _, c := range p.ownedTiles[int32(tile)] {
		atomic.StoreInt32(&p.tileShard[c], int32(shard))
	}
	return nil
}

// tileIndex returns the tile containing loc, clamped to the tiling extent.
func (p *Partition) tileIndex(loc geo.Point) int {
	tx := int(math.Floor((loc.X - p.origin.X) / p.tileW))
	ty := int(math.Floor((loc.Y - p.origin.Y) / p.tileH))
	if tx < 0 {
		tx = 0
	} else if tx >= p.cols {
		tx = p.cols - 1
	}
	if ty < 0 {
		ty = 0
	} else if ty >= p.rows {
		ty = p.rows - 1
	}
	return ty*p.cols + tx
}
