package main

import "testing"

func TestBuildInstancePresets(t *testing.T) {
	in, err := buildInstance("", 0.01, 0.14, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Tasks) == 0 || in.Epsilon != 0.14 || in.K != 4 {
		t.Fatalf("synthetic instance: %d tasks, ε=%v, K=%d", len(in.Tasks), in.Epsilon, in.K)
	}
	city, err := buildInstance("newyork", 0.002, 0.10, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(city.Tasks) == 0 {
		t.Fatal("city instance has no tasks")
	}
	if _, err := buildInstance("atlantis", 0.01, 0.10, 6, 9); err == nil {
		t.Fatal("unknown city accepted")
	}
}
