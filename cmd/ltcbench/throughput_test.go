package main

import (
	"errors"
	"testing"
	"time"
)

// allocSink keeps the per-op allocations of the measured closure from being
// optimized away.
var allocSink []byte

// TestPassMetricsBracketsFeedOnly pins the corrected throughput accounting:
// the clock and allocation counters bracket exactly the measured feed call,
// so work done around it — platform construction, drainer startup, pass
// bookkeeping — is never charged to the hot path. Artifacts through
// BENCH_pr5.json bracketed the whole pass loop and inflated allocs/op by
// the per-run construction cost; this test fails if that regresses.
func TestPassMetricsBracketsFeedOnly(t *testing.T) {
	var pm passMetrics

	// Allocate heavily OUTSIDE measure: the construction-cost stand-in.
	waste := make([][]byte, 0, 2048)
	for i := 0; i < 2048; i++ {
		waste = append(waste, make([]byte, 512))
	}

	// An allocation-free feed body must report a flat 0 allocs/op no
	// matter how much was allocated around it.
	fed, err := pm.measure(func() (int, error) { return 1000, nil })
	if err != nil || fed != 1000 {
		t.Fatalf("measure = (%d, %v), want (1000, nil)", fed, err)
	}
	_ = waste
	if pm.checkins != 1000 {
		t.Fatalf("checkins = %d, want 1000", pm.checkins)
	}
	if got := pm.allocsPerOp(); got != 0 {
		t.Fatalf("allocation-free feed charged %.2f allocs/op — work outside the feed leaked into the bracket", got)
	}
	if pm.elapsed <= 0 {
		t.Fatal("no elapsed time recorded for the feed")
	}

	// A feed that demonstrably allocates per op is charged for it.
	var pm2 passMetrics
	if _, err := pm2.measure(func() (int, error) {
		for i := 0; i < 100; i++ {
			allocSink = make([]byte, 4096)
		}
		return 100, nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := pm2.allocsPerOp(); got < 1 {
		t.Fatalf("allocating feed reported %.2f allocs/op, want ≥ 1", got)
	}
	if pm2.bytesPerOp() < 4096 {
		t.Fatalf("allocating feed reported %.0f bytes/op, want ≥ 4096", pm2.bytesPerOp())
	}

	// Errors pass through; the failed feed's cost still folds in.
	wantErr := errors.New("boom")
	var pm3 passMetrics
	if _, err := pm3.measure(func() (int, error) { return 7, wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if pm3.checkins != 7 {
		t.Fatalf("checkins = %d, want 7", pm3.checkins)
	}

	// add folds passes; rate uses only measured feed time.
	agg := passMetrics{checkins: 500, elapsed: 250 * time.Millisecond}
	agg.add(passMetrics{checkins: 500, elapsed: 250 * time.Millisecond, mallocs: 400, bytes: 800})
	if got := agg.rate(); got < 1990 || got > 2010 {
		t.Fatalf("rate = %.1f workers/s, want ~2000", got)
	}
	// 400 allocations over 1000 ops truncate to 0 — testing.B's convention,
	// so amortized costs (arena blocks, slice regrowth) read as flat zero.
	if got := agg.allocsPerOp(); got != 0 {
		t.Fatalf("amortized allocs/op = %.2f, want truncated 0", got)
	}
}

// TestParseFeeders covers the -feeders flag: default single GOMAXPROCS
// entry, explicit lists, and rejection of non-positive counts.
func TestParseFeeders(t *testing.T) {
	def, err := parseFeeders("")
	if err != nil || len(def) != 1 || def[0] < 1 {
		t.Fatalf("parseFeeders(\"\") = %v, %v — want one GOMAXPROCS entry", def, err)
	}
	got, err := parseFeeders("1,2,4")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("parseFeeders(\"1,2,4\") = %v, %v", got, err)
	}
	if _, err := parseFeeders("0"); err == nil {
		t.Fatal("parseFeeders(\"0\") accepted a non-positive count")
	}
}
