package ltc

import (
	"errors"
	"fmt"

	"ltc/internal/geo"
)

// ChurnReport summarises one sequential replay of a churn workload.
type ChurnReport struct {
	// AbsoluteLatency is the paper's objective: the largest worker index
	// with an assignment. RelativeLatency measures from each task's post
	// index instead (equal when nothing was posted late).
	AbsoluteLatency int
	RelativeLatency int
	// Completed tasks reached δ; Expired were retired before reaching it.
	Completed int
	Expired   int
	// WorkersFed is how many workers of the stream were consumed.
	WorkersFed int
	// Statuses is the final per-task lifecycle snapshot, in TaskID order.
	Statuses []TaskStatus
}

// churnLoadSamplePrefix caps how much of the arrival stream feeds the
// balanced layout's load profile, mirroring the dispatch layer's own
// sample cap.
const churnLoadSamplePrefix = 4096

// churnLoadSample is the load profile a balanced churn replay packs
// against: the live arrival prefix of the worker stream, in arrival order.
// The default profile samples the instance's full worker set with a fixed
// stride — an oracle over arrivals that haven't happened yet, which under
// churn skews the layout toward late traffic while the late-posted tasks it
// anticipates don't exist at layout time. The prefix is causally sound: it
// is exactly what an operator could have observed before the stream ran.
func churnLoadSample(cw *ChurnWorkload) []geo.Point {
	n := min(len(cw.Instance.Workers), churnLoadSamplePrefix)
	if n == 0 {
		return nil
	}
	pts := make([]geo.Point, n)
	for i, w := range cw.Instance.Workers[:n] {
		pts[i] = w.Loc
	}
	return pts
}

// ReplayChurn drives a churn workload sequentially through a fresh
// Platform: workers check in one by one, and each lifecycle event fires
// once its arrival tick is reached — posts must come back with the plan's
// dense IDs, expiries retire tasks whether or not they completed first.
// Events scheduled past the end of the worker stream (a TTL can outlive
// it) fire after the last worker, so every planned expiry lands and the
// report's Completed + Expired always covers the whole task set.
//
// With a balanced layout (WithBalancedShards or WithRebalance) and a plan
// that posts tasks mid-stream, the layout's load profile is the live
// arrival prefix of the worker stream instead of the default full-stream
// sample — see churnLoadSample. Plans with no late posts keep the default
// profile, so existing replays are unchanged.
func ReplayChurn(cw *ChurnWorkload, algo Algorithm, opts ...Option) (*ChurnReport, error) {
	if c := newConfig(opts); c.balanced && c.loadSample == nil && cw.PostedLate() > 0 {
		if pts := churnLoadSample(cw); pts != nil {
			opts = append(opts[:len(opts):len(opts)], withLoadSample(pts))
		}
	}
	plat, err := NewPlatform(cw.Instance, algo, opts...)
	if err != nil {
		return nil, err
	}
	// The replay feeds synchronously, but Close also freezes the tile
	// layout when WithRebalance is in play.
	defer plat.Close()
	rep := &ChurnReport{}
	next, pendingPosts := 0, 0
	for _, e := range cw.Events {
		if e.Kind == EventPost {
			pendingPosts++
		}
	}
	fire := func(arrived int) error {
		for next < len(cw.Events) && cw.Events[next].Arrival <= arrived {
			e := cw.Events[next]
			next++
			switch e.Kind {
			case EventPost:
				pendingPosts--
				id, err := plat.PostTask(e.Task)
				if err != nil {
					return err
				}
				if id != e.Task.ID {
					return fmt.Errorf("ltc: posted task got ID %d, churn plan expected %d", id, e.Task.ID)
				}
			case EventRetire:
				if err := plat.RetireTask(e.ID); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := fire(0); err != nil {
		return nil, err
	}
	for i, worker := range cw.Instance.Workers {
		// Pending retires alone can't need more workers — the trailing fire
		// below lands them; pending posts can revive a done platform, so
		// keep feeding while any remain.
		if plat.Done() && pendingPosts == 0 {
			break
		}
		if _, err := plat.CheckIn(worker); err != nil && !errors.Is(err, ErrPlatformDone) {
			return nil, err
		}
		rep.WorkersFed = i + 1
		if err := fire(i + 1); err != nil {
			return nil, err
		}
	}
	// Trailing events: expiries scheduled beyond the stream's end.
	if err := fire(int(^uint(0) >> 1)); err != nil {
		return nil, err
	}
	rep.AbsoluteLatency = plat.Latency()
	rep.RelativeLatency = plat.RelativeLatency()
	rep.Statuses = plat.TaskStatuses()
	for _, st := range rep.Statuses {
		if st.Completed {
			rep.Completed++
		} else if st.Retired {
			rep.Expired++
		}
	}
	return rep, nil
}
