package ltc

import (
	"errors"
	"fmt"

	"ltc/internal/core"
)

// Session drives an online algorithm one worker at a time — the natural
// shape for a live platform where check-ins stream in. Unlike Solve, the
// caller controls the worker feed and can interleave its own bookkeeping
// (e.g. pushing the assigned questions to the user's device).
//
// Workers must be offered in arrival order with consecutive indices
// starting at 1; assignments are immediate and irrevocable, matching the
// online LTC temporal constraint. A Session is single-threaded — it is the
// 1-shard special case of Platform, which serves concurrent check-in
// streams across spatial shards.
type Session struct {
	eng       *core.Engine
	nextIndex int
	tasksBuf  []TaskID
}

// Session errors.
var (
	ErrOutOfOrder  = errors.New("ltc: workers must arrive in index order 1, 2, ...")
	ErrSessionDone = errors.New("ltc: session already completed all tasks")
)

// validateStreaming wraps model.Instance.ValidateStreaming with the
// package's error prefix.
func validateStreaming(in *Instance) error {
	if err := in.ValidateStreaming(); err != nil {
		return fmt.Errorf("ltc: %w", err)
	}
	return nil
}

// NewSession starts a streaming session for an online algorithm. The
// instance's Workers slice may be empty — workers are supplied via Arrive —
// but Tasks, Epsilon, K, Model and MinAcc must be set.
func NewSession(in *Instance, algo Algorithm, opts ...SolveOptions) (*Session, error) {
	var o SolveOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	if err := validateStreaming(in); err != nil {
		return nil, err
	}
	factory, err := onlineFactory(algo, o)
	if err != nil {
		return nil, err
	}
	return &Session{
		eng:       core.NewEngine(in, o.index(in), factory),
		nextIndex: 1,
	}, nil
}

// Arrive offers the next worker and returns the tasks assigned to it
// (possibly none). It returns ErrSessionDone once every task has completed
// and ErrOutOfOrder when the worker's index breaks the arrival sequence.
func (s *Session) Arrive(w Worker) ([]TaskID, error) {
	if s.eng.Done() {
		return nil, ErrSessionDone
	}
	if w.Index != s.nextIndex {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrOutOfOrder, w.Index, s.nextIndex)
	}
	s.nextIndex++
	s.tasksBuf = append(s.tasksBuf[:0], s.eng.Arrive(w)...)
	return s.tasksBuf, nil
}

// Done reports whether every task has reached the quality threshold.
func (s *Session) Done() bool { return s.eng.Done() }

// Latency returns the arrival index of the last worker assigned so far —
// the LTC objective once Done is true.
func (s *Session) Latency() int { return s.eng.Arrangement().Latency() }

// WorkersSeen reports how many workers have been offered.
func (s *Session) WorkersSeen() int { return s.nextIndex - 1 }

// Arrangement returns the assignments made so far. The returned value is
// live; callers must not mutate it.
func (s *Session) Arrangement() *Arrangement { return s.eng.Arrangement() }

// Progress returns the number of completed tasks and the task total.
func (s *Session) Progress() (completed, total int) { return s.eng.Progress() }

// Credits appends a snapshot of the per-task accumulated Acc* credit to dst
// and returns the extended slice.
func (s *Session) Credits(dst []float64) []float64 { return s.eng.Credits(dst) }
