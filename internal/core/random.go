package core

import (
	"math/rand/v2"

	"ltc/internal/model"
	"ltc/internal/stats"
)

// Random is the naive online baseline of the evaluation (§V-A): when a
// worker arrives, up to K of the nearby (eligible) uncompleted tasks are
// assigned uniformly at random.
type Random struct {
	in    *model.Instance
	ci    *model.CandidateIndex
	state *taskState
	rng   *rand.Rand
	cands []model.Candidate
	out   []model.TaskID
}

// NewRandom returns a fresh Random solver seeded deterministically.
func NewRandom(in *model.Instance, ci *model.CandidateIndex, seed uint64) *Random {
	return &Random{
		in:    in,
		ci:    ci,
		state: newTaskState(len(in.Tasks), in.Delta()),
		rng:   stats.NewRand(seed),
	}
}

// Name implements Online.
func (r *Random) Name() string { return "Random" }

// Done implements Online.
func (r *Random) Done() bool { return r.state.allDone() }

// Arrive implements Online.
func (r *Random) Arrive(w model.Worker) []model.TaskID { return r.ArriveVia(w, r.ci) }

// ArriveVia implements BatchOnline: Arrive drawing candidates from src.
func (r *Random) ArriveVia(w model.Worker, src model.CandidateSource) []model.TaskID {
	if r.state.allDone() {
		return nil
	}
	r.cands = src.Candidates(w, r.cands[:0])
	// Compact to uncompleted candidates in place.
	open := r.cands[:0]
	for _, c := range r.cands {
		if !r.state.done(c.Task) {
			open = append(open, c)
		}
	}
	// Partial Fisher-Yates: draw min(K, len) without replacement.
	k := r.in.K
	if k > len(open) {
		k = len(open)
	}
	r.out = r.out[:0]
	for i := 0; i < k; i++ {
		j := i + r.rng.IntN(len(open)-i)
		open[i], open[j] = open[j], open[i]
		r.state.add(open[i].Task, open[i].AccStar)
		r.out = append(r.out, open[i].Task)
	}
	return r.out
}
