package dispatch

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"ltc/internal/core"
	"ltc/internal/events"
	"ltc/internal/geo"
	"ltc/internal/model"
)

// Rebalancing defaults; see RebalanceOptions.
const (
	DefaultRebalanceInterval  = 1024
	DefaultRebalanceThreshold = 1.25
	DefaultRebalanceMaxMoves  = 4
	DefaultRebalanceAlpha     = 0.5
)

// ErrRebalanceLayout is returned by New when rebalancing is requested
// without the balanced layout: only balanced partitions carry the tile
// ownership structure live migration moves.
var ErrRebalanceLayout = fmt.Errorf("dispatch: rebalancing requires the balanced layout: %w", model.ErrNotRebalanceable)

// RebalanceOptions tunes the online rebalancer (Options.Rebalance). The
// rebalancer learns per-tile arrival rates with an exponentially weighted
// moving average folded every Interval arrivals, and migrates tiles from the
// forecast-heaviest shard to the lightest whenever the forecast imbalance
// (heaviest shard's rate over the per-shard mean) exceeds Threshold — the
// prediction-driven assignment of Cheng et al. applied to shard ownership:
// the layout follows the load before the hot shard's backlog materializes.
// Zero values mean the defaults above.
type RebalanceOptions struct {
	// Interval is the forecast granularity: the rebalancer folds its tile
	// counters and re-evaluates the layout every Interval arrivals.
	Interval int
	// Threshold is the minimum forecast imbalance ratio (≥ 1) that triggers
	// migration; below it the layout is left alone.
	Threshold float64
	// MaxMoves caps how many tiles one rebalance pass migrates.
	MaxMoves int
	// Alpha is the EWMA smoothing factor in (0, 1]: 1 forecasts from the
	// last interval alone, smaller values remember more history.
	Alpha float64
}

// withDefaults resolves zero knobs; validate catches out-of-range ones.
func (o RebalanceOptions) withDefaults() RebalanceOptions {
	if o.Interval == 0 {
		o.Interval = DefaultRebalanceInterval
	}
	if o.Threshold == 0 {
		o.Threshold = DefaultRebalanceThreshold
	}
	if o.MaxMoves == 0 {
		o.MaxMoves = DefaultRebalanceMaxMoves
	}
	if o.Alpha == 0 {
		o.Alpha = DefaultRebalanceAlpha
	}
	return o
}

func (o RebalanceOptions) validate() error {
	if o.Interval < 1 || o.Threshold < 1 || o.MaxMoves < 1 || o.Alpha <= 0 || o.Alpha > 1 {
		return fmt.Errorf("%w: rebalance Interval %d, Threshold %v, MaxMoves %d, Alpha %v",
			ErrBadOptions, o.Interval, o.Threshold, o.MaxMoves, o.Alpha)
	}
	return nil
}

// rebalancer is the online re-sharding engine: a per-owner-tile arrival
// counter array fed (lock-free) from the routing hot path, an EWMA forecast
// over it, and a pass — run inline by the arrival that crosses each
// Interval boundary — that migrates tiles when the forecast says the
// layout no longer matches the traffic.
type rebalancer struct {
	d   *Dispatcher
	opt RebalanceOptions

	// tileLoad counts arrivals per owner tile since the last forecast fold.
	// Written with atomic adds from the routing hot path, swapped to zero by
	// the rebalance pass.
	tileLoad []paddedCounter
	// rate is the EWMA arrivals-per-interval forecast per owner tile. Only
	// the pass holder (see passing) reads or writes it.
	rate []float64
	// owners lists the migratable task tiles, ascending.
	owners []int
	// load is the pass-private per-shard forecast scratch.
	load []float64

	// passing serializes rebalance passes: the arrival that crosses an
	// Interval boundary claims it and runs the pass inline; concurrent
	// crossings skip theirs (folding intervals is fine — the next crossing
	// sees the accumulated counters). Holding it is what makes rate/load
	// single-writer.
	passing atomic.Bool
	// stopped freezes the layout: set by halt (Dispatcher.Close), it turns
	// every later crossing into a no-op.
	stopped atomic.Bool
}

// paddedCounter is an atomic counter on its own cache line, so per-tile
// arrival counting from many check-in goroutines doesn't false-share.
type paddedCounter struct {
	n atomic.Int64
	_ [56]byte
}

func newRebalancer(d *Dispatcher, opt RebalanceOptions) *rebalancer {
	return &rebalancer{
		d:        d,
		opt:      opt,
		tileLoad: make([]paddedCounter, d.part.NumTiles()),
		rate:     make([]float64, d.part.NumTiles()),
		owners:   d.part.OwnerTiles(),
		load:     make([]float64, len(d.shards)),
	}
}

// halt freezes the layout and waits for any in-flight pass to finish, so
// once it returns no tile ever moves again. Idempotent.
func (rb *rebalancer) halt() {
	rb.stopped.Store(true)
	for rb.passing.Load() {
		runtime.Gosched()
	}
}

// noteArrived runs a rebalance pass when the arrival total crosses an
// Interval boundary. before/after bracket one Add on the dispatcher's
// arrival counter; bulk ingests (batch runs) cross at most one pass per
// call, which is the point — the forecast granularity follows the arrival
// clock, not the call pattern.
//
// The pass runs inline on the crossing arrival's goroutine, which at every
// call site has already released its shard mutex: a background loop would
// depend on the scheduler granting it a timeslice, which on a saturated
// box it may never get within a stream's lifetime — exactly when the
// layout most needs to move. Concurrent crossings don't pile up: whoever
// loses the passing claim skips, and the skipped interval's counters fold
// into the next pass.
func (rb *rebalancer) noteArrived(before, after int64) {
	iv := int64(rb.opt.Interval)
	if before/iv == after/iv || rb.stopped.Load() {
		return
	}
	if !rb.passing.CompareAndSwap(false, true) {
		return // a pass is already running; folding intervals is fine
	}
	if !rb.stopped.Load() { // re-check under the claim so halt is final
		rb.rebalance()
	}
	rb.passing.Store(false)
}

// rebalance folds the interval's tile counters into the EWMA forecast and
// greedily migrates the hottest tiles of the forecast-heaviest shard to the
// lightest shard, stopping at MaxMoves, at Threshold, or when no move
// strictly improves the forecast maximum. Tie-breaks are by lowest index
// throughout, so a given counter history rebalances deterministically.
func (rb *rebalancer) rebalance() {
	alpha := rb.opt.Alpha
	total := 0.0
	for _, o := range rb.owners {
		c := float64(rb.tileLoad[o].n.Swap(0))
		rb.rate[o] = alpha*c + (1-alpha)*rb.rate[o]
		total += rb.rate[o]
	}
	if total <= 0 {
		return
	}
	for i := range rb.load {
		rb.load[i] = 0
	}
	for _, o := range rb.owners {
		rb.load[rb.d.part.TileShard(o)] += rb.rate[o]
	}
	mean := total / float64(len(rb.load))
	for moves := 0; moves < rb.opt.MaxMoves; moves++ {
		h, l := 0, 0
		for i, v := range rb.load {
			if v > rb.load[h] {
				h = i
			}
			if v < rb.load[l] {
				l = i
			}
		}
		if h == l || rb.load[h] < rb.opt.Threshold*mean {
			return
		}
		// Hottest tile on the heavy shard whose move strictly improves the
		// forecast maximum (a tile larger than the gap would just move the
		// hotspot).
		best, bestRate := -1, 0.0
		for _, o := range rb.owners {
			if rb.d.part.TileShard(o) != h {
				continue
			}
			if r := rb.rate[o]; r > bestRate && rb.load[l]+r < rb.load[h] {
				best, bestRate = o, r
			}
		}
		if best < 0 {
			return
		}
		if err := rb.d.MigrateTile(best, l); err != nil {
			return // layout raced away (tests migrating concurrently); retry next interval
		}
		rb.load[h] -= bestRate
		rb.load[l] += bestRate
	}
}

// noteLocate records one routed arrival against its owner tile.
func (rb *rebalancer) noteLocate(ownerTile int) {
	if ownerTile >= 0 {
		rb.tileLoad[ownerTile].n.Add(1)
	}
}

// locate routes a location to its shard, feeding the rebalancer's per-tile
// arrival counter when rebalancing is on. The disabled path is exactly the
// partition lookup — rebalancing off costs one nil check.
func (d *Dispatcher) locate(loc geo.Point) int {
	if rb := d.rb; rb != nil {
		si, owner := d.part.LocateOwner(loc)
		rb.noteLocate(owner)
		return si
	}
	return d.part.Locate(loc)
}

// addArrived advances the arrival total and, when rebalancing is on, kicks
// the rebalancer on Interval crossings.
func (d *Dispatcher) addArrived(n int64) {
	after := d.arrived.Add(n)
	if rb := d.rb; rb != nil {
		rb.noteArrived(after-n, after)
	}
}

// Rebalancing reports whether the online rebalancer is active.
func (d *Dispatcher) Rebalancing() bool { return d.rb != nil }

// Migrations reports how many tile migrations have been performed so far
// (by the rebalancer or by explicit MigrateTile calls).
func (d *Dispatcher) Migrations() int { return int(d.migrations.Load()) }

// MigrateTile hands one task tile — its routing entry and its tasks' full
// solver state — from its current shard to shard `to`, without stopping
// ingestion. The rebalancer calls this automatically; it is exported so
// harnesses and tests can force deterministic migrations.
//
// Protocol (see CONCURRENCY.md, "Live tile migration"): the registry lock is
// taken first (pinning the global ID space and serializing migrations with
// PostTask), then both shard mutexes in index order. Holding the source's
// mutex quiesces its slice of the ingestion paths — per-call check-ins,
// batch runs and the shard's async drainer all serialize on it — so the
// engines' evict/adopt pairs run on frozen state. The Partition.Locate entry
// swaps (atomically, tile by tile) while both shards are still held, so by
// the time any check-in can observe the new routing, the target owns every
// migrated task. Workers already sitting in the source shard's async ring
// keep draining at the source — a benign misroute, identical to a check-in
// that raced the swap (assignment quality only; no worker or task is lost).
// Migrating a tile onto its current owner is a no-op.
func (d *Dispatcher) MigrateTile(tile, to int) error {
	// The registry lock is released before the TileMigrated publish below:
	// the bus lock is a leaf that must never be reachable under regMu or a
	// shard mutex (CONCURRENCY.md "Event subscriptions"; enforced by the
	// lockorder analyzer, which caught the previous defer-based version
	// holding regMu through the publish).
	ldLock("regMu", 0)
	d.regMu.Lock()
	from, migrated, err := d.migrateTileLocked(tile, to)
	ldUnlock("regMu", 0)
	d.regMu.Unlock()
	if err != nil || !migrated {
		return err
	}
	d.migrations.Add(1)
	d.publish(events.Event{
		Kind: events.TileMigrated, Task: -1,
		Tile: tile, FromShard: from, ToShard: to,
	})
	return nil
}

// migrateTileLocked runs the migration protocol with regMu held. It reports
// the source shard and whether a migration actually happened (from == to is
// a no-op that must neither count nor publish).
func (d *Dispatcher) migrateTileLocked(tile, to int) (from int, migrated bool, err error) {
	if !d.part.Rebalanceable() {
		return 0, false, model.ErrNotRebalanceable
	}
	if to < 0 || to >= len(d.shards) {
		return 0, false, fmt.Errorf("dispatch: migration target shard %d out of range [0,%d)", to, len(d.shards))
	}
	if tile < 0 || tile >= d.part.NumTiles() {
		return 0, false, fmt.Errorf("dispatch: migration tile %d out of range [0,%d)", tile, d.part.NumTiles())
	}
	from = d.part.TileShard(tile) // tile ownership checked by part.MigrateTile below
	if from == to {
		return from, false, nil
	}
	sf, st := d.shards[from], d.shards[to]
	if !sf.eng.CanMigrate() || !st.eng.CanMigrate() {
		return from, false, fmt.Errorf("%w: solver %s", core.ErrNoMigration, sf.eng.Name())
	}

	first, second := sf, st
	if to < from {
		first, second = st, sf
	}
	ldLock("shard", min(from, to))
	first.mu.Lock()
	ldLock("shard", max(from, to))
	second.mu.Lock() //ltc:ascending

	var migrateErr error
	for local := 0; local < len(sf.sub.Global); local++ {
		lid := model.TaskID(local)
		if sf.eng.TaskEvicted(lid) {
			continue
		}
		src := sf.sub.SourceTask(lid)
		if d.part.OwnerTile(src.Loc) != tile {
			continue
		}
		snap, err := sf.eng.EvictTask(lid)
		if err != nil {
			migrateErr = err
			break
		}
		newLocal := st.sub.AppendTask(src)
		if err := st.eng.AdoptTask(newLocal, snap); err != nil {
			// Unreachable unless an engine invariant is broken; roll the
			// append back so the target sub-instance stays in step.
			st.sub.TruncateLast()
			migrateErr = err
			break
		}
		d.records[src.ID] = taskRecord{shard: int32(to), local: newLocal.ID}
	}
	if migrateErr == nil {
		migrateErr = d.part.MigrateTile(tile, to)
	}
	if migrateErr == nil {
		sf.migratedOut++
		st.migratedIn++
	}
	ldUnlock("shard", max(from, to))
	second.mu.Unlock()
	ldUnlock("shard", min(from, to))
	first.mu.Unlock()
	if migrateErr != nil {
		return from, false, migrateErr
	}

	// The imbalance window restarts at every migration, so the metric
	// reflects current ownership instead of crowning the shard that
	// already handed its hot tiles away "busiest" forever. All shards
	// rebase (one at a time — windows stay comparable in length because
	// they all restart at this same migration).
	for si, s := range d.shards {
		ldLock("shard", si)
		s.mu.Lock()
		s.routedBase = s.routed
		ldUnlock("shard", si)
		s.mu.Unlock()
	}
	return from, true, nil
}
