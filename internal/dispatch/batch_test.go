package dispatch

import (
	"errors"
	"fmt"
	"testing"

	"ltc/internal/geo"
	"ltc/internal/model"
)

// feedSequential replays the stream through per-call CheckIn with the
// standard done-precheck loop, returning each fed worker's receipt.
func feedSequential(t *testing.T, d *Dispatcher, ws []model.Worker) []Receipt {
	t.Helper()
	var out []Receipt
	for _, w := range ws {
		if d.Done() {
			break
		}
		rec, err := d.CheckIn(w)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rec)
	}
	return out
}

// feedBatched replays the stream through CheckInBatch in chunks of size b,
// stopping at the truncation signal.
func feedBatched(t *testing.T, d *Dispatcher, ws []model.Worker, b int) []Receipt {
	t.Helper()
	var out []Receipt
	for i := 0; i < len(ws); i += b {
		j := i + b
		if j > len(ws) {
			j = len(ws)
		}
		res, err := d.CheckInBatch(ws[i:j])
		if err != nil && !errors.Is(err, ErrDone) {
			t.Fatal(err)
		}
		out = append(out, res...)
		if err != nil {
			break
		}
	}
	return out
}

// requireSameReceipts asserts two sequential replays produced identical
// receipts: same echoed worker, shard, done flag and per-assignment grants.
func requireSameReceipts(t *testing.T, label string, want, got []Receipt) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: fed %d workers, want %d", label, len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Worker != g.Worker || w.Shard != g.Shard || w.Done != g.Done {
			t.Fatalf("%s: receipt %d = %+v, want %+v", label, i, g, w)
		}
		if len(w.Assignments) != len(g.Assignments) {
			t.Fatalf("%s: worker %d got %v, want %v", label, i+1, g.Assignments, w.Assignments)
		}
		for k := range w.Assignments {
			if w.Assignments[k] != g.Assignments[k] {
				t.Fatalf("%s: worker %d grant %d = %+v, want %+v", label, i+1, k, g.Assignments[k], w.Assignments[k])
			}
		}
	}
}

// requireSameState asserts two dispatchers fed equivalent streams agree on
// every observable: latency, progress, arrivals, statuses, credits and the
// merged arrangement (bitwise).
func requireSameState(t *testing.T, want, got *Dispatcher) {
	t.Helper()
	if want.Latency() != got.Latency() {
		t.Fatalf("latency %d, want %d", got.Latency(), want.Latency())
	}
	if want.RelativeLatency() != got.RelativeLatency() {
		t.Fatalf("relative latency %d, want %d", got.RelativeLatency(), want.RelativeLatency())
	}
	if want.Arrived() != got.Arrived() {
		t.Fatalf("arrived %d, want %d", got.Arrived(), want.Arrived())
	}
	wr, wt := want.Progress()
	gr, gt := got.Progress()
	if wr != gr || wt != gt {
		t.Fatalf("progress %d/%d, want %d/%d", gr, gt, wr, wt)
	}
	ws, gs := want.TaskStatuses(), got.TaskStatuses()
	if len(ws) != len(gs) {
		t.Fatalf("%d statuses, want %d", len(gs), len(ws))
	}
	for i := range ws {
		if ws[i] != gs[i] {
			t.Fatalf("status %d: %+v, want %+v", i, gs[i], ws[i])
		}
	}
	wc, gc := want.Credits(nil), got.Credits(nil)
	for i := range wc {
		if wc[i] != gc[i] {
			t.Fatalf("credit %d drifted: %v, want %v", i, gc[i], wc[i])
		}
	}
	wa, ga := want.Arrangement(), got.Arrangement()
	if len(wa.Pairs) != len(ga.Pairs) {
		t.Fatalf("%d pairs, want %d", len(ga.Pairs), len(wa.Pairs))
	}
	for i := range wa.Pairs {
		if wa.Pairs[i] != ga.Pairs[i] {
			t.Fatalf("pair %d: %+v, want %+v", i, ga.Pairs[i], wa.Pairs[i])
		}
	}
}

// TestCheckInBatchMatchesSequential: for several shard counts and batch
// sizes, a sequentially fed CheckInBatch stream is bit-identical — per
// worker and in every aggregate — to the same stream through per-call
// CheckIn.
func TestCheckInBatchMatchesSequential(t *testing.T) {
	in := testInstance(t, 0.02)
	for _, shards := range []int{1, 4} {
		base, err := New(in, shards, aamFactory)
		if err != nil {
			t.Fatal(err)
		}
		wantOut := feedSequential(t, base, in.Workers)
		for _, b := range []int{1, 7, 64, len(in.Workers)} {
			d, err := New(in, shards, aamFactory)
			if err != nil {
				t.Fatal(err)
			}
			gotOut := feedBatched(t, d, in.Workers, b)
			requireSameReceipts(t, fmt.Sprintf("shards=%d b=%d", shards, b), wantOut, gotOut)
			requireSameState(t, base, d)
		}
	}
}

// TestCheckInBatchLifecycleEquivalence: interleaving PostTask/RetireTask at
// the same stream positions keeps the batched and per-call paths in
// lockstep — posted tasks get identical post indices and statuses.
func TestCheckInBatchLifecycleEquivalence(t *testing.T) {
	in := lifecycleInstance(12, 600, 80, 5)
	script := func(t *testing.T, feed func(d *Dispatcher, ws []model.Worker)) *Dispatcher {
		d, err := New(in, 3, lafFactory)
		if err != nil {
			t.Fatal(err)
		}
		feed(d, in.Workers[:200])
		gid, err := d.PostTask(model.Task{Loc: geo.Point{X: 40, Y: 40}})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.RetireTask(gid / 2); err != nil {
			t.Fatal(err)
		}
		feed(d, in.Workers[200:])
		return d
	}
	want := script(t, func(d *Dispatcher, ws []model.Worker) { feedSequential(t, d, ws) })
	got := script(t, func(d *Dispatcher, ws []model.Worker) { feedBatched(t, d, ws, 37) })
	requireSameState(t, want, got)
}

// TestCheckInBatchTruncatesAtDone: completion mid-batch truncates the
// result to the ingested prefix, leaves the rest unobserved (no arrival
// count, no clock tick), and a PostTask revival accepts the re-presented
// tail.
func TestCheckInBatchTruncatesAtDone(t *testing.T) {
	in := lifecycleInstance(6, 500, 50, 11)
	d, err := New(in, 1, aamFactory)
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.CheckInBatch(in.Workers)
	if !errors.Is(err, ErrDone) {
		t.Fatalf("full-stream batch err = %v, want ErrDone", err)
	}
	if len(out) == 0 || len(out) >= len(in.Workers) {
		t.Fatalf("ingested %d of %d workers — expected a strict prefix", len(out), len(in.Workers))
	}
	if got := d.Arrived(); got != len(out) {
		t.Fatalf("arrived %d, want %d (unconsumed workers must not count)", got, len(out))
	}
	clock := d.maxSeen.Load()
	if int(clock) != len(out) {
		t.Fatalf("arrival clock %d, want %d", clock, len(out))
	}

	// Already-done platform: nothing ingested, clock untouched.
	rest := in.Workers[len(out):]
	if out2, err := d.CheckInBatch(rest); !errors.Is(err, ErrDone) || len(out2) != 0 {
		t.Fatalf("done-platform batch = %d results, err %v", len(out2), err)
	}
	if d.maxSeen.Load() != clock {
		t.Fatal("done-platform batch ticked the arrival clock")
	}

	// Revive and re-present the tail: it must now be consumed.
	gid, err := d.PostTask(model.Task{Loc: rest[0].Loc})
	if err != nil {
		t.Fatal(err)
	}
	out3, err := d.CheckInBatch(rest)
	if err != nil && !errors.Is(err, ErrDone) {
		t.Fatal(err)
	}
	if len(out3) == 0 {
		t.Fatal("revived platform consumed nothing")
	}
	if !d.TaskStatuses()[gid].Completed {
		t.Fatalf("revival task %d incomplete after tail replay", gid)
	}
}

// TestCheckInBatchValidation: a bad index anywhere fails the whole batch
// upfront; an empty batch is a no-op.
func TestCheckInBatchValidation(t *testing.T) {
	in := testInstance(t, 0.01)
	d, err := New(in, 2, lafFactory)
	if err != nil {
		t.Fatal(err)
	}
	bad := []model.Worker{in.Workers[0], {Index: 0, Loc: in.Workers[1].Loc}}
	if _, err := d.CheckInBatch(bad); !errors.Is(err, ErrBadWorkerIndex) {
		t.Fatalf("err = %v, want ErrBadWorkerIndex", err)
	}
	if got := d.Arrived(); got != 0 {
		t.Fatalf("rejected batch counted %d arrivals", got)
	}
	out, err := d.CheckInBatch(nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch = %v, %v", out, err)
	}
}

// TestNewRejectsBadOptions: negative tuning values fail construction.
func TestNewRejectsBadOptions(t *testing.T) {
	in := testInstance(t, 0.01)
	if _, err := New(in, 2, lafFactory, Options{QueueCap: -1}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("QueueCap<0: err = %v", err)
	}
	if _, err := New(in, 2, lafFactory, Options{MaxDrain: -1}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("MaxDrain<0: err = %v", err)
	}
}
