package core

import (
	"errors"

	"ltc/internal/model"
)

// TaskLifecycle is implemented by online solvers that support a mutable
// task set: tasks posted mid-stream (their δ-threshold accumulation starts
// at zero from the post) and tasks retired before completion (they stop
// being assignable and no longer block Done).
//
// All of the paper's online solvers (LAF, AAM, Random) implement it; the
// offline solvers see the whole instance at once and do not.
type TaskLifecycle interface {
	// PostTask extends the solver's task set with a newly posted task. IDs
	// are dense: posting id n is only valid when the solver tracks n tasks.
	PostTask(t model.TaskID)
	// RetireTask removes the task from play and reports whether it was
	// still open (not yet at δ and not already retired).
	RetireTask(t model.TaskID) bool
}

// ErrNoLifecycle is returned when a dynamic-task operation reaches a solver
// that does not implement TaskLifecycle.
var ErrNoLifecycle = errors.New("core: solver does not support dynamic task lifecycle")

// TaskMigrator is implemented by online solvers whose per-task state can be
// reconstructed on another solver from (credit, closed) alone — the contract
// live tile migration rests on. AdoptTask is the migration counterpart of
// TaskLifecycle.PostTask: it extends the solver's dense task set, but seeds
// the new slot from the source solver's accumulated credit and closed flag
// instead of zero, so the adopting solver behaves exactly as if it had made
// the source's assignments itself.
//
// All of the paper's online solvers (LAF, AAM, Random) qualify: their whole
// per-task state is the shared taskState, so adopt is lossless.
type TaskMigrator interface {
	// AdoptTask extends the solver's task set with a migrated task. IDs are
	// dense: adopting id n is only valid when the solver tracks n tasks.
	AdoptTask(t model.TaskID, credit float64, closed bool)
}

// ErrNoMigration is returned when a migration reaches a solver that does not
// implement TaskMigrator.
var ErrNoMigration = errors.New("core: solver does not support task migration")

// PostTask implements TaskLifecycle.
func (l *LAF) PostTask(t model.TaskID) { l.state.open(t) }

// RetireTask implements TaskLifecycle.
func (l *LAF) RetireTask(t model.TaskID) bool { return l.state.close(t) }

// PostTask implements TaskLifecycle.
func (a *AAM) PostTask(t model.TaskID) { a.state.open(t) }

// RetireTask implements TaskLifecycle.
func (a *AAM) RetireTask(t model.TaskID) bool { return a.state.close(t) }

// PostTask implements TaskLifecycle.
func (r *Random) PostTask(t model.TaskID) { r.state.open(t) }

// RetireTask implements TaskLifecycle.
func (r *Random) RetireTask(t model.TaskID) bool { return r.state.close(t) }

// AdoptTask implements TaskMigrator.
func (l *LAF) AdoptTask(t model.TaskID, credit float64, closed bool) {
	l.state.adopt(t, credit, closed)
}

// AdoptTask implements TaskMigrator.
func (a *AAM) AdoptTask(t model.TaskID, credit float64, closed bool) {
	a.state.adopt(t, credit, closed)
}

// AdoptTask implements TaskMigrator.
func (r *Random) AdoptTask(t model.TaskID, credit float64, closed bool) {
	r.state.adopt(t, credit, closed)
}
