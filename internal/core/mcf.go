package core

import (
	"fmt"
	"math"

	"ltc/internal/flow"
	"ltc/internal/model"
	"ltc/internal/pqueue"
)

// MCFLTC is the paper's offline algorithm (Algorithm 1, §III). It walks the
// worker sequence in batches of m = |T|·⌈δ⌉/K workers (the first batch
// ⌊1.5m⌋), reduces each batch's arrangement to a min-cost max-flow problem
// solved with SSPA, then greedily tops up leftover worker capacity with the
// highest-Acc* uncompleted tasks. Approximation ratio 7.5 under the paper's
// assumptions (Theorem 3).
//
// The zero value runs the published configuration; the fields expose the
// ablation knobs described in DESIGN.md §5.
type MCFLTC struct {
	// BatchMultiplier scales the batch size m (default 1.0 when zero).
	BatchMultiplier float64
	// Engine selects the SSPA shortest-path engine (default Dijkstra).
	Engine flow.Engine
	// UnitAugment forces unit augmentations in SSPA (ablation).
	UnitAugment bool
}

// Name implements Offline.
func (m *MCFLTC) Name() string { return "MCF-LTC" }

// batchSizes returns the first and subsequent batch sizes (≥ 1 each).
func (m *MCFLTC) batchSizes(in *model.Instance) (first, later int) {
	mult := m.BatchMultiplier
	if mult <= 0 {
		mult = 1
	}
	delta := in.Delta()
	base := float64(len(in.Tasks)) * math.Ceil(delta) / float64(in.K) * mult
	first = int(1.5 * base)
	later = int(base)
	if first < 1 {
		first = 1
	}
	if later < 1 {
		later = 1
	}
	return first, later
}

// Solve implements Offline.
func (m *MCFLTC) Solve(in *model.Instance, ci *model.CandidateIndex) (*model.Arrangement, error) {
	state := newTaskState(len(in.Tasks), in.Delta())
	arr := model.NewArrangement(len(in.Tasks))
	first, later := m.batchSizes(in)

	pos := 0
	batchNo := 0
	var cands []model.Candidate
	topk := pqueue.NewTopK(in.K, func(a, b model.Candidate) bool {
		return a.AccStar < b.AccStar
	})
	for pos < len(in.Workers) && !state.allDone() {
		size := later
		if batchNo == 0 {
			size = first
		}
		batchNo++
		if pos+size > len(in.Workers) {
			size = len(in.Workers) - pos
		}
		batch := in.Workers[pos : pos+size]
		pos += size
		if err := m.solveBatch(in, ci, state, arr, batch, &cands, topk); err != nil {
			return nil, fmt.Errorf("batch %d: %w", batchNo, err)
		}
	}
	return arr, nil
}

// solveBatch runs lines 4-16 of Algorithm 1 for one batch of workers.
func (m *MCFLTC) solveBatch(
	in *model.Instance,
	ci *model.CandidateIndex,
	state *taskState,
	arr *model.Arrangement,
	batch []model.Worker,
	cands *[]model.Candidate,
	topk *pqueue.TopK[model.Candidate],
) error {
	// Active tasks: those still below δ. taskNode maps TaskID -> flow node.
	active := make([]model.TaskID, 0, len(in.Tasks))
	taskNode := make(map[model.TaskID]int, len(in.Tasks))
	for t := range in.Tasks {
		tid := model.TaskID(t)
		if !state.done(tid) {
			taskNode[tid] = 1 + len(batch) + len(active)
			active = append(active, tid)
		}
	}
	if len(active) == 0 {
		return nil
	}

	// Flow network (Fig. 2a): source 0, workers 1..B, tasks B+1..B+A, sink.
	numNodes := 1 + len(batch) + len(active) + 1
	sink := numNodes - 1
	g := flow.NewNetwork(numNodes)
	type pairEdge struct {
		edge    int
		worker  int // arrival index
		task    model.TaskID
		accStar float64
	}
	var pairs []pairEdge
	// Remaining capacity per batch worker (K minus flow assignments).
	used := make([]int, len(batch))
	// assigned[b] lists tasks assigned to batch worker b via the flow, to
	// exclude them during the greedy top-up (line 10).
	assigned := make([][]model.TaskID, len(batch))

	// Min-cost flows on these networks routinely tie (identical Acc*
	// values); an infinitesimal per-worker perturbation breaks ties toward
	// earlier arrivals, which directly serves the latency objective. The
	// magnitude (≤ 1e-7 across the whole batch) is far below any meaningful
	// Acc* difference, so non-tied decisions are unaffected.
	tieEps := 1e-7 / float64(len(batch))
	for b, w := range batch {
		g.AddEdge(0, 1+b, int32(in.K), 0)
		*cands = ci.Candidates(w, (*cands)[:0])
		for _, c := range *cands {
			node, ok := taskNode[c.Task]
			if !ok {
				continue // completed before this batch
			}
			e := g.AddEdge(1+b, node, 1, -c.AccStar+tieEps*float64(b))
			pairs = append(pairs, pairEdge{edge: e, worker: w.Index, task: c.Task, accStar: c.AccStar})
		}
	}
	for _, tid := range active {
		demand := int32(math.Ceil(state.need(tid)))
		if demand < 1 {
			demand = 1
		}
		g.AddEdge(taskNode[tid], sink, demand, 0)
	}

	if _, err := g.MinCostFlow(0, sink, flow.Options{Engine: m.Engine, UnitAugment: m.UnitAugment}); err != nil {
		return err
	}

	// Apply the flow arrangement M'.
	for _, p := range pairs {
		if g.Flow(p.edge) <= 0 {
			continue
		}
		b := batchPos(batch, p.worker)
		used[b]++
		assigned[b] = append(assigned[b], p.task)
		state.add(p.task, p.accStar)
		arr.Add(p.worker, p.task, p.accStar)
	}

	// Greedy top-up (lines 8-15): spend leftover capacity on the most
	// reliable uncompleted tasks the worker has not performed yet.
	for b, w := range batch {
		capLeft := in.K - used[b]
		if capLeft <= 0 || state.allDone() {
			continue
		}
		*cands = ci.Candidates(w, (*cands)[:0])
		topk.Reset()
		for _, c := range *cands {
			if state.done(c.Task) || containsTask(assigned[b], c.Task) {
				continue
			}
			topk.Offer(c)
			for topk.Len() > capLeft {
				topk.PopMin()
			}
		}
		for topk.Len() > 0 {
			c := topk.PopMin()
			state.add(c.Task, c.AccStar)
			arr.Add(w.Index, c.Task, c.AccStar)
		}
	}
	return nil
}

// batchPos converts an arrival index to a position within the batch slice.
func batchPos(batch []model.Worker, arrivalIndex int) int {
	return arrivalIndex - batch[0].Index
}

func containsTask(ts []model.TaskID, t model.TaskID) bool {
	for _, x := range ts {
		if x == t {
			return true
		}
	}
	return false
}
