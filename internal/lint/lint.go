package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"ltc/internal/lint/analysis"
	"ltc/internal/lint/load"
)

// Analyzers is the full ltclint suite in reporting order.
var Analyzers = []*analysis.Analyzer{
	LockOrder,
	NoAlloc,
	CowSnapshot,
	AtomicField,
	FieldAlign,
}

// analyzerNames is a plain list (not derived from Analyzers) so that waiver
// parsing, which runs during analysis, avoids an initialization cycle.
var analyzerNames = []string{"lockorder", "noalloc", "cowsnapshot", "atomicfield", "fieldalign"}

func knownAnalyzer(name string) bool {
	for _, n := range analyzerNames {
		if n == name {
			return true
		}
	}
	return false
}

// Finding is one unwaived diagnostic, positioned and attributed.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Run loads the packages matched by patterns (rooted at dir) and applies the
// whole suite, returning every unwaived finding. Packages are analyzed in
// dependency order so cross-package facts (e.g. which lock classes a callee
// may acquire) are available to importers.
func Run(dir string, patterns ...string) ([]Finding, error) {
	pkgs, err := load.Packages(dir, patterns...)
	if err != nil {
		return nil, err
	}
	facts := analysis.NewFactStore()
	var findings []Finding
	for _, pkg := range pkgs {
		fs, err := AnalyzePackage(Analyzers, pkg, facts, !pkg.DepOnly)
		if err != nil {
			return nil, err
		}
		// In-module dependencies outside the requested patterns are analyzed
		// only for their facts; their diagnostics belong to their own run.
		if pkg.DepOnly {
			continue
		}
		findings = append(findings, fs...)
	}
	sortFindings(findings)
	return findings, nil
}

// AnalyzePackage applies analyzers to one type-checked package, filters
// waived diagnostics, and (when strict) reports malformed directives and
// unused waivers as findings of their own. facts carries cross-package
// summaries between calls and may be shared across packages of one run.
func AnalyzePackage(analyzers []*analysis.Analyzer, pkg *load.Package, facts *analysis.FactStore, strict bool) ([]Finding, error) {
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Sizes:     pkg.Sizes,
			Facts:     facts,
			Report: func(d analysis.Diagnostic) {
				d.Category = a.Name
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: analyzing %s: %v", a.Name, pkg.PkgPath, err)
		}
	}

	anns := annotationsCached(pkg.Fset, pkg.Files, pkg.Info, pkg.Types)
	var findings []Finding
	for _, d := range diags {
		if d.Category != "ltclint" && anns.waive(pkg.Fset, d.Category, d.Pos) {
			continue
		}
		findings = append(findings, Finding{
			Pos:      pkg.Fset.Position(d.Pos),
			Analyzer: d.Category,
			Message:  d.Message,
		})
	}
	if strict {
		// Malformed directives are never waivable.
		for _, d := range anns.malformed {
			findings = append(findings, Finding{
				Pos:      pkg.Fset.Position(d.Pos),
				Analyzer: d.Category,
				Message:  d.Message,
			})
		}
		// A waiver that suppressed nothing is stale; make it visible so
		// waivers cannot rot silently.
		for _, ws := range anns.waivers {
			for _, w := range ws {
				if !w.used {
					findings = append(findings, Finding{
						Pos:      pkg.Fset.Position(w.Pos),
						Analyzer: "ltclint",
						Message:  fmt.Sprintf("unused //ltclint:ignore waiver for %s", w.Analyzer),
					})
				}
			}
		}
	}
	sortFindings(findings)
	return findings, nil
}

// annotationsCached mirrors annotationsFor for callers that hold a
// load.Package rather than a Pass.
func annotationsCached(fset *token.FileSet, files []*ast.File, info *types.Info, tpkg *types.Package) *Annotations {
	annsMu.Lock()
	defer annsMu.Unlock()
	if a, ok := annsCache[tpkg]; ok {
		return a
	}
	a := parseAnnotations(fset, files, info)
	annsCache[tpkg] = a
	return a
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}
