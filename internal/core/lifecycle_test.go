package core

import (
	"math/rand/v2"
	"testing"

	"ltc/internal/geo"
	"ltc/internal/model"
)

func lifecycleInstance(nTasks, nWorkers int, seed uint64) *model.Instance {
	rng := rand.New(rand.NewPCG(seed, seed^0x77))
	in := &model.Instance{
		Epsilon: 0.1,
		K:       3,
		Model:   model.SigmoidDistance{DMax: 30},
		MinAcc:  0.5,
	}
	for t := 0; t < nTasks; t++ {
		in.Tasks = append(in.Tasks, model.Task{
			ID:  model.TaskID(t),
			Loc: geo.Point{X: rng.Float64() * 60, Y: rng.Float64() * 60},
		})
	}
	for w := 1; w <= nWorkers; w++ {
		in.Workers = append(in.Workers, model.Worker{
			Index: w,
			Loc:   geo.Point{X: rng.Float64() * 60, Y: rng.Float64() * 60},
			Acc:   0.8 + rng.Float64()*0.2,
		})
	}
	return in
}

// TestEnginePostTaskMidStream: a task posted after some arrivals starts its
// δ accumulation at zero from that point, gets assigned by the solver, and
// its post index anchors the relative latency numbers.
func TestEnginePostTaskMidStream(t *testing.T) {
	for _, factory := range []struct {
		name string
		f    OnlineFactory
	}{
		{"LAF", func(in *model.Instance, ci *model.CandidateIndex) Online { return NewLAF(in, ci) }},
		{"AAM", func(in *model.Instance, ci *model.CandidateIndex) Online { return NewAAM(in, ci) }},
		{"Random", func(in *model.Instance, ci *model.CandidateIndex) Online { return NewRandom(in, ci, 5) }},
	} {
		t.Run(factory.name, func(t *testing.T) {
			in := lifecycleInstance(4, 600, 11)
			ci := model.NewCandidateIndex(in)
			eng := NewEngine(in, ci, factory.f)

			const postAt = 10
			for i := 0; i < postAt; i++ {
				eng.Arrive(in.Workers[i])
			}
			// Post a task in the middle of the worker cloud, mid-stream.
			nt := model.Task{ID: model.TaskID(len(in.Tasks)), Loc: geo.Point{X: 30, Y: 30}}
			in.Tasks = append(in.Tasks, nt)
			if err := eng.PostTask(nt, postAt); err != nil {
				t.Fatal(err)
			}
			if !ci.Live(nt.ID) {
				t.Fatal("engine did not insert the posted task into the index")
			}
			if eng.TaskPostIndex(nt.ID) != postAt {
				t.Fatalf("post index %d, want %d", eng.TaskPostIndex(nt.ID), postAt)
			}
			if eng.TaskCompleted(nt.ID) {
				t.Fatal("freshly posted task reported complete")
			}
			for i := postAt; i < len(in.Workers) && !eng.Done(); i++ {
				eng.Arrive(in.Workers[i])
			}
			if !eng.Done() {
				t.Fatal("stream exhausted before completion")
			}
			if !eng.TaskCompleted(nt.ID) {
				t.Fatal("posted task never completed")
			}
			last := eng.TaskLastUsed(nt.ID)
			if last <= postAt {
				t.Fatalf("posted task last used at %d, must be after post index %d", last, postAt)
			}
			// The relative latency of the late task is measured from its post.
			if rel := last - eng.TaskPostIndex(nt.ID); rel <= 0 || rel >= last {
				t.Fatalf("relative latency %d out of range (last %d, post %d)", rel, last, postAt)
			}
		})
	}
}

// TestEngineRetireUnblocksDone: retiring the only incomplete task completes
// the engine; retiring a completed task is a no-op with wasOpen = false.
func TestEngineRetireUnblocksDone(t *testing.T) {
	in := lifecycleInstance(3, 400, 13)
	ci := model.NewCandidateIndex(in)
	eng := NewEngine(in, ci, func(in *model.Instance, ci *model.CandidateIndex) Online {
		return NewLAF(in, ci)
	})
	for i := 0; i < len(in.Workers) && !eng.Done(); i++ {
		eng.Arrive(in.Workers[i])
	}
	if !eng.Done() {
		t.Skip("workload did not complete; pick a denser fixture")
	}
	// Retiring a completed task: no-op.
	wasOpen, err := eng.RetireTask(0)
	if err != nil {
		t.Fatal(err)
	}
	if wasOpen {
		t.Fatal("completed task reported open at retire")
	}
	if !eng.TaskRetired(0) || eng.Retired() != 1 {
		t.Fatalf("retire bookkeeping: retired(0)=%t count=%d", eng.TaskRetired(0), eng.Retired())
	}

	// A task posted into an empty corner (no eligible workers) blocks Done
	// until retired.
	far := model.Task{ID: model.TaskID(len(in.Tasks)), Loc: geo.Point{X: 5000, Y: 5000}}
	in.Tasks = append(in.Tasks, far)
	if err := eng.PostTask(far, 400); err != nil {
		t.Fatal(err)
	}
	if eng.Done() {
		t.Fatal("engine done with an open posted task")
	}
	wasOpen, err = eng.RetireTask(far.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Live(far.ID) {
		t.Fatal("retired task still live in the index")
	}
	if !wasOpen {
		t.Fatal("incomplete task not reported open at retire")
	}
	if !eng.Done() {
		t.Fatal("retire of the only open task must complete the engine")
	}
	// Double retire: still fine, still closed.
	if wasOpen, err = eng.RetireTask(far.ID); err != nil || wasOpen {
		t.Fatalf("double retire: wasOpen=%t err=%v", wasOpen, err)
	}
}

// TestEngineLifecycleErrors covers the dense-ID and bounds error paths.
func TestEngineLifecycleErrors(t *testing.T) {
	in := lifecycleInstance(3, 10, 17)
	ci := model.NewCandidateIndex(in)
	eng := NewEngine(in, ci, func(in *model.Instance, ci *model.CandidateIndex) Online {
		return NewLAF(in, ci)
	})
	// Post with a gap in the ID space.
	if err := eng.PostTask(model.Task{ID: 7, Loc: geo.Point{X: 1, Y: 1}}, 0); err == nil {
		t.Fatal("non-dense post accepted")
	}
	// Post without appending to the instance task table first.
	if err := eng.PostTask(model.Task{ID: 3, Loc: geo.Point{X: 1, Y: 1}}, 0); err == nil {
		t.Fatal("post without instance append accepted")
	}
	if _, err := eng.RetireTask(99); err == nil {
		t.Fatal("retire of unknown task accepted")
	}
	if _, err := eng.RetireTask(-1); err == nil {
		t.Fatal("retire of negative task accepted")
	}
	// Desync the index deliberately: the engine's insert must surface the
	// index's dense-ID error.
	extra := model.Task{ID: 3, Loc: geo.Point{X: 2, Y: 2}}
	if err := ci.Insert(extra); err != nil {
		t.Fatal(err)
	}
	in.Tasks = append(in.Tasks, extra)
	if err := eng.PostTask(extra, 0); err == nil {
		t.Fatal("post over a desynced index accepted")
	}
}

// TestTaskStateLifecycle exercises the open/close bookkeeping directly:
// remaining counts live incomplete tasks only, need/totalNeed ignore closed
// tasks, and the closed mask survives credit arriving after retirement.
func TestTaskStateLifecycle(t *testing.T) {
	ts := newTaskState(2, 2.0)
	if ts.remaining != 2 {
		t.Fatalf("remaining %d", ts.remaining)
	}
	ts.open(2)
	if ts.remaining != 3 || len(ts.s) != 3 {
		t.Fatalf("after open: remaining %d, len %d", ts.remaining, len(ts.s))
	}
	// Opening out of dense order must panic (programming error).
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("non-dense open did not panic")
			}
		}()
		ts.open(7)
	}()
	ts.add(0, 2.5) // completes task 0
	if ts.remaining != 2 || !ts.done(0) {
		t.Fatalf("after complete: remaining %d", ts.remaining)
	}
	if open := ts.close(0); open {
		t.Fatal("closing a completed task reported open")
	}
	if open := ts.close(1); !open {
		t.Fatal("closing an incomplete task reported not-open")
	}
	if ts.done(1) != true {
		t.Fatal("closed task must read done")
	}
	if n := ts.need(1); n != 0 {
		t.Fatalf("closed task need %v", n)
	}
	sum, max := ts.totalNeed()
	if sum != 2.0 || max != 2.0 { // only task 2 still needs credit
		t.Fatalf("totalNeed %v/%v", sum, max)
	}
	if open := ts.close(1); open {
		t.Fatal("double close reported open")
	}
	if ts.remaining != 1 {
		t.Fatalf("remaining %d, want 1", ts.remaining)
	}
	ts.close(2)
	if !ts.allDone() {
		t.Fatal("allDone after closing everything")
	}
}
