package dispatch

// grantBlockSize is how many TaskGrants a grantArena allocates per backing
// block. At the typical 1-3 grants per receipt one block serves hundreds of
// check-ins, so the steady-state grant cost is one amortized allocation per
// ~thousand calls instead of one per call.
const grantBlockSize = 1024

// grantArena carves caller-owned TaskGrant slices out of chunked backing
// blocks. Each carve is a full slice expression (len == cap), so a caller
// appending to its receipt's Assignments can never clobber a later carve.
// Blocks are never reused — once a block is fully carved the arena drops its
// reference and allocates a fresh one, so handed-out slices stay valid for
// as long as the caller keeps them and the garbage collector reclaims each
// block when the last receipt referencing it is dropped. Not safe for
// concurrent use: each shard owns one arena, guarded by the shard mutex.
type grantArena struct {
	free []TaskGrant
}

// carve returns a zeroed slice of n grants with cap n.
//
//ltc:noalloc
func (a *grantArena) carve(n int) []TaskGrant {
	if n > len(a.free) {
		size := grantBlockSize
		if n > size {
			size = n
		}
		a.free = make([]TaskGrant, size) //ltclint:ignore noalloc amortized block refill — one make per ~thousand carves is the arena working as designed
	}
	out := a.free[:n:n]
	a.free = a.free[n:]
	return out
}
