package dispatch

import (
	"reflect"
	"testing"

	"ltc/internal/geo"
	"ltc/internal/model"
	"ltc/internal/workload"
)

// hotspotInstance is a skewed workload for the balanced-layout tests.
func hotspotInstance(t testing.TB, scale float64) *model.Instance {
	t.Helper()
	cfg := workload.Default().Scale(scale)
	cfg.Seed = 21
	s, err := workload.NewScenario(workload.ScenarioHotspot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	in, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestBalancedMatchesStripedSemantics: the balanced layout changes which
// shard serves which tile, nothing else — a sequential feed completes with
// a valid arrangement, global latency semantics and progress accounting
// identical in kind to the striped run, and with one shard the two layouts
// produce the same assignments.
func TestBalancedMatchesStripedSemantics(t *testing.T) {
	in := hotspotInstance(t, 0.02)
	striped, err := New(in, 1, aamFactory)
	if err != nil {
		t.Fatal(err)
	}
	balanced, err := New(in, 1, aamFactory, Options{Balanced: true})
	if err != nil {
		t.Fatal(err)
	}
	if balanced.Balanced() {
		t.Fatal("one shard must keep the striped layout")
	}
	for _, w := range in.Workers {
		if striped.Done() {
			break
		}
		rs, errS := striped.CheckIn(w)
		rb, errB := balanced.CheckIn(w)
		if (errS == nil) != (errB == nil) {
			t.Fatalf("worker %d: error mismatch %v vs %v", w.Index, errS, errB)
		}
		if !reflect.DeepEqual(rs, rb) {
			t.Fatalf("worker %d: receipts diverge: %+v vs %+v", w.Index, rs, rb)
		}
	}
	if striped.Latency() != balanced.Latency() {
		t.Fatalf("latency %d vs %d", striped.Latency(), balanced.Latency())
	}
}

// TestBalancedSpreadsHotspotLoad: on a hotspot instance the balanced
// layout's busiest shard must carry a far smaller share of the routed
// check-ins than fixed striping's.
func TestBalancedSpreadsHotspotLoad(t *testing.T) {
	in := hotspotInstance(t, 0.05)
	run := func(opts ...Options) *Dispatcher {
		d, err := New(in, 8, aamFactory, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if d.Imbalance() != 1 {
			t.Fatalf("imbalance before any check-in = %v, want 1", d.Imbalance())
		}
		for _, w := range in.Workers {
			if _, err := d.CheckIn(w); err != nil {
				break // platform completed
			}
		}
		return d
	}
	striped := run()
	balanced := run(Options{Balanced: true})
	if striped.Balanced() || !balanced.Balanced() {
		t.Fatal("Balanced() flags wrong")
	}
	si, bi := striped.Imbalance(), balanced.Imbalance()
	t.Logf("hotspot imbalance: striped %.2f, balanced %.2f (shards %d/%d)",
		si, bi, striped.NumShards(), balanced.NumShards())
	if bi >= si {
		t.Fatalf("balanced imbalance %.2f not below striped %.2f", bi, si)
	}
	if bi > 2.5 {
		t.Fatalf("balanced imbalance %.2f, want ≤ 2.5", bi)
	}
	// The imbalance is max(Workers)·shards/sum(Workers) over ShardStats.
	stats := balanced.ShardStats()
	maxW, sumW := 0, 0
	for _, s := range stats {
		sumW += s.Workers
		if s.Workers > maxW {
			maxW = s.Workers
		}
		if s.QueueDepth != 0 {
			t.Fatalf("sync-only run reports queue depth %d", s.QueueDepth)
		}
	}
	if want := float64(maxW) * float64(len(stats)) / float64(sumW); bi != want {
		t.Fatalf("Imbalance() = %v, ShardStats says %v", bi, want)
	}
}

// TestBalancedLifecycleAndAsync: posts, retires and the async path work
// unchanged on a balanced layout, and posted tasks route to the same shard
// workers at that location route to.
func TestBalancedLifecycleAndAsync(t *testing.T) {
	in := hotspotInstance(t, 0.02)
	d, err := New(in, 6, aamFactory, Options{Balanced: true, QueueCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	id, err := d.PostTask(model.Task{Loc: in.Tasks[0].Loc})
	if err != nil {
		t.Fatal(err)
	}
	if int(id) != len(in.Tasks) {
		t.Fatalf("posted ID %d, want %d", id, len(in.Tasks))
	}
	for _, w := range in.Workers {
		if err := d.CheckInAsync(w); err != nil {
			t.Fatal(err)
		}
	}
	d.Flush()
	if got, want := d.Arrived(), len(in.Workers); got != want {
		t.Fatalf("arrived %d, want %d", got, want)
	}
	if err := d.RetireTask(id); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	resolved, total := d.Progress()
	if total != len(in.Tasks)+1 || resolved == 0 {
		t.Fatalf("progress %d/%d", resolved, total)
	}
}

func TestLoadSample(t *testing.T) {
	if loadSample(nil) != nil {
		t.Fatal("empty worker set must yield a nil sample")
	}
	small := []model.Worker{{Index: 1, Loc: geo.Point{X: 1}}, {Index: 2, Loc: geo.Point{X: 2}}}
	if got := loadSample(small); len(got) != 2 || got[1].X != 2 {
		t.Fatalf("small sample = %v", got)
	}
	big := make([]model.Worker, 3*maxLoadSample)
	for i := range big {
		big[i] = model.Worker{Index: i + 1, Loc: geo.Point{X: float64(i)}}
	}
	got := loadSample(big)
	if len(got) > maxLoadSample {
		t.Fatalf("sample of %d exceeds cap %d", len(got), maxLoadSample)
	}
	if got[0].X != 0 || got[1].X != 3 {
		t.Fatalf("stride sampling broken: %v %v", got[0], got[1])
	}
}
