package workload

import (
	"fmt"
	"testing"

	"ltc/internal/model"
)

// TestTableIVPresets is the table-driven pin of the paper's synthetic
// dataset settings (Table IV): every preset constructor must reproduce the
// published cardinalities and parameter values exactly.
func TestTableIVPresets(t *testing.T) {
	cases := []struct {
		name       string
		cfg        Config
		numTasks   int
		numWorkers int
		k          int
		epsilon    float64
		dmax       float64
		gridW      float64
		gridH      float64
		accKind    DistKind
		accMean    float64
		accSpread  float64
	}{
		{
			name: "default", cfg: Default(),
			numTasks: 3000, numWorkers: 40000, k: 6, epsilon: 0.1,
			dmax: 30, gridW: 1000, gridH: 1000,
			accKind: DistNormal, accMean: 0.86, accSpread: 0.05,
		},
		{
			name: "scalability-10k", cfg: Scalability(10000),
			numTasks: 10000, numWorkers: 400000, k: 6, epsilon: 0.1,
			dmax: 30, gridW: 1000, gridH: 1000,
			accKind: DistNormal, accMean: 0.86, accSpread: 0.05,
		},
		{
			name: "scalability-100k", cfg: Scalability(100000),
			numTasks: 100000, numWorkers: 400000, k: 6, epsilon: 0.1,
			dmax: 30, gridW: 1000, gridH: 1000,
			accKind: DistNormal, accMean: 0.86, accSpread: 0.05,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.cfg
			if c.NumTasks != tc.numTasks || c.NumWorkers != tc.numWorkers {
				t.Errorf("|T|=%d |W|=%d, want %d/%d", c.NumTasks, c.NumWorkers, tc.numTasks, tc.numWorkers)
			}
			if c.K != tc.k || c.Epsilon != tc.epsilon || c.DMax != tc.dmax {
				t.Errorf("K=%d ε=%v dmax=%v, want %d/%v/%v", c.K, c.Epsilon, c.DMax, tc.k, tc.epsilon, tc.dmax)
			}
			if c.GridWidth != tc.gridW || c.GridHeight != tc.gridH {
				t.Errorf("grid %vx%v, want %vx%v", c.GridWidth, c.GridHeight, tc.gridW, tc.gridH)
			}
			if c.Accuracy.Kind != tc.accKind || c.Accuracy.Mean != tc.accMean || c.Accuracy.Spread != tc.accSpread {
				t.Errorf("accuracy %+v, want {%v %v %v}", c.Accuracy, tc.accKind, tc.accMean, tc.accSpread)
			}
			if c.MinAcc != DefaultMinAcc {
				t.Errorf("MinAcc %v, want %v", c.MinAcc, DefaultMinAcc)
			}
			if err := c.Validate(); err != nil {
				t.Errorf("preset invalid: %v", err)
			}
		})
	}
}

// TestTableIVSweepRanges pins every sweep dimension of Table IV as a table:
// values, order, and the bold default's membership.
func TestTableIVSweepRanges(t *testing.T) {
	cases := []struct {
		name      string
		got       []float64
		want      []float64
		defaultIn float64
	}{
		{"tasks", toF(TaskSweep()), []float64{1000, 2000, 3000, 4000, 5000}, 3000},
		{"capacity", toF(CapacitySweep()), []float64{4, 5, 6, 7, 8}, 6},
		{"accuracy-mean", AccuracyMeanSweep(), []float64{0.82, 0.84, 0.86, 0.88, 0.90}, 0.86},
		{"epsilon", EpsilonSweep(), []float64{0.06, 0.10, 0.14, 0.18, 0.22}, 0.10},
		{"scalability-tasks", toF(ScalabilityTaskSweep()), []float64{10000, 20000, 30000, 40000, 50000, 100000}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if len(tc.got) != len(tc.want) {
				t.Fatalf("sweep %v, want %v", tc.got, tc.want)
			}
			seenDefault := tc.defaultIn == 0
			for i := range tc.want {
				if tc.got[i] != tc.want[i] {
					t.Fatalf("sweep[%d] = %v, want %v", i, tc.got[i], tc.want[i])
				}
				if tc.got[i] == tc.defaultIn {
					seenDefault = true
				}
			}
			if !seenDefault {
				t.Fatalf("bold default %v missing from sweep %v", tc.defaultIn, tc.got)
			}
		})
	}
}

func toF(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// TestAccuracyTruncationBounds samples both Table IV accuracy distributions
// across the full sweep of means and checks every draw lands inside the
// paper's truncation interval [SpamThreshold, 1] — the bound Validate and
// the spam-filter assumption (§II-A) rely on.
func TestAccuracyTruncationBounds(t *testing.T) {
	for _, kind := range []DistKind{DistNormal, DistUniform} {
		for _, mean := range AccuracyMeanSweep() {
			kind, mean := kind, mean
			t.Run(fmt.Sprintf("%v-%v", kind, mean), func(t *testing.T) {
				c := Default().Scale(0.005) // 15 tasks, 200 workers: fast
				c.Accuracy = AccuracyDist{Kind: kind, Mean: mean, Spread: 0.05}
				if kind == DistUniform {
					c.Accuracy.Spread = UniformSpread
				}
				c.Seed = uint64(1000*mean) + uint64(kind)
				in, err := c.Generate()
				if err != nil {
					t.Fatal(err)
				}
				var sum float64
				for _, w := range in.Workers {
					if w.Acc < model.SpamThreshold || w.Acc > 1 {
						t.Fatalf("worker %d accuracy %v outside [%v, 1]", w.Index, w.Acc, model.SpamThreshold)
					}
					sum += w.Acc
				}
				// The sample mean must track the configured mean (loosely:
				// truncation biases upward near the lower bound).
				got := sum / float64(len(in.Workers))
				if got < mean-0.05 || got > mean+0.05 {
					t.Fatalf("sample mean %v far from configured %v", got, mean)
				}
			})
		}
	}
}
