package geo

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	a, b := Point{0, 0}, Point{3, 4}
	if d := a.Dist(b); d != 5 {
		t.Fatalf("Dist = %v, want 5", d)
	}
	if d2 := a.Dist2(b); d2 != 25 {
		t.Fatalf("Dist2 = %v, want 25", d2)
	}
	if d := a.Dist(a); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
}

func TestPointArithmetic(t *testing.T) {
	a, b := Point{1, 2}, Point{3, 5}
	if got := a.Add(b); got != (Point{4, 7}) {
		t.Fatalf("Add = %v", got)
	}
	if got := b.Sub(a); got != (Point{2, 3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Point{2, 4}) {
		t.Fatalf("Scale = %v", got)
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(Point{2, 3}, Point{0, 1}) // corners given out of order
	if r.Min != (Point{0, 1}) || r.Max != (Point{2, 3}) {
		t.Fatalf("NewRect normalised wrong: %+v", r)
	}
	for _, tc := range []struct {
		p    Point
		want bool
	}{
		{Point{1, 2}, true}, {Point{0, 1}, true}, {Point{2, 3}, true},
		{Point{-0.1, 2}, false}, {Point{1, 3.1}, false},
	} {
		if got := r.Contains(tc.p); got != tc.want {
			t.Fatalf("Contains(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if r.Width() != 2 || r.Height() != 2 {
		t.Fatalf("extent = %v × %v", r.Width(), r.Height())
	}
}

func TestRectIntersects(t *testing.T) {
	a := NewRect(Point{0, 0}, Point{2, 2})
	b := NewRect(Point{1, 1}, Point{3, 3})
	c := NewRect(Point{2.5, 2.5}, Point{4, 4})
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Fatal("overlapping rects must intersect")
	}
	if a.Intersects(c) {
		t.Fatal("disjoint rects must not intersect")
	}
	// Touching edges count as intersecting.
	d := NewRect(Point{2, 0}, Point{3, 2})
	if !a.Intersects(d) {
		t.Fatal("edge-touching rects must intersect")
	}
}

func TestBoundingRect(t *testing.T) {
	if _, ok := BoundingRect(nil); ok {
		t.Fatal("empty input must report !ok")
	}
	r, ok := BoundingRect([]Point{{1, 5}, {-2, 3}, {4, -1}})
	if !ok || r.Min != (Point{-2, -1}) || r.Max != (Point{4, 5}) {
		t.Fatalf("BoundingRect = %+v, ok=%v", r, ok)
	}
}

func TestConvexHullSquare(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}, {0.2, 0.8}}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull size = %d, want 4 (%v)", len(hull), hull)
	}
	for _, corner := range []Point{{0, 0}, {1, 0}, {1, 1}, {0, 1}} {
		found := false
		for _, h := range hull {
			if h == corner {
				found = true
			}
		}
		if !found {
			t.Fatalf("corner %v missing from hull %v", corner, hull)
		}
	}
}

func TestConvexHullCCWOrder(t *testing.T) {
	hull := ConvexHull([]Point{{0, 0}, {4, 0}, {4, 3}, {0, 3}, {2, 1}})
	for i := range hull {
		a, b, c := hull[i], hull[(i+1)%len(hull)], hull[(i+2)%len(hull)]
		if cross(a, b, c) <= 0 {
			t.Fatalf("hull not strictly counter-clockwise at %d: %v", i, hull)
		}
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if h := ConvexHull(nil); h != nil {
		t.Fatalf("empty hull = %v", h)
	}
	if h := ConvexHull([]Point{{1, 1}}); len(h) != 1 {
		t.Fatalf("single point hull = %v", h)
	}
	if h := ConvexHull([]Point{{1, 1}, {1, 1}, {1, 1}}); len(h) != 1 {
		t.Fatalf("duplicate point hull = %v", h)
	}
	h := ConvexHull([]Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}})
	if len(h) != 2 || h[0] != (Point{0, 0}) || h[1] != (Point{3, 3}) {
		t.Fatalf("collinear hull = %v, want endpoints", h)
	}
}

func TestInConvexHull(t *testing.T) {
	hull := ConvexHull([]Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}})
	for _, tc := range []struct {
		p    Point
		want bool
	}{
		{Point{2, 2}, true}, {Point{0, 0}, true}, {Point{4, 2}, true},
		{Point{4.001, 2}, false}, {Point{-1, -1}, false},
	} {
		if got := InConvexHull(hull, tc.p); got != tc.want {
			t.Fatalf("InConvexHull(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	// Degenerate hulls.
	if InConvexHull(nil, Point{0, 0}) {
		t.Fatal("empty hull contains nothing")
	}
	if !InConvexHull([]Point{{1, 1}}, Point{1, 1}) {
		t.Fatal("point hull contains its point")
	}
	seg := []Point{{0, 0}, {2, 2}}
	if !InConvexHull(seg, Point{1, 1}) || InConvexHull(seg, Point{1, 0}) {
		t.Fatal("segment hull containment wrong")
	}
}

// Property: every input point is inside its own convex hull, and the hull of
// the hull is the hull itself.
func TestConvexHullProperty(t *testing.T) {
	prop := func(raw []struct{ X, Y int8 }) bool {
		if len(raw) == 0 {
			return true
		}
		pts := make([]Point, len(raw))
		for i, r := range raw {
			pts[i] = Point{float64(r.X), float64(r.Y)}
		}
		hull := ConvexHull(pts)
		for _, p := range pts {
			if !InConvexHull(hull, p) {
				return false
			}
		}
		again := ConvexHull(hull)
		return len(again) == len(hull)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPolygonArea(t *testing.T) {
	sq := []Point{{0, 0}, {2, 0}, {2, 2}, {0, 2}}
	if a := PolygonArea(sq); a != 4 {
		t.Fatalf("area = %v, want 4", a)
	}
	if a := PolygonArea(sq[:2]); a != 0 {
		t.Fatalf("degenerate area = %v, want 0", a)
	}
}

func TestProjectionRoundTrip(t *testing.T) {
	origin := LatLon{40.7128, -74.0060} // New York
	pr := NewProjection(origin, 10)
	for _, ll := range []LatLon{
		{40.7128, -74.0060}, {40.80, -73.95}, {40.60, -74.05},
	} {
		p := pr.ToGrid(ll)
		back := pr.ToLatLon(p)
		if math.Abs(back.Lat-ll.Lat) > 1e-9 || math.Abs(back.Lon-ll.Lon) > 1e-9 {
			t.Fatalf("round trip %v -> %v -> %v", ll, p, back)
		}
	}
}

func TestProjectionDistanceAccuracy(t *testing.T) {
	// At city scale, grid distance must match haversine within 1%.
	origin := LatLon{35.6762, 139.6503} // Tokyo
	pr := NewProjection(origin, 10)
	a := LatLon{35.70, 139.70}
	b := LatLon{35.65, 139.60}
	gridDist := pr.ToGrid(a).Dist(pr.ToGrid(b)) * pr.UnitMeters
	hav := Haversine(a, b)
	if rel := math.Abs(gridDist-hav) / hav; rel > 0.01 {
		t.Fatalf("projection error %.4f%% too large (grid %v m vs haversine %v m)",
			rel*100, gridDist, hav)
	}
}

func TestProjectionBadUnitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unitMeters <= 0 must panic")
		}
	}()
	NewProjection(LatLon{0, 0}, 0)
}

func TestHaversineKnown(t *testing.T) {
	// New York -> Tokyo is about 10,850 km.
	d := Haversine(LatLon{40.7128, -74.0060}, LatLon{35.6762, 139.6503})
	if d < 10.7e6 || d > 11.0e6 {
		t.Fatalf("NYC-Tokyo = %v m, want ~10.85e6", d)
	}
	if d := Haversine(LatLon{1, 2}, LatLon{1, 2}); d != 0 {
		t.Fatalf("zero distance = %v", d)
	}
}

func TestGridIndexWithinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := make([]Point, 500)
	for i := range pts {
		pts[i] = Point{rng.Float64() * 1000, rng.Float64() * 1000}
	}
	g := NewGridIndex(pts, 30)
	for trial := 0; trial < 50; trial++ {
		q := Point{rng.Float64() * 1000, rng.Float64() * 1000}
		radius := rng.Float64() * 80
		got := g.Within(q, radius, nil)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		var want []int32
		for i, p := range pts {
			if p.Dist(q) <= radius {
				want = append(want, int32(i))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: |got|=%d |want|=%d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v want %v", trial, got, want)
			}
		}
		if n := g.CountWithin(q, radius); n != len(want) {
			t.Fatalf("trial %d: CountWithin=%d want %d", trial, n, len(want))
		}
	}
}

func TestGridIndexEmpty(t *testing.T) {
	g := NewGridIndex(nil, 10)
	if g.Len() != 0 {
		t.Fatal("empty index Len != 0")
	}
	if got := g.Within(Point{0, 0}, 100, nil); len(got) != 0 {
		t.Fatalf("Within on empty = %v", got)
	}
	if _, _, ok := g.Nearest(Point{0, 0}); ok {
		t.Fatal("Nearest on empty must report !ok")
	}
}

func TestGridIndexNegativeRadius(t *testing.T) {
	g := NewGridIndex([]Point{{0, 0}}, 10)
	if got := g.Within(Point{0, 0}, -1, nil); len(got) != 0 {
		t.Fatalf("negative radius returned %v", got)
	}
}

func TestGridIndexSinglePoint(t *testing.T) {
	g := NewGridIndex([]Point{{5, 5}}, 10)
	got := g.Within(Point{5, 5}, 0, nil)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("Within zero radius = %v", got)
	}
	id, dist, ok := g.Nearest(Point{8, 9})
	if !ok || id != 0 || dist != 5 {
		t.Fatalf("Nearest = (%d, %v, %v)", id, dist, ok)
	}
}

func TestGridIndexNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := make([]Point, 300)
	for i := range pts {
		pts[i] = Point{rng.Float64() * 200, rng.Float64() * 200}
	}
	g := NewGridIndex(pts, 15)
	for trial := 0; trial < 100; trial++ {
		q := Point{rng.Float64()*240 - 20, rng.Float64()*240 - 20}
		id, dist, ok := g.Nearest(q)
		if !ok {
			t.Fatal("Nearest reported !ok on populated index")
		}
		bi, bd := -1, math.Inf(1)
		for i, p := range pts {
			if d := p.Dist(q); d < bd {
				bi, bd = i, d
			}
		}
		if math.Abs(dist-bd) > 1e-9 {
			t.Fatalf("trial %d: Nearest dist %v want %v (id %d vs %d)", trial, dist, bd, id, bi)
		}
	}
}

func TestGridIndexCellSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("cellSize <= 0 must panic")
		}
	}()
	NewGridIndex(nil, 0)
}

func TestGridIndexClusteredPoints(t *testing.T) {
	// All points in one tiny cluster: the whole index is a single cell.
	pts := make([]Point, 50)
	for i := range pts {
		pts[i] = Point{100 + float64(i)*0.01, 100}
	}
	g := NewGridIndex(pts, 30)
	got := g.Within(Point{100.25, 100}, 1, nil)
	if len(got) != 50 {
		t.Fatalf("cluster query returned %d ids, want 50", len(got))
	}
}

func BenchmarkGridIndexWithin(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	pts := make([]Point, 5000)
	for i := range pts {
		pts[i] = Point{rng.Float64() * 1000, rng.Float64() * 1000}
	}
	g := NewGridIndex(pts, 30)
	buf := make([]int32, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := Point{float64(i%1000) + 0.5, float64((i*7)%1000) + 0.5}
		buf = g.Within(q, 30, buf[:0])
	}
}
