package core

import (
	"math/bits"

	"ltc/internal/model"
)

// taskState is the shared bookkeeping of every LTC algorithm: the per-task
// accumulated Acc* credit S[t] (line "S stores accumulated value for each
// task" of Algorithms 1-3) plus a count of tasks still below δ so AllDone
// is O(1).
//
// The state supports the online task lifecycle: open extends S with a task
// posted mid-stream (its δ-threshold race starts at zero from that moment),
// close retires a task so it stops counting toward remaining and stops
// being assignable. With no opens/closes the behaviour is exactly the
// fixed-task-set original.
//
// Layout: the per-task flags live in bitset words rather than []bool, so the
// AAM switching-rule scan (totalNeed) skips 64 settled tasks per word test
// instead of loading a byte per task. zeroNeed encodes need(t) == 0 EXACTLY
// (closed, or S[t] ≥ δ with no epsilon): a clear bit therefore guarantees
// δ − S[t] > 0, which keeps the summation term set — and hence the float
// addition order and results — identical to the dense scan. Tasks inside
// the model.CompletionEps band count as completed but still carry their
// (tiny) residual need, exactly as before.
type taskState struct {
	delta     float64
	s         []float64
	closed    []uint64 // bitset: task retired via close
	zeroNeed  []uint64 // bitset: need(t) == 0 exactly (closed or S[t] ≥ δ)
	remaining int
}

func bitGet(b []uint64, t model.TaskID) bool { return b[t>>6]&(1<<(uint(t)&63)) != 0 }
func bitSet(b []uint64, t model.TaskID)      { b[t>>6] |= 1 << (uint(t) & 63) }
func bitClear(b []uint64, t model.TaskID)    { b[t>>6] &^= 1 << (uint(t) & 63) }

func newTaskState(numTasks int, delta float64) *taskState {
	words := (numTasks + 63) / 64
	ts := &taskState{
		delta:     delta,
		s:         make([]float64, numTasks),
		closed:    make([]uint64, words),
		zeroNeed:  make([]uint64, words),
		remaining: numTasks,
	}
	if delta <= 0 { // degenerate threshold: every task starts need-free
		for t := 0; t < numTasks; t++ {
			bitSet(ts.zeroNeed, model.TaskID(t))
		}
	}
	return ts
}

// open extends the state with a newly posted task. Task IDs are dense:
// opening id n is only valid when the state currently tracks n tasks.
func (ts *taskState) open(t model.TaskID) {
	if int(t) != len(ts.s) {
		panic("core: task IDs must extend the dense ID space")
	}
	ts.s = append(ts.s, 0)
	if int(t)>>6 == len(ts.closed) { // crossed into a fresh word
		ts.closed = append(ts.closed, 0)
		ts.zeroNeed = append(ts.zeroNeed, 0)
	}
	bitClear(ts.closed, t)
	if ts.delta <= 0 {
		bitSet(ts.zeroNeed, t)
	} else {
		bitClear(ts.zeroNeed, t)
	}
	ts.remaining++
}

// adopt extends the state with a task migrated in from another shard's
// solver, seeding its accumulated credit (and closed flag) instead of
// starting from zero. Like open, IDs are dense: adopting id n is only valid
// when the state currently tracks n tasks. The resulting per-task state is
// bit-identical to what open followed by the source's add/close history
// would have produced: zeroNeed is set exactly when the task is closed or
// its credit meets δ with no epsilon slack, and remaining counts the task
// only while it is open and below the δ band.
func (ts *taskState) adopt(t model.TaskID, credit float64, closed bool) {
	if int(t) != len(ts.s) {
		panic("core: task IDs must extend the dense ID space")
	}
	ts.s = append(ts.s, credit)
	if int(t)>>6 == len(ts.closed) { // crossed into a fresh word
		ts.closed = append(ts.closed, 0)
		ts.zeroNeed = append(ts.zeroNeed, 0)
	}
	if closed {
		bitSet(ts.closed, t)
	} else {
		bitClear(ts.closed, t)
	}
	if closed || credit >= ts.delta {
		bitSet(ts.zeroNeed, t)
	} else {
		bitClear(ts.zeroNeed, t)
	}
	if !closed && !model.Completed(credit, ts.delta) {
		ts.remaining++
	}
}

// close retires task t: it no longer counts toward remaining and done
// reports true for it. It reports whether the task was still open (below δ
// and not already closed) — the caller's signal that an incomplete task was
// expired rather than finished.
func (ts *taskState) close(t model.TaskID) bool {
	if bitGet(ts.closed, t) {
		return false
	}
	open := !model.Completed(ts.s[t], ts.delta)
	bitSet(ts.closed, t)
	bitSet(ts.zeroNeed, t)
	if open {
		ts.remaining--
	}
	return open
}

// done reports whether task t needs no further work: it reached the quality
// threshold or was retired.
func (ts *taskState) done(t model.TaskID) bool {
	return bitGet(ts.closed, t) || model.Completed(ts.s[t], ts.delta)
}

// add credits task t and reports whether this credit completed it.
func (ts *taskState) add(t model.TaskID, credit float64) bool {
	was := ts.done(t)
	ts.s[t] += credit
	if ts.s[t] >= ts.delta {
		bitSet(ts.zeroNeed, t)
	} else if !bitGet(ts.closed, t) {
		bitClear(ts.zeroNeed, t)
	}
	if !was && ts.done(t) {
		ts.remaining--
		return true
	}
	return false
}

// allDone reports whether every live task has reached δ.
func (ts *taskState) allDone() bool { return ts.remaining == 0 }

// need returns max(0, δ − S[t]): the credit task t still needs. Retired
// tasks need nothing.
func (ts *taskState) need(t model.TaskID) float64 {
	if bitGet(ts.closed, t) {
		return 0
	}
	n := ts.delta - ts.s[t]
	if n < 0 {
		return 0
	}
	return n
}

// totalNeed returns Σ_t max(0, δ − S[t]) and the largest single-task need —
// the "average × K" numerator and "maximum" of AAM's switching rule.
// Retired tasks contribute nothing. The scan walks the inverted zeroNeed
// words, so a fully settled stretch of 64 tasks costs one comparison; the
// tasks visited (and so the floating-point accumulation order) are exactly
// the positive-need tasks of the dense scan, in ascending ID order.
func (ts *taskState) totalNeed() (sum, maxNeed float64) {
	n := len(ts.s)
	for wi, w := range ts.zeroNeed {
		inv := ^w
		if hi := n - wi<<6; hi < 64 { // mask off bits beyond the dense space
			inv &= 1<<uint(hi) - 1
		}
		for inv != 0 {
			t := wi<<6 + bits.TrailingZeros64(inv)
			inv &= inv - 1
			if need := ts.delta - ts.s[t]; need > 0 {
				sum += need
				if need > maxNeed {
					maxNeed = need
				}
			}
		}
	}
	return sum, maxNeed
}
