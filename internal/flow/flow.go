// Package flow implements the minimum-cost-flow substrate of the MCF-LTC
// algorithm (paper §III). The paper reduces each batch's task-worker
// arrangement to a min-cost max-flow instance and solves it with the
// Successive Shortest Path Algorithm (SSPA), chosen because it handles
// "large-scale data and many-to-many matching with real-valued arc costs"
// (citing Yiu et al., SIGMOD 2008).
//
// Two SSPA engines are provided:
//
//   - Dijkstra with Johnson potentials (default): after one initial
//     Bellman–Ford pass to absorb the negative -Acc* arc costs into node
//     potentials, every augmentation runs Dijkstra on non-negative reduced
//     costs. This is the fast path used by MCF-LTC.
//   - SPFA (Bellman–Ford queue variant) per augmentation: slower but
//     independent, used to cross-validate the default engine in tests.
//
// Augmentations send the bottleneck capacity of the shortest path by
// default; unit augmentation is available for the ablation benchmarks.
package flow

import (
	"errors"
	"fmt"
	"math"

	"ltc/internal/pqueue"
)

// Network is a directed flow network with int32 capacities and float64
// costs. Nodes are dense ids 0..N-1. Every AddEdge also creates the reverse
// residual edge; the pair shares ids (e, e^1).
type Network struct {
	numNodes int
	adj      [][]int32 // node -> edge ids (forward and residual)
	to       []int32   // edge -> head node
	capa     []int32   // edge -> residual capacity
	cost     []float64 // edge -> cost (reverse edge has negated cost)
	initCap  []int32   // original capacity of forward edges (reverse: 0)
}

// NewNetwork returns an empty network with n nodes.
func NewNetwork(n int) *Network {
	if n <= 0 {
		panic("flow: network needs at least one node")
	}
	return &Network{
		numNodes: n,
		adj:      make([][]int32, n),
	}
}

// NumNodes reports the node count.
func (g *Network) NumNodes() int { return g.numNodes }

// NumEdges reports the number of forward edges added.
func (g *Network) NumEdges() int { return len(g.to) / 2 }

// AddEdge adds a directed edge from → to with the given capacity and cost,
// returning its edge id. Capacity must be non-negative.
func (g *Network) AddEdge(from, to int, capacity int32, cost float64) int {
	if from < 0 || from >= g.numNodes || to < 0 || to >= g.numNodes {
		panic(fmt.Sprintf("flow: edge endpoints (%d,%d) out of range [0,%d)", from, to, g.numNodes))
	}
	if capacity < 0 {
		panic("flow: negative capacity")
	}
	id := int32(len(g.to))
	g.to = append(g.to, int32(to), int32(from))
	g.capa = append(g.capa, capacity, 0)
	g.cost = append(g.cost, cost, -cost)
	g.initCap = append(g.initCap, capacity, 0)
	g.adj[from] = append(g.adj[from], id)
	g.adj[to] = append(g.adj[to], id+1)
	return int(id)
}

// Flow returns the amount of flow currently routed through forward edge e
// (as returned by AddEdge).
func (g *Network) Flow(e int) int32 {
	return g.initCap[e] - g.capa[e]
}

// Residual returns the remaining capacity of forward edge e.
func (g *Network) Residual(e int) int32 { return g.capa[e] }

// Reset restores all edges to their initial capacities, discarding any flow.
func (g *Network) Reset() {
	copy(g.capa, g.initCap)
}

// Engine selects the shortest-path engine used by SSPA.
type Engine int

const (
	// EngineDijkstra uses Johnson potentials + Dijkstra (default, fast).
	EngineDijkstra Engine = iota
	// EngineSPFA recomputes shortest paths with a queue-based Bellman-Ford
	// on every augmentation. Reference implementation for tests.
	EngineSPFA
)

// Options tunes MinCostFlow.
type Options struct {
	Engine Engine
	// UnitAugment forces one unit of flow per augmentation instead of the
	// path bottleneck. Exposed for the SSPA ablation benchmark.
	UnitAugment bool
	// MaxFlow caps the total flow sent; 0 means "as much as possible".
	MaxFlow int32
}

// Result reports the outcome of a min-cost-flow computation.
type Result struct {
	Flow          int32
	Cost          float64
	Augmentations int
}

// ErrNegativeCycle is returned when the residual network contains a
// negative-cost cycle reachable from the source (SSPA's invariants do not
// hold then). The LTC networks are bipartite DAGs and can never trigger it.
var ErrNegativeCycle = errors.New("flow: negative-cost cycle detected")

// MinCostMaxFlow routes the maximum feasible flow from s to t at minimum
// total cost using SSPA with the default options.
func (g *Network) MinCostMaxFlow(s, t int) (Result, error) {
	return g.MinCostFlow(s, t, Options{})
}

// MinCostFlow routes flow from s to t per opts. Successive shortest paths
// guarantee that, at every intermediate step, the routed flow has minimum
// cost among all flows of that value, so capping MaxFlow yields the
// cheapest flow of that size.
func (g *Network) MinCostFlow(s, t int, opts Options) (Result, error) {
	if s < 0 || s >= g.numNodes || t < 0 || t >= g.numNodes {
		panic("flow: source/sink out of range")
	}
	if s == t {
		return Result{}, nil
	}
	limit := opts.MaxFlow
	if limit <= 0 {
		limit = math.MaxInt32
	}
	switch opts.Engine {
	case EngineSPFA:
		return g.sspaSPFA(s, t, limit, opts.UnitAugment)
	default:
		return g.sspaDijkstra(s, t, limit, opts.UnitAugment)
	}
}

// sspaDijkstra is SSPA with Johnson potentials.
func (g *Network) sspaDijkstra(s, t int, limit int32, unit bool) (Result, error) {
	pot := make([]float64, g.numNodes)
	if g.hasNegativeCost() {
		var err error
		pot, err = g.bellmanFord(s)
		if err != nil {
			return Result{}, err
		}
	}
	dist := make([]float64, g.numNodes)
	prevEdge := make([]int32, g.numNodes)
	heap := pqueue.NewIndexedMinHeap(g.numNodes)

	var res Result
	for res.Flow < limit {
		// Dijkstra on reduced costs.
		for i := range dist {
			dist[i] = math.Inf(1)
			prevEdge[i] = -1
		}
		heap.Reset()
		dist[s] = 0
		heap.PushOrDecrease(s, 0)
		for heap.Len() > 0 {
			u, du := heap.PopMin()
			if du > dist[u] {
				continue
			}
			for _, e := range g.adj[u] {
				if g.capa[e] <= 0 {
					continue
				}
				v := g.to[e]
				rc := g.cost[e] + pot[u] - pot[v]
				if rc < 0 {
					// Numerical slack: potentials keep reduced costs ≥ 0 up
					// to floating-point error; clamp tiny negatives.
					if rc < -1e-7 {
						return res, fmt.Errorf("flow: reduced cost %g negative beyond tolerance", rc)
					}
					rc = 0
				}
				if nd := dist[u] + rc; nd < dist[int(v)] {
					dist[v] = nd
					prevEdge[v] = e
					heap.PushOrDecrease(int(v), nd)
				}
			}
		}
		if math.IsInf(dist[t], 1) {
			break // no augmenting path remains
		}
		// Update potentials for reachable nodes.
		for v := range pot {
			if !math.IsInf(dist[v], 1) {
				pot[v] += dist[v]
			}
		}
		res.Flow, res.Cost = g.augment(s, t, prevEdge, limit, unit, res.Flow, res.Cost)
		res.Augmentations++
	}
	return res, nil
}

// sspaSPFA is SSPA recomputing exact shortest paths each round with a
// queue-based Bellman-Ford. Handles negative residual costs natively.
func (g *Network) sspaSPFA(s, t int, limit int32, unit bool) (Result, error) {
	dist := make([]float64, g.numNodes)
	prevEdge := make([]int32, g.numNodes)
	inQueue := make([]bool, g.numNodes)
	relaxes := make([]int32, g.numNodes)

	var res Result
	for res.Flow < limit {
		for i := range dist {
			dist[i] = math.Inf(1)
			prevEdge[i] = -1
			inQueue[i] = false
			relaxes[i] = 0
		}
		dist[s] = 0
		queue := make([]int32, 0, g.numNodes)
		queue = append(queue, int32(s))
		inQueue[s] = true
		for len(queue) > 0 {
			u := int(queue[0])
			queue = queue[1:]
			inQueue[u] = false
			for _, e := range g.adj[u] {
				if g.capa[e] <= 0 {
					continue
				}
				v := int(g.to[e])
				if nd := dist[u] + g.cost[e]; nd < dist[v]-1e-15 {
					dist[v] = nd
					prevEdge[v] = e
					if !inQueue[v] {
						relaxes[v]++
						if int(relaxes[v]) > g.numNodes {
							return res, ErrNegativeCycle
						}
						queue = append(queue, int32(v))
						inQueue[v] = true
					}
				}
			}
		}
		if math.IsInf(dist[t], 1) {
			break
		}
		res.Flow, res.Cost = g.augment(s, t, prevEdge, limit, unit, res.Flow, res.Cost)
		res.Augmentations++
	}
	return res, nil
}

// augment pushes flow along the path encoded in prevEdge and returns the
// updated totals.
func (g *Network) augment(s, t int, prevEdge []int32, limit int32, unit bool, flow int32, cost float64) (int32, float64) {
	bottleneck := limit - flow
	for v := t; v != s; {
		e := prevEdge[v]
		if g.capa[e] < bottleneck {
			bottleneck = g.capa[e]
		}
		v = int(g.to[e^1])
	}
	if unit && bottleneck > 1 {
		bottleneck = 1
	}
	for v := t; v != s; {
		e := prevEdge[v]
		g.capa[e] -= bottleneck
		g.capa[e^1] += bottleneck
		cost += g.cost[e] * float64(bottleneck)
		v = int(g.to[e^1])
	}
	return flow + bottleneck, cost
}

func (g *Network) hasNegativeCost() bool {
	for e := 0; e < len(g.cost); e += 2 {
		if g.cost[e] < 0 && g.initCap[e] > 0 {
			return true
		}
	}
	return false
}

// bellmanFord computes exact shortest distances from s over edges with
// positive residual capacity, for use as initial potentials. Nodes
// unreachable from s keep potential 0 (they can never be on an augmenting
// path before becoming reachable, at which point Dijkstra assigns them a
// finite distance).
func (g *Network) bellmanFord(s int) ([]float64, error) {
	dist := make([]float64, g.numNodes)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[s] = 0
	for round := 0; round < g.numNodes; round++ {
		changed := false
		for u := 0; u < g.numNodes; u++ {
			if math.IsInf(dist[u], 1) {
				continue
			}
			for _, e := range g.adj[u] {
				if g.capa[e] <= 0 {
					continue
				}
				v := g.to[e]
				if nd := dist[u] + g.cost[e]; nd < dist[v]-1e-15 {
					dist[v] = nd
					changed = true
				}
			}
		}
		if !changed {
			for i := range dist {
				if math.IsInf(dist[i], 1) {
					dist[i] = 0
				}
			}
			return dist, nil
		}
	}
	return nil, ErrNegativeCycle
}

// CheckConservation verifies flow conservation at every node except s and t
// and that no edge exceeds its capacity. Used by tests and debug builds.
func (g *Network) CheckConservation(s, t int) error {
	balance := make([]int64, g.numNodes)
	for e := 0; e < len(g.to); e += 2 {
		f := g.Flow(e)
		if f < 0 || f > g.initCap[e] {
			return fmt.Errorf("flow: edge %d flow %d outside [0,%d]", e, f, g.initCap[e])
		}
		from := int(g.to[e^1])
		to := int(g.to[e])
		balance[from] -= int64(f)
		balance[to] += int64(f)
	}
	for v, b := range balance {
		if v == s || v == t {
			continue
		}
		if b != 0 {
			return fmt.Errorf("flow: node %d violates conservation by %d", v, b)
		}
	}
	return nil
}
