package ltc

import (
	"errors"
	"math/rand/v2"
	"testing"
)

// This file is the batched analogue of PR 2's CandidateIndex-vs-brute-force
// property net: for random instances and batch sizes, 1-shard batched and
// async ingestion must reproduce the Session replay exactly — the same
// per-worker assignments, the same arrangement bits, the same latency and
// task statuses.

// randomBatchWorkload draws a small Table IV-shaped workload with random
// cardinalities. Instances need not be completable — equivalence must hold
// for exhausted streams too.
func randomBatchWorkload(rng *rand.Rand) WorkloadConfig {
	cfg := DefaultWorkload()
	cfg.NumTasks = 5 + rng.IntN(60)
	cfg.NumWorkers = 100 + rng.IntN(900)
	cfg.K = 1 + rng.IntN(6)
	cfg.Epsilon = 0.05 + rng.Float64()*0.2
	cfg.GridWidth = 100 + rng.Float64()*200
	cfg.GridHeight = 100 + rng.Float64()*200
	cfg.Seed = rng.Uint64()
	return cfg
}

// checkBatchEquivalence replays one instance four ways — Session, per-call
// 1-shard Platform, CheckInBatch with the given batch size, and
// CheckInAsync+Flush — and requires bitwise agreement on every observable.
func checkBatchEquivalence(t *testing.T, in *Instance, algo Algorithm, seed uint64, batch int) {
	t.Helper()
	sess, err := NewSession(in, algo, SolveOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	newPlat := func() *Platform {
		p, err := NewPlatform(in, algo, PlatformOptions{Shards: 1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	platCall, platBatch, platAsync := newPlat(), newPlat(), newPlat()

	// Session + per-call platform, in lockstep. Receipts carry the full
	// per-assignment grant (task, credit, completed), so the equivalence
	// check covers the structured v2 surface, not just the task lists.
	var sessOut [][]TaskGrant
	for _, w := range in.Workers {
		if sess.Done() {
			break
		}
		st, err := sess.Arrive(w)
		if err != nil {
			t.Fatal(err)
		}
		sessOut = append(sessOut, append([]TaskGrant(nil), st.Assignments...))
		if _, err := platCall.CheckIn(w); err != nil {
			t.Fatal(err)
		}
	}

	// Batched replay: chunks of `batch`, stopping at the truncation signal.
	var batchOut []Receipt
	for i := 0; i < len(in.Workers); i += batch {
		j := i + batch
		if j > len(in.Workers) {
			j = len(in.Workers)
		}
		res, err := platBatch.CheckInBatch(in.Workers[i:j])
		if err != nil && !errors.Is(err, ErrPlatformDone) {
			t.Fatal(err)
		}
		batchOut = append(batchOut, res...)
		if err != nil {
			break
		}
	}
	if len(batchOut) != len(sessOut) {
		t.Fatalf("%s batch=%d: batched fed %d workers, session %d", algo, batch, len(batchOut), len(sessOut))
	}
	for i := range sessOut {
		rec := batchOut[i]
		if rec.Worker != in.Workers[i].Index {
			t.Fatalf("%s batch=%d: receipt %d echoes worker %d, want %d", algo, batch, i, rec.Worker, in.Workers[i].Index)
		}
		if len(rec.Assignments) != len(sessOut[i]) {
			t.Fatalf("%s batch=%d: worker %d assigned %v, session %v", algo, batch, i+1, rec.Assignments, sessOut[i])
		}
		for k := range sessOut[i] {
			if rec.Assignments[k] != sessOut[i][k] {
				t.Fatalf("%s batch=%d: worker %d assigned %v, session %v", algo, batch, i+1, rec.Assignments, sessOut[i])
			}
		}
	}
	if n := len(batchOut); n > 0 && !batchOut[n-1].Done && sess.Done() {
		t.Fatalf("%s batch=%d: final receipt not marked done", algo, batch)
	}

	// Async replay: sequential enqueue, Flush as the completion point.
	for _, w := range in.Workers {
		if platAsync.Done() {
			break
		}
		if err := platAsync.CheckInAsync(w); err != nil {
			t.Fatal(err)
		}
	}
	platAsync.Flush()
	if err := platAsync.Close(); err != nil {
		t.Fatal(err)
	}

	// Final-state agreement, Session as the reference.
	sa := sess.Arrangement()
	for name, plat := range map[string]*Platform{"per-call": platCall, "batched": platBatch, "async": platAsync} {
		if plat.Done() != sess.Done() {
			t.Fatalf("%s %s: done %v, session %v", algo, name, plat.Done(), sess.Done())
		}
		if plat.Latency() != sess.Latency() {
			t.Fatalf("%s %s: latency %d, session %d", algo, name, plat.Latency(), sess.Latency())
		}
		pa := plat.Arrangement()
		if len(pa.Pairs) != len(sa.Pairs) {
			t.Fatalf("%s %s: %d pairs, session %d", algo, name, len(pa.Pairs), len(sa.Pairs))
		}
		for i := range sa.Pairs {
			if pa.Pairs[i] != sa.Pairs[i] {
				t.Fatalf("%s %s: pair %d = %+v, session %+v", algo, name, i, pa.Pairs[i], sa.Pairs[i])
			}
		}
		sc, pc := sess.Credits(nil), plat.Credits(nil)
		for i := range sc {
			if sc[i] != pc[i] {
				t.Fatalf("%s %s: credit %d drifted", algo, name, i)
			}
		}
	}
	// TaskStatuses: batched and async against the per-call platform (the
	// per-call path is itself pinned to Session by the golden traces).
	want := platCall.TaskStatuses()
	for name, plat := range map[string]*Platform{"batched": platBatch, "async": platAsync} {
		got := plat.TaskStatuses()
		if len(got) != len(want) {
			t.Fatalf("%s %s: %d statuses, want %d", algo, name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s %s: status %d = %+v, want %+v", algo, name, i, got[i], want[i])
			}
		}
	}
}

// TestBatchEquivalenceFuzz sweeps random instances, algorithms and batch
// sizes through the equivalence checker.
func TestBatchEquivalenceFuzz(t *testing.T) {
	rng := rand.New(rand.NewPCG(2026, 7))
	algos := []Algorithm{LAF, AAM, RandomAssign}
	for trial := 0; trial < 12; trial++ {
		cfg := randomBatchWorkload(rng)
		in, err := cfg.Generate()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		algo := algos[trial%len(algos)]
		batch := 1 + rng.IntN(96)
		seed := rng.Uint64()
		t.Logf("trial %d: %s, %d tasks, %d workers, K=%d, batch=%d",
			trial, algo, len(in.Tasks), len(in.Workers), in.K, batch)
		checkBatchEquivalence(t, in, algo, seed, batch)
	}
}

// FuzzBatchIngestionEquivalence exposes the same property to go fuzz:
// arbitrary generator seeds and batch sizes must never break the
// Session-vs-batched-vs-async equivalence.
func FuzzBatchIngestionEquivalence(f *testing.F) {
	f.Add(uint64(1), uint64(42), uint8(7))
	f.Add(uint64(99), uint64(3), uint8(1))
	f.Add(uint64(1234), uint64(77), uint8(255))
	f.Fuzz(func(t *testing.T, genSeed, algoSeed uint64, rawBatch uint8) {
		rng := rand.New(rand.NewPCG(genSeed, genSeed^0x9e3779b9))
		cfg := randomBatchWorkload(rng)
		in, err := cfg.Generate()
		if err != nil {
			t.Skip() // degenerate generator draw
		}
		batch := int(rawBatch)%128 + 1
		algo := []Algorithm{LAF, AAM, RandomAssign}[int(genSeed%3)]
		checkBatchEquivalence(t, in, algo, algoSeed, batch)
	})
}
