package ltc

import (
	"errors"
	"fmt"

	"ltc/internal/core"
	"ltc/internal/dispatch"
)

// Session drives an online algorithm one worker at a time — the natural
// shape for a live platform where check-ins stream in. Unlike Solve, the
// caller controls the worker feed and can interleave its own bookkeeping
// (e.g. pushing the assigned questions to the user's device).
//
// Workers must be offered in arrival order with consecutive indices
// starting at 1; assignments are immediate and irrevocable, matching the
// online LTC temporal constraint. A Session is single-threaded — it is the
// 1-shard special case of Platform, which serves concurrent check-in
// streams across spatial shards.
type Session struct {
	eng       *core.Engine
	nextIndex int
	grantsBuf []TaskGrant
}

// Session errors.
var (
	ErrOutOfOrder  = errors.New("ltc: workers must arrive in index order 1, 2, ...")
	ErrSessionDone = errors.New("ltc: session already completed all tasks")
)

// validateStreaming wraps model.Instance.ValidateStreaming with the
// package's error prefix.
func validateStreaming(in *Instance) error {
	if err := in.ValidateStreaming(); err != nil {
		return fmt.Errorf("ltc: %w", err)
	}
	return nil
}

// NewSession starts a streaming session for an online algorithm. The
// instance's Workers slice may be empty — workers are supplied via Arrive —
// but Tasks, Epsilon, K, Model and MinAcc must be set.
func NewSession(in *Instance, algo Algorithm, opts ...Option) (*Session, error) {
	c := newConfig(opts)
	if err := validateStreaming(in); err != nil {
		return nil, err
	}
	factory, err := onlineFactory(algo, c.seed)
	if err != nil {
		return nil, err
	}
	return &Session{
		eng:       core.NewEngine(in, c.indexFor(in), factory),
		nextIndex: 1,
	}, nil
}

// Arrive offers the next worker and returns its check-in Receipt: the
// granted tasks with per-assignment credit and completion, plus the
// session-done flag — everything a caller needs without re-polling
// Progress. A Session is the 1-shard special case of Platform, so
// Receipt.Shard is always 0.
//
// It returns ErrOutOfOrder when the worker's index breaks the arrival
// sequence (the worker is not observed and may be re-presented with the
// right index) and ErrSessionDone — after consuming the index — once every
// task has completed, matching Platform.CheckIn's bounced-arrival
// accounting (see WorkersSeen).
//
// The Receipt's Assignments slice is a reusable session buffer, valid only
// until the next Arrive; copy it to retain it.
func (s *Session) Arrive(w Worker) (Receipt, error) {
	if w.Index != s.nextIndex {
		return Receipt{Shard: -1}, fmt.Errorf("%w: got %d, want %d", ErrOutOfOrder, w.Index, s.nextIndex)
	}
	s.nextIndex++
	if s.eng.Done() {
		return Receipt{Worker: w.Index, Done: true}, ErrSessionDone
	}
	outcomes := s.eng.Arrive(w)
	s.grantsBuf = s.grantsBuf[:0]
	for _, oc := range outcomes {
		s.grantsBuf = append(s.grantsBuf, TaskGrant{Task: oc.Task, Credit: oc.Credit, Completed: oc.Completed})
	}
	var grants []TaskGrant
	if len(s.grantsBuf) > 0 {
		grants = s.grantsBuf
	}
	return Receipt{Worker: w.Index, Assignments: grants, Done: s.eng.Done()}, nil
}

// Done reports whether every task has reached the quality threshold.
func (s *Session) Done() bool { return s.eng.Done() }

// Latency returns the arrival index of the last worker assigned so far —
// the LTC objective once Done is true.
func (s *Session) Latency() int { return s.eng.Arrangement().Latency() }

// WorkersSeen reports how many check-ins have been observed: every Arrive
// call presenting the expected arrival index counts, including calls
// bounced with ErrSessionDone while all tasks were complete. Calls
// rejected with ErrOutOfOrder are not observed. This is the same contract
// as Platform.WorkersSeen, pinned by TestWorkersSeenContract.
func (s *Session) WorkersSeen() int { return s.nextIndex - 1 }

// Arrangement returns the assignments made so far. The returned value is
// live; callers must not mutate it.
func (s *Session) Arrangement() *Arrangement { return s.eng.Arrangement() }

// Progress returns the number of completed tasks and the task total.
func (s *Session) Progress() (completed, total int) { return s.eng.Progress() }

// Credits appends a snapshot of the per-task accumulated Acc* credit to dst
// and returns the extended slice.
func (s *Session) Credits(dst []float64) []float64 { return s.eng.Credits(dst) }

// Receipt re-exports: the structured check-in result shared by
// Session.Arrive, Platform.CheckIn and Platform.CheckInBatch.
type (
	// Receipt is the structured result of one check-in: the worker's global
	// index, its spatial shard (0 on a Session; -1 when bounced before
	// routing), the granted tasks with per-assignment credit/completion,
	// and the platform-done flag.
	Receipt = dispatch.Receipt
	// TaskGrant is one granted assignment inside a Receipt.
	TaskGrant = dispatch.TaskGrant
)
