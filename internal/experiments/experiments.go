// Package experiments regenerates the paper's evaluation (§V): every panel
// of Fig. 3 (a-l) and Fig. 4 (a-l), plus the dataset tables IV and V. Each
// experiment is one sweep; the three figure rows (latency / runtime /
// memory) come from the same runs, exactly as in the paper.
//
// Experiments run at a configurable scale factor (task/worker counts scale
// linearly, grid extents by √scale, preserving spatial density) so the
// paper-shaped curves reproduce on a laptop. Absolute numbers differ from
// the paper's 40-core C++ testbed; the reproduced signal is the relative
// ordering and trend shape — see EXPERIMENTS.md.
package experiments

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"

	"ltc/internal/core"
	"ltc/internal/model"
	"ltc/internal/stats"
)

// Algorithm names in the paper's legend order.
const (
	AlgoBaseOff = "Base-off"
	AlgoMCF     = "MCF-LTC"
	AlgoRandom  = "Random"
	AlgoLAF     = "LAF"
	AlgoAAM     = "AAM"
)

// AllAlgorithms returns the evaluation's five algorithms in legend order.
func AllAlgorithms() []string {
	return []string{AlgoBaseOff, AlgoMCF, AlgoRandom, AlgoLAF, AlgoAAM}
}

// Metrics aggregates one algorithm's repeated runs at one sweep point.
type Metrics struct {
	Latency float64 // mean max arrival index (effectiveness, Fig. row 1)
	Seconds float64 // mean wall-clock seconds (efficiency, Fig. row 2)
	MemMB   float64 // mean allocation delta in MB (efficiency, Fig. row 3)
	// Completed reports whether every repetition completed all tasks.
	Completed bool
	Reps      int
}

// Table is one experiment's results: Cells[x][algorithm].
type Table struct {
	ID     string
	Title  string
	XLabel string
	// Panels names the figure panels this table regenerates, in metric
	// order (latency, runtime, memory).
	Panels     [3]string
	Xs         []string
	Algorithms []string
	Cells      map[string]map[string]Metrics
	Scale      float64
}

// Options configures an experiment run.
type Options struct {
	// Scale shrinks the paper's dataset sizes (default 0.05). 1.0 runs the
	// full published sizes.
	Scale float64
	// Reps repeats each sweep point with distinct seeds and averages
	// (default 3; the paper used 30).
	Reps int
	// Seed is the base seed (default 42).
	Seed uint64
	// Algorithms restricts the algorithm set (default: all five).
	Algorithms []string
	// Parallel is the sweep worker-pool size: how many (sweep point ×
	// repetition) jobs run concurrently. Non-positive uses one worker per
	// core. Results (latency values, tables, CSV) are deterministic and
	// identical at any parallelism; the efficiency metrics (Seconds, MemMB)
	// are measured under concurrency, so for paper-faithful runtime/memory
	// figures run with Parallel = 1.
	Parallel int
	// Progress, when non-nil, receives one line per completed sweep point.
	// It is never invoked concurrently, at any parallelism.
	Progress func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 0.05
	}
	if o.Reps <= 0 {
		o.Reps = 3
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if len(o.Algorithms) == 0 {
		o.Algorithms = AllAlgorithms()
	}
	if o.Progress != nil {
		// Serialize the callback so sweep jobs running on the worker pool
		// can report progress without burdening callers with locking.
		var mu sync.Mutex
		inner := o.Progress
		o.Progress = func(format string, args ...any) {
			mu.Lock()
			defer mu.Unlock()
			inner(format, args...)
		}
	}
	return o
}

func (o Options) progress(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(format, args...)
	}
}

// Experiment is a runnable entry of the registry.
type Experiment struct {
	ID     string
	Title  string
	XLabel string
	Panels [3]string
	run    func(o Options) (*Table, error)
}

// Run executes the experiment.
func (e *Experiment) Run(o Options) (*Table, error) { return e.run(o.withDefaults()) }

// ErrUnknownExperiment is returned by Lookup for unknown ids.
var ErrUnknownExperiment = errors.New("experiments: unknown experiment id")

// ErrUnknownAlgorithm is returned when Options.Algorithms contains an
// unrecognised name.
var ErrUnknownAlgorithm = errors.New("experiments: unknown algorithm")

// Registry returns all experiments in figure order.
func Registry() []*Experiment {
	return []*Experiment{
		figTasks(), figCapacity(), figAccNormal(), figAccUniform(),
		figEpsilon(), figScalability(), figNewYork(), figTokyo(),
	}
}

// Lookup finds an experiment by id.
func Lookup(id string) (*Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownExperiment, id)
}

// IDs returns the registered experiment ids in order.
func IDs() []string {
	var ids []string
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	return ids
}

// runPoint executes every requested algorithm on one generated instance and
// returns per-algorithm single-run metrics. stabilize forces a GC before
// each run so the allocation-delta metric is clean; parallel sweeps skip it
// (a global GC per run would serialize the pool, and the delta is
// cross-goroutine noise there anyway).
func runPoint(in *model.Instance, algos []string, seed uint64, stabilize bool) (map[string]Metrics, error) {
	ci := model.NewCandidateIndex(in)
	out := make(map[string]Metrics, len(algos))
	for _, name := range algos {
		if stabilize {
			runtime.GC() // stabilise the allocation-delta metric
		}
		var res *core.Result
		var err error
		switch name {
		case AlgoBaseOff:
			res, err = core.RunOffline(in, ci, core.BaseOff{})
		case AlgoMCF:
			res, err = core.RunOffline(in, ci, &core.MCFLTC{})
		case AlgoRandom:
			res, err = core.RunOnline(in, ci, func(in *model.Instance, ci *model.CandidateIndex) core.Online {
				return core.NewRandom(in, ci, seed)
			})
		case AlgoLAF:
			res, err = core.RunOnline(in, ci, func(in *model.Instance, ci *model.CandidateIndex) core.Online {
				return core.NewLAF(in, ci)
			})
		case AlgoAAM:
			res, err = core.RunOnline(in, ci, func(in *model.Instance, ci *model.CandidateIndex) core.Online {
				return core.NewAAM(in, ci)
			})
		default:
			return nil, fmt.Errorf("%w: %q", ErrUnknownAlgorithm, name)
		}
		if err != nil && !errors.Is(err, core.ErrIncomplete) {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out[name] = Metrics{
			Latency:   float64(res.Latency),
			Seconds:   res.Elapsed.Seconds(),
			MemMB:     float64(res.AllocBytes) / (1 << 20),
			Completed: res.Completed,
			Reps:      1,
		}
	}
	return out, nil
}

// accumulate folds a single-run metric set into the table cell averages.
func accumulate(dst map[string]Metrics, src map[string]Metrics) {
	for name, m := range src {
		prev, ok := dst[name]
		if !ok {
			dst[name] = m
			continue
		}
		n := float64(prev.Reps)
		prev.Latency = (prev.Latency*n + m.Latency) / (n + 1)
		prev.Seconds = (prev.Seconds*n + m.Seconds) / (n + 1)
		prev.MemMB = (prev.MemMB*n + m.MemMB) / (n + 1)
		prev.Completed = prev.Completed && m.Completed
		prev.Reps++
		dst[name] = prev
	}
}

// pointSeed derives a deterministic seed for (experiment, rep). The sweep
// point deliberately does NOT enter the seed: every x value of a sweep uses
// the same rep seeds (common random numbers), so the sweep trend is not
// confounded by workload redraws — the scarce-task tail that gates the
// MinMax latency is high-variance at laptop scales.
func pointSeed(base uint64, expID string, rep int) uint64 {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	for _, b := range []byte(expID) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return stats.SplitSeed(base^h, uint64(rep))
}

// metricNames in figure-row order.
var metricNames = [3]string{"Latency (max worker index)", "Runtime (seconds)", "Memory (MB)"}

// value extracts the metric by row index.
func (m Metrics) value(row int) float64 {
	switch row {
	case 0:
		return m.Latency
	case 1:
		return m.Seconds
	default:
		return m.MemMB
	}
}

// Format writes the table in the paper's layout: one section per figure
// panel (metric), one row per algorithm, one column per sweep value.
func (t *Table) Format(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s (scale %g)\n", t.ID, t.Title, t.Scale); err != nil {
		return err
	}
	for row := 0; row < 3; row++ {
		fmt.Fprintf(w, "\n[%s] %s\n", t.Panels[row], metricNames[row])
		fmt.Fprintf(w, "%-10s", t.XLabel)
		for _, x := range t.Xs {
			fmt.Fprintf(w, " %12s", x)
		}
		fmt.Fprintln(w)
		for _, algo := range t.Algorithms {
			fmt.Fprintf(w, "%-10s", algo)
			for _, x := range t.Xs {
				m, ok := t.Cells[x][algo]
				if !ok {
					fmt.Fprintf(w, " %12s", "-")
					continue
				}
				suffix := ""
				if !m.Completed {
					suffix = "*"
				}
				switch row {
				case 0:
					fmt.Fprintf(w, " %11.0f%s", m.value(row), pad(suffix))
				default:
					fmt.Fprintf(w, " %11.4f%s", m.value(row), pad(suffix))
				}
			}
			fmt.Fprintln(w)
		}
	}
	if t.anyIncomplete() {
		fmt.Fprintln(w, "\n(* some repetitions exhausted the worker stream before completion)")
	}
	return nil
}

func pad(s string) string {
	if s == "" {
		return " "
	}
	return s
}

func (t *Table) anyIncomplete() bool {
	for _, byAlgo := range t.Cells {
		for _, m := range byAlgo {
			if !m.Completed {
				return true
			}
		}
	}
	return false
}

// CSV writes the table as long-format CSV:
// experiment,panel,metric,algorithm,x,value,completed.
func (t *Table) CSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "experiment,panel,metric,algorithm,x,value,completed"); err != nil {
		return err
	}
	metricCols := [3]string{"latency", "seconds", "mem_mb"}
	for row := 0; row < 3; row++ {
		for _, x := range t.Xs {
			algos := make([]string, 0, len(t.Cells[x]))
			for a := range t.Cells[x] {
				algos = append(algos, a)
			}
			sort.Strings(algos)
			for _, a := range algos {
				m := t.Cells[x][a]
				fmt.Fprintf(w, "%s,%s,%s,%s,%s,%g,%t\n",
					t.ID, t.Panels[row], metricCols[row], a,
					strings.ReplaceAll(x, ",", ";"), m.value(row), m.Completed)
			}
		}
	}
	return nil
}
