package geo

import "math"

// GridIndex is a uniform-grid spatial index over a fixed set of points.
// It answers radius queries ("which tasks are within dmax of this worker?")
// in time proportional to the number of cells overlapping the query disc.
//
// The index is immutable after construction: the LTC problem fixes task
// locations up front, and worker check-ins are queried against it, so there
// is no need for dynamic updates.
type GridIndex struct {
	cellSize float64
	origin   Point
	cols     int
	rows     int
	// CSR-style layout: ids of points bucketed by cell, with cellStart
	// delimiting each cell's slice. This keeps the whole index in two
	// allocations regardless of point count.
	ids       []int32
	cellStart []int32
	pts       []Point
}

// NewGridIndex builds an index over pts with the given cell size. Cell size
// should be on the order of the typical query radius; the paper's
// eligibility radius (≈ dmax = 30 units) is a good choice. pts is retained
// by reference and must not be mutated afterwards.
func NewGridIndex(pts []Point, cellSize float64) *GridIndex {
	if cellSize <= 0 {
		panic("geo: cellSize must be positive")
	}
	g := &GridIndex{cellSize: cellSize, pts: pts}
	if len(pts) == 0 {
		g.cols, g.rows = 1, 1
		g.cellStart = make([]int32, 2)
		return g
	}
	r, _ := BoundingRect(pts)
	g.origin = r.Min
	g.cols = int(math.Floor(r.Width()/cellSize)) + 1
	g.rows = int(math.Floor(r.Height()/cellSize)) + 1

	// Counting sort of point ids into cells.
	counts := make([]int32, g.cols*g.rows+1)
	cellOf := make([]int32, len(pts))
	for i, p := range pts {
		c := g.cellIndex(p)
		cellOf[i] = int32(c)
		counts[c+1]++
	}
	for c := 1; c < len(counts); c++ {
		counts[c] += counts[c-1]
	}
	g.cellStart = counts
	g.ids = make([]int32, len(pts))
	cursor := make([]int32, g.cols*g.rows)
	copy(cursor, counts[:len(counts)-1])
	for i := range pts {
		c := cellOf[i]
		g.ids[cursor[c]] = int32(i)
		cursor[c]++
	}
	return g
}

// Len reports the number of indexed points.
func (g *GridIndex) Len() int { return len(g.pts) }

// CellSize returns the configured cell edge length.
func (g *GridIndex) CellSize() float64 { return g.cellSize }

func (g *GridIndex) cellCoords(p Point) (cx, cy int) {
	cx = int(math.Floor((p.X - g.origin.X) / g.cellSize))
	cy = int(math.Floor((p.Y - g.origin.Y) / g.cellSize))
	if cx < 0 {
		cx = 0
	} else if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.rows {
		cy = g.rows - 1
	}
	return cx, cy
}

func (g *GridIndex) cellIndex(p Point) int {
	cx, cy := g.cellCoords(p)
	return cy*g.cols + cx
}

// Within appends to dst the ids of all indexed points at Euclidean distance
// ≤ radius from q, and returns the extended slice. Order is unspecified but
// deterministic for a given index.
func (g *GridIndex) Within(q Point, radius float64, dst []int32) []int32 {
	if len(g.pts) == 0 || radius < 0 {
		return dst
	}
	r2 := radius * radius
	minCX := int(math.Floor((q.X - radius - g.origin.X) / g.cellSize))
	maxCX := int(math.Floor((q.X + radius - g.origin.X) / g.cellSize))
	minCY := int(math.Floor((q.Y - radius - g.origin.Y) / g.cellSize))
	maxCY := int(math.Floor((q.Y + radius - g.origin.Y) / g.cellSize))
	if minCX < 0 {
		minCX = 0
	}
	if minCY < 0 {
		minCY = 0
	}
	if maxCX >= g.cols {
		maxCX = g.cols - 1
	}
	if maxCY >= g.rows {
		maxCY = g.rows - 1
	}
	for cy := minCY; cy <= maxCY; cy++ {
		rowBase := cy * g.cols
		for cx := minCX; cx <= maxCX; cx++ {
			c := rowBase + cx
			for _, id := range g.ids[g.cellStart[c]:g.cellStart[c+1]] {
				if g.pts[id].Dist2(q) <= r2 {
					dst = append(dst, id)
				}
			}
		}
	}
	return dst
}

// CountWithin reports how many indexed points lie within radius of q.
func (g *GridIndex) CountWithin(q Point, radius float64) int {
	if len(g.pts) == 0 || radius < 0 {
		return 0
	}
	r2 := radius * radius
	minCX := int(math.Floor((q.X - radius - g.origin.X) / g.cellSize))
	maxCX := int(math.Floor((q.X + radius - g.origin.X) / g.cellSize))
	minCY := int(math.Floor((q.Y - radius - g.origin.Y) / g.cellSize))
	maxCY := int(math.Floor((q.Y + radius - g.origin.Y) / g.cellSize))
	if minCX < 0 {
		minCX = 0
	}
	if minCY < 0 {
		minCY = 0
	}
	if maxCX >= g.cols {
		maxCX = g.cols - 1
	}
	if maxCY >= g.rows {
		maxCY = g.rows - 1
	}
	n := 0
	for cy := minCY; cy <= maxCY; cy++ {
		rowBase := cy * g.cols
		for cx := minCX; cx <= maxCX; cx++ {
			c := rowBase + cx
			for _, id := range g.ids[g.cellStart[c]:g.cellStart[c+1]] {
				if g.pts[id].Dist2(q) <= r2 {
					n++
				}
			}
		}
	}
	return n
}

// Nearest returns the id of the indexed point closest to q and its
// distance. ok is false when the index is empty. Ties break toward the
// lower id.
func (g *GridIndex) Nearest(q Point) (id int, dist float64, ok bool) {
	if len(g.pts) == 0 {
		return 0, 0, false
	}
	// Expand rings of cells around q's cell until a hit is found, then one
	// extra ring to guarantee correctness (a closer point can sit in the
	// next ring when the first hit is near a cell corner).
	cx, cy := g.cellCoords(q)
	best := -1
	bestD2 := math.Inf(1)
	maxRing := g.cols
	if g.rows > maxRing {
		maxRing = g.rows
	}
	for ring := 0; ring <= maxRing; ring++ {
		if best >= 0 {
			// Stop once the ring's nearest possible distance exceeds best.
			minPossible := (float64(ring-1) * g.cellSize)
			if minPossible > 0 && minPossible*minPossible > bestD2 {
				break
			}
		}
		found := g.scanRing(q, cx, cy, ring, &best, &bestD2)
		if !found && best >= 0 && ring > 0 {
			// No cells at this ring inside the grid and we have a hit.
			break
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return best, math.Sqrt(bestD2), true
}

// scanRing scans the square ring at Chebyshev distance ring from (cx,cy),
// updating best/bestD2. It reports whether any in-bounds cell was visited.
func (g *GridIndex) scanRing(q Point, cx, cy, ring int, best *int, bestD2 *float64) bool {
	visited := false
	check := func(x, y int) {
		if x < 0 || x >= g.cols || y < 0 || y >= g.rows {
			return
		}
		visited = true
		c := y*g.cols + x
		for _, id := range g.ids[g.cellStart[c]:g.cellStart[c+1]] {
			d2 := g.pts[id].Dist2(q)
			if d2 < *bestD2 || (d2 == *bestD2 && int(id) < *best) {
				*bestD2 = d2
				*best = int(id)
			}
		}
	}
	if ring == 0 {
		check(cx, cy)
		return visited
	}
	for x := cx - ring; x <= cx+ring; x++ {
		check(x, cy-ring)
		check(x, cy+ring)
	}
	for y := cy - ring + 1; y <= cy+ring-1; y++ {
		check(cx-ring, y)
		check(cx+ring, y)
	}
	return visited
}
