// Package dispatch is the sharded concurrent check-in layer of the
// reproduction: it partitions an LTC instance's task space into spatial
// shards (internal/model.PartitionInstance over the internal/geo grid),
// runs one independent online solver per shard, and routes each arriving
// worker to the shard owning its location. Check-ins serialize per shard,
// so calls touching disjoint shards proceed fully in parallel — the
// real-time assignment pattern of hyperlocal spatial-crowdsourcing
// frameworks (Tran et al.), applied to the paper's LAF/AAM/Random solvers.
//
// Latency semantics: workers keep their global arrival indices (the online
// solvers assign from location and accuracy only, so no per-shard
// renumbering is needed), and all latencies — per shard and platform-wide —
// are reported in those global indices, directly comparable with the
// unsharded solver. Sharding trades assignment quality for throughput: a worker is
// only considered for tasks in its own shard, so tasks near shard borders
// lose eligible workers and the global latency is typically at or above
// the single-engine solver's (see CONCURRENCY.md).
package dispatch

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ltc/internal/core"
	"ltc/internal/model"
)

// Dispatcher errors.
var (
	// ErrDone is returned by CheckIn once every task of every shard has
	// reached its quality threshold.
	ErrDone = errors.New("dispatch: all tasks completed")
	// ErrBadWorkerIndex is returned for check-ins without a positive global
	// arrival index.
	ErrBadWorkerIndex = errors.New("dispatch: worker arrival index must be ≥ 1")
)

// shard pairs one spatial sub-instance with its solver engine and the
// mutex serializing its check-ins.
//
// Workers keep their global arrival indices: the online solvers never read
// Worker.Index (only locations and accuracies drive assignment), so the
// shard's engine can record arrangements — and therefore latency — directly
// in global terms, and index-sensitive accuracy models stay correct.
type shard struct {
	mu  sync.Mutex
	eng *core.Engine
	sub model.SubInstance
	// workers holds the workers offered to the shard's solver, in arrival
	// order, keyed by global index for the merged-arrangement rebuild.
	workers map[int]model.Worker
	// routed counts every check-in that landed on the shard, including
	// ones bounced because the shard had already completed its tasks.
	routed int
	// offered counts the workers actually presented to the solver.
	offered int
}

// Dispatcher routes concurrent worker check-ins to per-shard online solvers.
// Construct with New; all methods are safe for concurrent use.
type Dispatcher struct {
	part      *model.Partition
	shards    []*shard
	remaining atomic.Int64 // tasks not yet at δ, across all shards
	arrived   atomic.Int64 // total check-ins accepted
	maxUsed   atomic.Int64 // global latency: max global index with an assignment
}

// New partitions the instance into up to nShards spatial shards and binds a
// fresh solver (from factory) to each. The instance needs Tasks, Model, K
// and Epsilon; Workers may be empty — they arrive via CheckIn.
func New(in *model.Instance, nShards int, factory core.OnlineFactory) (*Dispatcher, error) {
	if err := in.ValidateStreaming(); err != nil {
		return nil, err
	}
	part, err := model.PartitionInstance(in, nShards)
	if err != nil {
		return nil, err
	}
	d := &Dispatcher{part: part, shards: make([]*shard, part.NumShards())}
	for i, sub := range part.Shards {
		ci := model.NewCandidateIndex(sub.In)
		d.shards[i] = &shard{
			eng:     core.NewEngine(sub.In, ci, factory),
			sub:     sub,
			workers: make(map[int]model.Worker),
		}
	}
	d.remaining.Store(int64(len(in.Tasks)))
	return d, nil
}

// NumShards reports the number of shards actually created (≤ the requested
// count: empty spatial tiles collapse).
func (d *Dispatcher) NumShards() int { return len(d.shards) }

// CheckIn routes worker w to the shard owning its location and offers it to
// that shard's solver. It returns the assigned tasks as global TaskIDs
// (possibly none — also when the worker's shard has already completed all
// its tasks), or ErrDone once the whole platform is complete. Safe for
// concurrent use; only check-ins landing on the same shard serialize.
//
// w.Index is the worker's global arrival index and must be ≥ 1; concurrent
// callers need not present indices in order — the solvers assign from
// location and accuracy only, and latency is tracked as a max over indices.
func (d *Dispatcher) CheckIn(w model.Worker) ([]model.TaskID, error) {
	if w.Index < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadWorkerIndex, w.Index)
	}
	if d.Done() {
		return nil, ErrDone
	}
	s := d.shards[d.part.Locate(w.Loc)]

	s.mu.Lock()
	s.routed++
	if s.eng.Done() {
		s.mu.Unlock()
		d.arrived.Add(1)
		return nil, nil
	}
	s.offered++
	before, _ := s.eng.Progress()
	assigned := s.eng.Arrive(w)
	out := make([]model.TaskID, len(assigned))
	for i, t := range assigned {
		out[i] = s.sub.Global[t]
	}
	if len(assigned) > 0 {
		s.workers[w.Index] = w
	}
	after, _ := s.eng.Progress()
	s.mu.Unlock()

	d.arrived.Add(1)
	if len(assigned) > 0 {
		for {
			cur := d.maxUsed.Load()
			if int64(w.Index) <= cur || d.maxUsed.CompareAndSwap(cur, int64(w.Index)) {
				break
			}
		}
	}
	if done := after - before; done > 0 {
		d.remaining.Add(int64(-done))
	}
	return out, nil
}

// Done reports whether every task of every shard has reached δ.
func (d *Dispatcher) Done() bool { return d.remaining.Load() == 0 }

// Latency returns the global LTC objective so far: the largest global
// arrival index among workers that received at least one assignment.
func (d *Dispatcher) Latency() int { return int(d.maxUsed.Load()) }

// Arrived reports how many check-ins have been accepted.
func (d *Dispatcher) Arrived() int { return int(d.arrived.Load()) }

// Progress returns the number of completed tasks and the task total.
func (d *Dispatcher) Progress() (completed, total int) {
	total = len(d.part.Source.Tasks)
	return total - int(d.remaining.Load()), total
}

// ShardStats is one shard's progress/credit snapshot.
type ShardStats struct {
	// Tasks is the shard's task count; Completed of them have reached δ.
	Tasks     int
	Completed int
	// Workers is the number of check-ins routed to the shard (including
	// ones arriving after the shard completed); Offered of them were
	// presented to the shard's solver.
	Workers int
	Offered int
	// Latency is the shard's latency in global arrival indices: the
	// largest Worker.Index among its assigned workers. The platform's
	// latency is the max over shards.
	Latency int
}

// ShardStats snapshots every shard. Shards are locked one at a time, so the
// view is per-shard consistent but not a global atomic cut.
func (d *Dispatcher) ShardStats() []ShardStats {
	out := make([]ShardStats, len(d.shards))
	for i, s := range d.shards {
		s.mu.Lock()
		completed, total := s.eng.Progress()
		out[i] = ShardStats{
			Tasks:     total,
			Completed: completed,
			Workers:   s.routed,
			Offered:   s.offered,
			Latency:   s.eng.Arrangement().Latency(),
		}
		s.mu.Unlock()
	}
	return out
}

// Credits appends a snapshot of the per-task accumulated Acc* credit, in
// global TaskID order, to dst and returns the extended slice.
func (d *Dispatcher) Credits(dst []float64) []float64 {
	base := len(dst)
	dst = append(dst, make([]float64, len(d.part.Source.Tasks))...)
	for _, s := range d.shards {
		s.mu.Lock()
		for local, acc := range s.eng.Arrangement().Accumulated {
			dst[base+int(s.sub.Global[local])] = acc
		}
		s.mu.Unlock()
	}
	return dst
}

// Arrangement merges the per-shard arrangements into one over the source
// instance: worker indices are already global, task IDs are mapped back via
// the partition. Assignment credit is re-derived from the source accuracy
// model, which yields the same float additions in the same order as the
// shard engines performed, so accumulated credit matches Credits exactly.
func (d *Dispatcher) Arrangement() *model.Arrangement {
	src := d.part.Source
	merged := model.NewArrangement(len(src.Tasks))
	for _, s := range d.shards {
		s.mu.Lock()
		for _, p := range s.eng.Arrangement().Pairs {
			w := s.workers[p.Worker]
			gt := s.sub.Global[p.Task]
			acc := src.Model.Predict(w, src.Tasks[gt])
			merged.Add(w.Index, gt, model.AccStar(acc))
		}
		s.mu.Unlock()
	}
	return merged
}
