package voting

import (
	"errors"
	"math"
	"testing"

	"ltc/internal/core"
	"ltc/internal/geo"
	"ltc/internal/model"
	"ltc/internal/stats"
)

// denseInstance builds a small instance where every worker is eligible for
// every task, with the given per-worker accuracy.
func denseInstance(nTasks, nWorkers int, acc, eps float64, k int) *model.Instance {
	in := &model.Instance{
		Epsilon: eps,
		K:       k,
		Model:   model.SigmoidDistance{DMax: 30},
		MinAcc:  0.66,
	}
	for t := 0; t < nTasks; t++ {
		in.Tasks = append(in.Tasks, model.Task{ID: model.TaskID(t), Loc: geo.Point{X: float64(t), Y: 0}})
	}
	for w := 1; w <= nWorkers; w++ {
		in.Workers = append(in.Workers, model.Worker{
			Index: w,
			Loc:   geo.Point{X: float64(w % nTasks), Y: 1},
			Acc:   acc,
		})
	}
	return in
}

func TestTruthDeterministic(t *testing.T) {
	in := denseInstance(5, 10, 0.9, 0.1, 2)
	a, b := NewSimulator(in, 42), NewSimulator(in, 42)
	for ti := range in.Tasks {
		if a.Truth(model.TaskID(ti)) != b.Truth(model.TaskID(ti)) {
			t.Fatal("same seed must give same truth")
		}
	}
}

func TestTruthLabelsAreBinary(t *testing.T) {
	in := denseInstance(64, 10, 0.9, 0.1, 2)
	sim := NewSimulator(in, 7)
	yes, no := 0, 0
	for ti := range in.Tasks {
		switch sim.Truth(model.TaskID(ti)) {
		case Yes:
			yes++
		case No:
			no++
		default:
			t.Fatalf("task %d has non-binary truth", ti)
		}
	}
	if yes == 0 || no == 0 {
		t.Fatalf("degenerate truth distribution: %d yes / %d no", yes, no)
	}
}

func TestCollectAnswerPerAssignment(t *testing.T) {
	in := denseInstance(2, 4, 0.9, 0.3, 1)
	arr := model.NewArrangement(2)
	arr.Add(1, 0, 0.5)
	arr.Add(2, 1, 0.5)
	arr.Add(3, 0, 0.5)
	sim := NewSimulator(in, 1)
	answers := sim.Collect(arr)
	if len(answers) != 3 {
		t.Fatalf("got %d answers, want 3", len(answers))
	}
	for _, a := range answers {
		if a.Value != Yes && a.Value != No {
			t.Fatalf("non-binary answer %+v", a)
		}
	}
}

func TestPerfectWorkersAlwaysRight(t *testing.T) {
	in := denseInstance(3, 6, 1.0, 0.1, 2)
	// Workers sit ~1 unit from tasks, dmax=30 → Acc ≈ 1.
	arr := model.NewArrangement(3)
	for w := 1; w <= 6; w++ {
		arr.Add(w, model.TaskID((w-1)%3), 1)
	}
	sim := NewSimulator(in, 3)
	answers := sim.Collect(arr)
	decided := Aggregate(in, answers)
	for ti, label := range decided {
		if label != sim.Truth(model.TaskID(ti)) {
			t.Fatalf("perfect workers decided task %d wrong", ti)
		}
	}
}

func TestAggregateUnassignedTaskIsZero(t *testing.T) {
	in := denseInstance(2, 2, 0.9, 0.3, 1)
	labels := Aggregate(in, nil)
	if labels[0] != 0 || labels[1] != 0 {
		t.Fatalf("labels = %v, want zeros", labels)
	}
	if _, err := Decide(in, 0, nil); !errors.Is(err, ErrNoAnswers) {
		t.Fatal("Decide on unanswered task must error")
	}
}

func TestDecideMatchesAggregate(t *testing.T) {
	in := denseInstance(3, 9, 0.88, 0.2, 2)
	arr := model.NewArrangement(3)
	for w := 1; w <= 9; w++ {
		arr.Add(w, model.TaskID((w-1)%3), 0.5)
	}
	sim := NewSimulator(in, 11)
	answers := sim.Collect(arr)
	agg := Aggregate(in, answers)
	for ti := range in.Tasks {
		got, err := Decide(in, model.TaskID(ti), answers)
		if err != nil {
			t.Fatal(err)
		}
		if got != agg[ti] {
			t.Fatalf("task %d: Decide %d vs Aggregate %d", ti, got, agg[ti])
		}
	}
}

// TestLowAccuracyWeightInverts: a worker whose predicted accuracy is below
// 1/2 gets a negative weight, so their (usually wrong) answer still pushes
// the vote toward the truth — the Hoeffding-weighting subtlety.
func TestLowAccuracyWeightInverts(t *testing.T) {
	in := &model.Instance{
		Epsilon: 0.3,
		K:       1,
		Model:   model.MatrixAccuracy{Vals: [][]float64{{0.1}}}, // Acc = 0.1 < 0.5
		MinAcc:  0,                                              // allow the pathological pair for this test
		Tasks:   []model.Task{{ID: 0}},
		Workers: []model.Worker{{Index: 1, Acc: 0.9}},
	}
	// The worker answers wrong 90% of the time; with weight 2·0.1−1 = −0.8
	// the aggregated label should equal the truth ~90% of the time.
	right := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		sim := NewSimulator(in, uint64(i))
		arr := model.NewArrangement(1)
		arr.Add(1, 0, model.AccStar(0.1))
		answers := sim.Collect(arr)
		if Aggregate(in, answers)[0] == sim.Truth(0) {
			right++
		}
	}
	rate := float64(right) / trials
	if rate < 0.85 {
		t.Fatalf("inverted weighting recovered truth only %.1f%% of the time", rate*100)
	}
}

// TestHoeffdingBoundHolds is the end-to-end quality property: run a real
// LTC algorithm, collect simulated answers, and verify the empirical error
// stays below the tolerable error rate ε. Hoeffding is loose, so the
// empirical rate is typically far below ε.
func TestHoeffdingBoundHolds(t *testing.T) {
	in := denseInstance(10, 400, 0.9, 0.1, 3)
	ci := model.NewCandidateIndex(in)
	res, err := core.RunOnline(in, ci, func(in *model.Instance, ci *model.CandidateIndex) core.Online {
		return core.NewAAM(in, ci)
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := EmpiricalError(in, res.Arrangement, 300, 99)
	if rep.TaskDecisions != 300*len(in.Tasks) {
		t.Fatalf("graded %d decisions, want %d", rep.TaskDecisions, 300*len(in.Tasks))
	}
	if rep.ErrorRate > in.Epsilon {
		t.Fatalf("empirical error %.4f exceeds ε=%.2f", rep.ErrorRate, in.Epsilon)
	}
}

// TestEmpiricalErrorScalesWithAnswers: more accumulated credit → lower
// empirical error. Compare 1-answer tasks against completed tasks.
func TestEmpiricalErrorScalesWithAnswers(t *testing.T) {
	in := denseInstance(8, 200, 0.82, 0.1, 2)
	single := model.NewArrangement(8)
	full := model.NewArrangement(8)
	// One answer per task vs eight answers per task.
	for ti := 0; ti < 8; ti++ {
		single.Add(ti+1, model.TaskID(ti), 0.4)
	}
	w := 1
	for round := 0; round < 8; round++ {
		for ti := 0; ti < 8; ti++ {
			full.Add(w, model.TaskID(ti), 0.4)
			w++
		}
	}
	errSingle := EmpiricalError(in, single, 400, 5).ErrorRate
	errFull := EmpiricalError(in, full, 400, 5).ErrorRate
	if errFull >= errSingle {
		t.Fatalf("more answers did not reduce error: single %.4f vs full %.4f", errSingle, errFull)
	}
}

// TestEmpiricalErrorEmptyArrangement: nothing assigned → nothing graded.
func TestEmpiricalErrorEmptyArrangement(t *testing.T) {
	in := denseInstance(3, 3, 0.9, 0.1, 1)
	rep := EmpiricalError(in, model.NewArrangement(3), 10, 1)
	if rep.TaskDecisions != 0 || rep.ErrorRate != 0 {
		t.Fatalf("report = %+v, want zero decisions", rep)
	}
}

// TestAnswerAccuracyMatchesModel: the sampled per-answer correctness tracks
// Acc(w,t) closely.
func TestAnswerAccuracyMatchesModel(t *testing.T) {
	in := denseInstance(1, 1, 0.8, 0.3, 1)
	w := in.Workers[0]
	task := in.Tasks[0]
	acc := in.Model.Predict(w, task)
	arr := model.NewArrangement(1)
	arr.Add(1, 0, model.AccStar(acc))
	right := 0
	const trials = 5000
	rng := stats.NewRand(17)
	for i := 0; i < trials; i++ {
		sim := NewSimulator(in, rng.Uint64())
		if sim.Collect(arr)[0].Value == sim.Truth(0) {
			right++
		}
	}
	got := float64(right) / trials
	if math.Abs(got-acc) > 0.03 {
		t.Fatalf("empirical answer accuracy %.3f, model says %.3f", got, acc)
	}
}
