package core

import "ltc/internal/model"

// Engine binds an Online solver to an instance (or to one shard's
// sub-instance) and keeps the bookkeeping every caller of Arrive was
// duplicating: the growing Arrangement, per-task credit, and an O(1)
// completed-task counter. It is the single-threaded building block of both
// the streaming Session API and the sharded dispatch layer — callers that
// share an Engine across goroutines must serialize access themselves.
type Engine struct {
	in        *model.Instance
	algo      Online
	arr       *model.Arrangement
	delta     float64
	completed int
}

// NewEngine builds an engine around a fresh solver from factory. The
// candidate index must have been built for the same instance. The
// instance's Workers slice may be empty: workers arrive via Arrive.
func NewEngine(in *model.Instance, ci *model.CandidateIndex, factory OnlineFactory) *Engine {
	return &Engine{
		in:    in,
		algo:  factory(in, ci),
		arr:   model.NewArrangement(len(in.Tasks)),
		delta: in.Delta(),
	}
}

// Arrive offers the next worker to the solver, records its assignments (with
// their Acc* credit) in the arrangement, and returns the assigned task IDs.
// The returned slice is owned by the solver and only valid until the next
// call. Index discipline is the caller's job: Session enforces consecutive
// indices starting at 1, while the dispatch layer feeds each shard a sparse
// subsequence of global indices (the solvers never read Worker.Index, and
// the arrangement only takes a max over it).
func (e *Engine) Arrive(w model.Worker) []model.TaskID {
	out := e.algo.Arrive(w)
	for _, t := range out {
		acc := e.in.Model.Predict(w, e.in.Tasks[t])
		was := model.Completed(e.arr.Accumulated[t], e.delta)
		e.arr.Add(w.Index, t, model.AccStar(acc))
		if !was && model.Completed(e.arr.Accumulated[t], e.delta) {
			e.completed++
		}
	}
	return out
}

// Done reports whether every task has reached the quality threshold.
func (e *Engine) Done() bool { return e.algo.Done() }

// Name returns the bound solver's algorithm name.
func (e *Engine) Name() string { return e.algo.Name() }

// Instance returns the instance the engine is bound to.
func (e *Engine) Instance() *model.Instance { return e.in }

// Arrangement returns the assignments made so far. The returned value is
// live; callers must not mutate it.
func (e *Engine) Arrangement() *model.Arrangement { return e.arr }

// Progress returns the number of completed tasks and the task total in
// O(1) — the snapshot the platform surfaces per shard.
func (e *Engine) Progress() (completed, total int) {
	return e.completed, len(e.in.Tasks)
}

// Credits appends a snapshot of the per-task accumulated Acc* credit to dst
// and returns the extended slice.
func (e *Engine) Credits(dst []float64) []float64 {
	return append(dst, e.arr.Accumulated...)
}
