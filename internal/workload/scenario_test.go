package workload

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"ltc/internal/geo"
	"ltc/internal/model"
)

func scenarioBase() Config {
	c := Default().Scale(0.05)
	c.Seed = 11
	return c
}

func TestNewScenarioKnownKinds(t *testing.T) {
	for _, kind := range ScenarioKinds() {
		s, err := NewScenario(kind, scenarioBase())
		if err != nil {
			t.Fatalf("NewScenario(%q): %v", kind, err)
		}
		if s.Kind != kind {
			t.Fatalf("kind %q stored as %q", kind, s.Kind)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%q default knobs invalid: %v", kind, err)
		}
	}
	if _, err := NewScenario("blizzard", scenarioBase()); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestScenarioValidateRejectsBadKnobs(t *testing.T) {
	base := scenarioBase()
	cases := []Scenario{
		{Base: base, Kind: "nope"},
		{Base: base, Kind: ScenarioHotspot, HotspotTiles: -1},
		{Base: base, Kind: ScenarioHotspot, Skew: -0.5},
		{Base: base, Kind: ScenarioFlashCrowd, BurstStart: 0.8, BurstEnd: 0.2},
		{Base: base, Kind: ScenarioFlashCrowd, BurstFraction: 1.5},
		{Base: base, Kind: ScenarioFlashCrowd, BurstSigma: -1},
		{Base: base, Kind: ScenarioRushHour, CommuterFraction: -0.2},
		{Base: base, Kind: ScenarioRushHour, DriftSigma: -1},
		{Base: base, Kind: ScenarioSparseFrontier, FrontierFraction: 1.2},
		{Base: base, Kind: ScenarioSparseFrontier, FrontierWorkers: -0.1},
		{Base: base, Kind: ScenarioSparseFrontier, FrontierWidth: 2},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d (%s): bad knobs validated", i, s.Kind)
		}
		if _, err := s.Generate(); err == nil {
			t.Errorf("case %d (%s): bad knobs generated", i, s.Kind)
		}
	}
	bad := Scenario{Base: base, Kind: ScenarioHotspot}
	bad.Base.NumTasks = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid base config validated")
	}
}

func TestScenarioUniformMatchesBaseGenerator(t *testing.T) {
	s, err := NewScenario(ScenarioUniform, scenarioBase())
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	want, err := scenarioBase().Generate()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Tasks, want.Tasks) || !reflect.DeepEqual(got.Workers, want.Workers) {
		t.Fatal("uniform scenario differs from Config.Generate")
	}
}

func TestScenarioDeterministicAndWellFormed(t *testing.T) {
	for _, kind := range ScenarioKinds() {
		s, err := NewScenario(kind, scenarioBase())
		if err != nil {
			t.Fatal(err)
		}
		a, err := s.Generate()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		b, err := s.Generate()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: generation not deterministic", kind)
		}
		base := s.Base
		if len(a.Tasks) != base.NumTasks || len(a.Workers) != base.NumWorkers {
			t.Fatalf("%s: counts %d/%d, want %d/%d", kind, len(a.Tasks), len(a.Workers), base.NumTasks, base.NumWorkers)
		}
		for i, w := range a.Workers {
			if w.Index != i+1 {
				t.Fatalf("%s: worker %d has index %d", kind, i, w.Index)
			}
			if w.Acc < 0.66 || w.Acc > 1 {
				t.Fatalf("%s: worker accuracy %v out of range", kind, w.Acc)
			}
			if w.Loc.X < 0 || w.Loc.X > base.GridWidth || w.Loc.Y < 0 || w.Loc.Y > base.GridHeight {
				t.Fatalf("%s: worker %d at %v outside the grid", kind, i, w.Loc)
			}
		}
		for i, task := range a.Tasks {
			if int(task.ID) != i {
				t.Fatalf("%s: task %d has ID %d", kind, i, task.ID)
			}
			if task.Loc.X < 0 || task.Loc.X > base.GridWidth || task.Loc.Y < 0 || task.Loc.Y > base.GridHeight {
				t.Fatalf("%s: task %d at %v outside the grid", kind, i, task.Loc)
			}
		}
	}
}

// The accuracy population must not depend on the placement scenario: only
// locations differ between scenarios over one base.
func TestScenarioAccuracyStreamMatchesBase(t *testing.T) {
	base, err := scenarioBase().Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range ScenarioKinds()[1:] {
		s, err := NewScenario(kind, scenarioBase())
		if err != nil {
			t.Fatal(err)
		}
		in, err := s.Generate()
		if err != nil {
			t.Fatal(err)
		}
		for i := range in.Workers {
			if in.Workers[i].Acc != base.Workers[i].Acc {
				t.Fatalf("%s: worker %d accuracy %v != base %v", kind, i, in.Workers[i].Acc, base.Workers[i].Acc)
			}
		}
	}
}

// tileCounts buckets points into a side×side grid over the base extents.
func tileCounts(base Config, pts []geo.Point, side int) []int {
	counts := make([]int, side*side)
	for _, p := range pts {
		tx := min(side-1, int(p.X/base.GridWidth*float64(side)))
		ty := min(side-1, int(p.Y/base.GridHeight*float64(side)))
		counts[ty*side+tx]++
	}
	return counts
}

func TestHotspotConcentratesLoad(t *testing.T) {
	s, err := NewScenario(ScenarioHotspot, scenarioBase())
	if err != nil {
		t.Fatal(err)
	}
	in, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]geo.Point, len(in.Workers))
	for i, w := range in.Workers {
		pts[i] = w.Loc
	}
	counts := tileCounts(s.Base, pts, 12)
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	uniformShare := 1.0 / float64(len(counts))
	topShare := float64(counts[0]) / float64(len(in.Workers))
	if topShare < 4*uniformShare {
		t.Fatalf("hottest tile holds %.1f%% of workers, want ≥ %.1f%% (4× uniform)", topShare*100, 4*uniformShare*100)
	}
}

func TestFlashCrowdIsTimeWindowed(t *testing.T) {
	s, err := NewScenario(ScenarioFlashCrowd, scenarioBase())
	if err != nil {
		t.Fatal(err)
	}
	in, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	n := len(in.Workers)
	window := in.Workers[int(0.3*float64(n)):int(0.6*float64(n))]
	outside := in.Workers[:int(0.25*float64(n))]
	if spread(window) >= spread(outside)/2 {
		t.Fatalf("burst-window spread %.1f not well below background %.1f", spread(window), spread(outside))
	}
}

// spread is the RMS distance of the workers to their centroid.
func spread(ws []model.Worker) float64 {
	var cx, cy float64
	for _, w := range ws {
		cx += w.Loc.X
		cy += w.Loc.Y
	}
	cx /= float64(len(ws))
	cy /= float64(len(ws))
	var ss float64
	for _, w := range ws {
		dx, dy := w.Loc.X-cx, w.Loc.Y-cy
		ss += dx*dx + dy*dy
	}
	return math.Sqrt(ss / float64(len(ws)))
}

// A very wide burst (sigma ≥ a quarter of the short grid extent) must
// still center inside the grid instead of clamping the crowd onto a
// border line.
func TestFlashCrowdWideBurstStaysInGrid(t *testing.T) {
	s, err := NewScenario(ScenarioFlashCrowd, scenarioBase())
	if err != nil {
		t.Fatal(err)
	}
	s.BurstSigma = 0.6
	in, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	base := s.Base
	n := len(in.Workers)
	window := in.Workers[int(0.3*float64(n)):int(0.6*float64(n))]
	var xs, ys []float64
	for _, w := range window {
		if w.Loc.X < 0 || w.Loc.X > base.GridWidth || w.Loc.Y < 0 || w.Loc.Y > base.GridHeight {
			t.Fatalf("worker at %v outside the grid", w.Loc)
		}
		xs = append(xs, w.Loc.X)
		ys = append(ys, w.Loc.Y)
	}
	// With such a wide spread, individual draws clamp onto the borders —
	// but the crowd's center must sit strictly inside the grid, not on a
	// border line (the failure mode of an out-of-grid burst center).
	sort.Float64s(xs)
	sort.Float64s(ys)
	mx, my := xs[len(xs)/2], ys[len(ys)/2]
	if mx <= 0 || mx >= base.GridWidth || my <= 0 || my >= base.GridHeight {
		t.Fatalf("burst center (%v, %v) collapsed onto the grid border", mx, my)
	}
}

func TestRushHourCentroidDrifts(t *testing.T) {
	s, err := NewScenario(ScenarioRushHour, scenarioBase())
	if err != nil {
		t.Fatal(err)
	}
	in, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	n := len(in.Workers)
	centroid := func(ws []model.Worker) geo.Point {
		var c geo.Point
		for _, w := range ws {
			c.X += w.Loc.X
			c.Y += w.Loc.Y
		}
		c.X /= float64(len(ws))
		c.Y /= float64(len(ws))
		return c
	}
	early := centroid(in.Workers[:n/5])
	late := centroid(in.Workers[4*n/5:])
	dist := math.Hypot(late.X-early.X, late.Y-early.Y)
	diag := math.Hypot(s.Base.GridWidth, s.Base.GridHeight)
	if dist < diag/4 {
		t.Fatalf("centroid drifted only %.1f over a %.1f diagonal", dist, diag)
	}
}

func TestSparseFrontierSplitsMass(t *testing.T) {
	s, err := NewScenario(ScenarioSparseFrontier, scenarioBase())
	if err != nil {
		t.Fatal(err)
	}
	in, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	frontierX := s.Base.GridWidth * 0.75
	taskFrac := 0.0
	for _, task := range in.Tasks {
		if task.Loc.X >= frontierX {
			taskFrac++
		}
	}
	taskFrac /= float64(len(in.Tasks))
	workerFrac := 0.0
	for _, w := range in.Workers {
		if w.Loc.X >= frontierX {
			workerFrac++
		}
	}
	workerFrac /= float64(len(in.Workers))
	if taskFrac < 0.2 || taskFrac > 0.4 {
		t.Fatalf("frontier task fraction %.2f, want ≈ 0.3", taskFrac)
	}
	if workerFrac > 0.12 {
		t.Fatalf("frontier worker fraction %.2f, want ≈ 0.08", workerFrac)
	}
	if taskFrac <= 2*workerFrac {
		t.Fatalf("frontier not sparse: tasks %.2f vs workers %.2f", taskFrac, workerFrac)
	}
}

func TestScenarioChurnComposition(t *testing.T) {
	s, err := NewScenario(ScenarioHotspot, scenarioBase())
	if err != nil {
		t.Fatal(err)
	}
	cc := DefaultChurn(s.Base)
	cc.TTL = 300
	cw, err := s.GenerateChurn(cc)
	if err != nil {
		t.Fatal(err)
	}
	in, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if cw.TotalTasks != len(in.Tasks) {
		t.Fatalf("churn total %d, want %d", cw.TotalTasks, len(in.Tasks))
	}
	wantInitial := int(math.Ceil(0.6 * float64(len(in.Tasks))))
	if cw.InitialTasks != wantInitial {
		t.Fatalf("initial %d, want %d", cw.InitialTasks, wantInitial)
	}
	if !reflect.DeepEqual(cw.Instance.Tasks, in.Tasks[:wantInitial]) {
		t.Fatal("initial tasks are not the scenario's task prefix")
	}
	if !reflect.DeepEqual(cw.Instance.Workers, in.Workers) {
		t.Fatal("churn workers differ from the scenario stream")
	}
	posts, retires := 0, 0
	for _, e := range cw.Events {
		switch e.Kind {
		case EventPost:
			posts++
		case EventRetire:
			retires++
		}
	}
	if posts != cw.TotalTasks-cw.InitialTasks {
		t.Fatalf("%d posts, want %d", posts, cw.TotalTasks-cw.InitialTasks)
	}
	if retires != cw.TotalTasks {
		t.Fatalf("%d retires with TTL set, want %d", retires, cw.TotalTasks)
	}
	// GenerateOn with the full fraction keeps the instance intact.
	whole, err := ChurnConfig{InitialFraction: 1}.GenerateOn(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(whole.Events) != 0 || whole.InitialTasks != len(in.Tasks) {
		t.Fatal("InitialFraction=1 split should post nothing")
	}
	if _, err := (ChurnConfig{InitialFraction: -1}).GenerateOn(in); err == nil {
		t.Fatal("bad churn config accepted by GenerateOn")
	}
	// A broken scenario fails GenerateChurn before any splitting happens.
	bad := Scenario{Base: scenarioBase(), Kind: "nope"}
	if _, err := bad.GenerateChurn(cc); err == nil {
		t.Fatal("GenerateChurn accepted an unknown kind")
	}
}

// Scenarios inherit the base accuracy distribution kind, Uniform included.
func TestScenarioUniformAccuracyDistribution(t *testing.T) {
	base := scenarioBase()
	base.Accuracy = AccuracyDist{Kind: DistUniform, Mean: 0.86, Spread: UniformSpread}
	s, err := NewScenario(ScenarioHotspot, base)
	if err != nil {
		t.Fatal(err)
	}
	in, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for i := range in.Workers {
		if in.Workers[i].Acc != want.Workers[i].Acc {
			t.Fatalf("worker %d accuracy %v != base %v", i, in.Workers[i].Acc, want.Workers[i].Acc)
		}
	}
}
