package dispatch

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"ltc/internal/events"
	"ltc/internal/model"
)

// drainEvents closes the subscription and collects everything buffered.
func drainEvents(sub *events.Subscription) []events.Event {
	sub.Close()
	var out []events.Event
	for e := range sub.Events() {
		out = append(out, e)
	}
	return out
}

// TestEventsPerCallStream: a per-call sequential feed publishes exactly one
// TaskCompleted per task — in completion order, carrying the completing
// worker — followed by one PlatformDone.
func TestEventsPerCallStream(t *testing.T) {
	in := testInstance(t, 0.01)
	d, err := New(in, 2, aamFactory)
	if err != nil {
		t.Fatal(err)
	}
	sub := d.Subscribe(4 * len(in.Tasks))
	recs := feedSequential(t, d, in.Workers)
	if !d.Done() {
		t.Fatal("incomplete")
	}
	// Receipts and events must tell the same completion story.
	wantCompletions := make(map[model.TaskID]int)
	for _, r := range recs {
		for _, g := range r.Assignments {
			if g.Completed {
				wantCompletions[g.Task] = r.Worker
			}
		}
	}
	got := drainEvents(sub)
	completed := make(map[model.TaskID]int)
	for i, e := range got {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d — drops on an unbounded-enough buffer", i, e.Seq)
		}
		switch e.Kind {
		case events.TaskCompleted:
			if _, dup := completed[e.Task]; dup {
				t.Fatalf("task %d completed twice", e.Task)
			}
			completed[e.Task] = e.Worker
		case events.PlatformDone:
			if i != len(got)-1 {
				t.Fatalf("PlatformDone at %d of %d", i, len(got))
			}
			if e.Task != -1 {
				t.Fatalf("PlatformDone task = %d, want -1", e.Task)
			}
		default:
			t.Fatalf("unexpected event %+v", e)
		}
	}
	if got[len(got)-1].Kind != events.PlatformDone {
		t.Fatal("no PlatformDone")
	}
	if len(completed) != len(in.Tasks) {
		t.Fatalf("%d completion events, want %d", len(completed), len(in.Tasks))
	}
	for task, worker := range wantCompletions {
		if completed[task] != worker {
			t.Fatalf("task %d completed by worker %d per receipt, %d per event", task, worker, completed[task])
		}
	}
	if sub.Dropped() != 0 {
		t.Fatalf("%d drops", sub.Dropped())
	}
}

// TestEventsBatchedStreamMatchesPerCall: the batched inner loop publishes
// the same completion set as per-call ingestion (order within the stream
// is the per-shard completion order either way on a sequential feed).
func TestEventsBatchedStreamMatchesPerCall(t *testing.T) {
	in := testInstance(t, 0.01)
	run := func(batch int) []events.Event {
		d, err := New(in, 2, lafFactory)
		if err != nil {
			t.Fatal(err)
		}
		sub := d.Subscribe(4 * len(in.Tasks))
		if batch == 0 {
			feedSequential(t, d, in.Workers)
		} else {
			feedBatched(t, d, in.Workers, batch)
		}
		return drainEvents(sub)
	}
	want := run(0)
	for _, batch := range []int{1, 33, len(in.Workers)} {
		got := run(batch)
		if len(got) != len(want) {
			t.Fatalf("batch=%d: %d events, want %d", batch, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch=%d: event %d = %+v, want %+v", batch, i, got[i], want[i])
			}
		}
	}
}

// TestEventsLifecycle: PostTask and RetireTask publish TaskPosted (with the
// arrival-clock anchor) and TaskRetired; retiring the last open task
// publishes PlatformDone; double retires stay silent; a revival produces a
// second PlatformDone when it resolves.
func TestEventsLifecycle(t *testing.T) {
	in := lifecycleInstance(4, 40, 60, 13)
	d, err := New(in, 1, lafFactory)
	if err != nil {
		t.Fatal(err)
	}
	sub := d.Subscribe(64)
	// Tick the clock to 5, then post: the event must anchor there.
	for i := 1; i <= 5; i++ {
		if _, err := d.CheckIn(in.Workers[i-1]); err != nil {
			t.Fatal(err)
		}
	}
	gid, err := d.PostTask(model.Task{Loc: in.Tasks[0].Loc})
	if err != nil {
		t.Fatal(err)
	}
	// Resolve everything by retiring; the last open retire flips the
	// platform done.
	statuses := d.TaskStatuses()
	for id := range statuses {
		if err := d.RetireTask(model.TaskID(id)); err != nil {
			t.Fatal(err)
		}
	}
	if !d.Done() {
		t.Fatal("not done after retiring everything")
	}
	if err := d.RetireTask(gid); err != nil { // second retire: no event
		t.Fatal(err)
	}
	// Revive with a post, then retire it again.
	gid2, err := d.PostTask(model.Task{Loc: in.Tasks[1].Loc})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RetireTask(gid2); err != nil {
		t.Fatal(err)
	}

	var posted, retired, dones int
	var sawPost1 bool
	for _, e := range drainEvents(sub) {
		switch e.Kind {
		case events.TaskPosted:
			posted++
			if e.Task == gid {
				sawPost1 = true
				if e.PostIndex != 5 {
					t.Fatalf("post index %d, want 5", e.PostIndex)
				}
			}
		case events.TaskRetired:
			retired++
		case events.PlatformDone:
			dones++
		case events.TaskCompleted:
			// Workers 1..5 may have completed some tasks; fine.
		}
	}
	if posted != 2 || !sawPost1 {
		t.Fatalf("%d TaskPosted (saw first: %v), want 2", posted, sawPost1)
	}
	// Every task ever known retired exactly once (the double retire of gid
	// published nothing).
	if want := len(in.Tasks) + 2; retired != want {
		t.Fatalf("%d TaskRetired, want %d", retired, want)
	}
	if dones != 2 {
		t.Fatalf("%d PlatformDone, want 2 (initial resolve + revival resolve)", dones)
	}
}

// TestCheckInAsyncCtxPreCancelled: an already-done context fails before
// anything is queued; the worker is never observed.
func TestCheckInAsyncCtxPreCancelled(t *testing.T) {
	in := testInstance(t, 0.01)
	d, err := New(in, 1, lafFactory)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := d.CheckInAsyncCtx(ctx, in.Workers[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if err := d.CheckInAsyncCtx(ctx, model.Worker{Index: 0}); !errors.Is(err, ErrBadWorkerIndex) {
		t.Fatalf("bad index err = %v", err)
	}
	d.Flush()
	if got := d.Arrived(); got != 0 {
		t.Fatalf("cancelled enqueue counted %d arrivals", got)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckInAsyncCtxCancelWhileBlocked: cancelling a context releases an
// enqueue blocked on a full queue with ctx.Err(); the worker is not
// enqueued, Flush does not wait for it, and the queue keeps working.
func TestCheckInAsyncCtxCancelWhileBlocked(t *testing.T) {
	in := lifecycleInstance(10, 50, 60, 17)
	d, err := New(in, 1, lafFactory, Options{QueueCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Stall the drainer on the shard mutex so the queue stays full.
	s := d.shards[0]
	s.mu.Lock()
	if err := d.CheckInAsync(in.Workers[0]); err != nil {
		t.Fatal(err)
	}
	q := d.queues[0]
	for q.depth() != 0 { // wait for the drainer to pop the worker, freeing the slot
		runtime.Gosched()
	}
	for i := 1; i <= len(q.buf); i++ { // refill the ring (2-slot minimum)
		if err := d.CheckInAsync(in.Workers[i]); err != nil {
			t.Fatal(err)
		}
	}
	accepted := 1 + len(q.buf)
	ctx, cancel := context.WithCancel(context.Background())
	blocked := make(chan error, 1)
	go func() { blocked <- d.CheckInAsyncCtx(ctx, in.Workers[len(q.buf)+1]) }()
	for d.pending.Load() != int64(accepted+1) {
		runtime.Gosched()
	}
	cancel()
	if err := <-blocked; !errors.Is(err, context.Canceled) {
		t.Fatalf("blocked enqueue err = %v, want context.Canceled", err)
	}
	s.mu.Unlock()
	d.Flush()
	// Exactly the accepted workers arrived; the cancelled one is gone.
	if got := d.Arrived(); got != accepted {
		t.Fatalf("arrived %d, want %d", got, accepted)
	}
	// The async path survives a cancellation: a fresh cancellable enqueue
	// with a free slot succeeds without blocking.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	if err := d.CheckInAsyncCtx(ctx2, in.Workers[len(q.buf)+2]); err != nil {
		t.Fatal(err)
	}
	d.Flush()
	if got := d.Arrived(); got != accepted+1 {
		t.Fatalf("arrived %d, want %d", got, accepted+1)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckInAsyncCtxClosedWhileBlocked: a Close racing a cancellable
// blocked enqueue wins with ErrClosed (the closed check precedes the ctx
// check), mirroring CheckInAsync's contract.
func TestCheckInAsyncCtxClosedWhileBlocked(t *testing.T) {
	in := lifecycleInstance(10, 50, 60, 19)
	d, err := New(in, 1, lafFactory, Options{QueueCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := d.shards[0]
	s.mu.Lock()
	if err := d.CheckInAsync(in.Workers[0]); err != nil {
		t.Fatal(err)
	}
	q := d.queues[0]
	for q.depth() != 0 {
		runtime.Gosched()
	}
	for i := 1; i <= len(q.buf); i++ { // refill the ring (2-slot minimum)
		if err := d.CheckInAsync(in.Workers[i]); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	blocked := make(chan error, 1)
	go func() { blocked <- d.CheckInAsyncCtx(ctx, in.Workers[len(q.buf)+1]) }()
	for d.pending.Load() != int64(2+len(q.buf)) {
		runtime.Gosched()
	}
	closed := make(chan struct{})
	go func() {
		if err := d.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		close(closed)
	}()
	if err := <-blocked; !errors.Is(err, ErrClosed) {
		t.Fatalf("blocked enqueue err = %v, want ErrClosed", err)
	}
	s.mu.Unlock()
	<-closed
}
