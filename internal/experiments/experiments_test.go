package experiments

import (
	"bytes"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

// tinyOptions keeps experiment tests fast: minimal scale, one rep, and the
// cheap online algorithms only (unless a test needs more).
func tinyOptions() Options {
	return Options{Scale: 0.01, Reps: 1, Seed: 7, Algorithms: []string{AlgoLAF, AlgoAAM, AlgoRandom}}
}

func TestRegistryCoversAllFigurePanels(t *testing.T) {
	want := map[string]bool{}
	for _, p := range []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"} {
		want["Fig.3"+p] = false
		want["Fig.4"+p] = false
	}
	for _, e := range Registry() {
		for _, p := range e.Panels {
			seen, ok := want[p]
			if !ok {
				t.Fatalf("%s claims unknown panel %q", e.ID, p)
			}
			if seen {
				t.Fatalf("panel %q claimed twice", p)
			}
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Fatalf("panel %q not covered by any experiment", p)
		}
	}
}

func TestLookup(t *testing.T) {
	e, err := Lookup("fig3-tasks")
	if err != nil || e.ID != "fig3-tasks" {
		t.Fatalf("Lookup = %v, %v", e, err)
	}
	if _, err := Lookup("nope"); !errors.Is(err, ErrUnknownExperiment) {
		t.Fatalf("err = %v, want ErrUnknownExperiment", err)
	}
	if len(IDs()) != len(Registry()) {
		t.Fatal("IDs()/Registry() mismatch")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 0.05 || o.Reps != 3 || o.Seed != 42 {
		t.Fatalf("defaults = %+v", o)
	}
	if len(o.Algorithms) != 5 {
		t.Fatalf("default algorithms = %v", o.Algorithms)
	}
}

func TestFig3TasksRuns(t *testing.T) {
	e, err := Lookup("fig3-tasks")
	if err != nil {
		t.Fatal(err)
	}
	o := tinyOptions()
	var progressLines int
	o.Progress = func(string, ...any) { progressLines++ }
	table, err := e.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Xs) != 5 {
		t.Fatalf("sweep points = %v", table.Xs)
	}
	if progressLines != 5 {
		t.Fatalf("progress lines = %d", progressLines)
	}
	for _, x := range table.Xs {
		for _, algo := range o.Algorithms {
			m, ok := table.Cells[x][algo]
			if !ok {
				t.Fatalf("missing cell %s/%s", x, algo)
			}
			if !m.Completed {
				t.Fatalf("%s at |T|=%s incomplete", algo, x)
			}
			if m.Latency <= 0 || m.Seconds < 0 || m.MemMB < 0 {
				t.Fatalf("suspicious metrics %+v", m)
			}
		}
	}
	// Monotone trend: more tasks need more workers (first vs last point).
	for _, algo := range o.Algorithms {
		lo := table.Cells[table.Xs[0]][algo].Latency
		hi := table.Cells[table.Xs[len(table.Xs)-1]][algo].Latency
		if hi <= lo {
			t.Fatalf("%s: latency did not grow with |T| (%v -> %v)", algo, lo, hi)
		}
	}
}

func TestFig4EpsilonLatencyDropsWithEpsilon(t *testing.T) {
	e, err := Lookup("fig4-epsilon")
	if err != nil {
		t.Fatal(err)
	}
	o := tinyOptions()
	o.Reps = 2
	table, err := e.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range o.Algorithms {
		lo := table.Cells[table.Xs[0]][algo].Latency               // ε = 0.06, strict
		hi := table.Cells[table.Xs[len(table.Xs)-1]][algo].Latency // ε = 0.22, lax
		if hi >= lo {
			t.Fatalf("%s: latency did not drop as ε relaxed (%v -> %v)", algo, lo, hi)
		}
	}
}

func TestFigCapacityRuns(t *testing.T) {
	e, err := Lookup("fig3-capacity")
	if err != nil {
		t.Fatal(err)
	}
	o := tinyOptions()
	o.Scale = 0.04 // K only binds once per-worker candidate counts exceed it
	table, err := e.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(table.Xs, ","); got != "4,5,6,7,8" {
		t.Fatalf("capacity sweep = %s", got)
	}
	// Latency must not grow with K, and capacity must bind somewhere:
	// at least one online algorithm improves strictly from K=4 to K=8.
	strict := false
	for _, algo := range o.Algorithms {
		lo := table.Cells["4"][algo].Latency
		hi := table.Cells["8"][algo].Latency
		if hi > lo {
			t.Fatalf("%s: latency grew with K (%v -> %v)", algo, lo, hi)
		}
		if hi < lo {
			strict = true
		}
	}
	if !strict {
		t.Fatal("no algorithm improved from K=4 to K=8 — capacity never bound")
	}
}

func TestCitySweepRuns(t *testing.T) {
	e, err := Lookup("fig4-newyork")
	if err != nil {
		t.Fatal(err)
	}
	o := tinyOptions()
	table, err := e.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Xs) != 5 {
		t.Fatalf("sweep = %v", table.Xs)
	}
	// ε=0.06 should need at least as many workers as ε=0.22.
	for _, algo := range o.Algorithms {
		if table.Cells["0.06"][algo].Latency < table.Cells["0.22"][algo].Latency {
			t.Fatalf("%s: ε trend inverted", algo)
		}
	}
}

func TestRunPointUnknownAlgorithm(t *testing.T) {
	e, err := Lookup("fig3-tasks")
	if err != nil {
		t.Fatal(err)
	}
	o := tinyOptions()
	o.Algorithms = []string{"Quantum"}
	if _, err := e.Run(o); !errors.Is(err, ErrUnknownAlgorithm) {
		t.Fatalf("err = %v, want ErrUnknownAlgorithm", err)
	}
}

func TestTableFormatAndCSV(t *testing.T) {
	e, err := Lookup("fig3-tasks")
	if err != nil {
		t.Fatal(err)
	}
	o := tinyOptions()
	table, err := e.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := table.Format(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig.3a", "Fig.3e", "Fig.3i", "Latency", "Runtime", "Memory", "LAF", "AAM"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := table.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header + 3 metrics × 5 xs × 3 algorithms.
	if want := 1 + 3*5*3; len(lines) != want {
		t.Fatalf("CSV has %d lines, want %d", len(lines), want)
	}
	if lines[0] != "experiment,panel,metric,algorithm,x,value,completed" {
		t.Fatalf("CSV header = %q", lines[0])
	}
}

// TestParallelSweepMatchesSerial: the worker-pool sweep runner must produce
// exactly the serial results (same Xs order, same latency values, same rep
// counts) — the deterministic-ordering contract of the parallel refactor.
func TestParallelSweepMatchesSerial(t *testing.T) {
	for _, id := range []string{"fig3-tasks", "fig4-epsilon"} {
		e, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		o := tinyOptions()
		o.Reps = 2
		o.Parallel = 1
		serial, err := e.Run(o)
		if err != nil {
			t.Fatal(err)
		}
		o.Parallel = 8
		var lines int32
		o.Progress = func(string, ...any) { atomic.AddInt32(&lines, 1) }
		parallel, err := e.Run(o)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(serial.Xs, ",") != strings.Join(parallel.Xs, ",") {
			t.Fatalf("%s: Xs order differs: %v vs %v", id, serial.Xs, parallel.Xs)
		}
		for _, x := range serial.Xs {
			for _, algo := range o.Algorithms {
				s, p := serial.Cells[x][algo], parallel.Cells[x][algo]
				if s.Latency != p.Latency || s.Reps != p.Reps || s.Completed != p.Completed {
					t.Fatalf("%s %s/%s: serial %+v vs parallel %+v", id, x, algo, s, p)
				}
			}
		}
		if lines == 0 {
			t.Fatalf("%s: no progress lines under parallel run", id)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	e, err := Lookup("fig3-capacity")
	if err != nil {
		t.Fatal(err)
	}
	o := tinyOptions()
	o.Algorithms = []string{AlgoLAF}
	a, err := e.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range a.Xs {
		if a.Cells[x][AlgoLAF].Latency != b.Cells[x][AlgoLAF].Latency {
			t.Fatalf("latency at %s differs across identical runs", x)
		}
	}
}

func TestOfflineAlgorithmsAtSmallScale(t *testing.T) {
	// Exercise MCF-LTC and Base-off through the harness (slower, so only
	// a single sweep point's worth via the capacity experiment at 0.005).
	e, err := Lookup("fig3-capacity")
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Scale: 0.005, Reps: 1, Seed: 3, Algorithms: []string{AlgoBaseOff, AlgoMCF}}
	table, err := e.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range table.Xs {
		for _, algo := range o.Algorithms {
			if !table.Cells[x][algo].Completed {
				t.Fatalf("%s at K=%s incomplete", algo, x)
			}
		}
	}
}

func TestFormatDatasetTables(t *testing.T) {
	iv := FormatTableIV()
	for _, want := range []string{"3000", "40000", "0.86", "Scalability"} {
		if !strings.Contains(iv, want) {
			t.Fatalf("Table IV missing %q:\n%s", want, iv)
		}
	}
	v := FormatTableV()
	for _, want := range []string{"NewYork", "Tokyo", "3717", "227428", "9317", "573703"} {
		if !strings.Contains(v, want) {
			t.Fatalf("Table V missing %q:\n%s", want, v)
		}
	}
}

func TestPointSeedDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for rep := 0; rep < 50; rep++ {
		for _, id := range []string{"a", "b", "fig3-tasks"} {
			s := pointSeed(42, id, rep)
			if seen[s] {
				t.Fatalf("seed collision at %s/%d", id, rep)
			}
			seen[s] = true
		}
	}
	// Paired design: the same (experiment, rep) must reproduce its seed.
	if pointSeed(42, "a", 3) != pointSeed(42, "a", 3) {
		t.Fatal("pointSeed not deterministic")
	}
}

func TestMetricsValueRows(t *testing.T) {
	m := Metrics{Latency: 1, Seconds: 2, MemMB: 3}
	if m.value(0) != 1 || m.value(1) != 2 || m.value(2) != 3 {
		t.Fatal("metric row extraction wrong")
	}
}

func TestAccumulateAverages(t *testing.T) {
	dst := map[string]Metrics{}
	accumulate(dst, map[string]Metrics{"A": {Latency: 10, Seconds: 1, MemMB: 4, Completed: true, Reps: 1}})
	accumulate(dst, map[string]Metrics{"A": {Latency: 20, Seconds: 3, MemMB: 8, Completed: true, Reps: 1}})
	m := dst["A"]
	if m.Latency != 15 || m.Seconds != 2 || m.MemMB != 6 || m.Reps != 2 || !m.Completed {
		t.Fatalf("accumulated = %+v", m)
	}
	accumulate(dst, map[string]Metrics{"A": {Latency: 15, Completed: false, Reps: 1}})
	if dst["A"].Completed {
		t.Fatal("one incomplete rep must mark the cell incomplete")
	}
}
