package dispatch

import (
	"fmt"

	"ltc/internal/model"
)

// CheckInBatch ingests a batch of workers with the sequential semantics of
// a CheckIn loop at a fraction of the per-call overhead: consecutive
// workers routing to the same shard form one run, ingested under a single
// shard-mutex acquisition and a single pinned candidate-index snapshot
// (one query-scratch buffer for the whole run). Workers keep their input
// order, so a sequential caller gets bit-identical assignments, latency and
// task statuses to feeding the same stream through CheckIn one by one —
// the golden-trace suite pins this equivalence against Session.
//
// out[i] holds the global TaskIDs assigned to ws[i] (possibly none). When
// the platform completes mid-batch, ingestion stops: out is truncated to
// the ingested prefix (the worker completing the last task is its final
// entry), ErrDone is returned, and the remaining workers are not observed
// at all — they tick no arrival clock and count no arrival, so they can be
// re-presented after a PostTask revives the platform. A platform already
// complete at call time returns an empty out and ErrDone. A worker with a
// non-positive index fails the whole batch upfront with ErrBadWorkerIndex;
// an empty batch is a no-op. Safe for concurrent use alongside every other
// dispatcher method.
func (d *Dispatcher) CheckInBatch(ws []model.Worker) ([][]model.TaskID, error) {
	for i, w := range ws {
		if w.Index < 1 {
			return nil, fmt.Errorf("%w: got %d at batch position %d", ErrBadWorkerIndex, w.Index, i)
		}
	}
	out := make([][]model.TaskID, 0, len(ws))
	for i := 0; i < len(ws); {
		if d.Done() {
			return out, ErrDone
		}
		si := d.part.Locate(ws[i].Loc)
		j := i + 1
		for j < len(ws) && d.part.Locate(ws[j].Loc) == si {
			j++
		}
		base := len(out)
		out = out[:base+j-i]
		consumed := d.ingestRun(si, ws[i:j], true, func(k int, assigned []model.TaskID) {
			out[base+k] = append([]model.TaskID(nil), assigned...)
		})
		out = out[:base+consumed]
		if consumed < j-i {
			return out, ErrDone
		}
		i = j
	}
	return out, nil
}

// ingestRun offers a same-shard run of workers to shard si under one mutex
// acquisition and one pinned candidate snapshot — the batched inner loop
// shared by CheckInBatch and the async drainers. CheckIn is semantically a
// run of length one but keeps its own allocation-lean body (the sink
// closure would cost the per-call hot path two heap allocations);
// TestCheckInBatchMatchesSequential pins the two implementations together.
//
// truncate selects the completion semantics: when true the run stops before
// the first worker that would arrive on a completed platform (the
// CheckInBatch contract — unconsumed workers are not observed at all);
// when false such workers are consumed as bounced arrivals, exactly like
// check-ins racing a momentarily-complete platform (the async contract).
//
// sink, when non-nil, is invoked once per consumed worker, in run order,
// with the worker's position and its assignments as global TaskIDs; the
// slice is scratch, valid only during the call (nil when the worker was
// bounced or got no assignment). Global state other threads read mid-run —
// the arrival clock anchoring PostTask indices and the live-task countdown
// behind Done — is updated per worker, so a long run never publishes stale
// values; pure outputs (latency watermarks, the arrival total) fold in
// once per run.
func (d *Dispatcher) ingestRun(si int, run []model.Worker, truncate bool, sink func(i int, assigned []model.TaskID)) (consumed int) {
	s := d.shards[si]
	var gout []model.TaskID
	runMaxUsed, runMaxRel := 0, 0
	s.mu.Lock()
	s.eng.BeginBatch()
	for i := range run {
		if truncate && d.Done() {
			break
		}
		w := run[i]
		consumed++
		s.routed++
		atomicMax(&d.maxSeen, int64(w.Index))
		if s.eng.Done() {
			// The shard has no open tasks: the worker is consumed as a
			// bounced arrival (CheckIn's nil result).
			if sink != nil {
				sink(i, nil)
			}
			continue
		}
		s.offered++
		before, _ := s.eng.Progress()
		assigned := s.eng.Arrive(w)
		gout = gout[:0]
		for _, t := range assigned {
			gout = append(gout, s.sub.Global[t])
			if rel := w.Index - s.eng.TaskPostIndex(t); rel > runMaxRel {
				runMaxRel = rel
			}
		}
		if len(assigned) > 0 {
			s.workers[w.Index] = w
			if w.Index > runMaxUsed {
				runMaxUsed = w.Index
			}
		}
		if after, _ := s.eng.Progress(); after > before {
			d.remaining.Add(int64(-(after - before)))
		}
		if sink != nil {
			sink(i, gout)
		}
	}
	s.eng.EndBatch()
	if runMaxUsed > 0 {
		atomicMax(&d.maxUsed, int64(runMaxUsed))
		atomicMax(&d.maxRel, int64(runMaxRel))
	}
	s.mu.Unlock()
	d.arrived.Add(int64(consumed))
	return consumed
}
