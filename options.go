package ltc

import (
	"ltc/internal/dispatch"
	"ltc/internal/geo"
)

// The v2 options system: every constructor and runner — Solve, SolveAll,
// NewSession, NewPlatform, ReplayChurn — accepts the same composable
// functional options, and each consumes the subset that applies to it
// (WithShards tunes a Platform, WithBatchMultiplier the MCF-LTC solver;
// irrelevant options are ignored, never an error). The v1 structs
// SolveOptions and PlatformOptions implement Option themselves, so
// existing call sites keep compiling unchanged.

// Option configures Solve, NewSession, NewPlatform or ReplayChurn. Options
// are applied in order, so a later option overrides an earlier one for the
// same setting.
type Option interface {
	applyOption(*config)
}

// config is the merged view of every tunable the options can set. The zero
// value is every setting's default.
type config struct {
	shards          int
	balanced        bool
	rebalance       *dispatch.RebalanceOptions
	loadSample      []geo.Point
	loadPrefix      int
	seed            uint64
	queueCap        int
	maxDrain        int
	eventBuffer     int
	index           *CandidateIndex
	batchMultiplier float64
	exactMaxNodes   int64
}

// optionFunc adapts a plain function to the Option interface.
type optionFunc func(*config)

func (f optionFunc) applyOption(c *config) { f(c) }

// newConfig folds the options, in order, over the default config.
func newConfig(opts []Option) config {
	var c config
	for _, o := range opts {
		o.applyOption(&c)
	}
	return c
}

// WithShards sets the Platform's requested spatial shard count. 0 (the
// default) uses GOMAXPROCS; negative counts are rejected by NewPlatform.
// The effective count can be lower: empty spatial tiles collapse and
// shards never outnumber tasks. Ignored by Solve and NewSession.
func WithShards(n int) Option { return optionFunc(func(c *config) { c.shards = n }) }

// WithBalancedShards switches the Platform's tile→shard layout from fixed
// spatial striping to a load-aware greedy pack: the task bounding rect is
// tiled much finer than the shard count and tiles are packed onto shards
// largest-sampled-load-first, so skewed traffic (hotspots, flash crowds,
// rush-hour drift) splits across shards instead of collapsing onto one hot
// shard mutex. The load profile is sampled from the instance's worker
// locations (task locations when the instance carries none). Latency and
// ordering semantics are unchanged — workers keep their global arrival
// indices, every location still routes to exactly one shard, and with one
// shard the layouts coincide — but multi-shard assignments differ from the
// striped layout's, since shard boundaries move (see CONCURRENCY.md,
// "Balanced shard layout"). Ignored outside NewPlatform and ReplayChurn.
func WithBalancedShards() Option { return optionFunc(func(c *config) { c.balanced = true }) }

// WithRebalance enables adaptive live re-sharding on top of the balanced
// layout (it implies WithBalancedShards): the platform learns per-tile
// arrival rates online (an EWMA folded every RebalanceOptions.Interval
// arrivals) and migrates tiles — their routing entry and their tasks' full
// solver state — from the forecast-heaviest shard to the lightest, without
// stopping ingestion. Pass no argument for the defaults, or one
// RebalanceOptions to tune the forecast interval, migration threshold,
// moves-per-pass cap and EWMA smoothing (zero fields mean their defaults).
// Rebalancing is inert on single-shard platforms. Migrations are observable
// through Platform.Migrations, ShardStats.MigratedIn/MigratedOut and
// EventTileMigrated; see CONCURRENCY.md, "Live tile migration". Ignored
// outside NewPlatform and ReplayChurn.
func WithRebalance(opts ...RebalanceOptions) Option {
	return optionFunc(func(c *config) {
		c.balanced = true
		var r RebalanceOptions
		if len(opts) > 0 {
			r = opts[0]
		}
		c.rebalance = &r
	})
}

// withLoadSample overrides the balanced layout's load profile — internal
// plumbing for ReplayChurn, which packs against the live arrival prefix
// instead of the full-stream oracle when tasks churn.
func withLoadSample(pts []geo.Point) Option {
	return optionFunc(func(c *config) { c.loadSample = pts })
}

// WithLoadPrefix restricts the balanced layout's load profile to the first
// n workers of the instance's stream — the causally honest profile a live
// deployment has when it partitions: arrivals that haven't happened yet
// can't be sampled. The default profile strides over the whole worker set,
// an oracle that already knows where late traffic lands; under drift
// (rush-hour corridors, flash crowds) the prefix layout instead goes stale
// as the stream moves, which is exactly the regime WithRebalance corrects.
// Implies WithBalancedShards. n <= 0 or beyond the stream keeps the
// default full-stream sampling; an explicit load profile (ReplayChurn's
// churn prefix) takes precedence. Ignored outside NewPlatform and
// ReplayChurn.
func WithLoadPrefix(n int) Option {
	return optionFunc(func(c *config) {
		c.balanced = true
		c.loadPrefix = n
	})
}

// WithSeed sets the seed driving the Random algorithm (per shard on a
// Platform). The deterministic algorithms ignore it; zero is a valid seed.
func WithSeed(seed uint64) Option { return optionFunc(func(c *config) { c.seed = seed }) }

// WithQueueCap bounds each shard's CheckInAsync queue: enqueues block
// (backpressure) while the owning shard's queue is full. 0 (the default)
// uses the dispatch layer's DefaultQueueCap (1024); negative values are
// rejected. Ignored outside NewPlatform and ReplayChurn.
func WithQueueCap(n int) Option { return optionFunc(func(c *config) { c.queueCap = n }) }

// WithMaxDrain caps how many queued workers a shard's async drainer
// ingests under one mutex acquisition. 0 (the default) drains everything
// queued; smaller values bound how long a drain run can make a concurrent
// PostTask or RetireTask wait. Negative values are rejected. Ignored
// outside NewPlatform and ReplayChurn.
func WithMaxDrain(n int) Option { return optionFunc(func(c *config) { c.maxDrain = n }) }

// WithEventBuffer sets the per-subscriber buffer capacity handed out by
// Platform.Subscribe (default DefaultEventBuffer). A subscriber that lets
// its buffer fill loses events instead of blocking check-ins; see the
// event contract in CONCURRENCY.md. Values < 1 fall back to the default.
func WithEventBuffer(n int) Option { return optionFunc(func(c *config) { c.eventBuffer = n }) }

// WithIndex reuses a prebuilt candidate index (it must have been built for
// the same instance). Solve and NewSession build one on demand; sharing an
// index amortizes its construction across runs. Ignored by NewPlatform,
// whose per-shard sub-instances always build their own.
func WithIndex(ci *CandidateIndex) Option { return optionFunc(func(c *config) { c.index = ci }) }

// WithBatchMultiplier scales MCF-LTC's batch size m (default 1.0). Only
// the MCF-LTC algorithm reads it.
func WithBatchMultiplier(m float64) Option {
	return optionFunc(func(c *config) { c.batchMultiplier = m })
}

// WithExactMaxNodes bounds the Exact solver's branch-and-bound search
// (default 5e6 nodes). Only the Exact algorithm reads it.
func WithExactMaxNodes(n int64) Option {
	return optionFunc(func(c *config) { c.exactMaxNodes = n })
}

// applyOption makes the v1 struct a valid Option: passing SolveOptions{…}
// where an Option is expected keeps old call sites compiling. Only fields
// set away from their zero value apply — zero already means "default" for
// every field here — so a legacy struct composes with functional options
// instead of silently resetting them mid-migration.
func (o SolveOptions) applyOption(c *config) {
	if o.Seed != 0 {
		c.seed = o.Seed
	}
	if o.Index != nil {
		c.index = o.Index
	}
	if o.BatchMultiplier != 0 {
		c.batchMultiplier = o.BatchMultiplier
	}
	if o.ExactMaxNodes != 0 {
		c.exactMaxNodes = o.ExactMaxNodes
	}
}

// applyOption makes the v1 struct a valid Option: passing
// PlatformOptions{…} where an Option is expected keeps old call sites
// compiling. Non-zero fields only, as with SolveOptions.
func (o PlatformOptions) applyOption(c *config) {
	if o.Shards != 0 {
		c.shards = o.Shards
	}
	if o.Seed != 0 {
		c.seed = o.Seed
	}
	if o.QueueCap != 0 {
		c.queueCap = o.QueueCap
	}
	if o.MaxDrain != 0 {
		c.maxDrain = o.MaxDrain
	}
}
