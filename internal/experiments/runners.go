package experiments

import (
	"fmt"
	"strconv"
	"sync/atomic"

	"ltc/internal/checkin"
	"ltc/internal/model"
	"ltc/internal/workload"
)

// figTasks regenerates Fig. 3a/3e/3i: effect of cardinality |T|.
func figTasks() *Experiment {
	e := &Experiment{
		ID:     "fig3-tasks",
		Title:  "Fig. 3 col 1: varying number of tasks |T|",
		XLabel: "|T|",
		Panels: [3]string{"Fig.3a", "Fig.3e", "Fig.3i"},
	}
	e.run = func(o Options) (*Table, error) {
		return sweepSynthetic(e, o, workload.TaskSweep(), func(c *workload.Config, x int) string {
			c.NumTasks = x
			return ""
		})
	}
	return e
}

// figCapacity regenerates Fig. 3b/3f/3j: effect of worker capacity K.
func figCapacity() *Experiment {
	e := &Experiment{
		ID:     "fig3-capacity",
		Title:  "Fig. 3 col 2: varying worker capacity K",
		XLabel: "K",
		Panels: [3]string{"Fig.3b", "Fig.3f", "Fig.3j"},
	}
	e.run = func(o Options) (*Table, error) {
		return sweepSynthetic(e, o, workload.CapacitySweep(), func(c *workload.Config, x int) string {
			c.K = x // capacity is not a size: never scaled
			return strconv.Itoa(x)
		})
	}
	return e
}

// figAccNormal regenerates Fig. 3c/3g/3k: Normal(µ, 0.05) accuracies.
func figAccNormal() *Experiment {
	e := &Experiment{
		ID:     "fig3-accnormal",
		Title:  "Fig. 3 col 3: historical accuracy ~ Normal(µ, 0.05)",
		XLabel: "µ",
		Panels: [3]string{"Fig.3c", "Fig.3g", "Fig.3k"},
	}
	e.run = func(o Options) (*Table, error) {
		return sweepSyntheticFloat(e, o, workload.AccuracyMeanSweep(), func(c *workload.Config, x float64) {
			c.Accuracy = workload.AccuracyDist{Kind: workload.DistNormal, Mean: x, Spread: 0.05}
		})
	}
	return e
}

// figAccUniform regenerates Fig. 3d/3h/3l: Uniform(mean) accuracies.
func figAccUniform() *Experiment {
	e := &Experiment{
		ID:     "fig3-accuniform",
		Title:  "Fig. 3 col 4: historical accuracy ~ Uniform(mean)",
		XLabel: "mean",
		Panels: [3]string{"Fig.3d", "Fig.3h", "Fig.3l"},
	}
	e.run = func(o Options) (*Table, error) {
		return sweepSyntheticFloat(e, o, workload.AccuracyMeanSweep(), func(c *workload.Config, x float64) {
			c.Accuracy = workload.AccuracyDist{Kind: workload.DistUniform, Mean: x, Spread: workload.UniformSpread}
		})
	}
	return e
}

// figEpsilon regenerates Fig. 4a/4e/4i: effect of the tolerable error ε.
func figEpsilon() *Experiment {
	e := &Experiment{
		ID:     "fig4-epsilon",
		Title:  "Fig. 4 col 1: varying tolerable error rate ε",
		XLabel: "ε",
		Panels: [3]string{"Fig.4a", "Fig.4e", "Fig.4i"},
	}
	e.run = func(o Options) (*Table, error) {
		// ε does not influence synthetic generation (locations and
		// accuracies come from ε-independent streams), so each repetition
		// generates one instance and sweeps ε over it — the same paired
		// design as the city sweeps.
		return sweepEpsilonShared(e, o, func(rep int) (*model.Instance, uint64, error) {
			cfg := workload.Default().Scale(o.Scale)
			cfg.Seed = pointSeed(o.Seed, e.ID, rep)
			in, err := cfg.Generate()
			return in, cfg.Seed, err
		})
	}
	return e
}

// figScalability regenerates Fig. 4b/4f/4j: |T| up to 100k, |W| = 400k.
func figScalability() *Experiment {
	e := &Experiment{
		ID:     "fig4-scalability",
		Title:  "Fig. 4 col 2: scalability (|W| = 400k)",
		XLabel: "|T|",
		Panels: [3]string{"Fig.4b", "Fig.4f", "Fig.4j"},
	}
	e.run = func(o Options) (*Table, error) {
		xs := workload.ScalabilityTaskSweep()
		labels := make([]string, len(xs))
		for i, x := range xs {
			labels[i] = strconv.Itoa(workload.Scalability(x).Scale(o.Scale).NumTasks)
		}
		return sweepPool(e, o, labels, func(xIdx, rep int) (*model.Instance, uint64, error) {
			cfg := workload.Scalability(xs[xIdx]).Scale(o.Scale)
			cfg.Seed = pointSeed(o.Seed, e.ID, rep)
			in, err := cfg.Generate()
			return in, cfg.Seed, err
		})
	}
	return e
}

// figNewYork regenerates Fig. 4c/4g/4k: ε sweep on the New York trace.
func figNewYork() *Experiment {
	e := &Experiment{
		ID:     "fig4-newyork",
		Title:  "Fig. 4 col 3: varying ε on the New York check-in trace",
		XLabel: "ε",
		Panels: [3]string{"Fig.4c", "Fig.4g", "Fig.4k"},
	}
	e.run = func(o Options) (*Table, error) { return sweepCity(e, o, checkin.NewYork()) }
	return e
}

// figTokyo regenerates Fig. 4d/4h/4l: ε sweep on the Tokyo trace.
func figTokyo() *Experiment {
	e := &Experiment{
		ID:     "fig4-tokyo",
		Title:  "Fig. 4 col 4: varying ε on the Tokyo check-in trace",
		XLabel: "ε",
		Panels: [3]string{"Fig.4d", "Fig.4h", "Fig.4l"},
	}
	e.run = func(o Options) (*Table, error) { return sweepCity(e, o, checkin.Tokyo()) }
	return e
}

func newTable(e *Experiment, o Options) *Table {
	return &Table{
		ID:         e.ID,
		Title:      e.Title,
		XLabel:     e.XLabel,
		Panels:     e.Panels,
		Algorithms: o.Algorithms,
		Cells:      map[string]map[string]Metrics{},
		Scale:      o.Scale,
	}
}

// sweepSynthetic runs an integer-valued sweep over the synthetic workload.
// mutate applies the sweep value to the config (before scaling) and may
// return a fixed label; an empty label means "use the scaled task count".
func sweepSynthetic(e *Experiment, o Options, xs []int, mutate func(*workload.Config, int) string) (*Table, error) {
	labels := make([]string, len(xs))
	for i, x := range xs {
		cfg := workload.Default()
		labels[i] = mutate(&cfg, x)
		if labels[i] == "" {
			labels[i] = strconv.Itoa(cfg.Scale(o.Scale).NumTasks)
		}
	}
	return sweepPool(e, o, labels, func(xIdx, rep int) (*model.Instance, uint64, error) {
		cfg := workload.Default()
		mutate(&cfg, xs[xIdx])
		cfg = cfg.Scale(o.Scale)
		cfg.Seed = pointSeed(o.Seed, e.ID, rep)
		in, err := cfg.Generate()
		return in, cfg.Seed, err
	})
}

// sweepSyntheticFloat is sweepSynthetic for float sweeps (ε, accuracy µ).
func sweepSyntheticFloat(e *Experiment, o Options, xs []float64, mutate func(*workload.Config, float64)) (*Table, error) {
	labels := make([]string, len(xs))
	for i, x := range xs {
		labels[i] = strconv.FormatFloat(x, 'g', -1, 64)
	}
	return sweepPool(e, o, labels, func(xIdx, rep int) (*model.Instance, uint64, error) {
		cfg := workload.Default()
		mutate(&cfg, xs[xIdx])
		cfg = cfg.Scale(o.Scale)
		cfg.Seed = pointSeed(o.Seed, e.ID, rep)
		in, err := cfg.Generate()
		return in, cfg.Seed, err
	})
}

// sweepCity runs the ε sweep on a check-in city trace. The trace is
// generated once per repetition at the strictest ε of the sweep (so every
// sweep point is feasible) and the instance's ε is overridden per point,
// mirroring how the paper reuses one dataset across ε values.
func sweepCity(e *Experiment, o Options, city checkin.CityConfig) (*Table, error) {
	city = city.Scale(o.Scale)
	city.Epsilon = workload.EpsilonSweep()[0] // strictest: δ is largest
	return sweepEpsilonShared(e, o, func(rep int) (*model.Instance, uint64, error) {
		cfg := city
		cfg.Seed = pointSeed(o.Seed, e.ID, rep)
		tr, err := checkin.Generate(cfg)
		if err != nil {
			return nil, 0, err
		}
		return tr.Instance, cfg.Seed, nil
	})
}

// sweepPool runs one job per (sweep point × repetition) on the parallel
// worker pool and folds the per-job metrics into the table in deterministic
// x-major, rep-minor order — the exact accumulation order of a serial
// sweep, so results are identical at any parallelism. Progress for a sweep
// point is reported when its last repetition completes.
func sweepPool(e *Experiment, o Options, labels []string, gen func(xIdx, rep int) (*model.Instance, uint64, error)) (*Table, error) {
	table := newTable(e, o)
	reps := o.Reps
	results := make([]map[string]Metrics, len(labels)*reps)
	pending := make([]int32, len(labels))
	for i := range pending {
		pending[i] = int32(reps)
	}
	par := o.parallelism()
	err := forEach(len(results), par, func(j int) error {
		xIdx, rep := j/reps, j%reps
		in, seed, err := gen(xIdx, rep)
		if err != nil {
			return fmt.Errorf("%s x=%s: %w", e.ID, labels[xIdx], err)
		}
		m, err := runPoint(in, o.Algorithms, seed, par == 1)
		if err != nil {
			return fmt.Errorf("%s x=%s: %w", e.ID, labels[xIdx], err)
		}
		results[j] = m
		if atomic.AddInt32(&pending[xIdx], -1) == 0 {
			o.progress("%s: %s=%s done", e.ID, e.XLabel, labels[xIdx])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for xIdx, label := range labels {
		cell := map[string]Metrics{}
		for rep := 0; rep < reps; rep++ {
			accumulate(cell, results[xIdx*reps+rep])
		}
		table.Xs = append(table.Xs, label)
		table.Cells[label] = cell
	}
	return table, nil
}

// sweepEpsilonShared runs the paired ε sweeps: one generated instance per
// repetition (from gen), every ε of the sweep evaluated on it. Repetitions
// run as pool jobs; within a job the ε points run serially so all of them
// see the same instance. Accumulation is rep-major, matching the serial
// order exactly.
func sweepEpsilonShared(e *Experiment, o Options, gen func(rep int) (*model.Instance, uint64, error)) (*Table, error) {
	table := newTable(e, o)
	eps := workload.EpsilonSweep()
	labels := make([]string, len(eps))
	for i, x := range eps {
		labels[i] = strconv.FormatFloat(x, 'g', -1, 64)
	}
	results := make([][]map[string]Metrics, o.Reps)
	par := o.parallelism()
	err := forEach(o.Reps, par, func(rep int) error {
		base, seed, err := gen(rep)
		if err != nil {
			return fmt.Errorf("%s rep %d: %w", e.ID, rep, err)
		}
		out := make([]map[string]Metrics, len(eps))
		for i, x := range eps {
			in := *base // shallow copy: tasks/workers shared, ε overridden
			in.Epsilon = x
			m, err := runPoint(&in, o.Algorithms, seed, par == 1)
			if err != nil {
				return fmt.Errorf("%s x=%s: %w", e.ID, labels[i], err)
			}
			out[i] = m
			o.progress("%s: rep %d ε=%s done", e.ID, rep, labels[i])
		}
		results[rep] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	for rep := 0; rep < o.Reps; rep++ {
		for i, label := range labels {
			if _, ok := table.Cells[label]; !ok {
				table.Xs = append(table.Xs, label)
				table.Cells[label] = map[string]Metrics{}
			}
			accumulate(table.Cells[label], results[rep][i])
		}
	}
	return table, nil
}

// FormatTableIV renders the synthetic dataset settings (Table IV).
func FormatTableIV() string {
	d := workload.Default()
	return fmt.Sprintf(`Table IV: synthetic dataset (defaults in brackets)
  |T|                 1000, 2000, [3000], 4000, 5000
  |W|                 [40000]
  K                   4, 5, [6], 7, 8
  Historical accuracy Normal: µ ∈ {0.82, 0.84, [0.86], 0.88, 0.90}, σ = 0.05
                      Uniform: mean ∈ {0.82, 0.84, [0.86], 0.88, 0.90}
  ε                   0.06, [0.10], 0.14, 0.18, 0.22
  Scalability         |T| = 10k..100k, |W| = 400k
  Grid                %.0f × %.0f units of 10 m, dmax = %.0f (300 m)
`, d.GridWidth, d.GridHeight, d.DMax)
}

// FormatTableV renders the real-dataset presets (Table V).
func FormatTableV() string {
	out := "Table V: check-in dataset presets (simulated Foursquare traces)\n"
	out += fmt.Sprintf("  %-9s %8s %9s %3s %22s %s\n", "Dataset", "|T|", "|W|", "K", "epsilon sweep", "Accuracy")
	for _, c := range checkin.Cities() {
		out += fmt.Sprintf("  %-9s %8d %9d %3d %22s µ=%.2f σ=%.2f\n",
			c.Name, c.NumTasks, c.NumCheckins, c.K, "[0.06,0.10,0.14,0.18,0.22]", c.AccMean, c.AccStd)
	}
	return out
}
