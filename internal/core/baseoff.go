package core

import (
	"ltc/internal/model"
	"ltc/internal/pqueue"
)

// BaseOff is the offline baseline of the evaluation (§V-A): it walks the
// worker sequence in arrival order and greedily assigns each worker the
// uncompleted nearby tasks with the fewest remaining eligible workers —
// scarcity-first, exploiting the offline knowledge of future supply.
type BaseOff struct{}

// Name implements Offline.
func (BaseOff) Name() string { return "Base-off" }

type scarceCandidate struct {
	model.Candidate
	remaining int // eligible workers still to arrive for this task
}

// Solve implements Offline.
func (BaseOff) Solve(in *model.Instance, ci *model.CandidateIndex) (*model.Arrangement, error) {
	state := newTaskState(len(in.Tasks), in.Delta())
	arr := model.NewArrangement(len(in.Tasks))

	// Offline knowledge: for every task the ascending arrival indices of
	// its eligible workers; ptr[t] advances as those workers arrive, so
	// len(list) - ptr is the remaining future supply.
	lists := ci.EligibleWorkerLists()
	ptr := make([]int, len(in.Tasks))

	// Keep the K scarcest candidates: the retained set's weakest element is
	// the one with the LARGEST remaining supply.
	topk := pqueue.NewTopK(in.K, func(a, b scarceCandidate) bool {
		return a.remaining > b.remaining
	})
	var cands []model.Candidate

	for _, w := range in.Workers {
		if state.allDone() {
			break
		}
		cands = ci.Candidates(w, cands[:0])
		topk.Reset()
		for _, c := range cands {
			// w is by construction the next unarrived entry of c.Task's
			// eligible list; consume it.
			ptr[c.Task]++
			if state.done(c.Task) {
				continue
			}
			topk.Offer(scarceCandidate{
				Candidate: c,
				remaining: len(lists[c.Task]) - ptr[c.Task],
			})
		}
		for topk.Len() > 0 {
			c := topk.PopMin()
			state.add(c.Task, c.AccStar)
			arr.Add(w.Index, c.Task, c.AccStar)
		}
	}
	return arr, nil
}
