package core

import (
	"errors"

	"ltc/internal/model"
)

// TaskLifecycle is implemented by online solvers that support a mutable
// task set: tasks posted mid-stream (their δ-threshold accumulation starts
// at zero from the post) and tasks retired before completion (they stop
// being assignable and no longer block Done).
//
// All of the paper's online solvers (LAF, AAM, Random) implement it; the
// offline solvers see the whole instance at once and do not.
type TaskLifecycle interface {
	// PostTask extends the solver's task set with a newly posted task. IDs
	// are dense: posting id n is only valid when the solver tracks n tasks.
	PostTask(t model.TaskID)
	// RetireTask removes the task from play and reports whether it was
	// still open (not yet at δ and not already retired).
	RetireTask(t model.TaskID) bool
}

// ErrNoLifecycle is returned when a dynamic-task operation reaches a solver
// that does not implement TaskLifecycle.
var ErrNoLifecycle = errors.New("core: solver does not support dynamic task lifecycle")

// PostTask implements TaskLifecycle.
func (l *LAF) PostTask(t model.TaskID) { l.state.open(t) }

// RetireTask implements TaskLifecycle.
func (l *LAF) RetireTask(t model.TaskID) bool { return l.state.close(t) }

// PostTask implements TaskLifecycle.
func (a *AAM) PostTask(t model.TaskID) { a.state.open(t) }

// RetireTask implements TaskLifecycle.
func (a *AAM) RetireTask(t model.TaskID) bool { return a.state.close(t) }

// PostTask implements TaskLifecycle.
func (r *Random) PostTask(t model.TaskID) { r.state.open(t) }

// RetireTask implements TaskLifecycle.
func (r *Random) RetireTask(t model.TaskID) bool { return r.state.close(t) }
