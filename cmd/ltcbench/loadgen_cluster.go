package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"ltc"
	"ltc/internal/cluster"
	"ltc/internal/httpapi"
)

// runLoadgenCluster drives a running N-node ltcd cluster end to end — the
// cluster analogue of runLoadgen, with the same global-equivalence audit:
//
//   - it regenerates the cluster's workload from the same -scale/-seed
//     flags, derives the identical tile→node topology client-side, and
//     verifies every node serves that topology (fingerprint handshake in
//     Sync) before any traffic flows;
//   - it merges the nodes' SSE streams into one global gapless sequence
//     and audits exactly-once delivery: one task_completed per task across
//     the whole cluster, no duplicates, one platform_done per task-owning
//     node, with per-node sequence gaps surfacing as hard errors;
//   - the folded cluster stats must agree with the summed event stream and
//     with the fed worker count;
//   - with a single connection the whole cluster must be wire-transparent:
//     an in-process reference platform per node, fed the same stream split
//     by the same routing (per-call or with the same batch run-splitting),
//     must reproduce every node's latency and workers-seen count exactly.
func runLoadgenCluster(urls []string, scale float64, seed uint64, algoName string, batch, conns int) error {
	if len(urls) < 1 {
		return errors.New("loadgen -cluster needs at least one node URL")
	}
	if conns < 1 {
		conns = 1
	}
	cfg := ltc.DefaultWorkload().Scale(scale)
	cfg.Seed = seed
	in, err := cfg.Generate()
	if err != nil {
		return err
	}
	topo, err := cluster.Build(in, len(urls))
	if err != nil {
		return err
	}
	split, err := cluster.SplitInstance(in, topo)
	if err != nil {
		return err
	}
	cc, err := httpapi.NewClusterClient(urls, topo)
	if err != nil {
		return err
	}

	syncCtx, cancelSync := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelSync()
	if _, err := cc.Sync(syncCtx); err != nil {
		return fmt.Errorf("cluster sync: %w", err)
	}
	pre, err := cc.Stats()
	if err != nil {
		return err
	}
	if pre.WorkersSeen != 0 {
		return fmt.Errorf("cluster already saw %d workers — loadgen needs a fresh boot", pre.WorkersSeen)
	}
	if pre.Tasks != len(in.Tasks) {
		return fmt.Errorf("cluster serves %d tasks, local generation has %d — mismatched -scale/-seed?", pre.Tasks, len(in.Tasks))
	}
	taskNodes := 0
	algo := ltc.Algorithm(algoName)
	for n := range split.Subs {
		if split.Subs[n] != nil {
			taskNodes++
			if algoName == "" {
				algo = ltc.Algorithm(pre.Nodes[n].Algo)
			}
		}
	}
	fmt.Printf("loadgen: %d tasks / %d workers across %d nodes (%d task-owning; %s, %d conns, batch=%d)\n",
		len(in.Tasks), len(in.Workers), len(urls), taskNodes, algo, conns, batch)

	// Audit the merged stream. Cluster nodes replay their event log from
	// boot, so opening after Sync loses nothing; per-node gaps are fatal.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stream := cc.OpenClusterEvents(ctx)
	defer stream.Close()
	completions := make(map[int]int)
	var dupes, outOfRange, platformDone int
	var merged uint64
	streamErr := make(chan error, 1)
	go func() {
		for {
			e, err := stream.Next()
			if err == io.EOF {
				streamErr <- nil
				return
			}
			if err != nil {
				streamErr <- err
				return
			}
			merged = e.ClusterSeq
			switch e.Kind {
			case "task_completed":
				if e.Task < 0 || e.Task >= len(in.Tasks) {
					outOfRange++
				}
				completions[e.Task]++
				if completions[e.Task] > 1 {
					dupes++
				}
			case "platform_done":
				platformDone++
			}
			// Every task-owning node publishes exactly one platform_done;
			// wait for all of them plus full completion coverage before
			// ending the audit (the timeout below backstops lost events).
			if platformDone >= taskNodes && len(completions) >= len(in.Tasks) {
				streamErr <- nil
				return
			}
		}
	}()

	// Feed the stream through the routing client. Connections claim workers
	// (or batch chunks) from a shared cursor; completed nodes keep bouncing
	// per-call traffic exactly like a completed single-node gateway, so the
	// feed stops only once every task-owning node has completed.
	wire := make([]httpapi.Worker, len(in.Workers))
	for i, w := range in.Workers {
		wire[i] = httpapi.FromWorker(w)
	}
	var cursor, fed atomic.Int64
	var done atomic.Bool
	errs := make(chan error, conns)
	start := time.Now()
	var wg sync.WaitGroup
	step := 1
	if batch > 1 {
		step = batch
	}
	for g := 0; g < conns; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				i := int(cursor.Add(int64(step))) - step
				if i >= len(wire) {
					return
				}
				j := min(i+step, len(wire))
				if batch > 1 {
					recs, allDone, err := cc.CheckInBatch(wire[i:j])
					if err != nil {
						errs <- err
						return
					}
					fed.Add(int64(len(recs)))
					if allDone {
						done.Store(true)
					}
				} else {
					if _, err := cc.CheckIn(wire[i]); err != nil {
						errs <- err
						return
					}
					fed.Add(1)
					if cc.Complete() {
						done.Store(true)
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return err
	}

	select {
	case err := <-streamErr:
		if err != nil {
			return fmt.Errorf("merged event stream: %w", err)
		}
	case <-time.After(30 * time.Second):
		return errors.New("timed out waiting for every node's platform_done on the merged stream")
	}
	st, err := cc.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("fed %d workers in %v (%.0f workers/s over the wire)\n",
		fed.Load(), elapsed.Round(time.Millisecond), float64(fed.Load())/elapsed.Seconds())
	fmt.Printf("cluster: latency=%d workers_seen=%d resolved=%d/%d done=%v (%d events merged)\n",
		st.Latency, st.WorkersSeen, st.Resolved, st.Total, st.Done, merged)
	if !st.Done || st.Resolved != st.Total || st.Total != len(in.Tasks) {
		return fmt.Errorf("cluster incomplete: %d/%d resolved (want %d)", st.Resolved, st.Total, len(in.Tasks))
	}
	if len(completions) != len(in.Tasks) || dupes > 0 || outOfRange > 0 || platformDone != taskNodes {
		return fmt.Errorf("event audit failed: %d/%d distinct completions, %d duplicates, %d out-of-range IDs, %d/%d platform_done",
			len(completions), len(in.Tasks), dupes, outOfRange, platformDone, taskNodes)
	}
	if int(fed.Load()) != st.WorkersSeen {
		return fmt.Errorf("summed workers_seen %d != %d workers fed over the wire", st.WorkersSeen, fed.Load())
	}
	fmt.Printf("events: %d task_completed (all distinct) + %d platform_done over a gapless %d-event fold — exactly-once holds\n",
		len(completions), platformDone, merged)

	if conns == 1 {
		if err := replayClusterReference(in, topo, split, st, algo, seed, batch); err != nil {
			return err
		}
	}
	fmt.Println("loadgen: PASS")
	return nil
}

// replayClusterReference rebuilds every task-owning node as an in-process
// platform and feeds it the same worker stream through the same routing
// (per-call, or batch chunks split into maximal same-node runs exactly as
// ClusterClient.CheckInBatch splits them). The wire must change nothing:
// per-node latency and workers-seen, and the cluster-level latency fold,
// must match the polled stats bit for bit.
func replayClusterReference(in *ltc.Instance, topo *cluster.Topology, split *cluster.Split,
	st httpapi.ClusterStats, algo ltc.Algorithm, seed uint64, batch int) error {
	refs := make([]*ltc.Platform, topo.Nodes)
	for n, sub := range split.Subs {
		if sub == nil {
			continue
		}
		// Mirror each node's spatial grid by replaying its REQUESTED shard
		// count, as the single-node loadgen does.
		shards := st.Nodes[n].RequestedShards
		if shards == 0 {
			shards = st.Nodes[n].Shards
		}
		ref, err := ltc.NewPlatform(sub.In, algo, ltc.WithShards(shards), ltc.WithSeed(seed))
		if err != nil {
			return err
		}
		defer ref.Close()
		refs[n] = ref
	}
	refsDone := func() bool {
		for _, ref := range refs {
			if ref != nil && !ref.Done() {
				return false
			}
		}
		return true
	}
	// Feed. Routing uses the static topology directly: the client's live
	// table never healed (Sync verified the fingerprints), so both route
	// identically. Only tiles with owners receive traffic, hence every
	// routed-to node has a platform.
	if batch > 1 {
		for i := 0; i < len(in.Workers) && !refsDone(); i += batch {
			chunk := in.Workers[i:min(i+batch, len(in.Workers))]
			for s := 0; s < len(chunk); {
				n := topo.NodeFor(chunk[s].Loc)
				e := s + 1
				for e < len(chunk) && topo.NodeFor(chunk[e].Loc) == n {
					e++
				}
				if !refs[n].Done() {
					if _, err := refs[n].CheckInBatch(chunk[s:e]); err != nil && !errors.Is(err, ltc.ErrPlatformDone) {
						return err
					}
				}
				s = e
			}
		}
	} else {
		for _, w := range in.Workers {
			if refsDone() {
				break
			}
			if _, err := refs[topo.NodeFor(w.Loc)].CheckIn(w); err != nil && !errors.Is(err, ltc.ErrPlatformDone) {
				return err
			}
		}
	}
	latency := 0
	for n, ref := range refs {
		if ref == nil {
			continue
		}
		if !ref.Done() {
			return fmt.Errorf("reference replay: node %d did not complete", n)
		}
		if ref.Latency() != st.Nodes[n].Latency {
			return fmt.Errorf("node %d: HTTP-fed latency %d != in-process latency %d", n, st.Nodes[n].Latency, ref.Latency())
		}
		if ref.WorkersSeen() != st.Nodes[n].WorkersSeen {
			return fmt.Errorf("node %d: HTTP-fed workers_seen %d != in-process %d", n, st.Nodes[n].WorkersSeen, ref.WorkersSeen())
		}
		latency = max(latency, ref.Latency())
	}
	if latency != st.Latency {
		return fmt.Errorf("cluster latency fold %d != in-process max %d", st.Latency, latency)
	}
	fmt.Printf("in-process replay: per-node latency and workers_seen match; cluster latency=%d — the wire changed nothing\n", latency)
	return nil
}
