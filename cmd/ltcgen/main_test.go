package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"ltc/internal/model"
	"ltc/internal/workload"
)

// TestInstanceRoundTrip writes an instance the way the CLI does and reads
// it back with LoadInstance, checking full fidelity of the parameters the
// algorithms consume.
func TestInstanceRoundTrip(t *testing.T) {
	cfg := workload.Default().Scale(0.002)
	cfg.Seed = 5
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}

	doc := jsonInstance{
		Kind:    "synthetic",
		Epsilon: in.Epsilon,
		Delta:   in.Delta(),
		K:       in.K,
		DMax:    cfg.DMax,
		MinAcc:  in.MinAcc,
	}
	for _, task := range in.Tasks {
		doc.Tasks = append(doc.Tasks, jsonTask{ID: int32(task.ID), X: task.Loc.X, Y: task.Loc.Y})
	}
	for _, w := range in.Workers {
		doc.Workers = append(doc.Workers, jsonWorker{Index: w.Index, X: w.Loc.X, Y: w.Loc.Y, Acc: w.Acc})
	}

	path := filepath.Join(t.TempDir(), "instance.json")
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	back, err := LoadInstance(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Tasks) != len(in.Tasks) || len(back.Workers) != len(in.Workers) {
		t.Fatalf("counts changed: %d/%d vs %d/%d",
			len(back.Tasks), len(back.Workers), len(in.Tasks), len(in.Workers))
	}
	if back.Epsilon != in.Epsilon || back.K != in.K || back.MinAcc != in.MinAcc {
		t.Fatalf("parameters changed: %+v", back)
	}
	for i := range in.Tasks {
		if back.Tasks[i] != in.Tasks[i] {
			t.Fatalf("task %d changed: %+v vs %+v", i, back.Tasks[i], in.Tasks[i])
		}
	}
	for i := range in.Workers {
		if back.Workers[i] != in.Workers[i] {
			t.Fatalf("worker %d changed", i)
		}
	}
	// The accuracy model must predict identically after the round trip.
	w, task := in.Workers[0], in.Tasks[0]
	if got, want := back.Model.Predict(w, task), in.Model.Predict(w, task); got != want {
		t.Fatalf("model prediction changed: %v vs %v", got, want)
	}
}

// TestTraceUserZeroSurvives: user ids are 0-based, so the trace annotation
// for user 0 must not be dropped by omitempty (it was, when User was a
// plain int).
func TestTraceUserZeroSurvives(t *testing.T) {
	zero := 0
	raw, err := json.Marshal(jsonWorker{Index: 1, Acc: 0.9, User: &zero})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(string(raw), `"user":0`) {
		t.Fatalf("user 0 annotation dropped: %s", raw)
	}
	var back jsonWorker
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.User == nil || *back.User != 0 {
		t.Fatalf("user 0 did not round-trip: %+v", back)
	}
}

func TestLoadInstanceMissingFile(t *testing.T) {
	if _, err := LoadInstance(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestLoadInstanceBadJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadInstance(path); err == nil {
		t.Fatal("bad JSON must error")
	}
}

func TestLoadInstanceValidates(t *testing.T) {
	// A structurally broken instance (worker indices out of order) must be
	// rejected by the embedded validation.
	doc := jsonInstance{
		Kind: "synthetic", Epsilon: 0.1, K: 2, DMax: 30, MinAcc: 0.5,
		Tasks:   []jsonTask{{ID: 0}},
		Workers: []jsonWorker{{Index: 2, Acc: 0.9}},
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "broken.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadInstance(path); err == nil {
		t.Fatal("invalid instance must be rejected")
	}
	var wantErr = model.ErrWorkerOrder
	if _, err := LoadInstance(path); err == nil || !contains(err.Error(), "arrival order") {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
