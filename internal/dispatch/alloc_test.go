package dispatch

import (
	"testing"

	"ltc/internal/model"
)

// allocFeed hands out an endless worker stream with monotone global indices,
// cycling the instance's worker pool for locations and accuracies.
func allocFeed(in *model.Instance) func() model.Worker {
	idx := 0
	return func() model.Worker {
		w := in.Workers[idx%len(in.Workers)]
		idx++
		w.Index = idx
		return w
	}
}

// TestSteadyStateAllocs pins the three ingestion paths — per-call CheckIn,
// CheckInBatchInto with a recycled receipt slice, and CheckInAsync+Flush —
// to zero steady-state heap allocations per operation on a warmed platform.
// The instance's ε is tiny, so δ ≈ 21 keeps every task open for the whole
// measurement: the hot assignment path (solver arrive, grant carving,
// worker append) is exercised on every call, not the done-bounce path.
// Amortized costs (arena blocks, slice regrowth) stay below one allocation
// per run and therefore report 0 under AllocsPerRun's integer averaging —
// exactly the accounting the benchmark artifact uses.
func TestSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are meaningless under -race")
	}
	in := lifecycleInstance(400, 512, 60, 31)
	in.Epsilon = 1e-9

	t.Run("percall", func(t *testing.T) {
		d, err := New(in, 2, lafFactory)
		if err != nil {
			t.Fatal(err)
		}
		next := allocFeed(in)
		for i := 0; i < 256; i++ { // warm: arena block, worker slice, solver state
			if _, err := d.CheckIn(next()); err != nil {
				t.Fatal(err)
			}
		}
		avg := testing.AllocsPerRun(200, func() {
			if _, err := d.CheckIn(next()); err != nil {
				t.Fatal(err)
			}
		})
		if avg != 0 {
			t.Fatalf("per-call CheckIn allocates %.2f/op in steady state, want 0", avg)
		}
	})

	t.Run("batch", func(t *testing.T) {
		d, err := New(in, 2, lafFactory)
		if err != nil {
			t.Fatal(err)
		}
		next := allocFeed(in)
		var batch [8]model.Worker
		var buf []Receipt
		feed := func() {
			for i := range batch {
				batch[i] = next()
			}
			var err error
			buf, err = d.CheckInBatchInto(batch[:], buf[:0])
			if err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 32; i++ {
			feed()
		}
		if avg := testing.AllocsPerRun(200, feed); avg != 0 {
			t.Fatalf("CheckInBatchInto allocates %.2f/batch in steady state, want 0", avg)
		}
	})

	t.Run("async", func(t *testing.T) {
		d, err := New(in, 2, lafFactory)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		next := allocFeed(in)
		feed := func() {
			for i := 0; i < 8; i++ {
				if err := d.CheckInAsync(next()); err != nil {
					t.Fatal(err)
				}
			}
			d.Flush()
		}
		for i := 0; i < 32; i++ {
			feed()
		}
		if avg := testing.AllocsPerRun(200, feed); avg != 0 {
			t.Fatalf("async enqueue+flush allocates %.2f/run in steady state, want 0", avg)
		}
	})
}
