// Command cityscale runs the paper's real-dataset experiment shape (§V-B.6)
// on a scaled-down simulated New York check-in trace: all five evaluated
// algorithms on the same instance, reporting latency, runtime and memory —
// the three rows of Fig. 4's city columns.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"ltc"
)

func main() {
	scale := flag.Float64("scale", 0.02, "fraction of the full Table V trace (1.0 = 227k check-ins)")
	epsilon := flag.Float64("epsilon", 0.10, "tolerable error rate")
	seed := flag.Uint64("seed", 20180416, "trace generation seed")
	flag.Parse()

	cfg := ltc.NewYork().Scale(*scale)
	cfg.Epsilon = *epsilon
	cfg.Seed = *seed
	fmt.Printf("generating %s trace at scale %g: %d tasks, %d check-ins, %d users...\n",
		cfg.Name, *scale, cfg.NumTasks, cfg.NumCheckins, cfg.NumUsers)
	trace, err := ltc.GenerateCity(cfg)
	if err != nil {
		log.Fatal(err)
	}
	in := trace.Instance
	fmt.Printf("convex hull of check-ins has %d vertices; δ = %.2f\n\n", len(trace.Hull), in.Delta())

	ci := ltc.NewCandidateIndex(in)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\tkind\tlatency\truntime\talloc MB\tassignments")
	for _, algo := range ltc.Algorithms() {
		res, err := ltc.Solve(in, algo, ltc.WithIndex(ci), ltc.WithSeed(*seed))
		if err != nil {
			log.Fatalf("%s: %v", algo, err)
		}
		kind := "offline"
		if algo.IsOnline() {
			kind = "online"
		}
		fmt.Fprintf(w, "%s\t%s\t%d\t%v\t%.1f\t%d\n",
			algo, kind, res.Latency, res.Elapsed.Round(1000), // µs resolution
			float64(res.AllocBytes)/(1<<20), len(res.Arrangement.Pairs))
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nexpected shape (paper Fig. 4c/4g/4k): MCF-LTC best offline latency,")
	fmt.Println("AAM best online latency, LAF cheapest runtime, MCF-LTC most expensive.")
}
