// Command ltcbench regenerates the paper's evaluation tables and figures.
//
// Every panel of Fig. 3 and Fig. 4 maps to one experiment id; `-exp all`
// runs the whole evaluation. Results print in the paper's layout (one
// section per figure panel, one row per algorithm) and can also be dumped
// as long-format CSV for plotting.
//
// Examples:
//
//	ltcbench -list
//	ltcbench -exp fig3-tasks -scale 0.05 -reps 3
//	ltcbench -exp all -scale 0.1 -reps 5 -csv results.csv
//	ltcbench -exp all -parallel 1            # paper-faithful runtime/memory metrics
//	ltcbench -exp table4 -exp-table5
//	ltcbench -exp fig4-newyork -algos LAF,AAM,Random
//	ltcbench -exp throughput -shards 1,4,16  # sharded dispatch workers/sec
//	ltcbench -exp throughput -batch 64,256 -async -json bench.json  # batched/async + artifact
//	ltcbench -exp scenarios -shards 1,8 -async -json skew.json      # skewed-workload suite, striped vs balanced
//	ltcbench -exp scenarios -shards 8,16 -rebalance                 # + adaptive live re-sharding cells
//	ltcbench -exp scenarios -scenarios hotspot,flashcrowd           # scenario subset
//	ltcbench -exp churn -churn-initial 0.6 -churn-ttl 400  # online posts + expiry
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"ltc/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ltcbench: ")

	var (
		expID     = flag.String("exp", "", "experiment id (see -list), 'all', 'table4', 'table5', 'throughput', 'scenarios' or 'churn'")
		scale     = flag.Float64("scale", 0.05, "dataset scale factor (1.0 = full paper sizes)")
		reps      = flag.Int("reps", 3, "repetitions per sweep point (paper used 30)")
		seed      = flag.Uint64("seed", 42, "base seed")
		algos     = flag.String("algos", "", "comma-separated algorithm subset (default: all five)")
		csvPath   = flag.String("csv", "", "also write long-format CSV to this path ('-' for stdout)")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		quiet     = flag.Bool("quiet", false, "suppress progress output")
		parallel  = flag.Int("parallel", 0, "sweep worker-pool size (0 = all cores; use 1 for paper-faithful runtime/memory metrics)")
		shards    = flag.String("shards", "1,2,4,8", "shard counts for -exp throughput/scenarios (comma-separated)")
		batch     = flag.String("batch", "", "also measure CheckInBatch at these batch sizes for -exp throughput/scenarios (comma-separated)")
		feeders   = flag.String("feeders", "", "feeder goroutine counts for -exp throughput/scenarios (comma-separated; default: GOMAXPROCS)")
		async     = flag.Bool("async", false, "also measure CheckInAsync ingestion for -exp throughput/scenarios")
		rebalance = flag.Bool("rebalance", false, "also measure multi-shard -exp scenarios cells with adaptive live re-sharding (WithRebalance) on top of the balanced layout")
		jsonPath  = flag.String("json", "", "write the -exp throughput/scenarios results as a JSON benchmark artifact to this path ('-' for stdout)")

		scenarios = flag.String("scenarios", "", "scenario subset for -exp scenarios (comma-separated; default: all kinds)")

		churnShards  = flag.Int("churn-shards", 4, "shard count for -exp churn")
		churnInitial = flag.Float64("churn-initial", 0, "initial task fraction for -exp churn (0 = default 0.6; rest posted online)")
		churnTTL     = flag.Int("churn-ttl", 0, "task TTL in arrivals for -exp churn (0 = no expiry)")

		url        = flag.String("url", "", "ltcd base URL for -exp loadgen (e.g. http://127.0.0.1:8080)")
		lgCluster  = flag.String("cluster", "", "comma-separated node URLs for -exp loadgen against an ltcd cluster (node-ID order; overrides -url)")
		lgBatch    = flag.Int("loadgen-batch", 0, "feed -exp loadgen through /checkin/batch chunks of this size (0/1 = per-call)")
		lgConns    = flag.Int("loadgen-conns", 1, "concurrent connections for -exp loadgen (1 = sequential feed with in-process latency audit)")
		baseline   = flag.String("baseline", "", "baseline throughput artifact for -exp benchdiff")
		candidate  = flag.String("candidate", "", "candidate throughput artifact for -exp benchdiff")
		tolerance  = flag.Float64("tolerance", 0.10, "allowed fractional workers/s regression for -exp benchdiff")
		hotGain    = flag.Float64("hotspot-gain", 0, "for -exp benchdiff: require the candidate's hotspot cells at ≥ 8 shards to show at least this fractional balanced-over-striped speedup (0 disables)")
		rushGain   = flag.Float64("rushhour-gain", 0, "for -exp benchdiff: require the candidate's rushhour rebalanced cells at ≥ 8 shards to improve post-handoff imbalance over their presampled static twins by at least this fraction, at near-parity throughput (0 disables)")
		asyncFloor = flag.Float64("async-floor", 0, "for -exp benchdiff: require every shared async cell's candidate/baseline workers/s ratio to be at least this (1.0 = no async regression at all; 0 disables)")
		maxAllocs  = flag.Float64("max-allocs", -1, "for -exp benchdiff: fail when any candidate cell exceeds this many allocs/op (-1 disables; 0 = steady-state allocation-free)")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments (each covers three figure panels):")
		for _, e := range experiments.Registry() {
			fmt.Printf("  %-17s %s  [%s %s %s]\n", e.ID, e.Title, e.Panels[0], e.Panels[1], e.Panels[2])
		}
		fmt.Println("  table4            print the synthetic dataset settings (Table IV)")
		fmt.Println("  table5            print the check-in dataset presets (Table V)")
		fmt.Println("  throughput        measure sharded dispatch check-in throughput (-shards, -batch, -async, -json)")
		fmt.Println("  scenarios         skewed-workload throughput suite: scenario × shards × mode × layout (-scenarios, -shards, -batch, -async, -json)")
		fmt.Println("  churn             dynamic task lifecycle: online posts + TTL expiry (-churn-*)")
		fmt.Println("  loadgen           drive a running ltcd gateway end to end (-url, -loadgen-*)")
		fmt.Println("  benchdiff         compare two throughput artifacts (-baseline, -candidate, -tolerance)")
		return
	}
	if *expID == "" {
		log.Fatal("missing -exp; use -list to see the available experiments")
	}
	switch *expID {
	case "table4":
		fmt.Print(experiments.FormatTableIV())
		return
	case "table5":
		fmt.Print(experiments.FormatTableV())
		return
	case "throughput":
		var algo string
		if *algos != "" {
			algo = strings.TrimSpace(strings.Split(*algos, ",")[0])
		}
		if err := runThroughput(*shards, *batch, *feeders, *async, *jsonPath, *scale, *seed, algo); err != nil {
			log.Fatal(err)
		}
		return
	case "scenarios":
		var algo string
		if *algos != "" {
			algo = strings.TrimSpace(strings.Split(*algos, ",")[0])
		}
		if err := runScenarios(*scenarios, *shards, *batch, *feeders, *async, *rebalance, *jsonPath, *scale, *seed, algo); err != nil {
			log.Fatal(err)
		}
		return
	case "churn":
		var churnAlgos []string
		if *algos != "" {
			for _, a := range strings.Split(*algos, ",") {
				churnAlgos = append(churnAlgos, strings.TrimSpace(a))
			}
		}
		if err := runChurn(*scale, *seed, *churnShards, *churnInitial, *churnTTL, churnAlgos); err != nil {
			log.Fatal(err)
		}
		return
	case "loadgen":
		var algo string
		if *algos != "" {
			algo = strings.TrimSpace(strings.Split(*algos, ",")[0])
		}
		if *lgCluster != "" {
			var nodeURLs []string
			for _, u := range strings.Split(*lgCluster, ",") {
				nodeURLs = append(nodeURLs, strings.TrimSpace(u))
			}
			if err := runLoadgenCluster(nodeURLs, *scale, *seed, algo, *lgBatch, *lgConns); err != nil {
				log.Fatal(err)
			}
			return
		}
		if err := runLoadgen(*url, *scale, *seed, algo, *lgBatch, *lgConns); err != nil {
			log.Fatal(err)
		}
		return
	case "benchdiff":
		if *baseline == "" || *candidate == "" {
			log.Fatal("benchdiff needs -baseline and -candidate artifact paths")
		}
		if err := runBenchDiff(*baseline, *candidate, *tolerance, *hotGain, *asyncFloor, *maxAllocs, *rushGain); err != nil {
			log.Fatal(err)
		}
		return
	}

	opts := experiments.Options{
		Scale:    *scale,
		Reps:     *reps,
		Seed:     *seed,
		Parallel: *parallel,
	}
	if *algos != "" {
		for _, a := range strings.Split(*algos, ",") {
			opts.Algorithms = append(opts.Algorithms, strings.TrimSpace(a))
		}
	}
	if !*quiet {
		opts.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	var ids []string
	if *expID == "all" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*expID, ",")
	}

	var csvOut io.Writer
	if *csvPath == "-" {
		csvOut = os.Stdout
	} else if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		csvOut = f
	}

	for i, id := range ids {
		e, err := experiments.Lookup(strings.TrimSpace(id))
		if err != nil {
			log.Fatal(err)
		}
		table, err := e.Run(opts)
		if err != nil {
			log.Fatalf("%s: %v", e.ID, err)
		}
		if i > 0 {
			fmt.Println()
		}
		if err := table.Format(os.Stdout); err != nil {
			log.Fatal(err)
		}
		if csvOut != nil {
			if err := table.CSV(csvOut); err != nil {
				log.Fatal(err)
			}
		}
	}
}
