package workload

import (
	"errors"
	"testing"
)

// TestChurnGenerateStructure: the plan must carve the base workload into an
// initial instance plus dense, post-ordered lifecycle events.
func TestChurnGenerateStructure(t *testing.T) {
	cc := DefaultChurn(smallConfig()) // 60 tasks, 800 workers
	cw, err := cc.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if cw.TotalTasks != 60 {
		t.Fatalf("total %d", cw.TotalTasks)
	}
	if cw.InitialTasks != 36 { // ceil(0.6 · 60)
		t.Fatalf("initial %d", cw.InitialTasks)
	}
	if len(cw.Instance.Tasks) != cw.InitialTasks {
		t.Fatalf("instance holds %d tasks", len(cw.Instance.Tasks))
	}
	if got := cw.TotalTasks - cw.InitialTasks; cw.PostedLate() != got {
		t.Fatalf("PostedLate %d, want %d (default rate posts everything after arrival 1)", cw.PostedLate(), got)
	}
	// ≥ 20% late posts: the acceptance regime of the churn experiment.
	if 5*cw.PostedLate() < cw.TotalTasks {
		t.Fatalf("late posts %d below 20%% of %d", cw.PostedLate(), cw.TotalTasks)
	}
	// Events sorted by arrival; posts carry dense IDs in post order.
	nextID := cw.InitialTasks
	lastArrival := 0
	for i, e := range cw.Events {
		if e.Arrival < lastArrival {
			t.Fatalf("event %d out of order: arrival %d after %d", i, e.Arrival, lastArrival)
		}
		lastArrival = e.Arrival
		if e.Kind != EventPost {
			t.Fatalf("event %d: unexpected retire with TTL disabled", i)
		}
		if int(e.Task.ID) != nextID {
			t.Fatalf("event %d: post ID %d, want dense %d", i, e.Task.ID, nextID)
		}
		if e.Arrival < 1 || e.Arrival > len(cw.Instance.Workers) {
			t.Fatalf("event %d: arrival %d outside the worker stream", i, e.Arrival)
		}
		nextID++
	}
	if nextID != cw.TotalTasks {
		t.Fatalf("posted through ID %d, want %d", nextID, cw.TotalTasks)
	}
}

// TestChurnTTLEvents: with a TTL every task (initial and posted) gets a
// retire event exactly TTL arrivals after its post.
func TestChurnTTLEvents(t *testing.T) {
	cc := DefaultChurn(smallConfig())
	cc.TTL = 100
	cw, err := cc.Generate()
	if err != nil {
		t.Fatal(err)
	}
	postAt := make(map[int]int) // task → post arrival (0 for initial)
	for id := 0; id < cw.InitialTasks; id++ {
		postAt[id] = 0
	}
	retireSeen := make(map[int]int)
	for _, e := range cw.Events {
		switch e.Kind {
		case EventPost:
			postAt[int(e.Task.ID)] = e.Arrival
		case EventRetire:
			retireSeen[int(e.ID)] = e.Arrival
		}
	}
	if len(retireSeen) != cw.TotalTasks {
		t.Fatalf("%d retire events, want one per task (%d)", len(retireSeen), cw.TotalTasks)
	}
	for id, post := range postAt {
		if retireSeen[id] != post+cc.TTL {
			t.Fatalf("task %d posted at %d retires at %d, want %d", id, post, retireSeen[id], post+cc.TTL)
		}
	}
}

// TestChurnDeterministic: same config, same plan.
func TestChurnDeterministic(t *testing.T) {
	cc := DefaultChurn(smallConfig())
	cc.TTL = 50
	a, err := cc.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cc.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
}

// TestChurnFullInitialIsStatic: InitialFraction = 1 reproduces the base
// instance exactly — the no-churn limit must collapse to the paper's
// static scenario.
func TestChurnFullInitialIsStatic(t *testing.T) {
	cc := DefaultChurn(smallConfig())
	cc.InitialFraction = 1
	cw, err := cc.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(cw.Events) != 0 {
		t.Fatalf("%d events in the static limit", len(cw.Events))
	}
	base, err := smallConfig().Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(cw.Instance.Tasks) != len(base.Tasks) || len(cw.Instance.Workers) != len(base.Workers) {
		t.Fatal("static limit diverges from the base instance")
	}
	for i := range base.Tasks {
		if cw.Instance.Tasks[i] != base.Tasks[i] {
			t.Fatalf("task %d differs", i)
		}
	}
}

// TestChurnValidation covers the parameter error paths.
func TestChurnValidation(t *testing.T) {
	for _, mutate := range []func(*ChurnConfig){
		func(c *ChurnConfig) { c.InitialFraction = 0 },
		func(c *ChurnConfig) { c.InitialFraction = 1.5 },
		func(c *ChurnConfig) { c.PostRate = -1 },
		func(c *ChurnConfig) { c.TTL = -2 },
	} {
		cc := DefaultChurn(smallConfig())
		mutate(&cc)
		if _, err := cc.Generate(); !errors.Is(err, ErrBadChurn) {
			t.Fatalf("bad config accepted: %+v (err %v)", cc, err)
		}
	}
	bad := DefaultChurn(Config{})
	if _, err := bad.Generate(); err == nil {
		t.Fatal("invalid base config accepted")
	}
}
