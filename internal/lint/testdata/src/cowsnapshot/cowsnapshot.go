// Package fixture exercises the cowsnapshot analyzer: fields annotated
// //ltc:cow are published to lock-free readers, so their backing arrays
// must never be written in place.
package fixture

type snap struct {
	tasks []int  //ltc:cow
	live  []bool //ltc:cow
	other []int
}

// grow is the blessed pattern: a full-slice-expression copy-append builds a
// fresh backing array, then the whole field is replaced.
func grow(s *snap, t int) *snap {
	n := len(s.tasks)
	tasks := append(s.tasks[:n:n], t)
	return &snap{tasks: tasks, live: s.live}
}

// replace swaps the whole field — always safe.
func replace(s *snap, tasks []int) {
	s.tasks = tasks
}

func badStore(s *snap, i, v int) {
	s.tasks[i] = v // want "direct element store"
}

func badFlag(s *snap, i int) {
	s.live[i] = false // want "direct element store"
}

func badInc(s *snap, i int) {
	s.tasks[i]++ // want "direct element mutation"
}

func badAppend(s *snap, t int) {
	s.tasks = append(s.tasks, t) // want "bare append into copy-on-write"
}

func badTwoIndex(s *snap, n, t int) {
	s.tasks = append(s.tasks[:n], t) // want "two-index slice"
}

func badCopy(s *snap, src []int) {
	copy(s.tasks, src) // want "copy into copy-on-write"
}

func badCopySlice(s *snap, src []int) {
	copy(s.tasks[1:], src) // want "copy into copy-on-write"
}

// okOther: unannotated fields mutate freely.
func okOther(s *snap, v int) {
	s.other = append(s.other, v)
	s.other[0] = v
}

// waived demonstrates the dense-frontier waiver shape used by the real
// candidate index.
func waived(s *snap, t int) {
	s.tasks = append(s.tasks, t) //ltclint:ignore cowsnapshot fixture demonstrates a dense-frontier append waiver
}
