package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"ltc/internal/lint/analysis"
)

// NoAlloc rejects heap-allocating constructs inside functions annotated
// //ltc:noalloc (the per-check-in hot path, ring fast paths, arena carve).
// Flagged constructs: function literals and method values (closure
// allocation), make/new, map and slice literals, map writes, escaping
// &composite literals, fmt/errors calls, go statements, string<->[]byte
// conversions, interface conversions of non-pointer-shaped operands, and
// append into any destination that is neither an //ltc:arena-annotated field
// nor rooted at a function parameter (caller-owned buffer idiom).
var NoAlloc = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "reject heap allocations in //ltc:noalloc hot-path functions",
	Run:  runNoAlloc,
}

func runNoAlloc(pass *analysis.Pass) error {
	anns := annotationsFor(pass)
	if len(anns.NoAlloc) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil && anns.NoAlloc[obj] {
				na := &noAllocRun{pass: pass, anns: anns, params: paramObjects(pass.TypesInfo, fd)}
				na.checkBody(fd)
			}
		}
	}
	return nil
}

type noAllocRun struct {
	pass   *analysis.Pass
	anns   *Annotations
	params map[types.Object]bool
}

func paramObjects(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	params := map[types.Object]bool{}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	return params
}

func (na *noAllocRun) checkBody(fd *ast.FuncDecl) {
	info := na.pass.TypesInfo

	// Method values are selectors not immediately called; collect the
	// called positions first so `x.m()` isn't flagged while `f(x.m)` is.
	calledFuns := map[ast.Expr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			calledFuns[ast.Unparen(call.Fun)] = true
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			na.pass.Reportf(n.Pos(), "function literal allocates a closure in //ltc:noalloc function %s", fd.Name.Name)
			return false
		case *ast.GoStmt:
			na.pass.Reportf(n.Pos(), "go statement allocates a goroutine in //ltc:noalloc function %s", fd.Name.Name)
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal && !calledFuns[n] {
				na.pass.Reportf(n.Pos(), "method value %s allocates in //ltc:noalloc function %s", types.ExprString(n), fd.Name.Name)
			}
		case *ast.CallExpr:
			na.checkCall(n, fd)
		case *ast.CompositeLit:
			na.checkCompositeLit(n, fd)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					na.pass.Reportf(n.Pos(), "&composite literal escapes to the heap in //ltc:noalloc function %s", fd.Name.Name)
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isMapType(info.TypeOf(idx.X)) {
					na.pass.Reportf(lhs.Pos(), "map write may allocate in //ltc:noalloc function %s", fd.Name.Name)
				}
			}
			na.checkInterfaceAssign(n, fd)
		case *ast.ValueSpec:
			na.checkInterfaceValueSpec(n, fd)
		case *ast.ReturnStmt:
			na.checkInterfaceReturn(n, fd)
		}
		return true
	})
}

func (na *noAllocRun) checkCall(call *ast.CallExpr, fd *ast.FuncDecl) {
	info := na.pass.TypesInfo

	// Builtins and conversions.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "make":
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				na.pass.Reportf(call.Pos(), "make allocates in //ltc:noalloc function %s", fd.Name.Name)
				return
			}
		case "new":
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				na.pass.Reportf(call.Pos(), "new allocates in //ltc:noalloc function %s", fd.Name.Name)
				return
			}
		case "append":
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				na.checkAppend(call, fd)
				return
			}
		}
	}

	// Conversions: string <-> byte/rune slices allocate.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := info.TypeOf(call.Args[0])
		if isStringSliceConv(from, to) {
			na.pass.Reportf(call.Pos(), "conversion between string and byte/rune slice allocates in //ltc:noalloc function %s", fd.Name.Name)
		}
		if isBoxingConversion(from, to) {
			na.pass.Reportf(call.Pos(), "conversion of %s to interface %s boxes and allocates in //ltc:noalloc function %s", from, to, fd.Name.Name)
		}
		return
	}

	// Calls into fmt/errors allocate by design.
	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt", "errors":
			na.pass.Reportf(call.Pos(), "call to %s.%s allocates in //ltc:noalloc function %s", fn.Pkg().Name(), fn.Name(), fd.Name.Name)
		}
	}

	// Implicit interface conversions at call boundaries.
	if sig, ok := info.TypeOf(call.Fun).(*types.Signature); ok && sig != nil {
		na.checkCallArgs(call, sig, fd)
	}
}

// checkAppend allows append only into arena-annotated fields or
// parameter-rooted destinations (caller-owned buffers).
func (na *noAllocRun) checkAppend(call *ast.CallExpr, fd *ast.FuncDecl) {
	if len(call.Args) == 0 {
		return
	}
	dst := ast.Unparen(call.Args[0])
	if na.allowedAppendDst(dst) {
		return
	}
	na.pass.Reportf(call.Pos(),
		"append into non-arena, non-parameter destination %s may allocate in //ltc:noalloc function %s (annotate the field //ltc:arena or pass a caller-owned buffer)",
		types.ExprString(call.Args[0]), fd.Name.Name)
}

func (na *noAllocRun) allowedAppendDst(dst ast.Expr) bool {
	info := na.pass.TypesInfo
	switch dst := dst.(type) {
	case *ast.Ident:
		obj := info.Uses[dst]
		return obj != nil && na.params[obj]
	case *ast.SelectorExpr:
		obj := info.Uses[dst.Sel]
		if obj == nil {
			return false
		}
		if na.anns.Arena[obj] {
			return true
		}
		// Selector rooted at a parameter (e.g. appending to a field of
		// a caller-owned struct pointer).
		if root, ok := rootIdent(dst); ok {
			if robj := info.Uses[root]; robj != nil && na.params[robj] {
				return true
			}
		}
		return false
	case *ast.SliceExpr:
		return na.allowedAppendDst(ast.Unparen(dst.X))
	}
	return false
}

func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x, true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

func (na *noAllocRun) checkCompositeLit(lit *ast.CompositeLit, fd *ast.FuncDecl) {
	t := na.pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		na.pass.Reportf(lit.Pos(), "map literal allocates in //ltc:noalloc function %s", fd.Name.Name)
	case *types.Slice:
		na.pass.Reportf(lit.Pos(), "slice literal allocates in //ltc:noalloc function %s", fd.Name.Name)
	}
}

// checkCallArgs flags arguments whose assignment to an interface parameter
// boxes a non-pointer-shaped value.
func (na *noAllocRun) checkCallArgs(call *ast.CallExpr, sig *types.Signature, fd *ast.FuncDecl) {
	info := na.pass.TypesInfo
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if isBoxingConversion(info.TypeOf(arg), pt) {
			na.pass.Reportf(arg.Pos(),
				"passing %s as interface %s boxes and allocates in //ltc:noalloc function %s",
				info.TypeOf(arg), pt, fd.Name.Name)
		}
	}
}

func (na *noAllocRun) checkInterfaceAssign(n *ast.AssignStmt, fd *ast.FuncDecl) {
	info := na.pass.TypesInfo
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i := range n.Lhs {
		lt := info.TypeOf(n.Lhs[i])
		rt := info.TypeOf(n.Rhs[i])
		if isBoxingConversion(rt, lt) {
			na.pass.Reportf(n.Rhs[i].Pos(),
				"assigning %s to interface %s boxes and allocates in //ltc:noalloc function %s", rt, lt, fd.Name.Name)
		}
	}
}

// checkInterfaceValueSpec is checkInterfaceAssign for `var i I = x` forms.
func (na *noAllocRun) checkInterfaceValueSpec(n *ast.ValueSpec, fd *ast.FuncDecl) {
	info := na.pass.TypesInfo
	if len(n.Names) != len(n.Values) {
		return
	}
	for i, name := range n.Names {
		lt := info.TypeOf(name)
		rt := info.TypeOf(n.Values[i])
		if isBoxingConversion(rt, lt) {
			na.pass.Reportf(n.Values[i].Pos(),
				"assigning %s to interface %s boxes and allocates in //ltc:noalloc function %s", rt, lt, fd.Name.Name)
		}
	}
}

func (na *noAllocRun) checkInterfaceReturn(n *ast.ReturnStmt, fd *ast.FuncDecl) {
	info := na.pass.TypesInfo
	obj, _ := info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return
	}
	results := obj.Type().(*types.Signature).Results()
	if results.Len() != len(n.Results) {
		return
	}
	for i, r := range n.Results {
		if isBoxingConversion(info.TypeOf(r), results.At(i).Type()) {
			na.pass.Reportf(r.Pos(),
				"returning %s as interface %s boxes and allocates in //ltc:noalloc function %s",
				info.TypeOf(r), results.At(i).Type(), fd.Name.Name)
		}
	}
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isBoxingConversion reports whether assigning a value of type from to type
// to converts a non-interface, non-pointer-shaped value into an interface,
// which allocates. Pointer-shaped types (pointers, channels, maps, funcs,
// unsafe.Pointer) are stored directly in the interface word.
func isBoxingConversion(from, to types.Type) bool {
	if from == nil || to == nil {
		return false
	}
	if !types.IsInterface(to) || types.IsInterface(from) {
		return false
	}
	if from == types.Typ[types.UntypedNil] {
		return false
	}
	switch from.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if from.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

func isStringSliceConv(from, to types.Type) bool {
	return (isString(from) && isByteOrRuneSlice(to)) || (isByteOrRuneSlice(from) && isString(to))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
