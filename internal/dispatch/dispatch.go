// Package dispatch is the sharded concurrent check-in layer of the
// reproduction: it partitions an LTC instance's task space into spatial
// shards (internal/model.PartitionInstance over the internal/geo grid),
// runs one independent online solver per shard, and routes each arriving
// worker to the shard owning its location. Check-ins serialize per shard,
// so calls touching disjoint shards proceed fully in parallel — the
// real-time assignment pattern of hyperlocal spatial-crowdsourcing
// frameworks (Tran et al.), applied to the paper's LAF/AAM/Random solvers.
//
// The task set is mutable while workers stream in: PostTask routes a new
// task to the shard owning its location (per-shard candidate indexes update
// incrementally) and RetireTask expires a stale one. Both are safe to call
// concurrently with CheckIn. A task posted after p check-ins has its latency
// reported both absolutely (global worker index, the paper's objective) and
// relative to its post index p — see RelativeLatency.
//
// Latency semantics: workers keep their global arrival indices (the online
// solvers assign from location and accuracy only, so no per-shard
// renumbering is needed), and all latencies — per shard and platform-wide —
// are reported in those global indices, directly comparable with the
// unsharded solver. Sharding trades assignment quality for throughput: a worker is
// only considered for tasks in its own shard, so tasks near shard borders
// lose eligible workers and the global latency is typically at or above
// the single-engine solver's (see CONCURRENCY.md).
package dispatch

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ltc/internal/core"
	"ltc/internal/events"
	"ltc/internal/geo"
	"ltc/internal/model"
)

// Dispatcher errors.
var (
	// ErrDone is returned by CheckIn once every task of every shard has
	// reached its quality threshold. Posting a new task revives the
	// dispatcher: subsequent check-ins are accepted again.
	ErrDone = errors.New("dispatch: all tasks completed")
	// ErrBadWorkerIndex is returned for check-ins without a positive global
	// arrival index.
	ErrBadWorkerIndex = errors.New("dispatch: worker arrival index must be ≥ 1")
	// ErrUnknownTask is returned by RetireTask for ids never posted.
	ErrUnknownTask = errors.New("dispatch: unknown task ID")
	// ErrClosed is returned by CheckInAsync once Close has been called.
	ErrClosed = errors.New("dispatch: dispatcher closed")
	// ErrBadOptions is returned by New for out-of-range tuning values
	// (negative queue capacity or drain cap, rebalance knobs outside their
	// documented ranges).
	ErrBadOptions = errors.New("dispatch: option value out of range")
)

// DefaultQueueCap is the per-shard CheckInAsync queue capacity used when
// Options.QueueCap is zero.
const DefaultQueueCap = 1024

// Options tunes the batched/asynchronous ingestion path and the shard
// layout; the zero value is ready to use.
type Options struct {
	// QueueCap bounds each shard's CheckInAsync ring buffer. Enqueues block
	// (backpressure) while the owning shard's ring is full. 0 means
	// DefaultQueueCap. The capacity is rounded up to the next power of two,
	// minimum 2 (slot mapping is a mask and the slot-sequence protocol
	// needs two laps in flight), so the effective bound may be slightly
	// larger than requested.
	QueueCap int
	// MaxDrain caps how many queued workers a shard's drainer ingests under
	// one mutex acquisition. 0 drains everything queued (bounded by
	// QueueCap); smaller values bound how long a drain run can make a
	// concurrent PostTask/RetireTask wait for the shard mutex.
	MaxDrain int
	// Balanced switches the tile→shard layout from fixed spatial striping
	// to the load-aware greedy pack (model.PartitionOptions.Balanced),
	// using the instance's worker locations — sampled down to
	// maxLoadSample — as the load profile (task locations when the
	// instance carries no workers). Latency semantics are unchanged:
	// workers keep global arrival indices whatever the layout, and with
	// one shard both layouts are identical. What changes is which shard
	// serves which tile, so skewed traffic (hotspots, flash crowds) no
	// longer collapses onto one hot shard mutex.
	Balanced bool
	// LoadSample, when non-nil, overrides the balanced layout's load profile
	// with the given points instead of sampling in.Workers. Callers that
	// know the instance's worker table is not the arrival stream — churn
	// replays, live feeds — pass the locations that will actually arrive,
	// so the greedy pack packs against real traffic rather than a stale
	// oracle. Ignored unless Balanced is set.
	LoadSample []geo.Point
	// Rebalance, when non-nil, enables adaptive live re-sharding on top of
	// the balanced layout: the dispatcher learns per-tile arrival rates
	// online and migrates tiles (routing plus full solver state) between
	// shards mid-stream when the forecast load no longer matches the
	// layout. Requires Balanced; silently inert on single-shard platforms
	// (nothing to migrate between). The solver must support task migration
	// (all built-in solvers do). See RebalanceOptions for the knobs.
	Rebalance *RebalanceOptions
}

// maxLoadSample caps how many worker locations feed the balanced layout's
// load profile; beyond it workers are sampled at a fixed stride. 4096
// points pin tile loads to a few percent — plenty for a greedy pack.
const maxLoadSample = 4096

// shard pairs one spatial sub-instance with its solver engine, its
// incrementally updatable candidate index, and the mutex serializing its
// check-ins and task-lifecycle updates.
//
// Workers keep their global arrival indices: the online solvers never read
// Worker.Index (only locations and accuracies drive assignment), so the
// shard's engine can record arrangements — and therefore latency — directly
// in global terms, and index-sensitive accuracy models stay correct.
type shard struct {
	//ltc:lock shard[i]
	mu  sync.Mutex
	eng *core.Engine
	sub *model.SubInstance
	// workers holds the workers that received assignments, in arrival order
	// (append-only — one amortized append on the hot path). The
	// merged-arrangement rebuild, a cold path, indexes them by global index
	// through a transient map; replaying the appends in order preserves the
	// old map's last-write-wins semantics for repeated indices.
	workers []model.Worker //ltc:arena
	// arena carves the TaskGrant slices handed out in Receipts, so the
	// per-check-in grant cost is one amortized block allocation instead of
	// one make per call. Guarded by mu like the rest of the shard.
	arena grantArena
	// routed counts every check-in that landed on the shard, including
	// ones bounced because the shard had already completed its tasks.
	routed int
	// routedBase is the routed count at the last tile migration; Imbalance
	// measures routed−routedBase so the metric reflects the current tile
	// ownership, not traffic served under layouts that no longer exist.
	// Zero (the whole history) until the first migration.
	routedBase int
	// offered counts the workers actually presented to the solver.
	offered int
	// migratedIn/migratedOut count tile migrations that adopted tasks into /
	// evicted tasks out of this shard.
	migratedIn  int
	migratedOut int
}

// taskRecord locates one global task: its owning shard and shard-local ID.
type taskRecord struct {
	shard int32
	local model.TaskID
}

// Dispatcher routes concurrent worker check-ins to per-shard online solvers.
// Construct with New; all methods are safe for concurrent use.
type Dispatcher struct {
	part      *model.Partition
	shards    []*shard
	remaining atomic.Int64 // live tasks not yet at δ, across all shards
	total     atomic.Int64 // tasks ever posted (initial + PostTask)
	arrived   atomic.Int64 // total check-ins received
	maxSeen   atomic.Int64 // arrival clock: largest worker index seen (incl. bounced)
	maxUsed   atomic.Int64 // global latency: max global index with an assignment
	maxRel    atomic.Int64 // max (global index − task post index) over assignments

	// regMu guards records, the global TaskID → (shard, local) registry.
	// Lock order: regMu before a shard mutex, never the reverse; CheckIn
	// takes only the shard mutex.
	//ltc:lock regMu
	regMu   sync.RWMutex
	records []taskRecord

	// bus fans lifecycle events out to Subscribe subscribers. Publishes
	// always happen after shard mutexes and regMu are released — the bus's
	// internal lock is a leaf that never nests inside the dispatch locks,
	// so the lock order above is unchanged.
	bus *events.Bus

	// rb is the online rebalancer (see rebalance.go); nil unless
	// Options.Rebalance enabled it. migrations counts completed tile
	// migrations (rebalancer-driven and explicit MigrateTile calls).
	rb         *rebalancer
	migrations atomic.Int64

	// Async ingestion state (see async.go). queues is allocated in New;
	// drainer goroutines start lazily on the first CheckInAsync.
	opts   Options
	queues []*shardQueue
	//ltc:lock async
	asyncMu sync.Mutex // serializes drainer start and the close transition
	started atomic.Bool
	closed  atomic.Bool
	drainWG sync.WaitGroup
	pending atomic.Int64 // workers enqueued but not yet fully ingested
	// flushMu only ever guards the flushCond wait/signal handshake — nothing
	// nests under it, so it is a leaf like the event bus lock.
	//ltc:lock leaf
	flushMu   sync.Mutex
	flushCond *sync.Cond
}

// New partitions the instance into up to nShards spatial shards and binds a
// fresh solver (from factory) to each. The instance needs Tasks, Model, K
// and Epsilon; Workers may be empty — they arrive via CheckIn. An optional
// Options tunes the asynchronous ingestion path.
func New(in *model.Instance, nShards int, factory core.OnlineFactory, opts ...Options) (*Dispatcher, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.QueueCap < 0 || o.MaxDrain < 0 {
		return nil, fmt.Errorf("%w: got QueueCap %d, MaxDrain %d", ErrBadOptions, o.QueueCap, o.MaxDrain)
	}
	if o.QueueCap == 0 {
		o.QueueCap = DefaultQueueCap
	}
	if o.Rebalance != nil {
		if !o.Balanced {
			return nil, ErrRebalanceLayout
		}
		r := o.Rebalance.withDefaults()
		if err := r.validate(); err != nil {
			return nil, err
		}
		o.Rebalance = &r
	}
	if err := in.ValidateStreaming(); err != nil {
		return nil, err
	}
	popt := model.PartitionOptions{Balanced: o.Balanced}
	if o.Balanced {
		if o.LoadSample != nil {
			popt.LoadSample = o.LoadSample
		} else {
			popt.LoadSample = loadSample(in.Workers)
		}
	}
	part, err := model.PartitionInstanceOpts(in, nShards, popt)
	if err != nil {
		return nil, err
	}
	d := &Dispatcher{part: part, shards: make([]*shard, part.NumShards()), opts: o, bus: events.NewBus()}
	d.flushCond = sync.NewCond(&d.flushMu)
	d.queues = make([]*shardQueue, part.NumShards())
	for i := range d.queues {
		d.queues[i] = newShardQueue(o.QueueCap)
	}
	d.records = make([]taskRecord, len(in.Tasks))
	for i, sub := range part.Shards {
		ci := model.NewCandidateIndex(sub.In)
		d.shards[i] = &shard{
			eng: core.NewEngine(sub.In, ci, factory),
			sub: sub,
		}
		for local, gid := range sub.Global {
			d.records[gid] = taskRecord{shard: int32(i), local: model.TaskID(local)}
		}
	}
	d.remaining.Store(int64(len(in.Tasks)))
	d.total.Store(int64(len(in.Tasks)))
	if o.Rebalance != nil && part.Rebalanceable() {
		if !d.shards[0].eng.CanMigrate() {
			return nil, fmt.Errorf("%w: solver %s", core.ErrNoMigration, d.shards[0].eng.Name())
		}
		d.rb = newRebalancer(d, *o.Rebalance)
	}
	return d, nil
}

// loadSample extracts the balanced layout's load profile from the known
// worker locations, striding down to maxLoadSample points so partitioning
// stays O(tasks + sample) however large the stream is. Nil (no workers
// known up front) lets the partitioner fall back to task locations.
func loadSample(ws []model.Worker) []geo.Point {
	if len(ws) == 0 {
		return nil
	}
	stride := (len(ws) + maxLoadSample - 1) / maxLoadSample
	pts := make([]geo.Point, 0, (len(ws)+stride-1)/stride)
	for i := 0; i < len(ws); i += stride {
		pts = append(pts, ws[i].Loc)
	}
	return pts
}

// NumShards reports the number of shards actually created (≤ the requested
// count: empty spatial tiles collapse).
func (d *Dispatcher) NumShards() int { return len(d.shards) }

// Balanced reports whether the load-aware tile→shard layout is active.
func (d *Dispatcher) Balanced() bool { return d.part.Balanced }

// CheckIn routes worker w to the shard owning its location, offers it to
// that shard's solver, and returns the check-in Receipt: the granted tasks
// (as global TaskIDs, with per-assignment credit and completion), the
// worker's shard, and the platform-done flag. It returns ErrDone (with a
// bounced Receipt, Shard = -1) once the whole platform is complete. Safe
// for concurrent use; only check-ins landing on the same shard serialize.
//
// w.Index is the worker's global arrival index and must be ≥ 1; concurrent
// callers need not present indices in order — the solvers assign from
// location and accuracy only, and latency is tracked as a max over indices.
//
//ltc:noalloc
func (d *Dispatcher) CheckIn(w model.Worker) (Receipt, error) {
	if w.Index < 1 {
		return Receipt{Shard: -1}, fmt.Errorf("%w: got %d", ErrBadWorkerIndex, w.Index) //ltclint:ignore noalloc rejected check-in is off the hot path; the wrapped error is worth one allocation
	}
	// Tick the arrival clock before anything can bounce the call: post
	// indices (and therefore relative latency) anchor to the largest worker
	// index seen, in the same unit as Latency, and must keep advancing even
	// while the platform is momentarily complete — a later PostTask can
	// revive it.
	atomicMax(&d.maxSeen, int64(w.Index))
	if d.Done() {
		d.addArrived(1)
		return Receipt{Worker: w.Index, Shard: -1, Done: true}, ErrDone
	}
	// Semantically a batch run of length one, but kept as a dedicated
	// allocation-lean body: routing ingestRun's sink through a closure costs
	// the hottest per-call path two heap allocations per check-in.
	// TestCheckInBatchMatchesSequential pins the two paths together.
	si := d.locate(w.Loc)
	s := d.shards[si]

	ldLock("shard", si)
	s.mu.Lock()
	s.routed++
	if s.eng.Done() {
		ldUnlock("shard", si)
		s.mu.Unlock()
		d.addArrived(1)
		return Receipt{Worker: w.Index, Shard: si, Done: d.Done()}, nil
	}
	s.offered++
	outcomes := s.eng.Arrive(w)
	var grants []TaskGrant
	maxRel, completedDelta := 0, 0
	if len(outcomes) > 0 {
		grants = s.arena.carve(len(outcomes))
		for i, oc := range outcomes {
			grants[i] = TaskGrant{Task: s.sub.Global[oc.Task], Credit: oc.Credit, Completed: oc.Completed}
			if oc.Completed {
				completedDelta++
			}
			if rel := w.Index - s.eng.TaskPostIndex(oc.Task); rel > maxRel {
				maxRel = rel
			}
		}
		s.workers = append(s.workers, w)
	}
	ldUnlock("shard", si)
	s.mu.Unlock()

	d.addArrived(1)
	if len(outcomes) > 0 {
		atomicMax(&d.maxUsed, int64(w.Index))
		atomicMax(&d.maxRel, int64(maxRel))
	}
	done := false
	if completedDelta > 0 {
		done = d.remaining.Add(int64(-completedDelta)) == 0
		for _, g := range grants {
			if g.Completed {
				d.publish(events.Event{Kind: events.TaskCompleted, Task: g.Task, Worker: w.Index})
			}
		}
		if done {
			d.publish(events.Event{Kind: events.PlatformDone, Task: -1})
		}
	} else {
		done = d.Done()
	}
	return Receipt{Worker: w.Index, Shard: si, Assignments: grants, Done: done}, nil
}

// Subscribe registers a platform-event subscriber with a buffer of the
// given capacity (values < 1 are raised to 1). Events are published after
// the emitting call's shard mutex (and, for PostTask, regMu) is released,
// so the bus never extends the dispatch lock order; see CONCURRENCY.md for
// the ordering and drop contract.
func (d *Dispatcher) Subscribe(buf int) *events.Subscription { return d.bus.Subscribe(buf) }

// publish forwards to the event bus. The bus lock is a leaf of the dispatch
// lock order, so under the lockdebug build tag the forward first asserts the
// publishing goroutine holds no dispatch lock — the runtime twin of the
// lockorder analyzer's leaf rule.
func (d *Dispatcher) publish(e events.Event) {
	ldAssertNoneHeld("bus.Publish")
	d.bus.Publish(e)
}

// atomicMax raises v to at least x.
func atomicMax(v *atomic.Int64, x int64) {
	for {
		cur := v.Load()
		if x <= cur || v.CompareAndSwap(cur, x) {
			return
		}
	}
}

// PostTask adds a task to the live platform and returns its global TaskID
// (dense, in post order after the initial set). The task is owned by the
// shard its location routes to — the same shard every worker at that
// location routes to, so late-posted tasks are always reachable, including
// ones landing in tiles that held no initial task. Its post index (the
// largest worker index seen so far — the arrival clock) anchors the
// relative latency accounting. Safe to call concurrently with CheckIn;
// posts serialize among themselves and with RetireTask.
func (d *Dispatcher) PostTask(t model.Task) (model.TaskID, error) {
	ldLock("regMu", 0)
	d.regMu.Lock()
	gid := model.TaskID(len(d.records))
	si := d.part.Locate(t.Loc)
	s := d.shards[si]
	post := int(d.maxSeen.Load())

	ldLock("shard", si)
	s.mu.Lock()
	local := s.sub.AppendTask(model.Task{ID: gid, Loc: t.Loc})
	err := s.eng.PostTask(local, post)
	if err == nil {
		// Count the task before releasing the shard: once unlocked, a
		// concurrent CheckIn may complete it and decrement remaining — if
		// the increment came later, Done() could read spuriously true while
		// other tasks are still open.
		d.total.Add(1)
		d.remaining.Add(1)
	} else {
		// Only reachable with a solver that lacks TaskLifecycle. Roll the
		// append back so the sub-instance stays in step with the engine and
		// the next post fails with the same honest error.
		s.sub.TruncateLast()
	}
	ldUnlock("shard", si)
	s.mu.Unlock()
	if err != nil {
		ldUnlock("regMu", 0)
		d.regMu.Unlock()
		return 0, err
	}

	d.records = append(d.records, taskRecord{shard: int32(si), local: local.ID})
	ldUnlock("regMu", 0)
	d.regMu.Unlock()
	// Published after regMu is released (the bus lock never nests inside
	// dispatch locks). A worker racing this post can therefore complete the
	// task and publish its TaskCompleted before TaskPosted lands on the bus
	// — see the ordering contract in CONCURRENCY.md.
	d.publish(events.Event{Kind: events.TaskPosted, Task: gid, PostIndex: post})
	return gid, nil
}

// RetireTask expires the task with the given global ID: its shard's solver
// stops assigning it, it leaves the shard's candidate index, and it no
// longer blocks Done. Retiring a task that already completed (or was
// already retired) is a harmless no-op. Safe to call concurrently with
// CheckIn.
func (d *Dispatcher) RetireTask(id model.TaskID) error {
	ldLock("regMu", 0)
	d.regMu.RLock()
	if id < 0 || int(id) >= len(d.records) {
		ldUnlock("regMu", 0)
		d.regMu.RUnlock()
		return fmt.Errorf("%w: %d", ErrUnknownTask, id)
	}
	rec := d.records[id]
	ldUnlock("regMu", 0)
	d.regMu.RUnlock()

	s := d.shards[rec.shard]
	ldLock("shard", int(rec.shard))
	s.mu.Lock()
	already := s.eng.TaskRetired(rec.local)
	wasOpen, err := s.eng.RetireTask(rec.local)
	ldUnlock("shard", int(rec.shard))
	s.mu.Unlock()
	if err != nil {
		return err
	}
	platformDone := false
	if wasOpen {
		platformDone = d.remaining.Add(-1) == 0
	}
	if !already {
		d.publish(events.Event{Kind: events.TaskRetired, Task: id})
	}
	if platformDone {
		d.publish(events.Event{Kind: events.PlatformDone, Task: -1})
	}
	return nil
}

// Done reports whether every live task of every shard has reached δ
// (retired tasks don't block completion; a PostTask can revive a done
// dispatcher).
func (d *Dispatcher) Done() bool { return d.remaining.Load() == 0 }

// Latency returns the global LTC objective so far: the largest global
// arrival index among workers that received at least one assignment.
func (d *Dispatcher) Latency() int { return int(d.maxUsed.Load()) }

// RelativeLatency returns the lifecycle-aware counterpart: the largest
// (worker index − task post index) over all assignments, where a post
// index is the largest worker index seen at post time — the same unit as
// Latency, so the value stays meaningful for sparse or out-of-order index
// feeds. For platforms whose tasks were all present from the start this
// equals Latency; with late posts it measures each task's wait from the
// moment it entered the system. Exact for sequential feeds, a close bound
// under concurrency (the watermark and the worker indices race benignly).
func (d *Dispatcher) RelativeLatency() int { return int(d.maxRel.Load()) }

// Arrived reports how many check-ins have been received (including ones
// bounced because the platform was momentarily complete).
func (d *Dispatcher) Arrived() int { return int(d.arrived.Load()) }

// Progress returns the number of resolved tasks and the task total (all
// tasks ever posted). Resolved means reached δ or retired before reaching
// it — both never need another worker.
func (d *Dispatcher) Progress() (resolved, total int) {
	total = int(d.total.Load())
	return total - int(d.remaining.Load()), total
}

// ShardStats is one shard's progress/credit/load snapshot.
type ShardStats struct {
	// Tasks is the shard's task count (including posted and retired tasks);
	// Completed of them have reached δ and Retired were expired.
	Tasks     int
	Completed int
	Retired   int
	// Workers is the number of check-ins routed to the shard (including
	// ones arriving after the shard completed); Offered of them were
	// presented to the shard's solver. Workers is the shard's lifetime
	// load account and only ever grows; Imbalance, by contrast, measures
	// over the window since the last tile migration so the metric tracks
	// the current layout (see Imbalance).
	Workers int
	Offered int
	// MigratedIn/MigratedOut count tile migrations that handed tasks to /
	// took tasks from this shard (0 without rebalancing).
	MigratedIn  int
	MigratedOut int
	// QueueDepth is the shard's CheckInAsync backlog at snapshot time —
	// workers enqueued but not yet drained (0 when the async path is
	// unused). Persistent depth at one shard while others sit empty is
	// the signature of a hot shard under skewed traffic.
	QueueDepth int
	// Latency is the shard's latency in global arrival indices: the
	// largest Worker.Index among its assigned workers. The platform's
	// latency is the max over shards.
	Latency int
}

// ShardStats snapshots every shard. Shards are locked one at a time, so the
// view is per-shard consistent but not a global atomic cut; each shard's
// Workers count is monotone non-decreasing across snapshots.
func (d *Dispatcher) ShardStats() []ShardStats {
	out := make([]ShardStats, len(d.shards))
	for i, s := range d.shards {
		s.mu.Lock()
		completed, total := s.eng.Progress()
		out[i] = ShardStats{
			Tasks:       total,
			Completed:   completed,
			Retired:     s.eng.Retired(),
			Workers:     s.routed,
			Offered:     s.offered,
			MigratedIn:  s.migratedIn,
			MigratedOut: s.migratedOut,
			Latency:     s.eng.Arrangement().Latency(),
		}
		s.mu.Unlock()
		out[i].QueueDepth = d.queues[i].depth()
	}
	return out
}

// Imbalance reports the platform's load imbalance: the busiest shard's
// routed check-ins over the per-shard mean, measured over the window since
// the last tile migration (the whole run when no tile ever migrated). 1.0
// is a perfectly even split, NumShards() means every windowed check-in
// landed on one shard; an empty window — before any check-in, or right
// after a migration — is 1.0 by convention. Under spatially uniform traffic
// fixed striping sits near 1.0 already; skewed scenarios (hotspot, flash
// crowd) push it toward NumShards() unless the balanced layout (or the
// rebalancer) counters the skew.
//
// The window restarts at each migration because lifetime accounts would
// pin the verdict to dead layouts: a shard that handed its hot tiles away
// would stay "busiest" forever on traffic it no longer serves, and the
// metric could never show that a rebalance worked.
//
// Shards are locked one at a time (no global atomic cut), so concurrent
// traffic can skew the sample toward later-read shards; the result is
// still always ≥ 1.0 because each windowed count is monotone non-negative
// and a sample's maximum never sits below its mean.
func (d *Dispatcher) Imbalance() float64 {
	maxRouted, total := 0, 0
	for _, s := range d.shards {
		s.mu.Lock()
		r := s.routed - s.routedBase
		s.mu.Unlock()
		total += r
		if r > maxRouted {
			maxRouted = r
		}
	}
	if total == 0 {
		return 1
	}
	return float64(maxRouted) * float64(len(d.shards)) / float64(total)
}

// TaskStatus is one task's lifecycle snapshot, in global terms.
type TaskStatus struct {
	ID model.TaskID
	// PostIndex is the arrival clock at post time — the largest worker
	// index seen when the task was posted (0 for initial tasks).
	PostIndex int
	// LastUsed is the global index of the last worker assigned to the task
	// (0 when it has none). While the task is incomplete this is a running
	// value; once Completed it is the task's absolute latency, and
	// LastUsed − PostIndex its relative latency.
	LastUsed  int
	Completed bool
	Retired   bool
}

// TaskStatuses snapshots every task ever posted, in global TaskID order.
// Shards are locked one at a time and only while reading their own tasks
// (per-shard consistent view; the grouping pass runs unlocked).
func (d *Dispatcher) TaskStatuses() []TaskStatus {
	d.regMu.RLock()
	records := d.records[:len(d.records):len(d.records)]
	d.regMu.RUnlock()
	out := make([]TaskStatus, len(records))
	byShard := make([][]int32, len(d.shards))
	for gid, rec := range records {
		out[gid].ID = model.TaskID(gid)
		byShard[rec.shard] = append(byShard[rec.shard], int32(gid))
	}
	// Every shard owns at least one task (empty tiles collapse at
	// partitioning), so each per-shard pass does real work.
	for si, gids := range byShard {
		s := d.shards[si]
		s.mu.Lock()
		for _, gid := range gids {
			local := records[gid].local
			out[gid].PostIndex = s.eng.TaskPostIndex(local)
			out[gid].LastUsed = s.eng.TaskLastUsed(local)
			out[gid].Completed = s.eng.TaskCompleted(local)
			out[gid].Retired = s.eng.TaskRetired(local)
		}
		s.mu.Unlock()
	}
	return out
}

// Credits appends a snapshot of the per-task accumulated Acc* credit, in
// global TaskID order over every task ever posted, to dst and returns the
// extended slice.
func (d *Dispatcher) Credits(dst []float64) []float64 {
	// Holding the registry read lock pins the dense ID space for the whole
	// merge (posts briefly wait; lock order regMu → shard mu matches
	// PostTask).
	d.regMu.RLock()
	defer d.regMu.RUnlock()
	base := len(dst)
	dst = append(dst, make([]float64, int(d.total.Load()))...)
	for si, s := range d.shards {
		s.mu.Lock()
		for local, acc := range s.eng.Arrangement().Accumulated {
			gid := s.sub.Global[local]
			// Skip evicted ghosts: a migrated task's stale source-side
			// accumulator must not overwrite the live credit owned by the
			// task's current shard (the registry names exactly one owner).
			if rec := d.records[gid]; int(rec.shard) != si || rec.local != model.TaskID(local) {
				continue
			}
			dst[base+int(gid)] = acc
		}
		s.mu.Unlock()
	}
	return dst
}

// Arrangement merges the per-shard arrangements into one over the source
// instance (plus any posted tasks): worker indices are already global, task
// IDs are mapped back via each shard's global table. Assignment pairs stay
// with the shard that made them — a migrated task contributes its
// pre-migration pairs through its old shard and later ones through its new
// owner, so the merged view is complete. Assignment credit is re-derived
// from the source accuracy model, which yields the same float additions in
// the same order as the shard engines performed, so accumulated credit
// matches Credits exactly — except across a migration, where the shard
// iteration order can reorder a task's additions and the totals agree only
// up to float-summation noise (≪ CompletionEps).
func (d *Dispatcher) Arrangement() *model.Arrangement {
	// Pin the dense ID space during the merge (see Credits).
	d.regMu.RLock()
	defer d.regMu.RUnlock()
	src := d.part.Source
	merged := model.NewArrangement(int(d.total.Load()))
	for _, s := range d.shards {
		s.mu.Lock()
		byIndex := make(map[int]model.Worker, len(s.workers))
		for _, w := range s.workers {
			byIndex[w.Index] = w
		}
		for _, p := range s.eng.Arrangement().Pairs {
			srcTask := s.sub.SourceTask(p.Task)
			w := byIndex[p.Worker]
			acc := src.Model.Predict(w, srcTask)
			merged.Add(w.Index, srcTask.ID, model.AccStar(acc))
		}
		s.mu.Unlock()
	}
	return merged
}
