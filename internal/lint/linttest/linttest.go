// Package linttest runs ltclint analyzers over fixture packages and checks
// their findings against inline expectations, in the spirit of
// golang.org/x/tools/go/analysis/analysistest but with no dependency beyond
// the standard library.
//
// A fixture directory holds one Go package. Lines that should produce a
// diagnostic carry a trailing marker:
//
//	s.tasks[i] = v // want "direct element store"
//
// The quoted string is a regular expression matched against the finding's
// message; several markers may share one line (`// want "a" "b"`). Waived
// diagnostics never reach the comparison, so a fixture line carrying an
// //ltclint:ignore directive and no want marker asserts that the waiver
// machinery actually suppressed the diagnostic.
package linttest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"ltc/internal/lint"
	"ltc/internal/lint/analysis"
	"ltc/internal/lint/load"
)

// fixtureImports are the standard-library packages fixtures may import.
// Export data is resolved once per test binary.
var fixtureImports = []string{"sync", "sync/atomic", "fmt", "errors", "context", "strings"}

var (
	exportsOnce sync.Once
	exportsMap  map[string]string
	exportsErr  error
)

func stdExports() (map[string]string, error) {
	exportsOnce.Do(func() {
		exportsMap, exportsErr = load.StdExports(fixtureImports...)
	})
	return exportsMap, exportsErr
}

// want is one expectation: a diagnostic whose message matches re, at
// file:line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Run analyzes the fixture package in dir with the single analyzer a and
// compares unwaived findings against the // want markers in the fixture
// sources. Both directions are checked: every finding needs a marker and
// every marker needs a finding.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	wants, err := parseWants(files)
	if err != nil {
		t.Fatal(err)
	}

	exports, err := stdExports()
	if err != nil {
		t.Fatalf("resolving std export data: %v", err)
	}
	fset := token.NewFileSet()
	pkg, err := load.Files(fset, "ltclint/fixture/"+filepath.Base(dir), files, exports)
	if err != nil {
		t.Fatalf("loading fixture package: %v", err)
	}

	findings, err := lint.AnalyzePackage([]*analysis.Analyzer{a}, pkg, analysis.NewFactStore(), true)
	if err != nil {
		t.Fatalf("analyzing fixture package: %v", err)
	}

	for _, f := range findings {
		if !claim(wants, f.Pos.Filename, f.Pos.Line, f.Message) {
			t.Errorf("unexpected finding at %s:%d: %s: %s",
				filepath.Base(f.Pos.Filename), f.Pos.Line, f.Analyzer, f.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("no finding matched want %q at %s:%d", w.raw, filepath.Base(w.file), w.line)
		}
	}
}

// claim marks the first unmatched want at (file, line) whose regexp matches
// message, reporting whether one existed.
func claim(wants []*want, file string, line int, message string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseWants extracts the // want markers from the fixture sources. Markers
// are textual, not AST comments, so they work on any line — including lines
// inside general declarations.
func parseWants(files []string) ([]*want, error) {
	var wants []*want
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		for i, lineText := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(lineText)
			if m == nil {
				continue
			}
			exprs, err := splitQuoted(m[1])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", file, i+1, err)
			}
			if len(exprs) == 0 {
				return nil, fmt.Errorf("%s:%d: // want marker with no expectation", file, i+1)
			}
			for _, e := range exprs {
				re, err := regexp.Compile(e)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", file, i+1, e, err)
				}
				wants = append(wants, &want{file: file, line: i + 1, re: re, raw: e})
			}
		}
	}
	sort.SliceStable(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants, nil
}

// splitQuoted parses a sequence of Go-quoted strings: `"a" "b c"` → [a, b c].
func splitQuoted(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			return nil, fmt.Errorf("want expectations must be double-quoted strings, got %q", s)
		}
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated want string in %q", s)
		}
		unq, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, fmt.Errorf("bad want string %q: %v", s[:end+1], err)
		}
		out = append(out, unq)
		s = strings.TrimSpace(s[end+1:])
	}
	return out, nil
}
