package model

import (
	"math/rand/v2"
	"testing"

	"ltc/internal/geo"
)

// pinnedInstance builds a small bounded-radius instance plus probe workers.
func pinnedInstance(t *testing.T, seed uint64, nTasks int) (*Instance, []Worker) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed^0xbeef))
	in := &Instance{
		Epsilon: 0.1,
		K:       3,
		Model:   SigmoidDistance{DMax: 25},
		MinAcc:  0.5,
	}
	for i := 0; i < nTasks; i++ {
		in.Tasks = append(in.Tasks, Task{
			ID:  TaskID(i),
			Loc: geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
		})
	}
	probes := make([]Worker, 20)
	for i := range probes {
		probes[i] = Worker{
			Index: i + 1,
			Loc:   geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
			Acc:   0.7 + rng.Float64()*0.3,
		}
	}
	return in, probes
}

// equalCandidates compares two candidate lists element by element (order and
// float bits included).
func equalCandidates(a, b []Candidate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPinnedQueryMatchesLive: pinned and live queries over an unchanging
// index must agree bitwise, for both the grid-backed and the unbounded
// (no RadiusBounder) query paths, and whether or not the query is pinned.
func TestPinnedQueryMatchesLive(t *testing.T) {
	in, probes := pinnedInstance(t, 7, 40)
	unbounded := &Instance{
		Tasks:   in.Tasks,
		Epsilon: in.Epsilon,
		K:       in.K,
		Model:   ConstantAccuracy{P: 0.9},
		MinAcc:  0.5,
	}
	for name, inst := range map[string]*Instance{"grid": in, "unbounded": unbounded} {
		ci := NewCandidateIndex(inst)
		pq := ci.NewPinnedQuery()
		if pq.Pinned() {
			t.Fatalf("%s: fresh query reports pinned", name)
		}
		var live, pinned []Candidate
		for _, w := range probes {
			live = ci.Candidates(w, live[:0])
			// Unpinned: falls back to the live snapshot.
			pinned = pq.Candidates(w, pinned[:0])
			if !equalCandidates(live, pinned) {
				t.Fatalf("%s: unpinned query diverges for worker %d", name, w.Index)
			}
			pq.Pin()
			if !pq.Pinned() {
				t.Fatalf("%s: Pin did not pin", name)
			}
			pinned = pq.Candidates(w, pinned[:0])
			if !equalCandidates(live, pinned) {
				t.Fatalf("%s: pinned query diverges for worker %d", name, w.Index)
			}
			pq.Unpin()
		}
	}
}

// TestPinnedQueryFreezesView: between Pin and Unpin the query must not see
// tasks inserted or removed on the index; after a re-Pin it must.
func TestPinnedQueryFreezesView(t *testing.T) {
	in, probes := pinnedInstance(t, 21, 30)
	ci := NewCandidateIndex(in)
	pq := ci.NewPinnedQuery()
	pq.Pin()

	var before []Candidate
	before = pq.Candidates(probes[0], before)

	// Mutate the index under the pin: drop a task the probe can reach (if
	// any) and insert a new task right at the probe's location.
	if len(before) > 0 {
		if err := ci.Remove(before[0].Task); err != nil {
			t.Fatal(err)
		}
	}
	posted := Task{ID: TaskID(ci.NumTasks()), Loc: probes[0].Loc}
	if err := ci.Insert(posted); err != nil {
		t.Fatal(err)
	}

	var frozen []Candidate
	frozen = pq.Candidates(probes[0], frozen)
	if !equalCandidates(before, frozen) {
		t.Fatalf("pinned view changed under Insert/Remove: %v -> %v", before, frozen)
	}

	// Re-pinning refreshes: the posted task (at the probe's own location, so
	// trivially eligible) must now appear and the removed one must not.
	pq.Pin()
	var after []Candidate
	after = pq.Candidates(probes[0], after)
	var fresh []Candidate
	fresh = ci.Candidates(probes[0], fresh)
	if !equalCandidates(after, fresh) {
		t.Fatalf("re-pinned view %v diverges from live view %v", after, fresh)
	}
	found := false
	for _, c := range after {
		if c.Task == posted.ID {
			found = true
		}
		if len(before) > 0 && c.Task == before[0].Task {
			t.Fatalf("removed task %d still visible after re-pin", before[0].Task)
		}
	}
	if !found {
		t.Fatalf("posted task %d not visible after re-pin: %v", posted.ID, after)
	}
	pq.Unpin()
	if pq.Pinned() {
		t.Fatal("Unpin did not unpin")
	}
}

// TestPinnedQueryAgainstBrute cross-checks a pinned run against the
// brute-force oracle over many random probes, reusing one query (and so one
// scratch buffer) for the whole run.
func TestPinnedQueryAgainstBrute(t *testing.T) {
	in, probes := pinnedInstance(t, 33, 60)
	ci := NewCandidateIndex(in)
	live := make([]bool, len(in.Tasks))
	for i := range live {
		live[i] = true
	}
	pq := ci.NewPinnedQuery()
	pq.Pin()
	defer pq.Unpin()
	var buf []Candidate
	for _, w := range probes {
		buf = pq.Candidates(w, buf[:0])
		want := bruteCandidates(in, in.Tasks, live, w)
		if !equalCandidates(buf, want) {
			t.Fatalf("worker %d: pinned %v, brute %v", w.Index, buf, want)
		}
	}
}
