package core

import (
	"ltc/internal/model"
	"ltc/internal/pqueue"
)

// AAMStrategy selects the scoring rule AAM uses for an arriving worker.
type AAMStrategy int

const (
	// StrategyHybrid is Algorithm 3 as published: Largest Gain First while
	// the average demand dominates, Largest Remaining First once single
	// difficult tasks become the bottleneck.
	StrategyHybrid AAMStrategy = iota
	// StrategyLGFOnly always scores by gain (ablation).
	StrategyLGFOnly
	// StrategyLRFOnly always scores by remaining need (ablation).
	StrategyLRFOnly
)

// AAM is the Average And Maximum hybrid online algorithm (Algorithm 3),
// inspired by McNaughton's rule: the makespan is driven by both the average
// load and the single longest job. Per arriving worker it computes
//
//	avg = Σ_t (δ − S[t]) / K   and   maxRemain = max_t (δ − S[t])
//
// and scores candidate tasks by gain min{Acc*(w,t), δ − S[t]} (LGF) when
// avg ≥ maxRemain, or by remaining need δ − S[t] (LRF) otherwise.
// Competitive ratio 7.738 under the paper's assumptions (Theorem 6).
type AAM struct {
	in       *model.Instance
	ci       *model.CandidateIndex
	state    *taskState
	strategy AAMStrategy
	topk     *pqueue.TopK[scoredCandidate]
	cands    []model.Candidate
	out      []model.TaskID

	// lgfArrivals / lrfArrivals count strategy choices, exposed for the
	// ablation experiments.
	lgfArrivals int
	lrfArrivals int
}

type scoredCandidate struct {
	model.Candidate
	score float64
}

// NewAAM returns a fresh AAM solver with the published hybrid strategy.
func NewAAM(in *model.Instance, ci *model.CandidateIndex) *AAM {
	return NewAAMWithStrategy(in, ci, StrategyHybrid)
}

// NewAAMWithStrategy returns an AAM solver with an explicit strategy,
// used by the LGF/LRF ablation benchmarks.
func NewAAMWithStrategy(in *model.Instance, ci *model.CandidateIndex, s AAMStrategy) *AAM {
	return &AAM{
		in:       in,
		ci:       ci,
		state:    newTaskState(len(in.Tasks), in.Delta()),
		strategy: s,
		// Ties keep the first-seen task, matching Example 4's walk-through.
		topk: pqueue.NewTopK(in.K, func(a, b scoredCandidate) bool {
			return a.score < b.score
		}),
	}
}

// Name implements Online.
func (a *AAM) Name() string {
	switch a.strategy {
	case StrategyLGFOnly:
		return "AAM-LGF"
	case StrategyLRFOnly:
		return "AAM-LRF"
	default:
		return "AAM"
	}
}

// Done implements Online.
func (a *AAM) Done() bool { return a.state.allDone() }

// StrategyCounts reports how many arrivals used LGF and LRF scoring.
func (a *AAM) StrategyCounts() (lgf, lrf int) { return a.lgfArrivals, a.lrfArrivals }

// Arrive implements Online (Algorithm 3 lines 4-15).
func (a *AAM) Arrive(w model.Worker) []model.TaskID { return a.ArriveVia(w, a.ci) }

// ArriveVia implements BatchOnline: Arrive drawing candidates from src.
func (a *AAM) ArriveVia(w model.Worker, src model.CandidateSource) []model.TaskID {
	if a.state.allDone() {
		return nil
	}
	useLGF := true
	switch a.strategy {
	case StrategyLGFOnly:
		useLGF = true
	case StrategyLRFOnly:
		useLGF = false
	default:
		total, maxRemain := a.state.totalNeed()
		avg := total / float64(a.in.K)
		useLGF = avg >= maxRemain
	}
	if useLGF {
		a.lgfArrivals++
	} else {
		a.lrfArrivals++
	}

	a.cands = src.Candidates(w, a.cands[:0])
	a.topk.Reset()
	for _, c := range a.cands {
		if a.state.done(c.Task) {
			continue
		}
		score := a.state.need(c.Task) // LRF: δ − S[t]
		if useLGF {
			if c.AccStar < score {
				score = c.AccStar // LGF: min{Acc*, δ − S[t]}
			}
		}
		a.topk.Offer(scoredCandidate{Candidate: c, score: score})
	}
	a.out = a.out[:0]
	for a.topk.Len() > 0 {
		c := a.topk.PopMin()
		a.state.add(c.Task, c.AccStar)
		a.out = append(a.out, c.Task)
	}
	return a.out
}
