package model

import (
	"errors"
	"sync"
	"testing"

	"ltc/internal/geo"
)

// TestPartitionMigrateTileReroutes: migrating a task tile reroutes the tile
// itself and every free tile it serves, and nothing else; migrating it back
// restores the original table.
func TestPartitionMigrateTileReroutes(t *testing.T) {
	in := partitionInstance(300, 7)
	p, err := PartitionInstanceOpts(in, 8, PartitionOptions{Balanced: true})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Rebalanceable() {
		t.Fatal("balanced multi-shard partition must be rebalanceable")
	}
	owners := p.OwnerTiles()
	if len(owners) == 0 {
		t.Fatal("no owner tiles")
	}
	tile := owners[0]
	if p.OwnerTile(in.Tasks[0].Loc) < 0 {
		t.Fatal("OwnerTile must resolve on a balanced layout")
	}

	before := make([]int, p.NumTiles())
	for c := range before {
		before[c] = p.TileShard(c)
	}
	from := p.TileShard(tile)
	to := (from + 1) % p.NumShards()

	if err := p.MigrateTile(tile, to); err != nil {
		t.Fatal(err)
	}
	for c := range before {
		got := p.TileShard(c)
		owned := p.OwnerTile(geo.Point{
			X: p.origin.X + (float64(c%p.cols)+0.5)*p.tileW,
			Y: p.origin.Y + (float64(c/p.cols)+0.5)*p.tileH,
		}) == tile
		switch {
		case owned && got != to:
			t.Fatalf("tile %d owned by %d still routes to %d, want %d", c, tile, got, to)
		case !owned && got != before[c]:
			t.Fatalf("unowned tile %d moved from %d to %d", c, before[c], got)
		}
	}
	// Locate agrees with the swapped table for a point inside the tile.
	center := geo.Point{
		X: p.origin.X + (float64(tile%p.cols)+0.5)*p.tileW,
		Y: p.origin.Y + (float64(tile/p.cols)+0.5)*p.tileH,
	}
	if got := p.Locate(center); got != to {
		t.Fatalf("Locate inside migrated tile: %d, want %d", got, to)
	}
	if s, o := p.LocateOwner(center); s != to || o != tile {
		t.Fatalf("LocateOwner inside migrated tile: (%d,%d), want (%d,%d)", s, o, to, tile)
	}

	// Round trip restores the original routing exactly.
	if err := p.MigrateTile(tile, from); err != nil {
		t.Fatal(err)
	}
	for c := range before {
		if p.TileShard(c) != before[c] {
			t.Fatalf("tile %d not restored: %d, want %d", c, p.TileShard(c), before[c])
		}
	}
}

// TestPartitionMigrateTileErrors covers the rejection paths: striped
// layouts, free tiles, and out-of-range tiles/shards.
func TestPartitionMigrateTileErrors(t *testing.T) {
	in := partitionInstance(200, 11)
	striped, err := PartitionInstance(in, 4)
	if err != nil {
		t.Fatal(err)
	}
	if striped.Rebalanceable() {
		t.Fatal("striped partition claims rebalanceable")
	}
	if err := striped.MigrateTile(0, 0); !errors.Is(err, ErrNotRebalanceable) {
		t.Fatalf("striped migrate: %v, want ErrNotRebalanceable", err)
	}
	if got := striped.OwnerTile(in.Tasks[0].Loc); got != -1 {
		t.Fatalf("striped OwnerTile: %d, want -1", got)
	}
	if s, o := striped.LocateOwner(in.Tasks[0].Loc); o != -1 || s != striped.Locate(in.Tasks[0].Loc) {
		t.Fatalf("striped LocateOwner: (%d,%d)", s, o)
	}
	if tiles := striped.OwnerTiles(); len(tiles) != 0 {
		t.Fatalf("striped OwnerTiles: %d entries", len(tiles))
	}

	p, err := PartitionInstanceOpts(in, 4, PartitionOptions{Balanced: true})
	if err != nil {
		t.Fatal(err)
	}
	// A free tile (not an owner) must be rejected.
	free := -1
	for c := 0; c < p.NumTiles(); c++ {
		isOwner := false
		for _, o := range p.OwnerTiles() {
			if o == c {
				isOwner = true
				break
			}
		}
		if !isOwner {
			free = c
			break
		}
	}
	if free >= 0 {
		if err := p.MigrateTile(free, 0); err == nil {
			t.Fatal("free-tile migrate accepted")
		}
	}
	if err := p.MigrateTile(-1, 0); err == nil {
		t.Fatal("negative tile accepted")
	}
	if err := p.MigrateTile(p.NumTiles(), 0); err == nil {
		t.Fatal("out-of-range tile accepted")
	}
	if err := p.MigrateTile(p.OwnerTiles()[0], -1); err == nil {
		t.Fatal("negative shard accepted")
	}
	if err := p.MigrateTile(p.OwnerTiles()[0], p.NumShards()); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}

// TestPartitionLocateDuringMigration hammers Locate/LocateOwner from readers
// while a writer migrates a tile back and forth: every read must return one
// of the two legal shards (race detector covers the memory model).
func TestPartitionLocateDuringMigration(t *testing.T) {
	in := partitionInstance(300, 13)
	p, err := PartitionInstanceOpts(in, 8, PartitionOptions{Balanced: true})
	if err != nil {
		t.Fatal(err)
	}
	tile := p.OwnerTiles()[0]
	from := p.TileShard(tile)
	to := (from + 1) % p.NumShards()
	center := geo.Point{
		X: p.origin.X + (float64(tile%p.cols)+0.5)*p.tileW,
		Y: p.origin.Y + (float64(tile/p.cols)+0.5)*p.tileH,
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if s := p.Locate(center); s != from && s != to {
					t.Errorf("Locate mid-migration: %d", s)
					return
				}
				if s, o := p.LocateOwner(center); o != tile || (s != from && s != to) {
					t.Errorf("LocateOwner mid-migration: (%d,%d)", s, o)
					return
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		target := to
		if i%2 == 1 {
			target = from
		}
		if err := p.MigrateTile(tile, target); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := p.MigrateTile(tile, from); err != nil {
		t.Fatal(err)
	}
}

// TestLocateOwnerWithoutOwnershipStructure: striped layouts carry no tile
// ownership, so LocateOwner degrades to Locate plus a -1 owner tile —
// including on task-free tiles, where routing falls back to the nearest
// initial task — and TileOf stays inside the grid everywhere.
func TestLocateOwnerWithoutOwnershipStructure(t *testing.T) {
	in := partitionInstance(3, 1)
	p, err := PartitionInstance(in, 16)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rebalanceable() {
		t.Fatal("striped partition claims to be rebalanceable")
	}
	loc := in.Tasks[0].Loc
	if s, o := p.LocateOwner(loc); s != p.Locate(loc) || o != -1 {
		t.Fatalf("LocateOwner(task tile) = (%d, %d), want (%d, -1)", s, o, p.Locate(loc))
	}
	if c := p.TileOf(loc); c < 0 || c >= p.NumTiles() {
		t.Fatalf("TileOf = %d, outside the %d-tile grid", c, p.NumTiles())
	}
	foundEmpty := false
scan:
	for x := 0.0; x <= 500; x += 25 {
		for y := 0.0; y <= 500; y += 25 {
			pt := geo.Point{X: x, Y: y}
			if p.tileShard[p.TileOf(pt)] >= 0 {
				continue
			}
			if s, o := p.LocateOwner(pt); s != p.Locate(pt) || o != -1 {
				t.Fatalf("LocateOwner(empty tile) = (%d, %d), want (%d, -1)", s, o, p.Locate(pt))
			}
			foundEmpty = true
			break scan
		}
	}
	if !foundEmpty {
		t.Fatal("no task-free tile on a 3-task striped layout")
	}
}
