// Command facebookpoi replays the paper's motivating scenario (§I, Fig. 1):
// a social platform wants opening-hours style binary facts about three Hong
// Kong POIs — Think Cafe, Yee Shun Restaurant and SOGO — and pushes
// questions to users as they check in nearby. Historical accuracies follow
// Table I; the stream is the paper's w1..w8.
//
// The example runs the two proposed online algorithms side by side through
// the streaming Session API and then audits the answer quality.
package main

import (
	"fmt"
	"log"

	"ltc"
)

var poiNames = []string{"Think Cafe", "Yee Shun Restaurant", "SOGO Hong Kong"}

// tableI is the paper's Table I: predicted accuracy of worker w (column) on
// task t (row).
var tableI = [][]float64{
	{0.96, 0.98, 0.98, 0.98, 0.96, 0.96, 0.94, 0.94},
	{0.98, 0.96, 0.96, 0.98, 0.94, 0.96, 0.96, 0.94},
	{0.96, 0.96, 0.96, 0.98, 0.94, 0.94, 0.96, 0.96},
}

func buildInstance() *ltc.Instance {
	in := &ltc.Instance{
		Epsilon: 0.2, // Example 2's tolerable error rate: δ = 2·ln 5 ≈ 3.22
		K:       2,   // every user answers at most two questions per check-in
		Model:   ltc.MatrixAccuracy{Vals: tableI},
		MinAcc:  0.66,
	}
	for t := range poiNames {
		in.Tasks = append(in.Tasks, ltc.Task{ID: ltc.TaskID(t)})
	}
	for w := 1; w <= 8; w++ {
		in.Workers = append(in.Workers, ltc.Worker{Index: w, Acc: 0.9})
	}
	return in
}

func streamWith(algo ltc.Algorithm) {
	in := buildInstance()
	sess, err := ltc.NewSession(in, algo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n--- streaming check-ins through %s ---\n", algo)
	done, total := 0, len(in.Tasks)
	for _, w := range in.Workers {
		if sess.Done() {
			break
		}
		// The v2 receipt carries everything the check-in decided — the
		// granted tasks, their credit, and which POIs just completed — so
		// the loop never polls Progress.
		receipt, err := sess.Arrive(w)
		if err != nil {
			log.Fatal(err)
		}
		if len(receipt.Assignments) == 0 {
			fmt.Printf("w%d checks in: no questions pushed\n", w.Index)
			continue
		}
		names := make([]string, len(receipt.Assignments))
		for i, g := range receipt.Assignments {
			names[i] = poiNames[g.Task]
			if g.Completed {
				done++
			}
		}
		fmt.Printf("w%d checks in: asked about %v (%d/%d POIs complete)\n",
			w.Index, names, done, total)
	}
	fmt.Printf("%s latency: all POIs verified after %d check-ins\n", algo, sess.Latency())

	rep := ltc.VerifyQuality(in, sess.Arrangement(), 500, 42)
	fmt.Printf("%s empirical error: %.4f (tolerable ε = %.2f)\n", algo, rep.ErrorRate, in.Epsilon)
}

func main() {
	fmt.Println("Latency-oriented task completion: Facebook POI scenario (paper §I)")
	fmt.Printf("POIs: %v\n", poiNames)
	// LAF needs all 8 check-ins (paper Example 3); AAM finishes earlier.
	streamWith(ltc.LAF)
	streamWith(ltc.AAM)

	// With hindsight (offline), how well could the platform have done?
	in := buildInstance()
	exact, err := ltc.Solve(in, ltc.Exact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noffline optimum for comparison: latency %d\n", exact.Latency)
}
