//go:build lockdebug

package dispatch

import (
	"strings"
	"sync"
	"testing"

	"ltc/internal/model"
)

// mustPanic runs f and asserts it panics with a message containing want.
func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want one containing %q", want)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v; want message containing %q", r, want)
		}
	}()
	f()
}

// cleanup drops any tracking state the panicking sequences left behind so
// the cases stay independent.
func ldReset() {
	ldMu.Lock()
	defer ldMu.Unlock()
	for g := range ldHeld {
		delete(ldHeld, g)
	}
}

func TestLockdebugCleanSequences(t *testing.T) {
	defer ldReset()
	// Full descending-class nesting in declared order.
	ldLock("regMu", 0)
	ldLock("shard", 3)
	ldUnlock("shard", 3)
	ldUnlock("regMu", 0)
	// Same-class ascending pair (the migration protocol).
	ldLock("regMu", 0)
	ldLock("shard", 1)
	ldLock("shard", 4)
	ldUnlock("shard", 4)
	ldUnlock("shard", 1)
	ldUnlock("regMu", 0)
	// Leaf with nothing held, then publish with nothing held.
	ldLock("leaf", 0)
	ldUnlock("leaf", 0)
	ldAssertNoneHeld("bus.Publish")
}

func TestLockdebugViolationsPanic(t *testing.T) {
	cases := []struct {
		name string
		want string
		f    func()
	}{
		{"inversion", "violates the lock order", func() {
			ldLock("shard", 0)
			ldLock("regMu", 0)
		}},
		{"already held", "already held", func() {
			ldLock("shard", 2)
			ldLock("shard", 2)
		}},
		{"same class descending", "ascending order", func() {
			ldLock("shard", 4)
			ldLock("shard", 1)
		}},
		{"leaf under lock", "leaf lock acquired while holding", func() {
			ldLock("shard", 0)
			ldLock("leaf", 0)
		}},
		{"publish under lock", "release every dispatch lock before publishing", func() {
			ldLock("shard", 0)
			ldAssertNoneHeld("bus.Publish")
		}},
		{"unlock not held", "does not hold", func() {
			ldUnlock("queue", 0)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer ldReset()
			mustPanic(t, tc.want, tc.f)
		})
	}
}

// TestLockdebugStress drives every lock path concurrently — synchronous and
// batch check-ins, async ingestion with Flush, the task lifecycle, explicit
// tile migrations, subscribers — with the runtime checker armed. Any lock
// acquired out of order panics the test. Run under -race in the nightly job.
func TestLockdebugStress(t *testing.T) {
	in := testInstance(t, 0.05)
	d, err := New(in, 4, lafFactory, Options{Balanced: true, QueueCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	sub := d.Subscribe(256)
	defer sub.Close()

	nextIdx := len(in.Workers)
	var idxMu sync.Mutex
	claim := func() int {
		idxMu.Lock()
		defer idxMu.Unlock()
		nextIdx++
		return nextIdx
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				w := in.Workers[(seed*31+i)%len(in.Workers)]
				w.Index = claim()
				if _, err := d.CheckIn(w); err != nil && err != ErrDone {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				w := in.Workers[(seed*17+i)%len(in.Workers)]
				w.Index = claim()
				if err := d.CheckInAsync(w); err != nil && err != ErrDone && err != ErrClosed {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			loc := in.Tasks[i%len(in.Tasks)].Loc
			id, err := d.PostTask(model.Task{Loc: loc})
			if err != nil {
				t.Error(err)
				return
			}
			if i%2 == 0 {
				if err := d.RetireTask(id); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	tiles := d.part.OwnerTiles()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			tile := tiles[i%len(tiles)]
			if err := d.MigrateTile(tile, i%d.NumShards()); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	d.Flush()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Every lock released: the tracker must be empty.
	ldMu.Lock()
	defer ldMu.Unlock()
	if len(ldHeld) != 0 {
		t.Fatalf("locks still tracked after shutdown: %v", ldHeld)
	}
}
