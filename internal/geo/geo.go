// Package geo implements the planar geometry substrate of the reproduction:
// points and distances on the paper's 1000×1000 grid, bounding boxes, convex
// hulls (used to place tasks inside the convex region of worker check-ins,
// as in the paper's real-dataset setup), and an equirectangular projection
// for converting latitude/longitude check-ins to grid units.
package geo

import (
	"fmt"
	"math"
)

// Point is a location in grid units. On the synthetic dataset one unit is a
// 10 m × 10 m cell of the paper's 1000×1000 grid.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. Cheaper
// than Dist when only comparisons are needed.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// cross returns the z-component of (b-a) × (c-a); positive when the turn
// a→b→c is counter-clockwise.
func cross(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// Rect is an axis-aligned bounding box. Min is the lower-left corner and
// Max the upper-right; a Rect with Min==Max contains exactly one point.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanned by two arbitrary corners.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// BoundingRect returns the tightest Rect containing all pts. ok is false for
// empty input.
func BoundingRect(pts []Point) (r Rect, ok bool) {
	if len(pts) == 0 {
		return Rect{}, false
	}
	r = Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		r.Min.X = math.Min(r.Min.X, p.X)
		r.Min.Y = math.Min(r.Min.Y, p.Y)
		r.Max.X = math.Max(r.Max.X, p.X)
		r.Max.Y = math.Max(r.Max.Y, p.Y)
	}
	return r, true
}

// Contains reports whether p lies inside r (boundaries inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Intersects reports whether r and s share any point.
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// ConvexHull returns the convex hull of pts in counter-clockwise order
// using Andrew's monotone chain. Collinear boundary points are dropped.
// Degenerate inputs (fewer than 3 distinct points, or all collinear) return
// the distinct extreme points (0, 1 or 2 of them, or the collinear chain's
// two endpoints).
func ConvexHull(pts []Point) []Point {
	n := len(pts)
	if n == 0 {
		return nil
	}
	sorted := append([]Point(nil), pts...)
	// Sort by (X, Y) lexicographically.
	sortPoints(sorted)
	// Deduplicate.
	uniq := sorted[:1]
	for _, p := range sorted[1:] {
		if p != uniq[len(uniq)-1] {
			uniq = append(uniq, p)
		}
	}
	if len(uniq) < 3 {
		return uniq
	}
	hull := make([]Point, 0, 2*len(uniq))
	// Lower hull.
	for _, p := range uniq {
		for len(hull) >= 2 && cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := len(uniq) - 2; i >= 0; i-- {
		p := uniq[i]
		for len(hull) >= lower && cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	hull = hull[:len(hull)-1] // last point repeats the first
	if len(hull) < 3 {
		// All input points collinear: report the two extremes.
		return []Point{uniq[0], uniq[len(uniq)-1]}
	}
	return hull
}

func sortPoints(pts []Point) {
	// Insertion-free: use sort.Slice equivalent inline to avoid importing
	// sort for a single call site... plain sort is clearer.
	// (kept as a helper so the hull code reads top-down)
	quickSortPoints(pts, 0, len(pts)-1)
}

func quickSortPoints(pts []Point, lo, hi int) {
	for lo < hi {
		if hi-lo < 12 {
			for i := lo + 1; i <= hi; i++ {
				for j := i; j > lo && lessPoint(pts[j], pts[j-1]); j-- {
					pts[j], pts[j-1] = pts[j-1], pts[j]
				}
			}
			return
		}
		mid := lo + (hi-lo)/2
		if lessPoint(pts[mid], pts[lo]) {
			pts[mid], pts[lo] = pts[lo], pts[mid]
		}
		if lessPoint(pts[hi], pts[lo]) {
			pts[hi], pts[lo] = pts[lo], pts[hi]
		}
		if lessPoint(pts[hi], pts[mid]) {
			pts[hi], pts[mid] = pts[mid], pts[hi]
		}
		pivot := pts[mid]
		i, j := lo, hi
		for i <= j {
			for lessPoint(pts[i], pivot) {
				i++
			}
			for lessPoint(pivot, pts[j]) {
				j--
			}
			if i <= j {
				pts[i], pts[j] = pts[j], pts[i]
				i++
				j--
			}
		}
		if j-lo < hi-i {
			quickSortPoints(pts, lo, j)
			lo = i
		} else {
			quickSortPoints(pts, i, hi)
			hi = j
		}
	}
}

func lessPoint(a, b Point) bool {
	if a.X != b.X {
		return a.X < b.X
	}
	return a.Y < b.Y
}

// InConvexHull reports whether p lies inside or on the boundary of the
// convex polygon hull (counter-clockwise, as returned by ConvexHull).
// Degenerate hulls (point, segment) are handled: containment then means
// coincidence with the point or lying on the segment.
func InConvexHull(hull []Point, p Point) bool {
	switch len(hull) {
	case 0:
		return false
	case 1:
		return hull[0] == p
	case 2:
		// On segment: collinear and within the bounding box.
		if cross(hull[0], hull[1], p) != 0 {
			return false
		}
		return NewRect(hull[0], hull[1]).Contains(p)
	}
	for i := range hull {
		j := (i + 1) % len(hull)
		if cross(hull[i], hull[j], p) < 0 {
			return false
		}
	}
	return true
}

// PolygonArea returns the (positive) area of a simple polygon given in
// counter-clockwise order; 0 for degenerate inputs.
func PolygonArea(poly []Point) float64 {
	if len(poly) < 3 {
		return 0
	}
	var twice float64
	for i := range poly {
		j := (i + 1) % len(poly)
		twice += poly[i].X*poly[j].Y - poly[j].X*poly[i].Y
	}
	return math.Abs(twice) / 2
}

// EarthRadiusMeters is the mean Earth radius used by the projection.
const EarthRadiusMeters = 6371000.0

// LatLon is a geographic coordinate in degrees.
type LatLon struct {
	Lat, Lon float64
}

// Projection maps latitude/longitude onto the paper's grid coordinate
// system (1 unit = UnitMeters metres) via an equirectangular projection
// centred on Origin. At city scale (tens of km) the distortion is far below
// the dmax granularity the accuracy model cares about.
type Projection struct {
	Origin     LatLon
	UnitMeters float64
	cosLat     float64
}

// NewProjection returns a projection centred at origin with the given grid
// unit size in metres (the paper uses 10 m units).
func NewProjection(origin LatLon, unitMeters float64) *Projection {
	if unitMeters <= 0 {
		panic("geo: unitMeters must be positive")
	}
	return &Projection{
		Origin:     origin,
		UnitMeters: unitMeters,
		cosLat:     math.Cos(origin.Lat * math.Pi / 180),
	}
}

// ToGrid converts a geographic coordinate to grid units.
func (pr *Projection) ToGrid(ll LatLon) Point {
	dLat := (ll.Lat - pr.Origin.Lat) * math.Pi / 180
	dLon := (ll.Lon - pr.Origin.Lon) * math.Pi / 180
	return Point{
		X: dLon * pr.cosLat * EarthRadiusMeters / pr.UnitMeters,
		Y: dLat * EarthRadiusMeters / pr.UnitMeters,
	}
}

// ToLatLon converts a grid point back to geographic coordinates.
func (pr *Projection) ToLatLon(p Point) LatLon {
	return LatLon{
		Lat: pr.Origin.Lat + p.Y*pr.UnitMeters/EarthRadiusMeters*180/math.Pi,
		Lon: pr.Origin.Lon + p.X*pr.UnitMeters/(EarthRadiusMeters*pr.cosLat)*180/math.Pi,
	}
}

// Haversine returns the great-circle distance between two coordinates in
// metres. Used to validate the projection error in tests.
func Haversine(a, b LatLon) float64 {
	const rad = math.Pi / 180
	lat1, lat2 := a.Lat*rad, b.Lat*rad
	dLat := (b.Lat - a.Lat) * rad
	dLon := (b.Lon - a.Lon) * rad
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * EarthRadiusMeters * math.Asin(math.Min(1, math.Sqrt(s)))
}
