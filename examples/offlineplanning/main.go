// Command offlineplanning exercises the offline side of the paper (§III):
// when the platform knows the whole worker schedule in advance (e.g. a
// recurring volunteer roster), MCF-LTC plans task bundles with minimum-cost
// flows. The example compares it against the Base-off baseline and — the
// instance being small — the exact branch-and-bound optimum, reporting the
// empirical approximation ratio.
package main

import (
	"fmt"
	"log"

	"ltc"
)

func main() {
	// A small neighbourhood: 3 POI tasks, 16 scheduled workers (kept tiny
	// so the exact branch-and-bound optimum stays tractable — the offline
	// LTC problem is NP-hard).
	cfg := ltc.DefaultWorkload().Scale(0.002)
	cfg.NumTasks = 3
	cfg.NumWorkers = 16
	cfg.K = 2
	cfg.Epsilon = 0.25
	cfg.Seed = 7
	in, err := cfg.Generate()
	if err != nil {
		log.Fatal(err)
	}
	if err := ltc.CheckFeasible(in); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline planning over %d tasks / %d scheduled workers (δ=%.2f, K=%d)\n\n",
		len(in.Tasks), len(in.Workers), in.Delta(), in.K)

	exact, err := ltc.Solve(in, ltc.Exact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact optimum:  latency %2d  (%d assignments, %v search)\n",
		exact.Latency, len(exact.Arrangement.Pairs), exact.Elapsed)

	for _, algo := range []ltc.Algorithm{ltc.MCFLTC, ltc.BaseOff} {
		res, err := ltc.Solve(in, algo)
		if err != nil {
			log.Fatal(err)
		}
		ratio := float64(res.Latency) / float64(exact.Latency)
		fmt.Printf("%-14s  latency %2d  (ratio %.2f vs optimum, runtime %v)\n",
			algo+":", res.Latency, ratio, res.Elapsed)
	}

	fmt.Println("\npaper guarantee: MCF-LTC is a 7.5-approximation (Theorem 3);")
	fmt.Println("on benign geometric instances it sits far below that bound.")

	// Show what the flow-based plan actually bundles for the first workers.
	res, err := ltc.Solve(in, ltc.MCFLTC)
	if err != nil {
		log.Fatal(err)
	}
	byWorker := map[int][]ltc.TaskID{}
	for _, p := range res.Arrangement.Pairs {
		byWorker[p.Worker] = append(byWorker[p.Worker], p.Task)
	}
	fmt.Println("\nMCF-LTC bundles (first 10 scheduled workers):")
	for w := 1; w <= 10; w++ {
		if tasks, ok := byWorker[w]; ok {
			fmt.Printf("  worker %2d -> tasks %v\n", w, tasks)
		}
	}
}
