package core

import "ltc/internal/model"

// taskState is the shared bookkeeping of every LTC algorithm: the per-task
// accumulated Acc* credit S[t] (line "S stores accumulated value for each
// task" of Algorithms 1-3) plus a count of tasks still below δ so AllDone
// is O(1).
type taskState struct {
	delta     float64
	s         []float64
	remaining int
}

func newTaskState(numTasks int, delta float64) *taskState {
	return &taskState{
		delta:     delta,
		s:         make([]float64, numTasks),
		remaining: numTasks,
	}
}

// done reports whether task t has reached the quality threshold.
func (ts *taskState) done(t model.TaskID) bool {
	return model.Completed(ts.s[t], ts.delta)
}

// add credits task t and reports whether this credit completed it.
func (ts *taskState) add(t model.TaskID, credit float64) bool {
	was := ts.done(t)
	ts.s[t] += credit
	if !was && ts.done(t) {
		ts.remaining--
		return true
	}
	return false
}

// allDone reports whether every task has reached δ.
func (ts *taskState) allDone() bool { return ts.remaining == 0 }

// need returns max(0, δ − S[t]): the credit task t still needs.
func (ts *taskState) need(t model.TaskID) float64 {
	n := ts.delta - ts.s[t]
	if n < 0 {
		return 0
	}
	return n
}

// totalNeed returns Σ_t max(0, δ − S[t]) and the largest single-task need —
// the "average × K" numerator and "maximum" of AAM's switching rule.
func (ts *taskState) totalNeed() (sum, maxNeed float64) {
	for t := range ts.s {
		n := ts.need(model.TaskID(t))
		if n > 0 {
			sum += n
			if n > maxNeed {
				maxNeed = n
			}
		}
	}
	return sum, maxNeed
}
