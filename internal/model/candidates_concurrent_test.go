package model

import (
	"math/rand/v2"
	"sync"
	"testing"

	"ltc/internal/geo"
)

// concurrentTestInstance builds a geometric instance with a bounded
// eligibility radius, so Candidates exercises the grid path (the one that
// used to share a scratch buffer across callers).
func concurrentTestInstance(nTasks, nWorkers int) *Instance {
	rng := rand.New(rand.NewPCG(41, 43))
	in := &Instance{
		Epsilon: 0.1,
		K:       4,
		Model:   SigmoidDistance{DMax: 30},
		MinAcc:  0.5,
	}
	for t := 0; t < nTasks; t++ {
		in.Tasks = append(in.Tasks, Task{
			ID:  TaskID(t),
			Loc: geo.Point{X: rng.Float64() * 300, Y: rng.Float64() * 300},
		})
	}
	for w := 1; w <= nWorkers; w++ {
		in.Workers = append(in.Workers, Worker{
			Index: w,
			Loc:   geo.Point{X: rng.Float64() * 300, Y: rng.Float64() * 300},
			Acc:   0.7 + rng.Float64()*0.3,
		})
	}
	return in
}

// TestCandidateIndexConcurrent is the regression test for the old idBuf
// aliasing hazard: one shared CandidateIndex must serve Candidates,
// EligibleWorkerLists and MaxPossibleCredit from many goroutines at once
// and agree with a serial baseline. Run it with -race.
func TestCandidateIndexConcurrent(t *testing.T) {
	in := concurrentTestInstance(500, 400)
	ci := NewCandidateIndex(in)
	if ci.Radius() <= 0 || ci.Radius() > 1e6 {
		t.Fatalf("expected a bounded radius (grid path), got %v", ci.Radius())
	}

	// Serial baselines.
	want := make([][]Candidate, len(in.Workers))
	for i, w := range in.Workers {
		want[i] = ci.Candidates(w, nil)
	}
	wantCredit := ci.MaxPossibleCredit()
	wantLists := ci.EligibleWorkerLists()

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var buf []Candidate
			for round := 0; round < 30; round++ {
				switch (g + round) % 3 {
				case 0:
					for i, w := range in.Workers {
						buf = ci.Candidates(w, buf[:0])
						if len(buf) != len(want[i]) {
							t.Errorf("worker %d: %d candidates, want %d", w.Index, len(buf), len(want[i]))
							return
						}
						for j := range buf {
							if buf[j] != want[i][j] {
								t.Errorf("worker %d candidate %d drifted", w.Index, j)
								return
							}
						}
					}
				case 1:
					got := ci.MaxPossibleCredit()
					for tid := range got {
						if got[tid] != wantCredit[tid] {
							t.Errorf("MaxPossibleCredit[%d] drifted", tid)
							return
						}
					}
				default:
					got := ci.EligibleWorkerLists()
					for tid := range got {
						if len(got[tid]) != len(wantLists[tid]) {
							t.Errorf("EligibleWorkerLists[%d] drifted", tid)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestCandidatesCallerBuffersIndependent verifies the fix for the aliasing
// hazard directly: interleaved queries with distinct dst buffers must not
// stomp each other's results.
func TestCandidatesCallerBuffersIndependent(t *testing.T) {
	in := concurrentTestInstance(200, 50)
	ci := NewCandidateIndex(in)
	a := ci.Candidates(in.Workers[0], nil)
	aCopy := append([]Candidate(nil), a...)
	b := ci.Candidates(in.Workers[1], nil)
	_ = b
	for i := range a {
		if a[i] != aCopy[i] {
			t.Fatalf("first query's results mutated by second query at %d", i)
		}
	}
}
