package lint

import (
	"go/ast"
	"go/types"

	"ltc/internal/lint/analysis"
)

// CowSnapshot protects fields annotated //ltc:cow — slices published inside
// copy-on-write snapshots (CandidateIndex cells, snapshot task/live arrays).
// Readers hold these slices without locks, so published backing arrays must
// never be written again. Allowed mutation shapes:
//
//   - whole-field replacement `x.f = <expr>` (the publish step), and
//   - full-slice-expression copy-append `append(x.f[:n:n], ...)`, whose
//     capped capacity forces a fresh backing array.
//
// Direct element stores, bare `append(x.f, ...)`, two-index slice appends,
// and `copy` into the field are diagnostics. Local aliases of a cow field
// are not tracked; keep mutations syntactically rooted at the field.
var CowSnapshot = &analysis.Analyzer{
	Name: "cowsnapshot",
	Doc:  "restrict //ltc:cow snapshot fields to copy-on-write mutation idioms",
	Run:  runCowSnapshot,
}

func runCowSnapshot(pass *analysis.Pass) error {
	anns := annotationsFor(pass)
	if len(anns.Cow) == 0 {
		return nil
	}
	cowSel := func(e ast.Expr) (types.Object, bool) {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return nil, false
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil || !anns.Cow[obj] {
			return nil, false
		}
		return obj, true
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
						if obj, ok := cowSel(idx.X); ok {
							pass.Reportf(lhs.Pos(),
								"direct element store into copy-on-write field %s; published snapshots must not be written (rebuild locally, then replace the field)", obj.Name())
						}
					}
				}
			case *ast.IncDecStmt:
				if idx, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok {
					if obj, ok := cowSel(idx.X); ok {
						pass.Reportf(n.Pos(),
							"direct element mutation of copy-on-write field %s", obj.Name())
					}
				}
			case *ast.CallExpr:
				id, ok := ast.Unparen(n.Fun).(*ast.Ident)
				if !ok {
					return true
				}
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				switch id.Name {
				case "append":
					if len(n.Args) == 0 {
						return true
					}
					arg0 := ast.Unparen(n.Args[0])
					if obj, ok := cowSel(arg0); ok {
						pass.Reportf(n.Pos(),
							"bare append into copy-on-write field %s may write a published backing array; use a full-slice-expression copy-append (append(x.%s[:n:n], ...))", obj.Name(), obj.Name())
						return true
					}
					if se, ok := arg0.(*ast.SliceExpr); ok {
						if obj, ok := cowSel(se.X); ok && !se.Slice3 {
							pass.Reportf(n.Pos(),
								"append into two-index slice of copy-on-write field %s may write a published backing array; use a full slice expression with capped capacity", obj.Name())
						}
					}
				case "copy":
					if len(n.Args) < 1 {
						return true
					}
					dst := ast.Unparen(n.Args[0])
					if se, ok := dst.(*ast.SliceExpr); ok {
						dst = ast.Unparen(se.X)
					}
					if obj, ok := cowSel(dst); ok {
						pass.Reportf(n.Pos(),
							"copy into copy-on-write field %s overwrites a published backing array", obj.Name())
					}
				}
			}
			return true
		})
	}
	return nil
}
