package flow

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestSingleEdge(t *testing.T) {
	g := NewNetwork(2)
	e := g.AddEdge(0, 1, 5, 2.0)
	res, err := g.MinCostMaxFlow(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 5 || res.Cost != 10 {
		t.Fatalf("res = %+v, want flow 5 cost 10", res)
	}
	if g.Flow(e) != 5 || g.Residual(e) != 0 {
		t.Fatalf("edge flow %d residual %d", g.Flow(e), g.Residual(e))
	}
	if err := g.CheckConservation(0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestChoosesCheaperPath(t *testing.T) {
	// Two parallel 2-hop paths, one cheap one expensive; capacity forces one
	// unit on each, cheap first.
	g := NewNetwork(4)
	g.AddEdge(0, 1, 1, 1.0)
	g.AddEdge(1, 3, 1, 1.0)
	g.AddEdge(0, 2, 1, 10.0)
	g.AddEdge(2, 3, 1, 10.0)
	res, err := g.MinCostMaxFlow(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 2 || res.Cost != 22 {
		t.Fatalf("res = %+v, want flow 2 cost 22", res)
	}
}

func TestNegativeCostEdges(t *testing.T) {
	// The LTC construction uses negative costs (-Acc*). Check a case where
	// taking the negative-cost detour is cheaper.
	g := NewNetwork(4)
	g.AddEdge(0, 1, 1, 0)
	g.AddEdge(1, 3, 1, -0.9)
	g.AddEdge(0, 2, 1, 0)
	g.AddEdge(2, 3, 1, -0.5)
	res, err := g.MinCostMaxFlow(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 2 || math.Abs(res.Cost-(-1.4)) > 1e-12 {
		t.Fatalf("res = %+v, want flow 2 cost -1.4", res)
	}
}

func TestFlowRerouting(t *testing.T) {
	// Classic case where SSPA must push flow back along a residual edge.
	//   0 -> 1 cap 1 cost 1 ; 0 -> 2 cap 1 cost 2
	//   1 -> 2 cap 1 cost -2 ; 1 -> 3 cap 1 cost 3 ; 2 -> 3 cap 1 cost 1
	g := NewNetwork(4)
	g.AddEdge(0, 1, 1, 1)
	g.AddEdge(0, 2, 1, 2)
	g.AddEdge(1, 2, 1, -2)
	g.AddEdge(1, 3, 1, 3)
	g.AddEdge(2, 3, 1, 1)
	resD, err := g.MinCostMaxFlow(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	g2 := rebuild(g)
	resS, err := g2.MinCostFlow(0, 3, Options{Engine: EngineSPFA})
	if err != nil {
		t.Fatal(err)
	}
	if resD.Flow != resS.Flow || math.Abs(resD.Cost-resS.Cost) > 1e-9 {
		t.Fatalf("engines disagree: dijkstra %+v vs spfa %+v", resD, resS)
	}
	if resD.Flow != 2 {
		t.Fatalf("max flow = %d, want 2", resD.Flow)
	}
	if err := g.CheckConservation(0, 3); err != nil {
		t.Fatal(err)
	}
}

func TestMaxFlowCap(t *testing.T) {
	g := NewNetwork(2)
	g.AddEdge(0, 1, 10, 1)
	res, err := g.MinCostFlow(0, 1, Options{MaxFlow: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 3 || res.Cost != 3 {
		t.Fatalf("res = %+v, want flow 3 cost 3", res)
	}
}

func TestUnitAugmentation(t *testing.T) {
	g := NewNetwork(2)
	g.AddEdge(0, 1, 4, 1)
	res, err := g.MinCostFlow(0, 1, Options{UnitAugment: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 4 || res.Augmentations != 4 {
		t.Fatalf("res = %+v, want 4 unit augmentations", res)
	}
	g.Reset()
	res2, err := g.MinCostMaxFlow(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Flow != 4 || res2.Augmentations != 1 {
		t.Fatalf("res = %+v, want 1 bottleneck augmentation", res2)
	}
}

func TestDisconnectedSink(t *testing.T) {
	g := NewNetwork(3)
	g.AddEdge(0, 1, 5, 1)
	res, err := g.MinCostMaxFlow(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 0 || res.Cost != 0 {
		t.Fatalf("res = %+v, want zero flow", res)
	}
}

func TestSourceEqualsSink(t *testing.T) {
	g := NewNetwork(2)
	g.AddEdge(0, 1, 1, 1)
	res, err := g.MinCostMaxFlow(0, 0)
	if err != nil || res.Flow != 0 {
		t.Fatalf("res = %+v err=%v", res, err)
	}
}

func TestZeroCapacityEdgeIgnored(t *testing.T) {
	g := NewNetwork(2)
	g.AddEdge(0, 1, 0, -100)
	res, err := g.MinCostMaxFlow(0, 1)
	if err != nil || res.Flow != 0 {
		t.Fatalf("res = %+v err=%v", res, err)
	}
}

func TestNegativeCycleDetectedBySPFA(t *testing.T) {
	// 1 -> 2 -> 1 negative cycle with residual capacity, reachable from 0.
	g := NewNetwork(4)
	g.AddEdge(0, 1, 1, 0)
	g.AddEdge(1, 2, 5, -3)
	g.AddEdge(2, 1, 5, -3)
	g.AddEdge(2, 3, 1, 0)
	_, err := g.MinCostFlow(0, 3, Options{Engine: EngineSPFA})
	if !errors.Is(err, ErrNegativeCycle) {
		t.Fatalf("err = %v, want ErrNegativeCycle", err)
	}
	g.Reset()
	_, err = g.MinCostMaxFlow(0, 3)
	if !errors.Is(err, ErrNegativeCycle) {
		t.Fatalf("dijkstra engine err = %v, want ErrNegativeCycle (from Bellman-Ford init)", err)
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := NewNetwork(2)
	for _, fn := range []func(){
		func() { g.AddEdge(-1, 0, 1, 0) },
		func() { g.AddEdge(0, 5, 1, 0) },
		func() { g.AddEdge(0, 1, -1, 0) },
		func() { NewNetwork(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

// rebuild clones the network topology with fresh capacities.
func rebuild(g *Network) *Network {
	h := NewNetwork(g.NumNodes())
	for e := 0; e < len(g.to); e += 2 {
		from := int(g.to[e^1])
		to := int(g.to[e])
		h.AddEdge(from, to, g.initCap[e], g.cost[e])
	}
	return h
}

// buildRandomBipartite creates an LTC-shaped network: source 0, workers
// 1..nw, tasks nw+1..nw+nt, sink last. Returns the network plus dimensions.
func buildRandomBipartite(rng *rand.Rand, nw, nt int, k, demand int32) *Network {
	g := NewNetwork(nw + nt + 2)
	s := 0
	sink := nw + nt + 1
	for w := 1; w <= nw; w++ {
		g.AddEdge(s, w, k, 0)
	}
	for ti := 0; ti < nt; ti++ {
		g.AddEdge(nw+1+ti, sink, demand, 0)
	}
	for w := 1; w <= nw; w++ {
		for ti := 0; ti < nt; ti++ {
			if rng.Float64() < 0.8 {
				cost := -(0.1 + 0.9*rng.Float64()) // -Acc* ∈ (-1, -0.1)
				g.AddEdge(w, nw+1+ti, 1, cost)
			}
		}
	}
	return g
}

// TestEnginesAgreeOnRandomBipartite cross-validates the two SSPA engines on
// many random LTC-shaped instances: equal max flow and equal min cost.
func TestEnginesAgreeOnRandomBipartite(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		nw := rng.Intn(8) + 2
		nt := rng.Intn(5) + 1
		k := int32(rng.Intn(3) + 1)
		demand := int32(rng.Intn(3) + 1)
		g1 := buildRandomBipartite(rng, nw, nt, k, demand)
		g2 := rebuild(g1)
		sink := nw + nt + 1
		r1, err := g1.MinCostMaxFlow(0, sink)
		if err != nil {
			t.Fatalf("trial %d dijkstra: %v", trial, err)
		}
		r2, err := g2.MinCostFlow(0, sink, Options{Engine: EngineSPFA})
		if err != nil {
			t.Fatalf("trial %d spfa: %v", trial, err)
		}
		if r1.Flow != r2.Flow {
			t.Fatalf("trial %d: flow %d vs %d", trial, r1.Flow, r2.Flow)
		}
		if math.Abs(r1.Cost-r2.Cost) > 1e-6 {
			t.Fatalf("trial %d: cost %v vs %v", trial, r1.Cost, r2.Cost)
		}
		if err := g1.CheckConservation(0, sink); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := g2.CheckConservation(0, sink); err != nil {
			t.Fatalf("trial %d spfa: %v", trial, err)
		}
	}
}

// bruteForceBipartite enumerates all feasible assignments of workers to
// tasks (each worker ≤ k tasks, each task ≤ demand workers, edge used at
// most once) and returns (maxMatched, minCost among max-matched).
func bruteForceBipartite(costs [][]float64, k, demand int) (int, float64) {
	nw := len(costs)
	nt := 0
	if nw > 0 {
		nt = len(costs[0])
	}
	taskLoad := make([]int, nt)
	bestFlow := 0
	bestCost := math.Inf(1)
	var rec func(w, used int, cost float64)
	var chooseTasks func(w, from, chosen, used int, cost float64)
	rec = func(w, used int, cost float64) {
		if w == nw {
			if used > bestFlow || (used == bestFlow && cost < bestCost) {
				bestFlow = used
				bestCost = cost
			}
			return
		}
		chooseTasks(w, 0, 0, used, cost)
	}
	chooseTasks = func(w, from, chosen, used int, cost float64) {
		rec(w+1, used, cost) // stop assigning this worker
		if chosen == k {
			return
		}
		for ti := from; ti < nt; ti++ {
			if math.IsInf(costs[w][ti], 1) || taskLoad[ti] >= demand {
				continue
			}
			taskLoad[ti]++
			chooseTasks(w, ti+1, chosen+1, used+1, cost+costs[w][ti])
			taskLoad[ti]--
		}
	}
	// chooseTasks calls rec both before and after assignments, which
	// double-counts the "assign nothing" branch; dedupe by having rec
	// evaluated on every path — acceptable for exhaustive search.
	rec(0, 0, 0)
	if bestFlow == 0 {
		bestCost = 0
	}
	return bestFlow, bestCost
}

// TestAgainstBruteForce verifies min-cost max-flow optimality exhaustively
// on small random instances.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		nw := rng.Intn(3) + 2 // 2..4 workers
		nt := rng.Intn(2) + 2 // 2..3 tasks
		k := rng.Intn(2) + 1
		demand := rng.Intn(2) + 1
		costs := make([][]float64, nw)
		g := NewNetwork(nw + nt + 2)
		sink := nw + nt + 1
		for w := 0; w < nw; w++ {
			g.AddEdge(0, w+1, int32(k), 0)
		}
		for ti := 0; ti < nt; ti++ {
			g.AddEdge(nw+1+ti, sink, int32(demand), 0)
		}
		for w := 0; w < nw; w++ {
			costs[w] = make([]float64, nt)
			for ti := 0; ti < nt; ti++ {
				if rng.Float64() < 0.75 {
					c := -(0.1 + 0.9*rng.Float64())
					costs[w][ti] = c
					g.AddEdge(w+1, nw+1+ti, 1, c)
				} else {
					costs[w][ti] = math.Inf(1)
				}
			}
		}
		wantFlow, wantCost := bruteForceBipartite(costs, k, demand)
		res, err := g.MinCostMaxFlow(0, sink)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if int(res.Flow) != wantFlow {
			t.Fatalf("trial %d: flow %d, brute force %d", trial, res.Flow, wantFlow)
		}
		if math.Abs(res.Cost-wantCost) > 1e-9 {
			t.Fatalf("trial %d: cost %v, brute force %v", trial, res.Cost, wantCost)
		}
	}
}

// TestIntermediateOptimality: with MaxFlow=f, SSPA yields the cheapest flow
// of value f (checked against brute force restricted to exactly f units).
func TestIntermediateOptimality(t *testing.T) {
	g := NewNetwork(4)
	// Two source->middle->sink chains with different costs.
	g.AddEdge(0, 1, 2, 0)
	g.AddEdge(0, 2, 2, 0)
	g.AddEdge(1, 3, 2, -5)
	g.AddEdge(2, 3, 2, -1)
	res, err := g.MinCostFlow(0, 3, Options{MaxFlow: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 2 || res.Cost != -10 {
		t.Fatalf("res = %+v, want the two -5 units", res)
	}
}

func TestResetRestoresCapacity(t *testing.T) {
	g := NewNetwork(2)
	e := g.AddEdge(0, 1, 3, 1)
	if _, err := g.MinCostMaxFlow(0, 1); err != nil {
		t.Fatal(err)
	}
	if g.Flow(e) != 3 {
		t.Fatalf("flow before reset = %d", g.Flow(e))
	}
	g.Reset()
	if g.Flow(e) != 0 || g.Residual(e) != 3 {
		t.Fatal("Reset did not restore capacities")
	}
	res, err := g.MinCostMaxFlow(0, 1)
	if err != nil || res.Flow != 3 {
		t.Fatalf("rerun after Reset: %+v err=%v", res, err)
	}
}

func BenchmarkMinCostMaxFlowBipartite(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := buildRandomBipartite(rng, 100, 20, 4, 5)
		if _, err := g.MinCostMaxFlow(0, 121); err != nil {
			b.Fatal(err)
		}
	}
}
