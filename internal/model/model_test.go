package model

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"ltc/internal/geo"
)

func TestDeltaKnownValues(t *testing.T) {
	// Example 2: ε = 0.2 → δ = 2 ln 5 ≈ 3.22.
	if d := Delta(0.2); math.Abs(d-3.2189) > 1e-3 {
		t.Fatalf("Delta(0.2) = %v, want ≈3.2189", d)
	}
	// ε = e^{-1/2} → δ = 1 (used in the NP-hardness reduction).
	if d := Delta(math.Exp(-0.5)); math.Abs(d-1) > 1e-12 {
		t.Fatalf("Delta(e^-0.5) = %v, want 1", d)
	}
	// Default evaluation setting ε = 0.1 → δ ≈ 4.605.
	if d := Delta(0.1); math.Abs(d-4.60517) > 1e-4 {
		t.Fatalf("Delta(0.1) = %v", d)
	}
}

func TestDeltaPanicsOutsideUnitInterval(t *testing.T) {
	for _, eps := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Delta(%v) did not panic", eps)
				}
			}()
			Delta(eps)
		}()
	}
}

func TestAccStar(t *testing.T) {
	for _, tc := range []struct{ acc, want float64 }{
		{1.0, 1.0}, {0.5, 0.0}, {0.96, 0.8464}, {0.98, 0.9216}, {0.66, 0.1024},
	} {
		if got := AccStar(tc.acc); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("AccStar(%v) = %v, want %v", tc.acc, got, tc.want)
		}
	}
}

func TestCompleted(t *testing.T) {
	d := Delta(0.1)
	if !Completed(d, d) || !Completed(d-1e-12, d) {
		t.Fatal("credit at/just below δ within slack must complete")
	}
	if Completed(d-0.01, d) {
		t.Fatal("credit clearly below δ must not complete")
	}
}

func TestSigmoidDistanceMatchesEq1(t *testing.T) {
	m := SigmoidDistance{DMax: 30}
	w := Worker{Index: 1, Loc: geo.Point{X: 0, Y: 0}, Acc: 0.9}
	// At distance 0: Acc ≈ p (sigmoid saturated).
	if got := m.Predict(w, Task{Loc: geo.Point{X: 0, Y: 0}}); math.Abs(got-0.9) > 1e-9 {
		t.Fatalf("Acc at d=0 = %v, want ≈0.9", got)
	}
	// At distance dmax: Acc = p/2 exactly.
	if got := m.Predict(w, Task{Loc: geo.Point{X: 30, Y: 0}}); math.Abs(got-0.45) > 1e-12 {
		t.Fatalf("Acc at d=dmax = %v, want 0.45", got)
	}
	// Far away: Acc → 0.
	if got := m.Predict(w, Task{Loc: geo.Point{X: 500, Y: 0}}); got > 1e-9 {
		t.Fatalf("Acc far away = %v, want ≈0", got)
	}
}

func TestSigmoidDistanceMonotoneInDistance(t *testing.T) {
	m := SigmoidDistance{DMax: 30}
	w := Worker{Acc: 0.86}
	prev := math.Inf(1)
	for d := 0.0; d <= 100; d += 0.5 {
		acc := m.Predict(w, Task{Loc: geo.Point{X: d}})
		if acc > prev+1e-15 {
			t.Fatalf("accuracy increased with distance at d=%v", d)
		}
		prev = acc
	}
}

func TestEligibilityRadiusConsistent(t *testing.T) {
	m := SigmoidDistance{DMax: 30}
	for _, minAcc := range []float64{0.5, 0.66, 0.78, 0.9} {
		r := m.EligibilityRadius(minAcc)
		// Any pair beyond r must be ineligible even with p_w = 1.
		w := Worker{Acc: 1.0}
		beyond := m.Predict(w, Task{Loc: geo.Point{X: r + 1e-6}})
		if beyond >= minAcc {
			t.Fatalf("minAcc=%v: Acc just beyond radius = %v, still eligible", minAcc, beyond)
		}
		// Just inside r the best worker must be eligible.
		if r > 0 {
			inside := m.Predict(w, Task{Loc: geo.Point{X: r - 1e-6}})
			if inside < minAcc {
				t.Fatalf("minAcc=%v: Acc just inside radius = %v, ineligible", minAcc, inside)
			}
		}
	}
	if !math.IsInf(m.EligibilityRadius(0), 1) {
		t.Fatal("minAcc=0 must give unbounded radius")
	}
	if m.EligibilityRadius(1) != 0 {
		t.Fatal("minAcc=1 must give zero radius")
	}
}

// Property: the eligibility radius is a sound prune for any worker accuracy,
// not just p_w = 1.
func TestEligibilityRadiusSoundProperty(t *testing.T) {
	m := SigmoidDistance{DMax: 30}
	prop := func(pRaw, dRaw uint16) bool {
		p := 0.66 + float64(pRaw)/65535*0.34 // p ∈ [0.66, 1]
		d := float64(dRaw) / 65535 * 200     // d ∈ [0, 200]
		r := m.EligibilityRadius(0.66)
		acc := m.Predict(Worker{Acc: p}, Task{Loc: geo.Point{X: d}})
		if d > r && acc >= 0.66 {
			return false // pruned pair was actually eligible: unsound
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixAccuracy(t *testing.T) {
	m := MatrixAccuracy{Vals: [][]float64{{0.96, 0.98}, {0.98, 0.96}}}
	w1 := Worker{Index: 1}
	w2 := Worker{Index: 2}
	if got := m.Predict(w1, Task{ID: 0}); got != 0.96 {
		t.Fatalf("Predict(w1, t0) = %v", got)
	}
	if got := m.Predict(w2, Task{ID: 1}); got != 0.96 {
		t.Fatalf("Predict(w2, t1) = %v", got)
	}
	// Out of range → 0.
	if got := m.Predict(Worker{Index: 3}, Task{ID: 0}); got != 0 {
		t.Fatalf("out-of-range worker = %v", got)
	}
	if got := m.Predict(w1, Task{ID: 5}); got != 0 {
		t.Fatalf("out-of-range task = %v", got)
	}
}

func TestConstantAndHistoricalModels(t *testing.T) {
	if got := (ConstantAccuracy{P: 0.8}).Predict(Worker{}, Task{}); got != 0.8 {
		t.Fatalf("ConstantAccuracy = %v", got)
	}
	if got := (HistoricalOnly{}).Predict(Worker{Acc: 0.77}, Task{}); got != 0.77 {
		t.Fatalf("HistoricalOnly = %v", got)
	}
}

func validInstance() *Instance {
	return &Instance{
		Tasks: []Task{
			{ID: 0, Loc: geo.Point{X: 10, Y: 10}},
			{ID: 1, Loc: geo.Point{X: 20, Y: 10}},
		},
		Workers: []Worker{
			{Index: 1, Loc: geo.Point{X: 12, Y: 10}, Acc: 0.9},
			{Index: 2, Loc: geo.Point{X: 18, Y: 10}, Acc: 0.85},
		},
		Epsilon: 0.1,
		K:       2,
		Model:   SigmoidDistance{DMax: 30},
		MinAcc:  0.66,
	}
}

func TestInstanceValidateOK(t *testing.T) {
	if err := validInstance().Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
}

func TestInstanceValidateErrors(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*Instance)
		want   error
	}{
		{"no tasks", func(in *Instance) { in.Tasks = nil }, ErrNoTasks},
		{"no workers", func(in *Instance) { in.Workers = nil }, ErrNoWorkers},
		{"bad epsilon", func(in *Instance) { in.Epsilon = 0 }, ErrBadEpsilon},
		{"epsilon one", func(in *Instance) { in.Epsilon = 1 }, ErrBadEpsilon},
		{"bad capacity", func(in *Instance) { in.K = 0 }, ErrBadCapacity},
		{"nil model", func(in *Instance) { in.Model = nil }, ErrNoModel},
		{"bad minacc", func(in *Instance) { in.MinAcc = 1 }, ErrBadMinAcc},
		{"task ids", func(in *Instance) { in.Tasks[1].ID = 7 }, ErrTaskIDs},
		{"worker order", func(in *Instance) { in.Workers[1].Index = 5 }, ErrWorkerOrder},
		{"spam worker", func(in *Instance) { in.Workers[0].Acc = 0.5 }, ErrSpamWorker},
		{"acc oob", func(in *Instance) { in.Workers[0].Acc = 1.5 }, ErrAccuracyOOB},
	} {
		in := validInstance()
		tc.mutate(in)
		if err := in.Validate(); !errors.Is(err, tc.want) {
			t.Fatalf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestArrangementLatencyAndAccumulation(t *testing.T) {
	a := NewArrangement(2)
	if a.Latency() != 0 {
		t.Fatal("empty arrangement latency must be 0")
	}
	a.Add(3, 0, 0.5)
	a.Add(1, 1, 0.4)
	a.Add(7, 0, 0.2)
	if a.Latency() != 7 {
		t.Fatalf("Latency = %d, want 7", a.Latency())
	}
	if a.WorkersUsed() != 3 {
		t.Fatalf("WorkersUsed = %d, want 3", a.WorkersUsed())
	}
	if math.Abs(a.Accumulated[0]-0.7) > 1e-12 {
		t.Fatalf("Accumulated[0] = %v", a.Accumulated[0])
	}
	if a.TaskLatency(0) != 7 || a.TaskLatency(1) != 1 {
		t.Fatalf("TaskLatency = %d, %d", a.TaskLatency(0), a.TaskLatency(1))
	}
}

func TestArrangementValidate(t *testing.T) {
	in := validInstance()
	in.Epsilon = 0.9 // δ ≈ 0.21: tiny so the small arrangement can complete
	acc0, _ := in.Eligible(in.Workers[0], in.Tasks[0])
	acc1, _ := in.Eligible(in.Workers[1], in.Tasks[1])

	a := NewArrangement(2)
	a.Add(1, 0, AccStar(acc0))
	a.Add(2, 1, AccStar(acc1))
	if err := a.Validate(in, true); err != nil {
		t.Fatalf("valid arrangement rejected: %v", err)
	}

	// Unknown worker.
	bad := NewArrangement(2)
	bad.Add(9, 0, 1)
	if err := bad.Validate(in, false); !errors.Is(err, ErrBadWorkerRef) {
		t.Fatalf("err = %v, want ErrBadWorkerRef", err)
	}

	// Unknown task.
	bad = NewArrangement(2)
	bad.Pairs = []Assignment{{Worker: 1, Task: 9}}
	if err := bad.Validate(in, false); !errors.Is(err, ErrBadTaskRef) {
		t.Fatalf("err = %v, want ErrBadTaskRef", err)
	}

	// Duplicate pair.
	bad = NewArrangement(2)
	bad.Add(1, 0, 1)
	bad.Add(1, 0, 1)
	if err := bad.Validate(in, false); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}

	// Over capacity: K=1 with two assignments to worker 1.
	in1 := validInstance()
	in1.K = 1
	bad = NewArrangement(2)
	bad.Add(1, 0, 1)
	bad.Add(1, 1, 1)
	if err := bad.Validate(in1, false); !errors.Is(err, ErrCapacityUsed) {
		t.Fatalf("err = %v, want ErrCapacityUsed", err)
	}

	// Ineligible: worker too far from the task.
	far := validInstance()
	far.Workers[0].Loc = geo.Point{X: 500, Y: 500}
	bad = NewArrangement(2)
	bad.Add(1, 0, 1)
	if err := bad.Validate(far, false); !errors.Is(err, ErrIneligible) {
		t.Fatalf("err = %v, want ErrIneligible", err)
	}

	// Incomplete.
	inc := NewArrangement(2)
	inc.Add(1, 0, AccStar(acc0))
	if err := inc.Validate(in, true); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("err = %v, want ErrIncomplete", err)
	}
}

func TestCandidateIndexGridVsScan(t *testing.T) {
	// The sigmoid model bounds eligibility; a matrix model does not.
	// Both paths must agree with a brute-force eligibility scan.
	in := validInstance()
	ci := NewCandidateIndex(in)
	if math.IsInf(ci.Radius(), 1) {
		t.Fatal("sigmoid model must yield a bounded radius")
	}
	for _, w := range in.Workers {
		got := ci.Candidates(w, nil)
		var want []Candidate
		for _, task := range in.Tasks {
			if acc, ok := in.Eligible(w, task); ok {
				want = append(want, Candidate{Task: task.ID, Acc: acc, AccStar: AccStar(acc)})
			}
		}
		if len(got) != len(want) {
			t.Fatalf("worker %d: got %d candidates, want %d", w.Index, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("worker %d: candidate %d = %+v, want %+v", w.Index, i, got[i], want[i])
			}
		}
	}
}

func TestCandidateIndexUnboundedModel(t *testing.T) {
	in := validInstance()
	in.Model = MatrixAccuracy{Vals: [][]float64{{0.9, 0.7}, {0.6, 0.95}}}
	ci := NewCandidateIndex(in)
	if !math.IsInf(ci.Radius(), 1) {
		t.Fatal("matrix model must be unbounded")
	}
	got := ci.Candidates(in.Workers[0], nil)
	if len(got) != 1 || got[0].Task != 0 {
		t.Fatalf("worker 1 candidates = %+v, want only task 0 (0.6 < MinAcc)", got)
	}
	got = ci.Candidates(in.Workers[1], nil)
	if len(got) != 2 {
		t.Fatalf("worker 2 candidates = %+v, want both tasks", got)
	}
}

func TestEligibleWorkerListsSorted(t *testing.T) {
	in := validInstance()
	ci := NewCandidateIndex(in)
	lists := ci.EligibleWorkerLists()
	if len(lists) != len(in.Tasks) {
		t.Fatalf("got %d lists", len(lists))
	}
	for tid, l := range lists {
		for i := 1; i < len(l); i++ {
			if l[i] <= l[i-1] {
				t.Fatalf("task %d worker list not strictly ascending: %v", tid, l)
			}
		}
	}
	// Both workers are near both tasks in validInstance.
	if len(lists[0]) != 2 || len(lists[1]) != 2 {
		t.Fatalf("expected both workers eligible everywhere: %v", lists)
	}
}

func TestCheckFeasible(t *testing.T) {
	in := validInstance()
	in.Epsilon = 0.9 // trivially feasible
	if err := NewCandidateIndex(in).CheckFeasible(); err != nil {
		t.Fatalf("feasible instance flagged: %v", err)
	}
	in.Epsilon = 0.0001 // δ ≈ 18.4 ≫ credit of 2 workers
	if err := NewCandidateIndex(in).CheckFeasible(); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestMaxPossibleCredit(t *testing.T) {
	in := validInstance()
	ci := NewCandidateIndex(in)
	total := ci.MaxPossibleCredit()
	for tid, tot := range total {
		var want float64
		for _, w := range in.Workers {
			if acc, ok := in.Eligible(w, in.Tasks[tid]); ok {
				want += AccStar(acc)
			}
		}
		if math.Abs(tot-want) > 1e-12 {
			t.Fatalf("task %d: credit %v want %v", tid, tot, want)
		}
	}
}

func TestSortInt32(t *testing.T) {
	// Exercise both the insertion-sort and quicksort paths.
	for _, n := range []int{0, 1, 5, 23, 24, 200} {
		s := make([]int32, n)
		for i := range s {
			s[i] = int32((i*7919 + 13) % 97)
		}
		sortInt32(s)
		for i := 1; i < len(s); i++ {
			if s[i] < s[i-1] {
				t.Fatalf("n=%d: not sorted at %d: %v", n, i, s)
			}
		}
	}
}
