package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"text/tabwriter"

	"ltc"
)

// runScenarios measures check-in throughput under the skewed workload
// suite: every requested scenario × shard count × ingestion mode, each
// multi-shard cell under both fixed striping and the balanced tile→shard
// layout (WithBalancedShards) — and, when rebalance is set, drift
// scenarios gain a comparison pair packed from the causal stream prefix
// (WithLoadPrefix): once static, once with adaptive live re-sharding on
// top (WithRebalance). The artifact schema is -exp throughput's
// (throughputArtifact), with scenario/balanced/presampled/rebalanced/
// imbalance columns filled in, so `-exp benchdiff` gates scenario
// artifacts exactly like plain throughput ones — uniform-scenario cells
// share their keys with -exp throughput cells and are directly comparable
// across PRs, and presampled/rebalanced cells carry their own keys so
// older artifacts never collide with them.
func runScenarios(scenarioList, shardList, batchList, feedersList string, async, rebalance bool, jsonPath string, scale float64, seed uint64, algoName string) error {
	var kinds []string
	if scenarioList == "" {
		kinds = ltc.ScenarioKinds()
	} else {
		for _, s := range strings.Split(scenarioList, ",") {
			kinds = append(kinds, strings.TrimSpace(s))
		}
	}
	shardCounts, err := parseCountList("-shards", shardList)
	if err != nil {
		return err
	}
	if len(shardCounts) == 0 {
		return fmt.Errorf("-shards must list at least one shard count")
	}
	batchSizes, err := parseCountList("-batch", batchList)
	if err != nil {
		return err
	}
	feederCounts, err := parseFeeders(feedersList)
	if err != nil {
		return err
	}
	algo := benchAlgo(algoName)

	cfg := ltc.DefaultWorkload().Scale(scale)
	cfg.Seed = seed
	art := throughputArtifact{
		Preset:     fmt.Sprintf("tableiv-default-x%g", scale),
		Algo:       string(algo),
		Scale:      scale,
		Feeders:    feederCounts[0],
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scenario\tmode\tshards\tlayout\tbatch\tfeeders\tworkers/s\tns/op\timbalance\tglobal latency\truns")
	for _, kind := range kinds {
		scn, err := ltc.NewScenario(kind, cfg)
		if err != nil {
			return err
		}
		in, err := scn.Generate()
		if err != nil {
			return err
		}
		if art.Tasks == 0 {
			art.Tasks, art.Workers = len(in.Tasks), len(in.Workers)
			fmt.Printf("scenarios: %s over %d tasks / %d workers, feeder counts %v\n\n",
				algo, len(in.Tasks), len(in.Workers), feederCounts)
		}
		for _, n := range shardCounts {
			var cells []throughputResult
			type layoutSpec struct{ balanced, presampled, rebalanced bool }
			layouts := []layoutSpec{{false, false, false}}
			if n > 1 {
				// Balanced only differs beyond one shard, and live
				// re-sharding needs at least two shards to move between.
				layouts = append(layouts, layoutSpec{true, false, false})
				if rebalance && driftScenario(kind) {
					// The rebalance comparison pair packs its layout from
					// the causal stream prefix (WithLoadPrefix) on both
					// sides: the full-stream oracle layout above already
					// knows where the drift lands, so there is nothing
					// left for migrations to fix there. The presampled
					// static twin is the deployment-honest baseline the
					// gate measures rebalancing against.
					layouts = append(layouts,
						layoutSpec{true, true, false},
						layoutSpec{true, true, true})
				}
			}
			for _, l := range layouts {
				for _, f := range feederCounts {
					cells = append(cells, throughputResult{Scenario: kind, Mode: "percall", Shards: n, Balanced: l.balanced, Presampled: l.presampled, Rebalanced: l.rebalanced, Feeders: f})
					for _, b := range batchSizes {
						cells = append(cells, throughputResult{Scenario: kind, Mode: "batch", Shards: n, BatchSize: b, Balanced: l.balanced, Presampled: l.presampled, Rebalanced: l.rebalanced, Feeders: f})
					}
					if async {
						cells = append(cells, throughputResult{Scenario: kind, Mode: "async", Shards: n, Balanced: l.balanced, Presampled: l.presampled, Rebalanced: l.rebalanced, Feeders: f})
					}
				}
			}
			for _, cell := range cells {
				res, err := measureThroughput(in, algo, seed, cell)
				if err != nil {
					return err
				}
				art.Results = append(art.Results, res)
				layout := "striped"
				if res.Balanced {
					layout = "balanced"
				}
				if res.Presampled {
					layout = "presampled"
				}
				if res.Rebalanced {
					layout = "rebalanced"
				}
				batchCol := "-"
				if res.BatchSize > 0 {
					batchCol = strconv.Itoa(res.BatchSize)
				}
				fmt.Fprintf(w, "%s\t%s\t%d\t%s\t%s\t%d\t%.0f\t%.0f\t%.2f\t%d\t%d\n",
					res.Scenario, res.Mode, res.Shards, layout, batchCol, res.Feeders,
					res.WorkersPerSec, res.NsPerOp, res.Imbalance, res.Latency, res.Runs)
			}
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(&art, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if jsonPath == "-" {
			_, err = os.Stdout.Write(data)
			return err
		}
		if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote benchmark artifact to %s\n", jsonPath)
	}
	return nil
}

// driftScenario reports whether the scenario's load moves mid-stream —
// the regime where any partition-time layout can go stale and live
// re-sharding has something to chase.
func driftScenario(kind string) bool {
	return kind == "rushhour" || kind == "flashcrowd"
}
