// Package checkin simulates Foursquare-style check-in traces as a
// substitute for the real datasets of the paper's evaluation (§V-A,
// Table V), which are not redistributable. The generator reproduces the
// structural properties the LTC algorithms are sensitive to:
//
//   - workers arrive in chronological check-in order;
//   - check-ins cluster around POI hot-spots (city districts);
//   - each user revisits a home region, with an activity radius drawn from
//     the [100 m, 500 m] (10-50 grid units) POI-familiarity range that
//     Yang et al. [17] measured on Foursquare;
//   - user activity is heavy-tailed (few users contribute many check-ins);
//   - tasks are POIs inside the convex hull of the check-in locations;
//   - historical accuracies follow Normal(0.86, 0.05), exactly as the
//     paper synthesised them for the real datasets.
//
// The NewYork and Tokyo presets reproduce Table V's cardinalities
// (|T| = 3717, |W| = 227428 and |T| = 9317, |W| = 573703).
package checkin

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"ltc/internal/geo"
	"ltc/internal/model"
	"ltc/internal/stats"
)

// CityConfig describes a simulated city trace.
type CityConfig struct {
	Name string
	// NumTasks POIs become tasks; NumCheckins check-ins become workers.
	NumTasks    int
	NumCheckins int
	// NumUsers distinct users produce the check-ins; NumPOIs candidate POIs
	// are scattered before the convex-hull/feasibility filter picks tasks.
	NumUsers int
	NumPOIs  int
	// NumClusters district centres; ClusterStd is the Gaussian spread of
	// POIs and homes around their centre, in grid units.
	NumClusters int
	ClusterStd  float64
	// Grid extents in 10 m units.
	GridWidth  float64
	GridHeight float64
	// PrefMin/PrefMax bound each user's activity radius (grid units).
	PrefMin float64
	PrefMax float64
	// ZipfS is the user-activity skew exponent (weight ∝ 1/rank^s).
	ZipfS float64
	// LTC parameters (Table V: K = 6, ε swept, dmax = 30).
	K       int
	Epsilon float64
	DMax    float64
	MinAcc  float64
	// AccMean/AccStd parameterise the Normal historical accuracy.
	AccMean float64
	AccStd  float64
	// FeasibilityHeadroom and MaxFeasibilityHeadroom bound each task POI's
	// nearby eligible-worker credit to [min, max] × δ (defaults 2 and 6
	// when zero). The lower bound keeps tasks completable with headroom;
	// the upper bound excludes hotspot-core POIs — the platform
	// crowdsources facts about places it lacks data on, and those are the
	// less-visited POIs. The band also reproduces the paper's evaluation
	// regime, where completing all tasks consumes most of the worker
	// stream and scarce tasks contend for the same workers (that
	// contention is exactly where the algorithms differ).
	FeasibilityHeadroom    float64
	MaxFeasibilityHeadroom float64
	Seed                   uint64
}

// NewYork returns the Table V New York preset: 3,717 tasks from 227,428
// check-ins, on a ~20 km × 20 km grid.
func NewYork() CityConfig {
	return CityConfig{
		Name:        "NewYork",
		NumTasks:    3717,
		NumCheckins: 227428,
		NumUsers:    25000,
		NumPOIs:     20000,
		NumClusters: 40,
		ClusterStd:  60,
		GridWidth:   2000,
		GridHeight:  2000,
		PrefMin:     10,
		PrefMax:     50,
		ZipfS:       1.0,
		K:           6,
		Epsilon:     0.10,
		DMax:        30,
		MinAcc:      0.5, // eligibility radius = dmax exactly; see DESIGN.md
		AccMean:     0.86,
		AccStd:      0.05,

		FeasibilityHeadroom:    2,
		MaxFeasibilityHeadroom: 6,
		Seed:                   20180416, // ICDE'18 conference start date
	}
}

// Tokyo returns the Table V Tokyo preset: 9,317 tasks from 573,703
// check-ins on a ~30 km × 30 km grid.
func Tokyo() CityConfig {
	c := NewYork()
	c.Name = "Tokyo"
	c.NumTasks = 9317
	c.NumCheckins = 573703
	c.NumUsers = 60000
	c.NumPOIs = 50000
	c.NumClusters = 70
	c.GridWidth = 3000
	c.GridHeight = 3000
	return c
}

// Cities returns both Table V presets.
func Cities() []CityConfig { return []CityConfig{NewYork(), Tokyo()} }

// Scale shrinks the trace by factor while preserving density: counts scale
// by factor, grid extents by √factor. The cluster count also scales by
// factor (keeping per-cluster task/check-in counts, and hence the local
// density inside a district, unchanged — the quantity that decides whether
// worker capacity K binds, which is where the algorithms differ).
func (c CityConfig) Scale(factor float64) CityConfig {
	if factor <= 0 || factor == 1 {
		return c
	}
	side := math.Sqrt(factor)
	c.NumTasks = clampCount(float64(c.NumTasks) * factor)
	c.NumCheckins = clampCount(float64(c.NumCheckins) * factor)
	c.NumUsers = clampCount(float64(c.NumUsers) * factor)
	c.NumPOIs = clampCount(float64(c.NumPOIs) * factor)
	c.NumClusters = clampCount(float64(c.NumClusters) * factor)
	c.GridWidth *= side
	c.GridHeight *= side
	return c
}

func clampCount(x float64) int {
	n := int(math.Round(x))
	if n < 1 {
		return 1
	}
	return n
}

// Validation and generation errors.
var (
	ErrBadConfig = errors.New("checkin: invalid configuration")
	// ErrNotEnoughPOIs means the hull/feasibility filter left fewer POIs
	// than NumTasks; regenerate with more POIs or a smaller task count.
	ErrNotEnoughPOIs = errors.New("checkin: not enough feasible POIs inside the check-in hull")
)

// Validate checks the configuration.
func (c CityConfig) Validate() error {
	switch {
	case c.NumTasks <= 0, c.NumCheckins <= 0, c.NumUsers <= 0, c.NumPOIs <= 0, c.NumClusters <= 0:
		return fmt.Errorf("%w: counts must be positive", ErrBadConfig)
	case c.NumPOIs < c.NumTasks:
		return fmt.Errorf("%w: POI pool (%d) smaller than task count (%d)", ErrBadConfig, c.NumPOIs, c.NumTasks)
	case c.GridWidth <= 0, c.GridHeight <= 0, c.ClusterStd <= 0:
		return fmt.Errorf("%w: geometry must be positive", ErrBadConfig)
	case c.PrefMin <= 0, c.PrefMax < c.PrefMin:
		return fmt.Errorf("%w: preference radius range invalid", ErrBadConfig)
	case c.K <= 0:
		return fmt.Errorf("%w: capacity", ErrBadConfig)
	case c.Epsilon <= 0 || c.Epsilon >= 1:
		return fmt.Errorf("%w: epsilon", ErrBadConfig)
	case c.AccMean < model.SpamThreshold || c.AccMean > 1:
		return fmt.Errorf("%w: accuracy mean", ErrBadConfig)
	}
	return nil
}

// User is a simulated platform user. Home is the user's anchor POI
// location; all of the user's check-ins happen at POIs within PrefRadius
// of it (the region-preference behaviour of [17]).
type User struct {
	ID         int
	Home       geo.Point
	HomePOI    int32
	PrefRadius float64
	Accuracy   float64
}

// Checkin is one chronological check-in event at a POI; its position in
// the trace is the worker arrival index minus one.
type Checkin struct {
	User int
	POI  int32
	Loc  geo.Point
}

// checkinJitter is the GPS-style noise radius (grid units, 10 m each)
// applied to check-in locations around the visited POI.
const checkinJitter = 2.0

// Trace is a full simulated city trace plus the derived LTC instance.
type Trace struct {
	Config   CityConfig
	Users    []User
	Checkins []Checkin
	// POIs is the unfiltered candidate pool; Hull the convex hull of the
	// check-in locations; TaskPOIs the chosen task locations.
	POIs     []geo.Point
	Hull     []geo.Point
	Instance *model.Instance
}

// Generate builds the trace and its LTC instance deterministically.
func Generate(c CityConfig) (*Trace, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	clusterRng := stats.NewRand(stats.SplitSeed(c.Seed, 1))
	poiRng := stats.NewRand(stats.SplitSeed(c.Seed, 2))
	userRng := stats.NewRand(stats.SplitSeed(c.Seed, 3))
	checkinRng := stats.NewRand(stats.SplitSeed(c.Seed, 4))
	taskRng := stats.NewRand(stats.SplitSeed(c.Seed, 5))

	// District centres, kept away from the border so their POI clouds stay
	// mostly on-grid.
	margin := math.Min(c.ClusterStd, math.Min(c.GridWidth, c.GridHeight)/4)
	centers := make([]geo.Point, c.NumClusters)
	for i := range centers {
		centers[i] = geo.Point{
			X: margin + clusterRng.Float64()*(c.GridWidth-2*margin),
			Y: margin + clusterRng.Float64()*(c.GridHeight-2*margin),
		}
	}
	// Cluster popularity is itself skewed: downtown districts dominate.
	clusterCum := zipfCumulative(c.NumClusters, c.ZipfS)

	pois := make([]geo.Point, c.NumPOIs)
	for i := range pois {
		ctr := centers[sampleCumulative(clusterCum, poiRng)]
		pois[i] = c.clampToGrid(geo.Point{
			X: ctr.X + poiRng.NormFloat64()*c.ClusterStd,
			Y: ctr.Y + poiRng.NormFloat64()*c.ClusterStd,
		})
	}
	poiGrid := geo.NewGridIndex(pois, math.Max(c.PrefMax, 1))

	// Users anchor at a POI (their home neighbourhood) and only ever visit
	// POIs within their preference radius of it — check-ins happen AT
	// points of interest, as on Foursquare, so worker supply concentrates
	// exactly where tasks are.
	users := make([]User, c.NumUsers)
	visitSets := make([][]int32, c.NumUsers)
	for i := range users {
		homePOI := int32(userRng.IntN(c.NumPOIs))
		home := pois[homePOI]
		pref := c.PrefMin + userRng.Float64()*(c.PrefMax-c.PrefMin)
		visits := poiGrid.Within(home, pref, nil)
		if len(visits) == 0 {
			visits = []int32{homePOI}
		}
		users[i] = User{
			ID:         i,
			Home:       home,
			HomePOI:    homePOI,
			PrefRadius: pref,
			Accuracy:   stats.TruncatedNormal(userRng, c.AccMean, c.AccStd, model.SpamThreshold, 1),
		}
		visitSets[i] = visits
	}
	userCum := zipfCumulative(c.NumUsers, c.ZipfS)

	checkins := make([]Checkin, c.NumCheckins)
	workers := make([]model.Worker, c.NumCheckins)
	workerPts := make([]geo.Point, c.NumCheckins)
	for i := range checkins {
		uid := sampleCumulative(userCum, checkinRng)
		u := &users[uid]
		poi := visitSets[uid][checkinRng.IntN(len(visitSets[uid]))]
		// Small GPS-style jitter, uniform over a disc.
		r := checkinJitter * math.Sqrt(checkinRng.Float64())
		theta := checkinRng.Float64() * 2 * math.Pi
		loc := c.clampToGrid(geo.Point{
			X: pois[poi].X + r*math.Cos(theta),
			Y: pois[poi].Y + r*math.Sin(theta),
		})
		checkins[i] = Checkin{User: u.ID, POI: poi, Loc: loc}
		workers[i] = model.Worker{Index: i + 1, Loc: loc, Acc: u.Accuracy}
		workerPts[i] = loc
	}

	hull := geo.ConvexHull(workerPts)

	// Task selection: POIs inside the hull that can actually complete
	// (enough eligible worker credit nearby), sampled uniformly.
	accModel := model.SigmoidDistance{DMax: c.DMax}
	radius := accModel.EligibilityRadius(c.MinAcc)
	widx := geo.NewGridIndex(workerPts, math.Max(radius, 1))
	minHead := c.FeasibilityHeadroom
	if minHead <= 0 {
		minHead = 2
	}
	maxHead := c.MaxFeasibilityHeadroom
	if maxHead <= 0 {
		maxHead = 6
	}
	delta := model.Delta(c.Epsilon)
	minCredit := minHead * delta
	maxCredit := maxHead * delta
	type scoredPOI struct {
		idx    int
		credit float64
	}
	var feasible []scoredPOI
	var idBuf []int32
	for pi, p := range pois {
		if !geo.InConvexHull(hull, p) {
			continue
		}
		idBuf = widx.Within(p, radius, idBuf[:0])
		credit := 0.0
		task := model.Task{Loc: p}
		for _, id := range idBuf {
			acc := accModel.Predict(workers[id], task)
			if acc >= c.MinAcc {
				credit += model.AccStar(acc)
			}
			if credit > maxCredit {
				break // plenty of supply; exact value no longer matters
			}
		}
		if credit >= minCredit {
			feasible = append(feasible, scoredPOI{idx: pi, credit: credit})
		}
	}
	if len(feasible) < c.NumTasks {
		return nil, fmt.Errorf("%w: %d feasible of %d needed", ErrNotEnoughPOIs, len(feasible), c.NumTasks)
	}
	// Prefer the tightest-supply POIs (the places the platform lacks data
	// about); POIs beyond the max-headroom band only fill remaining slots.
	// A small random perturbation (±25% of δ) keeps the cut from being a
	// hard popularity threshold while staying deterministic in the seed.
	perturbed := make([]float64, len(feasible))
	for i, f := range feasible {
		perturbed[i] = f.credit + (taskRng.Float64()-0.5)*0.5*delta
	}
	order := make([]int, len(feasible))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if perturbed[order[a]] != perturbed[order[b]] {
			return perturbed[order[a]] < perturbed[order[b]]
		}
		return feasible[order[a]].idx < feasible[order[b]].idx
	})
	chosen := order[:c.NumTasks]
	sort.Slice(chosen, func(a, b int) bool { return feasible[chosen[a]].idx < feasible[chosen[b]].idx })
	tasks := make([]model.Task, c.NumTasks)
	taskPts := make([]geo.Point, c.NumTasks)
	for i, fi := range chosen {
		p := pois[feasible[fi].idx]
		tasks[i] = model.Task{ID: model.TaskID(i), Loc: p}
		taskPts[i] = p
	}

	in := &model.Instance{
		Tasks:   tasks,
		Workers: workers,
		Epsilon: c.Epsilon,
		K:       c.K,
		Model:   accModel,
		MinAcc:  c.MinAcc,
	}
	return &Trace{
		Config:   c,
		Users:    users,
		Checkins: checkins,
		POIs:     pois,
		Hull:     hull,
		Instance: in,
	}, nil
}

// GenerateInstance is a convenience wrapper returning only the instance.
func GenerateInstance(c CityConfig) (*model.Instance, error) {
	tr, err := Generate(c)
	if err != nil {
		return nil, err
	}
	return tr.Instance, nil
}

func (c CityConfig) clampToGrid(p geo.Point) geo.Point {
	return geo.Point{
		X: math.Min(c.GridWidth, math.Max(0, p.X)),
		Y: math.Min(c.GridHeight, math.Max(0, p.Y)),
	}
}

// zipfCumulative returns the cumulative weights of a Zipf(s) distribution
// over n ranks, normalised to end at 1.
func zipfCumulative(n int, s float64) []float64 {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	cum[n-1] = 1 // guard against rounding
	return cum
}

// sampleCumulative draws an index from cumulative weights by binary search.
func sampleCumulative(cum []float64, rng *rand.Rand) int {
	x := rng.Float64()
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
