//go:build lockdebug

package dispatch

// Runtime twin of ltclint's lockorder analyzer: under -tags lockdebug every
// dispatch lock site reports acquisitions and releases here, keyed by
// goroutine, and any violation of the documented lock order panics at the
// acquisition site — before the real Lock call, so a deliberate inversion in
// a test panics instead of deadlocking. The static analyzer proves the order
// for the code it can see; this checker catches what only shows up live
// (orders fed by runtime indices, paths through interface calls) and runs
// under -race in the nightly stress job.
//
// Class levels mirror internal/lint's lockLevels table; ord disambiguates
// same-class instances (the shard index) and must strictly ascend within a
// class, matching the //ltc:ascending contract.

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
)

var ldLevels = map[string]int{
	"regMu": 10,
	"shard": 20,
	"async": 30,
	"queue": 50,
	"leaf":  90,
}

type ldEntry struct {
	class string
	level int
	ord   int
}

var (
	ldMu   sync.Mutex
	ldHeld = map[uint64][]ldEntry{}
)

// ldGID extracts the current goroutine's ID from the stack header — slow,
// which is fine: this file only builds under the lockdebug tag.
func ldGID() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	// "goroutine 123 [running]:"
	s := buf[len("goroutine "):n]
	var id uint64
	for _, c := range s {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

func ldDescribe(held []ldEntry) string {
	parts := make([]string, len(held))
	for i, h := range held {
		parts[i] = fmt.Sprintf("%s(%d)", h.class, h.ord)
	}
	sort.Strings(parts)
	return strings.Join(parts, ", ")
}

func ldLock(class string, ord int) {
	level, ok := ldLevels[class]
	if !ok {
		panic("lockdebug: unknown lock class " + class)
	}
	g := ldGID()
	ldMu.Lock()
	defer ldMu.Unlock()
	held := ldHeld[g]
	if class == "leaf" && len(held) > 0 {
		panic(fmt.Sprintf("lockdebug: leaf lock acquired while holding {%s}; leaf locks require an empty held set", ldDescribe(held)))
	}
	for _, h := range held {
		switch {
		case h.class == class && h.ord == ord:
			panic(fmt.Sprintf("lockdebug: %s(%d) is already held", class, ord))
		case level < h.level:
			panic(fmt.Sprintf("lockdebug: acquiring %s(%d) (level %d) while holding %s(%d) (level %d) violates the lock order",
				class, ord, level, h.class, h.ord, h.level))
		case level == h.level && ord <= h.ord:
			panic(fmt.Sprintf("lockdebug: same-class locks must be acquired in ascending order: %s(%d) after %s(%d)",
				class, ord, h.class, h.ord))
		}
	}
	ldHeld[g] = append(held, ldEntry{class: class, level: level, ord: ord})
}

func ldUnlock(class string, ord int) {
	g := ldGID()
	ldMu.Lock()
	defer ldMu.Unlock()
	held := ldHeld[g]
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].class == class && held[i].ord == ord {
			held = append(held[:i], held[i+1:]...)
			if len(held) == 0 {
				delete(ldHeld, g)
			} else {
				ldHeld[g] = held
			}
			return
		}
	}
	panic(fmt.Sprintf("lockdebug: unlock of %s(%d), which this goroutine does not hold", class, ord))
}

func ldAssertNoneHeld(op string) {
	g := ldGID()
	ldMu.Lock()
	defer ldMu.Unlock()
	if held := ldHeld[g]; len(held) > 0 {
		panic(fmt.Sprintf("lockdebug: %s with {%s} held; the bus lock is a leaf — release every dispatch lock before publishing", op, ldDescribe(held)))
	}
}
