package ltc

import (
	"errors"
	"fmt"
)

// ChurnReport summarises one sequential replay of a churn workload.
type ChurnReport struct {
	// AbsoluteLatency is the paper's objective: the largest worker index
	// with an assignment. RelativeLatency measures from each task's post
	// index instead (equal when nothing was posted late).
	AbsoluteLatency int
	RelativeLatency int
	// Completed tasks reached δ; Expired were retired before reaching it.
	Completed int
	Expired   int
	// WorkersFed is how many workers of the stream were consumed.
	WorkersFed int
	// Statuses is the final per-task lifecycle snapshot, in TaskID order.
	Statuses []TaskStatus
}

// ReplayChurn drives a churn workload sequentially through a fresh
// Platform: workers check in one by one, and each lifecycle event fires
// once its arrival tick is reached — posts must come back with the plan's
// dense IDs, expiries retire tasks whether or not they completed first.
// Events scheduled past the end of the worker stream (a TTL can outlive
// it) fire after the last worker, so every planned expiry lands and the
// report's Completed + Expired always covers the whole task set.
func ReplayChurn(cw *ChurnWorkload, algo Algorithm, opts ...Option) (*ChurnReport, error) {
	plat, err := NewPlatform(cw.Instance, algo, opts...)
	if err != nil {
		return nil, err
	}
	rep := &ChurnReport{}
	next, pendingPosts := 0, 0
	for _, e := range cw.Events {
		if e.Kind == EventPost {
			pendingPosts++
		}
	}
	fire := func(arrived int) error {
		for next < len(cw.Events) && cw.Events[next].Arrival <= arrived {
			e := cw.Events[next]
			next++
			switch e.Kind {
			case EventPost:
				pendingPosts--
				id, err := plat.PostTask(e.Task)
				if err != nil {
					return err
				}
				if id != e.Task.ID {
					return fmt.Errorf("ltc: posted task got ID %d, churn plan expected %d", id, e.Task.ID)
				}
			case EventRetire:
				if err := plat.RetireTask(e.ID); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := fire(0); err != nil {
		return nil, err
	}
	for i, worker := range cw.Instance.Workers {
		// Pending retires alone can't need more workers — the trailing fire
		// below lands them; pending posts can revive a done platform, so
		// keep feeding while any remain.
		if plat.Done() && pendingPosts == 0 {
			break
		}
		if _, err := plat.CheckIn(worker); err != nil && !errors.Is(err, ErrPlatformDone) {
			return nil, err
		}
		rep.WorkersFed = i + 1
		if err := fire(i + 1); err != nil {
			return nil, err
		}
	}
	// Trailing events: expiries scheduled beyond the stream's end.
	if err := fire(int(^uint(0) >> 1)); err != nil {
		return nil, err
	}
	rep.AbsoluteLatency = plat.Latency()
	rep.RelativeLatency = plat.RelativeLatency()
	rep.Statuses = plat.TaskStatuses()
	for _, st := range rep.Statuses {
		if st.Completed {
			rep.Completed++
		} else if st.Retired {
			rep.Expired++
		}
	}
	return rep, nil
}
