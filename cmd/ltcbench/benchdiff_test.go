package main

import (
	"encoding/json"
	"testing"
)

// TestCellKeyRebalancedNormalization pins the artifact-compatibility rule
// for the rebalanced axis: the "/rebalanced" suffix appears only when the
// cell was actually measured under live re-sharding, so artifacts
// recorded before the field existed — whose cells decode with Rebalanced
// false — keep byte-identical keys and keep diffing against static
// candidates, exactly like the feeders normalization before it.
func TestCellKeyRebalancedNormalization(t *testing.T) {
	static := throughputResult{Scenario: "rushhour", Mode: "batch", Shards: 8, BatchSize: 64, Balanced: true, Feeders: 2}
	presampled := static
	presampled.Presampled = true
	rebal := presampled
	rebal.Rebalanced = true
	rebal.Migrations = 7

	wantStatic := "rushhour/batch/shards=8/batch=64/feeders=2/balanced"
	if got := cellKey(static, 1); got != wantStatic {
		t.Fatalf("static key = %q, want %q", got, wantStatic)
	}
	if got, want := cellKey(presampled, 1), wantStatic+"/presampled"; got != want {
		t.Fatalf("presampled key = %q, want %q", got, want)
	}
	if got, want := cellKey(rebal, 1), wantStatic+"/presampled/rebalanced"; got != want {
		t.Fatalf("rebalanced key = %q, want %q", got, want)
	}

	// A pre-PR8 artifact cell carries neither rebalanced nor migrations;
	// decoding must leave both at their zero values and reproduce the old
	// key — including the feeders fallback to the artifact-level count.
	old := []byte(`{"scenario":"rushhour","mode":"batch","shards":8,"batch_size":64,"balanced":true}`)
	var legacy throughputResult
	if err := json.Unmarshal(old, &legacy); err != nil {
		t.Fatal(err)
	}
	if legacy.Rebalanced || legacy.Migrations != 0 {
		t.Fatalf("legacy cell decoded as rebalanced: %+v", legacy)
	}
	if got := cellKey(legacy, 2); got != wantStatic {
		t.Fatalf("legacy key = %q, want %q", got, wantStatic)
	}

	// Round-tripping a static cell through JSON must not invent the new
	// fields (omitempty), so freshly recorded static artifacts stay
	// byte-comparable with pre-PR8 ones.
	data, err := json.Marshal(static)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"presampled", "rebalanced", "migrations"} {
		if _, ok := m[field]; ok {
			t.Fatalf("static cell serialized a %q field: %s", field, data)
		}
	}
}
