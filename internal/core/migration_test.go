package core

import (
	"errors"
	"math"
	"testing"

	"ltc/internal/geo"
	"ltc/internal/model"
)

// migrationShard is a minimal stand-in for one dispatch shard: its own
// instance (dense local ID space), candidate index and engine, the way the
// sharded dispatcher carves sub-instances out of a source instance.
type migrationShard struct {
	in  *model.Instance
	ci  *model.CandidateIndex
	eng *Engine
}

func newMigrationShard(base *model.Instance, tasks []model.Task, factory OnlineFactory) *migrationShard {
	in := &model.Instance{
		Epsilon: base.Epsilon,
		K:       base.K,
		Model:   base.Model,
		MinAcc:  base.MinAcc,
	}
	for i, t := range tasks {
		in.Tasks = append(in.Tasks, model.Task{ID: model.TaskID(i), Loc: t.Loc})
	}
	ci := model.NewCandidateIndex(in)
	return &migrationShard{in: in, ci: ci, eng: NewEngine(in, ci, factory)}
}

// appendTask extends the shard's instance with a task at the given location
// and returns the local view (dense local ID), mirroring
// model.SubInstance.AppendTask.
func (s *migrationShard) appendTask(loc geo.Point) model.Task {
	t := model.Task{ID: model.TaskID(len(s.in.Tasks)), Loc: loc}
	s.in.Tasks = append(s.in.Tasks, t)
	return t
}

// TestEngineEvictAdoptRoundTrip moves a partially credited task from one
// engine to another for each online solver: the adopted task keeps its
// credit, latency bookkeeping and completion race; the source stops counting
// it; the merged Progress across both engines is conserved.
func TestEngineEvictAdoptRoundTrip(t *testing.T) {
	for _, factory := range []struct {
		name string
		f    OnlineFactory
	}{
		{"LAF", func(in *model.Instance, ci *model.CandidateIndex) Online { return NewLAF(in, ci) }},
		{"AAM", func(in *model.Instance, ci *model.CandidateIndex) Online { return NewAAM(in, ci) }},
		{"Random", func(in *model.Instance, ci *model.CandidateIndex) Online { return NewRandom(in, ci, 5) }},
	} {
		t.Run(factory.name, func(t *testing.T) {
			base := lifecycleInstance(4, 600, 11)
			src := newMigrationShard(base, base.Tasks[:2], factory.f)
			dst := newMigrationShard(base, base.Tasks[2:4], factory.f)

			// Partially credit the source's tasks.
			const warm = 6
			for i := 0; i < warm; i++ {
				src.eng.Arrive(base.Workers[i])
			}
			const victim = model.TaskID(1)
			credit := src.eng.Arrangement().Accumulated[victim]
			last := src.eng.TaskLastUsed(victim)

			snap, err := src.eng.EvictTask(victim)
			if err != nil {
				t.Fatal(err)
			}
			if snap.Credit != credit || snap.LastUsed != last || snap.Retired {
				t.Fatalf("snapshot %+v, want credit %v last %v", snap, credit, last)
			}
			if src.ci.Live(victim) {
				t.Fatal("evicted task still live in the source index")
			}
			if !src.eng.TaskEvicted(victim) {
				t.Fatal("TaskEvicted false after evict")
			}
			if _, err := src.eng.EvictTask(victim); err == nil {
				t.Fatal("double evict accepted")
			}
			if c, total := src.eng.Progress(); total != 1 || c != progressCompleted(src.eng) {
				t.Fatalf("source progress %d/%d after evict", c, total)
			}

			local := dst.appendTask(base.Tasks[victim].Loc)
			if err := dst.eng.AdoptTask(local, snap); err != nil {
				t.Fatal(err)
			}
			if got := dst.eng.Arrangement().Accumulated[local.ID]; got != snap.Credit {
				t.Fatalf("adopted credit %v, want %v", got, snap.Credit)
			}
			if dst.eng.TaskLastUsed(local.ID) != snap.LastUsed {
				t.Fatalf("adopted lastUsed %d, want %d", dst.eng.TaskLastUsed(local.ID), snap.LastUsed)
			}
			if dst.eng.TaskCompleted(local.ID) != snap.Completed {
				t.Fatal("adopted completion status diverged")
			}
			if !dst.ci.Live(local.ID) {
				t.Fatal("adopted live task not live in the target index")
			}

			// The union of both engines still completes the whole task set.
			for i := warm; i < len(base.Workers); i++ {
				if src.eng.Done() && dst.eng.Done() {
					break
				}
				w := base.Workers[i]
				src.eng.Arrive(w)
				dst.eng.Arrive(w)
			}
			if !src.eng.Done() || !dst.eng.Done() {
				t.Fatal("stream exhausted before both engines completed")
			}
			sc, st := src.eng.Progress()
			dc, dt := dst.eng.Progress()
			if st+dt != 4 || sc+dc != 4 {
				t.Fatalf("merged progress %d/%d + %d/%d, want 4/4 total", sc, st, dc, dt)
			}
			if !dst.eng.TaskCompleted(local.ID) {
				t.Fatal("migrated task never completed at the target")
			}
		})
	}
}

func progressCompleted(e *Engine) int {
	// One source task remains (ID 0); it counts as completed iff it is.
	if e.TaskCompleted(0) {
		return 1
	}
	return 0
}

// TestEngineAdoptRetiredTask: a retired task migrates with its Retired flag,
// is insert-then-removed from the target index (keeping the dense ID space
// in lockstep), and a later PostTask on the target still works.
func TestEngineAdoptRetiredTask(t *testing.T) {
	base := lifecycleInstance(4, 400, 13)
	f := func(in *model.Instance, ci *model.CandidateIndex) Online { return NewLAF(in, ci) }
	src := newMigrationShard(base, base.Tasks[:2], f)
	dst := newMigrationShard(base, base.Tasks[2:4], f)

	if _, err := src.eng.RetireTask(0); err != nil {
		t.Fatal(err)
	}
	snap, err := src.eng.EvictTask(0)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Retired {
		t.Fatal("snapshot lost the Retired flag")
	}
	if src.eng.Retired() != 0 {
		t.Fatalf("source still counts the evicted retirement: %d", src.eng.Retired())
	}
	local := dst.appendTask(base.Tasks[0].Loc)
	if err := dst.eng.AdoptTask(local, snap); err != nil {
		t.Fatal(err)
	}
	if dst.ci.Live(local.ID) {
		t.Fatal("adopted retired task live in the target index")
	}
	if !dst.eng.TaskRetired(local.ID) || dst.eng.Retired() != 1 {
		t.Fatalf("target retirement bookkeeping: retired=%t count=%d",
			dst.eng.TaskRetired(local.ID), dst.eng.Retired())
	}
	// The dense ID space stayed in lockstep: a normal post still extends it.
	nt := dst.appendTask(geo.Point{X: 30, Y: 30})
	if err := dst.eng.PostTask(nt, 0); err != nil {
		t.Fatal(err)
	}
	if !dst.ci.Live(nt.ID) {
		t.Fatal("post after retired adoption did not reach the index")
	}
}

// TestEngineMigrationErrors covers the evict/adopt error paths.
func TestEngineMigrationErrors(t *testing.T) {
	base := lifecycleInstance(3, 10, 17)
	f := func(in *model.Instance, ci *model.CandidateIndex) Online { return NewLAF(in, ci) }
	src := newMigrationShard(base, base.Tasks, f)

	if _, err := src.eng.EvictTask(-1); err == nil {
		t.Fatal("negative evict accepted")
	}
	if _, err := src.eng.EvictTask(99); err == nil {
		t.Fatal("out-of-range evict accepted")
	}

	snap, err := src.eng.EvictTask(0)
	if err != nil {
		t.Fatal(err)
	}
	dst := newMigrationShard(base, base.Tasks[:1], f)
	// Non-dense adopted ID.
	if err := dst.eng.AdoptTask(model.Task{ID: 7, Loc: base.Tasks[0].Loc}, snap); err == nil {
		t.Fatal("non-dense adopt accepted")
	}
	// Adopt without appending to the instance table first.
	if err := dst.eng.AdoptTask(model.Task{ID: 1, Loc: base.Tasks[0].Loc}, snap); err == nil {
		t.Fatal("adopt without instance append accepted")
	}
	// Desync the index deliberately: adopt must surface the dense-ID error.
	extra := dst.appendTask(geo.Point{X: 2, Y: 2})
	if err := dst.ci.Insert(extra); err != nil {
		t.Fatal(err)
	}
	if err := dst.eng.AdoptTask(extra, snap); err == nil {
		t.Fatal("adopt over a desynced index accepted")
	}
}

// TestEngineMigrationNoSupport: solvers outside the TaskLifecycle /
// TaskMigrator contracts fail with the sentinel errors.
func TestEngineMigrationNoSupport(t *testing.T) {
	base := lifecycleInstance(2, 4, 19)
	shard := newMigrationShard(base, base.Tasks, func(in *model.Instance, ci *model.CandidateIndex) Online {
		return staticOnline{}
	})
	if _, err := shard.eng.EvictTask(0); !errors.Is(err, ErrNoLifecycle) {
		t.Fatalf("evict on a static solver: %v, want ErrNoLifecycle", err)
	}
	local := shard.appendTask(geo.Point{X: 1, Y: 1})
	if err := shard.eng.AdoptTask(local, TaskSnapshot{}); !errors.Is(err, ErrNoMigration) {
		t.Fatalf("adopt on a static solver: %v, want ErrNoMigration", err)
	}
}

// staticOnline is an Online solver without lifecycle or migration support.
type staticOnline struct{}

func (staticOnline) Name() string                       { return "static" }
func (staticOnline) Arrive(model.Worker) []model.TaskID { return nil }
func (staticOnline) Done() bool                         { return true }

// TestTaskStateAdopt exercises the adopt bookkeeping directly: credit at or
// above δ lands settled (zeroNeed set), credit inside the epsilon band reads
// done but keeps its residual need, closed adoption never counts toward
// remaining, and non-dense adoption panics.
func TestTaskStateAdopt(t *testing.T) {
	ts := newTaskState(0, 2.0)
	ts.adopt(0, 0.5, false)       // open, incomplete
	ts.adopt(1, 2.5, false)       // completed
	ts.adopt(2, 1.0, true)        // retired while incomplete
	ts.adopt(3, 2.0-1e-12, false) // inside the epsilon band: done, residual need
	if ts.remaining != 1 {
		t.Fatalf("remaining %d, want 1", ts.remaining)
	}
	if ts.done(0) || !ts.done(1) || !ts.done(2) || !ts.done(3) {
		t.Fatalf("done flags: %t %t %t %t", ts.done(0), ts.done(1), ts.done(2), ts.done(3))
	}
	if bitGet(ts.zeroNeed, 1) != true || bitGet(ts.zeroNeed, 2) != true {
		t.Fatal("settled adoptions must set zeroNeed")
	}
	if bitGet(ts.zeroNeed, 3) {
		t.Fatal("epsilon-band adoption must keep its residual need")
	}
	sum, maxNeed := ts.totalNeed()
	if want := (2.0 - 0.5) + 1e-12; math.Abs(sum-want) > 1e-9 || maxNeed != 1.5 {
		t.Fatalf("totalNeed %v/%v", sum, maxNeed)
	}
	// The adopted state keeps racing normally.
	if !ts.add(0, 2.0) {
		t.Fatal("completing credit on an adopted task not reported")
	}
	if ts.remaining != 0 || !ts.allDone() {
		t.Fatalf("remaining %d after completion", ts.remaining)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("non-dense adopt did not panic")
			}
		}()
		ts.adopt(9, 0, false)
	}()
}
