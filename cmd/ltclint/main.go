// Command ltclint runs the ltclint analyzer suite (internal/lint): custom
// static checks that enforce the dispatch layer's concurrency contracts —
// lock ordering, hot-path allocation freedom, copy-on-write snapshot
// discipline, atomic access discipline, and hot-struct field alignment.
//
// Standalone (the mode CI uses):
//
//	go run ./cmd/ltclint ./...
//
// As a vet tool, using the toolchain's unit-checker protocol:
//
//	go build -o /tmp/ltclint ./cmd/ltclint
//	go vet -vettool=/tmp/ltclint ./...
//
// In vet-tool mode each package is analyzed in a separate process;
// cross-package lock-acquisition facts are persisted through the .vetx
// mechanism. Diagnostics in _test.go files are suppressed in vet-tool mode
// (tests intentionally poke at internals); the standalone mode analyzes
// exactly the non-test sources, matching the CI gate.
package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"strings"

	"ltc/internal/lint"
	"ltc/internal/lint/analysis"
	"ltc/internal/lint/load"
)

func main() {
	args := os.Args[1:]

	// Unit-checker protocol, spoken by `go vet -vettool=`.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			// The content after the name feeds the build cache key.
			fmt.Printf("ltclint version 1 suite %s\n", strings.Join(analyzerNames(), ","))
			return
		case args[0] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(vetUnit(args[0]))
		}
	}

	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := lint.Run(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ltclint:", err)
		os.Exit(1)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "ltclint: %d finding(s)\n", len(findings))
		os.Exit(2)
	}
}

func analyzerNames() []string {
	var names []string
	for _, a := range lint.Analyzers {
		names = append(names, a.Name)
	}
	return names
}

// vetConfig mirrors the JSON config cmd/go passes to vet tools.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func vetUnit(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ltclint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ltclint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	exports := make(map[string]string, len(cfg.PackageFile))
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	// Source-level import paths may need mapping to canonical ones.
	for src, canon := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[canon]; ok {
			exports[src] = file
		}
	}

	fset := token.NewFileSet()
	pkg, err := load.Files(fset, cfg.ImportPath, cfg.GoFiles, exports)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure || cfg.VetxOnly {
			writeVetx(cfg.VetxOutput, map[string]any{})
			return 0
		}
		fmt.Fprintf(os.Stderr, "ltclint: %v\n", err)
		return 1
	}

	facts := analysis.NewFactStore()
	for _, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil {
			continue // facts are an optimization; missing ones only lose precision
		}
		var m map[string]any
		if json.Unmarshal(data, &m) == nil {
			for k, v := range m {
				facts.Set(k, v)
			}
		}
	}

	findings, err := lint.AnalyzePackage(lint.Analyzers, pkg, facts, !cfg.VetxOnly)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ltclint: %v\n", err)
		return 1
	}
	if cfg.VetxOutput != "" {
		writeVetx(cfg.VetxOutput, facts.All())
	}
	if cfg.VetxOnly {
		return 0
	}
	shown := 0
	for _, f := range findings {
		if strings.HasSuffix(f.Pos.Filename, "_test.go") {
			continue
		}
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", f.Pos, f.Analyzer, f.Message)
		shown++
	}
	if shown > 0 {
		return 2
	}
	return 0
}

func writeVetx(path string, facts map[string]any) {
	if path == "" {
		return
	}
	data, err := json.Marshal(facts)
	if err != nil {
		data = []byte("{}")
	}
	_ = os.WriteFile(path, data, 0o666)
}
