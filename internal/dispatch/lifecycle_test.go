package dispatch

import (
	"errors"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"ltc/internal/geo"
	"ltc/internal/model"
)

func lifecycleInstance(nTasks, nWorkers int, width float64, seed uint64) *model.Instance {
	rng := rand.New(rand.NewPCG(seed, seed^0xfeed))
	in := &model.Instance{
		Epsilon: 0.1,
		K:       4,
		Model:   model.SigmoidDistance{DMax: 30},
		MinAcc:  0.5,
	}
	for t := 0; t < nTasks; t++ {
		in.Tasks = append(in.Tasks, model.Task{
			ID:  model.TaskID(t),
			Loc: geo.Point{X: rng.Float64() * width, Y: rng.Float64() * width},
		})
	}
	for w := 1; w <= nWorkers; w++ {
		in.Workers = append(in.Workers, model.Worker{
			Index: w,
			Loc:   geo.Point{X: rng.Float64() * width, Y: rng.Float64() * width},
			Acc:   0.8 + rng.Float64()*0.2,
		})
	}
	return in
}

// TestDispatcherPostRoutesToOwningShard: a posted task lands on the shard
// its location routes to — also when that location sits in a tile that held
// no initial task — and workers at the same location reach it, completing
// it eventually.
func TestDispatcherPostRoutesToOwningShard(t *testing.T) {
	// Tasks clustered in one corner so most tiles start empty.
	in := lifecycleInstance(40, 0, 80, 3)
	in.Workers = nil
	d, err := New(in, 16, lafFactory)
	if err != nil {
		t.Fatal(err)
	}
	// Post into the far (initially task-free) corner: Locate falls back to
	// the nearest-task shard, so the task must land where workers at that
	// location are routed.
	farLoc := geo.Point{X: 900, Y: 900}
	gid, err := d.PostTask(model.Task{Loc: farLoc})
	if err != nil {
		t.Fatal(err)
	}
	if int(gid) != len(in.Tasks) {
		t.Fatalf("posted gid %d, want %d", gid, len(in.Tasks))
	}
	if done := d.Done(); done {
		t.Fatal("dispatcher done with an open posted task")
	}
	// Flood the posted task's location with workers until it completes.
	for i := 1; i <= 200 && !taskCompleted(d, gid); i++ {
		if _, err := d.CheckIn(model.Worker{Index: i, Loc: farLoc, Acc: 0.95}); err != nil &&
			!errors.Is(err, ErrDone) {
			t.Fatal(err)
		}
	}
	if !taskCompleted(d, gid) {
		t.Fatal("task posted into empty tile never completed")
	}
	st := d.TaskStatuses()[gid]
	if st.PostIndex != 0 || st.LastUsed == 0 {
		t.Fatalf("status %+v", st)
	}
}

func taskCompleted(d *Dispatcher, id model.TaskID) bool {
	return d.TaskStatuses()[id].Completed
}

// TestDispatcherRelativeLatency: a task posted after p arrivals reports
// latency both absolutely and relative to p.
func TestDispatcherRelativeLatency(t *testing.T) {
	in := lifecycleInstance(6, 300, 60, 9)
	d, err := New(in, 1, aamFactory)
	if err != nil {
		t.Fatal(err)
	}
	const postAt = 40
	for i := 0; i < postAt; i++ {
		if _, err := d.CheckIn(in.Workers[i]); err != nil && !errors.Is(err, ErrDone) {
			t.Fatal(err)
		}
	}
	gid, err := d.PostTask(model.Task{Loc: geo.Point{X: 30, Y: 30}})
	if err != nil {
		t.Fatal(err)
	}
	for i := postAt; i < len(in.Workers) && !d.Done(); i++ {
		if _, err := d.CheckIn(in.Workers[i]); err != nil && !errors.Is(err, ErrDone) {
			t.Fatal(err)
		}
	}
	if !d.Done() {
		t.Fatal("incomplete")
	}
	st := d.TaskStatuses()[gid]
	if st.PostIndex != postAt {
		t.Fatalf("post index %d, want %d", st.PostIndex, postAt)
	}
	if !st.Completed || st.LastUsed <= postAt {
		t.Fatalf("status %+v", st)
	}
	if d.RelativeLatency() > d.Latency() {
		t.Fatalf("relative latency %d exceeds absolute %d", d.RelativeLatency(), d.Latency())
	}
	if d.RelativeLatency() < st.LastUsed-st.PostIndex {
		t.Fatalf("relative latency %d below the late task's own %d",
			d.RelativeLatency(), st.LastUsed-st.PostIndex)
	}
}

// TestDispatcherPostIndexSparseFeed: post indices anchor to the largest
// worker index seen — the same unit as Latency — not to the count of
// check-ins, so relative latency stays honest for sparse index feeds.
func TestDispatcherPostIndexSparseFeed(t *testing.T) {
	in := lifecycleInstance(6, 300, 60, 9)
	d, err := New(in, 1, aamFactory)
	if err != nil {
		t.Fatal(err)
	}
	// Three check-ins with sparse global indices 10, 20, 30.
	for _, idx := range []int{10, 20, 30} {
		w := in.Workers[idx-1]
		w.Index = idx
		if _, err := d.CheckIn(w); err != nil {
			t.Fatal(err)
		}
	}
	gid, err := d.PostTask(model.Task{Loc: geo.Point{X: 30, Y: 30}})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.TaskStatuses()[gid].PostIndex; got != 30 {
		t.Fatalf("post index %d, want 30 (largest index seen, not the 3 check-ins)", got)
	}
}

// TestDispatcherRetire: retiring unknown ids errors; retiring an open task
// unblocks Done; posting revives a done dispatcher.
func TestDispatcherRetire(t *testing.T) {
	in := lifecycleInstance(5, 400, 60, 21)
	d, err := New(in, 2, lafFactory)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RetireTask(99); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("unknown retire: %v", err)
	}
	if err := d.RetireTask(-1); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("negative retire: %v", err)
	}
	// Retire every initial task: platform completes without any check-in.
	for id := range in.Tasks {
		if err := d.RetireTask(model.TaskID(id)); err != nil {
			t.Fatal(err)
		}
	}
	if !d.Done() {
		t.Fatal("not done after retiring every task")
	}
	if _, err := d.CheckIn(in.Workers[0]); !errors.Is(err, ErrDone) {
		t.Fatalf("check-in on done dispatcher: %v", err)
	}
	resolved, total := d.Progress()
	if resolved != total || total != len(in.Tasks) {
		t.Fatalf("progress %d/%d", resolved, total)
	}
	// A post revives it.
	gid, err := d.PostTask(model.Task{Loc: geo.Point{X: 30, Y: 30}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Done() {
		t.Fatal("done right after a post")
	}
	for i := 0; i < len(in.Workers) && !d.Done(); i++ {
		if _, err := d.CheckIn(in.Workers[i]); err != nil && !errors.Is(err, ErrDone) {
			t.Fatal(err)
		}
	}
	if !taskCompleted(d, gid) {
		t.Fatal("revival task never completed")
	}
}

// TestDispatcherChurnStress is the -race stress test of the task lifecycle:
// feeder goroutines stream check-ins while churner goroutines post and
// retire tasks across shards. Invariants: PostTask returns dense unique
// IDs, Progress is monotone (sampled concurrently), no task is lost (every
// ID has a status; credits cover the whole dense space), and after retiring
// everything still open the dispatcher reads Done.
func TestDispatcherChurnStress(t *testing.T) {
	in := lifecycleInstance(60, 3000, 150, 31)
	d, err := New(in, 8, aamFactory)
	if err != nil {
		t.Fatal(err)
	}

	var (
		wg      sync.WaitGroup
		cursor  atomic.Int64
		postIDs sync.Map // gid → struct{}
		nPosts  atomic.Int64
	)
	// Progress monitor (own WaitGroup — it runs until the mutators finish):
	// resolved and total must never decrease.
	monitorStop := make(chan struct{})
	var monitorWG sync.WaitGroup
	monitorWG.Add(1)
	go func() {
		defer monitorWG.Done()
		lastResolved, lastTotal := 0, 0
		for {
			select {
			case <-monitorStop:
				return
			default:
			}
			resolved, total := d.Progress()
			if resolved < lastResolved || total < lastTotal {
				t.Errorf("progress went backwards: %d/%d after %d/%d", resolved, total, lastResolved, lastTotal)
				return
			}
			if resolved > total {
				t.Errorf("resolved %d exceeds total %d", resolved, total)
				return
			}
			lastResolved, lastTotal = resolved, total
			runtime.Gosched() // keep the spin polite on small GOMAXPROCS
		}
	}()

	for g := 0; g < 4; g++ { // feeders
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(in.Workers) {
					return
				}
				if _, err := d.CheckIn(in.Workers[i]); err != nil && !errors.Is(err, ErrDone) {
					t.Errorf("CheckIn: %v", err)
					return
				}
			}
		}()
	}
	for g := 0; g < 2; g++ { // churners
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g)+100, 55))
			for i := 0; i < 80; i++ {
				if rng.IntN(3) > 0 {
					loc := geo.Point{X: rng.Float64() * 150, Y: rng.Float64() * 150}
					gid, err := d.PostTask(model.Task{Loc: loc})
					if err != nil {
						t.Errorf("PostTask: %v", err)
						return
					}
					if _, dup := postIDs.LoadOrStore(gid, struct{}{}); dup {
						t.Errorf("duplicate posted ID %d", gid)
						return
					}
					nPosts.Add(1)
				} else {
					_, total := d.Progress()
					if err := d.RetireTask(model.TaskID(rng.IntN(total))); err != nil {
						t.Errorf("RetireTask: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(monitorStop)
	monitorWG.Wait()

	// No lost tasks: dense ID space covers initial + posts, every status is
	// addressable, credits span the same space.
	statuses := d.TaskStatuses()
	wantTotal := len(in.Tasks) + int(nPosts.Load())
	if len(statuses) != wantTotal {
		t.Fatalf("%d statuses, want %d", len(statuses), wantTotal)
	}
	if credits := d.Credits(nil); len(credits) != wantTotal {
		t.Fatalf("%d credits, want %d", len(credits), wantTotal)
	}
	postIDs.Range(func(k, _ any) bool {
		gid := k.(model.TaskID)
		if int(gid) >= wantTotal {
			t.Errorf("posted ID %d outside dense space %d", gid, wantTotal)
		}
		return true
	})

	// Drain: retire everything still open; the dispatcher must then be Done
	// and remain consistent.
	for id, st := range statuses {
		if !st.Completed && !st.Retired {
			if err := d.RetireTask(model.TaskID(id)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !d.Done() {
		t.Fatal("not done after retiring all open tasks")
	}
	resolved, total := d.Progress()
	if resolved != total || total != wantTotal {
		t.Fatalf("final progress %d/%d, want %d/%d", resolved, total, wantTotal, wantTotal)
	}
	// The merged arrangement stays coherent with per-task credits.
	arr := d.Arrangement()
	credits := d.Credits(nil)
	if len(arr.Accumulated) != len(credits) {
		t.Fatalf("arrangement tasks %d, credits %d", len(arr.Accumulated), len(credits))
	}
	for id := range credits {
		if arr.Accumulated[id] != credits[id] {
			t.Fatalf("task %d: merged credit %v != engine credit %v", id, arr.Accumulated[id], credits[id])
		}
	}
}
