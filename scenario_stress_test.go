package ltc

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// hotspotWorkload builds the skewed instance the stress tests drive: the
// hotspot scenario over a small Table IV base.
func hotspotWorkload(t testing.TB, scale float64) *Instance {
	t.Helper()
	cfg := DefaultWorkload().Scale(scale)
	cfg.Seed = 33
	s, err := NewScenario(ScenarioHotspot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	in, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestScenarioPlatformSmoke runs every scenario through a balanced
// multi-shard platform sequentially: valid receipts, imbalance within
// range, and the balanced layout engaged.
func TestScenarioPlatformSmoke(t *testing.T) {
	for _, kind := range ScenarioKinds() {
		s, err := NewScenario(kind, func() WorkloadConfig {
			c := DefaultWorkload().Scale(0.02)
			c.Seed = 9
			return c
		}())
		if err != nil {
			t.Fatal(err)
		}
		in, err := s.Generate()
		if err != nil {
			t.Fatal(err)
		}
		plat, err := NewPlatform(in, AAM, WithShards(6), WithBalancedShards())
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if plat.Shards() > 1 && !plat.Balanced() {
			t.Fatalf("%s: balanced layout not engaged", kind)
		}
		for _, w := range in.Workers {
			if plat.Done() {
				break
			}
			if _, err := plat.CheckIn(w); err != nil && !errors.Is(err, ErrPlatformDone) {
				t.Fatalf("%s: %v", kind, err)
			}
		}
		if im := plat.Imbalance(); im < 1 || im > float64(plat.Shards()) {
			t.Fatalf("%s: imbalance %v out of [1, %d]", kind, im, plat.Shards())
		}
	}
}

// TestHotspotBalancedAsyncLifecycleStress drives the hotspot scenario
// through CheckInAsync concurrently with PostTask/RetireTask on a balanced
// multi-shard platform (run under -race). After the final Flush: no lost
// workers (every enqueued check-in observed), posted tasks got dense
// sequential IDs, and the per-shard load accounts grew monotonically
// across snapshots.
func TestHotspotBalancedAsyncLifecycleStress(t *testing.T) {
	in := hotspotWorkload(t, 0.05)
	plat, err := NewPlatform(in, LAF, WithShards(8), WithBalancedShards(), WithQueueCap(256))
	if err != nil {
		t.Fatal(err)
	}
	const (
		feeders  = 4
		posters  = 2
		nPosts   = 40
		snapshot = 97 // stats snapshot cadence, in enqueues per feeder
	)
	var (
		enqueued atomic.Int64
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	// Feeders split the scenario stream and watch per-shard load accounts
	// for monotonicity while the stress runs.
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			prev := make([]int, plat.Shards())
			for i := f; i < len(in.Workers); i += feeders {
				if err := plat.CheckInAsync(in.Workers[i]); err != nil {
					fail(err)
					return
				}
				enqueued.Add(1)
				if i/feeders%snapshot == 0 {
					stats := plat.ShardStats()
					for si, st := range stats {
						if st.Workers < prev[si] {
							fail(errors.New("per-shard Workers count decreased"))
							return
						}
						prev[si] = st.Workers
						if st.QueueDepth < 0 {
							fail(errors.New("negative queue depth"))
							return
						}
					}
					if im := plat.Imbalance(); im < 1-1e-9 || im > float64(plat.Shards())+1e-9 {
						fail(errors.New("imbalance out of range"))
						return
					}
				}
			}
		}(f)
	}
	// Posters add hot-region tasks mid-stream and retire every other one.
	postedIDs := make([][]TaskID, posters)
	for g := 0; g < posters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < nPosts; i++ {
				loc := in.Tasks[(g*nPosts+i)%len(in.Tasks)].Loc
				id, err := plat.PostTask(Task{Loc: loc})
				if err != nil {
					fail(err)
					return
				}
				postedIDs[g] = append(postedIDs[g], id)
				if i%2 == 1 {
					if err := plat.RetireTask(id); err != nil {
						fail(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	plat.Flush()
	if err := plat.Close(); err != nil {
		t.Fatal(err)
	}
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	// No lost workers: every enqueued check-in was observed by the time
	// Flush returned.
	if got, want := plat.WorkersSeen(), int(enqueued.Load()); got != want {
		t.Fatalf("WorkersSeen %d != enqueued %d", got, want)
	}
	// Dense IDs: the posted IDs across both posters are exactly the range
	// after the initial tasks, each exactly once.
	seen := make(map[TaskID]bool)
	for _, ids := range postedIDs {
		for _, id := range ids {
			if seen[id] {
				t.Fatalf("task ID %d assigned twice", id)
			}
			seen[id] = true
		}
	}
	for i := 0; i < posters*nPosts; i++ {
		if !seen[TaskID(len(in.Tasks)+i)] {
			t.Fatalf("task ID %d missing from the dense post range", len(in.Tasks)+i)
		}
	}
	// The lifecycle snapshot covers every task ever posted.
	if got, want := len(plat.TaskStatuses()), len(in.Tasks)+posters*nPosts; got != want {
		t.Fatalf("TaskStatuses covers %d tasks, want %d", got, want)
	}
	// Final load accounts are consistent with the arrival total.
	sum := 0
	for _, st := range plat.ShardStats() {
		sum += st.Workers
		if st.QueueDepth != 0 {
			t.Fatalf("queue depth %d after Flush+Close", st.QueueDepth)
		}
	}
	if sum != plat.WorkersSeen() {
		// Bounced check-ins (platform momentarily complete) are counted in
		// WorkersSeen but not routed to any shard — they can only make the
		// shard sum smaller, never larger.
		if sum > plat.WorkersSeen() {
			t.Fatalf("shard Workers sum %d exceeds WorkersSeen %d", sum, plat.WorkersSeen())
		}
	}
}

// TestReplayChurnOnScenario: the churn driver replays a scenario-composed
// dynamic workload on a balanced platform — the full composition path
// (Scenario → GenerateChurn → ReplayChurn with WithBalancedShards).
func TestReplayChurnOnScenario(t *testing.T) {
	cfg := DefaultWorkload().Scale(0.02)
	cfg.Seed = 5
	s, err := NewScenario(ScenarioFlashCrowd, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cc := DefaultChurn(cfg)
	cc.TTL = 500
	cw, err := s.GenerateChurn(cc)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayChurn(cw, AAM, WithShards(4), WithBalancedShards())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed+rep.Expired != cw.TotalTasks {
		t.Fatalf("completed %d + expired %d ≠ total %d", rep.Completed, rep.Expired, cw.TotalTasks)
	}
	if rep.AbsoluteLatency < rep.RelativeLatency {
		t.Fatalf("absolute latency %d below relative %d", rep.AbsoluteLatency, rep.RelativeLatency)
	}
}
