package ltc

import (
	"ltc/internal/checkin"
	"ltc/internal/model"
	"ltc/internal/voting"
	"ltc/internal/workload"
)

// Workload generation (paper §V-A), re-exported.

type (
	// WorkloadConfig describes a synthetic Table IV workload.
	WorkloadConfig = workload.Config
	// AccuracyDist is a historical-accuracy distribution (Normal/Uniform).
	AccuracyDist = workload.AccuracyDist
	// CityConfig describes a simulated check-in trace (Table V substitute).
	CityConfig = checkin.CityConfig
	// CityTrace is a generated check-in trace with its LTC instance.
	CityTrace = checkin.Trace
)

// Accuracy distribution kinds for WorkloadConfig.
const (
	DistNormal  = workload.DistNormal
	DistUniform = workload.DistUniform
)

// Skewed workload scenarios (hotspots, flash crowds, rush-hour drift,
// sparse frontiers), re-exported.

// Scenario is a named, seed-deterministic skewed-workload generator over a
// Table IV base config: the same counts, capacity and accuracy population
// with the kind's spatial (and temporal — worker order matters) placement.
// Compose with the dynamic task lifecycle via Scenario.GenerateChurn.
type Scenario = workload.Scenario

// The named workload scenarios accepted by NewScenario.
const (
	// ScenarioUniform is the Table IV baseline (identical to
	// WorkloadConfig.Generate).
	ScenarioUniform = workload.ScenarioUniform
	// ScenarioHotspot concentrates tasks and workers on a few tiles by
	// Zipf rank.
	ScenarioHotspot = workload.ScenarioHotspot
	// ScenarioFlashCrowd sends a time-windowed burst of workers into one
	// small disc.
	ScenarioFlashCrowd = workload.ScenarioFlashCrowd
	// ScenarioRushHour drifts the worker mass across the grid over the
	// stream.
	ScenarioRushHour = workload.ScenarioRushHour
	// ScenarioSparseFrontier places tasks in a strip nearly devoid of
	// workers.
	ScenarioSparseFrontier = workload.ScenarioSparseFrontier
)

// NewScenario returns a scenario of the given kind over base with default
// knobs; see the workload package for the tunables.
func NewScenario(kind string, base WorkloadConfig) (Scenario, error) {
	return workload.NewScenario(kind, base)
}

// ScenarioKinds lists the named scenario kinds in presentation order.
func ScenarioKinds() []string { return workload.ScenarioKinds() }

// Dynamic task lifecycle workloads (online posts + TTL expiry), re-exported.

type (
	// ChurnConfig describes a workload whose task set mutates online:
	// Poisson task posts on the arrival clock plus optional TTL expiry.
	ChurnConfig = workload.ChurnConfig
	// ChurnWorkload is a generated churn scenario: initial instance plus
	// ordered post/retire events to replay against a Platform.
	ChurnWorkload = workload.ChurnWorkload
	// TaskEvent is one lifecycle event (post or retire) on the arrival clock.
	TaskEvent = workload.TaskEvent
)

// Lifecycle event kinds for TaskEvent.
const (
	EventPost   = workload.EventPost
	EventRetire = workload.EventRetire
)

// DefaultChurn returns a churn scenario over the given base workload with
// 60% of the tasks present initially and 40% posted online (no expiry).
func DefaultChurn(base WorkloadConfig) ChurnConfig { return workload.DefaultChurn(base) }

// DefaultWorkload returns Table IV's default synthetic setting
// (|T| = 3000, |W| = 40000, K = 6, Normal(0.86, 0.05), ε = 0.1). Use
// .Scale(f) for laptop-sized variants.
func DefaultWorkload() WorkloadConfig { return workload.Default() }

// ScalabilityWorkload returns the Table IV scalability setting (|W| = 400k).
func ScalabilityWorkload(numTasks int) WorkloadConfig { return workload.Scalability(numTasks) }

// NewYork returns the Table V New York check-in preset
// (3,717 tasks / 227,428 workers).
func NewYork() CityConfig { return checkin.NewYork() }

// Tokyo returns the Table V Tokyo check-in preset
// (9,317 tasks / 573,703 workers).
func Tokyo() CityConfig { return checkin.Tokyo() }

// GenerateCity builds a full check-in trace (users, chronological
// check-ins, POIs, hull) plus its LTC instance.
func GenerateCity(c CityConfig) (*CityTrace, error) { return checkin.Generate(c) }

// Quality verification (paper §II, Definition 4), re-exported.

type (
	// QualityReport summarises an empirical error evaluation.
	QualityReport = voting.ErrorReport
	// Answer is one simulated worker response.
	Answer = voting.Answer
	// Label is a binary task answer (+1 / −1).
	Label = voting.Label
)

// VerifyQuality replays an arrangement `trials` times with simulated
// answers and weighted-majority voting, reporting the empirical error rate.
// For arrangements produced by the LTC algorithms this should sit below the
// instance's ε (usually far below — Hoeffding is a loose bound).
func VerifyQuality(in *Instance, arr *Arrangement, trials int, seed uint64) QualityReport {
	return voting.EmpiricalError(in, arr, trials, seed)
}

// InferTruthEM simulates one round of answers for the arrangement and
// aggregates them with model-free EM truth inference (Dawid-Skene style,
// §VI-A of the paper) instead of the model-weighted vote. It returns the
// inferred labels, the hidden ground truth, and which tasks had answers —
// for comparing aggregation schemes, as examples/tradeoff does.
func InferTruthEM(in *Instance, arr *Arrangement, seed uint64) (labels, truth []Label, answered []bool, err error) {
	sim := voting.NewSimulator(in, seed)
	answers := sim.Collect(arr)
	em, err := voting.EMInference(len(in.Tasks), answers, voting.EMOptions{})
	if err != nil {
		return nil, nil, nil, err
	}
	truth = make([]Label, len(in.Tasks))
	answered = make([]bool, len(in.Tasks))
	for t := range truth {
		truth[t] = sim.Truth(TaskID(t))
		answered[t] = em.Labels[t] != 0
	}
	return em.Labels, truth, answered, nil
}

// CheckFeasible reports whether every task of the instance can reach its
// quality threshold if every eligible worker performs it (a necessary
// condition; capacity can still make a borderline instance incompletable).
func CheckFeasible(in *Instance) error {
	return model.NewCandidateIndex(in).CheckFeasible()
}
