package ltc

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"ltc/internal/core"
	"ltc/internal/experiments"
	"ltc/internal/flow"
	"ltc/internal/model"
)

// Experiment benchmarks — one per paper figure column (each column covers
// three panels: latency, runtime, memory). Every iteration runs the whole
// sweep at a small scale; `cmd/ltcbench` runs the same sweeps at larger
// scales with repetitions and prints the paper-style tables.

func benchExperiment(b *testing.B, id string, scale float64, algos ...string) {
	b.Helper()
	e, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := experiments.Options{Scale: scale, Reps: 1, Seed: 42, Algorithms: algos}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3Tasks regenerates Fig. 3a/3e/3i (varying |T|).
func BenchmarkFig3Tasks(b *testing.B) { benchExperiment(b, "fig3-tasks", 0.01) }

// BenchmarkFig3Capacity regenerates Fig. 3b/3f/3j (varying K).
func BenchmarkFig3Capacity(b *testing.B) { benchExperiment(b, "fig3-capacity", 0.01) }

// BenchmarkFig3AccNormal regenerates Fig. 3c/3g/3k (Normal accuracy µ).
func BenchmarkFig3AccNormal(b *testing.B) { benchExperiment(b, "fig3-accnormal", 0.01) }

// BenchmarkFig3AccUniform regenerates Fig. 3d/3h/3l (Uniform accuracy mean).
func BenchmarkFig3AccUniform(b *testing.B) { benchExperiment(b, "fig3-accuniform", 0.01) }

// BenchmarkFig4Epsilon regenerates Fig. 4a/4e/4i (varying ε).
func BenchmarkFig4Epsilon(b *testing.B) { benchExperiment(b, "fig4-epsilon", 0.01) }

// BenchmarkFig4Scalability regenerates Fig. 4b/4f/4j (|T| up to 100k at
// full scale; benchmarked at 0.5% so each iteration stays in seconds).
func BenchmarkFig4Scalability(b *testing.B) { benchExperiment(b, "fig4-scalability", 0.005) }

// BenchmarkFig4NewYork regenerates Fig. 4c/4g/4k (New York trace).
func BenchmarkFig4NewYork(b *testing.B) { benchExperiment(b, "fig4-newyork", 0.01) }

// BenchmarkFig4Tokyo regenerates Fig. 4d/4h/4l (Tokyo trace).
func BenchmarkFig4Tokyo(b *testing.B) { benchExperiment(b, "fig4-tokyo", 0.005) }

// Per-algorithm benchmarks on a fixed Table IV instance (default setting at
// 5% scale): the per-run cost behind Fig. 3e/3i's algorithm ordering.

func benchInstance(b *testing.B) (*Instance, *CandidateIndex) {
	b.Helper()
	cfg := DefaultWorkload().Scale(0.05)
	cfg.Seed = 42
	in, err := cfg.Generate()
	if err != nil {
		b.Fatal(err)
	}
	return in, NewCandidateIndex(in)
}

func benchAlgorithm(b *testing.B, algo Algorithm) {
	b.Helper()
	in, ci := benchInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	var latency int
	for i := 0; i < b.N; i++ {
		res, err := Solve(in, algo, SolveOptions{Index: ci, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		latency = res.Latency
	}
	b.ReportMetric(float64(latency), "latency")
}

func BenchmarkAlgorithmBaseOff(b *testing.B) { benchAlgorithm(b, BaseOff) }
func BenchmarkAlgorithmMCFLTC(b *testing.B)  { benchAlgorithm(b, MCFLTC) }
func BenchmarkAlgorithmRandom(b *testing.B)  { benchAlgorithm(b, RandomAssign) }
func BenchmarkAlgorithmLAF(b *testing.B)     { benchAlgorithm(b, LAF) }
func BenchmarkAlgorithmAAM(b *testing.B)     { benchAlgorithm(b, AAM) }

// Ablation benchmarks for the design choices DESIGN.md §5 calls out.

// BenchmarkAblationAAMStrategies compares the published hybrid switching
// rule against LGF-only and LRF-only scoring: the hybrid's latency should
// match the better of the two extremes on each workload.
func BenchmarkAblationAAMStrategies(b *testing.B) {
	for _, s := range []struct {
		name     string
		strategy core.AAMStrategy
	}{
		{"Hybrid", core.StrategyHybrid},
		{"LGFOnly", core.StrategyLGFOnly},
		{"LRFOnly", core.StrategyLRFOnly},
	} {
		b.Run(s.name, func(b *testing.B) {
			in, ci := benchInstance(b)
			b.ReportAllocs()
			b.ResetTimer()
			var latency int
			for i := 0; i < b.N; i++ {
				res, err := core.RunOnline(in, ci, func(in *model.Instance, ci *model.CandidateIndex) core.Online {
					return core.NewAAMWithStrategy(in, ci, s.strategy)
				})
				if err != nil {
					b.Fatal(err)
				}
				latency = res.Latency
			}
			b.ReportMetric(float64(latency), "latency")
		})
	}
}

// BenchmarkAblationMCFBatch sweeps MCF-LTC's batch-size multiplier: smaller
// batches track the worker stream more closely (lower latency, more flow
// solves); larger batches amortise the flow cost.
func BenchmarkAblationMCFBatch(b *testing.B) {
	for _, mult := range []float64{0.25, 0.5, 1.0, 2.0} {
		b.Run(fmt.Sprintf("mult=%.2f", mult), func(b *testing.B) {
			in, ci := benchInstance(b)
			b.ReportAllocs()
			b.ResetTimer()
			var latency int
			for i := 0; i < b.N; i++ {
				res, err := core.RunOffline(in, ci, &core.MCFLTC{BatchMultiplier: mult})
				if err != nil {
					b.Fatal(err)
				}
				latency = res.Latency
			}
			b.ReportMetric(float64(latency), "latency")
		})
	}
}

// BenchmarkAblationSSPAAugment compares bottleneck augmentation against
// unit-flow augmentation inside MCF-LTC's SSPA (identical arrangements,
// different augmentation counts).
func BenchmarkAblationSSPAAugment(b *testing.B) {
	for _, u := range []struct {
		name string
		unit bool
	}{{"Bottleneck", false}, {"UnitFlow", true}} {
		b.Run(u.name, func(b *testing.B) {
			in, ci := benchInstance(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.RunOffline(in, ci, &core.MCFLTC{UnitAugment: u.unit}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSSPAEngine compares the Dijkstra-with-potentials engine
// against the SPFA reference engine.
func BenchmarkAblationSSPAEngine(b *testing.B) {
	for _, e := range []struct {
		name   string
		engine flow.Engine
	}{{"Dijkstra", flow.EngineDijkstra}, {"SPFA", flow.EngineSPFA}} {
		b.Run(e.name, func(b *testing.B) {
			in, ci := benchInstance(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.RunOffline(in, ci, &core.MCFLTC{Engine: e.engine}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationEligibility sweeps the MinAcc eligibility threshold
// (DESIGN.md §2): 0.50 puts the radius exactly at dmax; stricter values
// shrink candidate sets and push latency up.
func BenchmarkAblationEligibility(b *testing.B) {
	for _, minAcc := range []float64{0.50, 0.66, 0.78} {
		b.Run(fmt.Sprintf("minAcc=%.2f", minAcc), func(b *testing.B) {
			cfg := DefaultWorkload().Scale(0.05)
			cfg.Seed = 42
			cfg.MinAcc = minAcc
			in, err := cfg.Generate()
			if err != nil {
				b.Fatal(err)
			}
			ci := NewCandidateIndex(in)
			b.ReportAllocs()
			b.ResetTimer()
			var latency float64
			for i := 0; i < b.N; i++ {
				res, err := Solve(in, AAM, SolveOptions{Index: ci})
				if err != nil && res == nil {
					b.Fatal(err)
				}
				latency = float64(res.Latency)
			}
			b.ReportMetric(latency, "latency")
		})
	}
}

// BenchmarkCandidateIndex measures the per-worker eligibility query, the
// inner loop of every online algorithm.
func BenchmarkCandidateIndex(b *testing.B) {
	in, ci := benchInstance(b)
	buf := make([]Candidate, 0, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = ci.Candidates(in.Workers[i%len(in.Workers)], buf[:0])
	}
}

// BenchmarkPlatformCheckIn measures the sharded dispatch layer's check-in
// throughput: GOMAXPROCS goroutines feed one Platform the full worker
// stream (restarting with a fresh Platform whenever the workload
// completes), so higher shard counts translate directly into less lock
// contention and more workers/sec. The shards=1 case is the single-engine
// baseline the ISSUE's acceptance criterion compares against.
func BenchmarkPlatformCheckIn(b *testing.B) {
	cfg := DefaultWorkload().Scale(0.05)
	cfg.Seed = 42
	in, err := cfg.Generate()
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			feeders := runtime.GOMAXPROCS(0)
			b.ReportAllocs()
			b.ResetTimer()
			checkins := 0
			for checkins < b.N {
				plat, err := NewPlatform(in, AAM, PlatformOptions{Shards: shards})
				if err != nil {
					b.Fatal(err)
				}
				var cursor, fed atomic.Int64
				var wg sync.WaitGroup
				for g := 0; g < feeders; g++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for {
							i := int(cursor.Add(1)) - 1
							if i >= len(in.Workers) || plat.Done() {
								return
							}
							if _, err := plat.CheckIn(in.Workers[i]); err != nil {
								return // ErrPlatformDone under contention
							}
							fed.Add(1)
						}
					}()
				}
				wg.Wait()
				checkins += int(fed.Load())
			}
			b.StopTimer()
			b.ReportMetric(float64(checkins)/b.Elapsed().Seconds(), "workers/s")
			// b.N undershoots the real work when the last stream overshoots;
			// workers/s above is the truthful throughput number.
		})
	}
}

// BenchmarkPlatformCheckInBatch measures the synchronous batched ingestion
// path: feeders claim contiguous chunks of the stream and submit each via
// CheckInBatch, so consecutive same-shard workers share one lock
// acquisition and one candidate-index snapshot. Compare against
// BenchmarkPlatformCheckIn's per-call numbers.
func BenchmarkPlatformCheckInBatch(b *testing.B) {
	cfg := DefaultWorkload().Scale(0.05)
	cfg.Seed = 42
	in, err := cfg.Generate()
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 4, 16} {
		for _, batch := range []int{64, 256} {
			b.Run(fmt.Sprintf("shards=%d/batch=%d", shards, batch), func(b *testing.B) {
				feeders := runtime.GOMAXPROCS(0)
				b.ReportAllocs()
				b.ResetTimer()
				checkins := 0
				for checkins < b.N {
					plat, err := NewPlatform(in, AAM, PlatformOptions{Shards: shards})
					if err != nil {
						b.Fatal(err)
					}
					var cursor, fed atomic.Int64
					var wg sync.WaitGroup
					for g := 0; g < feeders; g++ {
						wg.Add(1)
						go func() {
							defer wg.Done()
							for {
								i := int(cursor.Add(int64(batch))) - batch
								if i >= len(in.Workers) || plat.Done() {
									return
								}
								j := i + batch
								if j > len(in.Workers) {
									j = len(in.Workers)
								}
								res, err := plat.CheckInBatch(in.Workers[i:j])
								fed.Add(int64(len(res)))
								if err != nil {
									return // truncated: platform completed
								}
							}
						}()
					}
					wg.Wait()
					checkins += int(fed.Load())
				}
				b.StopTimer()
				b.ReportMetric(float64(checkins)/b.Elapsed().Seconds(), "workers/s")
			})
		}
	}
}

// BenchmarkPlatformCheckInAsync measures the fire-and-forget ingestion
// path: feeders enqueue workers into the per-shard bounded queues and the
// shard drainers ingest them in amortized runs; Flush closes each stream.
func BenchmarkPlatformCheckInAsync(b *testing.B) {
	cfg := DefaultWorkload().Scale(0.05)
	cfg.Seed = 42
	in, err := cfg.Generate()
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			feeders := runtime.GOMAXPROCS(0)
			b.ReportAllocs()
			b.ResetTimer()
			checkins := 0
			for checkins < b.N {
				plat, err := NewPlatform(in, AAM, PlatformOptions{Shards: shards})
				if err != nil {
					b.Fatal(err)
				}
				var cursor, fed atomic.Int64
				var wg sync.WaitGroup
				for g := 0; g < feeders; g++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for {
							i := int(cursor.Add(1)) - 1
							if i >= len(in.Workers) || plat.Done() {
								return
							}
							if err := plat.CheckInAsync(in.Workers[i]); err != nil {
								return
							}
							fed.Add(1)
						}
					}()
				}
				wg.Wait()
				plat.Flush()
				if err := plat.Close(); err != nil {
					b.Fatal(err)
				}
				checkins += int(fed.Load())
			}
			b.StopTimer()
			b.ReportMetric(float64(checkins)/b.Elapsed().Seconds(), "workers/s")
		})
	}
}

// BenchmarkSessionArrive measures the streaming API's per-arrival cost.
func BenchmarkSessionArrive(b *testing.B) {
	in, ci := benchInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; {
		sess, err := NewSession(in, AAM, SolveOptions{Index: ci})
		if err != nil {
			b.Fatal(err)
		}
		for _, w := range in.Workers {
			if sess.Done() || i >= b.N {
				break
			}
			if _, err := sess.Arrive(w); err != nil {
				b.Fatal(err)
			}
			i++
		}
	}
}
