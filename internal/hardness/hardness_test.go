package hardness

import (
	"errors"
	"math"
	"testing"

	"ltc/internal/core"
	"ltc/internal/model"
	"ltc/internal/stats"
)

// yesInstance: B=16, X splits into {5,5,6} + {5,5,6}.
func yesInstance() ThreePartition {
	return ThreePartition{X: []int{5, 5, 6, 5, 5, 6}, B: 16}
}

// noInstance: B=16, X={5,5,5,5,5,7} — every triple sums to 15 or 17.
func noInstance() ThreePartition {
	return ThreePartition{X: []int{5, 5, 5, 5, 5, 7}, B: 16}
}

func TestThreePartitionValidate(t *testing.T) {
	if err := yesInstance().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		tp   ThreePartition
		want error
	}{
		{"empty", ThreePartition{}, ErrNotTriples},
		{"not multiple of 3", ThreePartition{X: []int{5, 5}, B: 16}, ErrNotTriples},
		{"bad sum", ThreePartition{X: []int{5, 5, 5}, B: 16}, ErrBadSum},
		{"x too small", ThreePartition{X: []int{4, 6, 6}, B: 16}, ErrBadRange},
		{"x too large", ThreePartition{X: []int{8, 5, 5}, B: 16}, ErrBadRange},
	} {
		if err := tc.tp.Validate(); !errors.Is(err, tc.want) {
			t.Fatalf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestReduceConstruction(t *testing.T) {
	tp := yesInstance()
	in, err := Reduce(tp)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(in.Tasks) != 2 || len(in.Workers) != 6 || in.K != 1 {
		t.Fatalf("reduced shape: %d tasks, %d workers, K=%d", len(in.Tasks), len(in.Workers), in.K)
	}
	if d := in.Delta(); math.Abs(d-1) > 1e-12 {
		t.Fatalf("δ = %v, want 1", d)
	}
	// Acc*(w_i, t) must equal x_i / B for every task.
	for _, task := range in.Tasks {
		for i, w := range in.Workers {
			got := model.AccStar(in.Model.Predict(w, task))
			want := float64(tp.X[i]) / float64(tp.B)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("Acc*(w%d, t%d) = %v, want %v", w.Index, task.ID, got, want)
			}
		}
	}
}

func TestDecideViaLTCYes(t *testing.T) {
	ok, err := DecideViaLTC(yesInstance(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("YES instance decided NO")
	}
}

func TestDecideViaLTCNo(t *testing.T) {
	ok, err := DecideViaLTC(noInstance(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("NO instance decided YES")
	}
}

func TestRecoverPartition(t *testing.T) {
	tp := yesInstance()
	in, err := Reduce(tp)
	if err != nil {
		t.Fatal(err)
	}
	ci := model.NewCandidateIndex(in)
	arr, err := (&core.Exact{}).Solve(in, ci)
	if err != nil {
		t.Fatal(err)
	}
	triples, err := RecoverPartition(tp, arr)
	if err != nil {
		t.Fatal(err)
	}
	if len(triples) != 2 {
		t.Fatalf("recovered %d triples", len(triples))
	}
	for i, triple := range triples {
		sum := 0
		for _, x := range triple {
			sum += x
		}
		if sum != tp.B {
			t.Fatalf("triple %d = %v sums to %d", i, triple, sum)
		}
	}
}

// TestDecideViaLTCRandom cross-checks the reduction against a brute-force
// 3-partition decider on random instances.
func TestDecideViaLTCRandom(t *testing.T) {
	rng := stats.NewRand(1)
	decided := map[bool]int{}
	for trial := 0; trial < 12; trial++ {
		// Random m=2 instance: 6 integers in (B/4, B/2) summing to 2B.
		B := 20
		tp := ThreePartition{B: B}
		for {
			xs := make([]int, 6)
			sum := 0
			for i := range xs {
				xs[i] = B/4 + 1 + rng.IntN(B/2-B/4-1)
				sum += xs[i]
			}
			if sum == 2*B {
				tp.X = xs
				break
			}
		}
		want := bruteForce3Partition(tp)
		got, err := DecideViaLTC(tp, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got != want {
			t.Fatalf("trial %d: X=%v B=%d: LTC says %v, brute force %v", trial, tp.X, tp.B, got, want)
		}
		decided[got]++
	}
	if decided[true] == 0 || decided[false] == 0 {
		t.Logf("note: random trials were one-sided: %v", decided)
	}
}

// bruteForce3Partition decides m=2 instances exhaustively.
func bruteForce3Partition(tp ThreePartition) bool {
	x := tp.X
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			for k := j + 1; k < 6; k++ {
				if x[i]+x[j]+x[k] == tp.B {
					return true
				}
			}
		}
	}
	return false
}

func TestTheorem2Bounds(t *testing.T) {
	lower := LatencyLowerBound(3, 2, 2.77)
	upper := LatencyUpperBound(3, 2, 2.77)
	if lower >= upper {
		t.Fatalf("bounds inverted: %v >= %v", lower, upper)
	}
	if math.Abs(lower-3*2.77/2) > 1e-12 {
		t.Fatalf("lower = %v", lower)
	}
	if math.Abs(upper-(10*3*2.77/2+1.5+1)) > 1e-12 {
		t.Fatalf("upper = %v", upper)
	}
}

func TestMcNaughtonLatencyFormula(t *testing.T) {
	// δ=2.77, r=1 → 3 assignments per task; 3 tasks, K=2 → ⌈9/2⌉ = 5.
	if got := McNaughtonLatency(3, 2, 2.77, 1); got != 5 {
		t.Fatalf("latency = %d, want 5", got)
	}
	// Single task: the per-task replication dominates.
	if got := McNaughtonLatency(1, 8, 2.77, 1); got != 3 {
		t.Fatalf("latency = %d, want 3", got)
	}
}

func TestMcNaughtonLatencyPanicsOnBadCredit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("r <= 0 must panic")
		}
	}()
	McNaughtonLatency(1, 1, 1, 0)
}

// constInstance builds a ConstantAccuracy instance.
func constInstance(numTasks, numWorkers, k int, eps, p float64) *model.Instance {
	in := &model.Instance{
		Epsilon: eps,
		K:       k,
		Model:   model.ConstantAccuracy{P: p},
		MinAcc:  0.5,
	}
	for t := 0; t < numTasks; t++ {
		in.Tasks = append(in.Tasks, model.Task{ID: model.TaskID(t)})
	}
	for w := 1; w <= numWorkers; w++ {
		in.Workers = append(in.Workers, model.Worker{Index: w, Acc: 1})
	}
	return in
}

func TestMcNaughtonArrangeValidAndOptimal(t *testing.T) {
	rng := stats.NewRand(7)
	for trial := 0; trial < 10; trial++ {
		numTasks := 1 + rng.IntN(4)
		k := 1 + rng.IntN(3)
		p := 0.85 + rng.Float64()*0.15
		in := constInstance(numTasks, 40, k, 0.25, p)
		arr, err := McNaughtonArrange(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := arr.Validate(in, true); err != nil {
			t.Fatalf("trial %d: invalid arrangement: %v", trial, err)
		}
		want := McNaughtonLatency(numTasks, k, in.Delta(), model.AccStar(p))
		if got := arr.Latency(); got != want {
			t.Fatalf("trial %d: latency %d, formula says %d", trial, got, want)
		}
		// Optimality: the exact solver cannot beat the formula.
		ci := model.NewCandidateIndex(in)
		exact, err := (&core.Exact{}).Solve(in, ci)
		if err != nil {
			t.Fatalf("trial %d exact: %v", trial, err)
		}
		if exact.Latency() != want {
			t.Fatalf("trial %d: exact %d vs McNaughton %d", trial, exact.Latency(), want)
		}
	}
}

func TestMcNaughtonArrangeErrors(t *testing.T) {
	in := constInstance(2, 40, 2, 0.25, 0.9)
	in.Model = model.HistoricalOnly{}
	if _, err := McNaughtonArrange(in); err == nil {
		t.Fatal("non-constant model accepted")
	}
	in = constInstance(2, 2, 1, 0.25, 0.9) // needs 3 workers per task, has 2
	if _, err := McNaughtonArrange(in); !errors.Is(err, model.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	in = constInstance(1, 4, 1, 0.25, 0.5) // Acc* = 0: no credit possible
	if _, err := McNaughtonArrange(in); !errors.Is(err, model.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

// TestExactRespectsLowerBound: on constant-credit instances the optimum
// never beats Theorem 2's lower bound.
func TestExactRespectsLowerBound(t *testing.T) {
	in := constInstance(3, 30, 2, 0.25, 1.0) // Acc* = 1
	ci := model.NewCandidateIndex(in)
	arr, err := (&core.Exact{}).Solve(in, ci)
	if err != nil {
		t.Fatal(err)
	}
	if float64(arr.Latency()) < LatencyLowerBound(3, 2, in.Delta()) {
		t.Fatalf("optimal latency %d beats the Theorem 2 lower bound", arr.Latency())
	}
}

// TestAdversaryAchievesTheorem4Bound: the adversary must force LAF and AAM
// (deterministic greedy algorithms) to a ratio of at least 5.5.
func TestAdversaryAchievesTheorem4Bound(t *testing.T) {
	for name, factory := range map[string]core.OnlineFactory{
		"LAF": func(in *model.Instance, ci *model.CandidateIndex) core.Online { return core.NewLAF(in, ci) },
		"AAM": func(in *model.Instance, ci *model.CandidateIndex) core.Online { return core.NewAAM(in, ci) },
	} {
		res, err := AdversaryGame(factory)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.OptimalLatency != 2 {
			t.Fatalf("%s: OPT = %d, want 2", name, res.OptimalLatency)
		}
		if res.Ratio() < CompetitiveLowerBound {
			t.Fatalf("%s: adversary only achieved ratio %.2f < %.2f (latency %d)",
				name, res.Ratio(), CompetitiveLowerBound, res.AlgorithmLatency)
		}
	}
}

// TestAdversaryPunishesEitherFirstChoice: both branches of the game are
// reachable — an algorithm that always picks the higher task id triggers
// the replay path.
func TestAdversaryPunishesEitherFirstChoice(t *testing.T) {
	res, err := AdversaryGame(func(in *model.Instance, ci *model.CandidateIndex) core.Online {
		return &pickLast{in: in, state: make([]float64, len(in.Tasks))}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstChoice != 1 {
		t.Fatalf("pickLast chose %d first", res.FirstChoice)
	}
	if res.Ratio() < CompetitiveLowerBound {
		t.Fatalf("ratio %.2f below bound", res.Ratio())
	}
}

// pickLast is a deliberately contrarian online algorithm: it always assigns
// the open eligible task with the HIGHEST id.
type pickLast struct {
	in    *model.Instance
	state []float64
	done  int
}

func (p *pickLast) Name() string { return "pickLast" }
func (p *pickLast) Done() bool   { return p.done == len(p.in.Tasks) }

func (p *pickLast) Arrive(w model.Worker) []model.TaskID {
	delta := p.in.Delta()
	assigned := []model.TaskID{}
	for n := 0; n < p.in.K; n++ {
		best := -1
		for t := len(p.in.Tasks) - 1; t >= 0; t-- {
			tid := model.TaskID(t)
			if model.Completed(p.state[t], delta) || containsID(assigned, tid) {
				continue
			}
			if _, ok := p.in.Eligible(w, p.in.Tasks[t]); ok {
				best = t
				break
			}
		}
		if best < 0 {
			break
		}
		acc := p.in.Model.Predict(w, p.in.Tasks[best])
		was := model.Completed(p.state[best], delta)
		p.state[best] += model.AccStar(acc)
		if !was && model.Completed(p.state[best], delta) {
			p.done++
		}
		assigned = append(assigned, model.TaskID(best))
	}
	return assigned
}

func containsID(ids []model.TaskID, id model.TaskID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
