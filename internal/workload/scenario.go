package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"ltc/internal/geo"
	"ltc/internal/model"
	"ltc/internal/stats"
)

// The named workload scenarios. Everything measured before this layer used
// spatially uniform check-ins (Table IV's setting); city-scale traffic is
// dominated by the opposite — hotspots, rush-hour drift and flash crowds —
// exactly the regimes where spatial sharding degenerates into one hot
// mutex. Each scenario is a seed-deterministic generator producing a
// standard model.Instance, so every downstream layer (Session, Platform,
// churn replay, benchmarks) runs unchanged on skewed traffic.
const (
	// ScenarioUniform is the Table IV baseline: tasks and workers drawn
	// uniformly over the grid. Generate delegates to Config.Generate, so a
	// uniform Scenario is byte-identical to the plain workload generator.
	ScenarioUniform = "uniform"
	// ScenarioHotspot draws task and worker locations from a Zipf
	// distribution over a grid of tiles: a handful of tiles receive most
	// of the load (the "popular POI" regime). Knobs: HotspotTiles, Skew.
	ScenarioHotspot = "hotspot"
	// ScenarioFlashCrowd overlays a uniform stream with a time-windowed
	// burst: workers arriving inside [BurstStart, BurstEnd) of the stream
	// mostly sample a small disc around one random center (a venue
	// letting out). Knobs: BurstStart, BurstEnd, BurstFraction,
	// BurstSigma.
	ScenarioFlashCrowd = "flashcrowd"
	// ScenarioRushHour drifts the worker mass across the grid: worker i
	// samples a Gaussian around a centroid moving linearly from one grid
	// corner region to the opposite as the stream progresses; tasks line
	// the commute corridor. Knobs: CommuterFraction, DriftSigma.
	ScenarioRushHour = "rushhour"
	// ScenarioSparseFrontier places a fraction of the tasks in a frontier
	// strip holding almost no worker mass — the tail-latency regime where
	// rare frontier workers gate completion. Knobs: FrontierFraction,
	// FrontierWorkers, FrontierWidth. Small scales may not complete the
	// frontier tasks before the stream ends; that is the point of the
	// scenario, not a bug.
	ScenarioSparseFrontier = "sparse-frontier"
)

// ScenarioKinds lists the named scenarios in presentation order.
func ScenarioKinds() []string {
	return []string{
		ScenarioUniform,
		ScenarioHotspot,
		ScenarioFlashCrowd,
		ScenarioRushHour,
		ScenarioSparseFrontier,
	}
}

// ErrBadScenario is returned for unknown scenario kinds or out-of-range
// scenario knobs.
var ErrBadScenario = errors.New("workload: bad scenario")

// Scenario is a named, seed-deterministic skewed-workload generator over a
// Table IV base Config. The zero value of every knob means "the kind's
// default", so Scenario{Base: cfg, Kind: ScenarioHotspot} is ready to use;
// NewScenario validates the kind. Scenarios compose with the dynamic task
// lifecycle via GenerateChurn (ChurnConfig.GenerateOn under the hood).
//
// Determinism: locations derive from a scenario-specific stream split off
// Base.Seed, and historical accuracies use the same stream as the base
// generator — so two scenarios over one base differ only in placement,
// never in the accuracy population.
type Scenario struct {
	Base Config
	Kind string

	// HotspotTiles is the side of the hotspot tile grid (HotspotTiles²
	// tiles share the load by Zipf rank). 0 means 12.
	HotspotTiles int
	// Skew is the hotspot Zipf exponent for worker placement; larger
	// concentrates harder. 0 means 1.0.
	Skew float64
	// TaskSkew is the hotspot Zipf exponent for task placement. 0 means
	// 1.9: demand piles onto popular venues harder than worker supply
	// does, so a hot tile's task backlog outlives the early stream — the
	// regime where a single hot shard spends the whole run scanning a
	// deep live task set while balanced shards each scan a sliver.
	TaskSkew float64

	// BurstStart/BurstEnd bound the flash-crowd window as fractions of
	// the worker stream. Zero values mean [0.3, 0.6).
	BurstStart float64
	BurstEnd   float64
	// BurstFraction is the probability an in-window worker belongs to the
	// crowd rather than the uniform background. 0 means 0.9.
	BurstFraction float64
	// BurstSigma is the crowd's Gaussian spread as a fraction of the
	// smaller grid extent. 0 means 0.05.
	BurstSigma float64

	// CommuterFraction is the probability a rush-hour worker samples the
	// drifting cloud rather than the uniform background. 0 means 0.85.
	CommuterFraction float64
	// DriftSigma is the drifting cloud's Gaussian spread as a fraction of
	// the smaller grid extent. 0 means 0.10.
	DriftSigma float64

	// FrontierFraction is the fraction of tasks placed in the frontier
	// strip. 0 means 0.3.
	FrontierFraction float64
	// FrontierWorkers is the fraction of workers placed there. 0 means 0.08.
	FrontierWorkers float64
	// FrontierWidth is the strip's width as a fraction of the grid width.
	// 0 means 0.25.
	FrontierWidth float64
}

// NewScenario returns a Scenario of the given kind over base, with every
// knob at the kind's default. Unknown kinds fail with ErrBadScenario.
func NewScenario(kind string, base Config) (Scenario, error) {
	for _, k := range ScenarioKinds() {
		if k == kind {
			return Scenario{Base: base, Kind: kind}, nil
		}
	}
	return Scenario{}, fmt.Errorf("%w: unknown kind %q (want one of %v)", ErrBadScenario, kind, ScenarioKinds())
}

// withDefaults resolves zero-valued knobs to the kind defaults.
func (s Scenario) withDefaults() Scenario {
	if s.HotspotTiles == 0 {
		s.HotspotTiles = 12
	}
	if s.Skew == 0 {
		s.Skew = 1.0
	}
	if s.TaskSkew == 0 {
		s.TaskSkew = 1.9
	}
	if s.BurstStart == 0 && s.BurstEnd == 0 {
		s.BurstStart, s.BurstEnd = 0.3, 0.6
	}
	if s.BurstFraction == 0 {
		s.BurstFraction = 0.9
	}
	if s.BurstSigma == 0 {
		s.BurstSigma = 0.05
	}
	if s.CommuterFraction == 0 {
		s.CommuterFraction = 0.85
	}
	if s.DriftSigma == 0 {
		s.DriftSigma = 0.10
	}
	if s.FrontierFraction == 0 {
		s.FrontierFraction = 0.3
	}
	if s.FrontierWorkers == 0 {
		s.FrontierWorkers = 0.08
	}
	if s.FrontierWidth == 0 {
		s.FrontierWidth = 0.25
	}
	return s
}

// Validate checks the kind, the base config and the (default-resolved)
// scenario knobs.
func (s Scenario) Validate() error {
	known := false
	for _, k := range ScenarioKinds() {
		known = known || k == s.Kind
	}
	if !known {
		return fmt.Errorf("%w: unknown kind %q", ErrBadScenario, s.Kind)
	}
	if err := s.Base.Validate(); err != nil {
		return err
	}
	r := s.withDefaults()
	switch {
	case r.HotspotTiles < 1,
		r.Skew < 0,
		r.TaskSkew < 0,
		r.BurstStart < 0 || r.BurstEnd > 1 || r.BurstStart >= r.BurstEnd,
		r.BurstFraction < 0 || r.BurstFraction > 1,
		r.BurstSigma <= 0,
		r.CommuterFraction < 0 || r.CommuterFraction > 1,
		r.DriftSigma <= 0,
		r.FrontierFraction <= 0 || r.FrontierFraction >= 1,
		r.FrontierWorkers <= 0 || r.FrontierWorkers >= 1,
		r.FrontierWidth <= 0 || r.FrontierWidth >= 1:
		return fmt.Errorf("%w: knob out of range for kind %q", ErrBadScenario, s.Kind)
	}
	return nil
}

// Generate builds the scenario's instance: Base's counts, capacity, ε and
// accuracy population with the kind's spatial placement. ScenarioUniform
// delegates to Base.Generate and is bit-identical to it. Worker placement
// may depend on the worker's position in the stream (flash crowds and rush
// hours are time phenomena), so Workers must be fed in slice order for the
// scenario's temporal shape to appear.
func (s Scenario) Generate() (*model.Instance, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Kind == ScenarioUniform {
		return s.Base.Generate()
	}
	s = s.withDefaults()
	c := s.Base

	// Stream 3 is the scenario placement stream; streams 0..2 belong to
	// the base and churn generators, so composing a scenario with churn
	// never re-reads a stream.
	locRng := stats.NewRand(stats.SplitSeed(c.Seed, 3))
	accRng := stats.NewRand(stats.SplitSeed(c.Seed, 1))

	in := &model.Instance{
		Tasks:   make([]model.Task, c.NumTasks),
		Workers: make([]model.Worker, c.NumWorkers),
		Epsilon: c.Epsilon,
		K:       c.K,
		Model:   model.SigmoidDistance{DMax: c.DMax},
		MinAcc:  c.MinAcc,
	}

	var taskLoc func(i int) geo.Point
	var workerLoc func(i int) geo.Point
	switch s.Kind {
	case ScenarioHotspot:
		tiles := s.HotspotTiles * s.HotspotTiles
		taskZipf := stats.NewZipf(tiles, s.TaskSkew)
		workerZipf := stats.NewZipf(tiles, s.Skew)
		// A seeded permutation maps Zipf rank → tile, scattering the hot
		// tiles over the grid instead of stacking them in one corner; task
		// and worker draws share it, so the same tiles are hot for both —
		// just more steeply for demand (TaskSkew) than supply (Skew).
		perm := locRng.Perm(tiles)
		tw := c.GridWidth / float64(s.HotspotTiles)
		th := c.GridHeight / float64(s.HotspotTiles)
		sample := func(z *stats.Zipf) geo.Point {
			t := perm[z.Sample(locRng)]
			tx, ty := t%s.HotspotTiles, t/s.HotspotTiles
			return geo.Point{
				X: (float64(tx) + locRng.Float64()) * tw,
				Y: (float64(ty) + locRng.Float64()) * th,
			}
		}
		taskLoc = func(int) geo.Point { return sample(taskZipf) }
		workerLoc = func(int) geo.Point { return sample(workerZipf) }

	case ScenarioFlashCrowd:
		// The burst center stays clear of the grid edge so the crowd
		// doesn't clamp into a border line; for very wide bursts (sigma ≥
		// a quarter of the short extent) the margin caps at half the
		// extent so the center always stays inside the grid.
		margin := math.Min(s.BurstSigma*2, 0.5) * math.Min(c.GridWidth, c.GridHeight)
		center := geo.Point{
			X: margin + locRng.Float64()*(c.GridWidth-2*margin),
			Y: margin + locRng.Float64()*(c.GridHeight-2*margin),
		}
		sigma := s.BurstSigma * math.Min(c.GridWidth, c.GridHeight)
		taskLoc = func(int) geo.Point { return s.uniformPoint(locRng) }
		workerLoc = func(i int) geo.Point {
			frac := float64(i) / float64(max(1, c.NumWorkers-1))
			inWindow := frac >= s.BurstStart && frac < s.BurstEnd
			if inWindow && locRng.Float64() < s.BurstFraction {
				return s.gaussPoint(locRng, center, sigma)
			}
			return s.uniformPoint(locRng)
		}

	case ScenarioRushHour:
		// Commute corridor from a point in the lower-left quadrant to one
		// in the upper-right; the cloud's centroid drifts along it as the
		// stream progresses.
		from := geo.Point{
			X: locRng.Float64() * c.GridWidth * 0.35,
			Y: locRng.Float64() * c.GridHeight * 0.35,
		}
		to := geo.Point{
			X: c.GridWidth * (0.65 + locRng.Float64()*0.35),
			Y: c.GridHeight * (0.65 + locRng.Float64()*0.35),
		}
		sigma := s.DriftSigma * math.Min(c.GridWidth, c.GridHeight)
		along := func(t float64) geo.Point {
			return geo.Point{X: from.X + (to.X-from.X)*t, Y: from.Y + (to.Y-from.Y)*t}
		}
		taskLoc = func(int) geo.Point {
			// Demand lines the whole corridor from the start.
			return s.gaussPoint(locRng, along(locRng.Float64()), sigma)
		}
		workerLoc = func(i int) geo.Point {
			if locRng.Float64() >= s.CommuterFraction {
				return s.uniformPoint(locRng)
			}
			t := float64(i) / float64(max(1, c.NumWorkers-1))
			return s.gaussPoint(locRng, along(t), sigma)
		}

	case ScenarioSparseFrontier:
		// The frontier strip is the rightmost FrontierWidth of the grid;
		// the core is everything left of it.
		frontierX := c.GridWidth * (1 - s.FrontierWidth)
		corePoint := func() geo.Point {
			return geo.Point{X: locRng.Float64() * frontierX, Y: locRng.Float64() * c.GridHeight}
		}
		frontierPoint := func() geo.Point {
			return geo.Point{X: frontierX + locRng.Float64()*(c.GridWidth-frontierX), Y: locRng.Float64() * c.GridHeight}
		}
		taskLoc = func(int) geo.Point {
			if locRng.Float64() < s.FrontierFraction {
				return frontierPoint()
			}
			return corePoint()
		}
		workerLoc = func(int) geo.Point {
			if locRng.Float64() < s.FrontierWorkers {
				return frontierPoint()
			}
			return corePoint()
		}
	}

	for t := range in.Tasks {
		in.Tasks[t] = model.Task{ID: model.TaskID(t), Loc: taskLoc(t)}
	}
	for w := range in.Workers {
		var acc float64
		switch c.Accuracy.Kind {
		case DistUniform:
			acc = stats.UniformMean(accRng, c.Accuracy.Mean, c.Accuracy.Spread, model.SpamThreshold, 1)
		default:
			acc = stats.TruncatedNormal(accRng, c.Accuracy.Mean, c.Accuracy.Spread, model.SpamThreshold, 1)
		}
		in.Workers[w] = model.Worker{Index: w + 1, Loc: workerLoc(w), Acc: acc}
	}
	return in, nil
}

// GenerateChurn composes the scenario with the dynamic task lifecycle: the
// scenario's instance is split into initial tasks plus online posts (and
// optional TTL expiries) exactly as ChurnConfig.Generate splits the uniform
// base. c.Base is ignored — the scenario's own Base provides the instance.
func (s Scenario) GenerateChurn(c ChurnConfig) (*ChurnWorkload, error) {
	in, err := s.Generate()
	if err != nil {
		return nil, err
	}
	return c.GenerateOn(in)
}

// uniformPoint draws a point uniformly over the base grid.
func (s Scenario) uniformPoint(rng *rand.Rand) geo.Point {
	return geo.Point{X: rng.Float64() * s.Base.GridWidth, Y: rng.Float64() * s.Base.GridHeight}
}

// gaussPoint draws a Gaussian around center, clamped into the grid.
func (s Scenario) gaussPoint(rng *rand.Rand, center geo.Point, sigma float64) geo.Point {
	return geo.Point{
		X: clamp(center.X+rng.NormFloat64()*sigma, 0, s.Base.GridWidth),
		Y: clamp(center.Y+rng.NormFloat64()*sigma, 0, s.Base.GridHeight),
	}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
