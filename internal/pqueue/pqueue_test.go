package pqueue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHeapOrdersAscending(t *testing.T) {
	h := NewHeap(func(a, b int) bool { return a < b })
	in := []int{5, 3, 8, 1, 9, 2, 7, 4, 6, 0}
	for _, v := range in {
		h.Push(v)
	}
	if h.Len() != len(in) {
		t.Fatalf("Len = %d, want %d", h.Len(), len(in))
	}
	for want := 0; want < len(in); want++ {
		if got := h.Pop(); got != want {
			t.Fatalf("Pop = %d, want %d", got, want)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("heap not empty after draining: Len = %d", h.Len())
	}
}

func TestHeapPeekDoesNotRemove(t *testing.T) {
	h := NewHeap(func(a, b int) bool { return a < b })
	h.Push(2)
	h.Push(1)
	if got := h.Peek(); got != 1 {
		t.Fatalf("Peek = %d, want 1", got)
	}
	if h.Len() != 2 {
		t.Fatalf("Peek removed an element: Len = %d", h.Len())
	}
}

func TestHeapDuplicates(t *testing.T) {
	h := NewHeap(func(a, b int) bool { return a < b })
	for _, v := range []int{3, 3, 1, 1, 2, 2} {
		h.Push(v)
	}
	got := []int{}
	for h.Len() > 0 {
		got = append(got, h.Pop())
	}
	want := []int{1, 1, 2, 2, 3, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v, want %v", got, want)
		}
	}
}

func TestHeapPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty heap did not panic")
		}
	}()
	NewHeap(func(a, b int) bool { return a < b }).Pop()
}

func TestHeapPeekEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Peek on empty heap did not panic")
		}
	}()
	NewHeap(func(a, b int) bool { return a < b }).Peek()
}

func TestHeapReset(t *testing.T) {
	h := NewHeap(func(a, b int) bool { return a < b })
	h.Push(1)
	h.Push(2)
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", h.Len())
	}
	h.Push(7)
	if got := h.Pop(); got != 7 {
		t.Fatalf("Pop after Reset = %d, want 7", got)
	}
}

// Property: draining a heap always yields the sorted input, for arbitrary
// inputs including duplicates and negatives.
func TestHeapSortProperty(t *testing.T) {
	prop := func(in []int16) bool {
		h := NewHeap(func(a, b int16) bool { return a < b })
		for _, v := range in {
			h.Push(v)
		}
		out := make([]int16, 0, len(in))
		for h.Len() > 0 {
			out = append(out, h.Pop())
		}
		if len(out) != len(in) {
			return false
		}
		want := append([]int16(nil), in...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if out[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved push/pop maintains the invariant that Pop returns
// the minimum of the current contents.
func TestHeapInterleavedProperty(t *testing.T) {
	prop := func(ops []int16) bool {
		h := NewHeap(func(a, b int16) bool { return a < b })
		var mirror []int16
		for _, op := range ops {
			if op%3 == 0 && len(mirror) > 0 {
				// pop and compare against mirror minimum
				mi := 0
				for i, v := range mirror {
					if v < mirror[mi] {
						mi = i
					}
				}
				if got := h.Pop(); got != mirror[mi] {
					return false
				}
				mirror = append(mirror[:mi], mirror[mi+1:]...)
			} else {
				h.Push(op)
				mirror = append(mirror, op)
			}
		}
		return h.Len() == len(mirror)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKKeepsLargest(t *testing.T) {
	tk := NewTopK(3, func(a, b int) bool { return a < b })
	for _, v := range []int{5, 1, 9, 3, 7, 2, 8} {
		tk.Offer(v)
	}
	got := tk.Drain(nil)
	want := []int{7, 8, 9} // ascending drain of the 3 largest
	if len(got) != len(want) {
		t.Fatalf("Drain = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Drain = %v, want %v", got, want)
		}
	}
}

func TestTopKOfferReportsRetention(t *testing.T) {
	tk := NewTopK(2, func(a, b int) bool { return a < b })
	if !tk.Offer(1) || !tk.Offer(2) {
		t.Fatal("offers below capacity must be retained")
	}
	if tk.Offer(0) {
		t.Fatal("offer weaker than all retained must be rejected")
	}
	if !tk.Offer(5) {
		t.Fatal("offer stronger than the weakest retained must be accepted")
	}
	got := tk.Drain(nil)
	if got[0] != 2 || got[1] != 5 {
		t.Fatalf("Drain = %v, want [2 5]", got)
	}
}

func TestTopKFewerThanK(t *testing.T) {
	tk := NewTopK(10, func(a, b int) bool { return a < b })
	tk.Offer(4)
	tk.Offer(2)
	got := tk.Drain(nil)
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("Drain = %v, want [2 4]", got)
	}
}

func TestTopKZeroKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTopK(0) did not panic")
		}
	}()
	NewTopK(0, func(a, b int) bool { return a < b })
}

// Property: TopK retains exactly the k largest values of the input.
func TestTopKProperty(t *testing.T) {
	prop := func(in []int16, kRaw uint8) bool {
		k := int(kRaw)%8 + 1
		tk := NewTopK(k, func(a, b int16) bool { return a < b })
		for _, v := range in {
			tk.Offer(v)
		}
		got := tk.Drain(nil)
		want := append([]int16(nil), in...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(in) > k {
			want = want[len(in)-k:]
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexedMinHeapBasic(t *testing.T) {
	h := NewIndexedMinHeap(8)
	h.PushOrDecrease(3, 5.0)
	h.PushOrDecrease(1, 2.0)
	h.PushOrDecrease(7, 9.0)
	id, prio := h.PopMin()
	if id != 1 || prio != 2.0 {
		t.Fatalf("PopMin = (%d, %v), want (1, 2.0)", id, prio)
	}
	if !h.Contains(3) || h.Contains(1) {
		t.Fatal("Contains bookkeeping wrong after PopMin")
	}
}

func TestIndexedMinHeapDecreaseKey(t *testing.T) {
	h := NewIndexedMinHeap(4)
	h.PushOrDecrease(0, 10)
	h.PushOrDecrease(1, 20)
	if !h.PushOrDecrease(1, 5) {
		t.Fatal("decrease to lower priority must succeed")
	}
	if h.PushOrDecrease(1, 7) {
		t.Fatal("increase must be a rejected no-op")
	}
	id, prio := h.PopMin()
	if id != 1 || prio != 5 {
		t.Fatalf("PopMin = (%d, %v), want (1, 5)", id, prio)
	}
}

func TestIndexedMinHeapReset(t *testing.T) {
	h := NewIndexedMinHeap(4)
	h.PushOrDecrease(2, 1)
	h.Reset()
	if h.Len() != 0 || h.Contains(2) {
		t.Fatal("Reset did not clear the heap")
	}
	h.PushOrDecrease(2, 3)
	id, _ := h.PopMin()
	if id != 2 {
		t.Fatalf("PopMin after Reset = %d, want 2", id)
	}
}

// Property: IndexedMinHeap with random decrease-key operations pops ids in
// nondecreasing priority order.
func TestIndexedMinHeapOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(50) + 1
		h := NewIndexedMinHeap(n)
		for i := 0; i < n; i++ {
			h.PushOrDecrease(i, rng.Float64()*100)
		}
		for i := 0; i < n/2; i++ {
			id := rng.Intn(n)
			if h.Contains(id) {
				h.PushOrDecrease(id, h.Priority(id)*rng.Float64())
			}
		}
		prev := -1.0
		for h.Len() > 0 {
			_, prio := h.PopMin()
			if prio < prev {
				t.Fatalf("trial %d: priorities out of order: %v after %v", trial, prio, prev)
			}
			prev = prio
		}
	}
}

func BenchmarkHeapPushPop(b *testing.B) {
	h := NewHeap(func(a, b int) bool { return a < b })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Push(i ^ 0x5555)
		if h.Len() > 1024 {
			h.Pop()
		}
	}
}

func BenchmarkTopKOffer(b *testing.B) {
	tk := NewTopK(8, func(a, b int) bool { return a < b })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tk.Offer(i % 9973)
	}
}
