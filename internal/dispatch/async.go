package dispatch

import (
	"context"
	"fmt"
	"sync"

	"ltc/internal/model"
)

// shardQueue is one shard's bounded CheckInAsync buffer. Enqueues block on
// notFull while the queue is at capacity (backpressure); the shard's
// drainer blocks on notEmpty while it is empty. A plain slice (not a ring):
// drainers pop from the front by copying a run out, so the buffer never
// grows past its capacity.
type shardQueue struct {
	mu       sync.Mutex
	notFull  sync.Cond
	notEmpty sync.Cond
	buf      []model.Worker
	cap      int
}

func newShardQueue(capacity int) *shardQueue {
	q := &shardQueue{cap: capacity}
	q.notFull.L = &q.mu
	q.notEmpty.L = &q.mu
	return q
}

// CheckInAsync routes the worker into its spatial shard's bounded queue and
// returns without waiting for ingestion — the fire-and-forget counterpart
// of CheckIn for callers that don't need the assignment list back (it stays
// observable through Arrangement, Credits and TaskStatuses). The first call
// starts one drainer goroutine per shard; each drainer pops runs of queued
// workers and ingests every run under a single shard-mutex acquisition and
// a single pinned candidate snapshot, which is where batching beats
// per-call CheckIn. Within a shard workers are ingested in enqueue order;
// across shards there is no order, exactly as with concurrent CheckIn
// calls.
//
// The call blocks while the shard's queue is full (backpressure, bounded by
// Options.QueueCap) and fails with ErrClosed once Close has been called —
// also when the block is interrupted by a concurrent Close. Workers
// enqueued after the platform completed are ingested as bounced arrivals,
// mirroring CheckIn's ErrDone accounting. Safe for concurrent use.
//
// CheckInAsync cannot be cancelled while blocked; use CheckInAsyncCtx when
// the enqueue must respect a deadline or cancellation.
func (d *Dispatcher) CheckInAsync(w model.Worker) error {
	return d.CheckInAsyncCtx(context.Background(), w)
}

// CheckInAsyncCtx is CheckInAsync with cancellable backpressure: while the
// shard's queue is full the call blocks until a slot frees, the dispatcher
// closes (ErrClosed), or ctx is done — in which case the worker is NOT
// enqueued and ctx.Err() is returned. A context that is already done fails
// the call before anything is queued. Cancellation never loses an accepted
// worker: a nil error means the worker is queued and a later Flush will
// observe it; a non-nil error means the platform never saw it. Safe for
// concurrent use.
func (d *Dispatcher) CheckInAsyncCtx(ctx context.Context, w model.Worker) error {
	if w.Index < 1 {
		return fmt.Errorf("%w: got %d", ErrBadWorkerIndex, w.Index)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if d.closed.Load() {
		return ErrClosed
	}
	d.ensureDrainers()
	q := d.queues[d.part.Locate(w.Loc)]
	d.pending.Add(1)
	q.mu.Lock()
	if len(q.buf) >= q.cap && ctx.Done() != nil {
		// About to block with a cancellable context: arrange for the wait
		// below to wake when ctx fires. The callback takes the queue mutex,
		// so it cannot run to completion before Wait releases it — no lost
		// wakeup. The common non-blocking enqueue never pays for this.
		stop := context.AfterFunc(ctx, func() {
			q.mu.Lock()
			q.notFull.Broadcast()
			q.mu.Unlock()
		})
		defer stop()
	}
	for len(q.buf) >= q.cap && !d.closed.Load() && ctx.Err() == nil {
		q.notFull.Wait()
	}
	if d.closed.Load() {
		q.mu.Unlock()
		d.retirePending(1)
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		q.mu.Unlock()
		d.retirePending(1)
		return err
	}
	q.buf = append(q.buf, w)
	q.notEmpty.Signal()
	q.mu.Unlock()
	return nil
}

// Flush blocks until every worker enqueued by CheckInAsync before the call
// has been fully ingested: its assignments are in the arrangement and all
// counters (latency, progress, arrivals) reflect it, matching what the same
// stream fed synchronously would have produced. It returns immediately when
// the async path was never used; with concurrent enqueuers it waits for an
// instant with no worker in flight.
func (d *Dispatcher) Flush() {
	d.flushMu.Lock()
	for d.pending.Load() != 0 {
		d.flushCond.Wait()
	}
	d.flushMu.Unlock()
}

// Close shuts the asynchronous ingestion path down: new CheckInAsync calls
// fail with ErrClosed, enqueuers blocked on backpressure are released with
// ErrClosed, the drainers ingest everything already queued and exit, and
// Close waits for all of that to finish. Synchronous CheckIn/CheckInBatch
// and the task lifecycle remain fully usable afterwards. Safe to call
// multiple times and from multiple goroutines; every call waits for the
// complete shutdown.
func (d *Dispatcher) Close() error {
	d.asyncMu.Lock()
	if !d.closed.Load() {
		d.closed.Store(true)
		// Wake everyone: blocked enqueuers bail out with ErrClosed, idle
		// drainers re-check the exit condition.
		for _, q := range d.queues {
			q.mu.Lock()
			q.notEmpty.Broadcast()
			q.notFull.Broadcast()
			q.mu.Unlock()
		}
	}
	d.asyncMu.Unlock()
	d.drainWG.Wait()
	return nil
}

// ensureDrainers starts the per-shard drainer goroutines exactly once.
// The start races with Close under asyncMu: once the dispatcher is closed
// no drainer is ever spawned (the refused enqueue never queues anything,
// so nothing is lost).
func (d *Dispatcher) ensureDrainers() {
	if d.started.Load() {
		return
	}
	d.asyncMu.Lock()
	if !d.started.Load() && !d.closed.Load() {
		d.drainWG.Add(len(d.shards))
		for si := range d.shards {
			go d.drainLoop(si)
		}
		d.started.Store(true)
	}
	d.asyncMu.Unlock()
}

// drainLoop is shard si's drainer: it pops runs of queued workers (up to
// Options.MaxDrain per pop, everything queued when 0) and ingests each run
// under one shard-mutex acquisition and one pinned candidate snapshot. It
// exits once the dispatcher is closed and the queue fully drained.
func (d *Dispatcher) drainLoop(si int) {
	defer d.drainWG.Done()
	q := d.queues[si]
	var run []model.Worker
	for {
		q.mu.Lock()
		for len(q.buf) == 0 && !d.closed.Load() {
			q.notEmpty.Wait()
		}
		if len(q.buf) == 0 {
			// Closed and fully drained.
			q.mu.Unlock()
			return
		}
		n := len(q.buf)
		if d.opts.MaxDrain > 0 && n > d.opts.MaxDrain {
			n = d.opts.MaxDrain
		}
		run = append(run[:0], q.buf[:n]...)
		rest := copy(q.buf, q.buf[n:])
		q.buf = q.buf[:rest]
		q.notFull.Broadcast()
		q.mu.Unlock()

		d.ingestRun(si, run, false, nil)
		d.retirePending(n)
	}
}

// retirePending marks n enqueued workers fully ingested (or refused by a
// close), waking Flush when nothing is left in flight.
func (d *Dispatcher) retirePending(n int) {
	if d.pending.Add(int64(-n)) == 0 {
		d.flushMu.Lock()
		d.flushCond.Broadcast()
		d.flushMu.Unlock()
	}
}
