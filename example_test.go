package ltc_test

import (
	"fmt"

	"ltc"
)

// ExampleSolve runs the paper's running example (Table I accuracies, eight
// workers, K = 2, ε = 0.2) through the online AAM algorithm.
func ExampleSolve() {
	tableI := [][]float64{
		{0.96, 0.98, 0.98, 0.98, 0.96, 0.96, 0.94, 0.94},
		{0.98, 0.96, 0.96, 0.98, 0.94, 0.96, 0.96, 0.94},
		{0.96, 0.96, 0.96, 0.98, 0.94, 0.94, 0.96, 0.96},
	}
	in := &ltc.Instance{
		Epsilon: 0.2,
		K:       2,
		Model:   ltc.MatrixAccuracy{Vals: tableI},
		MinAcc:  0.66,
	}
	for t := 0; t < 3; t++ {
		in.Tasks = append(in.Tasks, ltc.Task{ID: ltc.TaskID(t)})
	}
	for w := 1; w <= 8; w++ {
		in.Workers = append(in.Workers, ltc.Worker{Index: w, Acc: 0.9})
	}

	res, err := ltc.Solve(in, ltc.AAM)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("latency:", res.Latency)
	fmt.Println("completed:", res.Completed)
	// Output:
	// latency: 6
	// completed: true
}

// ExampleNewSession streams workers one at a time, as a live platform
// would, and stops as soon as every task is complete.
func ExampleNewSession() {
	cfg := ltc.DefaultWorkload().Scale(0.005) // 15 tasks, 200 workers
	cfg.Seed = 11
	in, err := cfg.Generate()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sess, err := ltc.NewSession(in, ltc.LAF)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, w := range in.Workers {
		if sess.Done() {
			break
		}
		if _, err := sess.Arrive(w); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	done, total := sess.Progress()
	fmt.Printf("completed %d/%d tasks\n", done, total)
	// Output:
	// completed 15/15 tasks
}
