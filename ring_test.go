package ltc

import (
	"errors"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
)

// This file fuzzes the per-shard MPSC ring behind CheckInAsync through its
// hard regimes: tiny capacities (constant wraparound, the minimum-capacity
// clamp, producers parking on a full ring), bounded drain runs, and Flush
// barriers landing mid-stream. The deterministic leg must reproduce the
// per-call replay bit for bit; the concurrent leg checks conservation —
// every enqueued worker arrives exactly once — and arrangement validity
// when arrival order is up to the scheduler.

// checkRingEquivalence replays one instance per-call and async (sequential
// enqueue with periodic Flush barriers) over one shard and requires the
// same final state regardless of queue capacity or drain bound.
func checkRingEquivalence(t *testing.T, in *Instance, algo Algorithm, seed uint64, qcap, drain, flushEvery int) {
	t.Helper()
	ref, err := NewPlatform(in, algo, PlatformOptions{Shards: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range in.Workers {
		if ref.Done() {
			break
		}
		if _, err := ref.CheckIn(w); err != nil {
			t.Fatal(err)
		}
	}

	async, err := NewPlatform(in, algo, PlatformOptions{Shards: 1, Seed: seed, QueueCap: qcap, MaxDrain: drain})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range in.Workers {
		if async.Done() {
			break
		}
		if err := async.CheckInAsync(w); err != nil {
			t.Fatal(err)
		}
		if (i+1)%flushEvery == 0 {
			async.Flush() // barrier mid-stream: the ring drains to empty
		}
	}
	async.Flush()
	if err := async.Close(); err != nil {
		t.Fatal(err)
	}

	// WorkersSeen is deliberately NOT compared here: Done() is observed
	// against an asynchronous drainer, so the async leg can legitimately
	// enqueue a straggler after the completing worker (it is routed but
	// never assigned). Conservation is the concurrent leg's property.
	if async.Done() != ref.Done() || async.Latency() != ref.Latency() {
		t.Fatalf("cap=%d drain=%d: async done=%v latency=%d; per-call done=%v latency=%d",
			qcap, drain, async.Done(), async.Latency(), ref.Done(), ref.Latency())
	}
	ra, aa := ref.Arrangement(), async.Arrangement()
	if len(ra.Pairs) != len(aa.Pairs) {
		t.Fatalf("cap=%d drain=%d: async made %d pairs, per-call %d", qcap, drain, len(aa.Pairs), len(ra.Pairs))
	}
	for i := range ra.Pairs {
		if ra.Pairs[i] != aa.Pairs[i] {
			t.Fatalf("cap=%d drain=%d: pair %d = %+v, per-call %+v", qcap, drain, i, aa.Pairs[i], ra.Pairs[i])
		}
	}
	rc, ac := ref.Credits(nil), async.Credits(nil)
	for i := range rc {
		if rc[i] != ac[i] {
			t.Fatalf("cap=%d drain=%d: credit %d drifted", qcap, drain, i)
		}
	}
	rs, as := ref.TaskStatuses(), async.TaskStatuses()
	for i := range rs {
		if rs[i] != as[i] {
			t.Fatalf("cap=%d drain=%d: status %d = %+v, per-call %+v", qcap, drain, i, as[i], rs[i])
		}
	}
}

// checkRingConcurrent hammers a sharded platform's rings from several
// feeder goroutines over a tiny capacity and checks conservation: after the
// final Flush every successfully enqueued worker arrived exactly once, and
// the merged arrangement is valid for the instance.
func checkRingConcurrent(t *testing.T, in *Instance, algo Algorithm, seed uint64, qcap, drain, feeders int) {
	t.Helper()
	plat, err := NewPlatform(in, algo, PlatformOptions{Shards: 4, Seed: seed, QueueCap: qcap, MaxDrain: drain})
	if err != nil {
		t.Fatal(err)
	}
	var (
		wg       sync.WaitGroup
		cursor   atomic.Int64
		enqueued atomic.Int64
	)
	for g := 0; g < feeders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(in.Workers) || plat.Done() {
					return
				}
				err := plat.CheckInAsync(in.Workers[i])
				if errors.Is(err, ErrPlatformDone) {
					return
				}
				if err != nil {
					t.Errorf("CheckInAsync: %v", err)
					return
				}
				enqueued.Add(1)
			}
		}()
	}
	wg.Wait()
	plat.Flush()
	if err := plat.Close(); err != nil {
		t.Fatal(err)
	}
	if got := plat.WorkersSeen(); got != int(enqueued.Load()) {
		t.Fatalf("cap=%d feeders=%d: %d workers arrived, %d enqueued — the ring lost or duplicated entries",
			qcap, feeders, got, enqueued.Load())
	}
	if err := plat.Arrangement().Validate(in, false); err != nil {
		t.Fatalf("cap=%d feeders=%d: %v", qcap, feeders, err)
	}
}

// TestRingIngestionFuzz sweeps random instances and ring shapes through
// both checkers — the deterministic seed-corpus companion of
// FuzzRingIngestionEquivalence, always on in `go test`.
func TestRingIngestionFuzz(t *testing.T) {
	rng := rand.New(rand.NewPCG(2026, 8))
	algos := []Algorithm{LAF, AAM, RandomAssign}
	for trial := 0; trial < 10; trial++ {
		cfg := randomBatchWorkload(rng)
		in, err := cfg.Generate()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		algo := algos[trial%len(algos)]
		seed := rng.Uint64()
		qcap := 1 + rng.IntN(7)
		drain := rng.IntN(5)
		flushEvery := 1 + rng.IntN(64)
		t.Logf("trial %d: %s, %d tasks, %d workers, cap=%d drain=%d flushEvery=%d",
			trial, algo, len(in.Tasks), len(in.Workers), qcap, drain, flushEvery)
		checkRingEquivalence(t, in, algo, seed, qcap, drain, flushEvery)
		checkRingConcurrent(t, in, algo, seed, qcap, drain, 1+rng.IntN(4))
	}
}

// FuzzRingIngestionEquivalence exposes the ring properties to go fuzz:
// arbitrary generator seeds, queue capacities (including ones below the
// minimum-capacity clamp), drain bounds, and flush cadences must never
// break async-vs-per-call equivalence or enqueue/arrival conservation.
func FuzzRingIngestionEquivalence(f *testing.F) {
	f.Add(uint64(1), uint64(42), uint8(1), uint8(0), uint8(7), uint8(2))
	f.Add(uint64(99), uint64(3), uint8(2), uint8(1), uint8(1), uint8(4))
	f.Add(uint64(1234), uint64(77), uint8(255), uint8(16), uint8(255), uint8(1))
	f.Fuzz(func(t *testing.T, genSeed, algoSeed uint64, rawCap, rawDrain, rawFlush, rawFeeders uint8) {
		rng := rand.New(rand.NewPCG(genSeed, genSeed^0x9e3779b9))
		cfg := randomBatchWorkload(rng)
		in, err := cfg.Generate()
		if err != nil {
			t.Skip() // degenerate generator draw
		}
		algo := []Algorithm{LAF, AAM, RandomAssign}[int(genSeed%3)]
		qcap := int(rawCap)%7 + 1
		drain := int(rawDrain) % 5
		flushEvery := int(rawFlush)%64 + 1
		feeders := int(rawFeeders)%4 + 1
		checkRingEquivalence(t, in, algo, algoSeed, qcap, drain, flushEvery)
		checkRingConcurrent(t, in, algo, algoSeed, qcap, drain, feeders)
	})
}
