package httpapi

import (
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"ltc"
)

// newGateway builds a Table IV preset platform behind an httptest server
// plus a client, mirroring what cmd/ltcd serves.
func newGateway(t *testing.T, scale float64, seed uint64, shards int, opts ...ltc.Option) (*ltc.Instance, *Client, func()) {
	t.Helper()
	cfg := ltc.DefaultWorkload().Scale(scale)
	cfg.Seed = seed
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	opts = append([]ltc.Option{ltc.WithShards(shards), ltc.WithSeed(seed)}, opts...)
	plat, err := ltc.NewPlatform(in, ltc.AAM, opts...)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(plat, ltc.AAM, shards))
	return in, &Client{Base: srv.URL, HTTP: srv.Client()}, srv.Close
}

// TestGatewayEndToEnd is the ISSUE's acceptance test: an HTTP-fed Table IV
// preset run completes with the same latency as the in-process Platform,
// and every TaskCompleted event is delivered exactly once to an SSE
// subscriber that keeps up.
func TestGatewayEndToEnd(t *testing.T) {
	const (
		scale  = 0.01 // Table IV @1%: 30 tasks, 400 workers
		seed   = 42
		shards = 1
	)
	in, client, shutdown := newGateway(t, scale, seed, shards)
	defer shutdown()

	// In-process reference: the same stream through a local Platform.
	ref, err := ltc.NewPlatform(in, ltc.AAM, ltc.WithShards(shards), ltc.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range in.Workers {
		if ref.Done() {
			break
		}
		if _, err := ref.CheckIn(w); err != nil {
			t.Fatal(err)
		}
	}
	if !ref.Done() {
		t.Fatal("reference platform incomplete")
	}

	// Subscribe before feeding: OpenEvents returning means the server-side
	// subscription is live, so no completion can slip past it.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stream, err := client.OpenEvents(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = stream.Close() }()

	events := make(chan Event, 4096)
	streamDone := make(chan error, 1)
	go func() {
		defer close(events)
		for {
			e, err := stream.Next()
			if err == io.EOF {
				streamDone <- nil
				return
			}
			if err != nil {
				streamDone <- err
				return
			}
			events <- e
		}
	}()

	// Feed the stream over the wire, checking each receipt as it arrives.
	var done bool
	for _, w := range in.Workers {
		if done {
			break
		}
		rec, err := client.CheckIn(FromWorker(w))
		if err != nil {
			t.Fatal(err)
		}
		if rec.Bounced {
			t.Fatalf("worker %d bounced before completion", w.Index)
		}
		if rec.Worker != w.Index {
			t.Fatalf("receipt echoes worker %d, sent %d", rec.Worker, w.Index)
		}
		done = rec.Done
	}
	if !done {
		t.Fatal("HTTP feed ended without a done receipt")
	}

	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done || st.Resolved != st.Total || st.Total != len(in.Tasks) {
		t.Fatalf("stats after completion: %+v", st)
	}
	if st.Latency != ref.Latency() {
		t.Fatalf("HTTP-fed latency %d != in-process latency %d", st.Latency, ref.Latency())
	}
	if st.Algo != "AAM" || st.Shards != shards {
		t.Fatalf("stats identity: %+v", st)
	}

	// Drain the event stream: exactly one task_completed per task, then
	// platform_done, with strictly increasing sequence numbers (no drops).
	completed := make(map[int]int)
	var lastSeq uint64
	sawDone := false
	for len(completed) < len(in.Tasks) || !sawDone {
		e, ok := <-events
		if !ok {
			t.Fatalf("stream ended early: %d/%d completions, done=%v, err=%v",
				len(completed), len(in.Tasks), sawDone, <-streamDone)
		}
		if e.Seq != lastSeq+1 {
			t.Fatalf("sequence gap: %d after %d — events were dropped", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		switch e.Kind {
		case "task_completed":
			completed[e.Task]++
			if completed[e.Task] > 1 {
				t.Fatalf("task %d completed twice", e.Task)
			}
			if e.Worker < 1 || e.Worker > ref.Latency() {
				t.Fatalf("completion worker %d out of range", e.Worker)
			}
		case "platform_done":
			sawDone = true
		default:
			t.Fatalf("unexpected event kind %q mid-run", e.Kind)
		}
	}
	if len(completed) != len(in.Tasks) {
		t.Fatalf("%d distinct completions, want %d", len(completed), len(in.Tasks))
	}
	cancel()
	if err := <-streamDone; err != nil {
		t.Fatal(err)
	}
}

// TestGatewayBatchAndLifecycle drives /checkin/batch, /tasks and /stats:
// batched HTTP ingestion matches the in-process run, and the task
// lifecycle round-trips (post → complete, retire → 204, unknown → 404).
func TestGatewayBatchAndLifecycle(t *testing.T) {
	in, client, shutdown := newGateway(t, 0.01, 7, 2)
	defer shutdown()

	ref, err := ltc.NewPlatform(in, ltc.AAM, ltc.WithShards(2), ltc.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}

	// Post one extra task over the wire and in-process at the same stream
	// position (before any worker).
	refID, err := ref.PostTask(ltc.Task{Loc: in.Tasks[0].Loc})
	if err != nil {
		t.Fatal(err)
	}
	gwID, err := client.PostTask(in.Tasks[0].Loc.X, in.Tasks[0].Loc.Y)
	if err != nil {
		t.Fatal(err)
	}
	if gwID != int(refID) {
		t.Fatalf("gateway posted ID %d, in-process %d", gwID, refID)
	}

	// Feed both in identical batches of 32.
	wire := make([]Worker, len(in.Workers))
	for i, w := range in.Workers {
		wire[i] = FromWorker(w)
	}
	for i := 0; i < len(in.Workers); i += 32 {
		j := min(i+32, len(in.Workers))
		_, gwDone, err := client.CheckInBatch(wire[i:j])
		if err != nil {
			t.Fatal(err)
		}
		refRecs, refErr := ref.CheckInBatch(in.Workers[i:j])
		refDone := errors.Is(refErr, ltc.ErrPlatformDone)
		if refErr != nil && !refDone {
			t.Fatal(refErr)
		}
		// Mirror the wire contract: completion exactly on the batch's last
		// worker reports done without the truncation error.
		if n := len(refRecs); n > 0 && refRecs[n-1].Done {
			refDone = true
		}
		if gwDone != refDone {
			t.Fatalf("batch at %d: gateway done=%v, in-process done=%v", i, gwDone, refDone)
		}
		if gwDone {
			break
		}
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done || st.Latency != ref.Latency() || st.Total != len(in.Tasks)+1 {
		t.Fatalf("gateway stats %+v vs in-process latency %d", st, ref.Latency())
	}
	if st.WorkersSeen != ref.WorkersSeen() {
		t.Fatalf("workers seen %d, want %d", st.WorkersSeen, ref.WorkersSeen())
	}
	// Load observability over the wire: imbalance mirrors the in-process
	// value, per-shard accounts carry no async backlog on a batch-fed
	// gateway, and the striped default reports Balanced = false.
	if st.Imbalance != ref.Imbalance() {
		t.Fatalf("imbalance %v, want %v", st.Imbalance, ref.Imbalance())
	}
	if st.Balanced {
		t.Fatal("striped gateway reports balanced layout")
	}
	for i, sh := range st.ShardStats {
		if sh.QueueDepth != 0 {
			t.Fatalf("shard %d: queue depth %d on a batch-fed gateway", i, sh.QueueDepth)
		}
	}

	// Retire is idempotent on completed tasks, 404 on unknown IDs.
	if err := client.RetireTask(gwID); err != nil {
		t.Fatal(err)
	}
	if err := client.RetireTask(99999); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown retire err = %v, want 404", err)
	}
}

// TestGatewayErrorPaths covers the HTTP error surface: malformed bodies,
// invalid worker indices, and bounced check-ins after completion.
func TestGatewayErrorPaths(t *testing.T) {
	in, client, shutdown := newGateway(t, 0.01, 3, 1)
	defer shutdown()

	if _, err := client.CheckIn(Worker{Index: 0}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("zero index err = %v, want 400", err)
	}
	if _, _, err := client.CheckInBatch([]Worker{{Index: -1}}); err == nil {
		t.Fatal("bad batch accepted")
	}
	resp, err := client.client().Post(client.Base+"/checkin", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("malformed body: HTTP %d", resp.StatusCode)
	}
	resp, err = client.client().Post(client.Base+"/tasks", "application/json", strings.NewReader("nope"))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("malformed task body: HTTP %d", resp.StatusCode)
	}

	// Complete the platform, then observe the bounced-receipt contract.
	for _, w := range in.Workers {
		rec, err := client.CheckIn(FromWorker(w))
		if err != nil {
			t.Fatal(err)
		}
		if rec.Done && !rec.Bounced {
			break
		}
	}
	rec, err := client.CheckIn(Worker{Index: len(in.Workers) + 1, Acc: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Bounced || !rec.Done || rec.Shard != -1 {
		t.Fatalf("post-completion receipt %+v, want bounced", rec)
	}
}
