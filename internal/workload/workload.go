// Package workload generates the synthetic datasets of the paper's
// evaluation (§V-A, Table IV): task and worker locations drawn uniformly
// from a 1000×1000 grid of 10 m cells, historical accuracies drawn from a
// Normal(µ, 0.05) or mean-centred Uniform distribution truncated to
// [0.66, 1], dmax = 30 grid units (300 m), and the sweep presets for every
// experiment dimension (|T|, K, accuracy distribution, ε, scalability).
package workload

import (
	"errors"
	"fmt"
	"math"

	"ltc/internal/geo"
	"ltc/internal/model"
	"ltc/internal/stats"
)

// DistKind selects the historical-accuracy distribution of Table IV.
type DistKind int

// Accuracy distribution kinds.
const (
	DistNormal DistKind = iota
	DistUniform
)

// String implements fmt.Stringer.
func (d DistKind) String() string {
	if d == DistUniform {
		return "Uniform"
	}
	return "Normal"
}

// AccuracyDist describes a historical-accuracy distribution. For DistNormal
// Spread is the standard deviation σ; for DistUniform it is the half-width
// of the interval around Mean. Samples are truncated to
// [model.SpamThreshold, 1].
type AccuracyDist struct {
	Kind   DistKind
	Mean   float64
	Spread float64
}

// Config fully describes a synthetic LTC workload. The zero value is not
// usable; start from Default() and override fields.
type Config struct {
	NumTasks   int
	NumWorkers int
	K          int
	Epsilon    float64
	// GridWidth/GridHeight are the extents in grid units (10 m per unit).
	GridWidth  float64
	GridHeight float64
	// DMax is Eq. 1's accuracy horizon in grid units.
	DMax float64
	// MinAcc is the eligibility threshold (DESIGN.md §2).
	MinAcc float64
	// Accuracy is the historical-accuracy distribution.
	Accuracy AccuracyDist
	// Seed makes generation deterministic.
	Seed uint64
}

// DefaultMinAcc is the pairwise eligibility threshold of the generated
// instances. At 0.5 the eligibility radius of Eq. 1 is exactly dmax —
// "the largest distance that workers are able to perform the tasks" — for
// every historical accuracy, and the per-assignment credit Acc* spans
// (0, (2·p_w−1)²]. The paper's 0.66 threshold applies to the *historical*
// accuracy p_w (spam filtering), not to pairwise Acc(w,t); see DESIGN.md.
const DefaultMinAcc = 0.5

// Default returns Table IV's default setting (bold values): |T| = 3000,
// |W| = 40000, K = 6, Normal(0.86, 0.05) accuracies, ε = 0.1.
func Default() Config {
	return Config{
		NumTasks:   3000,
		NumWorkers: 40000,
		K:          6,
		Epsilon:    0.1,
		GridWidth:  1000,
		GridHeight: 1000,
		DMax:       30,
		MinAcc:     DefaultMinAcc,
		Accuracy:   AccuracyDist{Kind: DistNormal, Mean: 0.86, Spread: 0.05},
		Seed:       1,
	}
}

// Scalability returns the scalability setting of Table IV: |W| = 400k and
// the given task count (10k..100k in the paper).
func Scalability(numTasks int) Config {
	c := Default()
	c.NumTasks = numTasks
	c.NumWorkers = 400000
	return c
}

// Scale shrinks (or grows) the workload by the given factor while
// preserving spatial density: task and worker counts scale by factor, grid
// extents by √factor. Used to run paper-shaped experiments at laptop scale.
func (c Config) Scale(factor float64) Config {
	if factor <= 0 || factor == 1 {
		return c
	}
	c.NumTasks = scaleCount(c.NumTasks, factor)
	c.NumWorkers = scaleCount(c.NumWorkers, factor)
	side := math.Sqrt(factor)
	c.GridWidth *= side
	c.GridHeight *= side
	return c
}

func scaleCount(n int, factor float64) int {
	s := int(math.Round(float64(n) * factor))
	if s < 1 {
		return 1
	}
	return s
}

// Validation errors.
var (
	ErrBadCounts = errors.New("workload: task and worker counts must be positive")
	ErrBadGrid   = errors.New("workload: grid extents must be positive")
	ErrBadDist   = errors.New("workload: accuracy mean must lie in [SpamThreshold, 1]")
)

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.NumTasks <= 0 || c.NumWorkers <= 0 {
		return ErrBadCounts
	}
	if c.GridWidth <= 0 || c.GridHeight <= 0 {
		return ErrBadGrid
	}
	if c.Accuracy.Mean < model.SpamThreshold || c.Accuracy.Mean > 1 {
		return fmt.Errorf("%w: mean=%v", ErrBadDist, c.Accuracy.Mean)
	}
	if c.K <= 0 {
		return model.ErrBadCapacity
	}
	if c.Epsilon <= 0 || c.Epsilon >= 1 {
		return model.ErrBadEpsilon
	}
	return nil
}

// Generate builds the synthetic instance. Generation is deterministic in
// c.Seed: locations and accuracies come from independent derived streams,
// so changing one sweep dimension leaves the others' draws untouched.
func (c Config) Generate() (*model.Instance, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	locRng := stats.NewRand(stats.SplitSeed(c.Seed, 0))
	accRng := stats.NewRand(stats.SplitSeed(c.Seed, 1))

	in := &model.Instance{
		Tasks:   make([]model.Task, c.NumTasks),
		Workers: make([]model.Worker, c.NumWorkers),
		Epsilon: c.Epsilon,
		K:       c.K,
		Model:   model.SigmoidDistance{DMax: c.DMax},
		MinAcc:  c.MinAcc,
	}
	for t := range in.Tasks {
		in.Tasks[t] = model.Task{
			ID: model.TaskID(t),
			Loc: geo.Point{
				X: locRng.Float64() * c.GridWidth,
				Y: locRng.Float64() * c.GridHeight,
			},
		}
	}
	for w := range in.Workers {
		var acc float64
		switch c.Accuracy.Kind {
		case DistUniform:
			acc = stats.UniformMean(accRng, c.Accuracy.Mean, c.Accuracy.Spread, model.SpamThreshold, 1)
		default:
			acc = stats.TruncatedNormal(accRng, c.Accuracy.Mean, c.Accuracy.Spread, model.SpamThreshold, 1)
		}
		in.Workers[w] = model.Worker{
			Index: w + 1,
			Loc: geo.Point{
				X: locRng.Float64() * c.GridWidth,
				Y: locRng.Float64() * c.GridHeight,
			},
			Acc: acc,
		}
	}
	return in, nil
}

// Table IV sweep presets. Default values are the bold entries.

// TaskSweep returns Table IV's |T| values.
func TaskSweep() []int { return []int{1000, 2000, 3000, 4000, 5000} }

// CapacitySweep returns Table IV's K values.
func CapacitySweep() []int { return []int{4, 5, 6, 7, 8} }

// AccuracyMeanSweep returns Table IV's historical accuracy µ / mean values.
func AccuracyMeanSweep() []float64 { return []float64{0.82, 0.84, 0.86, 0.88, 0.90} }

// EpsilonSweep returns Table IV's tolerable error rates.
func EpsilonSweep() []float64 { return []float64{0.06, 0.10, 0.14, 0.18, 0.22} }

// ScalabilityTaskSweep returns Table IV's scalability |T| values.
func ScalabilityTaskSweep() []int { return []int{10000, 20000, 30000, 40000, 50000, 100000} }

// UniformSpread is the half-width used for the Uniform accuracy setting;
// Table IV leaves it unspecified, ±2σ of the Normal setting keeps the two
// distributions' spreads comparable.
const UniformSpread = 0.10
