package checkin

import (
	"testing"

	"ltc/internal/model"
)

// TestTableVPresets is the table-driven pin of the paper's check-in dataset
// presets (Table V): published cardinalities plus the parameter ranges the
// generator's structural properties depend on.
func TestTableVPresets(t *testing.T) {
	cases := []struct {
		name        string
		cfg         CityConfig
		numTasks    int
		numCheckins int
		gridW       float64
		gridH       float64
	}{
		{"newyork", NewYork(), 3717, 227428, 2000, 2000},
		{"tokyo", Tokyo(), 9317, 573703, 3000, 3000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.cfg
			if c.NumTasks != tc.numTasks || c.NumCheckins != tc.numCheckins {
				t.Errorf("|T|=%d |W|=%d, want %d/%d", c.NumTasks, c.NumCheckins, tc.numTasks, tc.numCheckins)
			}
			if c.GridWidth != tc.gridW || c.GridHeight != tc.gridH {
				t.Errorf("grid %vx%v, want %vx%v", c.GridWidth, c.GridHeight, tc.gridW, tc.gridH)
			}
			// Table V shares the synthetic evaluation's parameters: K = 6,
			// dmax = 30 (300 m), Normal(0.86, 0.05) accuracies.
			if c.K != 6 || c.DMax != 30 {
				t.Errorf("K=%d dmax=%v, want 6/30", c.K, c.DMax)
			}
			if c.Epsilon != 0.10 {
				t.Errorf("ε=%v, want 0.10 (swept elsewhere)", c.Epsilon)
			}
			if c.AccMean != 0.86 || c.AccStd != 0.05 {
				t.Errorf("accuracy %v±%v, want 0.86±0.05", c.AccMean, c.AccStd)
			}
			// The POI-familiarity activity radius of Yang et al. [17]:
			// [100 m, 500 m] = [10, 50] grid units.
			if c.PrefMin != 10 || c.PrefMax != 50 {
				t.Errorf("preference radius [%v, %v], want [10, 50]", c.PrefMin, c.PrefMax)
			}
			if c.MinAcc != 0.5 {
				t.Errorf("MinAcc %v, want 0.5", c.MinAcc)
			}
			if err := c.Validate(); err != nil {
				t.Errorf("preset invalid: %v", err)
			}
		})
	}
}

// TestTableVAccuracyTruncation: generated historical accuracies must stay
// inside [SpamThreshold, 1] — the platform's spam-filter assumption — for
// every preset.
func TestTableVAccuracyTruncation(t *testing.T) {
	for _, cfg := range []CityConfig{NewYork(), Tokyo()} {
		cfg := cfg.Scale(0.005)
		t.Run(cfg.Name, func(t *testing.T) {
			tr, err := Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range tr.Instance.Workers {
				if w.Acc < model.SpamThreshold || w.Acc > 1 {
					t.Fatalf("worker %d accuracy %v outside [%v, 1]", w.Index, w.Acc, model.SpamThreshold)
				}
			}
		})
	}
}
