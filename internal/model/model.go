// Package model defines the Latency-oriented Task Completion (LTC) problem
// of Zeng et al. (ICDE 2018): micro tasks, crowd workers, the predicted
// accuracy function of Eq. 1, the Hoeffding quality threshold δ = 2·ln(1/ε),
// and task-worker arrangements with their feasibility constraints.
//
// The package is purely declarative — algorithms live in internal/ltc.
package model

import (
	"errors"
	"fmt"
	"math"

	"ltc/internal/geo"
)

// TaskID identifies a task by its position in Instance.Tasks.
type TaskID int32

// Task is a micro task t = <l_t, ε> (Definition 1). The tolerable error
// rate ε is shared by all tasks of an instance and lives on the Instance.
type Task struct {
	ID  TaskID
	Loc geo.Point
}

// Worker is a crowd worker w = <o_w, l_w, p_w, K> (Definition 2). Index is
// the 1-based arrival order o_w; Acc is the historical accuracy p_w. The
// capacity K is shared by all workers of an instance and lives on the
// Instance.
type Worker struct {
	Index int
	Loc   geo.Point
	Acc   float64
}

// SpamThreshold is the minimum historical accuracy below which the platform
// treats a worker as spam (§II-A, assumption (i): p_w ≥ 66%).
const SpamThreshold = 0.66

// Delta returns δ = 2·ln(1/ε), the accumulated Acc* a task needs before its
// weighted-majority vote error drops below ε (Hoeffding's inequality,
// Definition 4 discussion).
func Delta(epsilon float64) float64 {
	if epsilon <= 0 || epsilon >= 1 {
		panic(fmt.Sprintf("model: epsilon must be in (0,1), got %v", epsilon))
	}
	return 2 * math.Log(1/epsilon)
}

// AccStar returns Acc*(w,t) = (2·Acc(w,t) − 1)², the per-assignment quality
// credit (error-rate constraint, Definition 6).
func AccStar(acc float64) float64 {
	d := 2*acc - 1
	return d * d
}

// CompletionEps is the floating-point slack used when comparing accumulated
// credit against δ. Accumulations are sums of hundreds of float64 terms; a
// relative slack of 1e-9 is far below one assignment's worth of credit.
const CompletionEps = 1e-9

// Completed reports whether accumulated credit satisfies the error-rate
// constraint for the given δ.
func Completed(accumulated, delta float64) bool {
	return accumulated >= delta-CompletionEps
}

// An AccuracyModel predicts the accuracy Acc(w,t) ∈ [0,1] of a worker
// performing a task (Definition 3).
type AccuracyModel interface {
	// Predict returns Acc(w, t).
	Predict(w Worker, t Task) float64
}

// RadiusBounder is implemented by accuracy models for which eligibility
// (Acc ≥ minAcc) implies a maximum worker-task distance. The candidate
// index uses it to prune with a spatial query instead of a full scan.
type RadiusBounder interface {
	// EligibilityRadius returns a distance r such that any pair farther
	// apart than r has Predict < minAcc, or +Inf when no bound exists.
	EligibilityRadius(minAcc float64) float64
}

// SigmoidDistance is the paper's accuracy function (Eq. 1):
//
//	Acc(w,t) = p_w / (1 + exp(−(dmax − ‖l_w, l_t‖)))
//
// DMax is the largest distance at which workers still perform tasks with
// high accuracy; the paper uses 30 grid units (300 m), the median of the
// [100 m, 500 m] POI-familiarity range measured on Foursquare by Yang et
// al. [17].
type SigmoidDistance struct {
	DMax float64
}

// Predict implements AccuracyModel.
func (m SigmoidDistance) Predict(w Worker, t Task) float64 {
	d := w.Loc.Dist(t.Loc)
	return w.Acc / (1 + math.Exp(d-m.DMax))
}

// EligibilityRadius implements RadiusBounder. Solving Eq. 1 for distance
// with the best possible historical accuracy p_w = 1 gives
// d ≤ dmax + ln(1/minAcc − 1).
func (m SigmoidDistance) EligibilityRadius(minAcc float64) float64 {
	if minAcc <= 0 {
		return math.Inf(1)
	}
	if minAcc >= 1 {
		return 0
	}
	r := m.DMax + math.Log(1/minAcc-1)
	if r < 0 {
		return 0
	}
	return r
}

// MatrixAccuracy is an accuracy model backed by an explicit table, as in the
// paper's running example (Table I): Vals[t][w] is the predicted accuracy of
// worker with arrival index w+1 on task t. Used by the toy-example tests and
// by callers that bring their own learned accuracy estimates.
type MatrixAccuracy struct {
	Vals [][]float64 // [taskID][workerIndex-1]
}

// Predict implements AccuracyModel. Out-of-range pairs predict 0.
func (m MatrixAccuracy) Predict(w Worker, t Task) float64 {
	if int(t.ID) < 0 || int(t.ID) >= len(m.Vals) {
		return 0
	}
	row := m.Vals[t.ID]
	if w.Index < 1 || w.Index > len(row) {
		return 0
	}
	return row[w.Index-1]
}

// ConstantAccuracy predicts the same accuracy for every pair. It realises
// the McNaughton-rule setting of Theorem 2 (every worker equally accurate on
// every task) and is used by the bound tests.
type ConstantAccuracy struct {
	P float64
}

// Predict implements AccuracyModel.
func (m ConstantAccuracy) Predict(Worker, Task) float64 { return m.P }

// HistoricalOnly predicts Acc(w,t) = p_w, ignoring geometry. Useful as an
// ablation of the spatial factor in Eq. 1.
type HistoricalOnly struct{}

// Predict implements AccuracyModel.
func (HistoricalOnly) Predict(w Worker, _ Task) float64 { return w.Acc }

// Instance is a complete LTC problem: the task set, the worker arrival
// sequence, the shared tolerable error rate ε and capacity K, the accuracy
// model, and the eligibility threshold MinAcc (a worker may perform a task
// only when Acc(w,t) ≥ MinAcc; see DESIGN.md §2 for why this threshold is
// explicit).
type Instance struct {
	Tasks   []Task
	Workers []Worker
	Epsilon float64
	K       int
	Model   AccuracyModel
	MinAcc  float64
}

// Delta returns the instance's quality threshold δ.
func (in *Instance) Delta() float64 { return Delta(in.Epsilon) }

// Validation errors returned by Instance.Validate.
var (
	ErrNoTasks      = errors.New("model: instance has no tasks")
	ErrNoWorkers    = errors.New("model: instance has no workers")
	ErrBadEpsilon   = errors.New("model: epsilon outside (0,1)")
	ErrBadCapacity  = errors.New("model: capacity K must be positive")
	ErrNoModel      = errors.New("model: nil accuracy model")
	ErrBadMinAcc    = errors.New("model: MinAcc outside [0,1)")
	ErrWorkerOrder  = errors.New("model: workers not in arrival order 1..n")
	ErrTaskIDs      = errors.New("model: task IDs not consecutive from 0")
	ErrSpamWorker   = errors.New("model: worker below spam threshold")
	ErrAccuracyOOB  = errors.New("model: worker historical accuracy outside [0,1]")
	ErrInfeasible   = errors.New("model: some tasks cannot reach the error-rate threshold")
	ErrCapacityUsed = errors.New("model: worker over capacity")
	ErrIneligible   = errors.New("model: assignment below eligibility threshold")
	ErrDuplicate    = errors.New("model: duplicate assignment of a task to a worker")
	ErrIncomplete   = errors.New("model: not all tasks completed")
	ErrBadWorkerRef = errors.New("model: assignment references unknown worker")
	ErrBadTaskRef   = errors.New("model: assignment references unknown task")
)

// Validate checks the structural invariants of the instance: non-empty task
// and worker sets, ε ∈ (0,1), K ≥ 1, consecutive task IDs, workers sorted by
// arrival index 1..n with accuracies in [SpamThreshold, 1].
func (in *Instance) Validate() error {
	if len(in.Tasks) == 0 {
		return ErrNoTasks
	}
	if len(in.Workers) == 0 {
		return ErrNoWorkers
	}
	if in.Epsilon <= 0 || in.Epsilon >= 1 {
		return ErrBadEpsilon
	}
	if in.K <= 0 {
		return ErrBadCapacity
	}
	if in.Model == nil {
		return ErrNoModel
	}
	if in.MinAcc < 0 || in.MinAcc >= 1 {
		return ErrBadMinAcc
	}
	for i, t := range in.Tasks {
		if int(t.ID) != i {
			return fmt.Errorf("%w: position %d has ID %d", ErrTaskIDs, i, t.ID)
		}
	}
	for i, w := range in.Workers {
		if w.Index != i+1 {
			return fmt.Errorf("%w: position %d has index %d", ErrWorkerOrder, i, w.Index)
		}
		if w.Acc < 0 || w.Acc > 1 {
			return fmt.Errorf("%w: worker %d has p=%v", ErrAccuracyOOB, w.Index, w.Acc)
		}
		if w.Acc < SpamThreshold {
			return fmt.Errorf("%w: worker %d has p=%v < %v", ErrSpamWorker, w.Index, w.Acc, SpamThreshold)
		}
	}
	return nil
}

// ValidateStreaming checks the instance fields the streaming APIs (Session,
// the sharded dispatch layer) need: Tasks, Model, K and Epsilon must be
// set. Workers may be empty — they are supplied at check-in time.
func (in *Instance) ValidateStreaming() error {
	if len(in.Tasks) == 0 {
		return ErrNoTasks
	}
	if in.Model == nil {
		return ErrNoModel
	}
	if in.K <= 0 {
		return ErrBadCapacity
	}
	if in.Epsilon <= 0 || in.Epsilon >= 1 {
		return ErrBadEpsilon
	}
	return nil
}

// Eligible reports whether worker w may perform task t under the instance's
// eligibility threshold, and returns the predicted accuracy.
func (in *Instance) Eligible(w Worker, t Task) (acc float64, ok bool) {
	acc = in.Model.Predict(w, t)
	return acc, acc >= in.MinAcc
}
