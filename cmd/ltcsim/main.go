// Command ltcsim runs a single LTC instance through every algorithm and
// reports the paper's three metrics side by side, then audits answer
// quality with the weighted-majority voting simulator — a one-stop sanity
// check that the latency/quality trade-off behaves as published.
//
// Examples:
//
//	ltcsim
//	ltcsim -tasks 100 -workers 2000 -k 4 -epsilon 0.14
//	ltcsim -city newyork -scale 0.01
//	ltcsim -shards 8     # also run the online algorithms sharded
//	ltcsim -shards 8 -batch 64   # ...fed through CheckInBatch
//	ltcsim -shards 8 -async      # ...fed through CheckInAsync + Flush
//	ltcsim -shards 8 -events     # ...printing the completion stream live
//	ltcsim -scenario hotspot -shards 8             # skewed traffic on fixed striping
//	ltcsim -scenario hotspot -shards 8 -balanced   # ...with the load-aware layout
//	ltcsim -scenario hotspot -shards 8 -rebalance  # ...re-sharding live mid-stream
//	ltcsim -scenario flashcrowd -churn 0.4 -ttl 500  # skewed dynamic-task replay
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strings"
	"text/tabwriter"

	"ltc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ltcsim: ")

	var (
		tasks     = flag.Int("tasks", 150, "number of tasks (synthetic)")
		workers   = flag.Int("workers", 2000, "number of workers (synthetic)")
		k         = flag.Int("k", 6, "worker capacity K")
		epsilon   = flag.Float64("epsilon", 0.10, "tolerable error rate ε")
		seed      = flag.Uint64("seed", 1, "generation seed")
		city      = flag.String("city", "", "use a check-in trace instead: newyork or tokyo")
		scale     = flag.Float64("scale", 0.01, "city trace scale factor")
		trials    = flag.Int("trials", 200, "voting simulation trials")
		scenario  = flag.String("scenario", "", "use a named synthetic workload: uniform, hotspot, flashcrowd, rushhour or sparse-frontier")
		shards    = flag.Int("shards", 0, "also run the online algorithms through a sharded Platform with this many shards")
		balanced  = flag.Bool("balanced", false, "with -shards: use the load-aware balanced tile→shard layout instead of fixed striping")
		rebalance = flag.Bool("rebalance", false, "with -shards: adaptively re-shard at runtime, migrating hot tiles between shards mid-stream (implies -balanced)")
		batch     = flag.Int("batch", 0, "feed the sharded Platform through CheckInBatch with this batch size (0 = per-call)")
		async     = flag.Bool("async", false, "feed the sharded Platform through CheckInAsync + Flush instead of per-call CheckIn")
		events    = flag.Bool("events", false, "with -shards: subscribe to the platform event stream and print completions live instead of polling")
		churn     = flag.Float64("churn", 0, "also run a dynamic-task scenario posting this fraction of tasks online (0 disables)")
		ttl       = flag.Int("ttl", 0, "task TTL in worker arrivals for -churn (0 = no expiry)")
	)
	flag.Parse()

	if *scenario != "" && *city != "" {
		log.Fatal("-scenario and -city are mutually exclusive")
	}
	in, err := buildInstance(*city, *scenario, *scale, *tasks, *workers, *k, *epsilon, *seed)
	if err != nil {
		log.Fatal(err)
	}
	label := ""
	if *scenario != "" {
		label = fmt.Sprintf(" [%s scenario]", *scenario)
	}
	fmt.Printf("instance%s: %d tasks, %d workers, K=%d, ε=%.2f (δ=%.2f)\n\n",
		label, len(in.Tasks), len(in.Workers), in.K, in.Epsilon, in.Delta())

	ci := ltc.NewCandidateIndex(in)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\tkind\tlatency\tworkers used\truntime\talloc MB\tempirical err")
	for _, algo := range ltc.Algorithms() {
		res, err := ltc.Solve(in, algo, ltc.WithIndex(ci), ltc.WithSeed(*seed))
		if err != nil && !errors.Is(err, ltc.ErrIncomplete) {
			log.Fatalf("%s: %v", algo, err)
		}
		rep := ltc.VerifyQuality(in, res.Arrangement, *trials, *seed)
		kind := "offline"
		if algo.IsOnline() {
			kind = "online"
		}
		mark := ""
		if !res.Completed {
			mark = "*"
		}
		fmt.Fprintf(w, "%s\t%s\t%d%s\t%d\t%v\t%.2f\t%.4f\n",
			algo, kind, res.Latency, mark, res.Arrangement.WorkersUsed(),
			res.Elapsed.Round(1000), float64(res.AllocBytes)/(1<<20), rep.ErrorRate)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nall empirical error rates must sit below ε = %.2f (Hoeffding completion rule)\n", in.Epsilon)

	if *shards > 0 {
		if err := runSharded(in, *shards, *seed, *batch, *async, *events, *balanced, *rebalance); err != nil {
			log.Fatal(err)
		}
	}
	if *churn > 0 {
		if *city != "" {
			log.Fatal("-churn only supports synthetic workloads")
		}
		if err := runChurn(*tasks, *workers, *k, *epsilon, *seed, *churn, *ttl, *shards, *scenario, *balanced, *rebalance); err != nil {
			log.Fatal(err)
		}
	}
}

// runChurn replays a dynamic task lifecycle scenario: a fraction of the
// tasks is posted online (Poisson on the arrival clock) and optionally
// expires after a TTL. With a named -scenario the posts and the stream
// follow its skewed placement (Scenario.GenerateChurn). Reported are the
// paper's absolute latency and the lifecycle-aware relative latency
// (worker index − task post index).
func runChurn(tasks, workers, k int, epsilon float64, seed uint64, churnFrac float64, ttl, shards int, scenario string, balanced, rebalance bool) error {
	cc := ltc.DefaultChurn(syntheticConfig(tasks, workers, k, epsilon, seed))
	cc.InitialFraction = 1 - churnFrac
	if cc.InitialFraction <= 0 {
		// -churn 1: everything posted online except the single seed task the
		// generator keeps (spatial partitioning needs at least one).
		cc.InitialFraction = 1e-9
	}
	cc.TTL = ttl
	cc.Seed = seed
	var cw *ltc.ChurnWorkload
	var err error
	if scenario != "" {
		var s ltc.Scenario
		if s, err = ltc.NewScenario(scenario, cc.Base); err == nil {
			cw, err = s.GenerateChurn(cc)
		}
	} else {
		cw, err = cc.Generate()
	}
	if err != nil {
		return err
	}
	if shards <= 0 {
		shards = 1
	}
	opts := []ltc.Option{ltc.WithShards(shards), ltc.WithSeed(seed)}
	if balanced {
		opts = append(opts, ltc.WithBalancedShards())
	}
	if rebalance {
		opts = append(opts, ltc.WithRebalance())
	}
	fmt.Printf("\ndynamic tasks (%d initial, %d posted online, TTL %d, %d shards):\n",
		cw.InitialTasks, cw.TotalTasks-cw.InitialTasks, ttl, shards)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\tabs latency\trel latency\tcompleted\texpired")
	for _, algo := range ltc.Algorithms() {
		if !algo.IsOnline() {
			continue
		}
		rep, err := ltc.ReplayChurn(cw, algo, opts...)
		if err != nil {
			return fmt.Errorf("%s: %w", algo, err)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d/%d\t%d\n",
			algo, rep.AbsoluteLatency, rep.RelativeLatency, rep.Completed, cw.TotalTasks, rep.Expired)
	}
	return w.Flush()
}

// runSharded replays the worker stream through the sharded Platform for
// each online algorithm and reports the global latency next to the
// unsharded Session's, the load imbalance, and the per-shard worker
// routing — the latency cost of spatial sharding made visible (see
// CONCURRENCY.md). The stream is fed per-call by default, through
// CheckInBatch chunks with -batch, or through CheckInAsync + Flush with
// -async (batched and async ingestion change throughput, never the
// sequential-feed assignments). With -balanced the platform uses the
// load-aware tile→shard layout — compare the imbalance column against a
// striped run on a skewed -scenario. With -events each platform's
// completion stream prints live from a Subscribe subscription instead of
// being derived by polling.
func runSharded(in *ltc.Instance, shards int, seed uint64, batch int, async, events, balanced, rebalance bool) error {
	mode := "per-call"
	if async {
		mode = "async"
	} else if batch > 0 {
		mode = fmt.Sprintf("batch=%d", batch)
	}
	layout := "striped"
	if balanced {
		layout = "balanced"
	}
	if rebalance {
		layout = "balanced+rebalance"
	}
	fmt.Printf("\nsharded dispatch (%d shards requested, %s ingestion, %s layout):\n", shards, mode, layout)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\tshards\tglobal latency\tunsharded\timbalance\tper-shard workers")
	incomplete := false
	for _, algo := range ltc.Algorithms() {
		if !algo.IsOnline() {
			continue
		}
		base, err := ltc.Solve(in, algo, ltc.WithSeed(seed))
		if err != nil && !errors.Is(err, ltc.ErrIncomplete) {
			return fmt.Errorf("%s: %w", algo, err)
		}
		opts := []ltc.Option{ltc.WithShards(shards), ltc.WithSeed(seed),
			ltc.WithEventBuffer(2*len(in.Tasks) + 64)}
		if balanced {
			opts = append(opts, ltc.WithBalancedShards())
		}
		if rebalance {
			opts = append(opts, ltc.WithRebalance())
		}
		plat, err := ltc.NewPlatform(in, algo, opts...)
		if err != nil {
			return fmt.Errorf("%s: %w", algo, err)
		}
		var watcher *eventWatcher
		if events {
			watcher = watchEvents(algo, plat.Subscribe())
		}
		if err := feedPlatform(plat, in.Workers, batch, async); err != nil {
			return fmt.Errorf("%s: %w", algo, err)
		}
		if watcher != nil {
			watcher.stop()
		}
		mark := ""
		if !plat.Done() {
			mark = "*"
			incomplete = true
		}
		baseMark := ""
		if !base.Completed {
			baseMark = "*"
			incomplete = true
		}
		var counts []string
		for _, s := range plat.ShardStats() {
			counts = append(counts, fmt.Sprintf("%d", s.Workers))
		}
		extra := ""
		if plat.Rebalancing() {
			extra = fmt.Sprintf(" (%d migrations)", plat.Migrations())
		}
		if err := plat.Close(); err != nil {
			return fmt.Errorf("%s: %w", algo, err)
		}
		fmt.Fprintf(w, "%s\t%d\t%d%s\t%d%s\t%.2f\t%s%s\n",
			algo, plat.Shards(), plat.Latency(), mark, base.Latency, baseMark,
			plat.Imbalance(), strings.Join(counts, " "), extra)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if incomplete {
		fmt.Println("(* run exhausted the worker stream before completing every task)")
	}
	return nil
}

// eventWatcher prints a platform's completion stream live from a
// Subscribe subscription — the -events mode. stop closes the subscription
// and waits for the printer to drain, so every event published before the
// feed finished is printed before the summary table row.
type eventWatcher struct {
	sub  *ltc.Subscription
	done chan struct{}
}

func watchEvents(algo ltc.Algorithm, sub *ltc.Subscription) *eventWatcher {
	ew := &eventWatcher{sub: sub, done: make(chan struct{})}
	go func() {
		defer close(ew.done)
		for e := range sub.Events() {
			switch e.Kind {
			case ltc.EventTaskCompleted:
				fmt.Printf("  [%s] task %d completed by worker %d\n", algo, e.Task, e.Worker)
			case ltc.EventPlatformDone:
				fmt.Printf("  [%s] platform done\n", algo)
			case ltc.EventTaskPosted:
				fmt.Printf("  [%s] task %d posted at clock %d\n", algo, e.Task, e.PostIndex)
			case ltc.EventTaskRetired:
				fmt.Printf("  [%s] task %d retired\n", algo, e.Task)
			case ltc.EventTileMigrated:
				fmt.Printf("  [%s] tile %d migrated shard %d → %d\n", algo, e.Tile, e.FromShard, e.ToShard)
			}
		}
		if n := sub.Dropped(); n > 0 {
			fmt.Printf("  [%s] %d events dropped (buffer too small)\n", algo, n)
		}
	}()
	return ew
}

func (ew *eventWatcher) stop() {
	ew.sub.Close()
	<-ew.done
}

// feedPlatform replays the stream sequentially through the selected
// ingestion path: per-call CheckIn, CheckInBatch chunks, or CheckInAsync
// with a final Flush/Close.
func feedPlatform(plat *ltc.Platform, workers []ltc.Worker, batch int, async bool) error {
	switch {
	case async:
		for _, w := range workers {
			if plat.Done() {
				break
			}
			if err := plat.CheckInAsync(w); err != nil {
				return err
			}
		}
		plat.Flush()
		return plat.Close()
	case batch > 0:
		for i := 0; i < len(workers); i += batch {
			j := i + batch
			if j > len(workers) {
				j = len(workers)
			}
			if _, err := plat.CheckInBatch(workers[i:j]); err != nil {
				if errors.Is(err, ltc.ErrPlatformDone) {
					return nil
				}
				return err
			}
		}
		return nil
	default:
		for _, w := range workers {
			if plat.Done() {
				break
			}
			if _, err := plat.CheckIn(w); err != nil {
				return err
			}
		}
		return nil
	}
}

// syntheticConfig builds the Table IV-shaped workload for arbitrary
// task/worker counts, keeping Table IV's spatial worker density so the
// counts stay feasible: grid area scales with the worker count.
func syntheticConfig(tasks, workers, k int, epsilon float64, seed uint64) ltc.WorkloadConfig {
	cfg := ltc.DefaultWorkload()
	cfg.NumTasks = tasks
	cfg.NumWorkers = workers
	cfg.K = k
	cfg.Epsilon = epsilon
	cfg.Seed = seed
	side := math.Sqrt(float64(workers) / 40000.0)
	cfg.GridWidth *= side
	cfg.GridHeight *= side
	return cfg
}

func buildInstance(city, scenario string, scale float64, tasks, workers, k int, epsilon float64, seed uint64) (*ltc.Instance, error) {
	switch city {
	case "":
		cfg := syntheticConfig(tasks, workers, k, epsilon, seed)
		if scenario == "" {
			return cfg.Generate()
		}
		s, err := ltc.NewScenario(scenario, cfg)
		if err != nil {
			return nil, err
		}
		return s.Generate()
	case "newyork", "tokyo":
		cfg := ltc.NewYork()
		if city == "tokyo" {
			cfg = ltc.Tokyo()
		}
		cfg = cfg.Scale(scale)
		cfg.Epsilon = epsilon
		cfg.K = k
		cfg.Seed = seed
		tr, err := ltc.GenerateCity(cfg)
		if err != nil {
			return nil, err
		}
		return tr.Instance, nil
	default:
		return nil, fmt.Errorf("unknown city %q (want newyork or tokyo)", city)
	}
}
