package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce identical streams")
		}
	}
	c := NewRand(8)
	same := true
	a = NewRand(7)
	for i := 0; i < 10; i++ {
		if a.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestSplitSeedIndependence(t *testing.T) {
	seen := map[uint64]bool{}
	for stream := uint64(0); stream < 1000; stream++ {
		s := SplitSeed(42, stream)
		if seen[s] {
			t.Fatalf("SplitSeed collision at stream %d", stream)
		}
		seen[s] = true
	}
}

func TestTruncatedNormalBounds(t *testing.T) {
	rng := NewRand(1)
	for i := 0; i < 10000; i++ {
		x := TruncatedNormal(rng, 0.86, 0.05, 0.66, 1.0)
		if x < 0.66 || x > 1.0 {
			t.Fatalf("sample %v outside [0.66, 1.0]", x)
		}
	}
}

func TestTruncatedNormalMean(t *testing.T) {
	rng := NewRand(2)
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += TruncatedNormal(rng, 0.86, 0.05, 0.66, 1.0)
	}
	mean := sum / n
	if math.Abs(mean-0.86) > 0.005 {
		t.Fatalf("empirical mean %v too far from 0.86", mean)
	}
}

func TestTruncatedNormalDegenerate(t *testing.T) {
	rng := NewRand(3)
	// Mean far outside the window: must still terminate and clamp.
	x := TruncatedNormal(rng, 10, 0.0001, 0, 1)
	if x != 1 {
		t.Fatalf("degenerate clamp = %v, want 1", x)
	}
}

func TestTruncatedNormalBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("lo >= hi must panic")
		}
	}()
	TruncatedNormal(NewRand(1), 0.5, 0.1, 1, 0)
}

func TestUniformMeanBounds(t *testing.T) {
	rng := NewRand(4)
	for i := 0; i < 10000; i++ {
		x := UniformMean(rng, 0.9, 0.10, 0.66, 1.0)
		if x < 0.80-1e-12 || x > 1.0+1e-12 {
			t.Fatalf("sample %v outside [0.80, 1.0]", x)
		}
	}
}

func TestUniformMeanDegenerateWindow(t *testing.T) {
	rng := NewRand(5)
	if x := UniformMean(rng, 2.0, 0.1, 0, 1); x != 1 {
		t.Fatalf("clamp = %v, want 1", x)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("Summary = %+v", s)
	}
	if math.Abs(s.Std-2.138) > 0.01 {
		t.Fatalf("Std = %v, want ~2.138", s.Std)
	}
	if s.Median != 4.5 {
		t.Fatalf("Median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 3 || s.Std != 0 || s.Median != 3 || s.Min != 3 || s.Max != 3 {
		t.Fatalf("Summary = %+v", s)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) must be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, tc := range []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {-5, 1}, {200, 5},
	} {
		got, err := Percentile(xs, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Fatal("empty percentile must error")
	}
}

// Property: Summarize invariants Min <= Median <= Max and Min <= Mean <= Max
// hold for any non-empty input.
func TestSummarizeInvariantsProperty(t *testing.T) {
	prop := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max && s.Std >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
