package model

import (
	"errors"
	"fmt"
	"math"

	"ltc/internal/geo"
)

// SubInstance is one shard of a partitioned Instance: a complete, standalone
// LTC instance over a subset of the source tasks, plus the mapping from its
// local, consecutive TaskIDs back to the source's global TaskIDs.
//
// The sub-instance shares the source's Epsilon, K and MinAcc; its Workers
// slice is empty — shards are fed workers at check-in time. Its Model wraps
// the source's so that Predict always sees the *source* task (global ID):
// ID-sensitive models like MatrixAccuracy stay correct even though the
// sub-instance renumbers tasks locally.
//
// A SubInstance can grow after construction via AppendTask (online task
// posting). Growth is not synchronized here — the dispatch layer serializes
// it under the owning shard's mutex, together with every read of the shard's
// task slices.
type SubInstance struct {
	In *Instance
	// Global maps a local TaskID (position in In.Tasks) to the task's
	// stable global ID in the source instance.
	Global []TaskID
	// source holds, per local task, the task as the source instance sees it
	// (global ID + location) — the view ID-sensitive accuracy models need.
	// For tasks posted after partitioning this is the posted task itself.
	source []Task
}

// AppendTask grows the sub-instance with a task posted online: global is the
// task as the platform sees it (stable global ID). The returned task carries
// the shard-local ID. Callers must serialize AppendTask with every other
// access to the sub-instance (the dispatch layer holds the shard mutex).
func (s *SubInstance) AppendTask(global Task) Task {
	local := Task{ID: TaskID(len(s.In.Tasks)), Loc: global.Loc}
	s.In.Tasks = append(s.In.Tasks, local)
	s.Global = append(s.Global, global.ID)
	s.source = append(s.source, global)
	return local
}

// SourceTask returns the source-instance view (global ID + location) of the
// given local task.
func (s *SubInstance) SourceTask(local TaskID) Task { return s.source[local] }

// TruncateLast rolls back the most recent AppendTask — the dispatch layer's
// recovery when its engine rejects a post (solver without lifecycle
// support). Same serialization requirements as AppendTask.
func (s *SubInstance) TruncateLast() {
	n := len(s.In.Tasks) - 1
	s.In.Tasks = s.In.Tasks[:n]
	s.Global = s.Global[:n]
	s.source = s.source[:n]
}

// Partition splits an Instance's task set into spatially coherent shards,
// reusing the uniform-grid idea of internal/geo: the task bounding rect is
// tiled into ~n cells (cols × rows), each non-empty tile becomes one shard,
// and Locate routes an arbitrary location (a worker check-in or a task
// posted online) to its shard.
//
// The routing table is built from the initial task set and immutable after
// construction — safe for concurrent Locate calls. Tasks posted later do not
// change routing: they are owned by the shard Locate picks for their
// location, which is by construction the same shard every worker at that
// location routes to (so late-posted tasks are always reachable).
type Partition struct {
	Source *Instance
	Shards []*SubInstance

	origin     geo.Point
	tileW      float64
	tileH      float64
	cols, rows int
	// tileShard maps a tile index to its shard, -1 for task-free tiles.
	tileShard []int32
	// taskShard maps an initial global TaskID to its shard.
	taskShard []int32
	// taskGrid answers nearest-task queries for locations whose own tile
	// holds no tasks (routing fallback).
	taskGrid *geo.GridIndex
}

// ErrBadShardCount is returned when a non-positive shard count is requested.
var ErrBadShardCount = errors.New("model: shard count must be positive")

// PartitionInstance partitions in's tasks into at most n spatial shards.
// Fewer shards are returned when some tiles hold no tasks (or n exceeds the
// task count — a shard is never empty). n = 1 yields a single shard whose
// sub-instance lists the source tasks in their original order, so any
// algorithm run on it behaves exactly as on the source.
func PartitionInstance(in *Instance, n int) (*Partition, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: got %d", ErrBadShardCount, n)
	}
	if len(in.Tasks) == 0 {
		return nil, ErrNoTasks
	}
	if n > len(in.Tasks) {
		n = len(in.Tasks)
	}

	p := &Partition{Source: in}
	pts := make([]geo.Point, len(in.Tasks))
	for i, t := range in.Tasks {
		pts[i] = t.Loc
	}
	rect, _ := geo.BoundingRect(pts)
	p.origin = rect.Min

	// Near-square tiling with cols·rows ≤ n, so the shard count never
	// exceeds the request (empty tiles can only shrink it further).
	p.cols = int(math.Sqrt(float64(n)))
	if p.cols < 1 {
		p.cols = 1
	}
	p.rows = n / p.cols
	p.tileW = rect.Width() / float64(p.cols)
	p.tileH = rect.Height() / float64(p.rows)
	if p.tileW <= 0 {
		p.tileW = 1 // degenerate extent: all tasks share one column
	}
	if p.tileH <= 0 {
		p.tileH = 1
	}

	// Bucket tasks by tile; iterate in global order so each shard's local
	// task order follows ascending global TaskID.
	tileTasks := make([][]TaskID, p.cols*p.rows)
	for _, t := range in.Tasks {
		c := p.tileIndex(t.Loc)
		tileTasks[c] = append(tileTasks[c], t.ID)
	}
	p.tileShard = make([]int32, p.cols*p.rows)
	p.taskShard = make([]int32, len(in.Tasks))
	for c, ids := range tileTasks {
		if len(ids) == 0 {
			p.tileShard[c] = -1
			continue
		}
		shard := int32(len(p.Shards))
		p.tileShard[c] = shard
		sub := &SubInstance{
			In: &Instance{
				Tasks:   make([]Task, len(ids)),
				Epsilon: in.Epsilon,
				K:       in.K,
				MinAcc:  in.MinAcc,
			},
			Global: make([]TaskID, len(ids)),
			source: make([]Task, len(ids)),
		}
		for local, gid := range ids {
			sub.In.Tasks[local] = Task{ID: TaskID(local), Loc: in.Tasks[gid].Loc}
			sub.Global[local] = gid
			sub.source[local] = in.Tasks[gid]
			p.taskShard[gid] = shard
		}
		sub.In.Model = newShardModel(in, sub)
		p.Shards = append(p.Shards, sub)
	}

	// Fallback router: a check-in landing on a task-free tile (or outside
	// the rect) goes to the shard of the nearest task. Cell size of one tile
	// edge keeps nearest-neighbour ring scans short.
	cell := math.Min(p.tileW, p.tileH)
	p.taskGrid = geo.NewGridIndex(pts, cell)
	return p, nil
}

// shardModel adapts the source accuracy model to a shard's local task
// numbering: Predict is forwarded with the source task, so models that key
// off Task.ID (MatrixAccuracy) or any other task identity see global IDs.
// It reads the sub-instance's growable task table, so tasks appended online
// resolve too.
type shardModel struct {
	src *Instance
	sub *SubInstance
}

func newShardModel(src *Instance, sub *SubInstance) AccuracyModel {
	m := &shardModel{src: src, sub: sub}
	if _, ok := src.Model.(RadiusBounder); ok {
		return &boundedShardModel{shardModel: m}
	}
	return m
}

// Predict implements AccuracyModel.
func (m *shardModel) Predict(w Worker, t Task) float64 {
	return m.src.Model.Predict(w, m.sub.source[t.ID])
}

// boundedShardModel additionally forwards the eligibility radius, so the
// per-shard CandidateIndex keeps its spatial pruning.
type boundedShardModel struct {
	*shardModel
}

// EligibilityRadius implements RadiusBounder.
func (m *boundedShardModel) EligibilityRadius(minAcc float64) float64 {
	return m.src.Model.(RadiusBounder).EligibilityRadius(minAcc)
}

// NumShards reports the number of (non-empty) shards.
func (p *Partition) NumShards() int { return len(p.Shards) }

// TaskShard returns the shard holding the given initial global task. Tasks
// posted after partitioning are tracked by the dispatch layer, not here.
func (p *Partition) TaskShard(t TaskID) int { return int(p.taskShard[t]) }

// Locate routes a location to a shard: the shard of its enclosing tile, or
// — when that tile holds no tasks — the shard of the nearest initial task.
// Safe for concurrent use.
func (p *Partition) Locate(loc geo.Point) int {
	if s := p.tileShard[p.tileIndex(loc)]; s >= 0 {
		return int(s)
	}
	id, _, ok := p.taskGrid.Nearest(loc)
	if !ok {
		return 0 // unreachable: partitions always hold ≥ 1 task
	}
	return int(p.taskShard[id])
}

// tileIndex returns the tile containing loc, clamped to the tiling extent.
func (p *Partition) tileIndex(loc geo.Point) int {
	tx := int(math.Floor((loc.X - p.origin.X) / p.tileW))
	ty := int(math.Floor((loc.Y - p.origin.Y) / p.tileH))
	if tx < 0 {
		tx = 0
	} else if tx >= p.cols {
		tx = p.cols - 1
	}
	if ty < 0 {
		ty = 0
	} else if ty >= p.rows {
		ty = p.rows - 1
	}
	return ty*p.cols + tx
}
