package cluster

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"ltc/internal/geo"
	"ltc/internal/model"
)

// testInstance builds a small instance with tasks at the given locations.
func testInstance(locs ...geo.Point) *model.Instance {
	in := &model.Instance{
		Epsilon: 0.1,
		K:       4,
		Model:   model.SigmoidDistance{},
	}
	for i, l := range locs {
		in.Tasks = append(in.Tasks, model.Task{ID: model.TaskID(i), Loc: l})
	}
	return in
}

// spread returns a 2×2 four-corner task layout that occupies all four tiles
// of a 2-column, 2-row grid.
func spread() *model.Instance {
	return testInstance(
		geo.Point{X: 10, Y: 10}, geo.Point{X: 90, Y: 10},
		geo.Point{X: 10, Y: 90}, geo.Point{X: 90, Y: 90},
		geo.Point{X: 15, Y: 12}, geo.Point{X: 88, Y: 85},
	)
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(testInstance(), 1); !errors.Is(err, model.ErrNoTasks) {
		t.Fatalf("empty instance: got %v", err)
	}
	if _, err := Build(spread(), 0); err == nil {
		t.Fatal("nodes=0 must fail")
	}
}

func TestBuildRoutesEveryTaskToItsOwner(t *testing.T) {
	in := spread()
	topo, err := Build(in, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	split, err := SplitInstance(in, topo)
	if err != nil {
		t.Fatal(err)
	}
	// Every task routes to the node that owns it, and the split covers the
	// task set exactly once with ascending global IDs per node.
	covered := make([]bool, len(in.Tasks))
	for n, sub := range split.Subs {
		if sub == nil {
			continue
		}
		prev := model.TaskID(-1)
		for local, gid := range sub.Global {
			if gid <= prev {
				t.Fatalf("node %d: global IDs not ascending: %v", n, sub.Global)
			}
			prev = gid
			if covered[gid] {
				t.Fatalf("task %d owned by two nodes", gid)
			}
			covered[gid] = true
			if got := topo.NodeFor(in.Tasks[gid].Loc); got != n {
				t.Fatalf("task %d lives on node %d but routes to %d", gid, n, got)
			}
			if split.OwnerOf[gid] != int32(n) {
				t.Fatalf("OwnerOf[%d] = %d, want %d", gid, split.OwnerOf[gid], n)
			}
			if sub.In.Tasks[local].Loc != in.Tasks[gid].Loc {
				t.Fatalf("task %d location diverged in the sub-instance", gid)
			}
		}
	}
	for gid, ok := range covered {
		if !ok {
			t.Fatalf("task %d not owned by any node", gid)
		}
	}
}

func TestBuildClampsOutOfRectLocations(t *testing.T) {
	in := spread()
	topo, err := Build(in, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, loc := range []geo.Point{{X: -1e6, Y: -1e6}, {X: 1e6, Y: 1e6}, {X: 50, Y: -40}} {
		n := topo.NodeFor(loc)
		if n < 0 || n >= topo.Nodes {
			t.Fatalf("out-of-rect location %v routed to node %d", loc, n)
		}
	}
}

func TestSingleNodeTopologyIsIdentity(t *testing.T) {
	in := spread()
	topo, err := Build(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Cols*topo.Rows != 1 || topo.TileNode[0] != 0 {
		t.Fatalf("single-node grid: %dx%d, owner %v", topo.Cols, topo.Rows, topo.TileNode)
	}
	split, err := SplitInstance(in, topo)
	if err != nil {
		t.Fatal(err)
	}
	sub := split.Subs[0]
	if sub == nil || len(sub.In.Tasks) != len(in.Tasks) {
		t.Fatal("single node must own the whole task set")
	}
	for i := range in.Tasks {
		if sub.Global[i] != model.TaskID(i) || sub.In.Tasks[i].Loc != in.Tasks[i].Loc {
			t.Fatalf("task %d renumbered under a single-node topology", i)
		}
	}
}

func TestZeroTileNode(t *testing.T) {
	// All tasks share one location: one task tile; with 3 nodes the grid is
	// 1×3 and nodes 1 and 2 own no tiles (and therefore no tasks), while
	// every tile still routes somewhere (BFS fold).
	in := testInstance(geo.Point{X: 5, Y: 5}, geo.Point{X: 5, Y: 5}, geo.Point{X: 5, Y: 5})
	topo, err := Build(in, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	for c, n := range topo.TileNode {
		if n != 0 {
			t.Fatalf("tile %d owned by node %d, want 0 (the only task tile)", c, n)
		}
	}
	split, err := SplitInstance(in, topo)
	if err != nil {
		t.Fatal(err)
	}
	if split.Subs[0] == nil || split.Subs[1] != nil || split.Subs[2] != nil {
		t.Fatalf("want all tasks on node 0 and nodes 1,2 empty; got %v", split.Subs)
	}
}

func TestSplitInstanceMismatch(t *testing.T) {
	in := spread()
	topo, err := Build(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	other := testInstance(geo.Point{X: 1, Y: 1})
	if _, err := SplitInstance(other, topo); err == nil {
		t.Fatal("mismatched task count must fail")
	}
}

func TestFingerprintDiscriminates(t *testing.T) {
	in := spread()
	a, _ := Build(in, 3)
	b, _ := Build(in, 3)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical builds must share a fingerprint")
	}
	c, _ := Build(in, 2)
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different node counts must change the fingerprint")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	in := spread()
	topo, err := Build(in, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "topo.json")
	if err := topo.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != topo.Fingerprint() {
		t.Fatal("round-tripped topology fingerprint diverged")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file must fail")
	}
}

func TestLoadRejectsCorruptTopologies(t *testing.T) {
	in := spread()
	good, _ := Build(in, 2)
	cases := map[string]func(*Topology){
		"version":   func(t *Topology) { t.Version = 99 },
		"nodes":     func(t *Topology) { t.Nodes = 0 },
		"grid":      func(t *Topology) { t.Cols = 0 },
		"table-len": func(t *Topology) { t.TileNode = t.TileNode[:1] },
		"tile-dims": func(t *Topology) { t.TileW = 0 },
		"tasks":     func(t *Topology) { t.TotalTasks = 0 },
		"owner-oob": func(t *Topology) { t.TileNode[0] = 7 },
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			bad := *good
			bad.TileNode = append([]int(nil), good.TileNode...)
			corrupt(&bad)
			if err := bad.Validate(); err == nil {
				t.Fatal("corrupt topology validated")
			}
		})
	}
	// Unparseable JSON.
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("bad JSON must fail")
	}
}

func TestPostedIDArithmetic(t *testing.T) {
	in := spread()
	topo, err := Build(in, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for node := 0; node < topo.Nodes; node++ {
		for k := 0; k < 4; k++ {
			g := topo.PostedGlobalID(node, k)
			if g < topo.TotalTasks {
				t.Fatalf("posted ID %d inside the initial range", g)
			}
			if seen[g] {
				t.Fatalf("posted ID %d allocated twice", g)
			}
			seen[g] = true
			gotNode, gotK, err := topo.PostedOwner(g)
			if err != nil || gotNode != node || gotK != k {
				t.Fatalf("PostedOwner(%d) = (%d, %d, %v), want (%d, %d)", g, gotNode, gotK, err, node, k)
			}
		}
	}
	if _, _, err := topo.PostedOwner(0); !errors.Is(err, ErrNotPosted) {
		t.Fatalf("initial-range ID: got %v", err)
	}
}
