package ltc

import (
	"context"
	"errors"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
)

// TestEventStreamFoldsToPolledState is the PR 4 satellite property test
// (run it under -race): while async check-ins, task posts and retires race
// across 8 shards, a subscriber folds the event stream into per-task
// state; once the platform quiesces, the fold must exactly reproduce what
// the polled v1 surface (TaskStatuses, Progress) reports — every
// completion delivered exactly once with its completing worker, every
// retire and post visible, nothing invented, nothing dropped. The
// rebalancing variant races live tile migrations against the same feed:
// the fold contract must survive tasks changing shards mid-stream, and the
// TileMigrated events must account exactly for Migrations().
func TestEventStreamFoldsToPolledState(t *testing.T) {
	t.Run("static", func(t *testing.T) { checkEventStreamFold(t, false) })
	t.Run("rebalancing", func(t *testing.T) { checkEventStreamFold(t, true) })
}

func checkEventStreamFold(t *testing.T, rebalance bool) {
	cfg := DefaultWorkload().Scale(0.05) // 150 tasks, 2000 workers
	cfg.Seed = 31
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	const maxPosts = 120
	opts := []Option{WithShards(8), WithQueueCap(64), WithMaxDrain(16),
		// Room for every possible event: one completion per task, one
		// retire per task, the posts, the done transitions, and (with
		// rebalancing) a bounded number of migrations.
		WithEventBuffer(4*(len(in.Tasks)+maxPosts) + 256)}
	if rebalance {
		opts = append(opts, WithRebalance(RebalanceOptions{Interval: 256, Threshold: 1.0, MaxMoves: 2, Alpha: 1}))
	}
	plat, err := NewPlatform(in, AAM, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if plat.Shards() != 8 {
		t.Skipf("effective shards %d (need 8 for the scenario)", plat.Shards())
	}
	if rebalance && !plat.Rebalancing() {
		t.Skip("layout not rebalanceable for this draw")
	}
	sub := plat.Subscribe()

	var (
		wg     sync.WaitGroup
		cursor atomic.Int64
		posts  atomic.Int64
	)
	for g := 0; g < 4; g++ { // async feeders
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(in.Workers) {
					return
				}
				if err := plat.CheckInAsync(in.Workers[i]); err != nil {
					t.Errorf("CheckInAsync: %v", err)
					return
				}
			}
		}()
	}
	for g := 0; g < 2; g++ { // churners: posts and retires race the feed
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g)+3, 41))
			for i := 0; i < maxPosts/2; i++ {
				if rng.IntN(3) > 0 {
					loc := in.Workers[rng.IntN(len(in.Workers))].Loc
					if _, err := plat.PostTask(Task{Loc: loc}); err != nil {
						t.Errorf("PostTask: %v", err)
						return
					}
					posts.Add(1)
				} else {
					_, total := plat.Progress()
					if err := plat.RetireTask(TaskID(rng.IntN(total))); err != nil {
						t.Errorf("RetireTask: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	plat.Flush()
	if err := plat.Close(); err != nil {
		t.Fatal(err)
	}

	// Quiesced: every publish happened before the calls above returned.
	// Fold the stream.
	sub.Close()
	completedBy := make(map[TaskID]int)
	retired := make(map[TaskID]bool)
	posted := make(map[TaskID]int)
	migrated := 0
	var lastSeq uint64
	for e := range sub.Events() {
		if e.Seq <= lastSeq {
			t.Fatalf("sequence not increasing: %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		switch e.Kind {
		case EventTileMigrated:
			if e.Tile < 0 || e.FromShard == e.ToShard || e.Task != -1 {
				t.Fatalf("malformed TileMigrated %+v", e)
			}
			migrated++
		case EventTaskCompleted:
			if _, dup := completedBy[e.Task]; dup {
				t.Fatalf("task %d completed twice", e.Task)
			}
			completedBy[e.Task] = e.Worker
		case EventTaskRetired:
			if retired[e.Task] {
				t.Fatalf("task %d retired twice", e.Task)
			}
			retired[e.Task] = true
		case EventTaskPosted:
			if _, dup := posted[e.Task]; dup {
				t.Fatalf("task %d posted twice", e.Task)
			}
			posted[e.Task] = e.PostIndex
		case EventPlatformDone:
			// Zero or more depending on when the open count touched zero.
		}
	}
	if sub.Dropped() != 0 {
		t.Fatalf("%d events dropped despite a sufficient buffer", sub.Dropped())
	}
	if migrated != plat.Migrations() {
		t.Fatalf("%d TileMigrated events, Migrations() = %d", migrated, plat.Migrations())
	}
	if !rebalance && migrated != 0 {
		t.Fatalf("static run emitted %d TileMigrated events", migrated)
	}

	// The fold must reproduce the polled surface exactly.
	statuses := plat.TaskStatuses()
	if len(statuses) != len(in.Tasks)+int(posts.Load()) {
		t.Fatalf("%d statuses, want %d", len(statuses), len(in.Tasks)+int(posts.Load()))
	}
	resolvedWant := 0
	for _, st := range statuses {
		if st.Completed != (completedBy[st.ID] != 0) {
			t.Fatalf("task %d: polled completed=%v, folded=%v", st.ID, st.Completed, completedBy[st.ID] != 0)
		}
		// The event carries the chronologically completing check-in; polled
		// LastUsed is the largest index ever assigned. Async feeders ingest
		// out of arrival-index order, so an earlier (higher-index) assignment
		// can outrank the completing one — but never the other way around:
		// the completing assignment updates LastUsed too, and a completed
		// task receives no further assignments.
		if st.Completed && completedBy[st.ID] > st.LastUsed {
			t.Fatalf("task %d: completing worker %d outranks LastUsed %d",
				st.ID, completedBy[st.ID], st.LastUsed)
		}
		if st.Retired != retired[st.ID] {
			t.Fatalf("task %d: polled retired=%v, folded=%v", st.ID, st.Retired, retired[st.ID])
		}
		if int(st.ID) >= len(in.Tasks) {
			postIdx, ok := posted[st.ID]
			if !ok {
				t.Fatalf("posted task %d has no TaskPosted event", st.ID)
			}
			if postIdx != st.PostIndex {
				t.Fatalf("task %d: event post index %d, status %d", st.ID, postIdx, st.PostIndex)
			}
		} else if _, ok := posted[st.ID]; ok {
			t.Fatalf("initial task %d has a TaskPosted event", st.ID)
		}
		if st.Completed || st.Retired {
			resolvedWant++
		}
	}
	resolved, total := plat.Progress()
	if resolved != resolvedWant || total != len(statuses) {
		t.Fatalf("Progress %d/%d, fold says %d/%d", resolved, total, resolvedWant, len(statuses))
	}
}

// TestCheckInAsyncCtxPublicSurface covers the public context-aware enqueue:
// a live context behaves exactly like CheckInAsync, a cancelled one fails
// without observing the worker, and ErrPlatformClosed still wins after
// Close. (The blocked-on-backpressure cancellation paths are pinned at the
// dispatch layer, where the queue can be deterministically wedged.)
func TestCheckInAsyncCtxPublicSurface(t *testing.T) {
	in := tinyInstance(t)
	plat, err := NewPlatform(in, AAM, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	for _, w := range in.Workers {
		if plat.Done() {
			break
		}
		if err := plat.CheckInAsyncCtx(ctx, w); err != nil {
			t.Fatal(err)
		}
	}
	plat.Flush()
	if !plat.Done() {
		t.Fatal("ctx-fed stream incomplete")
	}
	cancel()
	if err := plat.CheckInAsyncCtx(ctx, Worker{Index: len(in.Workers) + 1, Acc: 0.9}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled enqueue err = %v", err)
	}
	if err := plat.Close(); err != nil {
		t.Fatal(err)
	}
	if err := plat.CheckInAsyncCtx(context.Background(), Worker{Index: 1, Acc: 0.9}); !errors.Is(err, ErrPlatformClosed) {
		t.Fatalf("post-close enqueue err = %v", err)
	}
}
