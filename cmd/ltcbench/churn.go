package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"ltc"
)

// runChurn drives the dynamic task lifecycle scenario: a Table IV workload
// where a fraction of the tasks is posted online (Poisson on the arrival
// clock) and optionally expires after a TTL, replayed sequentially against
// a sharded Platform per online algorithm (ltc.ReplayChurn). It reports the
// paper's absolute latency next to the lifecycle-aware relative latency
// (worker index minus task post index) — the honest objective for tasks
// that entered the system late.
func runChurn(scale float64, seed uint64, shards int, initialFrac float64, ttl int, algoNames []string) error {
	cfg := ltc.DefaultWorkload().Scale(scale)
	cfg.Seed = seed
	churn := ltc.DefaultChurn(cfg)
	churn.Seed = seed
	if initialFrac > 0 {
		churn.InitialFraction = initialFrac
	}
	churn.TTL = ttl
	cw, err := churn.Generate()
	if err != nil {
		return err
	}
	late := cw.PostedLate()
	fmt.Printf("churn: %d tasks total, %d initial, %d posted online (%d after first arrival, %.0f%%), TTL %d, %d workers, %d shards\n\n",
		cw.TotalTasks, cw.InitialTasks, cw.TotalTasks-cw.InitialTasks, late,
		100*float64(late)/float64(cw.TotalTasks), ttl, len(cw.Instance.Workers), shards)

	algos := []ltc.Algorithm{ltc.RandomAssign, ltc.LAF, ltc.AAM}
	if len(algoNames) > 0 {
		algos = algos[:0]
		for _, a := range algoNames {
			algos = append(algos, ltc.Algorithm(a))
		}
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\tabs latency\trel latency\tcompleted\texpired\tworkers fed")
	for _, algo := range algos {
		if !algo.IsOnline() {
			return fmt.Errorf("churn needs an online algorithm, got %s", algo)
		}
		rep, err := ltc.ReplayChurn(cw, algo, ltc.WithShards(shards), ltc.WithSeed(seed))
		if err != nil {
			return fmt.Errorf("%s: %w", algo, err)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d/%d\t%d\t%d\n",
			algo, rep.AbsoluteLatency, rep.RelativeLatency, rep.Completed, cw.TotalTasks, rep.Expired, rep.WorkersFed)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println("\nrel latency = max over assignments of (worker index − task post index); equals abs latency when no task is posted late")
	return nil
}
