// Package lint implements the ltclint analyzer suite: five static checks
// that enforce the dispatch layer's documented concurrency contracts
// (CONCURRENCY.md) — lock ordering, hot-path allocation freedom,
// copy-on-write snapshot discipline, atomic field access discipline, and
// hot-struct field alignment. Analyzers read intent from //ltc: annotations
// in the source and diagnostics can be suppressed only by an
// //ltclint:ignore waiver that names the analyzer and carries a reason.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"strings"
	"sync"

	"ltc/internal/lint/analysis"
)

// Lock classes in acquisition order. A lock may only be acquired while all
// held locks have a strictly lower level; leaf-class locks may only be
// acquired with nothing held at all. The levels linearize the contract from
// CONCURRENCY.md: regMu → shard mutex (ascending index) → candidate index →
// ingest queue, with the event bus (and other terminal mutexes) as leaves.
var lockLevels = map[string]int{
	"regMu": 10, // Dispatcher registry RWMutex
	"shard": 20, // per-shard engine mutex (indexed: multiple instances)
	"async": 30, // async-ingest lifecycle mutex
	"index": 40, // CandidateIndex snapshot-swap mutex
	"queue": 50, // Vyukov ring park/wake mutex
	"leaf":  90, // terminal locks: event bus, flush dedup; nothing may be held
}

// LockAnn is a parsed //ltc:lock annotation on a mutex field.
type LockAnn struct {
	Class   string
	Indexed bool // declared as e.g. `shard[i]`: many instances, ascending order
}

// Waiver is a parsed //ltclint:ignore directive.
type Waiver struct {
	Analyzer string
	Reason   string
	Pos      token.Pos
	used     bool
}

type posKey struct {
	file string
	line int
}

// Annotations holds every //ltc: and //ltclint: directive found in one
// package, resolved to type-checker objects.
type Annotations struct {
	LockClass map[types.Object]LockAnn
	NoAlloc   map[types.Object]bool
	Acquires  map[types.Object][]string
	Cow       map[types.Object]bool
	Arena     map[types.Object]bool
	Hot       map[types.Object]bool

	ascending map[posKey]bool
	waivers   map[posKey][]*Waiver
	malformed []analysis.Diagnostic
}

// HasLockAnnotations reports whether the package declares any lock classes;
// the unannotated-mutex rule only applies to such packages.
func (a *Annotations) HasLockAnnotations() bool { return len(a.LockClass) > 0 }

// Ascending reports whether the line holding pos carries an //ltc:ascending
// marker, which permits a same-class indexed-lock acquisition.
func (a *Annotations) Ascending(fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	return a.ascending[posKey{p.Filename, p.Line}]
}

// waive returns true (and marks the waiver used) if a waiver for analyzer
// covers the line of pos.
func (a *Annotations) waive(fset *token.FileSet, analyzer string, pos token.Pos) bool {
	p := fset.Position(pos)
	for _, w := range a.waivers[posKey{p.Filename, p.Line}] {
		if w.Analyzer == analyzer {
			w.used = true
			return true
		}
	}
	return false
}

// annsMu guards annsCache; analyzers for one package share a single parse.
var (
	annsMu    sync.Mutex
	annsCache = map[*types.Package]*Annotations{}
)

// annotationsFor parses (or returns cached) annotations for the pass's
// package.
func annotationsFor(pass *analysis.Pass) *Annotations {
	return annotationsCached(pass.Fset, pass.Files, pass.TypesInfo, pass.Pkg)
}

func parseAnnotations(fset *token.FileSet, files []*ast.File, info *types.Info) *Annotations {
	a := &Annotations{
		LockClass: map[types.Object]LockAnn{},
		NoAlloc:   map[types.Object]bool{},
		Acquires:  map[types.Object][]string{},
		Cow:       map[types.Object]bool{},
		Arena:     map[types.Object]bool{},
		Hot:       map[types.Object]bool{},
		ascending: map[posKey]bool{},
		waivers:   map[posKey][]*Waiver{},
	}
	for _, f := range files {
		a.parseFile(fset, f, info)
	}
	return a
}

func (a *Annotations) parseFile(fset *token.FileSet, f *ast.File, info *types.Info) {
	// Line-anchored directives (waivers, ascending markers) need to know
	// whether a comment trails code or stands alone; consult the raw
	// source for that.
	filename := fset.Position(f.Pos()).Filename
	src, _ := os.ReadFile(filename)
	lines := strings.Split(string(src), "\n")

	for _, cg := range f.Comments {
		for _, c := range cg.List {
			a.parseLineDirective(fset, c, lines)
		}
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			a.parseFuncDirectives(fset, n, info)
		case *ast.StructType:
			for _, field := range n.Fields.List {
				a.parseFieldDirectives(fset, field, info)
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				for _, doc := range []*ast.CommentGroup{n.Doc, ts.Doc, ts.Comment} {
					if hasDirective(doc, "ltc:hot") {
						if obj := info.Defs[ts.Name]; obj != nil {
							a.Hot[obj] = true
						}
					}
				}
			}
		}
		return true
	})
}

// parseLineDirective handles //ltclint:ignore and //ltc:ascending, which
// attach to source lines rather than declarations. A trailing comment
// applies to its own line; a standalone comment applies to the next line.
func (a *Annotations) parseLineDirective(fset *token.FileSet, c *ast.Comment, lines []string) {
	text := strings.TrimPrefix(c.Text, "//")
	pos := fset.Position(c.Pos())
	target := posKey{pos.Filename, pos.Line}
	if standalone(lines, pos) {
		target.line++
	}
	switch {
	case strings.HasPrefix(text, "ltclint:ignore"):
		fields := strings.Fields(strings.TrimPrefix(text, "ltclint:ignore"))
		if len(fields) < 2 {
			a.malformed = append(a.malformed, analysis.Diagnostic{
				Pos:      c.Pos(),
				Category: "ltclint",
				Message:  "malformed //ltclint:ignore: need an analyzer name and a reason",
			})
			return
		}
		name := fields[0]
		if !knownAnalyzer(name) {
			a.malformed = append(a.malformed, analysis.Diagnostic{
				Pos:      c.Pos(),
				Category: "ltclint",
				Message:  fmt.Sprintf("//ltclint:ignore names unknown analyzer %q", name),
			})
			return
		}
		a.waivers[target] = append(a.waivers[target], &Waiver{
			Analyzer: name,
			Reason:   strings.Join(fields[1:], " "),
			Pos:      c.Pos(),
		})
	case text == "ltc:ascending":
		// The marker must trail the acquisition statement itself.
		a.ascending[posKey{pos.Filename, pos.Line}] = true
	}
}

// standalone reports whether the comment at pos has only whitespace before
// it on its source line.
func standalone(lines []string, pos token.Position) bool {
	if pos.Line-1 >= len(lines) {
		return true
	}
	prefix := lines[pos.Line-1]
	if pos.Column-1 <= len(prefix) {
		prefix = prefix[:pos.Column-1]
	}
	return strings.TrimSpace(prefix) == ""
}

func (a *Annotations) parseFuncDirectives(fset *token.FileSet, decl *ast.FuncDecl, info *types.Info) {
	obj := info.Defs[decl.Name]
	if obj == nil || decl.Doc == nil {
		return
	}
	for _, c := range decl.Doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		switch {
		case text == "ltc:noalloc":
			a.NoAlloc[obj] = true
		case strings.HasPrefix(text, "ltc:acquires"):
			classes := strings.Fields(strings.TrimPrefix(text, "ltc:acquires"))
			ok := len(classes) > 0
			for _, cl := range classes {
				if _, known := lockLevels[cl]; !known {
					ok = false
				}
			}
			if !ok {
				a.malformed = append(a.malformed, analysis.Diagnostic{
					Pos:      c.Pos(),
					Category: "ltclint",
					Message:  "malformed //ltc:acquires: need one or more known lock classes",
				})
				continue
			}
			a.Acquires[obj] = append(a.Acquires[obj], classes...)
		}
	}
}

func (a *Annotations) parseFieldDirectives(fset *token.FileSet, field *ast.Field, info *types.Info) {
	for _, doc := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			text := strings.TrimPrefix(c.Text, "//")
			switch {
			case strings.HasPrefix(text, "ltc:lock"):
				args := strings.Fields(strings.TrimPrefix(text, "ltc:lock"))
				if len(args) != 1 {
					a.malformed = append(a.malformed, analysis.Diagnostic{
						Pos:      c.Pos(),
						Category: "ltclint",
						Message:  "malformed //ltc:lock: need exactly one lock class",
					})
					continue
				}
				class := args[0]
				indexed := false
				if strings.HasSuffix(class, "[i]") {
					class, indexed = strings.TrimSuffix(class, "[i]"), true
				}
				if _, known := lockLevels[class]; !known {
					a.malformed = append(a.malformed, analysis.Diagnostic{
						Pos:      c.Pos(),
						Category: "ltclint",
						Message:  fmt.Sprintf("//ltc:lock names unknown lock class %q", class),
					})
					continue
				}
				for _, name := range field.Names {
					if obj := info.Defs[name]; obj != nil {
						a.LockClass[obj] = LockAnn{Class: class, Indexed: indexed}
					}
				}
			case text == "ltc:cow":
				for _, name := range field.Names {
					if obj := info.Defs[name]; obj != nil {
						a.Cow[obj] = true
					}
				}
			case text == "ltc:arena":
				for _, name := range field.Names {
					if obj := info.Defs[name]; obj != nil {
						a.Arena[obj] = true
					}
				}
			}
		}
	}
}

func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimPrefix(c.Text, "//") == directive {
			return true
		}
	}
	return false
}
