package core

import (
	"errors"
	"testing"

	"ltc/internal/model"
)

// toyInstance reproduces the paper's running example: Table I's predicted
// accuracies for 8 workers × 3 tasks, capacity K = 2, tolerable error rate
// ε = 0.2 (δ = 2·ln 5 ≈ 3.2189) as fixed in Example 2.
func toyInstance() *model.Instance {
	// Rows are tasks t1..t3, columns workers w1..w8 (Table I).
	table := [][]float64{
		{0.96, 0.98, 0.98, 0.98, 0.96, 0.96, 0.94, 0.94},
		{0.98, 0.96, 0.96, 0.98, 0.94, 0.96, 0.96, 0.94},
		{0.96, 0.96, 0.96, 0.98, 0.94, 0.94, 0.96, 0.96},
	}
	in := &model.Instance{
		Epsilon: 0.2,
		K:       2,
		Model:   model.MatrixAccuracy{Vals: table},
		MinAcc:  0.66,
	}
	for t := 0; t < 3; t++ {
		in.Tasks = append(in.Tasks, model.Task{ID: model.TaskID(t)})
	}
	for w := 1; w <= 8; w++ {
		in.Workers = append(in.Workers, model.Worker{Index: w, Acc: 0.9})
	}
	return in
}

func mustRunOnline(t *testing.T, in *model.Instance, factory OnlineFactory) *Result {
	t.Helper()
	ci := model.NewCandidateIndex(in)
	res, err := RunOnline(in, ci, factory)
	if err != nil {
		t.Fatalf("RunOnline: %v", err)
	}
	if err := res.Arrangement.Validate(in, true); err != nil {
		t.Fatalf("arrangement invalid: %v", err)
	}
	return res
}

func mustRunOffline(t *testing.T, in *model.Instance, algo Offline) *Result {
	t.Helper()
	ci := model.NewCandidateIndex(in)
	res, err := RunOffline(in, ci, algo)
	if err != nil {
		t.Fatalf("RunOffline(%s): %v", algo.Name(), err)
	}
	if err := res.Arrangement.Validate(in, true); err != nil {
		t.Fatalf("%s arrangement invalid: %v", algo.Name(), err)
	}
	return res
}

// TestToyLAF reproduces Example 3: LAF keeps assigning t1, t2 to the first
// four workers, then needs w5..w8 to finish t3 — latency 8.
func TestToyLAF(t *testing.T) {
	res := mustRunOnline(t, toyInstance(), func(in *model.Instance, ci *model.CandidateIndex) Online {
		return NewLAF(in, ci)
	})
	if res.Latency != 8 {
		t.Fatalf("LAF latency = %d, want 8 (Example 3)", res.Latency)
	}
}

// TestToyAAM runs Algorithm 3 exactly as published on the Example 4 input.
//
// Our faithful implementation of lines 4-5 (avg = Σ(δ−S[i])/K, maxRemain =
// max(δ−S[i])) switches to LRF already at w3 — avg = 3.06 < maxRemain =
// 3.22 — which completes all tasks with latency 6. The paper's walk-through
// claims the first three workers stay on LGF and reports latency 7, but
// that contradicts its own switching rule (and its Lemma 6 only guarantees
// LGF for the first (|T|−K)·δ/K ≈ 1.6 workers). We pin the behaviour of
// the published pseudo-code.
func TestToyAAM(t *testing.T) {
	res := mustRunOnline(t, toyInstance(), func(in *model.Instance, ci *model.CandidateIndex) Online {
		return NewAAM(in, ci)
	})
	if res.Latency != 6 {
		t.Fatalf("AAM latency = %d, want 6 (see comment)", res.Latency)
	}
	// AAM must beat LAF on this instance, the qualitative claim of
	// Example 4 ("needs one fewer worker than LAF").
	laf := mustRunOnline(t, toyInstance(), func(in *model.Instance, ci *model.CandidateIndex) Online {
		return NewLAF(in, ci)
	})
	if res.Latency >= laf.Latency {
		t.Fatalf("AAM (%d) must beat LAF (%d)", res.Latency, laf.Latency)
	}
}

// TestToyExact: Example 2's setting admits an optimal arrangement using the
// first 6 workers (each task needs 4 assignments: 3×Acc* ≤ 2.77 < δ, and
// 12 assignments / K=2 ⇒ ≥ 6 workers).
func TestToyExact(t *testing.T) {
	res := mustRunOffline(t, toyInstance(), &Exact{})
	if res.Latency != 6 {
		t.Fatalf("Exact latency = %d, want 6", res.Latency)
	}
}

// TestToyMCF: MCF-LTC on the Example 2 instance. The paper's Fig. 2b
// reports 6; a true minimum-cost flow on this network must route through
// w7 (its two 0.8464 arcs beat w5/w6's 0.7744 alternatives, total credit
// 10.5328 > any 6-worker flow's), so an exact SSPA yields latency 7. We
// pin 7 and assert the algorithm's output stays within Example 2's
// batch (all 8 workers form one batch: ⌊1.5·m⌋ = 9 > 8).
func TestToyMCF(t *testing.T) {
	res := mustRunOffline(t, toyInstance(), &MCFLTC{})
	if res.Latency != 7 {
		t.Fatalf("MCF-LTC latency = %d, want 7 (see comment)", res.Latency)
	}
}

// TestToyBaseOff: scarcity ties everywhere (every worker eligible for every
// task) degrade Base-off to first-seen greedy: t1, t2 for w1..w4, then t3
// needs w5..w8 — latency 8.
func TestToyBaseOff(t *testing.T) {
	res := mustRunOffline(t, toyInstance(), BaseOff{})
	if res.Latency != 8 {
		t.Fatalf("Base-off latency = %d, want 8", res.Latency)
	}
}

// TestToyOrdering checks the qualitative ordering the toy example
// illustrates: Exact ≤ AAM ≤ MCF-LTC ≤ LAF here.
func TestToyOrdering(t *testing.T) {
	exact := mustRunOffline(t, toyInstance(), &Exact{}).Latency
	mcf := mustRunOffline(t, toyInstance(), &MCFLTC{}).Latency
	aam := mustRunOnline(t, toyInstance(), func(in *model.Instance, ci *model.CandidateIndex) Online {
		return NewAAM(in, ci)
	}).Latency
	laf := mustRunOnline(t, toyInstance(), func(in *model.Instance, ci *model.CandidateIndex) Online {
		return NewLAF(in, ci)
	}).Latency
	if !(exact <= aam && aam <= mcf && mcf <= laf) {
		t.Fatalf("ordering violated: exact=%d aam=%d mcf=%d laf=%d", exact, aam, mcf, laf)
	}
}

// TestToyRandomCompletes: Random must complete the toy instance with any
// seed; latency is between the optimum (6) and the worker count (8).
func TestToyRandomCompletes(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		res := mustRunOnline(t, toyInstance(), func(in *model.Instance, ci *model.CandidateIndex) Online {
			return NewRandom(in, ci, seed)
		})
		if res.Latency < 6 || res.Latency > 8 {
			t.Fatalf("seed %d: Random latency = %d, want within [6, 8]", seed, res.Latency)
		}
	}
}

// TestToyExampleOneQualityThreshold sanity-checks the Example 1 narrative
// with the simplified sum-of-accuracy aggregation: a quality threshold of
// 2.92 needs 3 workers of ≥ 0.94 accuracy per task, so 9 assignments, so at
// best ⌈9/2⌉ = 5 workers — the "optimal is 5" claim.
func TestToyExampleOneQualityThreshold(t *testing.T) {
	in := toyInstance()
	perTask := 3 // ⌈2.92 / max accuracy 0.98⌉
	assignments := perTask * len(in.Tasks)
	minWorkers := (assignments + in.K - 1) / in.K
	if minWorkers != 5 {
		t.Fatalf("Example 1 lower bound = %d, want 5", minWorkers)
	}
}

// TestToyIncompleteStream: truncating the toy instance to 3 workers cannot
// complete (each task needs ≥ 4 assignments, 3 workers supply ≤ 6 < 12) and
// the runners must report ErrIncomplete.
func TestToyIncompleteStream(t *testing.T) {
	in := toyInstance()
	in.Workers = in.Workers[:3]
	ci := model.NewCandidateIndex(in)
	if _, err := RunOnline(in, ci, func(in *model.Instance, ci *model.CandidateIndex) Online {
		return NewLAF(in, ci)
	}); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("online err = %v, want ErrIncomplete", err)
	}
	if _, err := RunOffline(in, ci, &MCFLTC{}); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("offline err = %v, want ErrIncomplete", err)
	}
}
