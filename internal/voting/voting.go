// Package voting simulates the quality side of the LTC model end to end:
// binary ground truth, worker answers sampled with probability Acc(w,t) of
// being correct, and the weighted majority vote of Definition 4:
//
//	ℓ_t = sign( Σ_{w∈W_t} weight_{w,t} · ℓ_{w,t} ),  weight = 2·Acc(w,t) − 1
//
// By Hoeffding's inequality, once Σ (2·Acc − 1)² ≥ δ = 2·ln(1/ε) the vote's
// error probability is below ε — the completion rule every LTC algorithm
// enforces. This package lets tests and examples verify that the rule holds
// empirically for the arrangements the algorithms produce.
package voting

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"ltc/internal/model"
	"ltc/internal/stats"
)

// Label is a binary task answer: +1 ("YES") or −1 ("NO").
type Label int8

// Binary answer labels.
const (
	Yes Label = 1
	No  Label = -1
)

// Answer is one worker's response to one task.
type Answer struct {
	Worker int
	Task   model.TaskID
	Value  Label
}

// Simulator owns the hidden ground truth of an instance's tasks and samples
// worker answers.
type Simulator struct {
	in    *model.Instance
	rng   *rand.Rand
	truth []Label
}

// NewSimulator draws a uniform random ground truth for every task of the
// instance, seeded deterministically.
func NewSimulator(in *model.Instance, seed uint64) *Simulator {
	rng := stats.NewRand(seed)
	truth := make([]Label, len(in.Tasks))
	for t := range truth {
		if rng.IntN(2) == 0 {
			truth[t] = Yes
		} else {
			truth[t] = No
		}
	}
	return &Simulator{in: in, rng: rng, truth: truth}
}

// Truth returns the hidden ground truth of task t.
func (s *Simulator) Truth(t model.TaskID) Label { return s.truth[t] }

// Collect samples one answer per assignment of the arrangement: correct
// with probability Acc(w,t), flipped otherwise.
func (s *Simulator) Collect(arr *model.Arrangement) []Answer {
	answers := make([]Answer, 0, len(arr.Pairs))
	for _, p := range arr.Pairs {
		w := s.in.Workers[p.Worker-1]
		t := s.in.Tasks[p.Task]
		acc := s.in.Model.Predict(w, t)
		v := s.truth[p.Task]
		if s.rng.Float64() >= acc {
			v = -v
		}
		answers = append(answers, Answer{Worker: p.Worker, Task: p.Task, Value: v})
	}
	return answers
}

// ErrNoAnswers is returned by Aggregate for a task with no answers.
var ErrNoAnswers = errors.New("voting: task has no answers")

// Aggregate computes the weighted majority vote per task. Tasks without
// answers get label 0; Decide returns an error for them instead.
func Aggregate(in *model.Instance, answers []Answer) []Label {
	score := make([]float64, len(in.Tasks))
	seen := make([]bool, len(in.Tasks))
	for _, a := range answers {
		w := in.Workers[a.Worker-1]
		t := in.Tasks[a.Task]
		weight := 2*in.Model.Predict(w, t) - 1
		score[a.Task] += weight * float64(a.Value)
		seen[a.Task] = true
	}
	out := make([]Label, len(in.Tasks))
	for t := range out {
		switch {
		case !seen[t]:
			out[t] = 0
		case score[t] >= 0:
			out[t] = Yes
		default:
			out[t] = No
		}
	}
	return out
}

// Decide aggregates answers for a single task, returning ErrNoAnswers when
// no worker answered it.
func Decide(in *model.Instance, t model.TaskID, answers []Answer) (Label, error) {
	var score float64
	seen := false
	for _, a := range answers {
		if a.Task != t {
			continue
		}
		w := in.Workers[a.Worker-1]
		weight := 2*in.Model.Predict(w, in.Tasks[t]) - 1
		score += weight * float64(a.Value)
		seen = true
	}
	if !seen {
		return 0, fmt.Errorf("%w: task %d", ErrNoAnswers, t)
	}
	if score >= 0 {
		return Yes, nil
	}
	return No, nil
}

// ErrorReport summarises an empirical quality evaluation.
type ErrorReport struct {
	Trials        int
	TaskDecisions int     // Trials × |T|
	Wrong         int     // decisions disagreeing with ground truth
	ErrorRate     float64 // Wrong / TaskDecisions
}

// EmpiricalError replays the arrangement `trials` times with fresh sampled
// answers (fresh ground truth each trial) and reports the fraction of task
// decisions that were wrong. For arrangements produced by the LTC
// algorithms this should be (comfortably) below the instance's ε.
func EmpiricalError(in *model.Instance, arr *model.Arrangement, trials int, seed uint64) ErrorReport {
	rep := ErrorReport{Trials: trials}
	for trial := 0; trial < trials; trial++ {
		sim := NewSimulator(in, stats.SplitSeed(seed, uint64(trial)))
		answers := sim.Collect(arr)
		decided := Aggregate(in, answers)
		for t, label := range decided {
			if label == 0 {
				continue // unassigned task: no decision to grade
			}
			rep.TaskDecisions++
			if label != sim.Truth(model.TaskID(t)) {
				rep.Wrong++
			}
		}
	}
	if rep.TaskDecisions > 0 {
		rep.ErrorRate = float64(rep.Wrong) / float64(rep.TaskDecisions)
	}
	return rep
}
