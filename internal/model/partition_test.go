package model

import (
	"errors"
	"math/rand/v2"
	"sync"
	"testing"

	"ltc/internal/geo"
)

func partitionInstance(nTasks int, seed uint64) *Instance {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
	in := &Instance{
		Epsilon: 0.1,
		K:       4,
		Model:   SigmoidDistance{DMax: 30},
		MinAcc:  0.5,
	}
	for t := 0; t < nTasks; t++ {
		in.Tasks = append(in.Tasks, Task{
			ID:  TaskID(t),
			Loc: geo.Point{X: rng.Float64() * 500, Y: rng.Float64() * 500},
		})
	}
	return in
}

func TestPartitionCoversEveryTaskOnce(t *testing.T) {
	in := partitionInstance(300, 7)
	for _, n := range []int{1, 2, 4, 7, 16} {
		p, err := PartitionInstance(in, n)
		if err != nil {
			t.Fatal(err)
		}
		if p.NumShards() < 1 || p.NumShards() > n {
			t.Fatalf("n=%d: got %d shards", n, p.NumShards())
		}
		seen := make([]int, len(in.Tasks))
		for si, sub := range p.Shards {
			if len(sub.In.Tasks) == 0 {
				t.Fatalf("n=%d: shard %d empty", n, si)
			}
			if len(sub.In.Tasks) != len(sub.Global) {
				t.Fatalf("n=%d shard %d: mapping length mismatch", n, si)
			}
			for local, task := range sub.In.Tasks {
				if int(task.ID) != local {
					t.Fatalf("n=%d shard %d: local IDs not consecutive", n, si)
				}
				gid := sub.Global[local]
				seen[gid]++
				if task.Loc != in.Tasks[gid].Loc {
					t.Fatalf("n=%d shard %d: task %d location drifted", n, si, gid)
				}
				if p.TaskShard(gid) != si {
					t.Fatalf("n=%d: TaskShard(%d) = %d, want %d", n, gid, p.TaskShard(gid), si)
				}
			}
			// Local order must follow ascending global ID (stable IDs).
			for i := 1; i < len(sub.Global); i++ {
				if sub.Global[i] <= sub.Global[i-1] {
					t.Fatalf("n=%d shard %d: global IDs not ascending", n, si)
				}
			}
			if sub.In.Epsilon != in.Epsilon || sub.In.K != in.K || sub.In.MinAcc != in.MinAcc {
				t.Fatalf("n=%d shard %d: parameters not inherited", n, si)
			}
		}
		for gid, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: task %d appears %d times", n, gid, c)
			}
		}
	}
}

func TestPartitionSingleShardIsIdentity(t *testing.T) {
	in := partitionInstance(50, 3)
	p, err := PartitionInstance(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumShards() != 1 {
		t.Fatalf("shards = %d", p.NumShards())
	}
	sub := p.Shards[0]
	for i := range in.Tasks {
		if sub.Global[i] != TaskID(i) || sub.In.Tasks[i].Loc != in.Tasks[i].Loc {
			t.Fatalf("identity mapping broken at %d", i)
		}
	}
}

func TestPartitionLocateRoutesToOwningShard(t *testing.T) {
	in := partitionInstance(200, 11)
	p, err := PartitionInstance(in, 8)
	if err != nil {
		t.Fatal(err)
	}
	// A task's own location must route to the shard holding it.
	for _, task := range in.Tasks {
		if got, want := p.Locate(task.Loc), p.TaskShard(task.ID); got != want {
			t.Fatalf("task %d at %v routed to shard %d, owned by %d", task.ID, task.Loc, got, want)
		}
	}
	// Arbitrary points (including far outside the task rect) must route to
	// a valid shard.
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 2000; i++ {
		q := geo.Point{X: rng.Float64()*2000 - 500, Y: rng.Float64()*2000 - 500}
		s := p.Locate(q)
		if s < 0 || s >= p.NumShards() {
			t.Fatalf("Locate(%v) = %d out of range", q, s)
		}
	}
}

func TestPartitionDegenerate(t *testing.T) {
	// All tasks at one point: a single usable shard must come out.
	in := &Instance{Epsilon: 0.1, K: 2, Model: ConstantAccuracy{P: 0.9}}
	for t := 0; t < 5; t++ {
		in.Tasks = append(in.Tasks, Task{ID: TaskID(t), Loc: geo.Point{X: 3, Y: 3}})
	}
	p, err := PartitionInstance(in, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumShards() != 1 || len(p.Shards[0].In.Tasks) != 5 {
		t.Fatalf("degenerate partition: %d shards", p.NumShards())
	}
	if p.Locate(geo.Point{X: -100, Y: 40}) != 0 {
		t.Fatal("degenerate Locate broken")
	}
	// More shards than tasks: capped, never empty.
	p, err = PartitionInstance(partitionInstance(3, 1), 64)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumShards() > 3 {
		t.Fatalf("shards %d > tasks 3", p.NumShards())
	}
}

// TestPartitionRemapsIDSensitiveModels: sub-instances renumber tasks
// locally, so their wrapped model must forward Predict with the *source*
// task — otherwise models keyed on Task.ID (MatrixAccuracy) silently read
// the wrong rows under sharding.
func TestPartitionRemapsIDSensitiveModels(t *testing.T) {
	in := partitionInstance(40, 23)
	vals := make([][]float64, len(in.Tasks))
	for tid := range vals {
		row := make([]float64, 10)
		for wi := range row {
			row[wi] = float64(tid*10+wi) / 1000 // unique per (task, worker)
		}
		vals[tid] = row
	}
	in.Model = MatrixAccuracy{Vals: vals}
	p, err := PartitionInstance(in, 6)
	if err != nil {
		t.Fatal(err)
	}
	w := Worker{Index: 4, Acc: 0.9}
	for si, sub := range p.Shards {
		for local, task := range sub.In.Tasks {
			got := sub.In.Model.Predict(w, task)
			want := in.Model.Predict(w, in.Tasks[sub.Global[local]])
			if got != want {
				t.Fatalf("shard %d local task %d: Predict = %v, want %v (global %d)",
					si, local, got, want, sub.Global[local])
			}
		}
	}
	// A RadiusBounder source must keep its bound through the wrapper.
	in2 := partitionInstance(40, 29)
	p2, err := PartitionInstance(in2, 4)
	if err != nil {
		t.Fatal(err)
	}
	rb, ok := p2.Shards[0].In.Model.(RadiusBounder)
	if !ok {
		t.Fatal("wrapped SigmoidDistance lost RadiusBounder")
	}
	if got, want := rb.EligibilityRadius(0.5), (SigmoidDistance{DMax: 30}).EligibilityRadius(0.5); got != want {
		t.Fatalf("radius %v, want %v", got, want)
	}
	// A non-bounding source must NOT grow a radius through the wrapper.
	in3 := partitionInstance(10, 31)
	in3.Model = ConstantAccuracy{P: 0.9}
	p3, err := PartitionInstance(in3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p3.Shards[0].In.Model.(RadiusBounder); ok {
		t.Fatal("wrapped ConstantAccuracy gained RadiusBounder")
	}
}

func TestPartitionRejectsBadInput(t *testing.T) {
	in := partitionInstance(10, 1)
	if _, err := PartitionInstance(in, 0); !errors.Is(err, ErrBadShardCount) {
		t.Fatalf("err = %v, want ErrBadShardCount", err)
	}
	if _, err := PartitionInstance(&Instance{}, 2); !errors.Is(err, ErrNoTasks) {
		t.Fatalf("err = %v, want ErrNoTasks", err)
	}
}

// TestPartitionLocateConcurrent hammers the routing table from many
// goroutines; run under -race it proves Partition is read-only after
// construction.
func TestPartitionLocateConcurrent(t *testing.T) {
	in := partitionInstance(400, 17)
	p, err := PartitionInstance(in, 16)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 99))
			for i := 0; i < 5000; i++ {
				q := geo.Point{X: rng.Float64() * 600, Y: rng.Float64() * 600}
				if s := p.Locate(q); s < 0 || s >= p.NumShards() {
					t.Errorf("goroutine %d: Locate out of range: %d", g, s)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
