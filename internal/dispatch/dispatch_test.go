package dispatch

import (
	"errors"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"ltc/internal/core"
	"ltc/internal/model"
	"ltc/internal/workload"
)

func testInstance(t testing.TB, scale float64) *model.Instance {
	t.Helper()
	cfg := workload.Default().Scale(scale)
	cfg.Seed = 21
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func lafFactory(in *model.Instance, ci *model.CandidateIndex) core.Online {
	return core.NewLAF(in, ci)
}

func aamFactory(in *model.Instance, ci *model.CandidateIndex) core.Online {
	return core.NewAAM(in, ci)
}

func TestNewValidatesInstance(t *testing.T) {
	good := testInstance(t, 0.01)
	for _, tc := range []struct {
		name   string
		mutate func(*model.Instance)
		want   error
	}{
		{"no tasks", func(in *model.Instance) { in.Tasks = nil }, model.ErrNoTasks},
		{"nil model", func(in *model.Instance) { in.Model = nil }, model.ErrNoModel},
		{"bad K", func(in *model.Instance) { in.K = 0 }, model.ErrBadCapacity},
		{"bad eps", func(in *model.Instance) { in.Epsilon = 2 }, model.ErrBadEpsilon},
	} {
		in := *good
		tc.mutate(&in)
		if _, err := New(&in, 4, lafFactory); !errors.Is(err, tc.want) {
			t.Fatalf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	if _, err := New(good, 0, lafFactory); !errors.Is(err, model.ErrBadShardCount) {
		t.Fatalf("shards=0: err = %v", err)
	}
}

func TestCheckInRejectsBadIndex(t *testing.T) {
	d, err := New(testInstance(t, 0.01), 2, lafFactory)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CheckIn(model.Worker{Index: 0}); !errors.Is(err, ErrBadWorkerIndex) {
		t.Fatalf("err = %v, want ErrBadWorkerIndex", err)
	}
}

// TestSingleShardMatchesRunOnline: with one shard and a sequential feed the
// dispatcher is the plain online solver — identical arrangement, latency
// and completion.
func TestSingleShardMatchesRunOnline(t *testing.T) {
	in := testInstance(t, 0.02)
	for name, factory := range map[string]core.OnlineFactory{"LAF": lafFactory, "AAM": aamFactory} {
		want, err := core.RunOnline(in, model.NewCandidateIndex(in), factory)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		d, err := New(in, 1, factory)
		if err != nil {
			t.Fatal(err)
		}
		if d.NumShards() != 1 {
			t.Fatalf("%s: shards = %d", name, d.NumShards())
		}
		for _, w := range in.Workers {
			if d.Done() {
				break
			}
			if _, err := d.CheckIn(w); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		if !d.Done() {
			t.Fatalf("%s: dispatcher incomplete", name)
		}
		if d.Latency() != want.Latency {
			t.Fatalf("%s: latency %d, want %d", name, d.Latency(), want.Latency)
		}
		got := d.Arrangement()
		if len(got.Pairs) != len(want.Arrangement.Pairs) {
			t.Fatalf("%s: %d pairs, want %d", name, len(got.Pairs), len(want.Arrangement.Pairs))
		}
		for i := range got.Pairs {
			if got.Pairs[i] != want.Arrangement.Pairs[i] {
				t.Fatalf("%s: pair %d = %+v, want %+v", name, i, got.Pairs[i], want.Arrangement.Pairs[i])
			}
		}
		for tid := range got.Accumulated {
			if got.Accumulated[tid] != want.Arrangement.Accumulated[tid] {
				t.Fatalf("%s: credit of task %d drifted", name, tid)
			}
		}
	}
}

// TestShardedCompletesAndValidates: a sharded run fed the full stream must
// complete every task with a valid merged arrangement (capacity,
// eligibility, no duplicates) and coherent shard statistics.
func TestShardedCompletesAndValidates(t *testing.T) {
	in := testInstance(t, 0.05)
	for _, shards := range []int{2, 4, 8} {
		d, err := New(in, shards, aamFactory)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range in.Workers {
			if d.Done() {
				break
			}
			if _, err := d.CheckIn(w); err != nil {
				t.Fatal(err)
			}
		}
		if !d.Done() {
			t.Fatalf("shards=%d: incomplete after full stream", shards)
		}
		arr := d.Arrangement()
		if err := arr.Validate(in, true); err != nil {
			t.Fatalf("shards=%d: merged arrangement invalid: %v", shards, err)
		}
		if arr.Latency() != d.Latency() {
			t.Fatalf("shards=%d: latency mismatch %d vs %d", shards, arr.Latency(), d.Latency())
		}
		stats := d.ShardStats()
		if len(stats) != d.NumShards() {
			t.Fatalf("shards=%d: %d stats", shards, len(stats))
		}
		totTasks, totWorkers, maxGlobal := 0, 0, 0
		for _, s := range stats {
			if s.Completed != s.Tasks {
				t.Fatalf("shards=%d: shard incomplete in stats: %+v", shards, s)
			}
			totTasks += s.Tasks
			totWorkers += s.Workers
			if s.Latency > maxGlobal {
				maxGlobal = s.Latency
			}
			if s.Offered > s.Workers {
				t.Fatalf("shards=%d: offered %d > routed %d", shards, s.Offered, s.Workers)
			}
		}
		if totTasks != len(in.Tasks) {
			t.Fatalf("shards=%d: stats cover %d tasks", shards, totTasks)
		}
		if totWorkers != d.Arrived() {
			t.Fatalf("shards=%d: stats count %d workers, arrived %d", shards, totWorkers, d.Arrived())
		}
		if maxGlobal != d.Latency() {
			t.Fatalf("shards=%d: max shard global latency %d != %d", shards, maxGlobal, d.Latency())
		}
		completed, total := d.Progress()
		if completed != total || total != len(in.Tasks) {
			t.Fatalf("shards=%d: progress %d/%d", shards, completed, total)
		}
		credits := d.Credits(nil)
		delta := in.Delta()
		for tid, c := range credits {
			if !model.Completed(c, delta) {
				t.Fatalf("shards=%d: credit snapshot of task %d below δ", shards, tid)
			}
		}
	}
}

// TestCheckInAfterDone: once complete, further check-ins return ErrDone.
func TestCheckInAfterDone(t *testing.T) {
	in := testInstance(t, 0.01)
	d, err := New(in, 2, lafFactory)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range in.Workers {
		if d.Done() {
			break
		}
		if _, err := d.CheckIn(w); err != nil {
			t.Fatal(err)
		}
	}
	if !d.Done() {
		t.Fatal("incomplete")
	}
	if _, err := d.CheckIn(model.Worker{Index: len(in.Workers) + 1, Acc: 0.9}); !errors.Is(err, ErrDone) {
		t.Fatalf("err = %v, want ErrDone", err)
	}
}

// TestConcurrentCheckInStress hammers one dispatcher from many goroutines
// (run with -race): every check-in must be accepted exactly once, shard
// bookkeeping must stay consistent, and the merged arrangement must be
// valid for the source instance. A concurrent sampler pins the snapshot
// invariants of the one-shard-at-a-time readers: Imbalance() stays within
// [1, shards] mid-stream (the max of monotone non-negative per-shard
// counts never sits below their mean, atomic cut or not) and ShardStats
// always reports one per-shard-consistent entry per shard.
func TestConcurrentCheckInStress(t *testing.T) {
	in := testInstance(t, 0.05)
	for _, shards := range []int{1, 4, 16} {
		d, err := New(in, shards, aamFactory)
		if err != nil {
			t.Fatal(err)
		}
		samplerStop := make(chan struct{})
		var samplerWG sync.WaitGroup
		samplerWG.Add(1)
		go func() {
			defer samplerWG.Done()
			for {
				select {
				case <-samplerStop:
					return
				default:
				}
				if im := d.Imbalance(); im < 1 || im > float64(shards) {
					t.Errorf("shards=%d: mid-stream Imbalance() = %v, want within [1, %d]", shards, im, shards)
					return
				}
				routed := 0
				for _, s := range d.ShardStats() {
					if s.Workers < 0 || s.Offered > s.Workers {
						t.Errorf("shards=%d: inconsistent shard snapshot %+v", shards, s)
						return
					}
					routed += s.Workers
				}
				if routed > len(in.Workers) {
					t.Errorf("shards=%d: snapshot routed %d workers, stream has %d", shards, routed, len(in.Workers))
					return
				}
				runtime.Gosched()
			}
		}()
		var cursor atomic.Int64
		var accepted, bounced atomic.Int64
		var wg sync.WaitGroup
		workers := 8
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(in.Workers) || d.Done() {
						return
					}
					_, err := d.CheckIn(in.Workers[i])
					if errors.Is(err, ErrDone) {
						// The Done pre-check above is racy: another
						// feeder can complete the platform after it
						// passes, and the bounced check-in still counts
						// as seen (the WorkersSeen contract).
						bounced.Add(1)
						return
					}
					if err != nil {
						t.Errorf("CheckIn: %v", err)
						return
					}
					accepted.Add(1)
				}
			}()
		}
		wg.Wait()
		close(samplerStop)
		samplerWG.Wait()
		if !d.Done() {
			t.Fatalf("shards=%d: incomplete after concurrent stream", shards)
		}
		if got, want := d.Arrived(), int(accepted.Load()+bounced.Load()); got != want {
			t.Fatalf("shards=%d: Arrived=%d, want %d (%d accepted + %d bounced)",
				shards, got, want, accepted.Load(), bounced.Load())
		}
		// The arrangement references only real workers and respects
		// capacity/eligibility; completion holds by Done.
		if err := d.Arrangement().Validate(in, true); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
	}
}

// TestShardedLatencySemantics documents how sharding changes the objective:
// per-shard solvers see fewer candidates per worker, so the global latency
// (in global arrival indices) is at least the information-theoretic trend
// of the unsharded solver on this workload — here we assert the documented
// relationship latency(sharded) ≥ latency(1 shard) for a fixed sequential
// feed, and that shard worker counts partition the stream.
func TestShardedLatencySemantics(t *testing.T) {
	in := testInstance(t, 0.05)
	run := func(shards int) (*Dispatcher, int) {
		d, err := New(in, shards, aamFactory)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range in.Workers {
			if d.Done() {
				break
			}
			if _, err := d.CheckIn(w); err != nil {
				t.Fatal(err)
			}
		}
		if !d.Done() {
			t.Fatalf("shards=%d incomplete", shards)
		}
		return d, d.Latency()
	}
	_, base := run(1)
	d8, sharded := run(8)
	if sharded < base {
		t.Fatalf("sharded latency %d < unsharded %d: sharding cannot use fewer workers here", sharded, base)
	}
	tot := 0
	for _, s := range d8.ShardStats() {
		tot += s.Workers
	}
	if tot != d8.Arrived() {
		t.Fatalf("shard worker counts %d != arrivals %d", tot, d8.Arrived())
	}
	t.Logf("latency: 1 shard = %d, 8 shards = %d (global arrival indices)", base, sharded)
}

// TestRoutingMatchesPartition: CheckIn must land workers on the shard
// Locate picks, which for a worker standing exactly on a task is that
// task's shard.
func TestRoutingMatchesPartition(t *testing.T) {
	in := testInstance(t, 0.02)
	p, err := model.PartitionInstance(in, 6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 9))
	for i := 0; i < 200; i++ {
		task := in.Tasks[rng.IntN(len(in.Tasks))]
		if got, want := p.Locate(task.Loc), p.TaskShard(task.ID); got != want {
			t.Fatalf("task %d: Locate=%d TaskShard=%d", task.ID, got, want)
		}
	}
}
