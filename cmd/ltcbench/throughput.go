package main

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"ltc"
)

// runThroughput measures the sharded dispatch layer's check-in throughput
// from the CLI: for each requested shard count it feeds the full worker
// stream to a fresh Platform from GOMAXPROCS goroutines, repeating for at
// least minDuration, and prints workers/sec alongside the resulting global
// latency — the quality cost of sharding.
func runThroughput(shardList string, scale float64, seed uint64, algoName string) error {
	var shardCounts []int
	for _, s := range strings.Split(shardList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -shards entry %q", s)
		}
		shardCounts = append(shardCounts, n)
	}
	algo := ltc.Algorithm(algoName)
	if algoName == "" {
		algo = ltc.AAM
	}

	cfg := ltc.DefaultWorkload().Scale(scale)
	cfg.Seed = seed
	in, err := cfg.Generate()
	if err != nil {
		return err
	}
	feeders := runtime.GOMAXPROCS(0)
	fmt.Printf("throughput: %s over %d tasks / %d workers, %d feeder goroutines\n\n",
		algo, len(in.Tasks), len(in.Workers), feeders)

	const minDuration = 500 * time.Millisecond
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "shards\teffective\tworkers/s\tglobal latency\truns")
	for _, n := range shardCounts {
		var checkins, runs int
		var latency, effective int
		start := time.Now()
		for time.Since(start) < minDuration {
			plat, err := ltc.NewPlatform(in, algo, ltc.PlatformOptions{Shards: n, Seed: seed})
			if err != nil {
				return err
			}
			var cursor, fed atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < feeders; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := int(cursor.Add(1)) - 1
						if i >= len(in.Workers) || plat.Done() {
							return
						}
						if _, err := plat.CheckIn(in.Workers[i]); err != nil {
							return // platform completed under contention
						}
						fed.Add(1)
					}
				}()
			}
			wg.Wait()
			checkins += int(fed.Load())
			runs++
			latency = plat.Latency()
			effective = plat.Shards()
		}
		elapsed := time.Since(start)
		fmt.Fprintf(w, "%d\t%d\t%.0f\t%d\t%d\n",
			n, effective, float64(checkins)/elapsed.Seconds(), latency, runs)
	}
	return w.Flush()
}
