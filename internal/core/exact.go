package core

import (
	"errors"
	"sort"

	"ltc/internal/model"
)

// ErrSearchBudget is returned by Exact when the branch-and-bound search
// exceeds its node budget. The offline LTC problem is NP-hard (Theorem 1),
// so Exact is only meant for toy instances and ratio experiments.
var ErrSearchBudget = errors.New("ltc: exact search budget exhausted")

// Exact solves the offline LTC problem optimally by branch and bound over
// the worker sequence: each worker either performs a subset (≤ K) of its
// eligible uncompleted tasks or is skipped. The bound combines the best
// latency found so far with an optimistic workers-needed estimate from the
// remaining total credit demand.
type Exact struct {
	// MaxNodes bounds the number of explored search nodes
	// (default 5,000,000 when zero).
	MaxNodes int64
}

// Name implements Offline.
func (e *Exact) Name() string { return "Exact" }

// Solve implements Offline. It returns ErrSearchBudget if the instance is
// too large to finish within the node budget.
func (e *Exact) Solve(in *model.Instance, ci *model.CandidateIndex) (*model.Arrangement, error) {
	budget := e.MaxNodes
	if budget <= 0 {
		budget = 5_000_000
	}
	s := &exactSearch{
		in:     in,
		delta:  in.Delta(),
		state:  make([]float64, len(in.Tasks)),
		budget: budget,
		best:   len(in.Workers) + 1,
	}
	// Precompute candidate lists and the global max credit for the bound.
	s.cands = make([][]model.Candidate, len(in.Workers))
	var buf []model.Candidate
	for i, w := range in.Workers {
		buf = ci.Candidates(w, buf[:0])
		s.cands[i] = append([]model.Candidate(nil), buf...)
		// Strongest candidates first: finds good incumbents early, which
		// tightens the bound for the rest of the search.
		sort.Slice(s.cands[i], func(a, b int) bool {
			if s.cands[i][a].AccStar != s.cands[i][b].AccStar {
				return s.cands[i][a].AccStar > s.cands[i][b].AccStar
			}
			return s.cands[i][a].Task < s.cands[i][b].Task
		})
		for _, c := range s.cands[i] {
			if c.AccStar > s.maxCredit {
				s.maxCredit = c.AccStar
			}
		}
	}
	if s.maxCredit <= 0 {
		return nil, model.ErrInfeasible
	}
	var need float64
	for range in.Tasks {
		need += s.delta
	}
	s.remainingNeed = need

	// Seed the incumbent with a fast heuristic (LAF): branch and bound then
	// only explores branches that strictly improve on it, pruning the bulk
	// of the tree on easy instances.
	laf := NewLAF(in, ci)
	var heurPairs []model.Assignment
	for _, w := range in.Workers {
		if laf.Done() {
			break
		}
		for _, t := range laf.Arrive(w) {
			heurPairs = append(heurPairs, model.Assignment{Worker: w.Index, Task: t})
		}
	}
	if laf.Done() {
		s.bestPairs = heurPairs
		s.best = 0
		for _, p := range heurPairs {
			if p.Worker > s.best {
				s.best = p.Worker
			}
		}
	}

	s.dfs(0, 0)
	if s.budget < 0 {
		return nil, ErrSearchBudget
	}
	if s.bestPairs == nil {
		return nil, model.ErrInfeasible
	}
	arr := model.NewArrangement(len(in.Tasks))
	for _, p := range s.bestPairs {
		arr.Add(p.Worker, p.Task, model.AccStar(in.Model.Predict(in.Workers[p.Worker-1], in.Tasks[p.Task])))
	}
	return arr, nil
}

type exactSearch struct {
	in            *model.Instance
	delta         float64
	state         []float64
	remainingNeed float64 // Σ_t max(0, δ − S[t])
	cands         [][]model.Candidate
	maxCredit     float64
	budget        int64

	current   []model.Assignment
	best      int
	bestPairs []model.Assignment
}

// dfs explores worker wi (0-based); lastUsed is the highest arrival index
// assigned so far.
func (s *exactSearch) dfs(wi, lastUsed int) {
	if s.budget < 0 {
		return
	}
	s.budget--
	if s.allDone() {
		if lastUsed < s.best {
			s.best = lastUsed
			s.bestPairs = append(s.bestPairs[:0], s.current...)
		}
		return
	}
	if wi >= len(s.in.Workers) {
		return
	}
	// Optimistic bound: each remaining worker contributes at most
	// K·maxCredit; the first contribution arrives at index wi+1.
	needWorkers := int(s.remainingNeed / (float64(s.in.K) * s.maxCredit))
	if float64(needWorkers)*float64(s.in.K)*s.maxCredit < s.remainingNeed-model.CompletionEps {
		needWorkers++
	}
	if wi+needWorkers >= s.best {
		return // even the optimistic completion is no better than best
	}
	s.chooseSubset(wi, 0, 0, lastUsed)
}

// chooseSubset enumerates subsets of worker wi's open candidates (size ≤ K)
// in decreasing-credit order: ci is the candidate cursor, chosen counts
// assignments made to wi on this path.
func (s *exactSearch) chooseSubset(wi, ci, chosen, lastUsed int) {
	if s.budget < 0 {
		return
	}
	// Assignment branches first (strongest candidates first): descending
	// the greedy path early yields tight incumbents for pruning. The "stop
	// assigning to this worker" branch follows.
	if chosen < s.in.K {
		s.assignBranches(wi, ci, chosen, lastUsed)
	}
	// Domination prune: once a worker is used, its latency cost is sunk and
	// extra credit is free, so stopping with spare capacity while an open
	// candidate remains is weakly dominated by assigning one more task.
	if chosen > 0 && chosen < s.in.K && s.hasOpenUnchosen(wi, chosen) {
		return
	}
	next := lastUsed
	if chosen > 0 {
		next = s.in.Workers[wi].Index
	}
	s.dfs(wi+1, next)
}

// hasOpenUnchosen reports whether worker wi has any eligible task that is
// still below δ and not among the worker's `chosen` assignments on the
// current path (the trailing entries of s.current).
func (s *exactSearch) hasOpenUnchosen(wi, chosen int) bool {
	tail := s.current[len(s.current)-chosen:]
	for _, c := range s.cands[wi] {
		if model.Completed(s.state[c.Task], s.delta) {
			continue
		}
		taken := false
		for _, p := range tail {
			if p.Task == c.Task {
				taken = true
				break
			}
		}
		if !taken {
			return true
		}
	}
	return false
}

// assignBranches tries each remaining open candidate of worker wi in turn.
func (s *exactSearch) assignBranches(wi, ci, chosen, lastUsed int) {
	for i := ci; i < len(s.cands[wi]); i++ {
		c := s.cands[wi][i]
		if model.Completed(s.state[c.Task], s.delta) {
			continue
		}
		before := s.state[c.Task]
		gain := c.AccStar
		needBefore := s.delta - before
		if needBefore < 0 {
			needBefore = 0
		}
		consumed := gain
		if consumed > needBefore {
			consumed = needBefore
		}
		s.state[c.Task] = before + gain
		s.remainingNeed -= consumed
		s.current = append(s.current, model.Assignment{Worker: s.in.Workers[wi].Index, Task: c.Task})

		s.chooseSubset(wi, i+1, chosen+1, lastUsed)

		s.current = s.current[:len(s.current)-1]
		s.remainingNeed += consumed
		s.state[c.Task] = before
	}
}

func (s *exactSearch) allDone() bool {
	return s.remainingNeed <= model.CompletionEps
}
