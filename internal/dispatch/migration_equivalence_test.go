package dispatch

import (
	"errors"
	"math"
	"testing"

	"ltc/internal/core"
	"ltc/internal/events"
	"ltc/internal/model"
	"ltc/internal/workload"
)

// checkMigrationEquivalence is the migration equivalence net: the same
// skewed stream is fed to a migration-free dispatcher and to one whose
// tiles are forcibly migrated at deterministic points mid-stream, both
// driven until every task completes. Migration may legitimately change
// which worker completes which task (shard composition changes candidate
// sets), so the net checks the conservation laws rather than byte
// equality:
//
//   - completion set: both runs complete exactly the full task set
//   - exactly-once: across all receipts each task completes at most once,
//     and the receipt-observed completion set equals TaskStatuses
//   - credit conservation: the engine accumulators (Credits) match the
//     merged-arrangement rebuild within float-summation noise
//   - event conservation: per subscriber, received events have strictly
//     increasing Seq and the sum of gaps equals Dropped(); a keep-up
//     subscriber folds to exactly one TaskCompleted per completed task and
//     one TileMigrated per migration
//   - progress/imbalance coherence: Progress totals match the instance and
//     Imbalance stays ≥ 1
func checkMigrationEquivalence(t *testing.T, in *model.Instance, factory core.OnlineFactory, shards int, stride, sel int) {
	t.Helper()
	base, err := New(in, shards, factory, Options{Balanced: true})
	if err != nil {
		t.Fatal(err)
	}
	mig, err := New(in, shards, factory, Options{Balanced: true})
	if err != nil {
		t.Fatal(err)
	}
	if !mig.part.Rebalanceable() {
		t.Skip("degenerate draw: partition collapsed to one shard")
	}
	owners := mig.part.OwnerTiles()

	// A keep-up subscriber (conservation fold) and a tiny one (drop
	// accounting) ride along on the migrating run.
	big := mig.Subscribe(1 << 17)
	tiny := mig.Subscribe(1)

	completedByReceipt := make(map[model.TaskID]int)
	migrations := 0
	const batch = 33
	feedRound := func(d *Dispatcher, round int, migrate bool) bool {
		for i := 0; i < len(in.Workers); i += batch {
			j := min(i+batch, len(in.Workers))
			ws := make([]model.Worker, j-i)
			for k, w := range in.Workers[i:j] {
				w.Index = round*len(in.Workers) + i + k + 1
				ws[k] = w
			}
			rs, err := d.CheckInBatch(ws)
			if err != nil && !errors.Is(err, ErrDone) {
				t.Fatal(err)
			}
			if migrate {
				for _, r := range rs {
					for _, g := range r.Assignments {
						if g.Completed {
							completedByReceipt[g.Task]++
						}
					}
				}
				if (i/batch)%stride == 0 {
					tile := owners[(round*37+i/batch+sel)%len(owners)]
					from := mig.part.TileShard(tile)
					// Offset in [1, n): the target is always a different shard.
					n := mig.NumShards()
					to := (from + 1 + sel%(n-1)) % n
					if err := mig.MigrateTile(tile, to); err != nil {
						t.Fatal(err)
					}
					migrations++
				}
			}
			if d.Done() {
				return true
			}
		}
		return d.Done()
	}
	const maxRounds = 60
	baseDone, migDone := false, false
	for r := 0; r < maxRounds && !(baseDone && migDone); r++ {
		if !baseDone {
			baseDone = feedRound(base, r, false)
		}
		if !migDone {
			migDone = feedRound(mig, r, true)
		}
	}
	if !baseDone || !migDone {
		t.Skip("stream too weak to complete the instance within the round cap")
	}

	// Completion set: both runs completed exactly the full task set.
	baseStatuses, migStatuses := base.TaskStatuses(), mig.TaskStatuses()
	if len(baseStatuses) != len(in.Tasks) || len(migStatuses) != len(in.Tasks) {
		t.Fatalf("status counts %d/%d, want %d", len(baseStatuses), len(migStatuses), len(in.Tasks))
	}
	for i := range migStatuses {
		if !migStatuses[i].Completed || !baseStatuses[i].Completed {
			t.Fatalf("task %d: migrated completed=%v, base completed=%v — completion sets must both be the full task set",
				i, migStatuses[i].Completed, baseStatuses[i].Completed)
		}
	}
	// Exactly-once: receipts observed each completion exactly once.
	if len(completedByReceipt) != len(in.Tasks) {
		t.Fatalf("receipts observed %d completions, want %d", len(completedByReceipt), len(in.Tasks))
	}
	for id, n := range completedByReceipt {
		if n != 1 {
			t.Fatalf("task %d completed %d times in receipts", id, n)
		}
	}
	if got := mig.Migrations(); got != migrations {
		t.Fatalf("Migrations() = %d, observed %d", got, migrations)
	}

	// Credit conservation across the two views of the migrating run.
	credits := mig.Credits(nil)
	merged := mig.Arrangement().Accumulated
	for i := range credits {
		if math.Abs(credits[i]-merged[i]) > 1e-9 {
			t.Fatalf("task %d credit: engines %v, merged %v", i, credits[i], merged[i])
		}
	}
	if imb := mig.Imbalance(); imb < 1 {
		t.Fatalf("imbalance %v < 1", imb)
	}
	resolved, total := mig.Progress()
	if resolved != len(in.Tasks) || total != len(in.Tasks) {
		t.Fatalf("progress %d/%d, want %d/%d", resolved, total, len(in.Tasks), len(in.Tasks))
	}

	// Event conservation: the keep-up subscriber folds to exactly one
	// completion per task and one migration event per migration; the tiny
	// subscriber's gaps equal its drop counter.
	big.Close()
	tiny.Close()
	var lastSeq uint64
	eventCompleted := make(map[model.TaskID]int)
	eventMigrations := 0
	for e := range big.Events() {
		if e.Seq <= lastSeq {
			t.Fatalf("big subscriber seq not increasing: %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		switch e.Kind {
		case events.TaskCompleted:
			eventCompleted[e.Task]++
		case events.TileMigrated:
			eventMigrations++
			if e.Tile < 0 || e.FromShard == e.ToShard {
				t.Fatalf("malformed TileMigrated %+v", e)
			}
		}
	}
	if big.Dropped() != 0 {
		t.Fatalf("keep-up subscriber dropped %d events", big.Dropped())
	}
	if eventMigrations != migrations {
		t.Fatalf("%d TileMigrated events, want %d", eventMigrations, migrations)
	}
	if len(eventCompleted) != len(in.Tasks) {
		t.Fatalf("events cover %d completions, want %d", len(eventCompleted), len(in.Tasks))
	}
	for id, n := range eventCompleted {
		if n != 1 {
			t.Fatalf("task %d emitted %d TaskCompleted events", id, n)
		}
	}
	var gaps, received, last uint64
	for e := range tiny.Events() {
		if e.Seq <= last {
			t.Fatalf("tiny subscriber seq not increasing: %d after %d", e.Seq, last)
		}
		gaps += e.Seq - last - 1
		last = e.Seq
		received++
	}
	gaps += lastSeq - last // both subscribers saw the same final bus seq
	if gaps != tiny.Dropped() {
		t.Fatalf("tiny subscriber gaps %d != dropped %d", gaps, tiny.Dropped())
	}
	if received+tiny.Dropped() != lastSeq {
		t.Fatalf("tiny subscriber received %d + dropped %d != published %d", received, tiny.Dropped(), lastSeq)
	}
}

// migrationWorkload derives a small skewed instance from a fuzz seed.
func migrationWorkload(t *testing.T, seed uint64) *model.Instance {
	t.Helper()
	cfg := workload.Default().Scale(0.01 + float64(seed%4)*0.004)
	cfg.Seed = seed%100000 + 1
	s, err := workload.NewScenario(workload.ScenarioHotspot, cfg)
	if err != nil {
		t.Skip("degenerate scenario draw")
	}
	in, err := s.Generate()
	if err != nil {
		t.Skip("degenerate generator draw")
	}
	return in
}

// TestMigrationEquivalenceSeeds runs the fuzz corpus deterministically in
// the regular test suite.
func TestMigrationEquivalenceSeeds(t *testing.T) {
	for _, tc := range []struct {
		name        string
		seed        uint64
		shards      int
		stride, sel int
	}{
		{name: "laf-4shard", seed: 8, shards: 4, stride: 2, sel: 1},
		{name: "aam-8shard", seed: 21, shards: 8, stride: 3, sel: 5},
		{name: "laf-3shard", seed: 1234, shards: 3, stride: 1, sel: 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			factory := lafFactory
			if tc.seed%2 == 1 {
				factory = aamFactory
			}
			checkMigrationEquivalence(t, migrationWorkload(t, tc.seed), factory, tc.shards, tc.stride, tc.sel)
		})
	}
}

// FuzzMigrationEquivalence exposes the migration net to go fuzz: arbitrary
// workload seeds, shard counts and migration schedules must never violate
// the conservation laws above.
func FuzzMigrationEquivalence(f *testing.F) {
	f.Add(uint64(7), uint8(4), uint8(2), uint8(1))
	f.Add(uint64(21), uint8(8), uint8(3), uint8(5))
	f.Add(uint64(1234), uint8(3), uint8(1), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, rawShards, rawStride, rawSel uint8) {
		shards := int(rawShards)%7 + 2
		stride := int(rawStride)%4 + 1
		sel := int(rawSel)
		factory := lafFactory
		if seed%2 == 1 {
			factory = aamFactory
		}
		checkMigrationEquivalence(t, migrationWorkload(t, seed), factory, shards, stride, sel)
	})
}
