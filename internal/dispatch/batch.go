package dispatch

import (
	"fmt"
	"slices"

	"ltc/internal/events"
	"ltc/internal/model"
)

// CheckInBatch ingests a batch of workers with the sequential semantics of
// a CheckIn loop at a fraction of the per-call overhead: consecutive
// workers routing to the same shard form one run, ingested under a single
// shard-mutex acquisition and a single pinned candidate-index snapshot
// (one query-scratch buffer for the whole run). Workers keep their input
// order, so a sequential caller gets bit-identical assignments, latency and
// task statuses to feeding the same stream through CheckIn one by one —
// the golden-trace suite pins this equivalence against Session.
//
// out[i] is ws[i]'s Receipt, exactly as per-call CheckIn would have
// returned it. When the platform completes mid-batch, ingestion stops: out
// is truncated to the ingested prefix (the worker completing the last task
// is its final entry), ErrDone is returned, and the remaining workers are
// not observed at all — they tick no arrival clock and count no arrival,
// so they can be re-presented after a PostTask revives the platform. A
// platform already complete at call time returns an empty out and ErrDone.
// A worker with a non-positive index fails the whole batch upfront with
// ErrBadWorkerIndex; an empty batch is a no-op. Safe for concurrent use
// alongside every other dispatcher method.
func (d *Dispatcher) CheckInBatch(ws []model.Worker) ([]Receipt, error) {
	return d.CheckInBatchInto(ws, nil)
}

// CheckInBatchInto is CheckInBatch appending into a caller-provided receipt
// slice: the batch's receipts are appended to dst and the extended slice is
// returned (dst may be nil). A caller recycling dst[:0] across batches pays
// no per-batch receipt allocation once the slice has grown to the working
// batch size — the allocation-free counterpart of CheckInBatch for
// sustained ingestion loops. Error semantics are identical to CheckInBatch;
// on ErrDone the returned slice holds dst plus the ingested prefix.
func (d *Dispatcher) CheckInBatchInto(ws []model.Worker, dst []Receipt) ([]Receipt, error) {
	for i, w := range ws {
		if w.Index < 1 {
			return dst, fmt.Errorf("%w: got %d at batch position %d", ErrBadWorkerIndex, w.Index, i)
		}
	}
	dst = slices.Grow(dst, len(ws))
	// Each worker is located exactly once: the shard that ends a run is
	// carried over as the next run's head, which keeps the rebalancer's
	// per-tile arrival counts exact and saves a lookup at every boundary.
	si := -1
	for i := 0; i < len(ws); {
		if d.Done() {
			return dst, ErrDone
		}
		if si < 0 {
			si = d.locate(ws[i].Loc)
		}
		j, nextSi := i+1, -1
		for j < len(ws) {
			if sj := d.locate(ws[j].Loc); sj != si {
				nextSi = sj
				break
			}
			j++
		}
		base := len(dst)
		dst = dst[:base+j-i]
		consumed := d.ingestRun(si, ws[i:j], true, dst[base:])
		dst = dst[:base+consumed]
		if consumed < j-i {
			return dst, ErrDone
		}
		i, si = j, nextSi
	}
	return dst, nil
}

// ingestRun offers a same-shard run of workers to shard si under one mutex
// acquisition and one pinned candidate snapshot — the batched inner loop
// shared by CheckInBatch and the async drainers. CheckIn is semantically a
// run of length one but keeps its own allocation-lean body;
// TestCheckInBatchMatchesSequential pins the two implementations together.
//
// truncate selects the completion semantics: when true the run stops before
// the first worker that would arrive on a completed platform (the
// CheckInBatch contract — unconsumed workers are not observed at all);
// when false such workers are consumed as bounced arrivals, exactly like
// check-ins racing a momentarily-complete platform (the async contract).
//
// out, when non-nil, must have len(run) slots; out[i] receives run[i]'s
// Receipt, whose Assignments slice is carved from the shard arena and
// caller-owned. The async drainers pass a nil out and skip the grant
// carving entirely. Global state other threads read mid-run — the arrival
// clock anchoring PostTask indices and the live-task countdown behind Done
// — is updated per worker, so a long run never publishes stale values; pure
// outputs (latency watermarks, the arrival total) fold in once per run, and
// lifecycle events collected during the run are published after the shard
// mutex is released.
//
//ltc:noalloc
func (d *Dispatcher) ingestRun(si int, run []model.Worker, truncate bool, out []Receipt) (consumed int) {
	s := d.shards[si]
	runMaxUsed, runMaxRel := 0, 0
	// completions collects the run's TaskCompleted events while the shard
	// is locked; publication waits for the unlock. Collected whether or not
	// anyone subscribes (a task completes once ever, so the appends are
	// negligible): gating collection on a start-of-run Active() snapshot
	// would let a subscriber attaching mid-run observe the run's
	// PlatformDone without its completions — a silent exactly-once
	// violation Publish's own per-event gate cannot cause.
	var completions []events.Event
	platformDone := false
	ldLock("shard", si)
	s.mu.Lock()
	s.eng.BeginBatch()
	for i := range run {
		if truncate && d.Done() {
			break
		}
		w := run[i]
		consumed++
		s.routed++
		atomicMax(&d.maxSeen, int64(w.Index))
		if s.eng.Done() {
			// The shard has no open tasks: the worker is consumed as a
			// bounced arrival (CheckIn's empty receipt).
			if out != nil {
				out[i] = Receipt{Worker: w.Index, Shard: si, Done: d.Done()}
			}
			continue
		}
		s.offered++
		outcomes := s.eng.Arrive(w)
		var grants []TaskGrant
		if out != nil && len(outcomes) > 0 {
			grants = s.arena.carve(len(outcomes))
		}
		completedDelta := 0
		for k, oc := range outcomes {
			gid := s.sub.Global[oc.Task]
			if oc.Completed {
				completedDelta++
				completions = append(completions, events.Event{Kind: events.TaskCompleted, Task: gid, Worker: w.Index}) //ltclint:ignore noalloc the fresh slice is load-bearing — publication happens after the unlock, when the next run may already hold the shard mutex, so a reused shard-owned buffer would race; a task completes once ever, so the appends are negligible
			}
			if rel := w.Index - s.eng.TaskPostIndex(oc.Task); rel > runMaxRel {
				runMaxRel = rel
			}
			if grants != nil {
				grants[k] = TaskGrant{Task: gid, Credit: oc.Credit, Completed: oc.Completed}
			}
		}
		if len(outcomes) > 0 {
			s.workers = append(s.workers, w)
			if w.Index > runMaxUsed {
				runMaxUsed = w.Index
			}
		}
		if completedDelta > 0 && d.remaining.Add(int64(-completedDelta)) == 0 {
			platformDone = true
		}
		if out != nil {
			out[i] = Receipt{Worker: w.Index, Shard: si, Assignments: grants, Done: d.Done()}
		}
	}
	s.eng.EndBatch()
	if runMaxUsed > 0 {
		atomicMax(&d.maxUsed, int64(runMaxUsed))
		atomicMax(&d.maxRel, int64(runMaxRel))
	}
	ldUnlock("shard", si)
	s.mu.Unlock()
	d.addArrived(int64(consumed))
	for _, e := range completions {
		d.publish(e)
	}
	if platformDone {
		d.publish(events.Event{Kind: events.PlatformDone, Task: -1})
	}
	return consumed
}
