package core

import (
	"errors"
	"testing"
	"testing/quick"

	"ltc/internal/model"
	"ltc/internal/stats"
)

// TestQuickAlgorithmInvariants uses testing/quick to fuzz instance shapes
// and asserts, for every algorithm, the full arrangement contract:
// validity (capacity/eligibility/no-duplicates), completion when the run
// reports completion, and latency bounded by the workers consumed.
func TestQuickAlgorithmInvariants(t *testing.T) {
	prop := func(seed uint32, tRaw, wRaw, kRaw, eRaw uint8) bool {
		rng := stats.NewRand(uint64(seed))
		nTasks := 2 + int(tRaw)%5        // 2..6
		nWorkers := 30 + int(wRaw)%50    // 30..79
		k := 1 + int(kRaw)%4             // 1..4
		eps := 0.1 + float64(eRaw%13)/60 // 0.1..0.3
		in := randomInstance(rng, nTasks, nWorkers, k, eps)
		ci := model.NewCandidateIndex(in)

		check := func(res *Result, err error) bool {
			if err != nil {
				return false
			}
			if !res.Completed {
				return false
			}
			if res.Latency <= 0 || res.Latency > res.WorkersSeen {
				return false
			}
			return res.Arrangement.Validate(in, true) == nil
		}

		if !check(RunOnline(in, ci, func(in *model.Instance, ci *model.CandidateIndex) Online {
			return NewLAF(in, ci)
		})) {
			return false
		}
		if !check(RunOnline(in, ci, func(in *model.Instance, ci *model.CandidateIndex) Online {
			return NewAAM(in, ci)
		})) {
			return false
		}
		// Random is not guaranteed to finish: randomInstance only certifies
		// the instance completable by LAF, and random draws can waste enough
		// capacity to exhaust the stream. Require a valid arrangement and
		// consistent accounting, but tolerate ErrIncomplete.
		resR, errR := RunOnline(in, ci, func(in *model.Instance, ci *model.CandidateIndex) Online {
			return NewRandom(in, ci, uint64(seed)+1)
		})
		if errR != nil && !errors.Is(errR, ErrIncomplete) {
			return false
		}
		if resR.Latency < 0 || resR.Latency > resR.WorkersSeen {
			return false
		}
		if resR.Arrangement.Validate(in, resR.Completed) != nil {
			return false
		}
		if !check(RunOffline(in, ci, &MCFLTC{})) {
			return false
		}
		return check(RunOffline(in, ci, BaseOff{}))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOnlinePrefixProperty: an online algorithm's assignments to the
// first i workers must not depend on the workers after i — verified by
// truncating the stream and comparing prefixes.
func TestQuickOnlinePrefixProperty(t *testing.T) {
	prop := func(seed uint32, cut uint8) bool {
		rng := stats.NewRand(uint64(seed))
		in := randomInstance(rng, 4, 60, 2, 0.2)
		ci := model.NewCandidateIndex(in)

		full := NewAAM(in, ci)
		var fullPairs []model.Assignment
		for _, w := range in.Workers {
			if full.Done() {
				break
			}
			for _, tid := range full.Arrive(w) {
				fullPairs = append(fullPairs, model.Assignment{Worker: w.Index, Task: tid})
			}
		}

		cutAt := 1 + int(cut)%30
		trunc := *in
		trunc.Workers = in.Workers[:cutAt]
		tci := model.NewCandidateIndex(&trunc)
		part := NewAAM(&trunc, tci)
		var partPairs []model.Assignment
		for _, w := range trunc.Workers {
			if part.Done() {
				break
			}
			for _, tid := range part.Arrive(w) {
				partPairs = append(partPairs, model.Assignment{Worker: w.Index, Task: tid})
			}
		}

		// partPairs must be a prefix of fullPairs.
		if len(partPairs) > len(fullPairs) {
			return false
		}
		for i := range partPairs {
			if partPairs[i] != fullPairs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
