// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer holds a name, a doc
// string and a Run function; a Pass hands the Run function one type-checked
// package plus a Report sink. The repo is intentionally zero-dependency, so
// ltclint carries this small framework instead of importing x/tools. The API
// mirrors the upstream shape closely enough that porting an analyzer to the
// real framework is mechanical.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //ltclint:ignore waivers. It must be a valid Go identifier.
	Name string

	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string

	// Run applies the analyzer to a single package.
	Run func(*Pass) error
}

// Pass provides one analyzer run with a single type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Sizes     types.Sizes

	// Report delivers a diagnostic. The driver owns waiver filtering, so
	// analyzers report unconditionally.
	Report func(Diagnostic)

	// Facts is the run-wide cross-package summary store. Packages are
	// analyzed in dependency order, so facts exported while analyzing a
	// dependency are visible when its importers are analyzed.
	Facts *FactStore
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding. Category is stamped by the driver with the
// analyzer name.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}

// FactStore is a run-wide map of serializable per-object summaries, keyed by
// a stable object path (see lint.ObjectKey). It stands in for go/analysis
// facts: values must round-trip through JSON so the vettool driver can
// persist them between per-package invocations.
type FactStore struct {
	m map[string]any
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore { return &FactStore{m: make(map[string]any)} }

// Set records a fact for key, replacing any previous value.
func (s *FactStore) Set(key string, v any) { s.m[key] = v }

// Get returns the fact for key, if any.
func (s *FactStore) Get(key string) (any, bool) {
	v, ok := s.m[key]
	return v, ok
}

// All returns the underlying map for serialization by drivers.
func (s *FactStore) All() map[string]any { return s.m }
