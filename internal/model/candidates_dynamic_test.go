package model

import (
	"math/rand/v2"
	"sync"
	"testing"

	"ltc/internal/geo"
)

// bruteCandidates is the oracle: scan every live task, predict, filter by
// MinAcc — exactly what CandidateIndex promises, minus the grid.
func bruteCandidates(in *Instance, tasks []Task, live []bool, w Worker) []Candidate {
	var out []Candidate
	for id, t := range tasks {
		if !live[id] {
			continue
		}
		if acc, ok := in.Eligible(w, t); ok {
			out = append(out, Candidate{Task: t.ID, Acc: acc, AccStar: AccStar(acc)})
		}
	}
	return out
}

// checkAgainstBrute compares the index's answer for every probe worker with
// the brute-force scan, element by element (order and float bits included).
func checkAgainstBrute(t *testing.T, ci *CandidateIndex, in *Instance, tasks []Task, live []bool, probes []Worker) {
	t.Helper()
	var buf []Candidate
	for _, w := range probes {
		buf = ci.Candidates(w, buf[:0])
		want := bruteCandidates(in, tasks, live, w)
		if len(buf) != len(want) {
			t.Fatalf("worker %d: %d candidates, brute force %d", w.Index, len(buf), len(want))
		}
		for i := range buf {
			if buf[i] != want[i] {
				t.Fatalf("worker %d candidate %d: got %+v, want %+v", w.Index, i, buf[i], want[i])
			}
		}
	}
}

// runLifecycleScript drives one deterministic interleaving of insert/remove
// against the index and the shadow task list, probing after every step.
// width is the spatial extent; some posted tasks deliberately land outside
// it (the clamped-border-cell path).
func runLifecycleScript(t *testing.T, in *Instance, seed uint64, steps int, width float64) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
	ci := NewCandidateIndex(in)
	tasks := append([]Task(nil), in.Tasks...)
	live := make([]bool, len(tasks))
	for i := range live {
		live[i] = true
	}
	probes := make([]Worker, 12)
	for i := range probes {
		probes[i] = Worker{
			Index: i + 1,
			Loc:   geo.Point{X: rng.Float64()*width*1.4 - 0.2*width, Y: rng.Float64()*width*1.4 - 0.2*width},
			Acc:   0.7 + rng.Float64()*0.3,
		}
	}

	for step := 0; step < steps; step++ {
		switch op := rng.IntN(3); {
		case op == 0 || ci.NumLive() == 0: // insert
			loc := geo.Point{X: rng.Float64() * width, Y: rng.Float64() * width}
			if rng.IntN(8) == 0 { // outside the initial bounding rect
				loc = geo.Point{X: width + rng.Float64()*width, Y: -rng.Float64() * width}
			}
			nt := Task{ID: TaskID(len(tasks)), Loc: loc}
			if err := ci.Insert(nt); err != nil {
				t.Fatalf("step %d: Insert: %v", step, err)
			}
			tasks = append(tasks, nt)
			live = append(live, true)
		case op == 1: // remove a random live task
			id := TaskID(rng.IntN(len(tasks)))
			if !live[id] {
				if err := ci.Remove(id); err == nil {
					t.Fatalf("step %d: double Remove(%d) accepted", step, id)
				}
				continue
			}
			if err := ci.Remove(id); err != nil {
				t.Fatalf("step %d: Remove(%d): %v", step, id, err)
			}
			live[id] = false
		default: // probe-only step
		}
		if ci.NumTasks() != len(tasks) {
			t.Fatalf("step %d: NumTasks %d, want %d", step, ci.NumTasks(), len(tasks))
		}
		checkAgainstBrute(t, ci, in, tasks, live, probes)
	}
}

// TestCandidateIndexLifecycleProperty: under bounded random interleavings
// of insert/remove, queries always equal a brute-force distance scan —
// for the grid path (SigmoidDistance bounds the radius) and the unbounded
// path (HistoricalOnly has no radius).
func TestCandidateIndexLifecycleProperty(t *testing.T) {
	const width = 120.0
	for seed := uint64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewPCG(seed, 99))
		nTasks := 1 + rng.IntN(40)
		gridIn := &Instance{Epsilon: 0.1, K: 4, Model: SigmoidDistance{DMax: 30}, MinAcc: 0.5}
		flatIn := &Instance{Epsilon: 0.1, K: 4, Model: HistoricalOnly{}, MinAcc: 0.8}
		for i := 0; i < nTasks; i++ {
			loc := geo.Point{X: rng.Float64() * width, Y: rng.Float64() * width}
			gridIn.Tasks = append(gridIn.Tasks, Task{ID: TaskID(i), Loc: loc})
			flatIn.Tasks = append(flatIn.Tasks, Task{ID: TaskID(i), Loc: loc})
		}
		runLifecycleScript(t, gridIn, seed*31+1, 60, width)
		runLifecycleScript(t, flatIn, seed*31+2, 60, width)
	}
}

// TestCandidateIndexLifecycleConcurrent: queries race Insert/Remove under
// -race. Readers can't assert exact answers mid-mutation, but every answer
// must be internally consistent: candidates strictly ascending, all
// eligible, no candidate from before the dense ID frontier the snapshot
// knows. A final quiescent check must match brute force exactly.
func TestCandidateIndexLifecycleConcurrent(t *testing.T) {
	const width = 100.0
	rng := rand.New(rand.NewPCG(17, 23))
	in := &Instance{Epsilon: 0.1, K: 4, Model: SigmoidDistance{DMax: 30}, MinAcc: 0.5}
	for i := 0; i < 50; i++ {
		in.Tasks = append(in.Tasks, Task{ID: TaskID(i), Loc: geo.Point{X: rng.Float64() * width, Y: rng.Float64() * width}})
	}
	for w := 1; w <= 30; w++ {
		in.Workers = append(in.Workers, Worker{
			Index: w,
			Loc:   geo.Point{X: rng.Float64() * width, Y: rng.Float64() * width},
			Acc:   0.8 + rng.Float64()*0.2,
		})
	}
	ci := NewCandidateIndex(in)

	var mu sync.Mutex // guards the shadow state (writer-side only)
	tasks := append([]Task(nil), in.Tasks...)
	live := make([]bool, len(tasks))
	for i := range live {
		live[i] = true
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			qrng := rand.New(rand.NewPCG(uint64(g), 7))
			var buf []Candidate
			for i := 0; i < 4000; i++ {
				w := Worker{Index: 1, Loc: geo.Point{X: qrng.Float64() * width, Y: qrng.Float64() * width}, Acc: 0.9}
				buf = ci.Candidates(w, buf[:0])
				for j, c := range buf {
					if j > 0 && buf[j-1].Task >= c.Task {
						t.Errorf("candidates not strictly ascending: %d then %d", buf[j-1].Task, c.Task)
						return
					}
					if c.Acc < in.MinAcc {
						t.Errorf("ineligible candidate %d (acc %v)", c.Task, c.Acc)
						return
					}
				}
			}
		}(g)
	}
	initialTasks := len(in.Tasks)
	wg.Add(1)
	go func() { // bulk helpers: each scan sees one snapshot, so task-indexed
		// outputs stay in bounds mid-churn (this used to panic). Separate
		// calls may see different snapshots, so only per-call consistency
		// and the grow-only dense space are assertable.
		defer wg.Done()
		for i := 0; i < 300; i++ {
			if lists := ci.EligibleWorkerLists(); len(lists) < initialTasks {
				t.Errorf("EligibleWorkerLists shrank below the initial %d tasks: %d", initialTasks, len(lists))
				return
			}
			if credit := ci.MaxPossibleCredit(); len(credit) < initialTasks {
				t.Errorf("MaxPossibleCredit shrank below the initial %d tasks: %d", initialTasks, len(credit))
				return
			}
			_ = ci.CheckFeasible() // may legitimately flag scarce tasks; must not panic
		}
	}()
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		defer close(stop)
		wrng := rand.New(rand.NewPCG(5, 11))
		for i := 0; i < 400; i++ {
			mu.Lock()
			if wrng.IntN(2) == 0 {
				nt := Task{ID: TaskID(len(tasks)), Loc: geo.Point{X: wrng.Float64() * width, Y: wrng.Float64() * width}}
				if err := ci.Insert(nt); err != nil {
					t.Errorf("Insert: %v", err)
					mu.Unlock()
					return
				}
				tasks = append(tasks, nt)
				live = append(live, true)
			} else {
				id := TaskID(wrng.IntN(len(tasks)))
				if live[id] {
					if err := ci.Remove(id); err != nil {
						t.Errorf("Remove: %v", err)
						mu.Unlock()
						return
					}
					live[id] = false
				}
			}
			mu.Unlock()
		}
	}()
	wg.Wait()
	<-stop

	probes := make([]Worker, 20)
	prng := rand.New(rand.NewPCG(3, 1))
	for i := range probes {
		probes[i] = Worker{Index: i + 1, Loc: geo.Point{X: prng.Float64() * width, Y: prng.Float64() * width}, Acc: 0.85}
	}
	checkAgainstBrute(t, ci, in, tasks, live, probes)
}

// FuzzCandidateIndexLifecycle feeds arbitrary op scripts (bytes → insert /
// remove / probe) to the index and cross-checks against brute force. The
// bounded corpus runs under plain `go test`; run `go test -fuzz
// FuzzCandidateIndexLifecycle ./internal/model` for an open-ended hunt.
func FuzzCandidateIndexLifecycle(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5}, uint64(1))
	f.Add([]byte{10, 200, 30, 40, 250, 60, 70, 80}, uint64(42))
	f.Add([]byte{255, 0, 255, 0, 255, 0}, uint64(7))
	f.Fuzz(func(t *testing.T, script []byte, seed uint64) {
		if len(script) > 256 {
			script = script[:256]
		}
		const width = 80.0
		rng := rand.New(rand.NewPCG(seed, seed^0x5555))
		in := &Instance{Epsilon: 0.1, K: 4, Model: SigmoidDistance{DMax: 30}, MinAcc: 0.5}
		n := 1 + int(seed%16)
		for i := 0; i < n; i++ {
			in.Tasks = append(in.Tasks, Task{ID: TaskID(i), Loc: geo.Point{X: rng.Float64() * width, Y: rng.Float64() * width}})
		}
		ci := NewCandidateIndex(in)
		tasks := append([]Task(nil), in.Tasks...)
		live := make([]bool, len(tasks))
		for i := range live {
			live[i] = true
		}
		probe := Worker{Index: 1, Loc: geo.Point{X: width / 2, Y: width / 2}, Acc: 0.9}
		for _, b := range script {
			switch b % 3 {
			case 0:
				nt := Task{ID: TaskID(len(tasks)), Loc: geo.Point{
					X: float64(b)*width/128 - width/4, Y: rng.Float64() * width}}
				if err := ci.Insert(nt); err != nil {
					t.Fatalf("Insert: %v", err)
				}
				tasks = append(tasks, nt)
				live = append(live, true)
			case 1:
				id := TaskID(int(b) % len(tasks))
				if live[id] {
					if err := ci.Remove(id); err != nil {
						t.Fatalf("Remove: %v", err)
					}
					live[id] = false
				}
			default:
				probe.Loc = geo.Point{X: float64(b) * width / 255, Y: float64(255-b) * width / 255}
			}
			checkAgainstBrute(t, ci, in, tasks, live, []Worker{probe})
		}
	})
}
