// Package stats provides the small statistical toolkit the reproduction
// needs: deterministic seeded random sources, the accuracy distributions of
// Table IV (truncated normal, mean-centred uniform), and summary statistics
// used when aggregating repeated experiment runs.
package stats

import (
	"errors"
	"math"
	"math/rand/v2"
	"sort"
)

// NewRand returns a deterministic PCG-backed random source for the given
// seed. All experiment code derives randomness from this constructor so runs
// are reproducible.
func NewRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// SplitSeed derives a stream-specific seed from a base seed, so independent
// generators (locations, accuracies, arrival order, ...) never share a
// stream. The mix is SplitMix64's finalizer.
func SplitSeed(base uint64, stream uint64) uint64 {
	z := base + stream*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// TruncatedNormal samples a normal distribution with the given mean and
// stddev, rejected until the sample falls inside [lo, hi]. It matches the
// paper's "Normal: µ, σ=0.05" historical-accuracy setting, where accuracies
// are necessarily bounded (the platform discards spam workers below 0.66 and
// accuracy cannot exceed 1).
func TruncatedNormal(rng *rand.Rand, mean, stddev, lo, hi float64) float64 {
	if lo >= hi {
		panic("stats: TruncatedNormal requires lo < hi")
	}
	for i := 0; i < 1024; i++ {
		x := rng.NormFloat64()*stddev + mean
		if x >= lo && x <= hi {
			return x
		}
	}
	// Pathological parameters (mean far outside [lo,hi]); clamp rather than
	// loop forever. Not reachable with the paper's settings.
	return math.Min(hi, math.Max(lo, mean))
}

// UniformMean samples uniformly from an interval centred at mean with the
// given half-width, clipped to [lo, hi]. The paper's "Uniform: mean" setting
// leaves the width unspecified; we use ±2σ of the normal setting (0.10) so
// the two distributions have comparable spread.
func UniformMean(rng *rand.Rand, mean, halfWidth, lo, hi float64) float64 {
	a := math.Max(lo, mean-halfWidth)
	b := math.Min(hi, mean+halfWidth)
	if b <= a {
		return math.Min(hi, math.Max(lo, mean))
	}
	return a + rng.Float64()*(b-a)
}

// Zipf is a deterministic sampler over the ranks 0..n-1 with probability
// proportional to 1/(rank+1)^s — the discrete power-law the skewed workload
// scenarios use to concentrate load onto a few spatial tiles. math/rand/v2
// dropped the v1 rand.Zipf type, so the reproduction carries its own
// (inverse-CDF over the precomputed cumulative weights, O(log n) per draw).
type Zipf struct {
	cdf []float64
}

// NewZipf builds a sampler over n ranks with exponent s. It panics for
// n < 1 or s < 0 (s = 0 degenerates to the uniform distribution, which is
// allowed and occasionally useful in tests).
func NewZipf(n int, s float64) *Zipf {
	if n < 1 {
		panic("stats: NewZipf requires n >= 1")
	}
	if s < 0 {
		panic("stats: NewZipf requires s >= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &Zipf{cdf: cdf}
}

// Sample draws one rank in [0, n): rank 0 is the most likely.
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// P returns the probability of the given rank.
func (z *Zipf) P(rank int) float64 {
	if rank == 0 {
		return z.cdf[0]
	}
	return z.cdf[rank] - z.cdf[rank-1]
}

// ErrEmpty is returned by summary constructors on empty input.
var ErrEmpty = errors.New("stats: empty sample")

// Summary holds the aggregate statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes summary statistics over xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s, nil
}

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns an error on empty input.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p <= 0 {
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return sorted[0], nil
	}
	if p >= 100 {
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return sorted[len(sorted)-1], nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}
