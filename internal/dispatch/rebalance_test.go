package dispatch

import (
	"errors"
	"math"
	"testing"
	"time"

	"ltc/internal/core"
	"ltc/internal/events"
	"ltc/internal/geo"
	"ltc/internal/model"
)

// rebalanced builds a balanced dispatcher with the given shard count and,
// optionally, the rebalancer enabled.
func rebalanced(t testing.TB, in *model.Instance, shards int, ro *RebalanceOptions) *Dispatcher {
	t.Helper()
	d, err := New(in, shards, lafFactory, Options{Balanced: true, Rebalance: ro})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// hotOwnerTile returns an owner tile that currently routes to a shard with
// at least one task, plus its shard.
func hotOwnerTile(t *testing.T, d *Dispatcher) (tile, from int) {
	t.Helper()
	owners := d.part.OwnerTiles()
	if len(owners) == 0 {
		t.Fatal("balanced partition has no owner tiles")
	}
	return owners[0], d.part.TileShard(owners[0])
}

// TestMigrateTilePreservesState: a mid-stream migration moves routing and
// solver state without perturbing any observable task state — credits,
// statuses, progress and latency are identical before and after, and the
// platform keeps completing tasks at the new owner.
func TestMigrateTilePreservesState(t *testing.T) {
	in := hotspotInstance(t, 0.05)
	d := rebalanced(t, in, 8, nil)
	half := in.Workers[:len(in.Workers)/2]
	if _, err := d.CheckInBatch(half); err != nil && !errors.Is(err, ErrDone) {
		t.Fatal(err)
	}

	sub := d.Subscribe(4096)
	defer sub.Close()
	tile, from := hotOwnerTile(t, d)
	to := (from + 1) % d.NumShards()

	creditsBefore := d.Credits(nil)
	statusesBefore := d.TaskStatuses()
	resolvedBefore, totalBefore := d.Progress()
	latBefore, relBefore := d.Latency(), d.RelativeLatency()

	if err := d.MigrateTile(tile, to); err != nil {
		t.Fatal(err)
	}

	if got := d.part.TileShard(tile); got != to {
		t.Fatalf("tile %d routes to %d after migration, want %d", tile, got, to)
	}
	creditsAfter := d.Credits(nil)
	for i := range creditsBefore {
		if creditsBefore[i] != creditsAfter[i] {
			t.Fatalf("task %d credit changed across migration: %v -> %v", i, creditsBefore[i], creditsAfter[i])
		}
	}
	statusesAfter := d.TaskStatuses()
	for i := range statusesBefore {
		if statusesBefore[i] != statusesAfter[i] {
			t.Fatalf("task %d status changed across migration: %+v -> %+v", i, statusesBefore[i], statusesAfter[i])
		}
	}
	if r, tot := d.Progress(); r != resolvedBefore || tot != totalBefore {
		t.Fatalf("progress changed across migration: %d/%d -> %d/%d", resolvedBefore, totalBefore, r, tot)
	}
	if d.Latency() != latBefore || d.RelativeLatency() != relBefore {
		t.Fatal("latency changed across migration")
	}
	if got := d.Migrations(); got != 1 {
		t.Fatalf("Migrations() = %d, want 1", got)
	}

	// The registry now names the target shard for every task on the tile.
	moved := 0
	for gid, task := range in.Tasks {
		if d.part.OwnerTile(task.Loc) != tile {
			continue
		}
		moved++
		if rec := d.records[gid]; int(rec.shard) != to {
			t.Fatalf("task %d still registered on shard %d, want %d", gid, rec.shard, to)
		}
	}
	if moved == 0 {
		t.Fatal("owner tile holds no tasks")
	}

	stats := d.ShardStats()
	if stats[from].MigratedOut != 1 || stats[to].MigratedIn != 1 {
		t.Fatalf("migration counters: out[%d]=%d in[%d]=%d", from, stats[from].MigratedOut, to, stats[to].MigratedIn)
	}
	for i, s := range stats {
		if i != from && s.MigratedOut != 0 {
			t.Fatalf("shard %d MigratedOut = %d", i, s.MigratedOut)
		}
		if i != to && s.MigratedIn != 0 {
			t.Fatalf("shard %d MigratedIn = %d", i, s.MigratedIn)
		}
	}

	// Exactly one TileMigrated event, carrying the migration triple.
	sub.Close()
	migs := 0
	for e := range sub.Events() {
		if e.Kind != events.TileMigrated {
			continue
		}
		migs++
		if e.Tile != tile || e.FromShard != from || e.ToShard != to || e.Task != -1 {
			t.Fatalf("TileMigrated event %+v, want tile %d %d->%d", e, tile, from, to)
		}
	}
	if migs != 1 {
		t.Fatalf("%d TileMigrated events, want 1", migs)
	}

	// The platform stays live: the rest of the stream lands (workers on the
	// migrated tile now route to the target) and progress only grows.
	if _, err := d.CheckInBatch(in.Workers[len(half):]); err != nil && !errors.Is(err, ErrDone) {
		t.Fatal(err)
	}
	resolvedFinal, _ := d.Progress()
	if resolvedFinal < resolvedBefore {
		t.Fatalf("progress shrank after migration: %d -> %d", resolvedBefore, resolvedFinal)
	}
	assertCreditsMatchArrangement(t, d)
}

// assertCreditsMatchArrangement cross-checks the two credit views — the
// per-shard engine accumulators (Credits, registry-deduplicated) and the
// merged arrangement rebuild — within float-summation noise.
func assertCreditsMatchArrangement(t *testing.T, d *Dispatcher) {
	t.Helper()
	credits := d.Credits(nil)
	merged := d.Arrangement().Accumulated
	if len(credits) != len(merged) {
		t.Fatalf("credit views disagree on task count: %d vs %d", len(credits), len(merged))
	}
	for i := range credits {
		if math.Abs(credits[i]-merged[i]) > 1e-9 {
			t.Fatalf("task %d credit: engines %v, merged arrangement %v", i, credits[i], merged[i])
		}
	}
}

// TestMigrateTileRoundTripSnapshot: migrating a tile away and straight back
// (no traffic in between) restores every observable — the evict/adopt pairs
// are lossless in both directions.
func TestMigrateTileRoundTripSnapshot(t *testing.T) {
	in := hotspotInstance(t, 0.05)
	d := rebalanced(t, in, 8, nil)
	if _, err := d.CheckInBatch(in.Workers[:len(in.Workers)/2]); err != nil && !errors.Is(err, ErrDone) {
		t.Fatal(err)
	}
	tile, from := hotOwnerTile(t, d)
	to := (from + 1) % d.NumShards()

	creditsBefore := d.Credits(nil)
	statusesBefore := d.TaskStatuses()
	if err := d.MigrateTile(tile, to); err != nil {
		t.Fatal(err)
	}
	if err := d.MigrateTile(tile, from); err != nil {
		t.Fatal(err)
	}
	if got := d.part.TileShard(tile); got != from {
		t.Fatalf("tile %d at shard %d after round trip, want %d", tile, got, from)
	}
	creditsAfter := d.Credits(nil)
	for i := range creditsBefore {
		if creditsBefore[i] != creditsAfter[i] {
			t.Fatalf("task %d credit changed across round trip: %v -> %v", i, creditsBefore[i], creditsAfter[i])
		}
	}
	statusesAfter := d.TaskStatuses()
	for i := range statusesBefore {
		if statusesBefore[i] != statusesAfter[i] {
			t.Fatalf("task %d status changed across round trip: %+v -> %+v", i, statusesBefore[i], statusesAfter[i])
		}
	}
	if got := d.Migrations(); got != 2 {
		t.Fatalf("Migrations() = %d, want 2", got)
	}
	// The platform keeps working on the restored layout.
	if _, err := d.CheckInBatch(in.Workers[len(in.Workers)/2:]); err != nil && !errors.Is(err, ErrDone) {
		t.Fatal(err)
	}
	assertCreditsMatchArrangement(t, d)
}

// TestImbalanceWindowRebasesOnMigration is the load-accounting regression:
// with lifetime accounts, a shard that handed its hot tiles away stayed
// "busiest" forever on traffic it no longer serves. The window must restart
// at a migration so the metric tracks the live layout.
func TestImbalanceWindowRebasesOnMigration(t *testing.T) {
	in := hotspotInstance(t, 0.05)
	d := rebalanced(t, in, 4, nil)

	// One known worker per shard, for controlled routing.
	perShard := make([]model.Worker, d.NumShards())
	found := 0
	for _, w := range in.Workers {
		si := d.part.Locate(w.Loc)
		if perShard[si].Index == 0 {
			perShard[si] = w
			found++
			if found == d.NumShards() {
				break
			}
		}
	}
	if found < d.NumShards() {
		t.Skipf("worker pool covers only %d/%d shards", found, d.NumShards())
	}

	// Hammer one shard: lifetime imbalance goes to NumShards().
	hot := perShard[0]
	hotShard := d.part.Locate(hot.Loc)
	for i := 0; i < 200; i++ {
		if _, err := d.CheckIn(hot); err != nil && !errors.Is(err, ErrDone) {
			t.Fatal(err)
		}
	}
	if imb := d.Imbalance(); imb < float64(d.NumShards())-0.01 {
		t.Fatalf("pre-migration imbalance %.2f, want ~%d", imb, d.NumShards())
	}

	// Migrate one of the hot shard's tiles away; the window restarts empty.
	tile := -1
	for _, o := range d.part.OwnerTiles() {
		if d.part.TileShard(o) == hotShard {
			tile = o
			break
		}
	}
	if tile < 0 {
		t.Fatalf("hot shard %d owns no tiles", hotShard)
	}
	if err := d.MigrateTile(tile, (hotShard+1)%d.NumShards()); err != nil {
		t.Fatal(err)
	}
	if imb := d.Imbalance(); imb != 1.0 {
		t.Fatalf("imbalance right after migration = %.2f, want 1.0 (empty window)", imb)
	}

	// Perfectly even traffic after the migration reads as balanced — under
	// the old lifetime accounts the hot shard's 200 historical check-ins
	// would have pinned this near NumShards() forever.
	for round := 0; round < 5; round++ {
		for _, w := range perShard {
			if _, err := d.CheckIn(w); err != nil && !errors.Is(err, ErrDone) {
				t.Fatal(err)
			}
		}
	}
	if imb := d.Imbalance(); imb > 1.6 {
		t.Fatalf("post-migration imbalance %.2f under even traffic, want ~1.0", imb)
	}
}

// TestRebalancerMigratesHotTiles drives skewed traffic at a rebalancing
// dispatcher and waits for the forecaster to move tiles off the hot shard.
func TestRebalancerMigratesHotTiles(t *testing.T) {
	in := hotspotInstance(t, 0.05)
	d := rebalanced(t, in, 4, &RebalanceOptions{Interval: 64, Threshold: 1.0, MaxMoves: 2, Alpha: 1})
	defer d.Close()
	if !d.Rebalancing() {
		t.Fatal("rebalancer not active")
	}

	// Two worker groups on distinct owner tiles of the same shard: the
	// rebalancer can then peel one tile off without just moving the hotspot.
	byTile := make(map[int][]model.Worker)
	tileShard := make(map[int]int)
	for _, w := range in.Workers {
		si, o := d.part.LocateOwner(w.Loc)
		if o >= 0 {
			byTile[o] = append(byTile[o], w)
			tileShard[o] = si
		}
	}
	tileA, tileB := -1, -1
	for a, sa := range tileShard {
		for b, sb := range tileShard {
			if a != b && sa == sb && len(byTile[a]) > 0 && len(byTile[b]) > 0 {
				tileA, tileB = a, b
			}
		}
	}
	if tileA < 0 {
		t.Skip("no two co-sharded owner tiles with workers in the pool")
	}

	feed := func() {
		for i := 0; i < 64; i++ {
			w := byTile[tileA][i%len(byTile[tileA])]
			if i%3 == 0 {
				w = byTile[tileB][i%len(byTile[tileB])]
			}
			if _, err := d.CheckIn(w); err != nil && !errors.Is(err, ErrDone) {
				t.Fatal(err)
			}
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.Migrations() == 0 && time.Now().Before(deadline) {
		feed()
		time.Sleep(time.Millisecond)
	}
	if d.Migrations() == 0 {
		t.Fatal("rebalancer never migrated a tile under sustained skew")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// The layout moved mid-stream; every observable stays coherent.
	assertCreditsMatchArrangement(t, d)
	stats := d.ShardStats()
	in1, out1 := 0, 0
	for _, s := range stats {
		in1 += s.MigratedIn
		out1 += s.MigratedOut
	}
	if in1 != d.Migrations() || out1 != d.Migrations() {
		t.Fatalf("per-shard migration counters (in %d, out %d) don't sum to Migrations() = %d", in1, out1, d.Migrations())
	}
}

// TestRebalanceOptionValidation covers the construction error paths and the
// single-shard degenerate case.
func TestRebalanceOptionValidation(t *testing.T) {
	in := hotspotInstance(t, 0.02)
	if _, err := New(in, 4, lafFactory, Options{Rebalance: &RebalanceOptions{}}); !errors.Is(err, model.ErrNotRebalanceable) {
		t.Fatalf("rebalance without balanced layout: %v, want ErrRebalanceLayout", err)
	}
	for _, bad := range []RebalanceOptions{
		{Interval: -1}, {Threshold: 0.5}, {MaxMoves: -2}, {Alpha: 1.5},
	} {
		if _, err := New(in, 4, lafFactory, Options{Balanced: true, Rebalance: &bad}); !errors.Is(err, ErrBadOptions) {
			t.Fatalf("rebalance options %+v: %v, want ErrBadOptions", bad, err)
		}
	}
	// A solver without migration support is refused up front.
	static := func(in *model.Instance, ci *model.CandidateIndex) core.Online { return &staticSolver{} }
	if _, err := New(in, 4, static, Options{Balanced: true, Rebalance: &RebalanceOptions{}}); !errors.Is(err, core.ErrNoMigration) {
		t.Fatalf("rebalance on static solver: %v, want ErrNoMigration", err)
	}
	// Single shard: nothing to migrate between — rebalancing is inert, not
	// an error, so shard-count sweeps can keep one options struct.
	d, err := New(in, 1, lafFactory, Options{Balanced: true, Rebalance: &RebalanceOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Rebalancing() {
		t.Fatal("single-shard dispatcher claims to rebalance")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMigrateTileRejections covers the explicit-migration error paths.
func TestMigrateTileRejections(t *testing.T) {
	in := hotspotInstance(t, 0.02)
	striped, err := New(in, 4, lafFactory)
	if err != nil {
		t.Fatal(err)
	}
	if err := striped.MigrateTile(0, 1); !errors.Is(err, model.ErrNotRebalanceable) {
		t.Fatalf("striped MigrateTile: %v, want ErrNotRebalanceable", err)
	}

	d := rebalanced(t, in, 4, nil)
	tile, from := hotOwnerTile(t, d)
	if err := d.MigrateTile(tile, d.NumShards()); err == nil {
		t.Fatal("out-of-range target shard accepted")
	}
	if err := d.MigrateTile(tile, -1); err == nil {
		t.Fatal("negative target shard accepted")
	}
	if err := d.MigrateTile(-1, 0); err == nil {
		t.Fatal("negative tile accepted")
	}
	// Migrating onto the current owner is a no-op: no counters, no event.
	sub := d.Subscribe(16)
	if err := d.MigrateTile(tile, from); err != nil {
		t.Fatalf("same-shard migration: %v", err)
	}
	sub.Close()
	if d.Migrations() != 0 {
		t.Fatalf("no-op migration counted: %d", d.Migrations())
	}
	if _, ok := <-sub.Events(); ok {
		t.Fatal("no-op migration published an event")
	}

	// A balanced dispatcher over a solver without migration support refuses
	// explicit migrations too.
	static, err := New(in, 4, func(in *model.Instance, ci *model.CandidateIndex) core.Online { return &staticSolver{} }, Options{Balanced: true})
	if err != nil {
		t.Fatal(err)
	}
	tile2, from2 := hotOwnerTile(t, static)
	if err := static.MigrateTile(tile2, (from2+1)%static.NumShards()); !errors.Is(err, core.ErrNoMigration) {
		t.Fatalf("static-solver MigrateTile: %v, want ErrNoMigration", err)
	}
}

// TestLoadSampleOverride: Options.LoadSample replaces the instance-worker
// stride sample as the balanced layout's load profile. Packing against a
// profile concentrated on one tile must shape the layout differently than
// the full-stream oracle — this is the hook the churn replayer uses to pack
// against the live arrival stream (see ltc.ReplayChurn).
func TestLoadSampleOverride(t *testing.T) {
	in := hotspotInstance(t, 0.05)
	base, err := New(in, 4, lafFactory, Options{Balanced: true})
	if err != nil {
		t.Fatal(err)
	}
	// Profile: every worker location duplicated from the first worker —
	// all forecast load on one tile.
	override := make([]geo.Point, 0, 64)
	for i := 0; i < 64; i++ {
		override = append(override, in.Workers[0].Loc)
	}
	d, err := New(in, 4, lafFactory, Options{Balanced: true, LoadSample: override})
	if err != nil {
		t.Fatal(err)
	}
	// The override must actually reach the partitioner: with all load on a
	// single tile, the tile→shard layout differs from the full-sample pack.
	same := true
	for c := 0; c < d.part.NumTiles(); c++ {
		if d.part.TileShard(c) != base.part.TileShard(c) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("LoadSample override produced the identical layout — not plumbed through")
	}
}

// TestRebalancerHaltWaitsForInflightPass pins the pass/halt handshake:
// a crossing that loses the passing claim skips without folding the
// interval's counters, halt spins until the in-flight pass clears, and
// crossings after halt are no-ops.
func TestRebalancerHaltWaitsForInflightPass(t *testing.T) {
	in := hotspotInstance(t, 0.02)
	d := rebalanced(t, in, 4, &RebalanceOptions{Interval: 64, Threshold: 1.2, MaxMoves: 2, Alpha: 1})
	defer d.Close()
	rb := d.rb
	owners := d.part.OwnerTiles()
	rb.tileLoad[owners[0]].n.Store(7)
	rb.passing.Store(true)
	rb.noteArrived(63, 64) // crossing, but a pass is "already running"
	if got := rb.tileLoad[owners[0]].n.Load(); got != 7 {
		t.Fatalf("skipped pass folded the interval counters: %d", got)
	}
	done := make(chan struct{})
	go func() {
		time.Sleep(2 * time.Millisecond)
		rb.passing.Store(false)
		close(done)
	}()
	rb.halt()
	<-done
	if !rb.stopped.Load() {
		t.Fatal("halt did not freeze the layout")
	}
	rb.noteArrived(127, 128) // post-halt crossing is a no-op
	if got := rb.tileLoad[owners[0]].n.Load(); got != 7 {
		t.Fatalf("post-halt crossing folded the interval counters: %d", got)
	}
}

// TestRebalancePassSurvivesMigrationFailure: when MigrateTile refuses
// mid-pass (here: the layout stops being rebalanceable under the pass's
// feet), the pass bails out without corrupting its accounting instead of
// retrying or panicking — the next interval simply tries again.
func TestRebalancePassSurvivesMigrationFailure(t *testing.T) {
	in := hotspotInstance(t, 0.02)
	d := rebalanced(t, in, 4, &RebalanceOptions{Interval: 64, Threshold: 1.2, MaxMoves: 2, Alpha: 1})
	defer d.Close()
	rb := d.rb
	byShard := map[int][]int{}
	for _, o := range d.part.OwnerTiles() {
		s := d.part.TileShard(o)
		byShard[s] = append(byShard[s], o)
	}
	var tiles []int
	for _, ts := range byShard {
		if len(ts) >= 2 {
			tiles = ts
			break
		}
	}
	if len(tiles) < 2 {
		t.Skip("no shard owns two tiles at this layout")
	}
	// Two hot tiles on one shard make a strictly-improving move exist.
	rb.tileLoad[tiles[0]].n.Store(60)
	rb.tileLoad[tiles[1]].n.Store(50)
	d.part.Balanced = false
	rb.rebalance()
	d.part.Balanced = true
	if got := d.Migrations(); got != 0 {
		t.Fatalf("pass migrated %d tile(s) through a non-rebalanceable layout", got)
	}
}

// TestMigrateTileEvictFailureSurfaces: a source sub-instance running ahead
// of its engine (a task the engine never saw) trips the engine's
// unknown-task guard mid-migration, and MigrateTile surfaces the error.
func TestMigrateTileEvictFailureSurfaces(t *testing.T) {
	in := hotspotInstance(t, 0.02)
	d := rebalanced(t, in, 4, nil)
	defer d.Close()
	tile, from := hotOwnerTile(t, d)
	sf := d.shards[from]
	if n := len(sf.sub.Global); n%64 == 0 {
		t.Skipf("dense space %d aligns with the evicted-mask words", n)
	}
	var ghost model.Task
	found := false
	for i := range sf.sub.Global {
		if src := sf.sub.SourceTask(model.TaskID(i)); d.part.OwnerTile(src.Loc) == tile {
			ghost, found = src, true
			break
		}
	}
	if !found {
		t.Fatal("owner tile holds no tasks")
	}
	ghost.ID = model.TaskID(len(in.Tasks) + 1)
	sf.sub.AppendTask(ghost)
	if err := d.MigrateTile(tile, (from+1)%d.NumShards()); err == nil {
		t.Fatal("migration with a desynced source sub-instance succeeded")
	}
	if got := d.Migrations(); got != 0 {
		t.Fatalf("failed migration counted: %d", got)
	}
}

// TestMigrateTileAdoptFailureRollsBack: a target sub-instance running ahead
// of its engine breaks the dense-ID handshake on the first adoption;
// MigrateTile must roll the speculative append back and surface the error.
func TestMigrateTileAdoptFailureRollsBack(t *testing.T) {
	in := hotspotInstance(t, 0.02)
	d := rebalanced(t, in, 4, nil)
	defer d.Close()
	tile, from := hotOwnerTile(t, d)
	to := (from + 1) % d.NumShards()
	st := d.shards[to]
	ghost := d.shards[from].sub.SourceTask(0)
	ghost.ID = model.TaskID(len(in.Tasks) + 2)
	st.sub.AppendTask(ghost)
	before := len(st.sub.Global)
	if err := d.MigrateTile(tile, to); err == nil {
		t.Fatal("migration into a desynced target sub-instance succeeded")
	}
	if got := len(st.sub.Global); got != before {
		t.Fatalf("failed adoption left the target at %d tasks, want %d", got, before)
	}
	if got := d.Migrations(); got != 0 {
		t.Fatalf("failed migration counted: %d", got)
	}
}

// TestRebalanceIdlePassIsNoOp: a rebalance pass over an interval with zero
// arrivals (and a fully decayed forecast) moves nothing — the pass bails
// before touching the per-shard load profile.
func TestRebalanceIdlePassIsNoOp(t *testing.T) {
	in := hotspotInstance(t, 0.02)
	d := rebalanced(t, in, 4, &RebalanceOptions{Interval: 1 << 30, Threshold: 1.2, MaxMoves: 1, Alpha: 1})
	defer d.Close()
	before := d.Migrations()
	d.rb.rebalance()
	if got := d.Migrations(); got != before {
		t.Fatalf("idle rebalance pass migrated tiles: %d -> %d", before, got)
	}
}

// TestRebalanceBelowThresholdIsNoOp: with traffic recorded but the heaviest
// shard under Threshold×mean, the pass computes the load profile and bails
// without migrating.
func TestRebalanceBelowThresholdIsNoOp(t *testing.T) {
	in := hotspotInstance(t, 0.02)
	d := rebalanced(t, in, 4, &RebalanceOptions{Interval: 1 << 30, Threshold: 1e9, MaxMoves: 1, Alpha: 1})
	defer d.Close()
	d.rb.noteLocate(d.part.OwnerTiles()[0])
	before := d.Migrations()
	d.rb.rebalance()
	if got := d.Migrations(); got != before {
		t.Fatalf("below-threshold rebalance pass migrated tiles: %d -> %d", before, got)
	}
}
