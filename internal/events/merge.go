package events

import (
	"errors"
	"fmt"
)

// StreamMerger folds N per-node event sequences into one global, gapless
// cluster sequence. Each node's bus already stamps its events with a dense
// per-node Seq (1, 2, 3, …); the merger verifies that density as events
// arrive and assigns every accepted event the next cluster sequence number,
// so the merged stream is itself dense (cluster Seq 1..M with no gaps).
//
// The fold is deterministic in the sense the cluster audit needs: the
// cluster Seq assigned to an event is a pure function of the interleaving
// in which the caller presents events, per-node order is enforced (an
// out-of-order or missing per-node Seq is an error, never a silent skip),
// and therefore any per-task fold of the merged stream — the exactly-once
// completion audit, a per-node event count, a replayed state machine — is
// independent of the cross-node interleaving. Duplicates from a resumed
// per-node subscription (a reconnect replaying from its last delivered
// Seq) are detected and rejected distinctly from gaps, so reconnect logic
// can drop them without weakening gap detection.
//
// A StreamMerger is not safe for concurrent use; the cluster client feeds
// it from its single stream-demultiplexing goroutine.
type StreamMerger struct {
	next []uint64 // next[n] is the per-node Seq node n must present next
	seq  uint64   // last assigned cluster sequence number
}

// Merge-fold errors, distinguishable with errors.Is.
var (
	// ErrSeqGap reports a hole in a node's sequence: at least one event was
	// lost between the last delivered and the presented one.
	ErrSeqGap = errors.New("events: per-node sequence gap")
	// ErrSeqDuplicate reports an event at or below the node's last
	// delivered sequence number — a resume replaying already-folded events.
	ErrSeqDuplicate = errors.New("events: per-node sequence already folded")
)

// NewStreamMerger returns a merger over the given node count. nodes < 1 is
// raised to 1 (a degenerate single-stream merge).
func NewStreamMerger(nodes int) *StreamMerger {
	if nodes < 1 {
		nodes = 1
	}
	return &StreamMerger{next: make([]uint64, nodes)}
}

// Fold accepts node's event with per-node sequence number nodeSeq and
// returns its cluster sequence number. nodeSeq must be exactly one past the
// node's last folded value: lower values return ErrSeqDuplicate (and fold
// nothing), higher values ErrSeqGap.
func (m *StreamMerger) Fold(node int, nodeSeq uint64) (uint64, error) {
	if node < 0 || node >= len(m.next) {
		return 0, fmt.Errorf("events: node %d outside the merged set [0,%d)", node, len(m.next))
	}
	switch want := m.next[node] + 1; {
	case nodeSeq < want:
		return 0, fmt.Errorf("%w: node %d seq %d already delivered (at %d)", ErrSeqDuplicate, node, nodeSeq, m.next[node])
	case nodeSeq > want:
		return 0, fmt.Errorf("%w: node %d jumped from %d to %d", ErrSeqGap, node, m.next[node], nodeSeq)
	}
	m.next[node] = nodeSeq
	m.seq++
	return m.seq, nil
}

// Delivered returns node's last folded per-node sequence number — the
// resume point a reconnecting subscription replays from (`?since=` on the
// wire). Nodes outside the merged set report 0.
func (m *StreamMerger) Delivered(node int) uint64 {
	if node < 0 || node >= len(m.next) {
		return 0
	}
	return m.next[node]
}

// Total returns how many events the merger has folded — the last assigned
// cluster sequence number.
func (m *StreamMerger) Total() uint64 { return m.seq }
