package ltc

import (
	"errors"
	"reflect"
	"testing"

	"ltc/internal/geo"
)

// TestWithRebalancePublicSurface drives a skewed stream through a platform
// with adaptive live re-sharding on: WithRebalance implies the balanced
// layout, migrations surface through Migrations() and the per-shard
// MigratedIn/MigratedOut accounts, and the run still resolves exactly like
// a static one (full completion, coherent progress).
func TestWithRebalancePublicSurface(t *testing.T) {
	cfg := DefaultWorkload().Scale(0.05)
	cfg.Seed = 42
	sc, err := NewScenario(ScenarioHotspot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	in, err := sc.Generate()
	if err != nil {
		t.Fatal(err)
	}
	plat, err := NewPlatform(in, LAF, WithShards(8),
		WithRebalance(RebalanceOptions{Interval: 128, Threshold: 1.0, MaxMoves: 2, Alpha: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if !plat.Balanced() {
		t.Fatal("WithRebalance did not imply the balanced layout")
	}
	if !plat.Rebalancing() {
		t.Skipf("layout not rebalanceable at %d effective shards", plat.Shards())
	}

	// Replay the stream with fresh indices each round until every task
	// completes; the hotspot skew gives the rebalancer load to move.
	const maxRounds = 40
	for r := 0; r < maxRounds && !plat.Done(); r++ {
		ws := make([]Worker, len(in.Workers))
		for i, w := range in.Workers {
			w.Index = r*len(in.Workers) + i + 1
			ws[i] = w
		}
		if _, err := plat.CheckInBatch(ws); err != nil && !errors.Is(err, ErrPlatformDone) {
			t.Fatal(err)
		}
	}
	if err := plat.Close(); err != nil {
		t.Fatal(err)
	}
	if !plat.Done() {
		t.Skip("stream too weak to complete the instance within the round cap")
	}
	resolved, total := plat.Progress()
	if resolved != total || total != len(in.Tasks) {
		t.Fatalf("progress %d/%d, want %d/%d", resolved, total, len(in.Tasks), len(in.Tasks))
	}
	if plat.Migrations() < 0 {
		t.Fatalf("Migrations() = %d", plat.Migrations())
	}
	var in_, out int
	for _, s := range plat.ShardStats() {
		in_ += s.MigratedIn
		out += s.MigratedOut
	}
	if in_ != out {
		t.Fatalf("migrated-task accounts disagree: %d in, %d out", in_, out)
	}
	if plat.Migrations() > 0 && plat.Imbalance() < 1 {
		t.Fatalf("imbalance %v < 1", plat.Imbalance())
	}
}

// TestWithRebalanceValidation: bad knobs fail construction, and a
// single-shard platform accepts WithRebalance but reports it inert.
func TestWithRebalanceValidation(t *testing.T) {
	in := tinyInstance(t)
	if _, err := NewPlatform(in, LAF, WithShards(2), WithRebalance(RebalanceOptions{Interval: -1})); err == nil {
		t.Fatal("negative rebalance interval accepted")
	}
	plat, err := NewPlatform(in, LAF, WithShards(1), WithRebalance())
	if err != nil {
		t.Fatal(err)
	}
	defer plat.Close()
	if plat.Rebalancing() {
		t.Fatal("single-shard platform claims to rebalance")
	}
	if plat.Migrations() != 0 {
		t.Fatalf("Migrations() = %d on an inert platform", plat.Migrations())
	}
}

// TestChurnLiveLoadSample pins the churn-layout fix: a balanced replay of a
// plan with late posts packs its layout against the live arrival prefix of
// the worker stream — not the default full-stream oracle, which under churn
// anticipates traffic aimed at tasks that don't exist at layout time. The
// pin is deterministic: the implicit replay must equal one given the prefix
// profile explicitly.
func TestChurnLiveLoadSample(t *testing.T) {
	base := DefaultWorkload().Scale(0.02)
	base.Seed = 7
	cw, err := DefaultChurn(base).Generate()
	if err != nil {
		t.Fatal(err)
	}
	if cw.PostedLate() == 0 {
		t.Fatal("churn plan has no late posts; the fixture needs them")
	}

	pts := churnLoadSample(cw)
	want := min(len(cw.Instance.Workers), churnLoadSamplePrefix)
	if len(pts) != want {
		t.Fatalf("sample holds %d points, want %d", len(pts), want)
	}
	for i := range pts {
		if pts[i] != cw.Instance.Workers[i].Loc {
			t.Fatalf("sample[%d] = %v, want worker %d's location %v — must be the arrival-order prefix",
				i, pts[i], i, cw.Instance.Workers[i].Loc)
		}
	}

	rep1, err := ReplayChurn(cw, LAF, WithShards(4), WithBalancedShards())
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := ReplayChurn(cw, LAF, WithShards(4), WithBalancedShards())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatal("balanced churn replay is not deterministic")
	}
	// Passing the live prefix explicitly must reproduce the implicit run
	// exactly: that is the profile ReplayChurn injects.
	rep3, err := ReplayChurn(cw, LAF, WithShards(4), WithBalancedShards(), withLoadSample(churnLoadSample(cw)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep1, rep3) {
		t.Fatal("implicit churn replay differs from the explicit live-prefix profile")
	}

	// The rebalancing variant of the same replay runs clean end to end.
	if _, err := ReplayChurn(cw, LAF, WithShards(4), WithRebalance(RebalanceOptions{Interval: 64, Threshold: 1.0, Alpha: 1})); err != nil {
		t.Fatal(err)
	}
}

// TestWithLoadPrefix pins the public causal-profile option: WithLoadPrefix(n)
// implies the balanced layout and packs it from exactly the first n worker
// locations — the run must reproduce one given that prefix explicitly — while
// out-of-range prefixes fall back to the default full-stream sampling.
func TestWithLoadPrefix(t *testing.T) {
	cfg := DefaultWorkload().Scale(0.02)
	cfg.Seed = 11
	sc, err := NewScenario(ScenarioRushHour, cfg)
	if err != nil {
		t.Fatal(err)
	}
	in, err := sc.Generate()
	if err != nil {
		t.Fatal(err)
	}
	n := len(in.Workers) / 8
	run := func(opts ...Option) ([]ShardStats, int) {
		t.Helper()
		plat, err := NewPlatform(in, LAF, append([]Option{WithShards(4)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		defer plat.Close()
		if !plat.Balanced() {
			t.Fatal("option did not imply the balanced layout")
		}
		for _, w := range in.Workers {
			if plat.Done() {
				break
			}
			if _, err := plat.CheckIn(w); err != nil && !errors.Is(err, ErrPlatformDone) {
				t.Fatal(err)
			}
		}
		return plat.ShardStats(), plat.Latency()
	}

	prefix := make([]geo.Point, n)
	for i, w := range in.Workers[:n] {
		prefix[i] = w.Loc
	}
	gotStats, gotLat := run(WithLoadPrefix(n))
	wantStats, wantLat := run(WithBalancedShards(), withLoadSample(prefix))
	if gotLat != wantLat || !reflect.DeepEqual(gotStats, wantStats) {
		t.Fatalf("WithLoadPrefix(%d) run differs from the explicit prefix profile: latency %d vs %d", n, gotLat, wantLat)
	}

	// n ≤ 0 and n beyond the stream keep the default full-stream sample.
	defStats, defLat := run(WithBalancedShards())
	for _, bad := range []int{0, -3, len(in.Workers), len(in.Workers) + 7} {
		s, l := run(WithLoadPrefix(bad))
		if l != defLat || !reflect.DeepEqual(s, defStats) {
			t.Fatalf("WithLoadPrefix(%d) did not fall back to the default profile", bad)
		}
	}
}
