package experiments

import (
	"runtime"
	"sync"
)

// parallelism resolves Options.Parallel: non-positive means one worker per
// core. The sweep runners use it to size their worker pools.
func (o Options) parallelism() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// forEach runs fn(i) for every i in [0, n) on up to `workers` goroutines and
// returns the error of the lowest-indexed failing job (so error reporting is
// deterministic regardless of scheduling). With workers ≤ 1 it degenerates
// to a plain sequential loop.
func forEach(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		mu      sync.Mutex
		firstI  = n
		firstEr error
		next    int
		wg      sync.WaitGroup
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= n || firstEr != nil && next > firstI {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	fail := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstEr == nil || i < firstI {
			firstI, firstEr = i, err
		}
	}
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				if err := fn(i); err != nil {
					fail(i, err)
				}
			}
		}()
	}
	wg.Wait()
	return firstEr
}
