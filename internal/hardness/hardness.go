// Package hardness turns the paper's theory into executable artifacts:
//
//   - Theorem 1: the offline LTC problem is NP-hard, by reduction from
//     3-partition. Reduce builds the LTC instance of the proof, and
//     DecideViaLTC answers the 3-partition question by solving it.
//   - Theorem 2: latency bounds via McNaughton's rule. When every
//     assignment carries the same credit r, McNaughtonArrange produces an
//     optimal arrangement in polynomial time, and LatencyLowerBound /
//     LatencyUpperBound give the |T|δ/K and 10|T|δ/K + |T|/K + 1 bounds
//     used throughout the approximation analysis.
//   - Theorem 4: no deterministic online algorithm is better than
//     5.5-competitive. AdversaryGame plays the proof's adversary against
//     any Online solver and reports the achieved ratio.
package hardness

import (
	"errors"
	"fmt"
	"math"

	"ltc/internal/core"
	"ltc/internal/model"
)

// ThreePartition is an instance of the 3-partition problem: 3m positive
// integers summing to m·B, each strictly between B/4 and B/2. The question
// is whether X can be split into m triples each summing exactly to B.
type ThreePartition struct {
	X []int
	B int
}

// Validation errors for ThreePartition.
var (
	ErrNotTriples = errors.New("hardness: |X| must be a positive multiple of 3")
	ErrBadSum     = errors.New("hardness: sum(X) must equal m·B")
	ErrBadRange   = errors.New("hardness: every x must satisfy B/4 < x < B/2")
)

// M returns the number of triples m.
func (tp ThreePartition) M() int { return len(tp.X) / 3 }

// Validate checks the 3-partition well-formedness conditions.
func (tp ThreePartition) Validate() error {
	if len(tp.X) == 0 || len(tp.X)%3 != 0 {
		return ErrNotTriples
	}
	m := tp.M()
	sum := 0
	for _, x := range tp.X {
		sum += x
		// Strict inequalities with integer arithmetic: 4x > B and 4x < 2B.
		if 4*x <= tp.B || 2*x >= tp.B {
			return fmt.Errorf("%w: x=%d, B=%d", ErrBadRange, x, tp.B)
		}
	}
	if sum != m*tp.B {
		return fmt.Errorf("%w: sum=%d, want %d", ErrBadSum, sum, m*tp.B)
	}
	return nil
}

// Reduce builds the offline LTC instance of Theorem 1's proof: m tasks with
// ε = e^(-1/2) (δ = 1), 3m workers with capacity K = 1, and
// Acc*(w_i, t) = x_i / B for every task t. The 3-partition instance is a
// YES instance iff the LTC instance admits a feasible arrangement (which
// then necessarily uses all 3m workers, latency 3m).
func Reduce(tp ThreePartition) (*model.Instance, error) {
	if err := tp.Validate(); err != nil {
		return nil, err
	}
	m := tp.M()
	in := &model.Instance{
		Epsilon: math.Exp(-0.5), // δ = 2·ln(1/ε) = 1
		K:       1,
		MinAcc:  0.5,
	}
	// Acc with AccStar(Acc) = x/B: Acc = (1 + sqrt(x/B)) / 2.
	// x/B ∈ (1/4, 1/2) ⇒ Acc ∈ (0.75, 0.854): all pairs eligible.
	vals := make([][]float64, m)
	for t := 0; t < m; t++ {
		vals[t] = make([]float64, len(tp.X))
		for w, x := range tp.X {
			vals[t][w] = (1 + math.Sqrt(float64(x)/float64(tp.B))) / 2
		}
		in.Tasks = append(in.Tasks, model.Task{ID: model.TaskID(t)})
	}
	in.Model = model.MatrixAccuracy{Vals: vals}
	for w := 1; w <= len(tp.X); w++ {
		in.Workers = append(in.Workers, model.Worker{Index: w, Acc: 1})
	}
	return in, nil
}

// DecideViaLTC answers the 3-partition question by solving the reduced LTC
// instance exactly: YES iff a feasible complete arrangement exists.
// maxNodes bounds the branch-and-bound search (0 = default).
func DecideViaLTC(tp ThreePartition, maxNodes int64) (bool, error) {
	in, err := Reduce(tp)
	if err != nil {
		return false, err
	}
	ci := model.NewCandidateIndex(in)
	solver := &core.Exact{MaxNodes: maxNodes}
	arr, err := solver.Solve(in, ci)
	switch {
	case errors.Is(err, model.ErrInfeasible):
		return false, nil
	case err != nil:
		return false, err
	}
	// A feasible arrangement certifies YES; sanity-check it.
	if err := arr.Validate(in, true); err != nil {
		return false, fmt.Errorf("hardness: reduction produced invalid certificate: %w", err)
	}
	return true, nil
}

// RecoverPartition extracts the m triples from a feasible arrangement of a
// reduced instance: triple i is the worker positions assigned to task i.
func RecoverPartition(tp ThreePartition, arr *model.Arrangement) ([][]int, error) {
	m := tp.M()
	triples := make([][]int, m)
	for _, p := range arr.Pairs {
		triples[p.Task] = append(triples[p.Task], tp.X[p.Worker-1])
	}
	for t, triple := range triples {
		if len(triple) != 3 {
			return nil, fmt.Errorf("hardness: task %d has %d workers, want 3", t, len(triple))
		}
		sum := 0
		for _, x := range triple {
			sum += x
		}
		if sum != tp.B {
			return nil, fmt.Errorf("hardness: triple %d sums to %d, want %d", t, sum, tp.B)
		}
	}
	return triples, nil
}

// LatencyLowerBound returns Theorem 2's lower bound |T|·δ/K on the optimal
// latency (assuming |T| ≥ K).
func LatencyLowerBound(numTasks, k int, delta float64) float64 {
	return float64(numTasks) * delta / float64(k)
}

// LatencyUpperBound returns Theorem 2's upper bound 10·|T|·δ/K + |T|/K + 1,
// derived from the worst admissible per-assignment credit Acc* > 0.1.
func LatencyUpperBound(numTasks, k int, delta float64) float64 {
	t, kk := float64(numTasks), float64(k)
	return 10*t*delta/kk + t/kk + 1
}

// McNaughtonLatency returns the optimal latency when every assignment
// carries the same credit r: max{⌈|T|·⌈δ/r⌉/K⌉, ⌈δ/r⌉} (Theorem 2's
// McNaughton argument). r must be positive.
func McNaughtonLatency(numTasks, k int, delta, r float64) int {
	if r <= 0 {
		panic("hardness: credit r must be positive")
	}
	perTask := int(math.Ceil(delta / r))
	if perTask < 1 {
		perTask = 1
	}
	total := numTasks * perTask
	latency := (total + k - 1) / k
	if perTask > latency {
		latency = perTask
	}
	return latency
}

// McNaughtonArrange builds an optimal arrangement for a constant-credit
// instance (model.ConstantAccuracy): each task is replicated ⌈δ/r⌉ times
// and the copies are dealt round-robin over the first L workers, where L is
// McNaughtonLatency. Distinct copies of a task always land on distinct
// workers because ⌈δ/r⌉ ≤ L.
func McNaughtonArrange(in *model.Instance) (*model.Arrangement, error) {
	cm, ok := in.Model.(model.ConstantAccuracy)
	if !ok {
		return nil, errors.New("hardness: McNaughtonArrange requires a ConstantAccuracy model")
	}
	r := model.AccStar(cm.P)
	if r <= 0 {
		return nil, model.ErrInfeasible
	}
	delta := in.Delta()
	perTask := int(math.Ceil(delta / r))
	latency := McNaughtonLatency(len(in.Tasks), in.K, delta, r)
	if latency > len(in.Workers) {
		return nil, model.ErrInfeasible
	}
	arr := model.NewArrangement(len(in.Tasks))
	slot := 0
	for t := range in.Tasks {
		for j := 0; j < perTask; j++ {
			worker := slot%latency + 1
			arr.Add(worker, model.TaskID(t), r)
			slot++
		}
	}
	return arr, nil
}
