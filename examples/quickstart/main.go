// Command quickstart is the smallest end-to-end use of the ltc library:
// generate a laptop-sized synthetic workload (paper Table IV, scaled),
// solve it with the AAM online algorithm, and verify the answer quality.
package main

import (
	"fmt"
	"log"

	"ltc"
)

func main() {
	// A 1% scale Table IV workload: 30 tasks, 400 workers on a 100×100
	// grid, capacity K = 6, tolerable error rate ε = 0.1.
	cfg := ltc.DefaultWorkload().Scale(0.01)
	cfg.Seed = 2018
	in, err := cfg.Generate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: %d tasks, %d workers, K=%d, ε=%.2f (δ=%.2f)\n",
		len(in.Tasks), len(in.Workers), in.K, in.Epsilon, in.Delta())

	// Solve online with AAM (Algorithm 3): workers arrive one by one and
	// each is assigned up to K tasks immediately.
	res, err := ltc.Solve(in, ltc.AAM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AAM completed all tasks with latency %d (last worker used of %d seen)\n",
		res.Latency, res.WorkersSeen)
	fmt.Printf("assignments: %d, runtime: %v\n", len(res.Arrangement.Pairs), res.Elapsed)

	// Replay the arrangement with simulated answers and weighted majority
	// voting: the empirical error must sit below ε.
	rep := ltc.VerifyQuality(in, res.Arrangement, 200, 1)
	fmt.Printf("empirical error over %d trials: %.4f (ε = %.2f) — %s\n",
		rep.Trials, rep.ErrorRate, in.Epsilon, verdict(rep.ErrorRate < in.Epsilon))

	// The same run as a service: a Platform ingests check-ins and returns
	// structured receipts, while a subscriber watches completions happen —
	// no polling anywhere. (cmd/ltcd serves exactly this over HTTP.)
	plat, err := ltc.NewPlatform(in, ltc.AAM, ltc.WithShards(1))
	if err != nil {
		log.Fatal(err)
	}
	sub := plat.Subscribe()
	completions := 0
	for _, w := range in.Workers {
		receipt, err := plat.CheckIn(w)
		if err != nil {
			log.Fatal(err)
		}
		if receipt.Done {
			break
		}
	}
	sub.Close()
	var last ltc.Event
	for e := range sub.Events() {
		if e.Kind == ltc.EventTaskCompleted {
			completions++
			last = e
		}
	}
	fmt.Printf("platform replay: %d completion events; last task %d completed by worker %d (latency %d)\n",
		completions, last.Task, last.Worker, plat.Latency())
}

func verdict(ok bool) string {
	if ok {
		return "quality guarantee holds"
	}
	return "QUALITY VIOLATION"
}
