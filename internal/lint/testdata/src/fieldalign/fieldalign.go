// Package fixture exercises the fieldalign analyzer: structs annotated
// //ltc:hot must use an alignment-optimal field order.
package fixture

// grant mirrors the dispatch layer's TaskGrant before its reorder: 24 bytes
// declared, 16 optimal.
//
//ltc:hot
type grant struct { // want "24 bytes; reordering fields"
	id   int32
	cost float64
	done bool
}

// packed is grant after the reorder — optimal, no finding.
//
//ltc:hot
type packed struct {
	cost float64
	id   int32
	done bool
}

// coldGrant is unannotated: fieldalign leaves declaration order alone so
// readability can win on cold structs.
type coldGrant struct {
	id   int32
	cost float64
	done bool
}

//ltc:hot
type notAStruct int32 // want "annotates non-struct"
