package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"text/tabwriter"
)

// cellKey identifies one artifact cell across PRs. The empty scenario and
// "uniform" share a key: -exp throughput measures the uniform Table IV
// instance, so its cells and -exp scenarios' uniform/striped cells are the
// same measurement under two labels, and the benchdiff gate compares them
// directly across artifact generations.
func cellKey(r throughputResult) string {
	k := fmt.Sprintf("%s/shards=%d/batch=%d", r.Mode, r.Shards, r.BatchSize)
	if r.Scenario != "" && r.Scenario != "uniform" {
		k = r.Scenario + "/" + k
	}
	if r.Balanced {
		k += "/balanced"
	}
	return k
}

// runBenchDiff compares two committed throughput artifacts (see
// throughputArtifact) cell by cell and fails — non-zero exit — when any
// cell present in both regressed by more than tolerance (fractional, e.g.
// 0.10): the CI benchmark-regression gate between BENCH_prN.json files.
// Cells only in one artifact are reported but never fail the diff, so new
// modes and scenarios can be added without breaking the gate.
//
// hotspotGain > 0 additionally asserts the skew-aware dispatch claim
// *within the candidate*: every hotspot-scenario cell pair at ≥ 8 shards
// must show the balanced layout beating fixed striping by at least that
// fraction (0.25 = +25% workers/sec), and at least one such pair must
// exist. This pins the point of WithBalancedShards — worst-case traffic —
// with the same committed artifact the regression gate already reads.
func runBenchDiff(basePath, candPath string, tolerance, hotspotGain float64) error {
	base, err := readArtifact(basePath)
	if err != nil {
		return err
	}
	cand, err := readArtifact(candPath)
	if err != nil {
		return err
	}
	if base.Preset != cand.Preset || base.Algo != cand.Algo {
		return fmt.Errorf("artifacts not comparable: %s/%s vs %s/%s",
			base.Preset, base.Algo, cand.Preset, cand.Algo)
	}
	key := cellKey
	baseCells := make(map[string]throughputResult, len(base.Results))
	for _, r := range base.Results {
		baseCells[key(r)] = r
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "cell\tbaseline w/s\tcandidate w/s\tratio\tverdict\n")
	var failures int
	for _, c := range cand.Results {
		b, ok := baseCells[key(c)]
		if !ok {
			fmt.Fprintf(w, "%s\t-\t%.0f\t-\tnew\n", key(c), c.WorkersPerSec)
			continue
		}
		delete(baseCells, key(c))
		ratio := c.WorkersPerSec / b.WorkersPerSec
		verdict := "ok"
		if ratio < 1-tolerance {
			verdict = "REGRESSED"
			failures++
		}
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%.3f\t%s\n", key(c), b.WorkersPerSec, c.WorkersPerSec, ratio, verdict)
	}
	for k, b := range baseCells {
		fmt.Fprintf(w, "%s\t%.0f\t-\t-\tdropped\n", k, b.WorkersPerSec)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if failures > 0 {
		return fmt.Errorf("%d cell(s) regressed more than %s%% vs %s",
			failures, strconv.FormatFloat(tolerance*100, 'g', -1, 64), basePath)
	}
	fmt.Printf("benchdiff: every shared cell within %s%% of %s\n",
		strconv.FormatFloat(tolerance*100, 'g', -1, 64), basePath)
	if hotspotGain > 0 {
		if err := checkHotspotGain(cand, hotspotGain); err != nil {
			return err
		}
	}
	return nil
}

// checkHotspotGain verifies the candidate's hotspot cells at ≥ 8 shards:
// balanced vs striped pairs (same mode, shard count and batch size) must
// all clear the required fractional gain.
func checkHotspotGain(cand *throughputArtifact, minGain float64) error {
	type pairKey struct {
		mode   string
		shards int
		batch  int
	}
	striped := make(map[pairKey]float64)
	balanced := make(map[pairKey]float64)
	for _, r := range cand.Results {
		if r.Scenario != "hotspot" || r.Shards < 8 {
			continue
		}
		k := pairKey{r.Mode, r.Shards, r.BatchSize}
		if r.Balanced {
			balanced[k] = r.WorkersPerSec
		} else {
			striped[k] = r.WorkersPerSec
		}
	}
	keys := make([]pairKey, 0, len(balanced))
	for k := range balanced {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.mode != b.mode {
			return a.mode < b.mode
		}
		if a.shards != b.shards {
			return a.shards < b.shards
		}
		return a.batch < b.batch
	})
	pairs, failures := 0, 0
	for _, k := range keys {
		b := balanced[k]
		s, ok := striped[k]
		if !ok {
			continue
		}
		pairs++
		ratio := b / s
		verdict := "ok"
		if ratio < 1+minGain {
			verdict = "TOO SLOW"
			failures++
		}
		fmt.Printf("hotspot %s/shards=%d/batch=%d: balanced %.0f vs striped %.0f w/s (%.2fx) %s\n",
			k.mode, k.shards, k.batch, b, s, ratio, verdict)
	}
	if pairs == 0 {
		return fmt.Errorf("hotspot gain gate: no hotspot balanced/striped pair at ≥ 8 shards in the candidate")
	}
	if failures > 0 {
		return fmt.Errorf("hotspot gain gate: %d pair(s) below the required +%s%% balanced speedup",
			failures, strconv.FormatFloat(minGain*100, 'g', -1, 64))
	}
	fmt.Printf("hotspot gain gate: balanced beats striping by ≥ %s%% on all %d pair(s)\n",
		strconv.FormatFloat(minGain*100, 'g', -1, 64), pairs)
	return nil
}

func readArtifact(path string) (*throughputArtifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var art throughputArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &art, nil
}
