// Package fixture exercises the atomicfield analyzer: a field touched with
// sync/atomic anywhere in the package must be touched with sync/atomic
// everywhere.
package fixture

import "sync/atomic"

type counters struct {
	hits  int64
	cold  int64
	table []int32
}

// bump establishes hits as an atomic field; cold stays plain.
func bump(c *counters) {
	atomic.AddInt64(&c.hits, 1)
	c.cold++
}

func badPlain(c *counters) int64 {
	return c.hits // want "plain access here races"
}

func okCold(c *counters) int64 {
	return c.cold
}

// readElem establishes table as an element-atomic field (the live-migration
// pattern: tiles are re-pointed with StoreInt32 mid-stream).
func readElem(c *counters, i int) int32 {
	return atomic.LoadInt32(&c.table[i])
}

func writeElem(c *counters, i int, v int32) {
	atomic.StoreInt32(&c.table[i], v)
}

func badElem(c *counters, i int) int32 {
	return c.table[i] // want "plain element access here races"
}

func badRange(c *counters) int32 {
	var s int32
	for _, v := range c.table { // want "range with a value variable"
		s += v
	}
	return s
}

// okIndexFree: range without a value variable only reads indices.
func okIndexFree(c *counters) int {
	n := 0
	for range c.table {
		n++
	}
	return n
}

func okLen(c *counters) int {
	return len(c.table)
}

// publish: building a local table and replacing the whole field is the
// blessed construction pattern.
func publish(c *counters, n int) {
	table := make([]int32, n)
	for i := range table {
		table[i] = int32(i)
	}
	c.table = table
}

func waived(c *counters) int64 {
	return c.hits //ltclint:ignore atomicfield fixture demonstrates a single-threaded-init waiver
}
