package voting

import (
	"errors"
	"math"
	"testing"

	"ltc/internal/model"
	"ltc/internal/stats"
)

func TestMajorityVoteBasics(t *testing.T) {
	answers := []Answer{
		{Worker: 1, Task: 0, Value: Yes},
		{Worker: 2, Task: 0, Value: Yes},
		{Worker: 3, Task: 0, Value: No},
		{Worker: 1, Task: 1, Value: No},
	}
	labels := MajorityVote(3, answers)
	if labels[0] != Yes || labels[1] != No || labels[2] != 0 {
		t.Fatalf("labels = %v", labels)
	}
}

func TestMajorityVoteTieGoesYes(t *testing.T) {
	answers := []Answer{
		{Worker: 1, Task: 0, Value: Yes},
		{Worker: 2, Task: 0, Value: No},
	}
	if labels := MajorityVote(1, answers); labels[0] != Yes {
		t.Fatalf("tie label = %v, want Yes", labels[0])
	}
}

func TestEMInferenceNoData(t *testing.T) {
	if _, err := EMInference(3, nil, EMOptions{}); !errors.Is(err, ErrNoData) {
		t.Fatalf("err = %v, want ErrNoData", err)
	}
}

// heterogeneousAnswers simulates a panel with very reliable and very
// unreliable workers answering every task.
func heterogeneousAnswers(numTasks int, truth []Label, accs []float64, seed uint64) []Answer {
	rng := stats.NewRand(seed)
	var answers []Answer
	for w, acc := range accs {
		for t := 0; t < numTasks; t++ {
			v := truth[t]
			if rng.Float64() >= acc {
				v = -v
			}
			answers = append(answers, Answer{Worker: w + 1, Task: model.TaskID(t), Value: v})
		}
	}
	return answers
}

func makeTruth(numTasks int, seed uint64) []Label {
	rng := stats.NewRand(seed)
	truth := make([]Label, numTasks)
	for t := range truth {
		if rng.IntN(2) == 0 {
			truth[t] = Yes
		} else {
			truth[t] = No
		}
	}
	return truth
}

// TestEMBeatsMajorityWithHeterogeneousWorkers: with a few experts among
// many coin-flippers, EM should recover labels better than the unweighted
// majority because it discovers who the experts are.
func TestEMBeatsMajorityWithHeterogeneousWorkers(t *testing.T) {
	const numTasks = 120
	truth := makeTruth(numTasks, 5)
	accs := []float64{0.95, 0.95, 0.55, 0.52, 0.50, 0.50, 0.48}
	answers := heterogeneousAnswers(numTasks, truth, accs, 6)

	maj := MajorityVote(numTasks, answers)
	em, err := EMInference(numTasks, answers, EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	grade := func(labels []Label) float64 {
		right := 0
		for t2, l := range labels {
			if l == truth[t2] {
				right++
			}
		}
		return float64(right) / numTasks
	}
	majAcc, emAcc := grade(maj), grade(em.Labels)
	if emAcc < majAcc {
		t.Fatalf("EM (%.3f) worse than majority (%.3f)", emAcc, majAcc)
	}
	if emAcc < 0.9 {
		t.Fatalf("EM accuracy %.3f too low with two 95%% experts", emAcc)
	}
}

// TestEMRecoversWorkerAccuracy: the estimated reliabilities should rank the
// expert above the coin-flipper.
func TestEMRecoversWorkerAccuracy(t *testing.T) {
	const numTasks = 200
	truth := makeTruth(numTasks, 9)
	accs := []float64{0.95, 0.95, 0.90, 0.50, 0.50}
	answers := heterogeneousAnswers(numTasks, truth, accs, 10)
	em, err := EMInference(numTasks, answers, EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	expert := em.WorkerAccuracy[1]
	flipper := em.WorkerAccuracy[4]
	if expert <= flipper {
		t.Fatalf("expert estimate %.3f not above coin-flipper %.3f", expert, flipper)
	}
	if math.Abs(expert-0.95) > 0.10 {
		t.Fatalf("expert estimate %.3f too far from 0.95", expert)
	}
}

func TestEMConverges(t *testing.T) {
	const numTasks = 50
	truth := makeTruth(numTasks, 11)
	answers := heterogeneousAnswers(numTasks, truth, []float64{0.9, 0.8, 0.7}, 12)
	em, err := EMInference(numTasks, answers, EMOptions{MaxIterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	if em.Iterations >= 50 {
		t.Fatalf("EM did not converge (%d iterations)", em.Iterations)
	}
}

func TestEMUnansweredTasksStayZero(t *testing.T) {
	answers := []Answer{{Worker: 1, Task: 0, Value: Yes}}
	em, err := EMInference(3, answers, EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if em.Labels[1] != 0 || em.Labels[2] != 0 {
		t.Fatalf("labels = %v, unanswered tasks must stay 0", em.Labels)
	}
	if em.Labels[0] != Yes {
		t.Fatalf("labels = %v", em.Labels)
	}
}

// TestEMvsWeightedAggregateOnModelAnswers: on answers simulated from the
// instance's accuracy model, the paper's model-weighted Aggregate and the
// model-free EM should agree on the vast majority of tasks.
func TestEMvsWeightedAggregateOnModelAnswers(t *testing.T) {
	in := denseInstance(60, 300, 0.85, 0.1, 2)
	arr := model.NewArrangement(60)
	w := 1
	for round := 0; round < 5; round++ {
		for t2 := 0; t2 < 60; t2++ {
			arr.Add(w, model.TaskID(t2), 0.5)
			w++
		}
	}
	sim := NewSimulator(in, 33)
	answers := sim.Collect(arr)
	weighted := Aggregate(in, answers)
	em, err := EMInference(len(in.Tasks), answers, EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for t2 := range weighted {
		if weighted[t2] == em.Labels[t2] {
			agree++
		}
	}
	if frac := float64(agree) / 60; frac < 0.9 {
		t.Fatalf("weighted vs EM agreement only %.2f", frac)
	}
}

func TestAccuracyAgainstTruth(t *testing.T) {
	in := denseInstance(4, 4, 0.9, 0.2, 1)
	sim := NewSimulator(in, 3)
	labels := []Label{sim.Truth(0), -sim.Truth(1), 0, sim.Truth(3)}
	acc, ok := AccuracyAgainstTruth(sim, labels)
	if !ok {
		t.Fatal("expected graded tasks")
	}
	if math.Abs(acc-2.0/3.0) > 1e-12 {
		t.Fatalf("accuracy = %v, want 2/3", acc)
	}
	if _, ok := AccuracyAgainstTruth(sim, []Label{0, 0, 0, 0}); ok {
		t.Fatal("all-zero labels must report !ok")
	}
}
