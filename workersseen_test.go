package ltc

import (
	"errors"
	"testing"
)

// TestWorkersSeenContract pins the shared WorkersSeen definition of Session
// and Platform (the PR 4 satellite fixing their historically divergent
// docs): every check-in presenting a valid arrival index is observed —
// including ones bounced with ErrSessionDone/ErrPlatformDone while all
// tasks were complete — and index-rejected calls are not. The same script
// drives both APIs; their counts must agree step for step.
func TestWorkersSeenContract(t *testing.T) {
	in := tinyInstance(t)
	sess, err := NewSession(in, AAM)
	if err != nil {
		t.Fatal(err)
	}
	plat, err := NewPlatform(in, AAM, WithShards(1))
	if err != nil {
		t.Fatal(err)
	}

	check := func(step string, want int) {
		t.Helper()
		if got := sess.WorkersSeen(); got != want {
			t.Fatalf("%s: session WorkersSeen = %d, want %d", step, got, want)
		}
		if got := plat.WorkersSeen(); got != want {
			t.Fatalf("%s: platform WorkersSeen = %d, want %d", step, got, want)
		}
	}
	check("fresh", 0)

	// An index-rejected call is not observed: out of order for the
	// session, non-positive for the platform.
	if _, err := sess.Arrive(in.Workers[5]); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("out-of-order err = %v", err)
	}
	if _, err := plat.CheckIn(Worker{Index: 0}); err == nil {
		t.Fatal("platform accepted index 0")
	}
	check("after rejected", 0)

	// Feed until completion; every accepted arrival counts.
	fed := 0
	for _, w := range in.Workers {
		if sess.Done() {
			break
		}
		if _, err := sess.Arrive(w); err != nil {
			t.Fatal(err)
		}
		if _, err := plat.CheckIn(w); err != nil {
			t.Fatal(err)
		}
		fed++
		check("mid-stream", fed)
	}
	if !sess.Done() || !plat.Done() {
		t.Fatal("stream exhausted before completion")
	}

	// Bounced arrivals — valid index, platform complete — are observed
	// too: the contract both APIs now share.
	next := in.Workers[fed]
	if _, err := sess.Arrive(next); !errors.Is(err, ErrSessionDone) {
		t.Fatalf("session bounce err = %v", err)
	}
	if _, err := plat.CheckIn(next); !errors.Is(err, ErrPlatformDone) {
		t.Fatalf("platform bounce err = %v", err)
	}
	check("after bounce", fed+1)

	// A session bounce consumes its index: replaying it is out of order
	// and NOT counted, exactly like any other index rejection.
	if _, err := sess.Arrive(next); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("replayed bounce err = %v", err)
	}
	if _, err := plat.CheckIn(Worker{Index: -3}); err == nil {
		t.Fatal("platform accepted negative index")
	}
	check("after second rejection", fed+1)

	// Bounced receipts carry the done flag for both APIs.
	recS, _ := sess.Arrive(in.Workers[fed+1])
	recP, _ := plat.CheckIn(in.Workers[fed+1])
	if !recS.Done || !recP.Done {
		t.Fatalf("bounced receipts not marked done: session %+v, platform %+v", recS, recP)
	}
	check("after receipt bounce", fed+2)
}
