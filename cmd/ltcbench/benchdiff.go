package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"text/tabwriter"
)

// cellKey identifies one artifact cell across PRs. The empty scenario and
// "uniform" share a key: -exp throughput measures the uniform Table IV
// instance, so its cells and -exp scenarios' uniform/striped cells are the
// same measurement under two labels, and the benchdiff gate compares them
// directly across artifact generations. defFeeders normalizes the feeders
// axis: cells recorded before the axis existed carry no per-cell feeders
// value, so they inherit the artifact's top-level Feeders — keeping
// pre-axis artifacts comparable with post-axis ones at the same feeder
// count.
func cellKey(r throughputResult, defFeeders int) string {
	f := r.Feeders
	if f == 0 {
		f = defFeeders
	}
	k := fmt.Sprintf("%s/shards=%d/batch=%d/feeders=%d", r.Mode, r.Shards, r.BatchSize, f)
	if r.Scenario != "" && r.Scenario != "uniform" {
		k = r.Scenario + "/" + k
	}
	if r.Balanced {
		k += "/balanced"
	}
	// Only-when-true, like the feeders normalization above: artifacts
	// recorded before live re-sharding existed carry neither field
	// (decoding as false) and keep their cell identity.
	if r.Presampled {
		k += "/presampled"
	}
	if r.Rebalanced {
		k += "/rebalanced"
	}
	return k
}

// runBenchDiff compares two committed throughput artifacts (see
// throughputArtifact) cell by cell and fails — non-zero exit — when any
// cell present in both regressed by more than tolerance (fractional, e.g.
// 0.10): the CI benchmark-regression gate between BENCH_prN.json files.
// Cells only in one artifact are reported but never fail the diff, so new
// modes and scenarios can be added without breaking the gate.
//
// hotspotGain > 0 additionally asserts the skew-aware dispatch claim
// *within the candidate*: every hotspot-scenario cell pair at ≥ 8 shards
// must show the balanced layout beating fixed striping by at least that
// fraction (0.25 = +25% workers/sec), and at least one such pair must
// exist. This pins the point of WithBalancedShards — worst-case traffic —
// with the same committed artifact the regression gate already reads.
//
// asyncFloor > 0 asserts the async ingestion path held its ground: every
// shared async-mode cell must show candidate/baseline ≥ asyncFloor (1.0 =
// no regression at all, tighter than the general tolerance). maxAllocs ≥ 0
// bounds the candidate's per-op allocation count on every cell — the
// steady-state zero-allocation claim, gated on the committed artifact.
//
// rushhourGain > 0 asserts the adaptive re-sharding claim *within the
// candidate*: on rushhour at ≥ 8 shards, every rebalanced cell must show
// live migration re-spreading the drifted load — its post-handoff
// imbalance at least (1 + rushhourGain) times better than its presampled
// static twin's — at near-parity throughput, and at least one such pair
// must exist. See checkRebalanceGain for the exact terms and for why
// flashcrowd and async pairs are informational.
func runBenchDiff(basePath, candPath string, tolerance, hotspotGain, asyncFloor, maxAllocs, rushhourGain float64) error {
	base, err := readArtifact(basePath)
	if err != nil {
		return err
	}
	cand, err := readArtifact(candPath)
	if err != nil {
		return err
	}
	if base.Preset != cand.Preset || base.Algo != cand.Algo {
		return fmt.Errorf("artifacts not comparable: %s/%s vs %s/%s",
			base.Preset, base.Algo, cand.Preset, cand.Algo)
	}
	baseCells := make(map[string]throughputResult, len(base.Results))
	for _, r := range base.Results {
		baseCells[cellKey(r, base.Feeders)] = r
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "cell\tbaseline w/s\tcandidate w/s\tratio\tverdict\n")
	var failures, floorFailures, allocFailures int
	for _, c := range cand.Results {
		k := cellKey(c, cand.Feeders)
		if maxAllocs >= 0 && c.AllocsPerOp > maxAllocs {
			fmt.Fprintf(w, "%s\t\t%.1f allocs/op\t\tOVER ALLOC BUDGET\n", k, c.AllocsPerOp)
			allocFailures++
		}
		b, ok := baseCells[k]
		if !ok {
			fmt.Fprintf(w, "%s\t-\t%.0f\t-\tnew\n", k, c.WorkersPerSec)
			continue
		}
		delete(baseCells, k)
		ratio := c.WorkersPerSec / b.WorkersPerSec
		verdict := "ok"
		if ratio < 1-tolerance {
			verdict = "REGRESSED"
			failures++
		}
		if asyncFloor > 0 && c.Mode == "async" && ratio < asyncFloor {
			verdict = "BELOW ASYNC FLOOR"
			floorFailures++
		}
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%.3f\t%s\n", k, b.WorkersPerSec, c.WorkersPerSec, ratio, verdict)
	}
	for k, b := range baseCells {
		fmt.Fprintf(w, "%s\t%.0f\t-\t-\tdropped\n", k, b.WorkersPerSec)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if failures > 0 {
		return fmt.Errorf("%d cell(s) regressed more than %s%% vs %s",
			failures, strconv.FormatFloat(tolerance*100, 'g', -1, 64), basePath)
	}
	if floorFailures > 0 {
		return fmt.Errorf("async floor gate: %d async cell(s) below %sx the baseline %s",
			floorFailures, strconv.FormatFloat(asyncFloor, 'g', -1, 64), basePath)
	}
	if allocFailures > 0 {
		return fmt.Errorf("alloc budget gate: %d cell(s) above %s allocs/op in %s",
			allocFailures, strconv.FormatFloat(maxAllocs, 'g', -1, 64), candPath)
	}
	fmt.Printf("benchdiff: every shared cell within %s%% of %s\n",
		strconv.FormatFloat(tolerance*100, 'g', -1, 64), basePath)
	if asyncFloor > 0 {
		fmt.Printf("async floor gate: every shared async cell at ≥ %sx the baseline\n",
			strconv.FormatFloat(asyncFloor, 'g', -1, 64))
	}
	if maxAllocs >= 0 {
		fmt.Printf("alloc budget gate: every candidate cell at ≤ %s allocs/op\n",
			strconv.FormatFloat(maxAllocs, 'g', -1, 64))
	}
	if hotspotGain > 0 {
		if err := checkHotspotGain(cand, hotspotGain); err != nil {
			return err
		}
	}
	if rushhourGain > 0 {
		if err := checkRebalanceGain(cand, rushhourGain); err != nil {
			return err
		}
	}
	return nil
}

// checkHotspotGain verifies the candidate's hotspot cells at ≥ 8 shards:
// balanced vs striped pairs (same mode, shard count, batch size and feeder
// count) must all clear the required fractional gain.
func checkHotspotGain(cand *throughputArtifact, minGain float64) error {
	type pairKey struct {
		mode    string
		shards  int
		batch   int
		feeders int
	}
	striped := make(map[pairKey]float64)
	balanced := make(map[pairKey]float64)
	for _, r := range cand.Results {
		if r.Scenario != "hotspot" || r.Shards < 8 {
			continue
		}
		f := r.Feeders
		if f == 0 {
			f = cand.Feeders
		}
		k := pairKey{r.Mode, r.Shards, r.BatchSize, f}
		if r.Balanced {
			balanced[k] = r.WorkersPerSec
		} else {
			striped[k] = r.WorkersPerSec
		}
	}
	keys := make([]pairKey, 0, len(balanced))
	for k := range balanced {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.mode != b.mode {
			return a.mode < b.mode
		}
		if a.shards != b.shards {
			return a.shards < b.shards
		}
		if a.batch != b.batch {
			return a.batch < b.batch
		}
		return a.feeders < b.feeders
	})
	pairs, failures := 0, 0
	for _, k := range keys {
		b := balanced[k]
		s, ok := striped[k]
		if !ok {
			continue
		}
		pairs++
		ratio := b / s
		verdict := "ok"
		if ratio < 1+minGain {
			verdict = "TOO SLOW"
			failures++
		}
		fmt.Printf("hotspot %s/shards=%d/batch=%d/feeders=%d: balanced %.0f vs striped %.0f w/s (%.2fx) %s\n",
			k.mode, k.shards, k.batch, k.feeders, b, s, ratio, verdict)
	}
	if pairs == 0 {
		return fmt.Errorf("hotspot gain gate: no hotspot balanced/striped pair at ≥ 8 shards in the candidate")
	}
	if failures > 0 {
		return fmt.Errorf("hotspot gain gate: %d pair(s) below the required +%s%% balanced speedup",
			failures, strconv.FormatFloat(minGain*100, 'g', -1, 64))
	}
	fmt.Printf("hotspot gain gate: balanced beats striping by ≥ %s%% on all %d pair(s)\n",
		strconv.FormatFloat(minGain*100, 'g', -1, 64), pairs)
	return nil
}

// rebalanceParityFloor is the throughput side of the re-sharding gate:
// the rebalanced cell must keep at least this fraction of its static
// twin's workers/sec. The artifacts are recorded on a single-core box,
// where an imbalanced layout costs no parallelism — so balance converts
// to throughput only under multi-core contention, and the committed
// artifact can honestly pin "the layout follows the load" (the imbalance
// ratio) plus "following it is close to free" (this floor), not a
// single-core throughput win that the hardware cannot express. The floor
// absorbs the real migration cost — each handoff pays O(open tasks) COW
// candidate-index updates, and it peaks at 16 shards where the static
// twin's per-shard scans are already short — which on the committed
// artifact runs 0.67x at its worst (16 shards, batched, two feeders; the
// 8-shard pairs all hold ≥ 0.94x).
const rebalanceParityFloor = 0.65

// checkRebalanceGain verifies the candidate's adaptive re-sharding claim
// on the drifting scenarios at ≥ 8 shards: every rebalanced cell is
// compared against its presampled static twin (same scenario, mode, shard
// count, batch size and feeder count — the causal-prefix layout both
// cells start from, see WithLoadPrefix). A gated pair passes when the
// static twin's post-handoff load imbalance is at least (1 + minGain)
// times the rebalanced cell's — live migration demonstrably re-spread the
// drifting load — and the rebalanced cell's throughput holds
// rebalanceParityFloor of the twin's.
//
// Only rushhour pairs in the percall and batch modes gate; at least one
// must exist. Flashcrowd pairs are informational (a flash crowd is a
// transient burst over a uniform background — any balanced pack spreads
// it, so there is little standing imbalance to recover), and async pairs
// are informational too: the drainer ingests in bursts, so the
// rebalancer's arrival clock crosses few interval boundaries and the
// final post-migration imbalance window is a tail fragment, not a steady
// state.
func checkRebalanceGain(cand *throughputArtifact, minGain float64) error {
	type pairKey struct {
		scenario string
		mode     string
		shards   int
		batch    int
		feeders  int
	}
	static := make(map[pairKey]throughputResult)
	rebalanced := make(map[pairKey]throughputResult)
	for _, r := range cand.Results {
		if !driftScenario(r.Scenario) || r.Shards < 8 || !r.Balanced || !r.Presampled {
			continue
		}
		f := r.Feeders
		if f == 0 {
			f = cand.Feeders
		}
		k := pairKey{r.Scenario, r.Mode, r.Shards, r.BatchSize, f}
		if r.Rebalanced {
			rebalanced[k] = r
		} else {
			static[k] = r
		}
	}
	keys := make([]pairKey, 0, len(rebalanced))
	for k := range rebalanced {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.scenario != b.scenario {
			return a.scenario < b.scenario
		}
		if a.mode != b.mode {
			return a.mode < b.mode
		}
		if a.shards != b.shards {
			return a.shards < b.shards
		}
		if a.batch != b.batch {
			return a.batch < b.batch
		}
		return a.feeders < b.feeders
	})
	gated, failures := 0, 0
	for _, k := range keys {
		r := rebalanced[k]
		s, ok := static[k]
		if !ok {
			continue
		}
		parity := r.WorkersPerSec / s.WorkersPerSec
		imbGain := 0.0
		if r.Imbalance > 0 {
			imbGain = s.Imbalance / r.Imbalance
		}
		verdict := "ok"
		if k.scenario != "rushhour" || k.mode == "async" {
			verdict = "info"
		} else {
			gated++
			switch {
			case imbGain < 1+minGain:
				verdict = "STILL IMBALANCED"
				failures++
			case parity < rebalanceParityFloor:
				verdict = "TOO SLOW"
				failures++
			}
		}
		fmt.Printf("%s %s/shards=%d/batch=%d/feeders=%d: imbalance %.2f → %.2f (%.2fx, %d migration(s)), throughput parity %.2fx %s\n",
			k.scenario, k.mode, k.shards, k.batch, k.feeders, s.Imbalance, r.Imbalance, imbGain, r.Migrations, parity, verdict)
	}
	if gated == 0 {
		return fmt.Errorf("rushhour gain gate: no rushhour rebalanced/presampled pair at ≥ 8 shards in the candidate")
	}
	if failures > 0 {
		return fmt.Errorf("rushhour gain gate: %d pair(s) failed (need imbalance improvement ≥ +%s%% at ≥ %sx throughput parity)",
			failures, strconv.FormatFloat(minGain*100, 'g', -1, 64),
			strconv.FormatFloat(rebalanceParityFloor, 'g', -1, 64))
	}
	fmt.Printf("rushhour gain gate: live re-sharding improves rushhour imbalance by ≥ %s%% at ≥ %sx parity on all %d gated pair(s)\n",
		strconv.FormatFloat(minGain*100, 'g', -1, 64),
		strconv.FormatFloat(rebalanceParityFloor, 'g', -1, 64), gated)
	return nil
}

func readArtifact(path string) (*throughputArtifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var art throughputArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &art, nil
}
