package httpapi

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ltc"
	"ltc/internal/cluster"
)

// fakeNode serves a canned cluster-node surface for client failure-path
// tests: always-ready /stats plus whatever extra routes the caller wires.
func fakeNode(t *testing.T, wire func(*http.ServeMux)) string {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, Stats{})
	})
	if wire != nil {
		wire(mux)
	}
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv.URL
}

func singleNodeTopo(t *testing.T) (*ltc.Instance, *cluster.Topology) {
	t.Helper()
	in := tableIV(t, 0.01, 42)
	topo, err := cluster.Build(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	return in, topo
}

// TestClusterServerValidation exercises every constructor rejection.
func TestClusterServerValidation(t *testing.T) {
	in, topo := singleNodeTopo(t)
	split, err := cluster.SplitInstance(in, topo)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewClusterServer(nil, ltc.AAM, 1, &cluster.Topology{}, 0, split); err == nil {
		t.Fatal("invalid topology accepted")
	}
	if _, err := NewClusterServer(nil, ltc.AAM, 1, topo, 5, split); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if _, err := NewClusterServer(nil, ltc.AAM, 1, topo, 0, &cluster.Split{}); err == nil {
		t.Fatal("mismatched split accepted")
	}
	// The node owns tasks but has no platform (or vice versa).
	if _, err := NewClusterServer(nil, ltc.AAM, 1, topo, 0, split); err == nil {
		t.Fatal("nil platform over a task-owning sub-instance accepted")
	}
	if _, err := NewClusterClient([]string{"http://x"}, &cluster.Topology{}); err == nil {
		t.Fatal("client over invalid topology accepted")
	}
}

// TestClusterServerInconsistentSplit: a topology that routes traffic to a
// node whose split gave it no platform is a deployment bug; the node must
// answer 500, never silently drop or misroute.
func TestClusterServerInconsistentSplit(t *testing.T) {
	in, topo := singleNodeTopo(t)
	split, err := cluster.SplitInstance(in, topo)
	if err != nil {
		t.Fatal(err)
	}
	split.Subs[0] = nil // the inconsistency under test
	cs, err := NewClusterServer(nil, ltc.AAM, 1, topo, 0, split)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	srv := httptest.NewServer(cs.Handler())
	defer srv.Close()
	c := &Client{Base: srv.URL}

	if _, err := c.CheckIn(FromWorker(in.Workers[0])); err == nil || !strings.Contains(err.Error(), "no platform") {
		t.Fatalf("check-in on platform-less owner: %v", err)
	}
	if _, _, err := c.CheckInBatch([]Worker{FromWorker(in.Workers[0])}); err == nil || !strings.Contains(err.Error(), "no platform") {
		t.Fatalf("batch on platform-less owner: %v", err)
	}
	// An empty batch carries no ownership claims and reports the node's
	// trivially-done state.
	if _, done, err := c.CheckInBatch(nil); err != nil || !done {
		t.Fatalf("empty batch: done=%v err=%v", done, err)
	}
	if _, err := c.PostTask(in.Tasks[0].Loc.X, in.Tasks[0].Loc.Y); err == nil || !strings.Contains(err.Error(), "no platform") {
		t.Fatalf("post on platform-less owner: %v", err)
	}
	// Retire of a bad ID: negative is a 400 before any ownership logic.
	if err := c.RetireTask(-1); err == nil || !strings.Contains(err.Error(), "HTTP 400") {
		t.Fatalf("negative retire: %v", err)
	}
}

// TestClusterClientRedirectPathologies drives every redirect failure mode
// through fake nodes that misbehave: redirect loops, out-of-range owners,
// bad batch indices and unreadable 421 bodies.
func TestClusterClientRedirectPathologies(t *testing.T) {
	_, topo := singleNodeTopo(t)

	// A node that endlessly disowns everything back to itself.
	loop := fakeNode(t, func(mux *http.ServeMux) {
		mux.HandleFunc("POST /checkin", func(w http.ResponseWriter, _ *http.Request) {
			writeRedirect(w, 0, -1, "loop")
		})
		mux.HandleFunc("POST /checkin/batch", func(w http.ResponseWriter, _ *http.Request) {
			writeRedirect(w, 0, 0, "loop")
		})
		mux.HandleFunc("POST /tasks", func(w http.ResponseWriter, _ *http.Request) {
			writeRedirect(w, 0, -1, "loop")
		})
		mux.HandleFunc("DELETE /tasks/{id}", func(w http.ResponseWriter, _ *http.Request) {
			writeRedirect(w, 0, -1, "loop")
		})
	})
	cc, err := NewClusterClient([]string{loop}, topo)
	if err != nil {
		t.Fatal(err)
	}
	w := Worker{Index: 1, X: 1, Y: 1}
	if _, err := cc.CheckIn(w); err == nil || !strings.Contains(err.Error(), "redirect loop") {
		t.Fatalf("check-in loop: %v", err)
	}
	if _, _, err := cc.CheckInBatch([]Worker{w}); err == nil || !strings.Contains(err.Error(), "redirect loop") {
		t.Fatalf("batch loop: %v", err)
	}
	if _, err := cc.PostTask(1, 1); err == nil || !strings.Contains(err.Error(), "redirect loop") {
		t.Fatalf("post loop: %v", err)
	}
	if err := cc.RetireTask(0); err == nil || !strings.Contains(err.Error(), "redirect loop") {
		t.Fatalf("retire loop: %v", err)
	}

	// A node that disowns to a node outside the cluster.
	rogue := fakeNode(t, func(mux *http.ServeMux) {
		mux.HandleFunc("POST /checkin", func(w http.ResponseWriter, _ *http.Request) {
			writeRedirect(w, 7, -1, "rogue")
		})
		mux.HandleFunc("POST /checkin/batch", func(w http.ResponseWriter, _ *http.Request) {
			writeRedirect(w, 0, 9, "bad index") // index outside the run
		})
		mux.HandleFunc("POST /tasks", func(w http.ResponseWriter, _ *http.Request) {
			writeRedirect(w, 7, -1, "rogue")
		})
		mux.HandleFunc("DELETE /tasks/{id}", func(w http.ResponseWriter, _ *http.Request) {
			writeRedirect(w, 7, -1, "rogue")
		})
	})
	rc, err := NewClusterClient([]string{rogue}, topo)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.CheckIn(w); err == nil || !strings.Contains(err.Error(), "out-of-range node 7") {
		t.Fatalf("rogue check-in: %v", err)
	}
	if _, _, err := rc.CheckInBatch([]Worker{w}); err == nil || !strings.Contains(err.Error(), "bad index") {
		t.Fatalf("bad batch index: %v", err)
	}
	if _, err := rc.PostTask(1, 1); err == nil || !strings.Contains(err.Error(), "out-of-range node 7") {
		t.Fatalf("rogue post: %v", err)
	}
	if err := rc.RetireTask(0); err == nil || !strings.Contains(err.Error(), "out-of-range node 7") {
		t.Fatalf("rogue retire: %v", err)
	}

	// A 421 whose body is not the redirect JSON.
	garbled := fakeNode(t, func(mux *http.ServeMux) {
		mux.HandleFunc("POST /checkin", func(w http.ResponseWriter, _ *http.Request) {
			w.WriteHeader(http.StatusMisdirectedRequest)
			_, _ = w.Write([]byte("not json"))
		})
	})
	gc := &Client{Base: garbled}
	if _, err := gc.CheckIn(w); err == nil || !strings.Contains(err.Error(), "unreadable redirect body") {
		t.Fatalf("garbled 421: %v", err)
	}

	// RedirectError is a readable error in its own right.
	re := &RedirectError{Owner: 3, Index: -1, Msg: "elsewhere"}
	if msg := re.Error(); !strings.Contains(msg, "node 3") || !strings.Contains(msg, "elsewhere") {
		t.Fatalf("RedirectError message: %q", msg)
	}
}

// TestClusterSyncFailureModes: Sync must reject clusters whose nodes
// misdescribe the task space — wrong cluster size, out-of-range or
// double-claimed tasks, tasks no node owns, or nodes with no info route.
func TestClusterSyncFailureModes(t *testing.T) {
	in, topo := singleNodeTopo(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	fp := topo.Fingerprint()
	allTasks := func() []int {
		ids := make([]int, len(in.Tasks))
		for i := range ids {
			ids[i] = i
		}
		return ids
	}

	cases := []struct {
		name string
		info ClusterInfo
		want string
	}{
		{"wrong size", ClusterInfo{Node: 0, Nodes: 9, TotalTasks: topo.TotalTasks, Fingerprint: fp, Tasks: allTasks()}, "9-node cluster"},
		{"out of range", ClusterInfo{Node: 0, Nodes: 1, TotalTasks: topo.TotalTasks, Fingerprint: fp, Tasks: []int{topo.TotalTasks + 1}}, "out-of-range task"},
		{"double claim", ClusterInfo{Node: 0, Nodes: 1, TotalTasks: topo.TotalTasks, Fingerprint: fp, Tasks: append(allTasks(), 0)}, "claimed by two nodes"},
		{"uncovered", ClusterInfo{Node: 0, Nodes: 1, TotalTasks: topo.TotalTasks, Fingerprint: fp, Tasks: allTasks()[1:]}, "owned by no node"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			url := fakeNode(t, func(mux *http.ServeMux) {
				mux.HandleFunc("GET /cluster/info", func(w http.ResponseWriter, _ *http.Request) {
					writeJSON(w, http.StatusOK, tc.info)
				})
			})
			cc, err := NewClusterClient([]string{url}, topo)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := cc.Sync(ctx); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want %q", err, tc.want)
			}
		})
	}

	// A gateway with no /cluster/info at all (e.g. a plain ltcd).
	plain := fakeNode(t, nil)
	cc, err := NewClusterClient([]string{plain}, topo)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Sync(ctx); err == nil {
		t.Fatal("plain gateway accepted as a cluster node")
	}
	// Stats against a vanished node surfaces the transport error.
	dead, err := NewClusterClient([]string{"http://127.0.0.1:1"}, topo)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dead.Stats(); err == nil {
		t.Fatal("stats against a dead node succeeded")
	}
	shortCtx, cancelShort := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancelShort()
	if _, err := dead.Sync(shortCtx); err == nil || !strings.Contains(err.Error(), "not ready") {
		t.Fatalf("sync against a dead node: %v", err)
	}
}

// TestClusterStreamGapIsFatal: a per-node sequence hole on the merged
// stream (an event irrecoverably lost) must surface as a hard error from
// Next, never as a silent skip; reconnect replays (duplicates) must fold
// away silently.
func TestClusterStreamGapIsFatal(t *testing.T) {
	_, topo := singleNodeTopo(t)
	send := func(w http.ResponseWriter, seqs ...uint64) {
		w.Header().Set("Content-Type", "text/event-stream")
		for _, seq := range seqs {
			_, _ = fmt.Fprintf(w, "event: task_completed\ndata: {\"seq\":%d,\"kind\":\"task_completed\",\"task\":0}\n\n", seq)
		}
		w.(http.Flusher).Flush()
	}
	gappy := fakeNode(t, func(mux *http.ServeMux) {
		mux.HandleFunc("GET /events", func(w http.ResponseWriter, r *http.Request) {
			send(w, 1, 3)
			<-r.Context().Done()
		})
	})
	cc, err := NewClusterClient([]string{gappy}, topo)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	stream := cc.OpenClusterEvents(ctx)
	defer stream.Close()
	if e, err := stream.Next(); err != nil || e.ClusterSeq != 1 {
		t.Fatalf("first event: (%+v, %v)", e, err)
	}
	if _, err := stream.Next(); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("gap not fatal: %v", err)
	}

	// Duplicates — a reconnect replaying an already-folded event — are
	// folded away, and the stream ends with io.EOF on cancellation.
	dupy := fakeNode(t, func(mux *http.ServeMux) {
		mux.HandleFunc("GET /events", func(w http.ResponseWriter, r *http.Request) {
			send(w, 1, 1, 2)
			<-r.Context().Done()
		})
	})
	dc, err := NewClusterClient([]string{dupy}, topo)
	if err != nil {
		t.Fatal(err)
	}
	dctx, dcancel := context.WithCancel(context.Background())
	defer dcancel()
	ds := dc.OpenClusterEvents(dctx)
	defer ds.Close()
	for want := uint64(1); want <= 2; want++ {
		e, err := ds.Next()
		if err != nil || e.ClusterSeq != want || e.Seq != want {
			t.Fatalf("event %d: (%+v, %v)", want, e, err)
		}
	}
}

// TestClusterFoldedPolling covers the derived polling views over a live
// cluster: Progress and Done fold the same per-node snapshots Stats does.
func TestClusterFoldedPolling(t *testing.T) {
	in := tableIV(t, 0.01, 42)
	f := newCluster(t, in, 2, 1, ltc.AAM, 42)
	if f.cc.Nodes() != 2 {
		t.Fatalf("Nodes() = %d", f.cc.Nodes())
	}
	if done, err := f.cc.Done(); err != nil || done {
		t.Fatalf("fresh cluster done=%v err=%v", done, err)
	}
	resolved, total, err := f.cc.Progress()
	if err != nil || resolved != 0 || total != len(in.Tasks) {
		t.Fatalf("fresh progress: %d/%d err=%v", resolved, total, err)
	}
	for _, w := range in.Workers {
		if f.cc.Complete() {
			break
		}
		if _, err := f.cc.CheckIn(FromWorker(w)); err != nil {
			t.Fatal(err)
		}
	}
	if done, err := f.cc.Done(); err != nil || !done {
		t.Fatalf("finished cluster done=%v err=%v", done, err)
	}
	if resolved, total, err = f.cc.Progress(); err != nil || resolved != total {
		t.Fatalf("finished progress: %d/%d err=%v", resolved, total, err)
	}
}

// TestClusterBatchRedirectHeal: a batched feed through a stale table heals
// mid-batch (the run re-splits from the healed worker) and still completes.
func TestClusterBatchRedirectHeal(t *testing.T) {
	in := tableIV(t, 0.01, 42)
	f := newCluster(t, in, 2, 1, ltc.AAM, 42)
	bad := *f.topo
	bad.TileNode = make([]int, len(f.topo.TileNode))
	for i, n := range f.topo.TileNode {
		bad.TileNode[i] = (n + 1) % f.topo.Nodes
	}
	cc, err := NewClusterClient(f.urls, &bad)
	if err != nil {
		t.Fatal(err)
	}
	const batch = 7
	for i := 0; i < len(in.Workers); i += batch {
		j := min(i+batch, len(in.Workers))
		chunk := make([]Worker, j-i)
		for k, w := range in.Workers[i:j] {
			chunk[k] = FromWorker(w)
		}
		_, done, err := cc.CheckInBatch(chunk)
		if err != nil {
			t.Fatalf("batch at %d: %v", i, err)
		}
		if done {
			break
		}
	}
	st, err := cc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done || st.Resolved != len(in.Tasks) {
		t.Fatalf("batched self-healed run incomplete: %+v", st)
	}
	// A post through the stale table heals too.
	if _, err := cc.PostTask(in.Tasks[0].Loc.X, in.Tasks[0].Loc.Y); err != nil {
		t.Fatalf("post through stale table: %v", err)
	}
}
