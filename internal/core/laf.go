package core

import (
	"ltc/internal/model"
	"ltc/internal/pqueue"
)

// LAF is the Largest Acc* First online algorithm (Algorithm 2). For every
// arriving worker it assigns the K eligible, still-uncompleted tasks with
// the largest Acc*(w, t), maintained in a bounded top-K heap. Competitive
// ratio 7.967 under the paper's assumptions (Theorem 5).
type LAF struct {
	in    *model.Instance
	ci    *model.CandidateIndex
	state *taskState
	topk  *pqueue.TopK[model.Candidate]
	cands []model.Candidate
	out   []model.TaskID
}

// NewLAF returns a fresh LAF solver for the instance.
func NewLAF(in *model.Instance, ci *model.CandidateIndex) *LAF {
	return &LAF{
		in:    in,
		ci:    ci,
		state: newTaskState(len(in.Tasks), in.Delta()),
		// Rank candidates by Acc*; ties keep the first-seen task (lower
		// TaskID), matching the paper's Example 3 walk-through.
		topk: pqueue.NewTopK(in.K, func(a, b model.Candidate) bool {
			return a.AccStar < b.AccStar
		}),
	}
}

// Name implements Online.
func (l *LAF) Name() string { return "LAF" }

// Done implements Online.
func (l *LAF) Done() bool { return l.state.allDone() }

// Arrive implements Online (Algorithm 2 lines 4-10).
func (l *LAF) Arrive(w model.Worker) []model.TaskID { return l.ArriveVia(w, l.ci) }

// ArriveVia implements BatchOnline: Arrive drawing candidates from src.
func (l *LAF) ArriveVia(w model.Worker, src model.CandidateSource) []model.TaskID {
	if l.state.allDone() {
		return nil
	}
	l.cands = src.Candidates(w, l.cands[:0])
	l.topk.Reset()
	for _, c := range l.cands {
		if l.state.done(c.Task) {
			continue
		}
		l.topk.Offer(c)
	}
	l.out = l.out[:0]
	for l.topk.Len() > 0 {
		c := l.topk.PopMin()
		l.state.add(c.Task, c.AccStar)
		l.out = append(l.out, c.Task)
	}
	return l.out
}
