// Command ltcd serves a live LTC Platform over HTTP — the service-grade
// face of the reproduction. It generates a Table IV preset task set (or a
// Table V city trace's tasks), binds the chosen online algorithm behind
// the sharded dispatch layer, and exposes the v2 service API:
//
//	POST   /checkin        check one worker in            → Receipt
//	POST   /checkin/batch  check a worker batch in        → receipts + done
//	POST   /tasks          post a task mid-stream         → global TaskID
//	DELETE /tasks/{id}     retire a task
//	GET    /stats          progress / latency snapshot
//	GET    /events         Server-Sent Events stream (task_posted,
//	                       task_retired, task_completed, platform_done)
//
// Examples:
//
//	ltcd                                  # AAM over Table IV @1%, :8080
//	ltcd -scale 0.05 -shards 8 -algo LAF -addr 127.0.0.1:9000
//	ltcd -shards 8 -rebalance             # adaptive live re-sharding
//	ltcd -city newyork -scale 0.005
//
// Drive it end to end with the bundled load generator:
//
//	go run ./cmd/ltcbench -exp loadgen -url http://127.0.0.1:8080 -scale 0.01
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"ltc"
	"ltc/internal/httpapi"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ltcd: ")

	var (
		addr      = flag.String("addr", ":8080", "listen address")
		algoName  = flag.String("algo", "AAM", "online algorithm: LAF, AAM or Random")
		shards    = flag.Int("shards", 0, "spatial shard count (0 = GOMAXPROCS)")
		balanced  = flag.Bool("balanced", false, "use the load-aware balanced tile→shard layout instead of fixed striping")
		rebalance = flag.Bool("rebalance", false, "adaptively re-shard at runtime: forecast per-tile load online and migrate hot tiles between shards (implies -balanced)")
		scale     = flag.Float64("scale", 0.01, "workload scale factor")
		seed      = flag.Uint64("seed", 42, "generation seed (also drives Random)")
		epsilon   = flag.Float64("epsilon", 0.10, "tolerable error rate ε")
		k         = flag.Int("k", 6, "worker capacity K")
		city      = flag.String("city", "", "serve a city trace's tasks instead: newyork or tokyo")
		queueCap  = flag.Int("queue-cap", 0, "per-shard async queue capacity (0 = default)")
		eventBuf  = flag.Int("event-buffer", 0, "per-subscriber event buffer (0 = default)")
	)
	flag.Parse()

	in, err := buildInstance(*city, *scale, *epsilon, *k, *seed)
	if err != nil {
		log.Fatal(err)
	}
	// Resolve the GOMAXPROCS default here so /stats can echo the exact
	// count a client must request to mirror this platform's spatial grid.
	requested := *shards
	if requested == 0 {
		requested = runtime.GOMAXPROCS(0)
	}
	popts := []ltc.Option{ltc.WithShards(requested), ltc.WithSeed(*seed),
		ltc.WithQueueCap(*queueCap), ltc.WithEventBuffer(*eventBuf)}
	if *balanced {
		popts = append(popts, ltc.WithBalancedShards())
	}
	if *rebalance {
		popts = append(popts, ltc.WithRebalance())
	}
	plat, err := ltc.NewPlatform(in, ltc.Algorithm(*algoName), popts...)
	if err != nil {
		log.Fatal(err)
	}
	defer plat.Close()
	srv := &http.Server{Addr: *addr, Handler: httpapi.NewHandler(plat, ltc.Algorithm(*algoName), requested)}

	layout := "striped"
	if plat.Balanced() {
		layout = "balanced"
	}
	if plat.Rebalancing() {
		layout = "balanced+rebalance"
	}
	log.Printf("serving %s over %d tasks (%d shards, %s layout, ε=%.2f, K=%d) on %s",
		*algoName, len(in.Tasks), plat.Shards(), layout, in.Epsilon, in.K, *addr)

	// Graceful shutdown on SIGINT/SIGTERM: stop accepting, let in-flight
	// requests (including open SSE streams, bounded by the timeout) finish.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		<-stop
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	if err := <-done; err != nil {
		log.Printf("shutdown: %v", err)
	}
	if plat.Rebalancing() {
		log.Printf("final: latency=%d workers=%d done=%v migrations=%d",
			plat.Latency(), plat.WorkersSeen(), plat.Done(), plat.Migrations())
	} else {
		log.Printf("final: latency=%d workers=%d done=%v", plat.Latency(), plat.WorkersSeen(), plat.Done())
	}
}

// buildInstance generates the served task set: the synthetic Table IV
// preset by default, or a Table V city trace. The generated worker stream
// is discarded — workers arrive over the wire — but generating with the
// same flags client-side reproduces it, which is how the loadgen drives
// deterministic end-to-end runs.
func buildInstance(city string, scale, epsilon float64, k int, seed uint64) (*ltc.Instance, error) {
	switch city {
	case "":
		cfg := ltc.DefaultWorkload().Scale(scale)
		cfg.Epsilon = epsilon
		cfg.K = k
		cfg.Seed = seed
		return cfg.Generate()
	case "newyork", "tokyo":
		cfg := ltc.NewYork()
		if city == "tokyo" {
			cfg = ltc.Tokyo()
		}
		cfg = cfg.Scale(scale)
		cfg.Epsilon = epsilon
		cfg.K = k
		cfg.Seed = seed
		tr, err := ltc.GenerateCity(cfg)
		if err != nil {
			return nil, err
		}
		return tr.Instance, nil
	default:
		return nil, fmt.Errorf("unknown city %q (want newyork or tokyo)", city)
	}
}
