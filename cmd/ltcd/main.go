// Command ltcd serves a live LTC Platform over HTTP — the service-grade
// face of the reproduction. It generates a Table IV preset task set (or a
// Table V city trace's tasks), binds the chosen online algorithm behind
// the sharded dispatch layer, and exposes the v2 service API:
//
//	POST   /checkin        check one worker in            → Receipt
//	POST   /checkin/batch  check a worker batch in        → receipts + done
//	POST   /tasks          post a task mid-stream         → global TaskID
//	DELETE /tasks/{id}     retire a task
//	GET    /stats          progress / latency snapshot
//	GET    /events         Server-Sent Events stream (task_posted,
//	                       task_retired, task_completed, platform_done)
//
// Examples:
//
//	ltcd                                  # AAM over Table IV @1%, :8080
//	ltcd -scale 0.05 -shards 8 -algo LAF -addr 127.0.0.1:9000
//	ltcd -shards 8 -rebalance             # adaptive live re-sharding
//	ltcd -city newyork -scale 0.005
//
// Cluster mode splits one workload across N processes by a static
// tile→node topology (see CONCURRENCY.md, "Cluster tier"): write the
// topology once, then boot one node per slot with the same workload flags:
//
//	ltcd -cluster init=3 -topology topo.json        # writes the table, exits
//	ltcd -cluster node=0 -topology topo.json -addr :8080
//	ltcd -cluster node=1 -topology topo.json -addr :8081
//	ltcd -cluster node=2 -topology topo.json -addr :8082
//
// Drive it end to end with the bundled load generator:
//
//	go run ./cmd/ltcbench -exp loadgen -url http://127.0.0.1:8080 -scale 0.01
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ltc"
	"ltc/internal/cluster"
	"ltc/internal/httpapi"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ltcd: ")

	var (
		addr      = flag.String("addr", ":8080", "listen address")
		algoName  = flag.String("algo", "AAM", "online algorithm: LAF, AAM or Random")
		shards    = flag.Int("shards", 0, "spatial shard count (0 = GOMAXPROCS)")
		balanced  = flag.Bool("balanced", false, "use the load-aware balanced tile→shard layout instead of fixed striping")
		rebalance = flag.Bool("rebalance", false, "adaptively re-shard at runtime: forecast per-tile load online and migrate hot tiles between shards (implies -balanced)")
		scale     = flag.Float64("scale", 0.01, "workload scale factor")
		seed      = flag.Uint64("seed", 42, "generation seed (also drives Random)")
		epsilon   = flag.Float64("epsilon", 0.10, "tolerable error rate ε")
		k         = flag.Int("k", 6, "worker capacity K")
		city      = flag.String("city", "", "serve a city trace's tasks instead: newyork or tokyo")
		queueCap  = flag.Int("queue-cap", 0, "per-shard async queue capacity (0 = default)")
		eventBuf  = flag.Int("event-buffer", 0, "per-subscriber event buffer (0 = default)")
		clusterIn = flag.String("cluster", "", "cluster role: init=N writes an N-node topology file and exits; node=I serves cluster node I (both need -topology)")
		topoPath  = flag.String("topology", "", "cluster topology file (written by -cluster init, read by -cluster node)")
	)
	flag.Parse()

	in, err := buildInstance(*city, *scale, *epsilon, *k, *seed)
	if err != nil {
		log.Fatal(err)
	}
	clusterNode := -1
	if *clusterIn != "" {
		if *topoPath == "" {
			log.Fatal("-cluster needs -topology")
		}
		mode, val, ok := strings.Cut(*clusterIn, "=")
		n, aerr := strconv.Atoi(val)
		if !ok || aerr != nil {
			log.Fatalf("bad -cluster %q (want init=N or node=I)", *clusterIn)
		}
		switch mode {
		case "init":
			// Write the cluster-wide topology artifact and exit: every node
			// (and the loadgen) derives the same table from the same workload
			// flags, so the file is mostly a boot-time cross-check anchor.
			topo, err := cluster.Build(in, n)
			if err != nil {
				log.Fatal(err)
			}
			if err := topo.Save(*topoPath); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote %d-node topology (%d tiles, fingerprint %s) to %s",
				topo.Nodes, len(topo.TileNode), topo.Fingerprint(), *topoPath)
			return
		case "node":
			clusterNode = n
		default:
			log.Fatalf("bad -cluster %q (want init=N or node=I)", *clusterIn)
		}
	}
	// Resolve the GOMAXPROCS default here so /stats can echo the exact
	// count a client must request to mirror this platform's spatial grid.
	requested := *shards
	if requested == 0 {
		requested = runtime.GOMAXPROCS(0)
	}
	popts := []ltc.Option{ltc.WithShards(requested), ltc.WithSeed(*seed),
		ltc.WithQueueCap(*queueCap), ltc.WithEventBuffer(*eventBuf)}
	if *balanced {
		popts = append(popts, ltc.WithBalancedShards())
	}
	if *rebalance {
		popts = append(popts, ltc.WithRebalance())
	}
	var (
		plat    *ltc.Platform
		handler http.Handler
	)
	if clusterNode >= 0 {
		topo, err := cluster.Load(*topoPath)
		if err != nil {
			log.Fatal(err)
		}
		if clusterNode >= topo.Nodes {
			log.Fatalf("node %d outside the %d-node topology", clusterNode, topo.Nodes)
		}
		// The topology file must describe the exact tiling this node's
		// workload flags generate; serving a mismatched table would misroute
		// silently, so the boot cross-check is fatal.
		rebuilt, err := cluster.Build(in, topo.Nodes)
		if err != nil {
			log.Fatal(err)
		}
		if rebuilt.Fingerprint() != topo.Fingerprint() {
			log.Fatalf("topology fingerprint %s does not match these workload flags (%s) — regenerate with -cluster init=%d",
				topo.Fingerprint(), rebuilt.Fingerprint(), topo.Nodes)
		}
		split, err := cluster.SplitInstance(in, topo)
		if err != nil {
			log.Fatal(err)
		}
		owned := 0
		if sub := split.Subs[clusterNode]; sub != nil {
			owned = len(sub.Global)
			plat, err = ltc.NewPlatform(sub.In, ltc.Algorithm(*algoName), popts...)
			if err != nil {
				log.Fatal(err)
			}
		}
		cs, err := httpapi.NewClusterServer(plat, ltc.Algorithm(*algoName), requested, topo, clusterNode, split)
		if err != nil {
			log.Fatal(err)
		}
		defer cs.Close()
		handler = cs.Handler()
		log.Printf("cluster node %d/%d: serving %d of %d tasks (fingerprint %s) on %s",
			clusterNode, topo.Nodes, owned, topo.TotalTasks, topo.Fingerprint(), *addr)
	} else {
		plat, err = ltc.NewPlatform(in, ltc.Algorithm(*algoName), popts...)
		if err != nil {
			log.Fatal(err)
		}
		handler = httpapi.NewHandler(plat, ltc.Algorithm(*algoName), requested)
		layout := "striped"
		if plat.Balanced() {
			layout = "balanced"
		}
		if plat.Rebalancing() {
			layout = "balanced+rebalance"
		}
		log.Printf("serving %s over %d tasks (%d shards, %s layout, ε=%.2f, K=%d) on %s",
			*algoName, len(in.Tasks), plat.Shards(), layout, in.Epsilon, in.K, *addr)
	}
	if plat != nil {
		defer plat.Close()
	}
	srv := &http.Server{Addr: *addr, Handler: handler}

	// Graceful shutdown on SIGINT/SIGTERM: stop accepting, let in-flight
	// requests (including open SSE streams, bounded by the timeout) finish.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		<-stop
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	if err := <-done; err != nil {
		log.Printf("shutdown: %v", err)
	}
	if plat == nil {
		log.Printf("final: node owned no tasks")
		return
	}
	if plat.Rebalancing() {
		log.Printf("final: latency=%d workers=%d done=%v migrations=%d",
			plat.Latency(), plat.WorkersSeen(), plat.Done(), plat.Migrations())
	} else {
		log.Printf("final: latency=%d workers=%d done=%v", plat.Latency(), plat.WorkersSeen(), plat.Done())
	}
}

// buildInstance generates the served task set: the synthetic Table IV
// preset by default, or a Table V city trace. The generated worker stream
// is discarded — workers arrive over the wire — but generating with the
// same flags client-side reproduces it, which is how the loadgen drives
// deterministic end-to-end runs.
func buildInstance(city string, scale, epsilon float64, k int, seed uint64) (*ltc.Instance, error) {
	switch city {
	case "":
		cfg := ltc.DefaultWorkload().Scale(scale)
		cfg.Epsilon = epsilon
		cfg.K = k
		cfg.Seed = seed
		return cfg.Generate()
	case "newyork", "tokyo":
		cfg := ltc.NewYork()
		if city == "tokyo" {
			cfg = ltc.Tokyo()
		}
		cfg = cfg.Scale(scale)
		cfg.Epsilon = epsilon
		cfg.K = k
		cfg.Seed = seed
		tr, err := ltc.GenerateCity(cfg)
		if err != nil {
			return nil, err
		}
		return tr.Instance, nil
	default:
		return nil, fmt.Errorf("unknown city %q (want newyork or tokyo)", city)
	}
}
