package events

import (
	"sync"
	"testing"

	"ltc/internal/model"
)

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		TaskPosted:    "task_posted",
		TaskRetired:   "task_retired",
		TaskCompleted: "task_completed",
		PlatformDone:  "platform_done",
		TileMigrated:  "tile_migrated",
		Kind(99):      "unknown",
	} {
		if got := k.String(); got != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestPublishWithoutSubscribersIsNoop(t *testing.T) {
	b := NewBus()
	if b.Active() {
		t.Fatal("fresh bus active")
	}
	b.Publish(Event{Kind: TaskCompleted, Task: 1})
	s := b.Subscribe(4)
	defer s.Close()
	select {
	case e := <-s.Events():
		t.Fatalf("pre-subscription event delivered: %+v", e)
	default:
	}
}

func TestSequencingAndFanout(t *testing.T) {
	b := NewBus()
	a, c := b.Subscribe(8), b.Subscribe(8)
	b.Publish(Event{Kind: TaskCompleted, Task: 3, Worker: 12})
	b.Publish(Event{Kind: PlatformDone, Task: -1})
	a.Close()
	c.Close()
	for name, s := range map[string]*Subscription{"a": a, "c": c} {
		var got []Event
		for e := range s.Events() {
			got = append(got, e)
		}
		if len(got) != 2 {
			t.Fatalf("%s: %d events", name, len(got))
		}
		if got[0].Seq != 1 || got[1].Seq != 2 {
			t.Fatalf("%s: seqs %d,%d", name, got[0].Seq, got[1].Seq)
		}
		if got[0].Kind != TaskCompleted || got[0].Task != 3 || got[0].Worker != 12 {
			t.Fatalf("%s: event 0 = %+v", name, got[0])
		}
	}
}

func TestSlowSubscriberDropsNotBlocks(t *testing.T) {
	b := NewBus()
	slow := b.Subscribe(1)
	fast := b.Subscribe(16)
	for i := 0; i < 10; i++ {
		b.Publish(Event{Kind: TaskCompleted, Task: model.TaskID(i)})
	}
	if got := slow.Dropped(); got != 9 {
		t.Fatalf("slow dropped %d, want 9", got)
	}
	if got := fast.Dropped(); got != 0 {
		t.Fatalf("fast dropped %d, want 0", got)
	}
	fast.Close()
	n := 0
	for range fast.Events() {
		n++
	}
	if n != 10 {
		t.Fatalf("fast received %d, want 10", n)
	}
	// The slow subscriber still holds the first event; later ones were
	// dropped, so the received sequence has a gap.
	slow.Close()
	e, ok := <-slow.Events()
	if !ok || e.Seq != 1 {
		t.Fatalf("slow first event %+v ok=%v", e, ok)
	}
}

func TestSubscribeBufferFloor(t *testing.T) {
	b := NewBus()
	s := b.Subscribe(0)
	defer s.Close()
	b.Publish(Event{Kind: TaskPosted, Task: 7})
	if e := <-s.Events(); e.Task != 7 {
		t.Fatalf("event %+v", e)
	}
}

func TestCloseIsIdempotentAndDetaches(t *testing.T) {
	b := NewBus()
	s := b.Subscribe(2)
	s.Close()
	s.Close()
	if b.Active() {
		t.Fatal("bus active after last unsubscribe")
	}
	b.Publish(Event{Kind: TaskRetired, Task: 1}) // must not panic on closed channel
	if _, ok := <-s.Events(); ok {
		t.Fatal("event delivered after Close")
	}
}

func TestConcurrentPublishSubscribe(t *testing.T) {
	b := NewBus()
	const publishers, each = 4, 200
	sub := b.Subscribe(publishers * each)
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				b.Publish(Event{Kind: TaskCompleted, Task: model.TaskID(p*each + i)})
			}
		}(p)
	}
	churn := make(chan struct{})
	go func() { // subscriber churn concurrent with publishing
		defer close(churn)
		for i := 0; i < 50; i++ {
			s := b.Subscribe(1)
			s.Close()
		}
	}()
	wg.Wait()
	<-churn
	sub.Close()
	seen := make(map[model.TaskID]bool)
	var lastSeq uint64
	for e := range sub.Events() {
		if e.Seq <= lastSeq {
			t.Fatalf("seq not increasing: %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		if seen[e.Task] {
			t.Fatalf("task %d delivered twice", e.Task)
		}
		seen[e.Task] = true
	}
	if len(seen) != publishers*each {
		t.Fatalf("received %d events, want %d", len(seen), publishers*each)
	}
}

// TestSeqGapsEqualDropped is the bus conservation property: under
// concurrent publishers (migration events mixed in) and any buffer size,
// every subscriber's received sequence is strictly increasing and the sum
// of its gaps equals exactly its Dropped() count — no event is ever both
// delivered and counted dropped, and none vanishes uncounted.
func TestSeqGapsEqualDropped(t *testing.T) {
	b := NewBus()
	const publishers, each = 4, 500
	// Subscribers across the contention spectrum: a tiny buffer that drops
	// most events, a mid-size one, and one large enough to keep everything.
	subs := []*Subscription{b.Subscribe(1), b.Subscribe(64), b.Subscribe(publishers * each)}
	drain := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if i%10 == 0 {
					b.Publish(Event{Kind: TileMigrated, Task: -1, Tile: i, FromShard: p, ToShard: p + 1})
				} else {
					b.Publish(Event{Kind: TaskCompleted, Task: model.TaskID(p*each + i)})
				}
			}
		}(p)
	}
	// A concurrent consumer on the mid-size subscription keeps its buffer
	// draining while publishers race, so its gap pattern is irregular.
	var midGaps, midReceived uint64
	go func() {
		defer close(drain)
		var last uint64
		for e := range subs[1].Events() {
			if e.Seq <= last {
				t.Errorf("mid subscriber seq not increasing: %d after %d", e.Seq, last)
				return
			}
			midGaps += e.Seq - last - 1
			last = e.Seq
			midReceived++
		}
		// Events dropped after the last delivered one: the channel only
		// closes after every publisher finished, so the final bus sequence
		// is exactly the publish count.
		midGaps += uint64(publishers*each) - last
	}()
	wg.Wait()
	for _, s := range subs {
		s.Close()
	}
	<-drain

	total := uint64(publishers * each)
	check := func(name string, received, gaps, dropped uint64) {
		t.Helper()
		if gaps != dropped {
			t.Fatalf("%s: seq gaps %d != dropped %d", name, gaps, dropped)
		}
		if received+dropped != total {
			t.Fatalf("%s: received %d + dropped %d != published %d", name, received, dropped, total)
		}
	}
	for i, name := range []string{"tiny", "", "large"} {
		if name == "" {
			continue // the mid subscriber folded concurrently below
		}
		var received, gaps, last uint64
		for e := range subs[i].Events() {
			if e.Seq <= last {
				t.Fatalf("%s: seq not increasing: %d after %d", name, e.Seq, last)
			}
			gaps += e.Seq - last - 1
			last = e.Seq
			received++
		}
		gaps += total - last // events dropped after the last delivered one
		check(name, received, gaps, subs[i].Dropped())
	}
	check("mid", midReceived, midGaps, subs[1].Dropped())
	if subs[2].Dropped() != 0 {
		t.Fatalf("large subscriber dropped %d", subs[2].Dropped())
	}
}
