package dispatch

import "ltc/internal/model"

// TaskGrant is one assignment handed to a worker at check-in time: the
// global task, the Acc* quality credit the assignment contributed, and
// whether it pushed the task over its quality threshold δ. The solvers
// never assign a completed task, so Completed marks exactly the assignment
// that finished each task — a caller watching its own receipts learns of
// every completion it caused without re-polling TaskStatuses.
//
// Grants are carved in blocks of 1024 on the check-in hot path, so the
// field order is alignment-optimal (Credit first), 16 bytes instead of the
// declaration-ordered 24 — the fieldalign analyzer keeps it that way.
//
//ltc:hot
type TaskGrant struct {
	Credit    float64
	Task      model.TaskID
	Completed bool
}

// Receipt is the structured result of one check-in — everything the
// platform decided at arrival time, so service callers never poll after a
// check-in:
//
//   - Worker echoes the global arrival index the check-in was accounted
//     under.
//   - Shard is the spatial shard the worker routed to, or -1 when the
//     check-in bounced with ErrDone before routing (the platform was
//     already complete).
//   - Assignments lists the granted tasks in assignment order (nil when
//     the worker received none — also when its shard had already completed
//     all its tasks).
//   - Done reports whether the platform had no open tasks once this
//     check-in was ingested. Under concurrent posting it is a snapshot, not
//     a promise — a PostTask racing the check-in can reopen the platform.
type Receipt struct {
	Worker      int
	Shard       int
	Assignments []TaskGrant
	Done        bool
}

// Tasks returns just the granted task IDs, in assignment order — the v1
// shape of CheckIn's result. It allocates; hot callers should range over
// Assignments instead.
func (r Receipt) Tasks() []model.TaskID {
	if len(r.Assignments) == 0 {
		return nil
	}
	out := make([]model.TaskID, len(r.Assignments))
	for i, g := range r.Assignments {
		out[i] = g.Task
	}
	return out
}
