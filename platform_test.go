package ltc

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPlatformSingleShardMatchesSession is the equivalence contract of the
// dispatch layer: a 1-shard Platform fed the worker stream sequentially
// must produce byte-identical arrangements to Session for the
// deterministic online algorithms.
func TestPlatformSingleShardMatchesSession(t *testing.T) {
	in := tinyInstance(t)
	for _, algo := range []Algorithm{LAF, AAM} {
		sess, err := NewSession(in, algo)
		if err != nil {
			t.Fatal(err)
		}
		plat, err := NewPlatform(in, algo, PlatformOptions{Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		if plat.Shards() != 1 {
			t.Fatalf("%s: shards = %d", algo, plat.Shards())
		}
		for _, w := range in.Workers {
			if sess.Done() {
				break
			}
			st, err := sess.Arrive(w)
			if err != nil {
				t.Fatal(err)
			}
			pt, err := plat.CheckIn(w)
			if err != nil {
				t.Fatal(err)
			}
			// Receipts must agree bit for bit: same grants, credits and
			// completion flags (Session's shard is always 0; the 1-shard
			// platform routes everything to shard 0 too).
			if st.Worker != w.Index || pt.Worker != w.Index {
				t.Fatalf("%s worker %d: receipt workers %d vs %d", algo, w.Index, st.Worker, pt.Worker)
			}
			if st.Shard != 0 || pt.Shard != 0 {
				t.Fatalf("%s worker %d: shards %d vs %d", algo, w.Index, st.Shard, pt.Shard)
			}
			if st.Done != pt.Done {
				t.Fatalf("%s worker %d: done %v vs %v", algo, w.Index, st.Done, pt.Done)
			}
			if len(st.Assignments) != len(pt.Assignments) {
				t.Fatalf("%s worker %d: session assigned %v, platform %v", algo, w.Index, st.Assignments, pt.Assignments)
			}
			for i := range st.Assignments {
				if st.Assignments[i] != pt.Assignments[i] {
					t.Fatalf("%s worker %d: grant %d differs (%+v vs %+v)",
						algo, w.Index, i, st.Assignments[i], pt.Assignments[i])
				}
			}
		}
		if !plat.Done() || !sess.Done() {
			t.Fatalf("%s: done mismatch (session %v, platform %v)", algo, sess.Done(), plat.Done())
		}
		if sess.Latency() != plat.Latency() {
			t.Fatalf("%s: latency %d vs %d", algo, sess.Latency(), plat.Latency())
		}
		sa, pa := sess.Arrangement(), plat.Arrangement()
		if len(sa.Pairs) != len(pa.Pairs) {
			t.Fatalf("%s: pair counts differ", algo)
		}
		for i := range sa.Pairs {
			if sa.Pairs[i] != pa.Pairs[i] {
				t.Fatalf("%s: pair %d = %+v vs %+v", algo, i, sa.Pairs[i], pa.Pairs[i])
			}
		}
		for tid := range sa.Accumulated {
			if sa.Accumulated[tid] != pa.Accumulated[tid] {
				t.Fatalf("%s: task %d credit %v vs %v", algo, tid, sa.Accumulated[tid], pa.Accumulated[tid])
			}
		}
	}
}

// TestPlatformShardedRun: a multi-shard platform completes the workload
// with a valid arrangement and reports per-shard statistics whose global
// latencies reconcile with the platform's.
func TestPlatformShardedRun(t *testing.T) {
	in := tinyInstance(t)
	plat, err := NewPlatform(in, AAM, PlatformOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range in.Workers {
		if plat.Done() {
			break
		}
		if _, err := plat.CheckIn(w); err != nil {
			t.Fatal(err)
		}
	}
	if !plat.Done() {
		t.Fatal("platform incomplete after full stream")
	}
	if err := plat.Arrangement().Validate(in, true); err != nil {
		t.Fatal(err)
	}
	completed, total := plat.Progress()
	if completed != total {
		t.Fatalf("progress %d/%d", completed, total)
	}
	maxGlobal, totWorkers := 0, 0
	for _, s := range plat.ShardStats() {
		totWorkers += s.Workers
		if s.Latency > maxGlobal {
			maxGlobal = s.Latency
		}
	}
	if maxGlobal != plat.Latency() {
		t.Fatalf("shard global latencies max %d != platform latency %d", maxGlobal, plat.Latency())
	}
	if totWorkers != plat.WorkersSeen() {
		t.Fatalf("shard workers %d != seen %d", totWorkers, plat.WorkersSeen())
	}
	credits := plat.Credits(nil)
	if len(credits) != len(in.Tasks) {
		t.Fatalf("credits length %d", len(credits))
	}
}

// TestPlatformShardingChangesLatency documents the latency semantics of
// sharding (see CONCURRENCY.md): workers are only eligible for their own
// shard's tasks, so on a fixed sequential feed the sharded global latency
// is at least the 1-shard (Session-equivalent) latency.
func TestPlatformShardingChangesLatency(t *testing.T) {
	in := tinyInstance(t)
	run := func(shards int) (latency int, perShard []int) {
		plat, err := NewPlatform(in, LAF, PlatformOptions{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range in.Workers {
			if plat.Done() {
				break
			}
			if _, err := plat.CheckIn(w); err != nil {
				t.Fatal(err)
			}
		}
		if !plat.Done() {
			t.Fatalf("shards=%d incomplete", shards)
		}
		for _, s := range plat.ShardStats() {
			perShard = append(perShard, s.Workers)
		}
		return plat.Latency(), perShard
	}
	base, _ := run(1)
	sharded, perShard := run(4)
	if sharded < base {
		t.Fatalf("sharded latency %d < unsharded %d on fixed feed", sharded, base)
	}
	t.Logf("global latency: 1 shard = %d, 4 shards = %d; per-shard worker counts = %v", base, sharded, perShard)
}

// TestPlatformConcurrentCheckIn hammers one platform from many goroutines
// (meaningful under -race).
func TestPlatformConcurrentCheckIn(t *testing.T) {
	in := tinyInstance(t)
	plat, err := NewPlatform(in, AAM, PlatformOptions{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(in.Workers) {
					return
				}
				if _, err := plat.CheckIn(in.Workers[i]); err != nil {
					if errors.Is(err, ErrPlatformDone) {
						return
					}
					t.Errorf("CheckIn: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if !plat.Done() {
		t.Fatal("platform incomplete")
	}
	if err := plat.Arrangement().Validate(in, true); err != nil {
		t.Fatal(err)
	}
}

// TestPlatformValidation covers the construction error paths.
func TestPlatformValidation(t *testing.T) {
	good := tinyInstance(t)
	for _, tc := range []struct {
		name   string
		mutate func(*Instance)
	}{
		{"no tasks", func(in *Instance) { in.Tasks = nil }},
		{"nil model", func(in *Instance) { in.Model = nil }},
		{"bad K", func(in *Instance) { in.K = 0 }},
		{"bad eps", func(in *Instance) { in.Epsilon = 1 }},
	} {
		in := *good
		tc.mutate(&in)
		if _, err := NewPlatform(&in, AAM); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
	if _, err := NewPlatform(good, MCFLTC); !errors.Is(err, ErrUnknownAlgorithm) {
		t.Fatalf("offline algorithm: err = %v", err)
	}
	if _, err := NewPlatform(good, AAM, PlatformOptions{Shards: -2}); err == nil {
		t.Fatal("negative shard count accepted")
	}
	// Shards = 0 defaults to GOMAXPROCS.
	p, err := NewPlatform(good, AAM)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards() < 1 {
		t.Fatalf("default shards = %d", p.Shards())
	}
}

// TestPlatformCheckInErrors covers the runtime error paths.
func TestPlatformCheckInErrors(t *testing.T) {
	in := tinyInstance(t)
	plat, err := NewPlatform(in, LAF, PlatformOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plat.CheckIn(Worker{Index: 0}); err == nil {
		t.Fatal("zero index accepted")
	}
	for _, w := range in.Workers {
		if plat.Done() {
			break
		}
		if _, err := plat.CheckIn(w); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := plat.CheckIn(Worker{Index: 99999, Acc: 0.9}); !errors.Is(err, ErrPlatformDone) {
		t.Fatalf("err = %v, want ErrPlatformDone", err)
	}
}

// TestPlatformTaskLifecycle drives the public dynamic-task API end to end:
// post mid-stream, complete, retire, and read back per-task status with
// absolute and relative latency.
func TestPlatformTaskLifecycle(t *testing.T) {
	in := tinyInstance(t)
	plat, err := NewPlatform(in, AAM, PlatformOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	const postAt = 25
	for _, w := range in.Workers[:postAt] {
		if _, err := plat.CheckIn(w); err != nil && !errors.Is(err, ErrPlatformDone) {
			t.Fatal(err)
		}
	}
	// Post at a location drawn from the task cloud, so it is completable.
	id, err := plat.PostTask(Task{Loc: in.Tasks[0].Loc})
	if err != nil {
		t.Fatal(err)
	}
	if int(id) != len(in.Tasks) {
		t.Fatalf("posted ID %d, want %d", id, len(in.Tasks))
	}
	for _, w := range in.Workers[postAt:] {
		if plat.Done() {
			break
		}
		if _, err := plat.CheckIn(w); err != nil && !errors.Is(err, ErrPlatformDone) {
			t.Fatal(err)
		}
	}
	if !plat.Done() {
		t.Fatal("platform incomplete after full stream")
	}
	st := plat.TaskStatuses()
	if len(st) != len(in.Tasks)+1 {
		t.Fatalf("%d statuses", len(st))
	}
	posted := st[id]
	if posted.PostIndex != postAt || !posted.Completed || posted.Retired {
		t.Fatalf("posted status %+v", posted)
	}
	if posted.LastUsed <= postAt {
		t.Fatalf("posted task completed by worker %d, before its post index %d", posted.LastUsed, postAt)
	}
	if plat.RelativeLatency() > plat.Latency() {
		t.Fatalf("relative %d > absolute %d", plat.RelativeLatency(), plat.Latency())
	}
	// Retire is idempotent on completed tasks and errors on unknown IDs.
	if err := plat.RetireTask(id); err != nil {
		t.Fatal(err)
	}
	if err := plat.RetireTask(TaskID(len(st) + 5)); err == nil {
		t.Fatal("unknown retire accepted")
	}
	resolved, total := plat.Progress()
	if resolved != total || total != len(st) {
		t.Fatalf("progress %d/%d", resolved, total)
	}
}

// TestPlatformChurnReplay replays a generated churn workload (Poisson
// posts + TTL expiry) through the shared ReplayChurn driver and checks the
// lifecycle accounting: every task resolves (completed or expired — the
// TTL contract, including expiries scheduled past the stream's end), and
// the relative latency never exceeds the absolute one.
func TestPlatformChurnReplay(t *testing.T) {
	cfg := DefaultWorkload().Scale(0.01)
	cc := DefaultChurn(cfg)
	cc.TTL = 300
	cw, err := cc.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if late := cw.PostedLate(); late*5 < cw.TotalTasks {
		t.Fatalf("only %d/%d tasks posted late; churn fixture must exceed 20%%", late, cw.TotalTasks)
	}
	rep, err := ReplayChurn(cw, LAF, PlatformOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Statuses) != cw.TotalTasks {
		t.Fatalf("%d statuses, want %d", len(rep.Statuses), cw.TotalTasks)
	}
	if rep.Completed+rep.Expired != cw.TotalTasks {
		t.Fatalf("completed %d + expired %d ≠ total %d (TTL must resolve everything)",
			rep.Completed, rep.Expired, cw.TotalTasks)
	}
	for _, st := range rep.Statuses {
		if !st.Completed && !st.Retired {
			t.Fatalf("task %d neither completed nor expired", st.ID)
		}
	}
	if rep.RelativeLatency > rep.AbsoluteLatency {
		t.Fatalf("relative %d > absolute %d", rep.RelativeLatency, rep.AbsoluteLatency)
	}
}

// TestReplayChurnFiresTrailingExpiries pins the TTL-past-stream case: a TTL
// longer than the worker stream still resolves every task — the retire
// events scheduled beyond the last arrival fire after the stream drains.
func TestReplayChurnFiresTrailingExpiries(t *testing.T) {
	cfg := DefaultWorkload().Scale(0.01)
	cfg.NumWorkers = 60 // far too few workers to complete 30 tasks
	cc := DefaultChurn(cfg)
	cc.TTL = 1000 // every expiry lands past the 60-worker stream
	cw, err := cc.Generate()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayChurn(cw, AAM, PlatformOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed+rep.Expired != cw.TotalTasks {
		t.Fatalf("completed %d + expired %d ≠ total %d", rep.Completed, rep.Expired, cw.TotalTasks)
	}
	if rep.Expired == 0 {
		t.Fatal("fixture must leave tasks to expire after the stream")
	}
}

// TestSessionErrorPaths extends the Session error coverage: out-of-order
// after progress, repeated indices, and arrival after completion.
func TestSessionErrorPaths(t *testing.T) {
	in := tinyInstance(t)
	sess, err := NewSession(in, LAF)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := sess.Arrive(in.Workers[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Replaying an already-seen index must fail without advancing.
	if _, err := sess.Arrive(in.Workers[1]); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("replay: err = %v", err)
	}
	// Skipping ahead must fail too.
	if _, err := sess.Arrive(in.Workers[7]); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("skip: err = %v", err)
	}
	if sess.WorkersSeen() != 3 {
		t.Fatalf("WorkersSeen = %d after rejected arrivals", sess.WorkersSeen())
	}
	// Credits snapshot has one entry per task.
	if c := sess.Credits(nil); len(c) != len(in.Tasks) {
		t.Fatalf("credits length %d", len(c))
	}
}
