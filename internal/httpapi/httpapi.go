// Package httpapi is the HTTP/JSON surface of the ltcd gateway: wire DTOs,
// an http.Handler serving a live ltc.Platform, and a typed client used by
// the ltcbench loadgen and the end-to-end tests.
//
// Routes (all JSON unless noted):
//
//	POST   /checkin        one Worker        → Receipt
//	POST   /checkin/batch  {"workers":[…]}   → {"receipts":[…],"done":bool}
//	POST   /tasks          {"x":…,"y":…}     → {"id":…}
//	DELETE /tasks/{id}                       → 204 (404 for unknown IDs)
//	GET    /stats                            → Stats
//	GET    /events         Server-Sent Events: one frame per platform event
//
// A check-in bounced because the platform is complete is not an HTTP
// error: it returns 200 with the bounced receipt ("done":true,
// "bounced":true), matching ltc.ErrPlatformDone's in-process contract.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"ltc"
)

// Worker is the wire form of ltc.Worker.
type Worker struct {
	Index int     `json:"index"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Acc   float64 `json:"acc"`
}

// Model converts to the in-process worker.
func (w Worker) Model() ltc.Worker {
	out := ltc.Worker{Index: w.Index, Acc: w.Acc}
	out.Loc.X, out.Loc.Y = w.X, w.Y
	return out
}

// FromWorker converts an in-process worker to its wire form.
func FromWorker(w ltc.Worker) Worker {
	return Worker{Index: w.Index, X: w.Loc.X, Y: w.Loc.Y, Acc: w.Acc}
}

// Grant is the wire form of ltc.TaskGrant.
type Grant struct {
	Task      int     `json:"task"`
	Credit    float64 `json:"credit"`
	Completed bool    `json:"completed"`
}

// Receipt is the wire form of ltc.Receipt, plus Bounced marking check-ins
// refused with ErrPlatformDone (the worker was counted but not routed).
type Receipt struct {
	Worker      int     `json:"worker"`
	Shard       int     `json:"shard"`
	Assignments []Grant `json:"assignments,omitempty"`
	Done        bool    `json:"done"`
	Bounced     bool    `json:"bounced,omitempty"`
}

// FromReceipt converts an in-process receipt.
func FromReceipt(r ltc.Receipt, bounced bool) Receipt {
	out := Receipt{Worker: r.Worker, Shard: r.Shard, Done: r.Done, Bounced: bounced}
	for _, g := range r.Assignments {
		out.Assignments = append(out.Assignments, Grant{Task: int(g.Task), Credit: g.Credit, Completed: g.Completed})
	}
	return out
}

// BatchRequest is POST /checkin/batch's body.
type BatchRequest struct {
	Workers []Worker `json:"workers"`
}

// BatchResponse is POST /checkin/batch's result: the receipts of the
// ingested prefix, and Done = true when the platform completed (possibly
// mid-batch, leaving the tail unobserved — see ltc.Platform.CheckInBatch).
type BatchResponse struct {
	Receipts []Receipt `json:"receipts"`
	Done     bool      `json:"done"`
}

// TaskRequest is POST /tasks's body (the new task's location).
type TaskRequest struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// TaskResponse is POST /tasks's result.
type TaskResponse struct {
	ID int `json:"id"`
}

// ShardStat is the wire form of ltc.ShardStats.
type ShardStat struct {
	Tasks     int `json:"tasks"`
	Completed int `json:"completed"`
	Retired   int `json:"retired"`
	Workers   int `json:"workers"`
	Offered   int `json:"offered"`
	// QueueDepth is the shard's CheckInAsync backlog at snapshot time (0
	// when the async path is unused).
	QueueDepth int `json:"queue_depth"`
	Latency    int `json:"latency"`
	// MigratedIn/MigratedOut count the tasks this shard adopted from and
	// handed to other shards through live tile migration (0 unless the
	// gateway runs with -rebalance).
	MigratedIn  int `json:"migrated_in,omitempty"`
	MigratedOut int `json:"migrated_out,omitempty"`
}

// Stats is GET /stats's result: the platform's full progress snapshot.
// Shards is the effective shard count; RequestedShards echoes what the
// gateway asked NewPlatform for (they differ when empty spatial tiles
// collapsed), which is what a client must request to mirror the gateway's
// spatial grid in-process. Balanced reports whether the load-aware
// tile→shard layout is active, and Imbalance the busiest shard's routed
// check-ins over the per-shard mean (1.0 = even) — the skew-diagnosis
// pair for gateways serving hotspot traffic.
type Stats struct {
	Algo            string  `json:"algo"`
	Shards          int     `json:"shards"`
	RequestedShards int     `json:"requested_shards"`
	Balanced        bool    `json:"balanced,omitempty"`
	Tasks           int     `json:"tasks"`
	Latency         int     `json:"latency"`
	RelativeLatency int     `json:"relative_latency"`
	WorkersSeen     int     `json:"workers_seen"`
	Resolved        int     `json:"resolved"`
	Total           int     `json:"total"`
	Done            bool    `json:"done"`
	Imbalance       float64 `json:"imbalance"`
	// Rebalanced reports whether adaptive live re-sharding is active, and
	// Migrations how many tile migrations have committed so far.
	Rebalanced bool        `json:"rebalanced,omitempty"`
	Migrations int         `json:"migrations,omitempty"`
	ShardStats []ShardStat `json:"shard_stats"`
}

// Event is the wire form of ltc.Event; Kind is the event kind's string
// name (task_posted, task_retired, task_completed, platform_done,
// tile_migrated), also used as the SSE event name. Tile, FromShard and
// ToShard are only meaningful on tile_migrated frames (whose Task is -1).
type Event struct {
	Seq       uint64 `json:"seq"`
	Kind      string `json:"kind"`
	Task      int    `json:"task"`
	Worker    int    `json:"worker,omitempty"`
	PostIndex int    `json:"post_index,omitempty"`
	Tile      int    `json:"tile,omitempty"`
	FromShard int    `json:"from_shard,omitempty"`
	ToShard   int    `json:"to_shard,omitempty"`
}

// FromEvent converts an in-process platform event.
func FromEvent(e ltc.Event) Event {
	return Event{Seq: e.Seq, Kind: e.Kind.String(), Task: int(e.Task), Worker: e.Worker, PostIndex: e.PostIndex,
		Tile: e.Tile, FromShard: e.FromShard, ToShard: e.ToShard}
}

// Server serves a live Platform over HTTP.
type Server struct {
	p         *ltc.Platform
	algo      string
	requested int
	mux       *http.ServeMux
}

// NewHandler wraps the platform in the gateway's HTTP surface. algo and
// requestedShards (the resolved shard count passed to NewPlatform — never
// 0) are echoed in /stats so clients can mirror the run in-process.
func NewHandler(p *ltc.Platform, algo ltc.Algorithm, requestedShards int) http.Handler {
	s := &Server{p: p, algo: string(algo), requested: requestedShards, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /checkin", s.handleCheckIn)
	s.mux.HandleFunc("POST /checkin/batch", s.handleCheckInBatch)
	s.mux.HandleFunc("POST /tasks", s.handlePostTask)
	s.mux.HandleFunc("DELETE /tasks/{id}", s.handleRetireTask)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /events", s.handleEvents)
	return s.mux
}

// writeJSON writes v with the given status; encoding errors at this point
// can only mean a dead connection, so they are dropped.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// httpError is the JSON error body for non-2xx responses.
type httpError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, httpError{Error: err.Error()})
}

func (s *Server) handleCheckIn(w http.ResponseWriter, r *http.Request) {
	var body Worker
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad worker: %w", err))
		return
	}
	rec, err := s.p.CheckIn(body.Model())
	switch {
	case errors.Is(err, ltc.ErrPlatformDone):
		writeJSON(w, http.StatusOK, FromReceipt(rec, true))
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusOK, FromReceipt(rec, false))
	}
}

func (s *Server) handleCheckInBatch(w http.ResponseWriter, r *http.Request) {
	var body BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad batch: %w", err))
		return
	}
	ws := make([]ltc.Worker, len(body.Workers))
	for i, ww := range body.Workers {
		ws[i] = ww.Model()
	}
	recs, err := s.p.CheckInBatch(ws)
	resp := BatchResponse{Done: errors.Is(err, ltc.ErrPlatformDone)}
	if err != nil && !resp.Done {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The platform can complete exactly on the batch's last worker, in
	// which case CheckInBatch returns no error (nothing was truncated);
	// the final receipt still carries the done flag the response promises.
	if n := len(recs); n > 0 && recs[n-1].Done {
		resp.Done = true
	}
	for _, rec := range recs {
		resp.Receipts = append(resp.Receipts, FromReceipt(rec, false))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePostTask(w http.ResponseWriter, r *http.Request) {
	var body TaskRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad task: %w", err))
		return
	}
	var task ltc.Task
	task.Loc.X, task.Loc.Y = body.X, body.Y
	id, err := s.p.PostTask(task)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, TaskResponse{ID: int(id)})
}

func (s *Server) handleRetireTask(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad task id: %w", err))
		return
	}
	if err := s.p.RetireTask(ltc.TaskID(id)); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, statsSnapshot(s.p, s.algo, s.requested))
}

// statsSnapshot assembles the /stats DTO from a live platform; shared by
// the plain gateway and the cluster node handler.
func statsSnapshot(p *ltc.Platform, algo string, requested int) Stats {
	resolved, total := p.Progress()
	st := Stats{
		Algo:            algo,
		Shards:          p.Shards(),
		RequestedShards: requested,
		Balanced:        p.Balanced(),
		Latency:         p.Latency(),
		RelativeLatency: p.RelativeLatency(),
		WorkersSeen:     p.WorkersSeen(),
		Resolved:        resolved,
		Total:           total,
		Done:            p.Done(),
		Imbalance:       p.Imbalance(),
		Rebalanced:      p.Rebalancing(),
		Migrations:      p.Migrations(),
	}
	for _, sh := range p.ShardStats() {
		st.ShardStats = append(st.ShardStats, ShardStat{
			Tasks: sh.Tasks, Completed: sh.Completed, Retired: sh.Retired,
			Workers: sh.Workers, Offered: sh.Offered, QueueDepth: sh.QueueDepth,
			Latency: sh.Latency, MigratedIn: sh.MigratedIn, MigratedOut: sh.MigratedOut,
		})
		st.Tasks += sh.Tasks
	}
	return st
}

// handleEvents streams the platform's event feed as Server-Sent Events:
// one frame per event, named by the event kind, with the JSON Event as
// data. The subscription starts at the first event published after the
// request reaches the platform; a client that stops reading (or whose
// buffer falls behind the stream) is dropped by the write path, never the
// platform. The stream stays open after platform_done — a PostTask can
// revive the run — until the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	sub := s.p.Subscribe()
	defer sub.Close()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case e, ok := <-sub.Events():
			if !ok {
				return
			}
			data, err := json.Marshal(FromEvent(e))
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Kind, data); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}
