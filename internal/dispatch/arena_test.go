package dispatch

import "testing"

// TestGrantArenaCarve pins the arena contract: carves are caller-owned
// (full slice expressions, so appending to one never clobbers another),
// zeroed, and requests larger than the block size get their own backing
// block instead of a truncated one.
func TestGrantArenaCarve(t *testing.T) {
	var a grantArena

	first := a.carve(3)
	if len(first) != 3 || cap(first) != 3 {
		t.Fatalf("carve(3): len=%d cap=%d, want 3/3", len(first), cap(first))
	}
	first[0] = TaskGrant{Task: 7}
	second := a.carve(2)
	grown := append(first, TaskGrant{Task: 9}) // must reallocate, not spill
	if second[0] != (TaskGrant{}) || second[1] != (TaskGrant{}) {
		t.Fatalf("append to a prior carve clobbered the next one: %+v", second)
	}
	if grown[3].Task != 9 || first[0].Task != 7 {
		t.Fatal("carved slices lost their own writes")
	}

	// A request above the block size allocates a dedicated block of exactly
	// that size; the arena is left empty for the next carve.
	big := a.carve(grantBlockSize + 5)
	if len(big) != grantBlockSize+5 || cap(big) != grantBlockSize+5 {
		t.Fatalf("oversized carve: len=%d cap=%d, want %d", len(big), cap(big), grantBlockSize+5)
	}
	for i := range big {
		if big[i] != (TaskGrant{}) {
			t.Fatalf("oversized carve not zeroed at %d: %+v", i, big[i])
		}
	}
	if next := a.carve(1); len(next) != 1 || &next[0] == &big[len(big)-1] {
		t.Fatal("carve after an exactly-consumed block did not start a fresh one")
	}
}
