package hardness

import (
	"errors"
	"math"

	"ltc/internal/core"
	"ltc/internal/model"
)

// CompetitiveLowerBound is Theorem 4's bound: no deterministic online
// algorithm for LTC has a competitive ratio below 5.5.
const CompetitiveLowerBound = 5.5

// AdversaryResult reports one play of the Theorem 4 game.
type AdversaryResult struct {
	// AlgorithmLatency is the latency the online algorithm incurred on the
	// punishing instance; OptimalLatency is 2 (the offline optimum: the
	// first worker serves the other task, the second finishes the first).
	AlgorithmLatency int
	OptimalLatency   int
	// FirstChoice is the task the algorithm gave the first worker.
	FirstChoice model.TaskID
}

// Ratio returns the achieved competitive ratio.
func (r AdversaryResult) Ratio() float64 {
	return float64(r.AlgorithmLatency) / float64(r.OptimalLatency)
}

// AdversaryGame plays the Theorem 4 adversary against a deterministic
// online algorithm. Two tasks, δ = 1 (ε = e^(-1/2)), K = 1. The first
// worker is perfect on both tasks (Acc* = 1). Whichever task the algorithm
// assigns it, all later workers are perfect on that (now finished) task and
// weak on the other (Acc* = 0.1, the worst admissible credit), so the
// algorithm needs 10 more workers while the offline optimum uses 2.
//
// Because the two candidate futures agree on the first worker, running the
// algorithm on the "punish t0" instance reveals its first choice; if it
// chose t1 instead, the game is replayed on the "punish t1" instance.
func AdversaryGame(factory core.OnlineFactory) (AdversaryResult, error) {
	const futureWorkers = 12 // 10 needed; slack so the stream never runs dry
	// Guess that the algorithm's first move is t0, i.e. t1 stays open and
	// is the task to punish. The first worker's view is identical in both
	// candidate instances, so a deterministic algorithm makes the same
	// first choice either way; if it actually chose t1, replay with the
	// adversary punishing t0.
	res, err := playPunishing(factory, 1, futureWorkers)
	if err != nil {
		return AdversaryResult{}, err
	}
	if res.FirstChoice == 1 {
		res, err = playPunishing(factory, 0, futureWorkers)
		if err != nil {
			return AdversaryResult{}, err
		}
	}
	return res, nil
}

// ErrNoFirstAssignment is returned when the algorithm declines to assign
// the first worker at all (no deterministic greedy under test does).
var ErrNoFirstAssignment = errors.New("hardness: online algorithm assigned nothing to the perfect first worker")

// playPunishing runs the algorithm on the instance whose later workers are
// useless for task `punished` being open (perfect on the other task).
func playPunishing(factory core.OnlineFactory, punished model.TaskID, futureWorkers int) (AdversaryResult, error) {
	in := adversarialInstance(punished, futureWorkers)
	ci := model.NewCandidateIndex(in)
	algo := factory(in, ci)
	first := algo.Arrive(in.Workers[0])
	if len(first) == 0 {
		return AdversaryResult{}, ErrNoFirstAssignment
	}
	res := AdversaryResult{FirstChoice: first[0], OptimalLatency: 2}
	latency := in.Workers[0].Index
	for _, w := range in.Workers[1:] {
		if algo.Done() {
			break
		}
		if assigned := algo.Arrive(w); len(assigned) > 0 {
			latency = w.Index
		}
	}
	if !algo.Done() {
		return AdversaryResult{}, core.ErrIncomplete
	}
	res.AlgorithmLatency = latency
	return res, nil
}

// adversarialInstance builds Theorem 4's two-task instance where workers
// after the first are perfect on task 1−punished... i.e. perfect on the
// task the algorithm completed first and weak (Acc* = 0.1) on `punished`.
func adversarialInstance(punished model.TaskID, futureWorkers int) *model.Instance {
	nWorkers := 1 + futureWorkers
	weak := (1 + math.Sqrt(0.1)) / 2 // AccStar(weak) = 0.1
	vals := [][]float64{make([]float64, nWorkers), make([]float64, nWorkers)}
	vals[0][0], vals[1][0] = 1, 1 // the first worker is perfect on both
	other := 1 - punished
	for w := 1; w < nWorkers; w++ {
		vals[other][w] = 1
		vals[punished][w] = weak
	}
	in := &model.Instance{
		Tasks:   []model.Task{{ID: 0}, {ID: 1}},
		Epsilon: math.Exp(-0.5), // δ = 1
		K:       1,
		Model:   model.MatrixAccuracy{Vals: vals},
		MinAcc:  0.5,
	}
	for w := 1; w <= nWorkers; w++ {
		in.Workers = append(in.Workers, model.Worker{Index: w, Acc: 1})
	}
	return in
}
