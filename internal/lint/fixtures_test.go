package lint_test

import (
	"testing"

	"ltc/internal/lint"
	"ltc/internal/lint/linttest"
)

// The fixture suites check both directions for each analyzer: every
// deliberate violation under testdata/src fires, every clean idiom stays
// silent, and //ltclint:ignore waivers actually suppress.

func TestLockOrderFixtures(t *testing.T) {
	linttest.Run(t, lint.LockOrder, "testdata/src/lockorder")
}

func TestNoAllocFixtures(t *testing.T) {
	linttest.Run(t, lint.NoAlloc, "testdata/src/noalloc")
}

func TestCowSnapshotFixtures(t *testing.T) {
	linttest.Run(t, lint.CowSnapshot, "testdata/src/cowsnapshot")
}

func TestAtomicFieldFixtures(t *testing.T) {
	linttest.Run(t, lint.AtomicField, "testdata/src/atomicfield")
}

func TestFieldAlignFixtures(t *testing.T) {
	linttest.Run(t, lint.FieldAlign, "testdata/src/fieldalign")
}

// TestLtclintCleanOverRepo is the in-repo gate behind the CI job: the whole
// module must analyze with zero unwaived findings.
func TestLtclintCleanOverRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and analyzes the whole module")
	}
	findings, err := lint.Run("../..", "./...")
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("unwaived finding: %s", f)
	}
}
