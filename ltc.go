// Package ltc is a from-scratch Go implementation of "Latency-oriented
// Task Completion via Spatial Crowdsourcing" (Zeng, Tong, Chen, Zhou —
// ICDE 2018).
//
// A spatial-crowdsourcing platform holds a set of location-specific binary
// micro tasks; crowd workers arrive one by one (check-ins) and each can
// answer at most K questions about nearby points of interest. The LTC
// problem asks for a task-worker arrangement that completes every task —
// accumulated quality credit Σ(2·Acc−1)² reaching δ = 2·ln(1/ε), which by
// Hoeffding's inequality caps the weighted-majority vote error at ε — while
// minimising the arrival index of the last worker used (the latency).
//
// The package exposes:
//
//   - the problem model (Instance, Task, Worker, accuracy models);
//   - the paper's algorithms — offline MCF-LTC (minimum-cost-flow batches)
//     and Base-off; online LAF, AAM and Random — plus an exact solver for
//     tiny instances;
//   - Solve for one-shot runs, Session for single-threaded streaming use,
//     and Platform for concurrent check-in streams over spatial shards —
//     per call (CheckIn), batched (CheckInBatch) or asynchronous behind
//     bounded per-shard queues (CheckInAsync/CheckInAsyncCtx/Flush); every
//     check-in returns a structured Receipt, and Platform.Subscribe streams
//     lifecycle events (task posted/retired/completed, platform done); see
//     CONCURRENCY.md;
//   - composable functional options (WithShards, WithSeed, WithQueueCap,
//     WithIndex, …) accepted uniformly by Solve, NewSession, NewPlatform
//     and ReplayChurn;
//   - workload generators reproducing the paper's synthetic (Table IV) and
//     Foursquare-style (Table V) datasets, plus named skewed scenarios
//     (hotspot, flashcrowd, rushhour, sparse-frontier — NewScenario) and a
//     load-aware shard layout surviving them (WithBalancedShards, with
//     per-shard load accounts in ShardStats and Platform.Imbalance);
//   - a voting simulator to verify completed tasks empirically meet ε;
//   - cmd/ltcd, an HTTP/JSON gateway serving a Platform over the wire
//     (check-ins, task lifecycle, stats, and an SSE event stream).
//
// Quick start:
//
//	cfg := ltc.DefaultWorkload().Scale(0.01)
//	in, _ := cfg.Generate()
//	res, _ := ltc.Solve(in, ltc.AAM)
//	fmt.Println("latency:", res.Latency)
package ltc

import (
	"errors"
	"fmt"

	"ltc/internal/core"
	"ltc/internal/model"
)

// Problem-model types, re-exported from the implementation packages so the
// whole public surface lives under this package.
type (
	// Task is a micro task t = <l_t, ε> (location + shared error rate).
	Task = model.Task
	// TaskID indexes a task within an Instance.
	TaskID = model.TaskID
	// Worker is a crowd worker (arrival index, location, historical
	// accuracy); capacity K is shared and lives on the Instance.
	Worker = model.Worker
	// Instance is a complete LTC problem.
	Instance = model.Instance
	// Assignment is one (worker, task) pair of an arrangement.
	Assignment = model.Assignment
	// Arrangement is a set of assignments with accumulated quality credit.
	Arrangement = model.Arrangement
	// AccuracyModel predicts Acc(w, t) ∈ [0, 1].
	AccuracyModel = model.AccuracyModel
	// SigmoidDistance is the paper's Eq. 1 accuracy model.
	SigmoidDistance = model.SigmoidDistance
	// MatrixAccuracy is a table-backed accuracy model (Table I style).
	MatrixAccuracy = model.MatrixAccuracy
	// ConstantAccuracy predicts a fixed accuracy for every pair.
	ConstantAccuracy = model.ConstantAccuracy
	// Candidate is a task a worker is eligible for, with its credit.
	Candidate = model.Candidate
	// CandidateIndex answers eligibility queries for an instance.
	CandidateIndex = model.CandidateIndex
	// Result reports one algorithm run (latency, arrangement, cost).
	Result = core.Result
)

// NewCandidateIndex builds the spatial eligibility index for an instance.
// Solve and Session build one on demand; pre-building lets callers share it
// across runs.
var NewCandidateIndex = model.NewCandidateIndex

// Delta returns δ = 2·ln(1/ε), the per-task quality credit threshold.
func Delta(epsilon float64) float64 { return model.Delta(epsilon) }

// AccStar returns (2·acc − 1)², the quality credit of one assignment.
func AccStar(acc float64) float64 { return model.AccStar(acc) }

// SpamThreshold is the minimum historical accuracy the platform accepts.
const SpamThreshold = model.SpamThreshold

// Algorithm selects one of the implemented solvers.
type Algorithm string

// The implemented algorithms.
const (
	// MCFLTC is the paper's offline Algorithm 1 (min-cost-flow batches,
	// 7.5-approximation).
	MCFLTC Algorithm = "MCF-LTC"
	// BaseOff is the offline greedy baseline (scarcity-first).
	BaseOff Algorithm = "Base-off"
	// LAF is online Algorithm 2, Largest Acc* First (7.967-competitive).
	LAF Algorithm = "LAF"
	// AAM is online Algorithm 3, Average And Maximum (7.738-competitive).
	AAM Algorithm = "AAM"
	// RandomAssign is the online random baseline.
	RandomAssign Algorithm = "Random"
	// Exact is a branch-and-bound optimum for tiny instances.
	Exact Algorithm = "Exact"
)

// Algorithms returns the five evaluated algorithms in the paper's order.
func Algorithms() []Algorithm {
	return []Algorithm{BaseOff, MCFLTC, RandomAssign, LAF, AAM}
}

// IsOnline reports whether the algorithm commits assignments at worker
// arrival time (no knowledge of future workers).
func (a Algorithm) IsOnline() bool {
	switch a {
	case LAF, AAM, RandomAssign:
		return true
	}
	return false
}

// ErrUnknownAlgorithm is returned for algorithm names outside the set above.
var ErrUnknownAlgorithm = errors.New("ltc: unknown algorithm")

// ErrIncomplete is returned when the worker stream ends before every task
// reaches its quality threshold. The partial Result is still returned.
var ErrIncomplete = core.ErrIncomplete

// SolveOptions tunes Solve and NewSession.
//
// Deprecated: use the composable functional options (WithSeed, WithIndex,
// WithBatchMultiplier, WithExactMaxNodes) instead. SolveOptions implements
// Option, so existing call sites keep working.
type SolveOptions struct {
	// Seed drives the Random algorithm (ignored by the deterministic
	// algorithms). Zero is a valid seed.
	Seed uint64
	// Index reuses a prebuilt candidate index (must match the instance).
	Index *CandidateIndex
	// BatchMultiplier scales MCF-LTC's batch size m (default 1.0).
	BatchMultiplier float64
	// ExactMaxNodes bounds the Exact solver's search (default 5e6).
	ExactMaxNodes int64
}

func (c config) indexFor(in *Instance) *CandidateIndex {
	if c.index != nil {
		return c.index
	}
	return model.NewCandidateIndex(in)
}

// Solve runs the chosen algorithm on the instance and returns its Result.
// Online algorithms are fed the instance's workers in arrival order. A
// Result with ErrIncomplete is returned when the workers run out first.
func Solve(in *Instance, algo Algorithm, opts ...Option) (*Result, error) {
	c := newConfig(opts)
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("ltc: %w", err)
	}
	ci := c.indexFor(in)
	switch algo {
	case MCFLTC:
		return core.RunOffline(in, ci, &core.MCFLTC{BatchMultiplier: c.batchMultiplier})
	case BaseOff:
		return core.RunOffline(in, ci, core.BaseOff{})
	case Exact:
		return core.RunOffline(in, ci, &core.Exact{MaxNodes: c.exactMaxNodes})
	case LAF, AAM, RandomAssign:
		factory, err := onlineFactory(algo, c.seed)
		if err != nil {
			return nil, err
		}
		return core.RunOnline(in, ci, factory)
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownAlgorithm, algo)
	}
}

func onlineFactory(algo Algorithm, seed uint64) (core.OnlineFactory, error) {
	switch algo {
	case LAF:
		return func(in *Instance, ci *CandidateIndex) core.Online { return core.NewLAF(in, ci) }, nil
	case AAM:
		return func(in *Instance, ci *CandidateIndex) core.Online { return core.NewAAM(in, ci) }, nil
	case RandomAssign:
		return func(in *Instance, ci *CandidateIndex) core.Online { return core.NewRandom(in, ci, seed) }, nil
	default:
		return nil, fmt.Errorf("%w: %q is not an online algorithm", ErrUnknownAlgorithm, algo)
	}
}

// SolveAll runs every evaluated algorithm and returns results keyed by
// name, for quick comparisons. Incomplete runs are included with their
// partial results.
func SolveAll(in *Instance, opts ...Option) (map[Algorithm]*Result, error) {
	out := make(map[Algorithm]*Result, 5)
	for _, algo := range Algorithms() {
		res, err := Solve(in, algo, opts...)
		if err != nil && !errors.Is(err, ErrIncomplete) {
			return nil, err
		}
		out[algo] = res
	}
	return out, nil
}
