package core

import (
	"fmt"

	"ltc/internal/model"
)

// Engine binds an Online solver to an instance (or to one shard's
// sub-instance) and keeps the bookkeeping every caller of Arrive was
// duplicating: the growing Arrangement, per-task credit, an O(1)
// completed-task counter, and — for the online task lifecycle — each task's
// post index and the last worker index assigned to it. It is the
// single-threaded building block of both the streaming Session API and the
// sharded dispatch layer — callers that share an Engine across goroutines
// must serialize access themselves.
type Engine struct {
	in        *model.Instance
	ci        *model.CandidateIndex
	algo      Online
	arr       *model.Arrangement
	delta     float64
	completed int
	retired   int
	// postIndex[t] is the caller's arrival clock when task t was posted
	// (0 for tasks present from the start); lastUsed[t] is the largest
	// worker index assigned to t so far. Together they give each task's
	// absolute and post-relative latency in O(1). Both are dense int32
	// arrays keyed by TaskID — half the cache traffic of []int on 64-bit
	// when the per-arrival loop touches them.
	postIndex []int32
	lastUsed  []int32
	// retiredMask mirrors the solver's closed set (one bit per task) so the
	// engine can answer per-task status without reaching into solver
	// internals.
	retiredMask []uint64
	// evictedMask marks tasks handed to another engine via EvictTask. An
	// evicted task keeps its dense slot (IDs never shrink) but stops counting
	// toward Progress and Retired: the adopting engine owns those counts now.
	// The three counters carry the evicted tasks' contributions to completed,
	// retired and the dense total, so the accessors can subtract them in O(1).
	evictedMask      []uint64
	evictedCount     int
	evictedCompleted int
	evictedRetired   int
	// batchAlgo is the solver's BatchOnline view, nil when unsupported; pq
	// is the engine's reusable pinned query for batch runs (one snapshot
	// load and one scratch buffer per run instead of per arrival).
	batchAlgo BatchOnline
	pq        *model.PinnedQuery
	// outBuf is the reusable Outcome slice returned by Arrive (valid until
	// the next call), keeping the per-arrival hot path allocation-free.
	// Capacity K from construction; never regrows.
	outBuf []Outcome //ltc:arena
}

// Outcome is one assignment made by Arrive, with the bookkeeping a service
// caller needs to build a check-in receipt without re-polling: the task,
// the Acc* credit the assignment contributed, and whether it pushed the
// task over its quality threshold δ. The paper's solvers never assign a
// completed task, so Completed marks exactly the assignment that finished
// each task.
//
// Outcomes fill the engine's reusable per-arrival buffer; the
// alignment-optimal field order (Credit first) keeps each entry at 16
// bytes instead of the declaration-ordered 24 — enforced by fieldalign.
//
//ltc:hot
type Outcome struct {
	Credit    float64
	Task      model.TaskID
	Completed bool
}

// NewEngine builds an engine around a fresh solver from factory. The
// candidate index must have been built for the same instance. The
// instance's Workers slice may be empty: workers arrive via Arrive.
func NewEngine(in *model.Instance, ci *model.CandidateIndex, factory OnlineFactory) *Engine {
	e := &Engine{
		in:          in,
		ci:          ci,
		algo:        factory(in, ci),
		arr:         model.NewArrangement(len(in.Tasks)),
		delta:       in.Delta(),
		postIndex:   make([]int32, len(in.Tasks)),
		lastUsed:    make([]int32, len(in.Tasks)),
		retiredMask: make([]uint64, (len(in.Tasks)+63)/64),
		evictedMask: make([]uint64, (len(in.Tasks)+63)/64),
		pq:          ci.NewPinnedQuery(),
		// A worker receives at most K assignments, so the outcome buffer
		// never regrows after this.
		outBuf: make([]Outcome, 0, in.K),
	}
	e.batchAlgo, _ = e.algo.(BatchOnline)
	return e
}

// BeginBatch starts a batch run: the candidate index's current snapshot is
// pinned, and until EndBatch every Arrive draws candidates from that pinned
// view through one reusable scratch buffer — no per-arrival atomic snapshot
// load, no pool round-trip. The caller must guarantee the index is not
// mutated (PostTask/RetireTask) during the run; the dispatch layer does so
// by holding the shard mutex. For solvers that don't implement BatchOnline
// this is a no-op and Arrive keeps its per-call path — results are
// identical either way, batching only amortizes the query plumbing.
func (e *Engine) BeginBatch() {
	if e.batchAlgo != nil {
		e.pq.Pin()
	}
}

// EndBatch ends a batch run, releasing the pinned snapshot.
func (e *Engine) EndBatch() {
	if e.batchAlgo != nil {
		e.pq.Unpin()
	}
}

// Arrive offers the next worker to the solver, records its assignments (with
// their Acc* credit) in the arrangement, and returns one Outcome per
// assignment. The returned slice is a reusable engine buffer, valid only
// until the next call. Index discipline is the caller's job: Session
// enforces consecutive indices starting at 1, while the dispatch layer
// feeds each shard a sparse subsequence of global indices (the solvers
// never read Worker.Index, and the arrangement only takes a max over it).
//
//ltc:noalloc
func (e *Engine) Arrive(w model.Worker) []Outcome {
	var out []model.TaskID
	if e.batchAlgo != nil && e.pq.Pinned() {
		out = e.batchAlgo.ArriveVia(w, e.pq)
	} else {
		out = e.algo.Arrive(w)
	}
	e.outBuf = e.outBuf[:0]
	for _, t := range out {
		acc := e.in.Model.Predict(w, e.in.Tasks[t])
		credit := model.AccStar(acc)
		was := model.Completed(e.arr.Accumulated[t], e.delta)
		e.arr.Add(w.Index, t, credit)
		completed := !was && model.Completed(e.arr.Accumulated[t], e.delta)
		if completed {
			e.completed++
		}
		if idx := int32(w.Index); idx > e.lastUsed[t] {
			e.lastUsed[t] = idx
		}
		e.outBuf = append(e.outBuf, Outcome{Task: t, Credit: credit, Completed: completed})
	}
	return e.outBuf
}

// PostTask extends the engine — its candidate index and its solver — with a
// task posted mid-stream. The caller must already have appended t to the
// instance's Tasks slice — the engine checks the dense-ID invariant but
// does not own the task table. postIndex is the caller's arrival clock at
// post time (the dispatch layer passes the largest worker index seen); a
// late-posted task's latency is reported both absolute (worker index) and
// relative to this index.
func (e *Engine) PostTask(t model.Task, postIndex int) error {
	lc, ok := e.algo.(TaskLifecycle)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoLifecycle, e.algo.Name())
	}
	if n := len(e.arr.Accumulated); int(t.ID) != n {
		return fmt.Errorf("core: posted task ID %d does not extend the dense ID space (%d tasks)", t.ID, n)
	}
	if int(t.ID) >= len(e.in.Tasks) || e.in.Tasks[t.ID].Loc != t.Loc {
		return fmt.Errorf("core: posted task %d not present in the instance task table", t.ID)
	}
	// Index first: its dense check is the last failure point, so the solver
	// is only notified once the task is fully visible.
	if err := e.ci.Insert(t); err != nil {
		return err
	}
	e.arr.EnsureTasks(int(t.ID) + 1)
	e.postIndex = append(e.postIndex, int32(postIndex))
	e.lastUsed = append(e.lastUsed, 0)
	if int(t.ID)>>6 == len(e.retiredMask) { // crossed into a fresh word
		e.retiredMask = append(e.retiredMask, 0)
		e.evictedMask = append(e.evictedMask, 0)
	}
	bitClear(e.retiredMask, t.ID)
	lc.PostTask(t.ID)
	return nil
}

// TaskSnapshot is one task's engine state in transit between shards: the
// accumulated Acc* credit, the latency bookkeeping, and the two status bits.
// EvictTask produces it on the migration source; AdoptTask replays it on the
// target so the task's subsequent behaviour — completion threshold, latency
// reporting, assignability — is indistinguishable from never having moved.
type TaskSnapshot struct {
	Credit    float64
	PostIndex int
	LastUsed  int
	Completed bool
	Retired   bool
}

// EvictTask hands task t's state out of this engine for adoption elsewhere.
// The task leaves the candidate index and the solver (its local ID stays
// allocated — dense spaces never shrink — as a closed ghost that is never
// assigned again), and it stops counting toward Progress and Retired: the
// adopting engine owns those counts from now on. Evicting an unknown or
// already-evicted task is an error.
func (e *Engine) EvictTask(t model.TaskID) (TaskSnapshot, error) {
	if t < 0 || int(t) >= len(e.arr.Accumulated) {
		return TaskSnapshot{}, fmt.Errorf("core: evict of unknown task %d", t)
	}
	lc, ok := e.algo.(TaskLifecycle)
	if !ok {
		return TaskSnapshot{}, fmt.Errorf("%w: %s", ErrNoLifecycle, e.algo.Name())
	}
	if bitGet(e.evictedMask, t) {
		return TaskSnapshot{}, fmt.Errorf("core: task %d already evicted", t)
	}
	snap := TaskSnapshot{
		Credit:    e.arr.Accumulated[t],
		PostIndex: int(e.postIndex[t]),
		LastUsed:  int(e.lastUsed[t]),
		Completed: model.Completed(e.arr.Accumulated[t], e.delta),
		Retired:   bitGet(e.retiredMask, t),
	}
	if e.ci.Live(t) {
		if err := e.ci.Remove(t); err != nil {
			return TaskSnapshot{}, err
		}
	}
	// Closing the task in the solver releases the source's interest in it:
	// if it was still open, the solver stops waiting on it for Done — the
	// target's solver now carries that obligation via adopt.
	lc.RetireTask(t)
	bitSet(e.evictedMask, t)
	e.evictedCount++
	if snap.Completed {
		e.evictedCompleted++
	}
	if snap.Retired {
		e.evictedRetired++
	}
	return snap, nil
}

// AdoptTask extends the engine with a task evicted from another engine,
// seeding credit, latency bookkeeping and status from the snapshot. Like
// PostTask, the caller must already have appended t to the instance's Tasks
// slice and t.ID must extend the dense ID space. A retired task is inserted
// into and immediately removed from the candidate index so the index's dense
// ID space stays in lockstep with the engine's.
func (e *Engine) AdoptTask(t model.Task, snap TaskSnapshot) error {
	mig, ok := e.algo.(TaskMigrator)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoMigration, e.algo.Name())
	}
	if n := len(e.arr.Accumulated); int(t.ID) != n {
		return fmt.Errorf("core: adopted task ID %d does not extend the dense ID space (%d tasks)", t.ID, n)
	}
	if int(t.ID) >= len(e.in.Tasks) || e.in.Tasks[t.ID].Loc != t.Loc {
		return fmt.Errorf("core: adopted task %d not present in the instance task table", t.ID)
	}
	if err := e.ci.Insert(t); err != nil {
		return err
	}
	if snap.Retired {
		if err := e.ci.Remove(t.ID); err != nil {
			return err
		}
	}
	e.arr.EnsureTasks(int(t.ID) + 1)
	e.arr.Accumulated[t.ID] = snap.Credit
	e.postIndex = append(e.postIndex, int32(snap.PostIndex))
	e.lastUsed = append(e.lastUsed, int32(snap.LastUsed))
	if int(t.ID)>>6 == len(e.retiredMask) { // crossed into a fresh word
		e.retiredMask = append(e.retiredMask, 0)
		e.evictedMask = append(e.evictedMask, 0)
	}
	if snap.Retired {
		bitSet(e.retiredMask, t.ID)
		e.retired++
	}
	if snap.Completed {
		e.completed++
	}
	mig.AdoptTask(t.ID, snap.Credit, snap.Retired)
	return nil
}

// TaskEvicted reports whether task t has been handed to another engine.
func (e *Engine) TaskEvicted(t model.TaskID) bool { return bitGet(e.evictedMask, t) }

// RetireTask removes task t from play: it leaves the candidate index, the
// solver stops assigning it, and it no longer blocks Done. It reports
// whether the task was still open (below δ and not already retired) —
// retiring a completed or already-retired task is a harmless no-op with
// wasOpen = false.
func (e *Engine) RetireTask(t model.TaskID) (wasOpen bool, err error) {
	if t < 0 || int(t) >= len(e.arr.Accumulated) {
		return false, fmt.Errorf("core: retire of unknown task %d", t)
	}
	lc, ok := e.algo.(TaskLifecycle)
	if !ok {
		return false, fmt.Errorf("%w: %s", ErrNoLifecycle, e.algo.Name())
	}
	if e.ci.Live(t) {
		if err := e.ci.Remove(t); err != nil {
			return false, err
		}
	}
	wasOpen = lc.RetireTask(t)
	if !bitGet(e.retiredMask, t) {
		bitSet(e.retiredMask, t)
		e.retired++
	}
	return wasOpen, nil
}

// Done reports whether every live task has reached the quality threshold.
func (e *Engine) Done() bool { return e.algo.Done() }

// Name returns the bound solver's algorithm name.
func (e *Engine) Name() string { return e.algo.Name() }

// CanMigrate reports whether the bound solver supports live task migration
// — both eviction (TaskLifecycle) and adoption (TaskMigrator). All built-in
// solvers do.
func (e *Engine) CanMigrate() bool {
	_, lc := e.algo.(TaskLifecycle)
	_, mig := e.algo.(TaskMigrator)
	return lc && mig
}

// Instance returns the instance the engine is bound to.
func (e *Engine) Instance() *model.Instance { return e.in }

// Arrangement returns the assignments made so far. The returned value is
// live; callers must not mutate it.
func (e *Engine) Arrangement() *model.Arrangement { return e.arr }

// Progress returns the number of tasks that reached δ and the total number
// of tasks ever tracked (retired tasks included in both totals when they
// completed before retirement). Tasks evicted to another engine count in
// neither: the adopting engine reports them.
func (e *Engine) Progress() (completed, total int) {
	return e.completed - e.evictedCompleted, len(e.arr.Accumulated) - e.evictedCount
}

// Retired returns how many tasks have been retired (whether or not they
// completed first), excluding tasks since evicted to another engine.
func (e *Engine) Retired() int { return e.retired - e.evictedRetired }

// TaskPostIndex returns the arrival clock recorded when task t was posted
// (0 for initial tasks).
func (e *Engine) TaskPostIndex(t model.TaskID) int { return int(e.postIndex[t]) }

// TaskLastUsed returns the largest worker index assigned to task t so far
// (0 when the task has no assignments).
func (e *Engine) TaskLastUsed(t model.TaskID) int { return int(e.lastUsed[t]) }

// TaskCompleted reports whether task t has reached δ.
func (e *Engine) TaskCompleted(t model.TaskID) bool {
	return model.Completed(e.arr.Accumulated[t], e.delta)
}

// TaskRetired reports whether task t has been retired.
func (e *Engine) TaskRetired(t model.TaskID) bool { return bitGet(e.retiredMask, t) }

// Credits appends a snapshot of the per-task accumulated Acc* credit to dst
// and returns the extended slice.
func (e *Engine) Credits(dst []float64) []float64 {
	return append(dst, e.arr.Accumulated...)
}
