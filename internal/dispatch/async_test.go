package dispatch

import (
	"context"
	"errors"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"ltc/internal/geo"
	"ltc/internal/model"
)

// TestAsyncSingleShardMatchesSequential: one shard, one enqueuer — the
// async path is a sequential feed behind a queue, so after Flush every
// observable must match the per-call replay bit for bit.
func TestAsyncSingleShardMatchesSequential(t *testing.T) {
	in := testInstance(t, 0.02)
	want, err := New(in, 1, aamFactory)
	if err != nil {
		t.Fatal(err)
	}
	feedSequential(t, want, in.Workers)

	d, err := New(in, 1, aamFactory)
	if err != nil {
		t.Fatal(err)
	}
	enqueued := 0
	for _, w := range in.Workers {
		if d.Done() {
			break
		}
		if err := d.CheckInAsync(w); err != nil {
			t.Fatal(err)
		}
		enqueued++
	}
	d.Flush()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if !d.Done() {
		t.Fatal("async replay incomplete")
	}
	// The async feeder races the drainer on Done, so it may enqueue a few
	// workers past completion; they are bounced arrivals. Everything else
	// matches exactly.
	if got := d.Arrived(); got != enqueued {
		t.Fatalf("arrived %d, enqueued %d — lost workers", got, enqueued)
	}
	if want.Latency() != d.Latency() {
		t.Fatalf("latency %d, want %d", d.Latency(), want.Latency())
	}
	wa, ga := want.Arrangement(), d.Arrangement()
	if len(wa.Pairs) != len(ga.Pairs) {
		t.Fatalf("%d pairs, want %d", len(ga.Pairs), len(wa.Pairs))
	}
	for i := range wa.Pairs {
		if wa.Pairs[i] != ga.Pairs[i] {
			t.Fatalf("pair %d: %+v, want %+v", i, ga.Pairs[i], wa.Pairs[i])
		}
	}
	ws, gs := want.TaskStatuses(), d.TaskStatuses()
	for i := range ws {
		if ws[i] != gs[i] {
			t.Fatalf("status %d: %+v, want %+v", i, gs[i], ws[i])
		}
	}
}

// TestAsyncBackpressure: a tiny queue with a capped drain still ingests the
// whole stream — backpressure blocks enqueues instead of dropping them —
// and Flush is the completion point.
func TestAsyncBackpressure(t *testing.T) {
	in := testInstance(t, 0.02)
	d, err := New(in, 4, lafFactory, Options{QueueCap: 2, MaxDrain: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var cursor, enqueued atomic.Int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(in.Workers) || d.Done() {
					return
				}
				if err := d.CheckInAsync(in.Workers[i]); err != nil {
					t.Errorf("CheckInAsync: %v", err)
					return
				}
				enqueued.Add(1)
			}
		}()
	}
	wg.Wait()
	d.Flush()
	if got := d.Arrived(); got != int(enqueued.Load()) {
		t.Fatalf("arrived %d, enqueued %d", got, enqueued.Load())
	}
	if !d.Done() {
		t.Fatal("incomplete after full stream")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Routed counts cover exactly the ingested workers in async mode.
	tot := 0
	for _, s := range d.ShardStats() {
		tot += s.Workers
	}
	if tot != d.Arrived() {
		t.Fatalf("shard worker counts %d != arrivals %d", tot, d.Arrived())
	}
}

// TestAsyncCloseSemantics: Close refuses later enqueues, releases blocked
// ones with ErrClosed, ingests the backlog, and is idempotent. Flush on an
// untouched async path returns immediately.
func TestAsyncCloseSemantics(t *testing.T) {
	in := lifecycleInstance(10, 50, 60, 17)
	d, err := New(in, 1, lafFactory, Options{QueueCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	d.Flush() // async never used: immediate no-op

	if err := d.CheckInAsync(model.Worker{Index: 0}); !errors.Is(err, ErrBadWorkerIndex) {
		t.Fatalf("bad index err = %v", err)
	}

	// Stall the drainer on the shard mutex so the queue stays full.
	s := d.shards[0]
	s.mu.Lock()
	if err := d.CheckInAsync(in.Workers[0]); err != nil {
		t.Fatal(err)
	}
	// Wait for the drainer to pop the first worker (freeing its slot)...
	q := d.queues[0]
	for q.depth() != 0 {
		runtime.Gosched()
	}
	// ...refill the ring (QueueCap 1 rounds up to the 2-slot minimum), and
	// block a further enqueue on backpressure.
	for i := 1; i <= len(q.buf); i++ {
		if err := d.CheckInAsync(in.Workers[i]); err != nil {
			t.Fatal(err)
		}
	}
	queued := 1 + len(q.buf) // in flight: stalled w0 + the full ring
	blocked := make(chan error, 1)
	go func() { blocked <- d.CheckInAsync(in.Workers[len(q.buf)+1]) }()
	for d.pending.Load() != int64(queued+1) {
		runtime.Gosched()
	}

	closed := make(chan struct{})
	go func() {
		if err := d.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		close(closed)
	}()
	if err := <-blocked; !errors.Is(err, ErrClosed) {
		t.Fatalf("blocked enqueue err = %v, want ErrClosed", err)
	}
	s.mu.Unlock() // let the drainer ingest the backlog and exit
	<-closed

	if err := d.CheckInAsync(in.Workers[4]); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close enqueue err = %v, want ErrClosed", err)
	}
	if err := d.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	d.Flush()
	// The queued workers were ingested, the refused one was not.
	if got := d.Arrived(); got != queued {
		t.Fatalf("arrived %d, want %d", got, queued)
	}
	// The synchronous paths survive Close.
	if _, err := d.CheckIn(in.Workers[5]); err != nil {
		t.Fatal(err)
	}
	if _, err := d.CheckInBatch(in.Workers[6:9]); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncProducerParkWake: a producer that exhausts its spin budget parks
// on the ring's notFull condvar and is woken by the consumer's post-drain
// broadcast — the parked slow path of the lock-free enqueue, driven
// deterministically by stalling the drainer until the producer's waiter
// registration is visible.
func TestAsyncProducerParkWake(t *testing.T) {
	in := lifecycleInstance(10, 50, 60, 23)
	d, err := New(in, 1, lafFactory, Options{QueueCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := d.shards[0]
	s.mu.Lock()
	if err := d.CheckInAsync(in.Workers[0]); err != nil {
		t.Fatal(err)
	}
	q := d.queues[0]
	for q.depth() != 0 {
		runtime.Gosched()
	}
	for i := 1; i <= len(q.buf); i++ {
		if err := d.CheckInAsync(in.Workers[i]); err != nil {
			t.Fatal(err)
		}
	}
	blocked := make(chan error, 1)
	go func() { blocked <- d.CheckInAsync(in.Workers[len(q.buf)+1]) }()
	for q.waiters.Load() == 0 { // wait until the producer is parked
		runtime.Gosched()
	}
	s.mu.Unlock() // drain resumes: wakeProducers releases the parked enqueue
	if err := <-blocked; err != nil {
		t.Fatalf("parked enqueue err = %v, want nil", err)
	}
	d.Flush()
	if got, want := d.Arrived(), len(q.buf)+2; got != want {
		t.Fatalf("arrived %d, want %d", got, want)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncProducerParkCancel: a producer parked on backpressure with a
// cancellable context is woken by the context's AfterFunc and returns
// ctx.Err() without enqueuing.
func TestAsyncProducerParkCancel(t *testing.T) {
	in := lifecycleInstance(10, 50, 60, 29)
	d, err := New(in, 1, lafFactory, Options{QueueCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := d.shards[0]
	s.mu.Lock()
	if err := d.CheckInAsync(in.Workers[0]); err != nil {
		t.Fatal(err)
	}
	q := d.queues[0]
	for q.depth() != 0 {
		runtime.Gosched()
	}
	for i := 1; i <= len(q.buf); i++ {
		if err := d.CheckInAsync(in.Workers[i]); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	blocked := make(chan error, 1)
	go func() { blocked <- d.CheckInAsyncCtx(ctx, in.Workers[len(q.buf)+1]) }()
	for q.waiters.Load() == 0 { // wait until the producer is parked
		runtime.Gosched()
	}
	cancel()
	if err := <-blocked; !errors.Is(err, context.Canceled) {
		t.Fatalf("parked enqueue err = %v, want context.Canceled", err)
	}
	s.mu.Unlock()
	d.Flush()
	if got, want := d.Arrived(), len(q.buf)+1; got != want {
		t.Fatalf("arrived %d, want %d", got, want)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncDrainerParkWake: an idle drainer parks on notEmpty once its spin
// budget runs dry, and the next enqueue's wakeConsumer signal brings it
// back — covering the consumer side of the parked slow path.
func TestAsyncDrainerParkWake(t *testing.T) {
	in := testInstance(t, 0.02)
	d, err := New(in, 1, lafFactory)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CheckInAsync(in.Workers[0]); err != nil {
		t.Fatal(err)
	}
	d.Flush()
	q := d.queues[0]
	for !q.sleeping.Load() { // wait until the drainer is parked
		runtime.Gosched()
	}
	if err := d.CheckInAsync(in.Workers[1]); err != nil {
		t.Fatal(err)
	}
	d.Flush()
	if got := d.Arrived(); got != 2 {
		t.Fatalf("arrived %d, want 2", got)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncCloseOnIdleDispatcher: closing before any async use is a no-op
// that still refuses later enqueues (drainers are never spawned).
func TestAsyncCloseOnIdleDispatcher(t *testing.T) {
	in := testInstance(t, 0.01)
	d, err := New(in, 2, lafFactory)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckInAsync(in.Workers[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if d.started.Load() {
		t.Fatal("drainers spawned on a closed dispatcher")
	}
}

// TestAsyncLifecycleStress is the -race stress test of the async pipeline:
// feeder goroutines stream CheckInAsync while churners post and retire
// tasks across shards and a flusher calls Flush repeatedly. Invariants: no
// lost workers (after the final Flush every enqueued worker is an arrival),
// posted IDs stay dense and unique, progress is monotone, and draining
// every open task completes the platform.
func TestAsyncLifecycleStress(t *testing.T) {
	in := lifecycleInstance(60, 3000, 150, 77)
	d, err := New(in, 8, aamFactory, Options{QueueCap: 64, MaxDrain: 16})
	if err != nil {
		t.Fatal(err)
	}

	var (
		wg       sync.WaitGroup
		cursor   atomic.Int64
		enqueued atomic.Int64
		postIDs  sync.Map
		nPosts   atomic.Int64
	)
	monitorStop := make(chan struct{})
	var monitorWG sync.WaitGroup
	monitorWG.Add(1)
	go func() { // progress monitor: resolved and total never decrease
		defer monitorWG.Done()
		lastResolved, lastTotal := 0, 0
		for {
			select {
			case <-monitorStop:
				return
			default:
			}
			resolved, total := d.Progress()
			if resolved < lastResolved || total < lastTotal {
				t.Errorf("progress went backwards: %d/%d after %d/%d", resolved, total, lastResolved, lastTotal)
				return
			}
			lastResolved, lastTotal = resolved, total
			// Imbalance locks shards one at a time; the max-over-mean of
			// monotone counts stays in [1, shards] even without an atomic
			// cut, churn and async drain included.
			if im := d.Imbalance(); im < 1 || im > float64(d.NumShards()) {
				t.Errorf("mid-churn Imbalance() = %v, want within [1, %d]", im, d.NumShards())
				return
			}
			runtime.Gosched()
		}
	}()

	for g := 0; g < 4; g++ { // async feeders
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(in.Workers) {
					return
				}
				if err := d.CheckInAsync(in.Workers[i]); err != nil {
					t.Errorf("CheckInAsync: %v", err)
					return
				}
				enqueued.Add(1)
			}
		}()
	}
	for g := 0; g < 2; g++ { // churners
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g)+7, 99))
			for i := 0; i < 60; i++ {
				if rng.IntN(3) > 0 {
					loc := geo.Point{X: rng.Float64() * 150, Y: rng.Float64() * 150}
					gid, err := d.PostTask(model.Task{Loc: loc})
					if err != nil {
						t.Errorf("PostTask: %v", err)
						return
					}
					if _, dup := postIDs.LoadOrStore(gid, struct{}{}); dup {
						t.Errorf("duplicate posted ID %d", gid)
						return
					}
					nPosts.Add(1)
				} else {
					_, total := d.Progress()
					if err := d.RetireTask(model.TaskID(rng.IntN(total))); err != nil {
						t.Errorf("RetireTask: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() { // flusher: Flush must be safe at any moment
		defer wg.Done()
		for i := 0; i < 20; i++ {
			d.Flush()
			runtime.Gosched()
		}
	}()
	wg.Wait()
	d.Flush()
	close(monitorStop)
	monitorWG.Wait()

	if got := d.Arrived(); got != int(enqueued.Load()) {
		t.Fatalf("arrived %d, enqueued %d — lost workers", got, enqueued.Load())
	}
	statuses := d.TaskStatuses()
	wantTotal := len(in.Tasks) + int(nPosts.Load())
	if len(statuses) != wantTotal {
		t.Fatalf("%d statuses, want %d", len(statuses), wantTotal)
	}
	if credits := d.Credits(nil); len(credits) != wantTotal {
		t.Fatalf("%d credits, want %d", len(credits), wantTotal)
	}
	for id, st := range statuses { // drain: retire everything still open
		if !st.Completed && !st.Retired {
			if err := d.RetireTask(model.TaskID(id)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !d.Done() {
		t.Fatal("not done after retiring all open tasks")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	resolved, total := d.Progress()
	if resolved != total || total != wantTotal {
		t.Fatalf("final progress %d/%d, want %d/%d", resolved, total, wantTotal, wantTotal)
	}
}
