package ltc

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// The golden-trace regression suite pins today's solver behaviour byte for
// byte: for each (workload, algorithm) fixture it replays the worker stream
// through Session and through a 1-shard Platform, renders every arrival's
// assignments plus the final latency and per-task credits (hex floats, so
// no rounding ambiguity), and compares against testdata/. Any refactor that
// silently changes an assignment, an ordering, or a single bit of
// accumulated credit fails here first.
//
// Regenerate after an *intentional* behaviour change with:
//
//	go test -run TestGoldenTraces -update
var updateGolden = flag.Bool("update", false, "rewrite golden trace fixtures")

// goldenCase is one pinned workload. All are small Table IV shapes (the
// golden files must stay reviewable and fast).
type goldenCase struct {
	name string
	cfg  func() WorkloadConfig
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{"tableiv-default-x001", func() WorkloadConfig {
			return DefaultWorkload().Scale(0.01) // 30 tasks, 400 workers
		}},
		{"tableiv-k4-eps014-x001", func() WorkloadConfig {
			c := DefaultWorkload().Scale(0.01)
			c.K = 4
			c.Epsilon = 0.14
			c.Seed = 2
			return c
		}},
		{"tableiv-uniform-x001", func() WorkloadConfig {
			c := DefaultWorkload().Scale(0.01)
			c.Accuracy = AccuracyDist{Kind: DistUniform, Mean: 0.86, Spread: 0.10}
			c.Seed = 3
			return c
		}},
	}
}

var goldenAlgorithms = []Algorithm{LAF, AAM, RandomAssign}

const goldenSeed = 7 // drives RandomAssign

// writeTraceHeader, writeArrivalLine and writeTraceFooter render the
// canonical trace pieces shared by the per-call and batched replays.
func writeTraceHeader(b *bytes.Buffer, name string, algo Algorithm, in *Instance) {
	fmt.Fprintf(b, "# ltc golden trace\n")
	fmt.Fprintf(b, "workload=%s algo=%s seed=%d\n", name, algo, goldenSeed)
	fmt.Fprintf(b, "tasks=%d workers=%d k=%d epsilon=%s delta=%s\n",
		len(in.Tasks), len(in.Workers), in.K,
		strconv.FormatFloat(in.Epsilon, 'g', -1, 64),
		strconv.FormatFloat(in.Delta(), 'x', -1, 64))
}

func writeArrivalLine(b *bytes.Buffer, index int, assigned []TaskID) {
	fmt.Fprintf(b, "arrival %d:", index)
	if len(assigned) == 0 {
		b.WriteString(" -")
	}
	for i, t := range assigned {
		if i > 0 {
			b.WriteByte(',')
		} else {
			b.WriteByte(' ')
		}
		fmt.Fprintf(b, "%d", t)
	}
	b.WriteByte('\n')
}

func writeTraceFooter(b *bytes.Buffer, done bool, latency int, credits []float64) {
	fmt.Fprintf(b, "done=%t latency=%d\n", done, latency)
	for tid, c := range credits {
		fmt.Fprintf(b, "credit %d: %s\n", tid, strconv.FormatFloat(c, 'x', -1, 64))
	}
}

// renderTrace drives a worker stream through feed and renders the canonical
// trace text. feed returns one worker's check-in Receipt (the v2 API shape
// shared by Session.Arrive and Platform.CheckIn); the rendered bytes use
// only the granted TaskIDs, so the recorded fixtures predate — and pin —
// the receipt redesign without re-recording. done reports completion;
// credits snapshots accumulated per-task credit.
func renderTrace(name string, algo Algorithm, in *Instance,
	feed func(Worker) (Receipt, error), done func() bool, latency func() int,
	credits func() []float64) (string, error) {

	var b bytes.Buffer
	writeTraceHeader(&b, name, algo, in)
	for _, w := range in.Workers {
		if done() {
			break
		}
		rec, err := feed(w)
		if err != nil {
			return "", fmt.Errorf("worker %d: %w", w.Index, err)
		}
		if rec.Worker != w.Index {
			return "", fmt.Errorf("receipt echoes worker %d, fed %d", rec.Worker, w.Index)
		}
		writeArrivalLine(&b, w.Index, rec.Tasks())
	}
	writeTraceFooter(&b, done(), latency(), credits())
	return b.String(), nil
}

func sessionTrace(t *testing.T, name string, algo Algorithm, in *Instance) string {
	t.Helper()
	sess, err := NewSession(in, algo, SolveOptions{Seed: goldenSeed})
	if err != nil {
		t.Fatal(err)
	}
	got, err := renderTrace(name, algo, in,
		sess.Arrive, sess.Done, sess.Latency, func() []float64 { return sess.Credits(nil) })
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func platformTrace(t *testing.T, name string, algo Algorithm, in *Instance) string {
	t.Helper()
	plat, err := NewPlatform(in, algo, PlatformOptions{Shards: 1, Seed: goldenSeed})
	if err != nil {
		t.Fatal(err)
	}
	if plat.Shards() != 1 {
		t.Fatalf("expected 1 shard, got %d", plat.Shards())
	}
	got, err := renderTrace(name, algo, in,
		plat.CheckIn, plat.Done, plat.Latency, func() []float64 { return plat.Credits(nil) })
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// platformBatchTrace replays the stream through a 1-shard Platform in
// CheckInBatch chunks of the given size. The truncating batch contract
// (ingestion stops with the worker completing the last task; the tail is
// unobserved) makes the rendered bytes directly comparable with the
// per-call Session trace.
func platformBatchTrace(t *testing.T, name string, algo Algorithm, in *Instance, batch int) string {
	t.Helper()
	plat, err := NewPlatform(in, algo, PlatformOptions{Shards: 1, Seed: goldenSeed})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	writeTraceHeader(&b, name, algo, in)
	for i := 0; i < len(in.Workers) && !plat.Done(); i += batch {
		j := i + batch
		if j > len(in.Workers) {
			j = len(in.Workers)
		}
		res, err := plat.CheckInBatch(in.Workers[i:j])
		if err != nil && !errors.Is(err, ErrPlatformDone) {
			t.Fatalf("batch at worker %d: %v", i+1, err)
		}
		for _, rec := range res {
			writeArrivalLine(&b, rec.Worker, rec.Tasks())
		}
	}
	writeTraceFooter(&b, plat.Done(), plat.Latency(), plat.Credits(nil))
	return b.String()
}

// TestGoldenTraces pins Session behaviour to the recorded fixtures and —
// the dispatch-layer equivalence contract — requires the 1-shard Platform
// to reproduce the exact same bytes, including per-task credit bit
// patterns, through the per-call path and through CheckInBatch at several
// batch sizes.
func TestGoldenTraces(t *testing.T) {
	for _, gc := range goldenCases() {
		in, err := gc.cfg().Generate()
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range goldenAlgorithms {
			name := fmt.Sprintf("%s-%s", gc.name, algo)
			t.Run(name, func(t *testing.T) {
				path := filepath.Join("testdata", "golden", name+".trace")
				sess := sessionTrace(t, gc.name, algo, in)
				if *updateGolden {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, []byte(sess), 0o644); err != nil {
						t.Fatal(err)
					}
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing fixture (run with -update to record): %v", err)
				}
				if !bytes.Equal(want, []byte(sess)) {
					t.Errorf("Session trace diverged from %s\n%s", path, diffHint(want, []byte(sess)))
				}
				plat := platformTrace(t, gc.name, algo, in)
				if !bytes.Equal(want, []byte(plat)) {
					t.Errorf("1-shard Platform trace diverged from %s\n%s", path, diffHint(want, []byte(plat)))
				}
				for _, batch := range []int{1, 7, 64} {
					got := platformBatchTrace(t, gc.name, algo, in, batch)
					if !bytes.Equal(want, []byte(got)) {
						t.Errorf("CheckInBatch(%d) trace diverged from %s\n%s", batch, path, diffHint(want, []byte(got)))
					}
				}
			})
		}
	}
}

// diffHint locates the first differing line for a readable failure message.
func diffHint(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("first difference at line %d:\n  want: %s\n  got:  %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: want %d, got %d", len(wl), len(gl))
}
