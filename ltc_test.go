package ltc

import (
	"errors"
	"testing"
)

func tinyInstance(t *testing.T) *Instance {
	t.Helper()
	cfg := DefaultWorkload().Scale(0.01) // 30 tasks, 400 workers
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestSolveEveryAlgorithm(t *testing.T) {
	in := tinyInstance(t)
	for _, algo := range Algorithms() {
		res, err := Solve(in, algo)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !res.Completed {
			t.Fatalf("%s: incomplete", algo)
		}
		if err := res.Arrangement.Validate(in, true); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if res.Latency <= 0 || res.Latency > len(in.Workers) {
			t.Fatalf("%s: latency %d", algo, res.Latency)
		}
	}
}

func TestSolveUnknownAlgorithm(t *testing.T) {
	if _, err := Solve(tinyInstance(t), "Nope"); !errors.Is(err, ErrUnknownAlgorithm) {
		t.Fatalf("err = %v, want ErrUnknownAlgorithm", err)
	}
}

func TestSolveRejectsInvalidInstance(t *testing.T) {
	in := tinyInstance(t)
	in.K = 0
	if _, err := Solve(in, LAF); err == nil {
		t.Fatal("invalid instance accepted")
	}
}

func TestSolveAll(t *testing.T) {
	in := tinyInstance(t)
	results, err := SolveAll(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d results", len(results))
	}
	// Published headline: the proposed algorithms beat the baselines.
	if results[AAM].Latency > results[RandomAssign].Latency {
		t.Fatalf("AAM (%d) worse than Random (%d)", results[AAM].Latency, results[RandomAssign].Latency)
	}
}

func TestSolveSharedIndex(t *testing.T) {
	in := tinyInstance(t)
	ci := NewCandidateIndex(in)
	a, err := Solve(in, LAF, SolveOptions{Index: ci})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(in, LAF)
	if err != nil {
		t.Fatal(err)
	}
	if a.Latency != b.Latency {
		t.Fatal("shared index changed the result")
	}
}

func TestAlgorithmClassification(t *testing.T) {
	for algo, online := range map[Algorithm]bool{
		LAF: true, AAM: true, RandomAssign: true,
		MCFLTC: false, BaseOff: false, Exact: false,
	} {
		if algo.IsOnline() != online {
			t.Fatalf("%s.IsOnline() = %v", algo, algo.IsOnline())
		}
	}
}

func TestDeltaAndAccStarReexports(t *testing.T) {
	if d := Delta(0.1); d < 4.6 || d > 4.61 {
		t.Fatalf("Delta(0.1) = %v", d)
	}
	if AccStar(1.0) != 1.0 {
		t.Fatal("AccStar(1) != 1")
	}
}

func TestSessionStreaming(t *testing.T) {
	in := tinyInstance(t)
	workers := in.Workers
	sess, err := NewSession(in, AAM)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workers {
		if sess.Done() {
			break
		}
		if _, err := sess.Arrive(w); err != nil {
			t.Fatal(err)
		}
	}
	if !sess.Done() {
		t.Fatal("session did not complete")
	}
	if err := sess.Arrangement().Validate(in, true); err != nil {
		t.Fatal(err)
	}
	// Session must agree with the one-shot Solve.
	res, err := Solve(in, AAM)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Latency() != res.Latency {
		t.Fatalf("session latency %d vs Solve %d", sess.Latency(), res.Latency)
	}
	done, total := sess.Progress()
	if done != total {
		t.Fatalf("progress %d/%d after completion", done, total)
	}
}

func TestSessionOrderEnforced(t *testing.T) {
	in := tinyInstance(t)
	sess, err := NewSession(in, LAF)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Arrive(in.Workers[1]); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("err = %v, want ErrOutOfOrder", err)
	}
	if _, err := sess.Arrive(in.Workers[0]); err != nil {
		t.Fatal(err)
	}
	if sess.WorkersSeen() != 1 {
		t.Fatalf("WorkersSeen = %d", sess.WorkersSeen())
	}
}

func TestSessionDoneRejectsArrivals(t *testing.T) {
	in := tinyInstance(t)
	sess, err := NewSession(in, AAM)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for !sess.Done() && i < len(in.Workers) {
		if _, err := sess.Arrive(in.Workers[i]); err != nil {
			t.Fatal(err)
		}
		i++
	}
	if !sess.Done() {
		t.Fatal("session never completed")
	}
	if _, err := sess.Arrive(Worker{Index: i + 1}); !errors.Is(err, ErrSessionDone) {
		t.Fatalf("err = %v, want ErrSessionDone", err)
	}
}

func TestSessionValidation(t *testing.T) {
	good := tinyInstance(t)
	for _, tc := range []struct {
		name   string
		mutate func(*Instance)
	}{
		{"no tasks", func(in *Instance) { in.Tasks = nil }},
		{"nil model", func(in *Instance) { in.Model = nil }},
		{"bad K", func(in *Instance) { in.K = 0 }},
		{"bad eps", func(in *Instance) { in.Epsilon = 0 }},
	} {
		in := *good
		tc.mutate(&in)
		if _, err := NewSession(&in, AAM); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
	if _, err := NewSession(good, MCFLTC); !errors.Is(err, ErrUnknownAlgorithm) {
		t.Fatalf("offline algorithm in session: err = %v", err)
	}
}

func TestVerifyQualityMeetsEpsilon(t *testing.T) {
	in := tinyInstance(t)
	res, err := Solve(in, AAM)
	if err != nil {
		t.Fatal(err)
	}
	rep := VerifyQuality(in, res.Arrangement, 100, 9)
	if rep.TaskDecisions == 0 {
		t.Fatal("nothing graded")
	}
	if rep.ErrorRate > in.Epsilon {
		t.Fatalf("empirical error %.4f > ε %.2f", rep.ErrorRate, in.Epsilon)
	}
}

func TestInferTruthEM(t *testing.T) {
	in := tinyInstance(t)
	res, err := Solve(in, LAF)
	if err != nil {
		t.Fatal(err)
	}
	labels, truth, answered, err := InferTruthEM(in, res.Arrangement, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != len(in.Tasks) || len(truth) != len(in.Tasks) {
		t.Fatal("length mismatch")
	}
	right, total := 0, 0
	for i, l := range labels {
		if !answered[i] {
			continue
		}
		total++
		if l == truth[i] {
			right++
		}
	}
	if total == 0 {
		t.Fatal("no answered tasks")
	}
	// A completed arrangement gives EM plenty of signal: expect well above
	// the ε = 0.1 error budget.
	if acc := float64(right) / float64(total); acc < 0.9 {
		t.Fatalf("EM accuracy %.3f too low", acc)
	}
}

func TestCheckFeasibleReexport(t *testing.T) {
	in := tinyInstance(t)
	if err := CheckFeasible(in); err != nil {
		t.Fatal(err)
	}
	in.Epsilon = 1e-9 // δ ≈ 41.4: hopeless
	if err := CheckFeasible(in); err == nil {
		t.Fatal("infeasible instance passed")
	}
}

func TestCityPresetsReexported(t *testing.T) {
	if NewYork().NumTasks != 3717 || Tokyo().NumTasks != 9317 {
		t.Fatal("city presets wrong")
	}
	tr, err := GenerateCity(NewYork().Scale(0.005))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Instance.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMCFBatchMultiplierOption(t *testing.T) {
	in := tinyInstance(t)
	res, err := Solve(in, MCFLTC, SolveOptions{BatchMultiplier: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Arrangement.Validate(in, true); err != nil {
		t.Fatal(err)
	}
}
