package ltc

import (
	"context"
	"fmt"
	"runtime"

	"ltc/internal/dispatch"
	"ltc/internal/events"
	"ltc/internal/geo"
)

// Platform serves concurrent check-in streams: the task space is split into
// spatial shards (grid tiles over the task bounding rect), one independent
// online solver runs per shard, and each arriving worker is routed to the
// shard owning its location. Check-ins serialize per shard only, so calls
// landing on disjoint shards proceed fully in parallel — the scalable
// counterpart of the single-threaded Session.
//
// Every check-in returns a structured Receipt (granted tasks with
// per-assignment credit and completion, the worker's shard, the
// platform-done flag), and Subscribe delivers the platform's lifecycle
// events (TaskPosted, TaskRetired, TaskCompleted, PlatformDone) as an
// ordered stream — service callers never poll after a check-in.
//
// The task set is mutable while the platform runs: PostTask adds a task
// mid-stream (it starts its δ-threshold accumulation from zero at its post
// index) and RetireTask expires a stale one. Both are safe to call
// concurrently with CheckIn; see CONCURRENCY.md for shard ownership and the
// latency accounting of late-posted tasks.
//
// Arrivals can also be ingested in bulk: CheckInBatch processes a batch
// with sequential semantics under amortized locking, and CheckInAsync (or
// the cancellable CheckInAsyncCtx) routes workers into per-shard bounded
// queues drained by background goroutines, with Flush/Close as
// deterministic completion points — the high-throughput path (see
// CONCURRENCY.md, "Batched and asynchronous ingestion").
//
// With Shards = 1 a Platform fed workers sequentially in arrival order
// produces exactly the Session's arrangement. With more shards each worker
// is only considered for its own shard's tasks, which changes (usually
// raises) the global latency; see CONCURRENCY.md for the shard model and
// its latency semantics.
type Platform struct {
	d        *dispatch.Dispatcher
	eventBuf int
}

// Platform errors.
var (
	// ErrPlatformDone is returned by CheckIn (and, with a partial result,
	// CheckInBatch) once every task has completed.
	ErrPlatformDone = dispatch.ErrDone
	// ErrPlatformClosed is returned by CheckInAsync after Close.
	ErrPlatformClosed = dispatch.ErrClosed
)

// DefaultEventBuffer is the per-subscriber event buffer capacity used by
// Subscribe when WithEventBuffer was not given.
const DefaultEventBuffer = 256

// PlatformOptions tunes NewPlatform.
//
// Deprecated: use the composable functional options (WithShards, WithSeed,
// WithQueueCap, WithMaxDrain, WithEventBuffer) instead. PlatformOptions
// implements Option, so existing call sites keep working.
type PlatformOptions struct {
	// Shards is the requested spatial shard count. 0 uses GOMAXPROCS;
	// negative counts are rejected. The effective count can be lower: empty
	// spatial tiles collapse and shards never outnumber tasks.
	Shards int
	// Seed drives the Random algorithm (per shard), as in SolveOptions.
	Seed uint64
	// QueueCap bounds each shard's CheckInAsync queue: enqueues block
	// (backpressure) while the owning shard's queue is full. 0 uses the
	// dispatch layer's default (1024); negative values are rejected.
	QueueCap int
	// MaxDrain caps how many queued workers a shard's drainer ingests under
	// one mutex acquisition. 0 drains everything queued; smaller values
	// bound how long a drain run can make a concurrent PostTask or
	// RetireTask wait. Negative values are rejected.
	MaxDrain int
}

// RebalanceOptions tunes the adaptive live re-sharding enabled by
// WithRebalance: the arrival-count interval between forecast folds, the
// imbalance threshold that triggers a pass, the per-pass migration cap and
// the EWMA smoothing factor. The zero value of each field means its
// default; see the dispatch layer's DefaultRebalance* constants.
type RebalanceOptions = dispatch.RebalanceOptions

// ShardStats is one shard's progress snapshot, re-exported from the
// dispatch layer.
type ShardStats = dispatch.ShardStats

// TaskStatus is one task's lifecycle snapshot (post index, last assigned
// worker, completion/retirement), re-exported from the dispatch layer.
type TaskStatus = dispatch.TaskStatus

// Platform event re-exports: Subscribe delivers these.
type (
	// Event is one platform lifecycle event (see the EventTask* kinds).
	Event = events.Event
	// EventKind discriminates platform events.
	EventKind = events.Kind
	// Subscription is one subscriber's bounded event feed.
	Subscription = events.Subscription
)

// The platform event kinds delivered by Subscribe.
const (
	// EventTaskPosted fires when PostTask adds a task mid-stream.
	EventTaskPosted = events.TaskPosted
	// EventTaskRetired fires the first time a task is retired.
	EventTaskRetired = events.TaskRetired
	// EventTaskCompleted fires when a task reaches its quality threshold;
	// Event.Worker is the completing worker — the task's absolute latency.
	EventTaskCompleted = events.TaskCompleted
	// EventPlatformDone fires when the count of open tasks reaches zero
	// (again after every revival by PostTask).
	EventPlatformDone = events.PlatformDone
	// EventTileMigrated fires when live re-sharding (WithRebalance, or an
	// explicit migration) moves a tile between shards; Event.Tile,
	// Event.FromShard and Event.ToShard identify the move, and Event.Task
	// is -1 (the event concerns no single task).
	EventTileMigrated = events.TileMigrated
)

// NewPlatform builds a sharded platform running the given online algorithm
// in every shard. The instance's Workers slice may be empty — workers are
// supplied via CheckIn — but Tasks, Epsilon, K, Model and MinAcc must be
// set.
func NewPlatform(in *Instance, algo Algorithm, opts ...Option) (*Platform, error) {
	c := newConfig(opts)
	if c.shards < 0 {
		return nil, fmt.Errorf("ltc: shard count must be ≥ 0, got %d", c.shards)
	}
	if c.shards == 0 {
		c.shards = runtime.GOMAXPROCS(0)
	}
	if c.eventBuffer < 1 {
		c.eventBuffer = DefaultEventBuffer
	}
	if err := validateStreaming(in); err != nil {
		return nil, err
	}
	factory, err := onlineFactory(algo, c.seed)
	if err != nil {
		return nil, err
	}
	if c.loadSample == nil && c.loadPrefix > 0 && c.loadPrefix < len(in.Workers) {
		pts := make([]geo.Point, c.loadPrefix)
		for i, w := range in.Workers[:c.loadPrefix] {
			pts[i] = w.Loc
		}
		c.loadSample = pts
	}
	d, err := dispatch.New(in, c.shards, factory, dispatch.Options{
		QueueCap:   c.queueCap,
		MaxDrain:   c.maxDrain,
		Balanced:   c.balanced,
		LoadSample: c.loadSample,
		Rebalance:  c.rebalance,
	})
	if err != nil {
		return nil, fmt.Errorf("ltc: %w", err)
	}
	return &Platform{d: d, eventBuf: c.eventBuffer}, nil
}

// CheckIn routes the worker to its spatial shard and returns the check-in
// Receipt: the tasks granted to it (with per-assignment quality credit and
// a completion flag marking tasks this very check-in finished), the shard
// it routed to, and whether the platform as a whole is done — so callers
// never re-poll TaskStatuses or Progress after a check-in. It returns
// ErrPlatformDone (with a bounced receipt) once every task has completed.
// Safe for concurrent use from any number of goroutines; the returned
// Receipt is caller-owned.
//
// The worker's Index is its global arrival index and must be ≥ 1; unlike
// Session.Arrive, indices need not be presented in order — concurrent
// streams cannot guarantee ordering, and assignment decisions depend only
// on worker locations and accuracies, never on the index itself.
func (p *Platform) CheckIn(w Worker) (Receipt, error) {
	r, err := p.d.CheckIn(w)
	if err != nil {
		return r, fmt.Errorf("ltc: %w", err)
	}
	return r, nil
}

// CheckInBatch ingests a batch of workers with the exact semantics of
// calling CheckIn for each in order, at a fraction of the per-call
// overhead: consecutive workers landing on the same shard are processed
// under a single shard-lock acquisition and a single candidate-index
// snapshot. out[i] is ws[i]'s Receipt. When the platform completes
// mid-batch, out is truncated to the ingested prefix and ErrPlatformDone
// is returned; the remaining workers are not observed and may be
// re-presented after a PostTask revives the platform. A worker with a
// non-positive index fails the whole batch upfront. Safe for concurrent
// use; see CONCURRENCY.md for the batched ordering contract.
func (p *Platform) CheckInBatch(ws []Worker) ([]Receipt, error) {
	out, err := p.d.CheckInBatch(ws)
	if err != nil {
		return out, fmt.Errorf("ltc: %w", err)
	}
	return out, nil
}

// CheckInBatchInto is CheckInBatch appending into a caller-provided receipt
// slice: the batch's receipts are appended to dst (which may be nil) and
// the extended slice is returned. A sustained ingestion loop recycling
// dst[:0] across batches pays no per-batch receipt allocation once the
// slice has grown to its working size. Error semantics match CheckInBatch;
// on ErrPlatformDone the returned slice holds dst plus the ingested prefix.
func (p *Platform) CheckInBatchInto(ws []Worker, dst []Receipt) ([]Receipt, error) {
	out, err := p.d.CheckInBatchInto(ws, dst)
	if err != nil {
		return out, fmt.Errorf("ltc: %w", err)
	}
	return out, nil
}

// CheckInAsync enqueues the worker into its shard's bounded queue and
// returns immediately — the fire-and-forget ingestion path. A background
// drainer per shard pops runs of queued workers and processes each run
// under one shard-lock acquisition and one candidate-index snapshot, so
// sustained streams ingest faster than per-call CheckIn. Assignments stay
// observable through Arrangement, Credits, TaskStatuses and the Subscribe
// event stream; Flush gives the deterministic completion point. The call
// blocks while the shard's queue is full (backpressure) and returns
// ErrPlatformClosed after Close; use CheckInAsyncCtx when the block must
// be cancellable. Safe for concurrent use.
func (p *Platform) CheckInAsync(w Worker) error {
	if err := p.d.CheckInAsync(w); err != nil {
		return fmt.Errorf("ltc: %w", err)
	}
	return nil
}

// CheckInAsyncCtx is CheckInAsync with cancellable backpressure: while the
// worker's shard queue is full the call blocks until a slot frees, the
// platform closes (ErrPlatformClosed), or ctx is done — in which case the
// worker was NOT enqueued and ctx.Err() is returned. A nil error means the
// worker is queued and a later Flush will observe it; any error means the
// platform never saw it. Safe for concurrent use.
func (p *Platform) CheckInAsyncCtx(ctx context.Context, w Worker) error {
	if err := p.d.CheckInAsyncCtx(ctx, w); err != nil {
		if err == ctx.Err() {
			return err
		}
		return fmt.Errorf("ltc: %w", err)
	}
	return nil
}

// Flush blocks until every worker enqueued by CheckInAsync before the call
// has been fully ingested: latency, progress and per-worker assignments
// then match what the same stream fed through CheckIn would have produced.
// It returns immediately when the async path was never used.
func (p *Platform) Flush() { p.d.Flush() }

// Close shuts the asynchronous ingestion path down: subsequent (and
// blocked) CheckInAsync calls fail with ErrPlatformClosed, everything
// already queued is ingested, and the drainers exit. Synchronous CheckIn,
// CheckInBatch, the task lifecycle and event subscriptions remain usable.
// Safe to call more than once.
func (p *Platform) Close() error { return p.d.Close() }

// Subscribe registers a subscriber for the platform's lifecycle events —
// EventTaskPosted, EventTaskRetired, EventTaskCompleted, EventPlatformDone
// and, under live re-sharding, EventTileMigrated — delivered in
// publication order through a bounded buffered channel
// (capacity WithEventBuffer, default DefaultEventBuffer). Publishing never
// blocks a check-in: a subscriber that lets its buffer fill loses events
// (Subscription.Dropped counts them), while one that keeps up receives
// every event exactly once. Only events published after Subscribe returns
// are delivered; call Subscription.Close to detach. See CONCURRENCY.md for
// the full ordering and drop contract.
func (p *Platform) Subscribe() *Subscription { return p.d.Subscribe(p.eventBuf) }

// PostTask adds a task to the live platform and returns its global TaskID
// (dense: initial tasks keep 0..n-1, posted tasks follow in post order).
// The task is owned by the shard its location routes to — the same shard
// every worker at that location routes to, so late-posted tasks are always
// reachable, including in regions that held no initial task. Its post index
// (the largest worker index seen so far) anchors the relative latency
// accounting. Only the provided location matters; the ID field of the
// argument is ignored. Safe to call concurrently with CheckIn.
func (p *Platform) PostTask(t Task) (TaskID, error) {
	id, err := p.d.PostTask(t)
	if err != nil {
		return 0, fmt.Errorf("ltc: %w", err)
	}
	return id, nil
}

// RetireTask expires the task with the given ID: it stops being assignable
// and no longer blocks Done. Retiring a completed or already-retired task
// is a harmless no-op; retiring an unknown ID is an error. Safe to call
// concurrently with CheckIn.
func (p *Platform) RetireTask(id TaskID) error {
	if err := p.d.RetireTask(id); err != nil {
		return fmt.Errorf("ltc: %w", err)
	}
	return nil
}

// Done reports whether every live task has reached the quality threshold.
// Retired tasks don't block completion, and a PostTask can revive a done
// platform.
func (p *Platform) Done() bool { return p.d.Done() }

// Latency returns the LTC objective so far in global arrival indices: the
// largest Index among checked-in workers that received an assignment.
func (p *Platform) Latency() int { return p.d.Latency() }

// RelativeLatency returns the lifecycle-aware objective: the largest
// (worker index − task post index) over all assignments. Equal to Latency
// when every task was present from the start; with late posts it measures
// each task's wait from the moment it entered the system.
func (p *Platform) RelativeLatency() int { return p.d.RelativeLatency() }

// WorkersSeen reports how many check-ins have been observed: every call
// presenting a valid (positive) arrival index counts, including calls
// bounced with ErrPlatformDone while the platform was momentarily
// complete. Calls rejected for an invalid index are not observed. This is
// the same contract as Session.WorkersSeen, pinned by
// TestWorkersSeenContract.
func (p *Platform) WorkersSeen() int { return p.d.Arrived() }

// Shards reports the effective shard count.
func (p *Platform) Shards() int { return p.d.NumShards() }

// Balanced reports whether the load-aware tile→shard layout is active
// (WithBalancedShards; always false with one shard, where the layouts
// coincide).
func (p *Platform) Balanced() bool { return p.d.Balanced() }

// Rebalancing reports whether adaptive live re-sharding is active
// (WithRebalance on a multi-shard balanced platform; false when the layout
// collapsed to one shard, where there is nothing to migrate).
func (p *Platform) Rebalancing() bool { return p.d.Rebalancing() }

// Migrations reports how many tile migrations have committed so far.
func (p *Platform) Migrations() int { return p.d.Migrations() }

// Imbalance reports the platform's current load imbalance: the busiest
// shard's routed check-ins over the per-shard mean (1.0 = perfectly even,
// Shards() = everything on one shard; 1.0 by convention before any
// check-in). The accounting window restarts at every tile migration, so
// under live re-sharding the ratio reflects the current layout rather than
// crediting a migrated-away hotspot to its old shard forever. Per-shard
// load accounts are in ShardStats (Workers and, for the async path,
// QueueDepth).
//
// Concurrent snapshot semantics: shards are locked one at a time, so under
// live traffic the sample is per-shard consistent but not a global atomic
// cut — shards read later may include check-ins that arrived after earlier
// shards were read. The value is still always ≥ 1.0: every per-shard count
// is a monotone non-negative total, and the maximum of any sample is never
// below its mean, torn cut or not.
func (p *Platform) Imbalance() float64 { return p.d.Imbalance() }

// Progress returns the number of resolved tasks (reached δ, or retired
// before reaching it) and the task total over every task ever posted.
func (p *Platform) Progress() (resolved, total int) { return p.d.Progress() }

// TaskStatuses snapshots every task ever posted, in TaskID order: post
// index, last assigned worker (the task's absolute latency once completed),
// completion and retirement flags.
func (p *Platform) TaskStatuses() []TaskStatus { return p.d.TaskStatuses() }

// ShardStats snapshots per-shard progress: task counts, completion, routed
// and offered workers, and the shard's latency in global arrival indices
// (the platform latency is the max over shards).
//
// Like Imbalance, the snapshot locks shards one at a time: each entry is
// internally consistent, but entries taken later can reflect check-ins that
// arrived after earlier entries were read. Cross-shard aggregates computed
// from one snapshot (sums, maxima of the monotone counters) are therefore
// bounded by the platform's state at the first and last shard read, not an
// instant between them.
func (p *Platform) ShardStats() []ShardStats { return p.d.ShardStats() }

// Credits appends a snapshot of the per-task accumulated Acc* credit to dst
// and returns the extended slice.
func (p *Platform) Credits(dst []float64) []float64 { return p.d.Credits(dst) }

// Arrangement merges the per-shard assignments into one arrangement over
// the platform's instance (global worker indices and TaskIDs). It snapshots
// live state and may be called at any time.
func (p *Platform) Arrangement() *Arrangement { return p.d.Arrangement() }
