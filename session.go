package ltc

import (
	"errors"
	"fmt"

	"ltc/internal/core"
	"ltc/internal/model"
)

// Session drives an online algorithm one worker at a time — the natural
// shape for a live platform where check-ins stream in. Unlike Solve, the
// caller controls the worker feed and can interleave its own bookkeeping
// (e.g. pushing the assigned questions to the user's device).
//
// Workers must be offered in arrival order with consecutive indices
// starting at 1; assignments are immediate and irrevocable, matching the
// online LTC temporal constraint.
type Session struct {
	in        *Instance
	algo      core.Online
	arr       *Arrangement
	nextIndex int
	tasksBuf  []TaskID
}

// Session errors.
var (
	ErrOutOfOrder  = errors.New("ltc: workers must arrive in index order 1, 2, ...")
	ErrSessionDone = errors.New("ltc: session already completed all tasks")
)

// NewSession starts a streaming session for an online algorithm. The
// instance's Workers slice may be empty — workers are supplied via Arrive —
// but Tasks, Epsilon, K, Model and MinAcc must be set.
func NewSession(in *Instance, algo Algorithm, opts ...SolveOptions) (*Session, error) {
	var o SolveOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	if len(in.Tasks) == 0 {
		return nil, fmt.Errorf("ltc: %w", model.ErrNoTasks)
	}
	if in.Model == nil {
		return nil, fmt.Errorf("ltc: %w", model.ErrNoModel)
	}
	if in.K <= 0 {
		return nil, fmt.Errorf("ltc: %w", model.ErrBadCapacity)
	}
	if in.Epsilon <= 0 || in.Epsilon >= 1 {
		return nil, fmt.Errorf("ltc: %w", model.ErrBadEpsilon)
	}
	factory, err := onlineFactory(algo, o)
	if err != nil {
		return nil, err
	}
	ci := o.index(in)
	return &Session{
		in:        in,
		algo:      factory(in, ci),
		arr:       model.NewArrangement(len(in.Tasks)),
		nextIndex: 1,
	}, nil
}

// Arrive offers the next worker and returns the tasks assigned to it
// (possibly none). It returns ErrSessionDone once every task has completed
// and ErrOutOfOrder when the worker's index breaks the arrival sequence.
func (s *Session) Arrive(w Worker) ([]TaskID, error) {
	if s.algo.Done() {
		return nil, ErrSessionDone
	}
	if w.Index != s.nextIndex {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrOutOfOrder, w.Index, s.nextIndex)
	}
	s.nextIndex++
	s.tasksBuf = append(s.tasksBuf[:0], s.algo.Arrive(w)...)
	for _, t := range s.tasksBuf {
		acc := s.in.Model.Predict(w, s.in.Tasks[t])
		s.arr.Add(w.Index, t, model.AccStar(acc))
	}
	return s.tasksBuf, nil
}

// Done reports whether every task has reached the quality threshold.
func (s *Session) Done() bool { return s.algo.Done() }

// Latency returns the arrival index of the last worker assigned so far —
// the LTC objective once Done is true.
func (s *Session) Latency() int { return s.arr.Latency() }

// WorkersSeen reports how many workers have been offered.
func (s *Session) WorkersSeen() int { return s.nextIndex - 1 }

// Arrangement returns the assignments made so far. The returned value is
// live; callers must not mutate it.
func (s *Session) Arrangement() *Arrangement { return s.arr }

// Progress returns the number of completed tasks and the task total.
func (s *Session) Progress() (completed, total int) {
	delta := s.in.Delta()
	for _, credit := range s.arr.Accumulated {
		if model.Completed(credit, delta) {
			completed++
		}
	}
	return completed, len(s.in.Tasks)
}
