package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"ltc/internal/lint/analysis"
)

// AtomicField enforces all-or-nothing atomic access: once any site in the
// package reads or writes a struct field through sync/atomic (e.g.
// atomic.LoadInt32(&s.f) or atomic.StoreInt32(&s.f[i], v)), every access to
// that field (or its elements, for slice fields) must be atomic too. Mixed
// plain/atomic access is exactly the pattern the Go memory model gives no
// guarantees for.
//
// For slice fields accessed element-wise (mode "elem"), non-element
// operations — len, cap, whole-field replacement, make — remain legal; only
// plain element reads/writes (including `range` with a value variable) are
// flagged. Typed atomics (atomic.Int64 etc.) are enforced by the type system
// and by govet's copylocks, so this analyzer only tracks the pointer-based
// API.
var AtomicField = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "require consistently atomic access to fields touched by sync/atomic",
	Run:  runAtomicField,
}

func runAtomicField(pass *analysis.Pass) error {
	info := pass.TypesInfo

	// Phase 1: find fields accessed through sync/atomic, and remember the
	// exact expressions inside atomic calls so phase 2 can exempt them.
	directAtomic := map[types.Object]bool{} // atomic.X(&s.f)
	elemAtomic := map[types.Object]bool{}   // atomic.X(&s.f[i])
	exempt := map[ast.Expr]bool{}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if !isAtomicCall(info, call) {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok {
				return true
			}
			switch inner := ast.Unparen(addr.X).(type) {
			case *ast.SelectorExpr:
				if obj := fieldObject(info, inner); obj != nil {
					directAtomic[obj] = true
					exempt[inner] = true
				}
			case *ast.IndexExpr:
				if sel, ok := ast.Unparen(inner.X).(*ast.SelectorExpr); ok {
					if obj := fieldObject(info, sel); obj != nil {
						elemAtomic[obj] = true
						exempt[inner] = true
					}
				}
			}
			return true
		})
	}
	if len(directAtomic) == 0 && len(elemAtomic) == 0 {
		return nil
	}

	// Phase 2: flag plain accesses to those fields.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if exempt[n] {
					return false
				}
				obj := fieldObject(info, n)
				if obj == nil || !directAtomic[obj] {
					return true
				}
				pass.Reportf(n.Pos(),
					"field %s is accessed with sync/atomic elsewhere in this package; plain access here races (use atomic access everywhere)", obj.Name())
				return false
			case *ast.IndexExpr:
				if exempt[n] {
					return false
				}
				sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := fieldObject(info, sel)
				if obj == nil || !elemAtomic[obj] {
					return true
				}
				pass.Reportf(n.Pos(),
					"elements of %s are accessed with sync/atomic elsewhere in this package; plain element access here races (use atomic access everywhere)", obj.Name())
				return false
			case *ast.RangeStmt:
				if n.Value == nil {
					return true
				}
				sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := fieldObject(info, sel)
				if obj == nil || !elemAtomic[obj] {
					return true
				}
				pass.Reportf(n.X.Pos(),
					"range with a value variable reads elements of %s non-atomically; elements are accessed with sync/atomic elsewhere in this package", obj.Name())
			}
			return true
		})
	}
	return nil
}

// isAtomicCall reports whether call invokes a sync/atomic package function
// that accesses memory through its pointer argument.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := info.Uses[id].(*types.PkgName)
	if !ok || pkg.Imported().Path() != "sync/atomic" {
		return false
	}
	for _, prefix := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(sel.Sel.Name, prefix) {
			return true
		}
	}
	return false
}

// fieldObject resolves a selector to a struct field object, or nil.
func fieldObject(info *types.Info, sel *ast.SelectorExpr) types.Object {
	obj, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !obj.IsField() {
		return nil
	}
	return obj
}
