package checkin

import (
	"errors"
	"math"
	"testing"

	"ltc/internal/geo"
	"ltc/internal/model"
)

// smallCity is a fast, feasibility-safe scaled-down New York.
func smallCity() CityConfig {
	return NewYork().Scale(0.01) // 37 tasks, ~2274 check-ins
}

func TestPresetsMatchTableV(t *testing.T) {
	ny := NewYork()
	if ny.NumTasks != 3717 || ny.NumCheckins != 227428 {
		t.Fatalf("New York preset = %d tasks / %d check-ins", ny.NumTasks, ny.NumCheckins)
	}
	tk := Tokyo()
	if tk.NumTasks != 9317 || tk.NumCheckins != 573703 {
		t.Fatalf("Tokyo preset = %d tasks / %d check-ins", tk.NumTasks, tk.NumCheckins)
	}
	for _, c := range Cities() {
		if c.K != 6 || c.AccMean != 0.86 || c.AccStd != 0.05 {
			t.Fatalf("%s: K/accuracy deviate from Table V: %+v", c.Name, c)
		}
		if c.PrefMin != 10 || c.PrefMax != 50 {
			t.Fatalf("%s: preference radius must span [10, 50] grid units", c.Name)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("%s preset invalid: %v", c.Name, err)
		}
	}
}

func TestGenerateStructure(t *testing.T) {
	c := smallCity()
	tr, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	in := tr.Instance
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(in.Tasks) != c.NumTasks {
		t.Fatalf("%d tasks, want %d", len(in.Tasks), c.NumTasks)
	}
	if len(in.Workers) != c.NumCheckins {
		t.Fatalf("%d workers, want %d", len(in.Workers), c.NumCheckins)
	}
	if len(tr.Users) != c.NumUsers || len(tr.POIs) != c.NumPOIs {
		t.Fatalf("users/POIs = %d/%d", len(tr.Users), len(tr.POIs))
	}
	// Chronological arrival: worker i+1 is check-in i.
	for i, w := range in.Workers {
		if w.Index != i+1 {
			t.Fatalf("worker %d has index %d", i, w.Index)
		}
		if w.Loc != tr.Checkins[i].Loc {
			t.Fatalf("worker %d location differs from its check-in", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallCity())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallCity())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Instance.Tasks) != len(b.Instance.Tasks) {
		t.Fatal("task counts differ")
	}
	for i := range a.Instance.Tasks {
		if a.Instance.Tasks[i] != b.Instance.Tasks[i] {
			t.Fatalf("task %d differs across identical generations", i)
		}
	}
	for i := range a.Instance.Workers {
		if a.Instance.Workers[i] != b.Instance.Workers[i] {
			t.Fatalf("worker %d differs across identical generations", i)
		}
	}
}

func TestTasksInsideHull(t *testing.T) {
	tr, err := Generate(smallCity())
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range tr.Instance.Tasks {
		if !geo.InConvexHull(tr.Hull, task.Loc) {
			t.Fatalf("task %d at %v outside the check-in hull", task.ID, task.Loc)
		}
	}
}

func TestTasksFeasible(t *testing.T) {
	tr, err := Generate(smallCity())
	if err != nil {
		t.Fatal(err)
	}
	ci := model.NewCandidateIndex(tr.Instance)
	if err := ci.CheckFeasible(); err != nil {
		t.Fatalf("generated city instance infeasible: %v", err)
	}
}

// TestUserRevisitBehaviour: all of a user's check-ins happen at POIs within
// the user's preference radius of home (plus GPS jitter) — the
// region-preference property from Yang et al. the generator must reproduce.
func TestUserRevisitBehaviour(t *testing.T) {
	tr, err := Generate(smallCity())
	if err != nil {
		t.Fatal(err)
	}
	for i, ck := range tr.Checkins {
		u := tr.Users[ck.User]
		// Clamping to the grid can only move points inward, so the radius
		// bound still holds.
		if d := ck.Loc.Dist(u.Home); d > u.PrefRadius+checkinJitter+1e-9 {
			t.Fatalf("check-in %d is %.2f from home, radius %.2f", i, d, u.PrefRadius)
		}
		// And the visited POI itself lies within the preference radius.
		if d := tr.POIs[ck.POI].Dist(u.Home); d > u.PrefRadius+1e-9 {
			t.Fatalf("check-in %d visited a POI %.2f from home, radius %.2f", i, d, u.PrefRadius)
		}
	}
}

// TestCheckinsAtPOIs: every check-in location sits within the GPS jitter of
// its visited POI — supply concentrates exactly where tasks can be.
func TestCheckinsAtPOIs(t *testing.T) {
	tr, err := Generate(smallCity())
	if err != nil {
		t.Fatal(err)
	}
	for i, ck := range tr.Checkins {
		if d := ck.Loc.Dist(tr.POIs[ck.POI]); d > checkinJitter+1e-9 {
			t.Fatalf("check-in %d is %.2f from its POI", i, d)
		}
	}
}

// TestActivityHeavyTailed: the top 10%% most active users must account for
// well over 10%% of check-ins (Zipf skew).
func TestActivityHeavyTailed(t *testing.T) {
	tr, err := Generate(smallCity())
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(tr.Users))
	for _, ck := range tr.Checkins {
		counts[ck.User]++
	}
	// Users were assigned Zipf weights by id rank, so the top 10% by id are
	// the heavy hitters.
	top := len(tr.Users) / 10
	sum := 0
	for i := 0; i < top; i++ {
		sum += counts[i]
	}
	share := float64(sum) / float64(len(tr.Checkins))
	if share < 0.3 {
		t.Fatalf("top 10%% of users produced only %.1f%% of check-ins — not heavy-tailed", share*100)
	}
}

func TestAccuraciesWithinBounds(t *testing.T) {
	tr, err := Generate(smallCity())
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, u := range tr.Users {
		if u.Accuracy < model.SpamThreshold || u.Accuracy > 1 {
			t.Fatalf("user %d accuracy %v out of bounds", u.ID, u.Accuracy)
		}
		sum += u.Accuracy
	}
	mean := sum / float64(len(tr.Users))
	if math.Abs(mean-0.86) > 0.02 {
		t.Fatalf("mean user accuracy %v, want ≈0.86", mean)
	}
}

func TestScalePreservesDensity(t *testing.T) {
	c := NewYork()
	s := c.Scale(0.25)
	before := float64(c.NumCheckins) / (c.GridWidth * c.GridHeight)
	after := float64(s.NumCheckins) / (s.GridWidth * s.GridHeight)
	if math.Abs(before-after)/before > 0.01 {
		t.Fatalf("check-in density changed: %v -> %v", before, after)
	}
	if got := c.Scale(1); got != c {
		t.Fatal("Scale(1) must be identity")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	for _, mutate := range []func(*CityConfig){
		func(c *CityConfig) { c.NumTasks = 0 },
		func(c *CityConfig) { c.NumPOIs = c.NumTasks - 1 },
		func(c *CityConfig) { c.GridWidth = 0 },
		func(c *CityConfig) { c.ClusterStd = 0 },
		func(c *CityConfig) { c.PrefMin = 0 },
		func(c *CityConfig) { c.PrefMax = c.PrefMin - 1 },
		func(c *CityConfig) { c.K = 0 },
		func(c *CityConfig) { c.Epsilon = 1 },
		func(c *CityConfig) { c.AccMean = 0.2 },
	} {
		c := NewYork()
		mutate(&c)
		if err := c.Validate(); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("mutation accepted: %+v", c)
		}
	}
}

func TestNotEnoughPOIs(t *testing.T) {
	c := smallCity()
	// Demand far more tasks than the feasible POI pool can provide but keep
	// NumPOIs ≥ NumTasks so Validate passes and generation itself fails.
	c.NumTasks = c.NumPOIs
	c.NumCheckins = 50 // almost no workers → almost no feasible POIs
	if _, err := Generate(c); !errors.Is(err, ErrNotEnoughPOIs) {
		t.Fatalf("err = %v, want ErrNotEnoughPOIs", err)
	}
}

func TestGenerateInstanceWrapper(t *testing.T) {
	in, err := GenerateInstance(smallCity())
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestZipfCumulative(t *testing.T) {
	cum := zipfCumulative(4, 1)
	if cum[3] != 1 {
		t.Fatalf("cumulative must end at 1: %v", cum)
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] <= cum[i-1] {
			t.Fatalf("cumulative not increasing: %v", cum)
		}
		// Zipf: increments shrink with rank.
		if i >= 2 && (cum[i]-cum[i-1]) > (cum[i-1]-cum[i-2])+1e-12 {
			t.Fatalf("weights not decreasing: %v", cum)
		}
	}
}
